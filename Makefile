# Local entry points mirroring the CI jobs: `make lint` runs exactly what
# the required lint job runs, so a clean local pass means a clean gate.

GO ?= go

.PHONY: all build test race lint vet staticcheck check bench-lp

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# lint = go vet + the repo's own invariant analyzers (cmd/bcast-lint):
# detrand, ctxflow, lockguard, senterr. Same command as the CI lint job.
lint: vet
	$(GO) run ./cmd/bcast-lint ./...

vet:
	$(GO) vet ./...

# staticcheck/govulncheck are external tools, installed on demand in CI
# (pinned versions, see .github/workflows/ci.yml). Run them locally only if
# already installed; this target fails fast with a hint otherwise.
staticcheck:
	@command -v staticcheck >/dev/null || { echo "staticcheck not installed: go install honnef.co/go/tools/cmd/staticcheck@2024.1.1"; exit 1; }
	staticcheck ./...

# bench-lp mirrors the CI bench job's LP report: revised simplex vs dense
# incremental master on the size ladder, with the >=5x LP-wall contract
# enforced at n >= 512. Writes BENCH_lp.json in the repo root.
bench-lp:
	$(GO) run ./cmd/bcast-lpbench -sizes 96,256,512,1024 -seed 7 -min-speedup 5 -speedup-from 512 -pretty -o BENCH_lp.json

check: build test lint
