package broadcast

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section (Section 5), plus micro-benchmarks for the individual
// building blocks (LP bound, heuristics, simulator).
//
// The figure/table benchmarks print the regenerated rows (mean relative
// performance ± deviation per heuristic) once per run through b.Logf, so
// `go test -bench . -benchmem` both times the harness and reproduces the
// paper's numbers at a reduced scale; use cmd/bcast-bench -scale paper for
// the full-size run recorded in EXPERIMENTS.md.

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/experiments"
)

// benchName builds a sub-benchmark name like "nodes=30".
func benchName(key string, v int) string { return fmt.Sprintf("%s=%d", key, v) }

// benchConfig is the reduced experiment configuration used inside the
// benchmarks: same sweep structure as the paper, smaller repetition counts
// so a -bench run stays in the seconds range.
func benchConfig() ExperimentConfig {
	return ExperimentConfig{
		Seed:                2004,
		Configurations:      2,
		TiersConfigurations: 3,
		NodeCounts:          []int{10, 20, 30},
		Densities:           []float64{0.08, 0.16},
		MultiPortFraction:   0.8,
	}
}

// logTable prints a regenerated table once per benchmark.
var logOnce sync.Map

func logTable(b *testing.B, t *ResultTable) {
	b.Helper()
	if _, done := logOnce.LoadOrStore(t.ID+b.Name(), true); !done {
		b.Logf("\n%s", t.Format())
	}
}

// BenchmarkFig4aNodes regenerates Figure 4(a): relative performance of the
// one-port heuristics versus the number of nodes on random platforms.
func BenchmarkFig4aNodes(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		table, err := experiments.Fig4a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, table)
	}
}

// BenchmarkFig4bDensity regenerates Figure 4(b): relative performance versus
// platform density.
func BenchmarkFig4bDensity(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		table, err := experiments.Fig4b(cfg)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, table)
	}
}

// BenchmarkFig5Multiport regenerates Figure 5: the multi-port heuristics
// versus the number of nodes (one-port MTP optimum as the reference, so
// ratios above 1 are possible).
func BenchmarkFig5Multiport(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		table, err := experiments.Fig5(cfg)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, table)
	}
}

// BenchmarkTable3Tiers regenerates Table 3: the one-port heuristics on
// Tiers-like platforms with 30 and 65 nodes.
func BenchmarkTable3Tiers(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		table, err := experiments.Table3(cfg)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, table)
	}
}

// BenchmarkAblationSendFraction sweeps the multi-port send-overhead fraction
// (the paper argues the results do not strongly depend on the 80% choice).
func BenchmarkAblationSendFraction(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		table, err := experiments.AblationSendFraction(cfg)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, table)
	}
}

// BenchmarkAblationPortDirection evaluates the one-port heuristics under the
// stricter unidirectional one-port model.
func BenchmarkAblationPortDirection(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		table, err := experiments.AblationPortDirection(cfg)
		if err != nil {
			b.Fatal(err)
		}
		logTable(b, table)
	}
}

// --- micro-benchmarks -------------------------------------------------------

// benchPlatform returns a fixed mid-size random platform.
func benchPlatform(b *testing.B, nodes int, density float64) *Platform {
	b.Helper()
	p, err := RandomPlatform(nodes, density, 42)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkSteadySolve times the cutting-plane MTP reference solve on the
// hierarchical registry families (where the master accumulates the most
// cuts) at their largest default sizes, plus two flatter families for
// contrast, in the default warm-started mode and with the cold-start path
// forced. It reports simplex pivot and round counts per solve; the CI perf
// job runs it with -benchtime=1x and archives the output to track the
// solver's trajectory.
func BenchmarkSteadySolve(b *testing.B) {
	for _, c := range []struct {
		scenario string
		size     int
	}{
		{"cluster-of-clusters", 96},
		{"tiers", 96},
		{"random-sparse", 50},
		{"last-mile", 48},
	} {
		p, err := GenerateScenario(c.scenario, c.size, 42)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name string
			opts *OptimalOptions
		}{
			{"warm", nil},
			{"cold", &OptimalOptions{ColdStart: true}},
		} {
			b.Run(fmt.Sprintf("%s/n=%d/%s", c.scenario, c.size, mode.name), func(b *testing.B) {
				var pivots, rounds int
				for i := 0; i < b.N; i++ {
					sol, err := OptimalThroughputWith(p, 0, mode.opts)
					if err != nil {
						b.Fatal(err)
					}
					pivots += sol.LPIterations
					rounds += sol.Rounds
				}
				b.ReportMetric(float64(pivots)/float64(b.N), "pivots/op")
				b.ReportMetric(float64(rounds)/float64(b.N), "rounds/op")
			})
		}
	}
}

// BenchmarkChurnResolve compares the steady-state re-solve cost across a
// churn trace in the two modes of the dynamic engine: the warm session
// (one master LP and cut pool carried across mutations; tightening events
// append rows into the previous optimal basis, loosening events rebuild
// from the pool) against per-event cold solves from scratch. It reports
// total simplex pivots per trace — the acceptance metric of the dynamic
// subsystem — plus the warm/rebuild split; the CI perf job archives the
// output as BENCH_churn.txt.
func BenchmarkChurnResolve(b *testing.B) {
	for _, c := range []struct {
		scenario string
		size     int
	}{
		{"cluster-of-clusters", 32},
		{"tiers", 32},
		{"random-sparse", 20},
	} {
		p, trace, err := ScenarioChurnTrace(c.scenario, c.size, 0, 42)
		if err != nil {
			b.Fatal(err)
		}
		for _, mode := range []struct {
			name string
			cold bool
		}{
			{"warm-session", false},
			{"cold-per-event", true},
		} {
			b.Run(fmt.Sprintf("%s/n=%d/%s", c.scenario, c.size, mode.name), func(b *testing.B) {
				var pivots, warm, rebuilds int
				for i := 0; i < b.N; i++ {
					rep, err := RunChurn(p, 0, trace, ChurnConfig{ColdResolve: mode.cold})
					if err != nil {
						b.Fatal(err)
					}
					pivots += rep.ResolvePivots
					warm += rep.LP.WarmResolves
					rebuilds += rep.LP.Rebuilds
				}
				b.ReportMetric(float64(pivots)/float64(b.N), "pivots/trace")
				b.ReportMetric(float64(warm)/float64(b.N), "warm-resolves/trace")
				b.ReportMetric(float64(rebuilds)/float64(b.N), "rebuilds/trace")
			})
		}
	}
}

// BenchmarkOptimalThroughputLP times the cutting-plane solver for the MTP
// optimum (the reference bound of every figure).
func BenchmarkOptimalThroughputLP(b *testing.B) {
	for _, size := range []struct {
		nodes   int
		density float64
	}{{20, 0.12}, {30, 0.12}, {50, 0.12}} {
		p := benchPlatform(b, size.nodes, size.density)
		b.Run(benchName("nodes", size.nodes), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := OptimalThroughput(p, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHeuristics times every tree-construction heuristic on a 30-node
// random platform.
func BenchmarkHeuristics(b *testing.B) {
	p := benchPlatform(b, 30, 0.12)
	opt, err := OptimalThroughput(p, 0)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range Heuristics() {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var err error
				switch name {
				case LPPrune, LPGrowTree:
					// Use the precomputed rates, as the experiment harness
					// does, so the benchmark isolates the tree construction.
					_, err = BuildTreeWithRates(p, 0, name, opt.EdgeRate)
				default:
					_, err = BuildTree(p, 0, name)
				}
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSimulator times the slice-by-slice simulation of a pipelined
// broadcast along a grow-tree schedule.
func BenchmarkSimulator(b *testing.B) {
	p := benchPlatform(b, 30, 0.12)
	tree, err := BuildTree(p, 0, GrowTree)
	if err != nil {
		b.Fatal(err)
	}
	for _, slices := range []int{100, 1000} {
		b.Run(benchName("slices", slices), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(p, tree, OnePort, slices); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTreeThroughput times the analytic evaluation of a tree.
func BenchmarkTreeThroughput(b *testing.B) {
	p := benchPlatform(b, 50, 0.12)
	tree, err := BuildTree(p, 0, PruneDegree)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if TreeThroughput(p, tree, OnePort) <= 0 {
			b.Fatal("non-positive throughput")
		}
	}
}

// BenchmarkRandomPlatformGeneration times the Table 2 platform generator.
func BenchmarkRandomPlatformGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := RandomPlatform(50, 0.12, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTiersPlatformGeneration times the Tiers-like generator used by
// Table 3.
func BenchmarkTiersPlatformGeneration(b *testing.B) {
	cfg := Tiers65Config()
	for i := 0; i < b.N; i++ {
		if _, err := TiersPlatform(cfg, int64(i+1)); err != nil {
			b.Fatal(err)
		}
	}
}
