package maxflow

import (
	"fmt"
	"math"
)

// epsilon below which capacities and flows are treated as zero.
const eps = 1e-12

// edge is an internal arc of the residual network. Arcs are stored in pairs:
// arc 2k is the forward arc of user edge k and arc 2k+1 is its reverse.
type edge struct {
	to  int
	cap float64 // remaining capacity
}

// Network is a flow network with float64 capacities.
type Network struct {
	n     int
	arcs  []edge
	adj   [][]int // node -> arc indices
	orig  []float64
	level []int
	iter  []int
}

// New returns an empty network with n nodes.
func New(n int) *Network {
	if n < 0 {
		panic(fmt.Sprintf("maxflow: negative node count %d", n))
	}
	return &Network{
		n:   n,
		adj: make([][]int, n),
	}
}

// NumNodes returns the number of nodes of the network.
func (nw *Network) NumNodes() int { return nw.n }

// NumEdges returns the number of user edges (not counting reverse arcs).
func (nw *Network) NumEdges() int { return len(nw.arcs) / 2 }

// AddEdge adds a directed edge with the given capacity and returns its edge
// ID. Negative capacities are treated as zero.
func (nw *Network) AddEdge(from, to int, capacity float64) int {
	if from < 0 || from >= nw.n || to < 0 || to >= nw.n {
		panic(fmt.Sprintf("maxflow: edge (%d, %d) out of range [0, %d)", from, to, nw.n))
	}
	if capacity < 0 || math.IsNaN(capacity) {
		capacity = 0
	}
	id := len(nw.arcs) / 2
	nw.arcs = append(nw.arcs, edge{to: to, cap: capacity}, edge{to: from, cap: 0})
	nw.adj[from] = append(nw.adj[from], 2*id)
	nw.adj[to] = append(nw.adj[to], 2*id+1)
	nw.orig = append(nw.orig, capacity)
	return id
}

// SetCapacity resets the capacity of a user edge and clears any flow on it.
// Call Reset (or SetCapacity on every edge) before re-running MaxFlow with
// new capacities.
func (nw *Network) SetCapacity(edgeID int, capacity float64) {
	if capacity < 0 || math.IsNaN(capacity) {
		capacity = 0
	}
	nw.orig[edgeID] = capacity
	nw.arcs[2*edgeID].cap = capacity
	nw.arcs[2*edgeID+1].cap = 0
}

// Reset restores every edge to its original capacity, removing all flow.
func (nw *Network) Reset() {
	for id, c := range nw.orig {
		nw.arcs[2*id].cap = c
		nw.arcs[2*id+1].cap = 0
	}
}

// Flow returns the amount of flow currently routed through a user edge
// (meaningful after MaxFlow).
func (nw *Network) Flow(edgeID int) float64 {
	f := nw.orig[edgeID] - nw.arcs[2*edgeID].cap
	if f < eps {
		return 0
	}
	return f
}

// bfsLevels builds the level graph for Dinic's algorithm. It returns true if
// the sink is reachable in the residual network.
func (nw *Network) bfsLevels(s, t int) bool {
	if nw.level == nil {
		nw.level = make([]int, nw.n)
	}
	for i := range nw.level {
		nw.level[i] = -1
	}
	queue := make([]int, 0, nw.n)
	queue = append(queue, s)
	nw.level[s] = 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, ai := range nw.adj[u] {
			a := nw.arcs[ai]
			if a.cap > eps && nw.level[a.to] < 0 {
				nw.level[a.to] = nw.level[u] + 1
				queue = append(queue, a.to)
			}
		}
	}
	return nw.level[t] >= 0
}

// dfsBlocking pushes flow along the level graph (blocking-flow step).
func (nw *Network) dfsBlocking(u, t int, pushed float64) float64 {
	if u == t {
		return pushed
	}
	for ; nw.iter[u] < len(nw.adj[u]); nw.iter[u]++ {
		ai := nw.adj[u][nw.iter[u]]
		a := &nw.arcs[ai]
		if a.cap <= eps || nw.level[a.to] != nw.level[u]+1 {
			continue
		}
		d := nw.dfsBlocking(a.to, t, math.Min(pushed, a.cap))
		if d > eps {
			a.cap -= d
			nw.arcs[ai^1].cap += d
			return d
		}
	}
	return 0
}

// MaxFlow computes the maximum flow from s to t with Dinic's algorithm and
// returns its value. The flow remains recorded in the network (see Flow and
// MinCutSourceSide); call Reset before computing a flow with fresh
// capacities.
func (nw *Network) MaxFlow(s, t int) float64 {
	if s < 0 || s >= nw.n || t < 0 || t >= nw.n {
		panic(fmt.Sprintf("maxflow: source/sink (%d, %d) out of range [0, %d)", s, t, nw.n))
	}
	if s == t {
		return 0
	}
	var total float64
	if nw.iter == nil {
		nw.iter = make([]int, nw.n)
	}
	for nw.bfsLevels(s, t) {
		for i := range nw.iter {
			nw.iter[i] = 0
		}
		for {
			pushed := nw.dfsBlocking(s, t, math.Inf(1))
			if pushed <= eps {
				break
			}
			total += pushed
		}
	}
	return total
}

// MinCutSourceSide returns, after MaxFlow(s, t), the set of nodes reachable
// from s in the residual network. The edges leaving this set form a minimum
// s-t cut.
func (nw *Network) MinCutSourceSide(s int) []bool {
	reach := make([]bool, nw.n)
	if s < 0 || s >= nw.n {
		return reach
	}
	queue := []int{s}
	reach[s] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, ai := range nw.adj[u] {
			a := nw.arcs[ai]
			if a.cap > eps && !reach[a.to] {
				reach[a.to] = true
				queue = append(queue, a.to)
			}
		}
	}
	return reach
}

// MinCutSinkSide returns, after MaxFlow(s, t), the complement of the set of
// nodes that can still reach t in the residual network. The edges leaving
// this set also form a minimum s-t cut (in general a different one from
// MinCutSourceSide), which is useful to generate several violated
// constraints per separation round in cutting-plane algorithms.
func (nw *Network) MinCutSinkSide(t int) []bool {
	canReach := make([]bool, nw.n)
	if t < 0 || t >= nw.n {
		return canReach
	}
	// Reverse reachability: v can reach t if some residual arc v -> u exists
	// with u already able to reach t.
	queue := []int{t}
	canReach[t] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, ai := range nw.adj[u] {
			// Arc ai leaves u; its paired arc ai^1 enters u from arcs[ai].to.
			// v = arcs[ai].to can reach t through the residual arc v -> u iff
			// that arc (ai^1) has residual capacity.
			v := nw.arcs[ai].to
			if !canReach[v] && nw.arcs[ai^1].cap > eps {
				canReach[v] = true
				queue = append(queue, v)
			}
		}
	}
	side := make([]bool, nw.n)
	for v := range side {
		side[v] = !canReach[v]
	}
	return side
}

// CutEdges returns the user-edge IDs that cross the given cut from the
// source side to the sink side (i.e. the edges whose capacities sum to the
// cut capacity).
func (nw *Network) CutEdges(sourceSide []bool) []int {
	var ids []int
	for id := 0; id < nw.NumEdges(); id++ {
		// The forward arc 2*id enters arcs[2*id].to; its reverse arc points
		// back to the tail node.
		to := nw.arcs[2*id].to
		from := nw.arcs[2*id+1].to
		if sourceSide[from] && !sourceSide[to] {
			ids = append(ids, id)
		}
	}
	return ids
}

// CutCapacity returns the total original capacity of the edges crossing the
// cut from the source side to the sink side.
func (nw *Network) CutCapacity(sourceSide []bool) float64 {
	var total float64
	for _, id := range nw.CutEdges(sourceSide) {
		total += nw.orig[id]
	}
	return total
}
