// Package maxflow implements Dinic's maximum-flow algorithm on networks
// with float64 capacities, together with minimum-cut extraction. It is the
// separation oracle of the cutting-plane solver in package steady: the
// steady-state broadcast LP requires that, for every destination, the edge
// rates support a flow of value TP from the source, which by max-flow /
// min-cut duality is equivalent to every source-destination cut having
// capacity at least TP.
package maxflow
