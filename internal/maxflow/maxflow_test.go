package maxflow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSingleEdge(t *testing.T) {
	nw := New(2)
	id := nw.AddEdge(0, 1, 3.5)
	if got := nw.MaxFlow(0, 1); math.Abs(got-3.5) > 1e-9 {
		t.Fatalf("flow = %v, want 3.5", got)
	}
	if got := nw.Flow(id); math.Abs(got-3.5) > 1e-9 {
		t.Fatalf("edge flow = %v, want 3.5", got)
	}
}

func TestClassicDiamond(t *testing.T) {
	// s=0, t=3; two paths with a cross edge. Classic max-flow example.
	nw := New(4)
	nw.AddEdge(0, 1, 3)
	nw.AddEdge(0, 2, 2)
	nw.AddEdge(1, 2, 5)
	nw.AddEdge(1, 3, 2)
	nw.AddEdge(2, 3, 3)
	if got := nw.MaxFlow(0, 3); math.Abs(got-5) > 1e-9 {
		t.Fatalf("flow = %v, want 5", got)
	}
}

func TestCLRSExample(t *testing.T) {
	// The flow network from CLRS (Figure 26.1): max flow 23.
	nw := New(6)
	s, v1, v2, v3, v4, t0 := 0, 1, 2, 3, 4, 5
	nw.AddEdge(s, v1, 16)
	nw.AddEdge(s, v2, 13)
	nw.AddEdge(v1, v3, 12)
	nw.AddEdge(v2, v1, 4)
	nw.AddEdge(v2, v4, 14)
	nw.AddEdge(v3, v2, 9)
	nw.AddEdge(v3, t0, 20)
	nw.AddEdge(v4, v3, 7)
	nw.AddEdge(v4, t0, 4)
	if got := nw.MaxFlow(s, t0); math.Abs(got-23) > 1e-9 {
		t.Fatalf("flow = %v, want 23", got)
	}
	cut := nw.MinCutSourceSide(s)
	if got := nw.CutCapacity(cut); math.Abs(got-23) > 1e-9 {
		t.Fatalf("cut capacity = %v, want 23 (max-flow = min-cut)", got)
	}
}

func TestDisconnected(t *testing.T) {
	nw := New(4)
	nw.AddEdge(0, 1, 5)
	nw.AddEdge(2, 3, 5)
	if got := nw.MaxFlow(0, 3); got != 0 {
		t.Fatalf("flow across disconnected graph = %v, want 0", got)
	}
	cut := nw.MinCutSourceSide(0)
	if !cut[0] || !cut[1] || cut[2] || cut[3] {
		t.Fatalf("source side = %v", cut)
	}
}

func TestSourceEqualsSink(t *testing.T) {
	nw := New(2)
	nw.AddEdge(0, 1, 1)
	if nw.MaxFlow(0, 0) != 0 {
		t.Fatal("flow from a node to itself should be 0")
	}
}

func TestZeroAndNegativeCapacities(t *testing.T) {
	nw := New(3)
	nw.AddEdge(0, 1, 0)
	nw.AddEdge(1, 2, -5) // treated as zero
	if got := nw.MaxFlow(0, 2); got != 0 {
		t.Fatalf("flow = %v, want 0", got)
	}
	if nw.NumEdges() != 2 || nw.NumNodes() != 3 {
		t.Fatal("accessors wrong")
	}
}

func TestResetAndSetCapacity(t *testing.T) {
	nw := New(3)
	a := nw.AddEdge(0, 1, 2)
	b := nw.AddEdge(1, 2, 1)
	if got := nw.MaxFlow(0, 2); math.Abs(got-1) > 1e-9 {
		t.Fatalf("flow = %v, want 1", got)
	}
	// Re-running without reset gives 0 extra flow (saturated residual).
	if got := nw.MaxFlow(0, 2); got > 1e-9 {
		t.Fatalf("second run without reset = %v, want 0", got)
	}
	nw.Reset()
	if got := nw.MaxFlow(0, 2); math.Abs(got-1) > 1e-9 {
		t.Fatalf("flow after reset = %v, want 1", got)
	}
	nw.SetCapacity(b, 5)
	nw.SetCapacity(a, 5)
	if got := nw.MaxFlow(0, 2); math.Abs(got-5) > 1e-9 {
		t.Fatalf("flow after capacity update = %v, want 5", got)
	}
}

func TestPanicsOnBadInput(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("New(-1)", func() { New(-1) })
	mustPanic("AddEdge out of range", func() { New(2).AddEdge(0, 5, 1) })
	mustPanic("MaxFlow out of range", func() {
		nw := New(2)
		nw.AddEdge(0, 1, 1)
		nw.MaxFlow(0, 7)
	})
}

func TestMinCutSourceSideInvalidSource(t *testing.T) {
	nw := New(2)
	nw.AddEdge(0, 1, 1)
	cut := nw.MinCutSourceSide(-1)
	for _, v := range cut {
		if v {
			t.Fatal("invalid source should yield an empty source side")
		}
	}
}

func TestCutEdges(t *testing.T) {
	nw := New(4)
	nw.AddEdge(0, 1, 1)
	e1 := nw.AddEdge(1, 2, 1)
	nw.AddEdge(2, 3, 1)
	nw.AddEdge(3, 1, 1) // back edge, never crosses the cut below
	cut := []bool{true, true, false, false}
	ids := nw.CutEdges(cut)
	if len(ids) != 1 || ids[0] != e1 {
		t.Fatalf("cut edges = %v, want [%d]", ids, e1)
	}
	if got := nw.CutCapacity(cut); got != 1 {
		t.Fatalf("cut capacity = %v, want 1", got)
	}
}

// TestFlowConservationProperty checks on random graphs that (i) the flow
// value equals the min-cut capacity found from the residual graph, (ii) flow
// on every edge is within capacity, and (iii) flow is conserved at every
// intermediate node.
func TestFlowConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		nw := New(n)
		type rec struct{ from, to int }
		var recs []rec
		for k := 0; k < 3*n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			nw.AddEdge(u, v, rng.Float64()*10)
			recs = append(recs, rec{u, v})
		}
		s, t0 := 0, n-1
		val := nw.MaxFlow(s, t0)

		// Max-flow equals min-cut capacity.
		cut := nw.MinCutSourceSide(s)
		if !cut[s] || cut[t0] && val > 1e-7 {
			// If the sink is still reachable the flow is not maximum.
			return false
		}
		if math.Abs(nw.CutCapacity(cut)-val) > 1e-6 {
			return false
		}

		// Capacity and conservation constraints.
		net := make([]float64, n)
		for id, r := range recs {
			fl := nw.Flow(id)
			if fl < -1e-9 {
				return false
			}
			net[r.from] -= fl
			net[r.to] += fl
		}
		for u := 0; u < n; u++ {
			if u == s || u == t0 {
				continue
			}
			if math.Abs(net[u]) > 1e-6 {
				return false
			}
		}
		return math.Abs(net[t0]-val) < 1e-6 && math.Abs(net[s]+val) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAgainstBruteForceOnSmallGraphs compares Dinic with a brute-force
// enumeration of all s-t cuts on small random graphs.
func TestAgainstBruteForceOnSmallGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(4) // 3..6 nodes
		nw := New(n)
		type rec struct {
			from, to int
			cap      float64
		}
		var recs []rec
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.5 {
					c := rng.Float64() * 5
					nw.AddEdge(u, v, c)
					recs = append(recs, rec{u, v, c})
				}
			}
		}
		s, t0 := 0, n-1
		got := nw.MaxFlow(s, t0)

		// Brute force: minimum over all subsets containing s but not t.
		best := math.Inf(1)
		for mask := 0; mask < 1<<n; mask++ {
			if mask&(1<<s) == 0 || mask&(1<<t0) != 0 {
				continue
			}
			var capSum float64
			for _, r := range recs {
				if mask&(1<<r.from) != 0 && mask&(1<<r.to) == 0 {
					capSum += r.cap
				}
			}
			if capSum < best {
				best = capSum
			}
		}
		if math.Abs(got-best) > 1e-6 {
			t.Fatalf("trial %d: Dinic %v vs brute-force min cut %v", trial, got, best)
		}
	}
}
