package model

import (
	"fmt"
	"math"
)

// Regime identifies one of the three broadcasting approaches summarized in
// Table 1 of the paper.
type Regime int

const (
	// STA is "Single Tree, Atomic": the whole message is sent at once along
	// a single spanning tree; the objective is makespan minimization.
	STA Regime = iota
	// STP is "Single Tree, Pipelined": the message is cut into slices that
	// are pipelined along a single spanning tree; the objective is
	// steady-state throughput maximization. This is the paper's main subject.
	STP
	// MTP is "Multiple Trees, Pipelined": slices are pipelined along several
	// spanning trees simultaneously; the optimal throughput is computable in
	// polynomial time and serves as the reference bound.
	MTP
)

// String returns the paper's label for the regime.
func (r Regime) String() string {
	switch r {
	case STA:
		return "STA"
	case STP:
		return "STP"
	case MTP:
		return "MTP"
	default:
		return fmt.Sprintf("Regime(%d)", int(r))
	}
}

// PortModel selects how many communications a node may be involved in
// simultaneously (Section 2 of the paper).
type PortModel int

const (
	// OnePortBidirectional: a node performs at most one send and one receive
	// at any time; they may overlap with each other. Sender and receiver are
	// blocked for the whole link occupation T(u,v). This is the model used
	// for most of the paper's experiments.
	OnePortBidirectional PortModel = iota
	// OnePortUnidirectional: a node is involved in at most one communication
	// at a time, send or receive (stricter variant, provided as an
	// ablation).
	OnePortUnidirectional
	// MultiPort: a sender serializes only its per-send overhead send_u while
	// link occupations may overlap (Section 3.2).
	MultiPort
)

// String returns a human-readable name for the port model.
func (m PortModel) String() string {
	switch m {
	case OnePortBidirectional:
		return "one-port (bidirectional)"
	case OnePortUnidirectional:
		return "one-port (unidirectional)"
	case MultiPort:
		return "multi-port"
	default:
		return fmt.Sprintf("PortModel(%d)", int(m))
	}
}

// AffineCost is an affine communication cost: Time(L) = Latency + L*PerUnit.
// In the paper's notation, a link occupation uses (α, β), the sender
// occupation (s, s') and the receiver occupation (r, r').
type AffineCost struct {
	Latency float64 `json:"latency"`
	PerUnit float64 `json:"perUnit"`
}

// Time returns the occupation time for a message of the given size.
func (c AffineCost) Time(size float64) float64 {
	return c.Latency + size*c.PerUnit
}

// IsZero reports whether the cost is the zero cost.
func (c AffineCost) IsZero() bool { return c.Latency == 0 && c.PerUnit == 0 }

// Valid reports whether the cost parameters are finite and non-negative.
func (c AffineCost) Valid() bool {
	ok := func(x float64) bool { return x >= 0 && !math.IsInf(x, 0) && !math.IsNaN(x) }
	return ok(c.Latency) && ok(c.PerUnit)
}

// Linear returns an affine cost with zero latency and the given per-unit
// cost (the form used throughout the paper's experiments, where slices have
// a fixed size and start-up overheads are folded into the per-slice time).
func Linear(perUnit float64) AffineCost { return AffineCost{PerUnit: perUnit} }

// FromBandwidth returns a linear cost corresponding to the given bandwidth
// (data units per time unit). It panics if bandwidth is not positive.
func FromBandwidth(bandwidth float64) AffineCost {
	if bandwidth <= 0 {
		panic(fmt.Sprintf("model: non-positive bandwidth %v", bandwidth))
	}
	return AffineCost{PerUnit: 1 / bandwidth}
}

// NodePeriod computes the steady-state period of a tree node, i.e. the time
// the node needs between two consecutive message slices, under the given
// port model. The throughput contribution of the node is 1/period.
//
//   - childTimes are the link occupations T(u,v) towards the node's children
//     in the broadcast tree (empty for leaves);
//   - inTime is the link occupation T(parent,u) of the incoming tree edge
//     (0 for the source);
//   - sendOverhead and recvOverhead are the per-transfer sender/receiver
//     occupations used under the multi-port model (ignored otherwise).
//
// Formulas (Sections 2.4 and 3.2 of the paper):
//
//	one-port bidirectional:  max( Σ childTimes, inTime )
//	one-port unidirectional: Σ childTimes + inTime
//	multi-port:              max( |children|·sendOverhead, max childTimes, recvOverhead )
func NodePeriod(m PortModel, childTimes []float64, inTime, sendOverhead, recvOverhead float64) float64 {
	switch m {
	case OnePortBidirectional:
		var sum float64
		for _, t := range childTimes {
			sum += t
		}
		return math.Max(sum, inTime)
	case OnePortUnidirectional:
		var sum float64
		for _, t := range childTimes {
			sum += t
		}
		return sum + inTime
	case MultiPort:
		period := float64(len(childTimes)) * sendOverhead
		for _, t := range childTimes {
			if t > period {
				period = t
			}
		}
		if recvOverhead > period && inTime > 0 {
			period = recvOverhead
		}
		return period
	default:
		panic(fmt.Sprintf("model: unknown port model %d", int(m)))
	}
}

// Throughput converts a steady-state period into a throughput (slices per
// time unit). A zero or negative period (a node with nothing to do) yields
// +Inf, so that it never constrains the tree throughput.
func Throughput(period float64) float64 {
	if period <= 0 {
		return math.Inf(1)
	}
	return 1 / period
}
