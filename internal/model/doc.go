// Package model defines the communication cost models of the paper
// "Broadcast Trees for Heterogeneous Platforms" (Beaumont, Marchal, Robert):
// affine link costs, the one-port (bidirectional and unidirectional)
// and multi-port port models, and the per-node steady-state period formulas
// used to evaluate broadcast trees.
package model
