package model

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRegimeString(t *testing.T) {
	cases := map[Regime]string{STA: "STA", STP: "STP", MTP: "MTP", Regime(42): "Regime(42)"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("Regime(%d).String() = %q, want %q", int(r), got, want)
		}
	}
}

func TestPortModelString(t *testing.T) {
	if OnePortBidirectional.String() == "" || OnePortUnidirectional.String() == "" || MultiPort.String() == "" {
		t.Fatal("empty port model name")
	}
	if PortModel(9).String() != "PortModel(9)" {
		t.Fatalf("unknown port model string = %q", PortModel(9).String())
	}
}

func TestAffineCostTime(t *testing.T) {
	c := AffineCost{Latency: 2, PerUnit: 0.5}
	if got := c.Time(10); got != 7 {
		t.Fatalf("Time(10) = %v, want 7", got)
	}
	if got := c.Time(0); got != 2 {
		t.Fatalf("Time(0) = %v, want 2", got)
	}
}

func TestAffineCostValid(t *testing.T) {
	if !(AffineCost{Latency: 1, PerUnit: 2}).Valid() {
		t.Fatal("valid cost rejected")
	}
	bad := []AffineCost{
		{Latency: -1},
		{PerUnit: -0.1},
		{Latency: math.Inf(1)},
		{PerUnit: math.NaN()},
	}
	for _, c := range bad {
		if c.Valid() {
			t.Errorf("invalid cost %+v accepted", c)
		}
	}
}

func TestAffineCostIsZero(t *testing.T) {
	if !(AffineCost{}).IsZero() {
		t.Fatal("zero cost not detected")
	}
	if (AffineCost{PerUnit: 1}).IsZero() {
		t.Fatal("nonzero cost reported zero")
	}
}

func TestLinearAndFromBandwidth(t *testing.T) {
	c := Linear(3)
	if c.Latency != 0 || c.PerUnit != 3 {
		t.Fatalf("Linear(3) = %+v", c)
	}
	b := FromBandwidth(100)
	if math.Abs(b.Time(200)-2) > 1e-12 {
		t.Fatalf("FromBandwidth(100).Time(200) = %v, want 2", b.Time(200))
	}
}

func TestFromBandwidthPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromBandwidth(0) did not panic")
		}
	}()
	FromBandwidth(0)
}

func TestNodePeriodOnePortBidirectional(t *testing.T) {
	// Sum of child times dominates.
	p := NodePeriod(OnePortBidirectional, []float64{2, 3, 1}, 4, 0, 0)
	if p != 6 {
		t.Fatalf("period = %v, want 6", p)
	}
	// Incoming time dominates.
	p = NodePeriod(OnePortBidirectional, []float64{1}, 5, 0, 0)
	if p != 5 {
		t.Fatalf("period = %v, want 5", p)
	}
	// Leaf node.
	p = NodePeriod(OnePortBidirectional, nil, 3, 0, 0)
	if p != 3 {
		t.Fatalf("leaf period = %v, want 3", p)
	}
}

func TestNodePeriodOnePortUnidirectional(t *testing.T) {
	p := NodePeriod(OnePortUnidirectional, []float64{2, 3}, 4, 0, 0)
	if p != 9 {
		t.Fatalf("period = %v, want 9", p)
	}
}

func TestNodePeriodMultiPort(t *testing.T) {
	// Paper Figure 3(a): serialized send overhead dominates.
	p := NodePeriod(MultiPort, []float64{2, 2, 2}, 1, 1.5, 0)
	if p != 4.5 {
		t.Fatalf("period = %v, want 4.5 (3 x 1.5)", p)
	}
	// Paper Figure 3(b): longest link occupation dominates.
	p = NodePeriod(MultiPort, []float64{2, 7, 2}, 1, 1.5, 0)
	if p != 7 {
		t.Fatalf("period = %v, want 7", p)
	}
	// Receiver overhead can dominate for a node with a parent.
	p = NodePeriod(MultiPort, []float64{1}, 2, 0.5, 3)
	if p != 3 {
		t.Fatalf("period = %v, want 3", p)
	}
	// Source (inTime = 0) ignores the receive overhead.
	p = NodePeriod(MultiPort, []float64{1}, 0, 0.5, 3)
	if p != 1 {
		t.Fatalf("source period = %v, want 1", p)
	}
}

func TestNodePeriodUnknownModelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown port model did not panic")
		}
	}()
	NodePeriod(PortModel(99), nil, 0, 0, 0)
}

func TestThroughput(t *testing.T) {
	if got := Throughput(2); got != 0.5 {
		t.Fatalf("Throughput(2) = %v, want 0.5", got)
	}
	if !math.IsInf(Throughput(0), 1) {
		t.Fatal("Throughput(0) should be +Inf")
	}
	if !math.IsInf(Throughput(-1), 1) {
		t.Fatal("Throughput(-1) should be +Inf")
	}
}

func TestNodePeriodProperties(t *testing.T) {
	// Property: the bidirectional one-port period is never larger than the
	// unidirectional one, and the multi-port period is never larger than the
	// bidirectional one-port period when the send overhead is at most the
	// smallest child link time and recv overhead is zero.
	f := func(a, b, c, in uint8) bool {
		childTimes := []float64{float64(a%50) + 1, float64(b%50) + 1, float64(c%50) + 1}
		inTime := float64(in % 50)
		bi := NodePeriod(OnePortBidirectional, childTimes, inTime, 0, 0)
		uni := NodePeriod(OnePortUnidirectional, childTimes, inTime, 0, 0)
		minChild := math.Min(childTimes[0], math.Min(childTimes[1], childTimes[2]))
		send := minChild / 3 // 3 children x send <= min child <= sum
		mp := NodePeriod(MultiPort, childTimes, inTime, send, 0)
		return bi <= uni+1e-12 && mp <= bi+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
