package viz

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/platform"
	"repro/internal/throughput"
)

// nodeLabel returns the display label of a node: its name if set, otherwise
// its index.
func nodeLabel(p *platform.Platform, u int) string {
	if name := p.Node(u).Name; name != "" {
		return name
	}
	return fmt.Sprintf("P%d", u)
}

// PlatformDOT renders the platform as a Graphviz digraph. Every directed
// link is an edge labeled with its slice transfer time. Pairs of opposite
// links with (nearly) identical costs are rendered as a single undirected
// edge (dir=none) to keep the drawing readable.
func PlatformDOT(p *platform.Platform, name string) string {
	if name == "" {
		name = "platform"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=LR;\n  node [shape=ellipse, fontsize=10];\n  edge [fontsize=9];\n")
	for u := 0; u < p.NumNodes(); u++ {
		fmt.Fprintf(&b, "  n%d [label=%q];\n", u, nodeLabel(p, u))
	}
	skip := make(map[int]bool)
	for id := 0; id < p.NumLinks(); id++ {
		if skip[id] {
			continue
		}
		l := p.Link(id)
		t := p.SliceTime(id)
		// Look for the reverse link with the same cost.
		rev := p.LinkBetween(l.To, l.From)
		if rev > id && !skip[rev] && nearlyEqual(p.SliceTime(rev), t) {
			skip[rev] = true
			fmt.Fprintf(&b, "  n%d -> n%d [dir=none, label=\"%.3g\"];\n", l.From, l.To, t)
			continue
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"%.3g\"];\n", l.From, l.To, t)
	}
	b.WriteString("}\n")
	return b.String()
}

func nearlyEqual(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if b > a {
		scale = b
	}
	return diff <= 1e-9*scale
}

// TreeDOT renders a broadcast tree over its platform: tree links are drawn
// solid and bold, the remaining platform links dashed and grey, and the
// bottleneck node of the given report (if any) is highlighted.
func TreeDOT(p *platform.Platform, t *platform.Tree, rep *throughput.Report, name string) string {
	if name == "" {
		name = "broadcast_tree"
	}
	inTree := make(map[int]bool, p.NumNodes())
	for _, id := range t.LinkIDs() {
		inTree[id] = true
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [shape=ellipse, fontsize=10];\n  edge [fontsize=9];\n")
	for u := 0; u < p.NumNodes(); u++ {
		attrs := []string{fmt.Sprintf("label=%q", nodeLabel(p, u))}
		if u == t.Root {
			attrs = append(attrs, "shape=doublecircle")
		}
		if rep != nil && rep.Bottleneck == u && u != t.Root {
			attrs = append(attrs, "style=filled", "fillcolor=lightcoral")
		} else if rep != nil && rep.Bottleneck == u {
			attrs = append(attrs, "style=filled", "fillcolor=lightsalmon")
		}
		fmt.Fprintf(&b, "  n%d [%s];\n", u, strings.Join(attrs, ", "))
	}
	for id := 0; id < p.NumLinks(); id++ {
		l := p.Link(id)
		if inTree[id] {
			fmt.Fprintf(&b, "  n%d -> n%d [label=\"%.3g\", penwidth=2];\n", l.From, l.To, p.SliceTime(id))
		} else {
			fmt.Fprintf(&b, "  n%d -> n%d [style=dashed, color=grey70, arrowsize=0.5];\n", l.From, l.To)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// RoutingDOT renders a routed broadcast schedule: every logical transfer is
// an edge from the logical parent to the node, labeled with the number of
// physical hops of its routed path, and every physical link is annotated
// with its multiplicity (how many transfers it carries).
func RoutingDOT(p *platform.Platform, r *platform.Routing, name string) string {
	if name == "" {
		name = "routed_broadcast"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n", name)
	b.WriteString("  rankdir=TB;\n  node [shape=ellipse, fontsize=10];\n  edge [fontsize=9];\n")
	for u := 0; u < p.NumNodes(); u++ {
		shape := ""
		if u == r.Root {
			shape = ", shape=doublecircle"
		}
		fmt.Fprintf(&b, "  n%d [label=%q%s];\n", u, nodeLabel(p, u), shape)
	}
	for v := 0; v < r.NumNodes(); v++ {
		if v == r.Root || r.LogicalParent[v] < 0 {
			continue
		}
		fmt.Fprintf(&b, "  n%d -> n%d [label=\"%d hop(s)\", penwidth=2];\n",
			r.LogicalParent[v], v, len(r.Paths[v]))
	}
	mult := r.LinkMultiplicity(p)
	for id, k := range mult {
		if k <= 1 {
			continue
		}
		l := p.Link(id)
		fmt.Fprintf(&b, "  n%d -> n%d [style=dotted, color=red, label=\"x%d\"];\n", l.From, l.To, k)
	}
	b.WriteString("}\n")
	return b.String()
}

// TreeASCII renders a broadcast tree as an indented ASCII outline with the
// per-node steady-state periods of the given report (children sorted by
// node index).
func TreeASCII(p *platform.Platform, t *platform.Tree, rep *throughput.Report) string {
	var b strings.Builder
	var walk func(u int, prefix string)
	walk = func(u int, prefix string) {
		label := nodeLabel(p, u)
		if rep != nil {
			fmt.Fprintf(&b, "%s%s (period %.3g)", prefix, label, rep.Nodes[u].Period)
			if rep.Bottleneck == u {
				b.WriteString("  <- bottleneck")
			}
		} else {
			fmt.Fprintf(&b, "%s%s", prefix, label)
		}
		b.WriteByte('\n')
		children := append([]int(nil), t.Children(u)...)
		sort.Ints(children)
		for _, c := range children {
			walk(c, prefix+"  ")
		}
	}
	walk(t.Root, "")
	return b.String()
}
