package viz

import (
	"strings"
	"testing"

	"repro/internal/heuristics"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/throughput"
	"repro/internal/topology"
)

// smallPlatform builds a 4-node platform with a named source and a tree.
func smallPlatform(t *testing.T) (*platform.Platform, *platform.Tree) {
	t.Helper()
	p := platform.New(4)
	p.SetNode(0, platform.Node{Name: "source"})
	for v := 1; v < 4; v++ {
		p.MustAddLink(0, v, model.Linear(float64(v)))
		p.MustAddLink(v, 0, model.Linear(float64(v)))
	}
	tr := platform.NewTree(4, 0)
	for v := 1; v < 4; v++ {
		tr.SetParent(v, 0, p.LinkBetween(0, v))
	}
	return p, tr
}

func TestPlatformDOT(t *testing.T) {
	p, _ := smallPlatform(t)
	dot := PlatformDOT(p, "")
	if !strings.HasPrefix(dot, "digraph \"platform\" {") || !strings.HasSuffix(dot, "}\n") {
		t.Fatalf("malformed dot:\n%s", dot)
	}
	if !strings.Contains(dot, `label="source"`) {
		t.Fatal("node name missing")
	}
	// Symmetric link pairs are collapsed into a single undirected edge.
	if got := strings.Count(dot, "dir=none"); got != 3 {
		t.Fatalf("expected 3 undirected edges, got %d:\n%s", got, dot)
	}
	// Asymmetric costs keep both directions.
	q := platform.New(2)
	q.MustAddLink(0, 1, model.Linear(1))
	q.MustAddLink(1, 0, model.Linear(5))
	dot = PlatformDOT(q, "asym")
	if strings.Contains(dot, "dir=none") {
		t.Fatal("asymmetric pair should not be collapsed")
	}
	if !strings.Contains(dot, "digraph \"asym\"") {
		t.Fatal("custom name not used")
	}
}

func TestTreeDOT(t *testing.T) {
	p, tr := smallPlatform(t)
	rep := throughput.Evaluate(p, tr, model.OnePortBidirectional)
	dot := TreeDOT(p, tr, rep, "")
	if !strings.Contains(dot, "doublecircle") {
		t.Fatal("root not highlighted")
	}
	if !strings.Contains(dot, "penwidth=2") {
		t.Fatal("tree edges not emphasized")
	}
	if !strings.Contains(dot, "style=dashed") {
		t.Fatal("non-tree platform links should be dashed")
	}
	if !strings.Contains(dot, "fillcolor=lightsalmon") && !strings.Contains(dot, "fillcolor=lightcoral") {
		t.Fatal("bottleneck not highlighted")
	}
	// Without a report the function still renders.
	if out := TreeDOT(p, tr, nil, "named"); !strings.Contains(out, "digraph \"named\"") {
		t.Fatal("custom name not used")
	}
}

func TestRoutingDOT(t *testing.T) {
	p, err := topology.Tiers(topology.Tiers30(), nil)
	if err != nil {
		t.Fatal(err)
	}
	routing, err := heuristics.Binomial{}.BuildRouting(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	dot := RoutingDOT(p, routing, "")
	if !strings.Contains(dot, "hop(s)") {
		t.Fatal("logical transfers missing")
	}
	// On a hierarchical platform the binomial schedule must share some links,
	// which show up as multiplicity annotations.
	if !strings.Contains(dot, "color=red") {
		t.Fatal("expected at least one link with multiplicity > 1")
	}
}

func TestTreeASCII(t *testing.T) {
	p, tr := smallPlatform(t)
	rep := throughput.Evaluate(p, tr, model.OnePortBidirectional)
	out := TreeASCII(p, tr, rep)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "source") || !strings.Contains(lines[0], "bottleneck") {
		t.Fatalf("root line wrong: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "  P1") {
		t.Fatalf("child indentation wrong: %q", lines[1])
	}
	// Without a report the outline omits the periods.
	out = TreeASCII(p, tr, nil)
	if strings.Contains(out, "period") {
		t.Fatal("period printed without a report")
	}
}
