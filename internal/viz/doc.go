// Package viz renders platforms, broadcast trees and routed schedules in
// Graphviz DOT format and as compact ASCII summaries, for inspection and for
// the documentation of experiments. Rendering is deterministic (nodes and
// links are emitted in index order) so the output is diff-friendly.
package viz
