// Package graph provides a lightweight directed-graph substrate used by the
// broadcast-tree library: adjacency storage, traversals, reachability under
// edge subsets, shortest paths, and a union-find structure.
//
// Nodes are dense integer identifiers in [0, N). Edges are directed and
// carry a float64 weight (in this repository the weight is the time T(u,v)
// needed to transfer one message slice across the link). The traversals
// accept an enabled-edge mask, which is how the rest of the repository asks
// graph questions about the live part of a mutated platform (dead links and
// crashed nodes are simply masked out) and about pruned subplatforms during
// heuristic construction, without copying the graph.
package graph
