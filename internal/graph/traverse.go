package graph

// ReachableFrom returns a boolean slice marking every node reachable from
// source by following directed edges. Only edges for which enabled[id] is
// true are traversed; a nil enabled slice means all edges are usable.
func (g *Digraph) ReachableFrom(source int, enabled []bool) []bool {
	visited := make([]bool, g.n)
	if source < 0 || source >= g.n {
		return visited
	}
	queue := make([]int, 0, g.n)
	queue = append(queue, source)
	visited[source] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, id := range g.out[u] {
			if enabled != nil && !enabled[id] {
				continue
			}
			v := g.edges[id].To
			if !visited[v] {
				visited[v] = true
				queue = append(queue, v)
			}
		}
	}
	return visited
}

// CountReachableFrom returns the number of nodes reachable from source using
// only enabled edges (including source itself).
func (g *Digraph) CountReachableFrom(source int, enabled []bool) int {
	visited := g.ReachableFrom(source, enabled)
	count := 0
	for _, v := range visited {
		if v {
			count++
		}
	}
	return count
}

// AllReachableFrom reports whether every node of the graph is reachable from
// source using only enabled edges.
func (g *Digraph) AllReachableFrom(source int, enabled []bool) bool {
	return g.CountReachableFrom(source, enabled) == g.n
}

// BFSOrder returns the nodes reachable from source in breadth-first order,
// using only enabled edges.
func (g *Digraph) BFSOrder(source int, enabled []bool) []int {
	order := make([]int, 0, g.n)
	if source < 0 || source >= g.n {
		return order
	}
	visited := make([]bool, g.n)
	queue := []int{source}
	visited[source] = true
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		for _, id := range g.out[u] {
			if enabled != nil && !enabled[id] {
				continue
			}
			v := g.edges[id].To
			if !visited[v] {
				visited[v] = true
				queue = append(queue, v)
			}
		}
	}
	return order
}

// BFSArborescence computes a breadth-first spanning arborescence rooted at
// source over the enabled edges. It returns, for every node, the ID of the
// edge used to reach it (-1 for the source and for unreachable nodes), and
// the number of reachable nodes.
func (g *Digraph) BFSArborescence(source int, enabled []bool) (parentEdge []int, reached int) {
	parentEdge = make([]int, g.n)
	for i := range parentEdge {
		parentEdge[i] = -1
	}
	if source < 0 || source >= g.n {
		return parentEdge, 0
	}
	visited := make([]bool, g.n)
	queue := []int{source}
	visited[source] = true
	reached = 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, id := range g.out[u] {
			if enabled != nil && !enabled[id] {
				continue
			}
			v := g.edges[id].To
			if !visited[v] {
				visited[v] = true
				parentEdge[v] = id
				reached++
				queue = append(queue, v)
			}
		}
	}
	return parentEdge, reached
}

// IsArborescence reports whether the set of enabled edges forms a spanning
// out-arborescence rooted at source: exactly n-1 enabled edges, every
// non-source node has exactly one enabled incoming edge, the source has
// none, and all nodes are reachable from source.
func (g *Digraph) IsArborescence(source int, enabled []bool) bool {
	if source < 0 || source >= g.n {
		return false
	}
	count := 0
	indeg := make([]int, g.n)
	for id, e := range g.edges {
		if enabled != nil && !enabled[id] {
			continue
		}
		count++
		indeg[e.To]++
	}
	if count != g.n-1 {
		return false
	}
	if indeg[source] != 0 {
		return false
	}
	for u := 0; u < g.n; u++ {
		if u == source {
			continue
		}
		if indeg[u] != 1 {
			return false
		}
	}
	return g.AllReachableFrom(source, enabled)
}
