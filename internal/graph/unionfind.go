package graph

// UnionFind is a disjoint-set (union-find) structure over n elements with
// union by rank and path compression. It is used by tree-construction
// heuristics and by topology generators to track connected components of the
// undirected support of a platform graph.
type UnionFind struct {
	parent []int
	rank   []int
	count  int
}

// NewUnionFind returns a union-find structure with n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int, n),
		rank:   make([]int, n),
		count:  n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of the set containing x.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets containing x and y. It returns true if the sets were
// distinct (i.e. a merge actually happened).
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.count--
	return true
}

// Connected reports whether x and y belong to the same set.
func (uf *UnionFind) Connected(x, y int) bool { return uf.Find(x) == uf.Find(y) }

// Count returns the current number of disjoint sets.
func (uf *UnionFind) Count() int { return uf.count }
