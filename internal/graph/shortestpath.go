package graph

import (
	"container/heap"
	"math"
)

// PathResult holds the output of a single-source shortest-path computation.
type PathResult struct {
	Source     int
	Dist       []float64 // Dist[v] is +Inf if v is unreachable
	ParentEdge []int     // edge ID used to reach v, -1 for source/unreachable
}

// Reachable reports whether node v is reachable from the source.
func (r *PathResult) Reachable(v int) bool {
	return v == r.Source || r.ParentEdge[v] >= 0
}

// pqItem is an entry of the Dijkstra priority queue.
type pqItem struct {
	node int
	dist float64
}

type pqueue []pqItem

func (q pqueue) Len() int            { return len(q) }
func (q pqueue) Less(i, j int) bool  { return q[i].dist < q[j].dist }
func (q pqueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pqueue) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pqueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Dijkstra computes shortest paths from source over the enabled edges using
// edge weights as lengths. Negative weights are not supported (weights in
// this repository are transfer times, always non-negative). A nil enabled
// slice means all edges participate.
func (g *Digraph) Dijkstra(source int, enabled []bool) *PathResult {
	res := &PathResult{
		Source:     source,
		Dist:       make([]float64, g.n),
		ParentEdge: make([]int, g.n),
	}
	for i := range res.Dist {
		res.Dist[i] = math.Inf(1)
		res.ParentEdge[i] = -1
	}
	if source < 0 || source >= g.n {
		return res
	}
	res.Dist[source] = 0
	done := make([]bool, g.n)
	q := &pqueue{{node: source, dist: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		u := it.node
		if done[u] {
			continue
		}
		done[u] = true
		for _, id := range g.out[u] {
			if enabled != nil && !enabled[id] {
				continue
			}
			e := g.edges[id]
			nd := res.Dist[u] + e.Weight
			if nd < res.Dist[e.To] {
				res.Dist[e.To] = nd
				res.ParentEdge[e.To] = id
				heap.Push(q, pqItem{node: e.To, dist: nd})
			}
		}
	}
	return res
}

// PathEdges reconstructs the list of edge IDs on the shortest path from the
// source to target, in source-to-target order. It returns nil if target is
// unreachable or equal to the source.
func (g *Digraph) PathEdges(res *PathResult, target int) []int {
	if target < 0 || target >= g.n || target == res.Source || res.ParentEdge[target] < 0 {
		return nil
	}
	var rev []int
	for v := target; v != res.Source; {
		id := res.ParentEdge[v]
		if id < 0 {
			return nil
		}
		rev = append(rev, id)
		v = g.edges[id].From
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// HopDistance computes the minimum number of hops from source to every node
// over the enabled edges (ignoring weights). Unreachable nodes get -1.
func (g *Digraph) HopDistance(source int, enabled []bool) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	if source < 0 || source >= g.n {
		return dist
	}
	dist[source] = 0
	queue := []int{source}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, id := range g.out[u] {
			if enabled != nil && !enabled[id] {
				continue
			}
			v := g.edges[id].To
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}
