package graph

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmptyGraph(t *testing.T) {
	g := New(5)
	if g.NumNodes() != 5 {
		t.Fatalf("NumNodes = %d, want 5", g.NumNodes())
	}
	if g.NumEdges() != 0 {
		t.Fatalf("NumEdges = %d, want 0", g.NumEdges())
	}
	for u := 0; u < 5; u++ {
		if g.OutDegree(u) != 0 || g.InDegree(u) != 0 {
			t.Fatalf("node %d has nonzero degree in empty graph", u)
		}
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddEdge(t *testing.T) {
	g := New(3)
	id, err := g.AddEdge(0, 1, 2.5)
	if err != nil {
		t.Fatalf("AddEdge: %v", err)
	}
	if id != 0 {
		t.Fatalf("first edge ID = %d, want 0", id)
	}
	e := g.Edge(id)
	if e.From != 0 || e.To != 1 || e.Weight != 2.5 {
		t.Fatalf("edge = %+v", e)
	}
	if !g.HasEdge(0, 1) {
		t.Fatal("HasEdge(0,1) = false")
	}
	if g.HasEdge(1, 0) {
		t.Fatal("HasEdge(1,0) = true, edges are directed")
	}
	if g.OutDegree(0) != 1 || g.InDegree(1) != 1 {
		t.Fatal("degrees not updated")
	}
}

func TestAddEdgeRangeErrors(t *testing.T) {
	g := New(2)
	cases := [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}, {5, 5}}
	for _, c := range cases {
		if _, err := g.AddEdge(c[0], c[1], 1); !errors.Is(err, ErrNodeRange) {
			t.Errorf("AddEdge(%d,%d) error = %v, want ErrNodeRange", c[0], c[1], err)
		}
	}
}

func TestMustAddEdgePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddEdge out of range did not panic")
		}
	}()
	New(1).MustAddEdge(0, 5, 1)
}

func TestEdgeBetween(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	id := g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 3, 3)
	if got := g.EdgeBetween(1, 2); got != id {
		t.Fatalf("EdgeBetween(1,2) = %d, want %d", got, id)
	}
	if got := g.EdgeBetween(2, 1); got != -1 {
		t.Fatalf("EdgeBetween(2,1) = %d, want -1", got)
	}
	if got := g.EdgeBetween(-1, 2); got != -1 {
		t.Fatalf("EdgeBetween(-1,2) = %d, want -1", got)
	}
}

func TestSetWeight(t *testing.T) {
	g := New(2)
	id := g.MustAddEdge(0, 1, 1)
	g.SetWeight(id, 7)
	if g.Edge(id).Weight != 7 {
		t.Fatalf("weight = %v, want 7", g.Edge(id).Weight)
	}
}

func TestOutInEdges(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 2)
	g.MustAddEdge(1, 2, 3)
	out := g.OutEdges(0)
	if len(out) != 2 {
		t.Fatalf("len(OutEdges(0)) = %d, want 2", len(out))
	}
	in := g.InEdges(2)
	if len(in) != 2 {
		t.Fatalf("len(InEdges(2)) = %d, want 2", len(in))
	}
	if len(g.Edges()) != 3 {
		t.Fatalf("len(Edges) = %d, want 3", len(g.Edges()))
	}
}

func TestWeightedOutDegree(t *testing.T) {
	g := New(3)
	a := g.MustAddEdge(0, 1, 1.5)
	b := g.MustAddEdge(0, 2, 2.5)
	if got := g.WeightedOutDegree(0, nil); got != 4 {
		t.Fatalf("WeightedOutDegree = %v, want 4", got)
	}
	enabled := make([]bool, g.NumEdges())
	enabled[a] = true
	if got := g.WeightedOutDegree(0, enabled); got != 1.5 {
		t.Fatalf("WeightedOutDegree(enabled a) = %v, want 1.5", got)
	}
	enabled[a] = false
	enabled[b] = true
	if got := g.WeightedOutDegree(0, enabled); got != 2.5 {
		t.Fatalf("WeightedOutDegree(enabled b) = %v, want 2.5", got)
	}
}

func TestClone(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	c := g.Clone()
	c.MustAddEdge(2, 0, 3)
	c.SetWeight(0, 42)
	if g.NumEdges() != 2 {
		t.Fatalf("original edge count changed: %d", g.NumEdges())
	}
	if g.Edge(0).Weight != 1 {
		t.Fatalf("original weight changed: %v", g.Edge(0).Weight)
	}
	if c.NumEdges() != 3 || c.Edge(0).Weight != 42 {
		t.Fatal("clone not independent")
	}
}

func TestSortedEdgeIDsByWeight(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 3) // id 0
	g.MustAddEdge(0, 2, 1) // id 1
	g.MustAddEdge(0, 3, 2) // id 2
	g.MustAddEdge(1, 2, 1) // id 3 (tie with id 1)

	asc := g.SortedEdgeIDsByWeight(nil, false)
	want := []int{1, 3, 2, 0}
	for i := range want {
		if asc[i] != want[i] {
			t.Fatalf("ascending order = %v, want %v", asc, want)
		}
	}
	desc := g.SortedEdgeIDsByWeight(nil, true)
	wantDesc := []int{0, 2, 1, 3}
	for i := range wantDesc {
		if desc[i] != wantDesc[i] {
			t.Fatalf("descending order = %v, want %v", desc, wantDesc)
		}
	}
	enabled := []bool{true, false, true, false}
	filtered := g.SortedEdgeIDsByWeight(enabled, false)
	if len(filtered) != 2 || filtered[0] != 2 || filtered[1] != 0 {
		t.Fatalf("filtered order = %v, want [2 0]", filtered)
	}
}

func TestString(t *testing.T) {
	g := New(2)
	g.MustAddEdge(0, 1, 1)
	if got := g.String(); got == "" {
		t.Fatal("String() empty")
	}
}

func lineGraph(n int) *Digraph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	return g
}

func TestReachableFromLine(t *testing.T) {
	g := lineGraph(5)
	r := g.ReachableFrom(0, nil)
	for i, ok := range r {
		if !ok {
			t.Fatalf("node %d not reachable from 0 in line", i)
		}
	}
	r2 := g.ReachableFrom(2, nil)
	if r2[0] || r2[1] || !r2[2] || !r2[3] || !r2[4] {
		t.Fatalf("reachable from 2 = %v", r2)
	}
	if g.CountReachableFrom(2, nil) != 3 {
		t.Fatalf("CountReachableFrom(2) = %d, want 3", g.CountReachableFrom(2, nil))
	}
	if !g.AllReachableFrom(0, nil) {
		t.Fatal("AllReachableFrom(0) = false")
	}
	if g.AllReachableFrom(1, nil) {
		t.Fatal("AllReachableFrom(1) = true")
	}
}

func TestReachableWithDisabledEdges(t *testing.T) {
	g := lineGraph(4)
	enabled := []bool{true, false, true}
	r := g.ReachableFrom(0, enabled)
	if !r[0] || !r[1] || r[2] || r[3] {
		t.Fatalf("reachable = %v", r)
	}
}

func TestReachableFromInvalidSource(t *testing.T) {
	g := lineGraph(3)
	if g.CountReachableFrom(-1, nil) != 0 {
		t.Fatal("negative source should reach nothing")
	}
	if got := g.BFSOrder(17, nil); len(got) != 0 {
		t.Fatal("out-of-range source should give empty BFS order")
	}
}

func TestBFSOrder(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(1, 3, 1)
	order := g.BFSOrder(0, nil)
	if len(order) != 4 || order[0] != 0 {
		t.Fatalf("BFS order = %v", order)
	}
	pos := make(map[int]int)
	for i, u := range order {
		pos[u] = i
	}
	if pos[1] > pos[3] || pos[2] > pos[3] {
		t.Fatalf("BFS order violates level ordering: %v", order)
	}
}

func TestBFSArborescence(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(1, 3, 1)
	g.MustAddEdge(2, 3, 1) // alternative parent for 3
	g.MustAddEdge(3, 4, 1)
	parentEdge, reached := g.BFSArborescence(0, nil)
	if reached != 5 {
		t.Fatalf("reached = %d, want 5", reached)
	}
	if parentEdge[0] != -1 {
		t.Fatalf("source parent edge = %d, want -1", parentEdge[0])
	}
	enabled := make([]bool, g.NumEdges())
	for v, id := range parentEdge {
		if v != 0 {
			if id < 0 {
				t.Fatalf("node %d has no parent edge", v)
			}
			enabled[id] = true
		}
	}
	if !g.IsArborescence(0, enabled) {
		t.Fatal("BFS arborescence edges do not form an arborescence")
	}
}

func TestIsArborescence(t *testing.T) {
	g := New(3)
	e0 := g.MustAddEdge(0, 1, 1)
	e1 := g.MustAddEdge(1, 2, 1)
	e2 := g.MustAddEdge(2, 0, 1)
	enabled := make([]bool, 3)
	enabled[e0], enabled[e1] = true, true
	if !g.IsArborescence(0, enabled) {
		t.Fatal("chain 0->1->2 should be an arborescence rooted at 0")
	}
	if g.IsArborescence(1, enabled) {
		t.Fatal("chain rooted at wrong node accepted")
	}
	enabled[e2] = true
	if g.IsArborescence(0, enabled) {
		t.Fatal("cycle with n edges accepted as arborescence")
	}
	if g.IsArborescence(-1, enabled) {
		t.Fatal("invalid source accepted")
	}
}

func TestDijkstraSimple(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 5)
	g.MustAddEdge(2, 3, 1)
	res := g.Dijkstra(0, nil)
	want := []float64{0, 1, 2, 3}
	for i, w := range want {
		if math.Abs(res.Dist[i]-w) > 1e-12 {
			t.Fatalf("Dist[%d] = %v, want %v", i, res.Dist[i], w)
		}
	}
	path := g.PathEdges(res, 3)
	if len(path) != 3 {
		t.Fatalf("path length = %d, want 3 edges", len(path))
	}
	if g.Edge(path[0]).From != 0 || g.Edge(path[len(path)-1]).To != 3 {
		t.Fatalf("path endpoints wrong: %v", path)
	}
	if !res.Reachable(3) {
		t.Fatal("node 3 should be reachable")
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	res := g.Dijkstra(0, nil)
	if !math.IsInf(res.Dist[2], 1) {
		t.Fatalf("Dist[2] = %v, want +Inf", res.Dist[2])
	}
	if res.Reachable(2) {
		t.Fatal("node 2 reported reachable")
	}
	if g.PathEdges(res, 2) != nil {
		t.Fatal("path to unreachable node should be nil")
	}
	if g.PathEdges(res, 0) != nil {
		t.Fatal("path to source should be nil")
	}
}

func TestDijkstraRespectsEnabled(t *testing.T) {
	g := New(3)
	fast := g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	enabled := make([]bool, g.NumEdges())
	for i := range enabled {
		enabled[i] = true
	}
	enabled[fast] = false
	res := g.Dijkstra(0, enabled)
	if math.Abs(res.Dist[2]-2) > 1e-12 {
		t.Fatalf("Dist[2] = %v, want 2 when direct edge disabled", res.Dist[2])
	}
}

func TestDijkstraInvalidSource(t *testing.T) {
	g := lineGraph(3)
	res := g.Dijkstra(9, nil)
	for i := range res.Dist {
		if !math.IsInf(res.Dist[i], 1) {
			t.Fatalf("Dist[%d] finite for invalid source", i)
		}
	}
}

func TestDijkstraAgainstHopsOnUnitWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 20; iter++ {
		n := 3 + rng.Intn(20)
		g := New(n)
		for i := 1; i < n; i++ {
			g.MustAddEdge(rng.Intn(i), i, 1)
		}
		for k := 0; k < n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v, 1)
			}
		}
		res := g.Dijkstra(0, nil)
		hops := g.HopDistance(0, nil)
		for v := 0; v < n; v++ {
			if hops[v] < 0 {
				if !math.IsInf(res.Dist[v], 1) {
					t.Fatalf("node %d unreachable by BFS but Dijkstra dist %v", v, res.Dist[v])
				}
				continue
			}
			if math.Abs(res.Dist[v]-float64(hops[v])) > 1e-9 {
				t.Fatalf("node %d: Dijkstra %v vs hops %d", v, res.Dist[v], hops[v])
			}
		}
	}
}

func TestHopDistance(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 10)
	g.MustAddEdge(1, 2, 10)
	g.MustAddEdge(0, 2, 100)
	d := g.HopDistance(0, nil)
	if d[0] != 0 || d[1] != 1 || d[2] != 1 || d[3] != -1 {
		t.Fatalf("hop distances = %v", d)
	}
	if got := g.HopDistance(-3, nil); got[0] != -1 {
		t.Fatal("invalid source should yield all -1")
	}
}

func TestUnionFindBasic(t *testing.T) {
	uf := NewUnionFind(5)
	if uf.Count() != 5 {
		t.Fatalf("Count = %d, want 5", uf.Count())
	}
	if !uf.Union(0, 1) {
		t.Fatal("first union returned false")
	}
	if uf.Union(0, 1) {
		t.Fatal("repeated union returned true")
	}
	if !uf.Connected(0, 1) {
		t.Fatal("0 and 1 should be connected")
	}
	if uf.Connected(0, 2) {
		t.Fatal("0 and 2 should not be connected")
	}
	uf.Union(2, 3)
	uf.Union(1, 3)
	if uf.Count() != 2 {
		t.Fatalf("Count = %d, want 2", uf.Count())
	}
	if !uf.Connected(0, 3) {
		t.Fatal("transitive connectivity failed")
	}
}

func TestUnionFindPropertyMatchesBFS(t *testing.T) {
	// Property: after applying the same undirected edges, union-find
	// connectivity matches reachability on a symmetrized graph.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g := New(n)
		uf := NewUnionFind(n)
		for k := 0; k < n; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			g.MustAddEdge(u, v, 1)
			g.MustAddEdge(v, u, 1)
			uf.Union(u, v)
		}
		for u := 0; u < n; u++ {
			r := g.ReachableFrom(u, nil)
			for v := 0; v < n; v++ {
				if r[v] != uf.Connected(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestArborescencePropertyFromRandomGraphs(t *testing.T) {
	// Property: for any graph where all nodes are reachable from 0, the BFS
	// arborescence edge set is accepted by IsArborescence, and removing any
	// one of its edges breaks reachability.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		g := New(n)
		for i := 1; i < n; i++ {
			g.MustAddEdge(rng.Intn(i), i, 1+rng.Float64())
		}
		for k := 0; k < n/2; k++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.MustAddEdge(u, v, 1+rng.Float64())
			}
		}
		parentEdge, reached := g.BFSArborescence(0, nil)
		if reached != n {
			return false
		}
		enabled := make([]bool, g.NumEdges())
		for v, id := range parentEdge {
			if v != 0 {
				enabled[id] = true
			}
		}
		if !g.IsArborescence(0, enabled) {
			return false
		}
		for v, id := range parentEdge {
			if v == 0 {
				continue
			}
			enabled[id] = false
			if g.AllReachableFrom(0, enabled) {
				return false
			}
			enabled[id] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
