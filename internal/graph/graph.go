package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Edge is a directed, weighted edge of a Digraph. ID is the position of the
// edge in the graph's edge list and is stable for the lifetime of the graph.
type Edge struct {
	ID     int
	From   int
	To     int
	Weight float64
}

// Digraph is a directed multigraph with a fixed number of nodes and an
// append-only edge list. The zero value is an empty graph with zero nodes;
// use New to create a graph with a given node count.
type Digraph struct {
	n     int
	edges []Edge
	out   [][]int // node -> edge IDs leaving the node
	in    [][]int // node -> edge IDs entering the node
}

// New returns an empty directed graph with n nodes and no edges.
// It panics if n is negative.
func New(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative node count %d", n))
	}
	return &Digraph{
		n:   n,
		out: make([][]int, n),
		in:  make([][]int, n),
	}
}

// ErrNodeRange is returned (wrapped) when an endpoint is outside [0, N).
var ErrNodeRange = errors.New("graph: node out of range")

// NumNodes returns the number of nodes.
func (g *Digraph) NumNodes() int { return g.n }

// NumEdges returns the number of edges.
func (g *Digraph) NumEdges() int { return len(g.edges) }

// AddEdge appends a directed edge from -> to with the given weight and
// returns its edge ID. Self-loops and parallel edges are allowed (callers
// that need simple graphs should check with HasEdge first).
func (g *Digraph) AddEdge(from, to int, weight float64) (int, error) {
	if from < 0 || from >= g.n {
		return -1, fmt.Errorf("%w: from=%d, n=%d", ErrNodeRange, from, g.n)
	}
	if to < 0 || to >= g.n {
		return -1, fmt.Errorf("%w: to=%d, n=%d", ErrNodeRange, to, g.n)
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{ID: id, From: from, To: to, Weight: weight})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	return id, nil
}

// MustAddEdge is AddEdge that panics on error; intended for tests and
// generators that construct graphs from validated data.
func (g *Digraph) MustAddEdge(from, to int, weight float64) int {
	id, err := g.AddEdge(from, to, weight)
	if err != nil {
		panic(err)
	}
	return id
}

// Edge returns the edge with the given ID.
func (g *Digraph) Edge(id int) Edge {
	return g.edges[id]
}

// SetWeight updates the weight of an existing edge.
func (g *Digraph) SetWeight(id int, weight float64) {
	g.edges[id].Weight = weight
}

// Edges returns a copy of the edge list.
func (g *Digraph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// OutEdgeIDs returns the IDs of edges leaving node u. The returned slice is
// owned by the graph and must not be modified.
func (g *Digraph) OutEdgeIDs(u int) []int { return g.out[u] }

// InEdgeIDs returns the IDs of edges entering node u. The returned slice is
// owned by the graph and must not be modified.
func (g *Digraph) InEdgeIDs(u int) []int { return g.in[u] }

// OutEdges returns copies of the edges leaving node u.
func (g *Digraph) OutEdges(u int) []Edge {
	ids := g.out[u]
	res := make([]Edge, len(ids))
	for i, id := range ids {
		res[i] = g.edges[id]
	}
	return res
}

// InEdges returns copies of the edges entering node u.
func (g *Digraph) InEdges(u int) []Edge {
	ids := g.in[u]
	res := make([]Edge, len(ids))
	for i, id := range ids {
		res[i] = g.edges[id]
	}
	return res
}

// OutDegree returns the number of edges leaving u.
func (g *Digraph) OutDegree(u int) int { return len(g.out[u]) }

// InDegree returns the number of edges entering u.
func (g *Digraph) InDegree(u int) int { return len(g.in[u]) }

// HasEdge reports whether at least one edge from -> to exists.
func (g *Digraph) HasEdge(from, to int) bool {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		return false
	}
	for _, id := range g.out[from] {
		if g.edges[id].To == to {
			return true
		}
	}
	return false
}

// EdgeBetween returns the ID of the first edge from -> to, or -1 if none
// exists.
func (g *Digraph) EdgeBetween(from, to int) int {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		return -1
	}
	for _, id := range g.out[from] {
		if g.edges[id].To == to {
			return id
		}
	}
	return -1
}

// WeightedOutDegree returns the sum of the weights of edges leaving u,
// restricted to edges for which enabled is true. A nil enabled slice means
// all edges are enabled.
func (g *Digraph) WeightedOutDegree(u int, enabled []bool) float64 {
	var sum float64
	for _, id := range g.out[u] {
		if enabled != nil && !enabled[id] {
			continue
		}
		sum += g.edges[id].Weight
	}
	return sum
}

// Clone returns a deep copy of the graph.
func (g *Digraph) Clone() *Digraph {
	c := New(g.n)
	c.edges = make([]Edge, len(g.edges))
	copy(c.edges, g.edges)
	for u := 0; u < g.n; u++ {
		c.out[u] = append([]int(nil), g.out[u]...)
		c.in[u] = append([]int(nil), g.in[u]...)
	}
	return c
}

// SortedEdgeIDsByWeight returns the IDs of enabled edges sorted by weight.
// If descending is true the heaviest edge comes first. Ties are broken by
// edge ID to keep the ordering deterministic. A nil enabled slice means all
// edges participate.
func (g *Digraph) SortedEdgeIDsByWeight(enabled []bool, descending bool) []int {
	ids := make([]int, 0, len(g.edges))
	for id := range g.edges {
		if enabled != nil && !enabled[id] {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		wi, wj := g.edges[ids[i]].Weight, g.edges[ids[j]].Weight
		if wi != wj {
			if descending {
				return wi > wj
			}
			return wi < wj
		}
		return ids[i] < ids[j]
	})
	return ids
}

// String returns a short human-readable description of the graph.
func (g *Digraph) String() string {
	return fmt.Sprintf("Digraph{nodes: %d, edges: %d}", g.n, len(g.edges))
}
