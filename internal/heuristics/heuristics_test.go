package heuristics

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/steady"
	"repro/internal/throughput"
	"repro/internal/topology"
)

// allBuilders returns one instance of every heuristic.
func allBuilders(t *testing.T) []Builder {
	t.Helper()
	var bs []Builder
	for _, name := range Names() {
		b, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		bs = append(bs, b)
	}
	return bs
}

func randomPlatform(t *testing.T, seed int64, nodes int, density float64) *platform.Platform {
	t.Helper()
	p, err := topology.Random(topology.DefaultRandomConfig(nodes, density), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNamesAndLabels(t *testing.T) {
	if len(Names()) != 8 {
		t.Fatalf("expected 8 heuristics, got %d", len(Names()))
	}
	for _, name := range Names() {
		b, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if b.Name() != name {
			t.Fatalf("builder name %q != registry name %q", b.Name(), name)
		}
		if PaperLabel(name) == name {
			t.Fatalf("no paper label for %q", name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
	if PaperLabel("custom") != "custom" {
		t.Fatal("unknown labels should pass through")
	}
	if len(OnePortNames()) != 6 || len(MultiPortNames()) != 5 {
		t.Fatal("experiment name lists have unexpected sizes")
	}
}

func TestAllHeuristicsProduceValidTrees(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		p := randomPlatform(t, seed, 15, 0.2)
		for _, b := range allBuilders(t) {
			tree, err := b.Build(p, 0)
			if err != nil {
				t.Fatalf("seed %d, %s: %v", seed, b.Name(), err)
			}
			if err := tree.Validate(p); err != nil {
				t.Fatalf("seed %d, %s: invalid tree: %v", seed, b.Name(), err)
			}
			if tree.Root != 0 {
				t.Fatalf("%s: root = %d", b.Name(), tree.Root)
			}
		}
	}
}

func TestHeuristicsWithNonZeroSource(t *testing.T) {
	p := randomPlatform(t, 11, 12, 0.25)
	src := 7
	for _, b := range allBuilders(t) {
		tree, err := b.Build(p, src)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if tree.Root != src {
			t.Fatalf("%s: root = %d, want %d", b.Name(), tree.Root, src)
		}
		if err := tree.Validate(p); err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
	}
}

func TestHeuristicsRejectUnreachablePlatform(t *testing.T) {
	p := platform.New(3)
	p.MustAddLink(0, 1, model.Linear(1))
	// Node 2 unreachable.
	for _, b := range allBuilders(t) {
		if _, err := b.Build(p, 0); !errors.Is(err, ErrNotBroadcastable) {
			t.Fatalf("%s: err = %v, want ErrNotBroadcastable", b.Name(), err)
		}
	}
}

func TestHeuristicsOnChainProduceTheOnlyTree(t *testing.T) {
	// On a directed chain there is a single spanning tree; every heuristic
	// must find it.
	p := platform.New(5)
	for i := 0; i+1 < 5; i++ {
		p.MustAddLink(i, i+1, model.Linear(float64(i+1)))
	}
	want := 1.0 / 4.0 // slowest link has time 4
	for _, b := range allBuilders(t) {
		tree, err := b.Build(p, 0)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		got := throughput.OnePortThroughput(p, tree)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("%s: throughput %v, want %v", b.Name(), got, want)
		}
	}
}

func TestHeuristicsOnStar(t *testing.T) {
	// On a star every spanning tree is the star itself.
	p := platform.New(4)
	tr := platform.NewTree(4, 0)
	for v := 1; v < 4; v++ {
		id := p.MustAddLink(0, v, model.Linear(float64(v)))
		p.MustAddLink(v, 0, model.Linear(float64(v)))
		tr.SetParent(v, 0, id)
	}
	want := throughput.OnePortThroughput(p, tr)
	for _, b := range allBuilders(t) {
		tree, err := b.Build(p, 0)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		got := throughput.OnePortThroughput(p, tree)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("%s: throughput %v, want %v", b.Name(), got, want)
		}
	}
}

func TestNoTreeBeatsTheMTPOptimum(t *testing.T) {
	// The MTP optimum is an upper bound on the throughput of any single
	// spanning tree under the one-port model; no heuristic may exceed it.
	for _, seed := range []int64{5, 6} {
		p := randomPlatform(t, seed, 12, 0.25)
		opt, err := steady.Solve(p, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range allBuilders(t) {
			tree, err := b.Build(p, 0)
			if err != nil {
				t.Fatalf("%s: %v", b.Name(), err)
			}
			tp := throughput.OnePortThroughput(p, tree)
			if tp > opt.Throughput*(1+1e-6) {
				t.Fatalf("%s: tree throughput %v exceeds MTP optimum %v", b.Name(), tp, opt.Throughput)
			}
		}
	}
}

func TestAdvancedHeuristicsBeatBinomialOnAverage(t *testing.T) {
	// The paper's headline result: topology-aware heuristics vastly
	// outperform the index-based binomial tree. Check it on a small batch
	// of random platforms (in aggregate, not per instance).
	var sums = map[string]float64{}
	const trials = 6
	for seed := int64(0); seed < trials; seed++ {
		p := randomPlatform(t, 100+seed, 20, 0.15)
		for _, name := range []string{NamePruneDegree, NameGrowTree, NameBinomial} {
			b, _ := ByName(name)
			tree, err := b.Build(p, 0)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			sums[name] += throughput.OnePortThroughput(p, tree)
		}
	}
	if sums[NamePruneDegree] <= sums[NameBinomial] {
		t.Fatalf("PruneDegree (%v) should beat Binomial (%v) in aggregate", sums[NamePruneDegree], sums[NameBinomial])
	}
	if sums[NameGrowTree] <= sums[NameBinomial] {
		t.Fatalf("GrowTree (%v) should beat Binomial (%v) in aggregate", sums[NameGrowTree], sums[NameBinomial])
	}
}

func TestLPHeuristicsWithPrecomputedRates(t *testing.T) {
	p := randomPlatform(t, 42, 10, 0.3)
	sol, err := steady.Solve(p, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Using precomputed rates must give the same trees as solving inside.
	for _, pair := range []struct {
		with, without Builder
	}{
		{LPPrune{Rates: sol.EdgeRate}, LPPrune{}},
		{LPGrowTree{Rates: sol.EdgeRate}, LPGrowTree{}},
	} {
		a, err := pair.with.Build(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := pair.without.Build(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		ta := throughput.OnePortThroughput(p, a)
		tb := throughput.OnePortThroughput(p, b)
		if math.Abs(ta-tb) > 1e-9 {
			t.Fatalf("%s: precomputed rates change the result: %v vs %v", pair.with.Name(), ta, tb)
		}
	}
	// Mismatched rate vector length is rejected.
	if _, err := (LPPrune{Rates: []float64{1}}).Build(p, 0); err == nil {
		t.Fatal("mismatched rates accepted")
	}
	if _, err := (LPGrowTree{Rates: []float64{1}}).Build(p, 0); err == nil {
		t.Fatal("mismatched rates accepted")
	}
}

func TestBinomialTreeShapeOnCompleteGraph(t *testing.T) {
	// On a complete homogeneous platform with 8 nodes the binomial heuristic
	// reduces to the classical binomial tree: the source has log2(8) = 3
	// children and the height is 3.
	n := 8
	p := platform.New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				p.MustAddLink(u, v, model.Linear(1))
			}
		}
	}
	tree, err := Binomial{}.Build(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.OutDegree(0); got != 3 {
		t.Fatalf("source out-degree = %d, want 3", got)
	}
	if h := tree.Height(); h != 3 {
		t.Fatalf("height = %d, want 3", h)
	}
	// Check the classical recursive doubling structure: ranks 4, 2, 1 are
	// children of the source.
	wantChildren := map[int]bool{4: true, 2: true, 1: true}
	for _, c := range tree.Children(0) {
		if !wantChildren[c] {
			t.Fatalf("unexpected child %d of the source", c)
		}
	}
}

func TestBinomialNonPowerOfTwoAndShiftedSource(t *testing.T) {
	n := 11
	p := platform.New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				p.MustAddLink(u, v, model.Linear(1))
			}
		}
	}
	tree, err := Binomial{}.Build(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(p); err != nil {
		t.Fatal(err)
	}
	if tree.Root != 5 {
		t.Fatalf("root = %d", tree.Root)
	}
}

func TestBinomialRoutesThroughSparseTopology(t *testing.T) {
	// On a ring the binomial schedule needs multi-hop routing; the result
	// must still be a valid spanning tree.
	p, err := topology.Ring(9, topology.Uniform(1), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Binomial{}.Build(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestGrowTreePrefersFastHub(t *testing.T) {
	// Platform: source 0, a fast hub 1, and three leaves. Direct links from
	// the source to the leaves are slow (10); links from the hub to the
	// leaves are fast (1); the link 0 -> 1 is fast (1). The grow-tree
	// heuristic must route the leaves through the hub rather than attaching
	// everything to the source.
	p := platform.New(5)
	p.MustAddLink(0, 1, model.Linear(1))
	for leaf := 2; leaf < 5; leaf++ {
		p.MustAddLink(0, leaf, model.Linear(10))
		p.MustAddLink(1, leaf, model.Linear(1))
	}
	tree, err := GrowTree{}.Build(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.OutDegree(1); got != 3 {
		t.Fatalf("hub out-degree = %d, want 3 (tree: parents %v)", got, tree.Parent)
	}
	tp := throughput.OnePortThroughput(p, tree)
	if math.Abs(tp-1.0/3.0) > 1e-9 {
		t.Fatalf("throughput = %v, want 1/3", tp)
	}
}

func TestPruneDegreeBeatsPruneSimpleOnSkewedPlatform(t *testing.T) {
	// Reproduce the paper's motivating example for the refined heuristic
	// (Section 3.1.2): a node with many medium-weight children is worse than
	// a node with a single heavier child. PruneSimple deletes heavy edges
	// first and can end up overloading one sender; PruneDegree balances the
	// weighted out-degree. In aggregate over random platforms PruneDegree
	// must not be worse.
	var simple, refined float64
	for seed := int64(0); seed < 8; seed++ {
		p := randomPlatform(t, 200+seed, 18, 0.2)
		ts, err := PruneSimple{}.Build(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		td, err := PruneDegree{}.Build(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		simple += throughput.OnePortThroughput(p, ts)
		refined += throughput.OnePortThroughput(p, td)
	}
	if refined < simple {
		t.Fatalf("PruneDegree aggregate %v should be at least PruneSimple %v", refined, simple)
	}
}

func TestMultiportHeuristicsValidAndReasonable(t *testing.T) {
	p := randomPlatform(t, 33, 16, 0.2)
	gt, err := MultiportGrowTree{}.Build(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	pd, err := MultiportPruneDegree{}.Build(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tree := range []*platform.Tree{gt, pd} {
		if err := tree.Validate(p); err != nil {
			t.Fatal(err)
		}
		if tp := throughput.MultiPortThroughput(p, tree); tp <= 0 {
			t.Fatalf("non-positive multi-port throughput %v", tp)
		}
	}
	// The multi-port grow tree should take advantage of overlapping sends:
	// in aggregate it must beat the binomial tree under the multi-port model.
	var mg, bi float64
	for seed := int64(0); seed < 6; seed++ {
		q := randomPlatform(t, 300+seed, 20, 0.15)
		a, err := MultiportGrowTree{}.Build(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Binomial{}.Build(q, 0)
		if err != nil {
			t.Fatal(err)
		}
		mg += throughput.MultiPortThroughput(q, a)
		bi += throughput.MultiPortThroughput(q, b)
	}
	if mg <= bi {
		t.Fatalf("MultiportGrowTree aggregate %v should beat Binomial %v", mg, bi)
	}
}

func TestHeuristicsAreDeterministic(t *testing.T) {
	p := randomPlatform(t, 9, 14, 0.25)
	for _, b := range allBuilders(t) {
		t1, err := b.Build(p, 0)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		t2, err := b.Build(p, 0)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		for v := range t1.Parent {
			if t1.Parent[v] != t2.Parent[v] || t1.ParentLink[v] != t2.ParentLink[v] {
				t.Fatalf("%s: non-deterministic tree at node %d", b.Name(), v)
			}
		}
	}
}

func TestPruneHeuristicsOnTiersPlatforms(t *testing.T) {
	p, err := topology.Tiers(topology.Tiers30(), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range allBuilders(t) {
		tree, err := b.Build(p, 0)
		if err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
		if err := tree.Validate(p); err != nil {
			t.Fatalf("%s: %v", b.Name(), err)
		}
	}
}
