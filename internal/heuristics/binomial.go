package heuristics

import (
	"fmt"
	"math/bits"

	"repro/internal/graph"
	"repro/internal/platform"
)

// RoutingBuilder is implemented by heuristics whose natural output is a
// routed broadcast schedule (a logical tree whose transfers follow multi-hop
// physical paths) rather than a plain spanning tree. Evaluating such a
// heuristic through its routing captures the link and node contention that a
// collapsed spanning tree would hide.
type RoutingBuilder interface {
	Builder
	// BuildRouting returns the routed broadcast schedule.
	BuildRouting(p *platform.Platform, source int) (*platform.Routing, error)
}

// Binomial is Algorithm 4 of the paper: the classical MPI-style binomial
// broadcast tree, built from processor indices only, with no topological
// information. The source plays rank 0 and rank r is mapped to processor
// (source + r) mod |V|. Transfers of the binomial schedule between ranks
// whose processors are not adjacent are routed along the shortest path
// (in slice-transfer time) of the platform graph.
//
// BuildRouting returns this schedule faithfully (logical binomial tree plus
// one routed path per transfer); its throughput accounts for all the links
// and relay nodes shared by different transfers, which is what makes the
// binomial heuristic perform poorly on heterogeneous platforms (Figures 4
// and 5, Table 3 of the paper).
//
// Build returns a plain spanning tree obtained by walking every routed
// transfer in schedule order and keeping, for every processor, the first
// link through which it is reached. This collapsed tree is useful when a
// genuine single tree is required (e.g. to feed the simulator), but it is
// *more optimistic* than the MPI schedule it approximates; the experiment
// harness therefore evaluates Binomial through BuildRouting.
type Binomial struct{}

// Name implements Builder.
func (Binomial) Name() string { return NameBinomial }

// transfer is one logical edge of the binomial schedule, in schedule order.
type transfer struct {
	fromRank, toRank int
}

// schedule lists the logical transfers of the binomial broadcast over n
// ranks: the classical recursive-doubling phases over the first 2^m ranks
// (m = floor(log2 n)), then one transfer for each remaining rank.
func (Binomial) schedule(n int) []transfer {
	if n <= 1 {
		return nil
	}
	m := bits.Len(uint(n)) - 1
	var ts []transfer
	for ph := 0; ph < m; ph++ {
		stride := 1 << (m - ph)
		for x := 0; x < (1 << ph); x++ {
			from := x * stride
			to := from + stride/2
			if from < n && to < n {
				ts = append(ts, transfer{from, to})
			}
		}
	}
	for r := 1 << m; r < n; r++ {
		ts = append(ts, transfer{r - (1 << m), r})
	}
	return ts
}

// BuildRouting implements RoutingBuilder.
func (b Binomial) BuildRouting(p *platform.Platform, source int) (*platform.Routing, error) {
	if err := validate(p, source); err != nil {
		return nil, err
	}
	n := p.NumNodes()
	routing := platform.NewRouting(n, source)
	if n == 1 {
		return routing, nil
	}
	proc := func(rank int) int { return (source + rank) % n }

	g := p.Graph()
	dijkstra := make(map[int]*graph.PathResult)
	shortestPath := func(fromProc, toProc int) ([]int, error) {
		res, ok := dijkstra[fromProc]
		if !ok {
			res = g.Dijkstra(fromProc, nil)
			dijkstra[fromProc] = res
		}
		if !res.Reachable(toProc) {
			return nil, fmt.Errorf("%w: no path from %d to %d", ErrNotBroadcastable, fromProc, toProc)
		}
		return g.PathEdges(res, toProc), nil
	}

	for _, tr := range b.schedule(n) {
		fromProc, toProc := proc(tr.fromRank), proc(tr.toRank)
		path, err := shortestPath(fromProc, toProc)
		if err != nil {
			return nil, err
		}
		routing.SetTransfer(toProc, fromProc, path)
	}
	if err := routing.Validate(p); err != nil {
		return nil, fmt.Errorf("%w: binomial routing invalid: %v", ErrInternal, err)
	}
	return routing, nil
}

// Build implements Builder by collapsing the routed schedule into a plain
// spanning tree (first link through which each processor is reached, in
// schedule order).
func (b Binomial) Build(p *platform.Platform, source int) (*platform.Tree, error) {
	if err := validate(p, source); err != nil {
		return nil, err
	}
	n := p.NumNodes()
	tree := platform.NewTree(n, source)
	if n == 1 {
		return tree, nil
	}
	proc := func(rank int) int { return (source + rank) % n }

	g := p.Graph()
	dijkstra := make(map[int]*graph.PathResult)
	shortestPath := func(fromProc, toProc int) ([]int, error) {
		res, ok := dijkstra[fromProc]
		if !ok {
			res = g.Dijkstra(fromProc, nil)
			dijkstra[fromProc] = res
		}
		if !res.Reachable(toProc) {
			return nil, fmt.Errorf("%w: no path from %d to %d", ErrNotBroadcastable, fromProc, toProc)
		}
		return g.PathEdges(res, toProc), nil
	}
	hasParent := func(v int) bool { return v == source || tree.Parent[v] >= 0 }

	for _, tr := range b.schedule(n) {
		fromProc, toProc := proc(tr.fromRank), proc(tr.toRank)
		if fromProc == toProc {
			continue
		}
		path, err := shortestPath(fromProc, toProc)
		if err != nil {
			return nil, err
		}
		for _, linkID := range path {
			l := p.Link(linkID)
			if !hasParent(l.To) {
				tree.SetParent(l.To, l.From, linkID)
			}
		}
	}
	if err := tree.Validate(p); err != nil {
		return nil, fmt.Errorf("%w: binomial construction left the tree invalid: %v", ErrInternal, err)
	}
	return tree, nil
}
