package heuristics

import (
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/throughput"
	"repro/internal/topology"
)

func TestBinomialSchedule(t *testing.T) {
	b := Binomial{}
	if got := b.schedule(1); got != nil {
		t.Fatalf("schedule(1) = %v, want nil", got)
	}
	// n = 8: 7 transfers; phase structure 0->4, 0->2, 4->6, 0->1, 2->3,
	// 4->5, 6->7.
	s := b.schedule(8)
	if len(s) != 7 {
		t.Fatalf("schedule(8) has %d transfers", len(s))
	}
	if s[0] != (transfer{0, 4}) {
		t.Fatalf("first transfer = %+v", s[0])
	}
	// Every rank 1..7 is a destination exactly once, senders already
	// reached.
	seen := map[int]bool{0: true}
	for _, tr := range s {
		if !seen[tr.fromRank] {
			t.Fatalf("sender %d used before being reached", tr.fromRank)
		}
		if seen[tr.toRank] {
			t.Fatalf("rank %d reached twice", tr.toRank)
		}
		seen[tr.toRank] = true
	}
	// Non-power-of-two: n = 11 -> 2^3 = 8 binomial ranks + 3 extra.
	s = b.schedule(11)
	if len(s) != 10 {
		t.Fatalf("schedule(11) has %d transfers", len(s))
	}
}

func TestBinomialBuildRoutingValid(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		p := randomPlatform(t, seed, 14, 0.2)
		routing, err := Binomial{}.BuildRouting(p, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := routing.Validate(p); err != nil {
			t.Fatal(err)
		}
		if routing.Root != 3 {
			t.Fatalf("root = %d", routing.Root)
		}
	}
}

func TestBinomialRoutingNeverBeatsCollapsedTree(t *testing.T) {
	// The collapsed tree removes all contention, so its throughput is an
	// upper bound on the routed schedule's throughput.
	for _, seed := range []int64{4, 5, 6} {
		p := randomPlatform(t, seed, 16, 0.15)
		b := Binomial{}
		tree, err := b.Build(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		routing, err := b.BuildRouting(p, 0)
		if err != nil {
			t.Fatal(err)
		}
		treeTP := throughput.OnePortThroughput(p, tree)
		routedTP := throughput.RoutingThroughput(p, routing, model.OnePortBidirectional)
		if routedTP > treeTP*(1+1e-9) {
			t.Fatalf("seed %d: routed binomial %v beats its collapsed tree %v", seed, routedTP, treeTP)
		}
	}
}

func TestBinomialRoutingOnCompleteGraphMatchesTree(t *testing.T) {
	// On a complete platform every logical transfer is a direct link, so the
	// routed schedule has no contention beyond the logical binomial tree
	// itself and the routing evaluation equals the tree evaluation.
	n := 8
	p := platform.New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				p.MustAddLink(u, v, model.Linear(1))
			}
		}
	}
	b := Binomial{}
	tree, err := b.Build(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	routing, err := b.BuildRouting(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	a := throughput.OnePortThroughput(p, tree)
	c := throughput.RoutingThroughput(p, routing, model.OnePortBidirectional)
	if a != c {
		t.Fatalf("complete graph: tree %v vs routing %v", a, c)
	}
}

func TestBinomialRoutingSuffersOnHierarchicalPlatforms(t *testing.T) {
	// On a Tiers-like platform the binomial schedule routes many transfers
	// through the same wide-area links; its throughput must be well below
	// a topology-aware tree (this is the paper's Table 3 headline).
	p, err := topology.Tiers(topology.Tiers30(), rand.New(rand.NewSource(12)))
	if err != nil {
		t.Fatal(err)
	}
	routing, err := Binomial{}.BuildRouting(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	grow, err := GrowTree{}.Build(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	binTP := throughput.RoutingThroughput(p, routing, model.OnePortBidirectional)
	growTP := throughput.OnePortThroughput(p, grow)
	if binTP*2 > growTP {
		t.Fatalf("binomial routing (%v) should be far below GrowTree (%v) on Tiers platforms", binTP, growTP)
	}
}
