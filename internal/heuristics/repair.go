package heuristics

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/platform"
)

// This file implements local broadcast-tree repair for dynamic platforms:
// after links degrade or fail and nodes crash or rejoin, the current tree is
// patched instead of rebuilt. Two moves are combined:
//
//   - re-graft: a subtree whose root lost its parent edge (dead link, dead
//     parent, or a parent that is itself detached) is reattached in one
//     piece, through the best live link into its root;
//
//   - rewire: when no live link reaches a fragment's root from the attached
//     part of the tree, the fragment is dissolved and its nodes are
//     reattached individually.
//
// "Best" is a residual-bandwidth score: among the candidate live links into
// an orphan, prefer fast links whose sender has few children already —
// under the one-port model a parent's period is the sum of its child link
// times, so loading an already-busy parent with another child directly
// lowers the tree's throughput.

// ErrNotRepairable is returned when some alive node cannot be reattached:
// no live link reaches it from the part of the tree that is still connected
// to the root (the live platform is not broadcastable from the source).
var ErrNotRepairable = errors.New("heuristics: tree cannot be repaired on the live platform")

// RepairStats describes the work done by one RepairTree call.
type RepairStats struct {
	// Orphans is the number of alive nodes that were detached from the root
	// when the repair started.
	Orphans int
	// Regrafted is the number of subtree fragments reattached in one piece;
	// Rewired is the number of nodes reattached individually after their
	// fragment was dissolved.
	Regrafted int
	Rewired   int
	// Reattached is the number of nodes whose parent edge changed (the
	// deterministic "repair latency" proxy reported by the churn engine).
	Reattached int
}

// RepairTree repairs a broadcast tree in place of a full rebuild: dead nodes
// are detached, orphaned subtrees are re-grafted through best
// residual-bandwidth live links, and stranded nodes are rewired one by one.
// The input tree is not modified; the repaired tree is returned with stats.
// If the tree is already live-valid it is returned unchanged (zero stats).
func RepairTree(p *platform.Platform, source int, t *platform.Tree) (*platform.Tree, RepairStats, error) {
	var st RepairStats
	n := p.NumNodes()
	if t.Root != source {
		return nil, st, fmt.Errorf("%w: tree root %d does not match source %d", ErrInternal, t.Root, source)
	}
	if !p.NodeAlive(source) {
		return nil, st, fmt.Errorf("%w: source %d is down", ErrNotRepairable, source)
	}
	live, err := t.LiveSpan(p)
	if err != nil {
		return nil, st, err
	}
	orphans := make([]int, 0)
	for v := 0; v < n; v++ {
		if p.NodeAlive(v) && !live[v] {
			orphans = append(orphans, v)
		}
	}
	dirty := false
	for v := 0; v < n; v++ {
		if !p.NodeAlive(v) && t.Parent[v] >= 0 {
			dirty = true // dead node still attached: detach below
		}
	}
	if len(orphans) == 0 && !dirty {
		return t, st, nil
	}
	st.Orphans = len(orphans)

	// Working copy: keep the live span, detach everything else.
	out := platform.NewTree(n, source)
	attached := make([]bool, n)
	outDeg := make([]int, n)
	for v := 0; v < n; v++ {
		if live[v] && v != source {
			out.SetParent(v, t.Parent[v], t.ParentLink[v])
			outDeg[t.Parent[v]]++
		}
		attached[v] = live[v]
	}

	// Fragment structure over the orphans. An orphan's parent edge is intact
	// (usable inside a fragment) iff its parent link is live — LinkLive
	// already requires both endpoints alive, and a live parent would have
	// made the orphan live, so an intact parent is itself an orphan. The
	// orphans therefore form a forest whose roots are the orphans with a
	// broken parent edge; re-grafting a root carries its whole fragment.
	inFragmentOf := make([]int, n) // orphan -> fragment root (or -1)
	for v := range inFragmentOf {
		inFragmentOf[v] = -1
	}
	fragRoots := make([]int, 0)
	for _, v := range orphans {
		if par := t.Parent[v]; par < 0 || !p.LinkLive(t.ParentLink[v]) {
			fragRoots = append(fragRoots, v)
		}
	}
	// Assign membership by walking intact tree edges down from each root
	// (deterministic: roots in node order, BFS), keeping the intact edges in
	// the output tree.
	for _, r := range fragRoots {
		queue := []int{r}
		inFragmentOf[r] = r
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, c := range t.Children(u) {
				if isOrphan(p, live, c) && inFragmentOf[c] < 0 && p.LinkLive(t.ParentLink[c]) {
					inFragmentOf[c] = r
					out.SetParent(c, u, t.ParentLink[c])
					queue = append(queue, c)
				}
			}
		}
	}

	// Fragment members (intact internal edges count toward the
	// residual-bandwidth score once the fragment is attached).
	fragSize := make(map[int][]int, len(fragRoots)) // root -> members
	for _, v := range orphans {
		r := inFragmentOf[v]
		fragSize[r] = append(fragSize[r], v)
		if v != r {
			outDeg[out.Parent[v]]++
		}
	}

	// Greedy attachment: repeatedly pick the globally best (live link from
	// an attached node into a fragment root) and re-graft the fragment. When
	// no fragment root is reachable, dissolve every remaining fragment into
	// singletons and keep going; if still stuck, the live platform is not
	// broadcastable.
	remaining := append([]int(nil), fragRoots...)
	dissolved := false
	for len(remaining) > 0 {
		bestLink, bestFrag, bestIdx := -1, -1, -1
		bestScore := math.Inf(1)
		for idx, r := range remaining {
			for _, id := range p.InLinkIDs(r) {
				if !p.LinkLive(id) {
					continue
				}
				u := p.Link(id).From
				if !attached[u] {
					continue
				}
				score := p.SliceTime(id) * float64(outDeg[u]+1)
				if score < bestScore || score == bestScore && (id < bestLink || bestLink < 0) {
					bestScore, bestLink, bestFrag, bestIdx = score, id, r, idx
				}
			}
		}
		if bestLink < 0 {
			if dissolved {
				return nil, st, fmt.Errorf("%w: %d nodes unreachable", ErrNotRepairable, countMembers(fragSize, remaining))
			}
			// Dissolve: every remaining orphan becomes its own fragment, so
			// attachment may now enter a fragment anywhere, re-rooting it.
			dissolved = true
			var next []int
			for _, r := range remaining {
				for _, v := range fragSize[r] {
					if !attached[v] {
						if out.Parent[v] >= 0 {
							outDeg[out.Parent[v]]--
							out.SetParent(v, -1, -1)
						}
						next = append(next, v)
						fragSize[v] = []int{v}
					}
				}
			}
			remaining = next
			continue
		}
		u := p.Link(bestLink).From
		out.SetParent(bestFrag, u, bestLink)
		outDeg[u]++
		st.Reattached++
		if len(fragSize[bestFrag]) > 1 {
			st.Regrafted++
		} else if dissolved {
			st.Rewired++
		} else {
			st.Regrafted++
		}
		for _, v := range fragSize[bestFrag] {
			attached[v] = true
		}
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
	}

	if err := out.ValidateLive(p); err != nil {
		return nil, st, fmt.Errorf("%w: repaired tree invalid: %v", ErrInternal, err)
	}
	return out, st, nil
}

// isOrphan reports whether v is an alive node outside the live span.
func isOrphan(p *platform.Platform, live []bool, v int) bool {
	return p.NodeAlive(v) && !live[v]
}

// countMembers sums the member counts of the given fragment roots.
func countMembers(frag map[int][]int, roots []int) int {
	total := 0
	for _, r := range roots {
		total += len(frag[r])
	}
	return total
}
