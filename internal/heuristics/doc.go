// Package heuristics implements the paper's spanning-tree construction
// heuristics for the STP problem (Single Tree, Pipelined): given a platform
// graph and a source processor, build a spanning broadcast tree with good
// steady-state throughput.
//
// Platform-based heuristics (Section 3):
//
//   - PruneSimple    — Algorithm 1, "Prune Platform Simple"
//   - PruneDegree    — Algorithm 2, "Prune Platform Degree"
//   - GrowTree       — Algorithm 3, "Grow Tree"
//   - Binomial       — Algorithm 4, MPI-style binomial tree
//   - MultiportGrowTree    — Algorithm 5 (multi-port cost model)
//   - MultiportPruneDegree — Section 5.2.2 (PruneDegree with multi-port cost)
//
// LP-based heuristics (Section 4.2), seeded by the per-edge rates n(u,v) of
// the optimal MTP solution:
//
//   - LPPrune    — Algorithm 6, "LP Prune"
//   - LPGrowTree — Algorithm 7, "LP Grow Tree"
package heuristics
