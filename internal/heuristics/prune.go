package heuristics

import (
	"sort"

	"repro/internal/platform"
)

// PruneSimple is Algorithm 1 of the paper ("Prune Platform Simple"): starting
// from the whole platform graph, repeatedly delete the heaviest link (largest
// slice transfer time) whose removal keeps every node reachable from the
// source, until only a spanning tree remains.
type PruneSimple struct{}

// Name implements Builder.
func (PruneSimple) Name() string { return NamePruneSimple }

// Build implements Builder.
func (PruneSimple) Build(p *platform.Platform, source int) (*platform.Tree, error) {
	if err := validate(p, source); err != nil {
		return nil, err
	}
	g := p.Graph()
	enabled := allEnabled(p)
	rank := func() []int {
		return sortLinksBy(p.NumLinks(), func(id int) float64 { return p.SliceTime(id) }, false)
	}
	pruneToArborescence(g, source, enabled, rank, false)
	return treeFromEnabledLinks(p, source, enabled)
}

// PruneDegree is Algorithm 2 of the paper ("Prune Platform Degree", also
// called the refined platform pruning heuristic): the node metric is the
// weighted out-degree (the sum of the slice times of its remaining outgoing
// links), which is exactly the per-slice time the node spends sending under
// the one-port model. The heuristic repeatedly picks the node with the
// largest weighted out-degree and removes its heaviest removable outgoing
// link, until only a spanning tree remains.
type PruneDegree struct{}

// Name implements Builder.
func (PruneDegree) Name() string { return NamePruneDegree }

// Build implements Builder.
func (PruneDegree) Build(p *platform.Platform, source int) (*platform.Tree, error) {
	return pruneByNodeMetric(p, source, func(_ int, outTimes []float64) float64 {
		var sum float64
		for _, t := range outTimes {
			sum += t
		}
		return sum
	})
}

// pruneByNodeMetric implements the refined pruning loop shared by
// PruneDegree (one-port metric: weighted out-degree) and
// MultiportPruneDegree (multi-port metric: node period). The metric function
// receives the node and the slice times of its currently enabled outgoing
// links.
func pruneByNodeMetric(p *platform.Platform, source int, metric func(u int, outTimes []float64) float64) (*platform.Tree, error) {
	if err := validate(p, source); err != nil {
		return nil, err
	}
	g := p.Graph()
	n := p.NumNodes()
	enabled := allEnabled(p)
	remaining := p.NumLinks()

	nodeMetric := func(u int) float64 {
		ids := p.OutLinkIDs(u)
		times := make([]float64, 0, len(ids))
		for _, id := range ids {
			if enabled[id] {
				times = append(times, p.SliceTime(id))
			}
		}
		return metric(u, times)
	}

	for remaining > n-1 {
		// Nodes sorted by non-increasing metric.
		nodes := make([]int, n)
		for i := range nodes {
			nodes[i] = i
		}
		metrics := make([]float64, n)
		for u := range metrics {
			metrics[u] = nodeMetric(u)
		}
		sort.Slice(nodes, func(a, b int) bool {
			if metrics[nodes[a]] != metrics[nodes[b]] {
				return metrics[nodes[a]] > metrics[nodes[b]]
			}
			return nodes[a] < nodes[b]
		})

		removed := false
	nodeLoop:
		for _, u := range nodes {
			// The node's enabled outgoing links, heaviest first.
			ids := make([]int, 0, len(p.OutLinkIDs(u)))
			for _, id := range p.OutLinkIDs(u) {
				if enabled[id] {
					ids = append(ids, id)
				}
			}
			sort.Slice(ids, func(a, b int) bool {
				ta, tb := p.SliceTime(ids[a]), p.SliceTime(ids[b])
				if ta != tb {
					return ta > tb
				}
				return ids[a] < ids[b]
			})
			for _, id := range ids {
				enabled[id] = false
				if g.AllReachableFrom(source, enabled) {
					remaining--
					removed = true
					break nodeLoop
				}
				enabled[id] = true
			}
		}
		if !removed {
			// Every remaining link is required for reachability; the set is
			// already an arborescence (possibly with fewer than n-1 links if
			// the platform graph had parallel structure removed earlier).
			break
		}
	}
	return treeFromEnabledLinks(p, source, enabled)
}
