package heuristics

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/graph"
	"repro/internal/platform"
	"repro/internal/steady"
)

// Builder constructs a spanning broadcast tree for a platform and source.
// Implementations are stateless unless documented otherwise and safe for
// concurrent use.
type Builder interface {
	// Name returns a stable identifier (used by the CLI and experiment
	// tables; matches the labels of the paper's figures).
	Name() string
	// Build returns a spanning broadcast tree rooted at source.
	Build(p *platform.Platform, source int) (*platform.Tree, error)
}

// Errors returned by the builders.
var (
	ErrNotBroadcastable = errors.New("heuristics: platform is not broadcastable from the source")
	ErrInternal         = errors.New("heuristics: internal error")
)

// Canonical heuristic names.
const (
	NamePruneSimple          = "prune-simple"
	NamePruneDegree          = "prune-degree"
	NameGrowTree             = "grow-tree"
	NameBinomial             = "binomial"
	NameLPPrune              = "lp-prune"
	NameLPGrowTree           = "lp-grow-tree"
	NameMultiportGrowTree    = "multiport-grow-tree"
	NameMultiportPruneDegree = "multiport-prune-degree"
)

// PaperLabel maps a canonical name to the label used in the paper's figures
// and tables. Unknown names are returned unchanged.
func PaperLabel(name string) string {
	switch name {
	case NamePruneSimple:
		return "Prune Platform Simple"
	case NamePruneDegree:
		return "Prune Platform Degree"
	case NameGrowTree:
		return "Grow Tree"
	case NameBinomial:
		return "Binomial Tree"
	case NameLPPrune:
		return "LP Prune"
	case NameLPGrowTree:
		return "LP Grow Tree"
	case NameMultiportGrowTree:
		return "Multi Port Grow Tree"
	case NameMultiportPruneDegree:
		return "Multi Port Prune Degree"
	default:
		return name
	}
}

// ByName returns a builder for the given canonical name. LP-based builders
// are returned without precomputed rates and therefore solve the steady-
// state LP themselves on the first Build call.
func ByName(name string) (Builder, error) {
	switch name {
	case NamePruneSimple:
		return PruneSimple{}, nil
	case NamePruneDegree:
		return PruneDegree{}, nil
	case NameGrowTree:
		return GrowTree{}, nil
	case NameBinomial:
		return Binomial{}, nil
	case NameLPPrune:
		return LPPrune{}, nil
	case NameLPGrowTree:
		return LPGrowTree{}, nil
	case NameMultiportGrowTree:
		return MultiportGrowTree{}, nil
	case NameMultiportPruneDegree:
		return MultiportPruneDegree{}, nil
	default:
		return nil, fmt.Errorf("heuristics: unknown heuristic %q", name)
	}
}

// ByNameWithRates returns a builder for the given canonical name, injecting
// precomputed steady-state edge rates into the LP-based heuristics so the
// linear program is solved only once per platform. Nil rates make it
// equivalent to ByName.
func ByNameWithRates(name string, rates []float64) (Builder, error) {
	switch name {
	case NameLPPrune:
		return LPPrune{Rates: rates}, nil
	case NameLPGrowTree:
		return LPGrowTree{Rates: rates}, nil
	default:
		return ByName(name)
	}
}

// Names returns the canonical names of all heuristics in presentation order
// (the order used by the paper's figures).
func Names() []string {
	return []string{
		NamePruneSimple,
		NamePruneDegree,
		NameGrowTree,
		NameBinomial,
		NameLPPrune,
		NameLPGrowTree,
		NameMultiportGrowTree,
		NameMultiportPruneDegree,
	}
}

// OnePortNames returns the heuristics compared in the one-port experiments
// (Figures 4(a), 4(b) and Table 3).
func OnePortNames() []string {
	return []string{
		NamePruneSimple,
		NamePruneDegree,
		NameGrowTree,
		NameLPGrowTree,
		NameLPPrune,
		NameBinomial,
	}
}

// MultiPortNames returns the heuristics compared in the multi-port
// experiment (Figure 5).
func MultiPortNames() []string {
	return []string{
		NameMultiportPruneDegree,
		NameMultiportGrowTree,
		NameLPGrowTree,
		NameLPPrune,
		NameBinomial,
	}
}

// validate checks the platform and source before running a heuristic.
func validate(p *platform.Platform, source int) error {
	if err := p.Validate(source); err != nil {
		return fmt.Errorf("%w: %v", ErrNotBroadcastable, err)
	}
	return nil
}

// treeFromEnabledLinks builds a broadcast tree from a set of enabled links
// that must form (or contain) a spanning structure reachable from the
// source: a BFS arborescence over the enabled links is extracted and
// converted into a platform.Tree.
func treeFromEnabledLinks(p *platform.Platform, source int, enabled []bool) (*platform.Tree, error) {
	g := p.Graph()
	parentEdge, reached := g.BFSArborescence(source, enabled)
	if reached != p.NumNodes() {
		return nil, fmt.Errorf("%w: pruned graph spans only %d of %d nodes", ErrInternal, reached, p.NumNodes())
	}
	t := platform.TreeFromParentLinks(p, source, parentEdge)
	if err := t.Validate(p); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrInternal, err)
	}
	return t, nil
}

// pruneToArborescence removes links from the enabled set, in the order given
// by ranked link IDs (most expendable first), as long as every node remains
// reachable from the source, until exactly n-1 links remain. The ranking
// function is called to (re)order the candidate links after every removal
// when reorder is true; otherwise a single pass over the initial ranking is
// performed (sufficient for rankings that do not depend on the current
// enabled set).
func pruneToArborescence(g *graph.Digraph, source int, enabled []bool, rank func() []int, reorder bool) {
	n := g.NumNodes()
	remaining := 0
	for _, ok := range enabled {
		if ok {
			remaining++
		}
	}
	for remaining > n-1 {
		progress := false
		for _, id := range rank() {
			if remaining <= n-1 {
				break
			}
			if !enabled[id] {
				continue
			}
			enabled[id] = false
			if g.AllReachableFrom(source, enabled) {
				remaining--
				progress = true
				if reorder {
					break
				}
				continue
			}
			enabled[id] = true
		}
		if !progress {
			// No removable link found; the enabled set is already minimal.
			return
		}
	}
}

// allEnabled returns a slice marking every link of the platform as enabled.
func allEnabled(p *platform.Platform) []bool {
	enabled := make([]bool, p.NumLinks())
	for i := range enabled {
		enabled[i] = true
	}
	return enabled
}

// sortLinksBy returns the link IDs of the platform sorted by the given key
// (ascending when ascending is true), ties broken by link ID.
func sortLinksBy(numLinks int, key func(id int) float64, ascending bool) []int {
	ids := make([]int, numLinks)
	for i := range ids {
		ids[i] = i
	}
	sort.Slice(ids, func(a, b int) bool {
		ka, kb := key(ids[a]), key(ids[b])
		if ka != kb {
			if ascending {
				return ka < kb
			}
			return ka > kb
		}
		return ids[a] < ids[b]
	})
	return ids
}

// lpRates returns the per-link rates to use for the LP-based heuristics:
// the provided ones if non-nil (they must match the platform's link count),
// otherwise the rates of a fresh steady-state solve.
func lpRates(p *platform.Platform, source int, rates []float64) ([]float64, error) {
	if rates != nil {
		if len(rates) != p.NumLinks() {
			return nil, fmt.Errorf("%w: %d rates for %d links", ErrInternal, len(rates), p.NumLinks())
		}
		return rates, nil
	}
	sol, err := steady.Solve(p, source, nil)
	if err != nil {
		return nil, err
	}
	return sol.EdgeRate, nil
}
