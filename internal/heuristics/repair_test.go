package heuristics

import (
	"testing"

	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/throughput"
	"repro/internal/topology"
)

// repairPlatform builds a well-connected random platform for repair tests.
func repairPlatform(t *testing.T, nodes int, seed int64) *platform.Platform {
	t.Helper()
	p, err := topology.Random(topology.DefaultRandomConfig(nodes, 0.3), topology.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustApply(t *testing.T, p *platform.Platform, d platform.Delta) {
	t.Helper()
	if _, err := p.ApplyDelta(d); err != nil {
		t.Fatalf("apply %v: %v", d, err)
	}
}

func TestRepairTreeNoopOnLiveTree(t *testing.T) {
	p := repairPlatform(t, 12, 1)
	tree, err := GrowTree{}.Build(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	repaired, st, err := RepairTree(p, 0, tree)
	if err != nil {
		t.Fatal(err)
	}
	if repaired != tree || st.Reattached != 0 {
		t.Errorf("repair of a live tree did work: %+v", st)
	}
}

func TestRepairTreeAfterLinkFailure(t *testing.T) {
	p := repairPlatform(t, 16, 2)
	tree, err := GrowTree{}.Build(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Fail the tree link of a node with a subtree, if possible the busiest.
	victim := -1
	for v := 1; v < p.NumNodes(); v++ {
		if tree.OutDegree(v) > 0 {
			victim = v
			break
		}
	}
	if victim < 0 {
		victim = 1
	}
	mustApply(t, p, platform.Delta{Kind: platform.DeltaLinkDown, Link: tree.ParentLink[victim]})
	if err := tree.ValidateLive(p); err == nil {
		t.Fatal("broken tree still validates live")
	}
	repaired, st, err := RepairTree(p, 0, tree)
	if err != nil {
		t.Fatal(err)
	}
	if err := repaired.ValidateLive(p); err != nil {
		t.Fatalf("repaired tree invalid: %v", err)
	}
	if st.Orphans == 0 || st.Reattached == 0 {
		t.Errorf("stats report no work: %+v", st)
	}
	// The whole subtree should ride along on one re-graft when a live link
	// into the victim exists; in any case the repair must reattach fewer
	// nodes than a full rebuild touches.
	if st.Reattached > st.Orphans {
		t.Errorf("reattached %d > orphans %d", st.Reattached, st.Orphans)
	}
	if tp := throughput.TreeThroughput(p, repaired, model.OnePortBidirectional); tp <= 0 {
		t.Errorf("repaired tree throughput %v", tp)
	}
}

func TestRepairTreeAfterNodeCrash(t *testing.T) {
	p := repairPlatform(t, 16, 3)
	tree, err := GrowTree{}.Build(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Crash an interior node (orphaning its children) while keeping the
	// platform broadcastable.
	victim := -1
	for v := 1; v < p.NumNodes(); v++ {
		if tree.OutDegree(v) == 0 {
			continue
		}
		mustApply(t, p, platform.Delta{Kind: platform.DeltaNodeDown, Node: v})
		if p.ValidateLive(0) == nil {
			victim = v
			break
		}
		mustApply(t, p, platform.Delta{Kind: platform.DeltaNodeUp, Node: v})
	}
	if victim < 0 {
		t.Skip("no interior node can crash without disconnecting the platform")
	}
	repaired, st, err := RepairTree(p, 0, tree)
	if err != nil {
		t.Fatal(err)
	}
	if err := repaired.ValidateLive(p); err != nil {
		t.Fatalf("repaired tree invalid: %v", err)
	}
	if repaired.Parent[victim] != -1 {
		t.Error("dead node still attached")
	}
	if st.Orphans != len(tree.Children(victim)) && st.Orphans < len(tree.Children(victim)) {
		t.Errorf("orphans %d, want at least the %d children of the victim", st.Orphans, len(tree.Children(victim)))
	}
}

func TestRepairTreeUnrepairable(t *testing.T) {
	// Star around node 0 with source 1: killing node 0 strands everyone.
	p, err := topology.Star(5, topology.Uniform(1), topology.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	tree, err := GrowTree{}.Build(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	mustApply(t, p, platform.Delta{Kind: platform.DeltaNodeDown, Node: 0})
	if _, _, err := RepairTree(p, 1, tree); err == nil {
		t.Fatal("repair succeeded on a disconnected live platform")
	}
}
