package heuristics

import (
	"math"

	"repro/internal/platform"
)

// GrowTree is Algorithm 3 of the paper ("Grow Tree"): a Prim-like heuristic
// that grows a spanning tree from the source, always attaching the new node
// whose connection minimizes the resulting weighted out-degree of its parent
// (the per-slice sending time of the parent under the one-port model).
type GrowTree struct{}

// Name implements Builder.
func (GrowTree) Name() string { return NameGrowTree }

// Build implements Builder.
func (GrowTree) Build(p *platform.Platform, source int) (*platform.Tree, error) {
	return growTree(p, source, func(outSum, maxOut, linkTime float64, children int, sendOverhead float64) float64 {
		// Resulting weighted out-degree of the parent if this link is added.
		return outSum + linkTime
	})
}

// MultiportGrowTree is Algorithm 5 of the paper: the Grow Tree heuristic
// with the cost of attaching a new child set to the resulting multi-port
// period of the parent, max((children+1)·send_u, max link occupation).
type MultiportGrowTree struct{}

// Name implements Builder.
func (MultiportGrowTree) Name() string { return NameMultiportGrowTree }

// Build implements Builder.
func (MultiportGrowTree) Build(p *platform.Platform, source int) (*platform.Tree, error) {
	return growTree(p, source, func(outSum, maxOut, linkTime float64, children int, sendOverhead float64) float64 {
		period := float64(children+1) * sendOverhead
		if maxOut > period {
			period = maxOut
		}
		if linkTime > period {
			period = linkTime
		}
		return period
	})
}

// growTree is the shared Prim-like construction. The cost function receives,
// for a candidate link (u, v) with u already in the tree:
//
//	outSum       — the sum of slice times of u's current tree links,
//	maxOut       — the largest slice time among u's current tree links,
//	linkTime     — the slice time of the candidate link,
//	children     — the current number of children of u,
//	sendOverhead — the per-send overhead of u (multi-port),
//
// and returns the cost of attaching v through this link; the candidate with
// the smallest cost is selected at every step.
func growTree(p *platform.Platform, source int, cost func(outSum, maxOut, linkTime float64, children int, sendOverhead float64) float64) (*platform.Tree, error) {
	if err := validate(p, source); err != nil {
		return nil, err
	}
	n := p.NumNodes()
	tree := platform.NewTree(n, source)
	inTree := make([]bool, n)
	inTree[source] = true

	outSum := make([]float64, n)
	maxOut := make([]float64, n)
	children := make([]int, n)

	for added := 1; added < n; added++ {
		bestCost := math.Inf(1)
		bestLink := -1
		for u := 0; u < n; u++ {
			if !inTree[u] {
				continue
			}
			for _, id := range p.OutLinkIDs(u) {
				v := p.Link(id).To
				if inTree[v] {
					continue
				}
				c := cost(outSum[u], maxOut[u], p.SliceTime(id), children[u], p.SendTime(u))
				if c < bestCost || (c == bestCost && bestLink >= 0 && id < bestLink) {
					bestCost = c
					bestLink = id
				}
			}
		}
		if bestLink < 0 {
			return nil, ErrNotBroadcastable
		}
		l := p.Link(bestLink)
		tree.SetParent(l.To, l.From, bestLink)
		inTree[l.To] = true
		t := p.SliceTime(bestLink)
		outSum[l.From] += t
		if t > maxOut[l.From] {
			maxOut[l.From] = t
		}
		children[l.From]++
	}
	if err := tree.Validate(p); err != nil {
		return nil, err
	}
	return tree, nil
}

// MultiportPruneDegree adapts the refined pruning heuristic (Algorithm 2) to
// the multi-port model, as mentioned in Section 5.2.2 of the paper: the node
// metric becomes the multi-port period max(δout·send_u, max outgoing link
// occupation) instead of the weighted out-degree.
type MultiportPruneDegree struct{}

// Name implements Builder.
func (MultiportPruneDegree) Name() string { return NameMultiportPruneDegree }

// Build implements Builder.
func (MultiportPruneDegree) Build(p *platform.Platform, source int) (*platform.Tree, error) {
	return pruneByNodeMetric(p, source, func(u int, outTimes []float64) float64 {
		period := float64(len(outTimes)) * p.SendTime(u)
		for _, t := range outTimes {
			if t > period {
				period = t
			}
		}
		return period
	})
}
