package heuristics

import (
	"math"

	"repro/internal/platform"
)

// LPPrune is Algorithm 6 of the paper ("LP Prune"): the platform graph is
// weighted by the per-edge message rates n(u,v) of the optimal MTP solution
// (the "communication graph"), and the edges carrying the fewest messages
// are deleted — as long as every node stays reachable from the source —
// until only a spanning tree remains.
//
// Rates may be precomputed (one steady-state LP solve shared by LPPrune,
// LPGrowTree and the relative-performance denominator); when Rates is nil
// the builder solves the LP itself.
type LPPrune struct {
	// Rates are the per-link message rates n(u,v); optional.
	Rates []float64
}

// Name implements Builder.
func (LPPrune) Name() string { return NameLPPrune }

// Build implements Builder.
func (h LPPrune) Build(p *platform.Platform, source int) (*platform.Tree, error) {
	if err := validate(p, source); err != nil {
		return nil, err
	}
	rates, err := lpRates(p, source, h.Rates)
	if err != nil {
		return nil, err
	}
	g := p.Graph()
	enabled := allEnabled(p)
	rank := func() []int {
		// Least-used edges first (the paper's prose; the pseudo-code's
		// "non-increasing" ordering is a typo — pruning the most-used edges
		// first would defeat the heuristic's purpose).
		return sortLinksBy(p.NumLinks(), func(id int) float64 { return rates[id] }, true)
	}
	pruneToArborescence(g, source, enabled, rank, false)
	return treeFromEnabledLinks(p, source, enabled)
}

// LPGrowTree is Algorithm 7 of the paper ("LP Grow Tree"): a spanning tree
// is grown from the source over the communication graph, always adding the
// crossing edge that carries the largest message rate n(u,v) in the optimal
// MTP solution.
type LPGrowTree struct {
	// Rates are the per-link message rates n(u,v); optional.
	Rates []float64
}

// Name implements Builder.
func (LPGrowTree) Name() string { return NameLPGrowTree }

// Build implements Builder.
func (h LPGrowTree) Build(p *platform.Platform, source int) (*platform.Tree, error) {
	if err := validate(p, source); err != nil {
		return nil, err
	}
	rates, err := lpRates(p, source, h.Rates)
	if err != nil {
		return nil, err
	}
	n := p.NumNodes()
	tree := platform.NewTree(n, source)
	inTree := make([]bool, n)
	inTree[source] = true
	for added := 1; added < n; added++ {
		bestRate := math.Inf(-1)
		bestLink := -1
		for u := 0; u < n; u++ {
			if !inTree[u] {
				continue
			}
			for _, id := range p.OutLinkIDs(u) {
				v := p.Link(id).To
				if inTree[v] {
					continue
				}
				if rates[id] > bestRate || (rates[id] == bestRate && bestLink >= 0 && id < bestLink) {
					bestRate = rates[id]
					bestLink = id
				}
			}
		}
		if bestLink < 0 {
			return nil, ErrNotBroadcastable
		}
		l := p.Link(bestLink)
		tree.SetParent(l.To, l.From, bestLink)
		inTree[l.To] = true
	}
	if err := tree.Validate(p); err != nil {
		return nil, err
	}
	return tree, nil
}
