package throughput

import (
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/platform"
)

// starPlatformTree builds a star platform (center 0) with the given out
// slice times and the corresponding broadcast tree.
func starPlatformTree(outTimes []float64) (*platform.Platform, *platform.Tree) {
	n := len(outTimes) + 1
	p := platform.New(n)
	tr := platform.NewTree(n, 0)
	for i, t := range outTimes {
		id := p.MustAddLink(0, i+1, model.Linear(t))
		tr.SetParent(i+1, 0, id)
	}
	return p, tr
}

// chainPlatformTree builds a chain platform and its (only) broadcast tree.
func chainPlatformTree(times []float64) (*platform.Platform, *platform.Tree) {
	n := len(times) + 1
	p := platform.New(n)
	tr := platform.NewTree(n, 0)
	for i, t := range times {
		id := p.MustAddLink(i, i+1, model.Linear(t))
		tr.SetParent(i+1, i, id)
	}
	return p, tr
}

func TestOnePortStar(t *testing.T) {
	p, tr := starPlatformTree([]float64{1, 2, 3})
	rep := Evaluate(p, tr, model.OnePortBidirectional)
	if math.Abs(rep.Throughput-1.0/6.0) > 1e-12 {
		t.Fatalf("throughput = %v, want 1/6", rep.Throughput)
	}
	if rep.Bottleneck != 0 {
		t.Fatalf("bottleneck = %d, want 0 (the source)", rep.Bottleneck)
	}
	if rep.Nodes[0].Children != 3 || math.Abs(rep.Nodes[0].OutTime-6) > 1e-12 {
		t.Fatalf("source report = %+v", rep.Nodes[0])
	}
	if rep.Nodes[1].InTime != 1 || rep.Nodes[1].Children != 0 {
		t.Fatalf("leaf report = %+v", rep.Nodes[1])
	}
	if got := OnePortThroughput(p, tr); math.Abs(got-1.0/6.0) > 1e-12 {
		t.Fatalf("OnePortThroughput = %v", got)
	}
}

func TestOnePortChain(t *testing.T) {
	p, tr := chainPlatformTree([]float64{1, 4, 2})
	rep := Evaluate(p, tr, model.OnePortBidirectional)
	if math.Abs(rep.Throughput-0.25) > 1e-12 {
		t.Fatalf("throughput = %v, want 0.25", rep.Throughput)
	}
	if rep.Bottleneck != 1 && rep.Bottleneck != 2 {
		t.Fatalf("bottleneck = %d, want the node adjacent to the slow link", rep.Bottleneck)
	}
}

func TestOnePortUnidirectionalChain(t *testing.T) {
	// Under the unidirectional one-port model a relay node pays both its
	// incoming and outgoing transfers: period = in + out.
	p, tr := chainPlatformTree([]float64{1, 4, 2})
	rep := Evaluate(p, tr, model.OnePortUnidirectional)
	// Node 1: in 1 + out 4 = 5; node 2: in 4 + out 2 = 6 -> throughput 1/6.
	if math.Abs(rep.Throughput-1.0/6.0) > 1e-12 {
		t.Fatalf("throughput = %v, want 1/6", rep.Throughput)
	}
	if rep.Bottleneck != 2 {
		t.Fatalf("bottleneck = %d, want 2", rep.Bottleneck)
	}
}

func TestMultiPortStar(t *testing.T) {
	p, tr := starPlatformTree([]float64{2, 2, 2})
	// send overhead 1.5 per transfer at the source.
	p.SetNode(0, platform.Node{Send: model.Linear(1.5)})
	rep := Evaluate(p, tr, model.MultiPort)
	// Paper Figure 3(a): period = max(3*1.5, 2) = 4.5.
	if math.Abs(rep.Throughput-1/4.5) > 1e-12 {
		t.Fatalf("throughput = %v, want %v", rep.Throughput, 1/4.5)
	}
	if got := MultiPortThroughput(p, tr); math.Abs(got-1/4.5) > 1e-12 {
		t.Fatalf("MultiPortThroughput = %v", got)
	}
	// With a negligible send overhead the longest link dominates.
	p.SetNode(0, platform.Node{Send: model.Linear(0.1)})
	rep = Evaluate(p, tr, model.MultiPort)
	if math.Abs(rep.Throughput-0.5) > 1e-12 {
		t.Fatalf("throughput = %v, want 0.5", rep.Throughput)
	}
}

func TestMultiPortBeatsOnePortOnStars(t *testing.T) {
	p, tr := starPlatformTree([]float64{1, 1, 1, 1})
	p.DeriveMultiPortOverheads(0.8)
	one := TreeThroughput(p, tr, model.OnePortBidirectional)
	multi := TreeThroughput(p, tr, model.MultiPort)
	if multi <= one {
		t.Fatalf("multi-port (%v) should beat one-port (%v) on a star", multi, one)
	}
}

func TestSingleNodeTree(t *testing.T) {
	p := platform.New(1)
	tr := platform.NewTree(1, 0)
	rep := Evaluate(p, tr, model.OnePortBidirectional)
	if !math.IsInf(rep.Throughput, 1) {
		t.Fatalf("single-node throughput = %v, want +Inf", rep.Throughput)
	}
}

func TestSTAMakespanChain(t *testing.T) {
	// Chain with per-unit times 1, 4, 2 and a message of size 3: link times
	// are 3, 12, 6 and the makespan is their sum.
	p, tr := chainPlatformTree([]float64{1, 4, 2})
	got := STAMakespan(p, tr, 3)
	if math.Abs(got-21) > 1e-12 {
		t.Fatalf("makespan = %v, want 21", got)
	}
}

func TestSTAMakespanStarSerializesSends(t *testing.T) {
	p, tr := starPlatformTree([]float64{1, 2, 3})
	// Children are sent to in order 1, 2, 3: completion times 1, 3, 6 for a
	// unit-size message.
	got := STAMakespan(p, tr, 1)
	if math.Abs(got-6) > 1e-12 {
		t.Fatalf("makespan = %v, want 6", got)
	}
}

func TestSTAMakespanPanics(t *testing.T) {
	p, tr := chainPlatformTree([]float64{1})
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("STAMakespan(%v) did not panic", bad)
				}
			}()
			STAMakespan(p, tr, bad)
		}()
	}
}

func TestPipelinedMakespan(t *testing.T) {
	p, tr := chainPlatformTree([]float64{1, 1})
	// Total size 10 in 10 slices of size 1: fill = 2, then 9 more periods of
	// 1 -> 11 time units.
	got := PipelinedMakespan(p, tr, model.OnePortBidirectional, 10, 10)
	if math.Abs(got-11) > 1e-9 {
		t.Fatalf("pipelined makespan = %v, want 11", got)
	}
	// A single slice is just the fill time for the whole message.
	got = PipelinedMakespan(p, tr, model.OnePortBidirectional, 10, 1)
	if math.Abs(got-20) > 1e-9 {
		t.Fatalf("single-slice makespan = %v, want 20", got)
	}
	// Pipelining a large message should beat the atomic broadcast.
	atomic := STAMakespan(p, tr, 10)
	pipelined := PipelinedMakespan(p, tr, model.OnePortBidirectional, 10, 100)
	if pipelined >= atomic {
		t.Fatalf("pipelined %v should beat atomic %v", pipelined, atomic)
	}
}

func TestPipelinedMakespanPanics(t *testing.T) {
	p, tr := chainPlatformTree([]float64{1})
	func() {
		defer func() {
			if recover() == nil {
				t.Error("zero slices did not panic")
			}
		}()
		PipelinedMakespan(p, tr, model.OnePortBidirectional, 1, 0)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bad size did not panic")
			}
		}()
		PipelinedMakespan(p, tr, model.OnePortBidirectional, -1, 2)
	}()
}

func TestRelativePerformance(t *testing.T) {
	p, tr := starPlatformTree([]float64{1, 1})
	if got := RelativePerformance(p, tr, model.OnePortBidirectional, 1); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("relative performance = %v, want 0.5", got)
	}
	if !math.IsNaN(RelativePerformance(p, tr, model.OnePortBidirectional, 0)) {
		t.Fatal("zero reference should give NaN")
	}
	if !math.IsNaN(RelativePerformance(p, tr, model.OnePortBidirectional, math.Inf(1))) {
		t.Fatal("infinite reference should give NaN")
	}
}
