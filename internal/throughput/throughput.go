package throughput

import (
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/platform"
)

// NodeReport describes the steady-state behaviour of one tree node.
type NodeReport struct {
	Node int
	// Period is the time the node needs between two consecutive slices.
	Period float64
	// OutTime is the total outgoing occupation per slice (sum of T(u,v)
	// over the node's children under one-port; the serialized send overhead
	// under multi-port).
	OutTime float64
	// InTime is the occupation of the incoming tree link per slice (0 for
	// the root).
	InTime float64
	// Children is the number of children of the node in the tree.
	Children int
}

// Report is the full evaluation of a tree.
type Report struct {
	// Throughput is the steady-state number of slices per time unit.
	Throughput float64
	// Bottleneck is the node whose period limits the throughput.
	Bottleneck int
	// Nodes holds the per-node reports indexed by node ID.
	Nodes []NodeReport
}

// Evaluate computes the steady-state throughput of the tree under the given
// port model. The tree must be a valid spanning tree of the platform
// (callers typically validate once after construction).
func Evaluate(p *platform.Platform, t *platform.Tree, m model.PortModel) *Report {
	n := p.NumNodes()
	rep := &Report{
		Throughput: math.Inf(1),
		Bottleneck: t.Root,
		Nodes:      make([]NodeReport, n),
	}
	worst := 0.0
	for u := 0; u < n; u++ {
		children := t.Children(u)
		childTimes := make([]float64, 0, len(children))
		var outSum float64
		for _, c := range children {
			tt := p.SliceTime(t.ParentLink[c])
			childTimes = append(childTimes, tt)
			outSum += tt
		}
		inTime := 0.0
		if u != t.Root && t.ParentLink[u] >= 0 {
			inTime = p.SliceTime(t.ParentLink[u])
		}
		period := model.NodePeriod(m, childTimes, inTime, p.SendTime(u), p.RecvTime(u))
		outTime := outSum
		if m == model.MultiPort {
			outTime = float64(len(children)) * p.SendTime(u)
		}
		rep.Nodes[u] = NodeReport{
			Node:     u,
			Period:   period,
			OutTime:  outTime,
			InTime:   inTime,
			Children: len(children),
		}
		if period > worst {
			worst = period
			rep.Bottleneck = u
		}
	}
	rep.Throughput = model.Throughput(worst)
	return rep
}

// TreeThroughput returns only the steady-state throughput of the tree under
// the given port model.
func TreeThroughput(p *platform.Platform, t *platform.Tree, m model.PortModel) float64 {
	return Evaluate(p, t, m).Throughput
}

// OnePortThroughput is a convenience wrapper for the bidirectional one-port
// model used by most of the paper's experiments.
func OnePortThroughput(p *platform.Platform, t *platform.Tree) float64 {
	return TreeThroughput(p, t, model.OnePortBidirectional)
}

// MultiPortThroughput is a convenience wrapper for the multi-port model.
func MultiPortThroughput(p *platform.Platform, t *platform.Tree) float64 {
	return TreeThroughput(p, t, model.MultiPort)
}

// STAMakespan computes the completion time of an atomic (non-pipelined)
// broadcast of a message of the given total size along the tree under the
// bidirectional one-port model: each node, once it holds the whole message,
// forwards it to its children one after the other, in the order returned by
// Tree.Children. It returns the time at which the last node has received
// the message.
func STAMakespan(p *platform.Platform, t *platform.Tree, totalSize float64) float64 {
	if totalSize <= 0 || math.IsNaN(totalSize) || math.IsInf(totalSize, 0) {
		panic(fmt.Sprintf("throughput: invalid message size %v", totalSize))
	}
	ready := make([]float64, p.NumNodes())
	makespan := 0.0
	for _, u := range t.BFSOrder() {
		send := ready[u]
		for _, c := range t.Children(u) {
			send += p.Link(t.ParentLink[c]).Cost.Time(totalSize)
			ready[c] = send
			if send > makespan {
				makespan = send
			}
		}
	}
	return makespan
}

// PipelinedMakespan estimates the total time needed to broadcast a message
// of the given size split into equal slices, along the tree, in the
// steady-state approximation used by the paper: the first slice ripples down
// the tree (sum of link times on the deepest path), after which one slice
// completes every bottleneck period. It is a lower-bound style estimate
// (the event-driven simulator in package sim gives the exact value).
func PipelinedMakespan(p *platform.Platform, t *platform.Tree, m model.PortModel, totalSize float64, slices int) float64 {
	if slices <= 0 {
		panic(fmt.Sprintf("throughput: non-positive slice count %d", slices))
	}
	if totalSize <= 0 || math.IsNaN(totalSize) || math.IsInf(totalSize, 0) {
		panic(fmt.Sprintf("throughput: invalid message size %v", totalSize))
	}
	sliceSize := totalSize / float64(slices)
	// Re-evaluate link costs at the actual slice size so that affine
	// start-up costs are charged once per slice (scaling the platform's
	// per-slice time linearly would scale the start-up term as well).
	scaled := p.Clone()
	scaled.SetSliceSize(sliceSize)
	// Fill time: longest root-to-leaf path measured in per-slice link times.
	var fill func(u int) float64
	fill = func(u int) float64 {
		best := 0.0
		for _, c := range t.Children(u) {
			d := scaled.SliceTime(t.ParentLink[c]) + fill(c)
			if d > best {
				best = d
			}
		}
		return best
	}
	rep := Evaluate(scaled, t, m)
	period := 0.0
	if rep.Throughput > 0 && !math.IsInf(rep.Throughput, 1) {
		period = 1 / rep.Throughput
	}
	return fill(t.Root) + float64(slices-1)*period
}

// EvaluateRouting computes the steady-state throughput of a routed broadcast
// schedule (a logical tree whose transfers follow multi-hop physical paths,
// e.g. the MPI-style binomial schedule of Algorithm 4). Because every slice
// must traverse every logical transfer's full path, a physical link used by
// m logical transfers is occupied m·T per slice period, and a node pays the
// occupation of every routed transfer entering or leaving it:
//
//	one-port bidirectional:  period(u) = max( Σ_out m_l·T_l , Σ_in m_l·T_l )
//	one-port unidirectional: period(u) = Σ_out m_l·T_l + Σ_in m_l·T_l
//	multi-port:              period(u) = max( cnt_out·send_u, cnt_in·recv_u,
//	                                          max_l  m_l·T_l )
//
// where m_l is the link multiplicity and cnt_out/cnt_in count the routed
// transfers leaving/entering u. For a plain tree (all paths of length one,
// multiplicities all 1) this coincides with Evaluate.
func EvaluateRouting(p *platform.Platform, r *platform.Routing, m model.PortModel) *Report {
	n := p.NumNodes()
	rep := &Report{
		Throughput: math.Inf(1),
		Bottleneck: r.Root,
		Nodes:      make([]NodeReport, n),
	}
	mult := r.LinkMultiplicity(p)
	outOcc := make([]float64, n)
	inOcc := make([]float64, n)
	outCnt := make([]int, n)
	inCnt := make([]int, n)
	maxLink := make([]float64, n) // per sending node: max multiplied link occupation
	for id, k := range mult {
		if k == 0 {
			continue
		}
		l := p.Link(id)
		occ := float64(k) * p.SliceTime(id)
		outOcc[l.From] += occ
		inOcc[l.To] += occ
		outCnt[l.From] += k
		inCnt[l.To] += k
		if occ > maxLink[l.From] {
			maxLink[l.From] = occ
		}
	}
	worst := 0.0
	for u := 0; u < n; u++ {
		var period float64
		switch m {
		case model.OnePortBidirectional:
			period = math.Max(outOcc[u], inOcc[u])
		case model.OnePortUnidirectional:
			period = outOcc[u] + inOcc[u]
		case model.MultiPort:
			period = float64(outCnt[u]) * p.SendTime(u)
			if rv := float64(inCnt[u]) * p.RecvTime(u); rv > period {
				period = rv
			}
			if maxLink[u] > period {
				period = maxLink[u]
			}
		default:
			panic(fmt.Sprintf("throughput: unknown port model %d", int(m)))
		}
		rep.Nodes[u] = NodeReport{
			Node:     u,
			Period:   period,
			OutTime:  outOcc[u],
			InTime:   inOcc[u],
			Children: outCnt[u],
		}
		if period > worst {
			worst = period
			rep.Bottleneck = u
		}
	}
	rep.Throughput = model.Throughput(worst)
	return rep
}

// RoutingThroughput returns only the steady-state throughput of a routed
// broadcast schedule under the given port model.
func RoutingThroughput(p *platform.Platform, r *platform.Routing, m model.PortModel) float64 {
	return EvaluateRouting(p, r, m).Throughput
}

// RelativePerformance returns the ratio of the tree's throughput under the
// given model to a reference throughput (typically the MTP optimum computed
// by package steady). A non-positive reference yields NaN.
func RelativePerformance(p *platform.Platform, t *platform.Tree, m model.PortModel, reference float64) float64 {
	if reference <= 0 || math.IsInf(reference, 0) || math.IsNaN(reference) {
		return math.NaN()
	}
	return TreeThroughput(p, t, m) / reference
}
