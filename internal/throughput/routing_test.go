package throughput

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/topology"
)

func TestEvaluateRoutingMatchesTreeForPlainTrees(t *testing.T) {
	// A routing lifted from a tree must evaluate exactly like the tree under
	// every port model.
	rng := rand.New(rand.NewSource(21))
	p, err := topology.Random(topology.DefaultRandomConfig(12, 0.25), rng)
	if err != nil {
		t.Fatal(err)
	}
	g := p.Graph()
	parentEdge, reached := g.BFSArborescence(0, nil)
	if reached != p.NumNodes() {
		t.Fatal("platform not broadcastable")
	}
	tree := platform.TreeFromParentLinks(p, 0, parentEdge)
	routing := platform.RoutingFromTree(tree)
	for _, m := range []model.PortModel{model.OnePortBidirectional, model.OnePortUnidirectional, model.MultiPort} {
		a := TreeThroughput(p, tree, m)
		b := RoutingThroughput(p, routing, m)
		// The multi-port tree evaluation only applies the receive overhead
		// when the node has a parent and otherwise uses the same formulas,
		// so the two should agree exactly here as well.
		if math.Abs(a-b) > 1e-9*math.Max(a, 1) {
			t.Fatalf("model %v: tree %v vs routing %v", m, a, b)
		}
	}
}

func TestEvaluateRoutingContention(t *testing.T) {
	// Chain 0 -> 1 -> 2 -> 3 with unit link times, but the logical structure
	// sends 0->1, 0->2 and 0->3 (each routed along the chain): link 0->1
	// carries 3 transfers, 1->2 carries 2, 2->3 carries 1. The bottleneck is
	// node 0 (or node 1's incoming side) with occupation 3.
	p := platform.New(4)
	ids := make([]int, 3)
	for i := 0; i+1 < 4; i++ {
		ids[i] = p.MustAddLink(i, i+1, model.Linear(1))
	}
	r := platform.NewRouting(4, 0)
	r.SetTransfer(1, 0, []int{ids[0]})
	r.SetTransfer(2, 0, []int{ids[0], ids[1]})
	r.SetTransfer(3, 0, []int{ids[0], ids[1], ids[2]})
	if err := r.Validate(p); err != nil {
		t.Fatal(err)
	}
	rep := EvaluateRouting(p, r, model.OnePortBidirectional)
	if math.Abs(rep.Throughput-1.0/3.0) > 1e-9 {
		t.Fatalf("throughput = %v, want 1/3", rep.Throughput)
	}
	// The same data sent along the natural chain (each node relays once) has
	// throughput 1: contention makes the flat logical structure 3x worse.
	tr := platform.NewTree(4, 0)
	for i := 1; i < 4; i++ {
		tr.SetParent(i, i-1, ids[i-1])
	}
	if tp := OnePortThroughput(p, tr); math.Abs(tp-1) > 1e-9 {
		t.Fatalf("chain tree throughput = %v, want 1", tp)
	}
	// Unidirectional: node 1 pays in (3) + out (2) = 5.
	rep = EvaluateRouting(p, r, model.OnePortUnidirectional)
	if math.Abs(rep.Throughput-0.2) > 1e-9 {
		t.Fatalf("unidirectional throughput = %v, want 1/5", rep.Throughput)
	}
}

func TestEvaluateRoutingMultiPort(t *testing.T) {
	// Star with 3 leaves, unit link times, but every transfer is logical
	// from the source: multiplicities are 1 per link, send overhead 0.5.
	p := platform.New(4)
	r := platform.NewRouting(4, 0)
	for v := 1; v < 4; v++ {
		id := p.MustAddLink(0, v, model.Linear(1))
		r.SetTransfer(v, 0, []int{id})
	}
	p.SetNode(0, platform.Node{Send: model.Linear(0.5)})
	rep := EvaluateRouting(p, r, model.MultiPort)
	// period = max(3*0.5, 1) = 1.5.
	if math.Abs(rep.Throughput-1/1.5) > 1e-9 {
		t.Fatalf("multi-port routing throughput = %v, want %v", rep.Throughput, 1/1.5)
	}
}

func TestEvaluateRoutingUnknownModelPanics(t *testing.T) {
	p := platform.New(2)
	id := p.MustAddLink(0, 1, model.Linear(1))
	r := platform.NewRouting(2, 0)
	r.SetTransfer(1, 0, []int{id})
	defer func() {
		if recover() == nil {
			t.Fatal("unknown model did not panic")
		}
	}()
	EvaluateRouting(p, r, model.PortModel(42))
}
