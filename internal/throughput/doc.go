// Package throughput evaluates broadcast trees and routed schedules: the
// steady-state throughput of a pipelined broadcast under the one-port and
// multi-port models (Sections 2.4 and 3.2 of the paper), per-node
// bottleneck reports, and the makespan of an atomic (STA) broadcast.
//
// The steady-state evaluation inverts the per-node period: under the
// bidirectional one-port model a node's period is the sum of the link
// occupations of its tree children (sends serialize) joined with its
// receive occupation; under the multi-port model only the per-send
// overheads serialize. The tree throughput is the reciprocal of the worst
// period over all nodes — the pipeline advances at the speed of its
// bottleneck — and Report lists every node's period so experiments can
// attribute the bottleneck. RoutingThroughput evaluates routed schedules
// (the binomial heuristic), accounting for link and node contention along
// shared path segments. These evaluators are the single source of truth
// for "throughput" everywhere: heuristics, sweeps, the churn engine and the
// planning service all report numbers computed here.
package throughput
