package parallel

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachRunsAllIndices(t *testing.T) {
	const n = 100
	var seen [n]int32
	ForEach(n, 4, func(i int) { atomic.AddInt32(&seen[i], 1) })
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d executed %d times", i, c)
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	calls := 0
	ForEach(0, 4, func(int) { calls++ })
	ForEach(-3, 4, func(int) { calls++ })
	if calls != 0 {
		t.Fatalf("calls = %d, want 0", calls)
	}
}

func TestForEachSingleWorkerIsSequential(t *testing.T) {
	var order []int
	ForEach(10, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order broken: %v", order)
		}
	}
}

func TestForEachDefaultWorkers(t *testing.T) {
	var count int32
	ForEach(50, 0, func(int) { atomic.AddInt32(&count, 1) })
	if count != 50 {
		t.Fatalf("count = %d", count)
	}
}

func TestMapOrdering(t *testing.T) {
	res := Map(20, 8, func(i int) int { return i * i })
	for i, v := range res {
		if v != i*i {
			t.Fatalf("res[%d] = %d", i, v)
		}
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("panic did not propagate")
		}
	}()
	Map(10, 4, func(i int) int {
		if i == 3 {
			panic("boom")
		}
		return i
	})
}

func TestMapErr(t *testing.T) {
	wantErr := errors.New("bad index")
	res, err := MapErr(10, 4, func(i int) (int, error) {
		if i == 7 {
			return 0, wantErr
		}
		return i * 2, nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
	if res[3] != 6 {
		t.Fatal("successful results should still be populated")
	}
	res, err = MapErr(5, 2, func(i int) (int, error) { return i, nil })
	if err != nil || len(res) != 5 {
		t.Fatalf("unexpected err=%v len=%d", err, len(res))
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	_, err := MapErr(10, 4, func(i int) (int, error) {
		switch i {
		case 2:
			return 0, errA
		case 8:
			return 0, errB
		}
		return i, nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want first (lowest index) error", err)
	}
}

func TestMapStream(t *testing.T) {
	var streamed []int
	res := MapStream(20, 4, func(i int) int { return i * i }, func(i, v int) {
		if v != i*i {
			t.Errorf("observe(%d, %d), want %d", i, v, i*i)
		}
		streamed = append(streamed, i) // serialized: no extra locking needed
	})
	if len(res) != 20 || len(streamed) != 20 {
		t.Fatalf("got %d results, %d observations, want 20 each", len(res), len(streamed))
	}
	for i, v := range res {
		if v != i*i {
			t.Fatalf("res[%d] = %d, want %d", i, v, i*i)
		}
	}
	seen := make(map[int]bool)
	for _, i := range streamed {
		if seen[i] {
			t.Fatalf("index %d observed twice", i)
		}
		seen[i] = true
	}
	res = MapStream(5, 2, func(i int) int { return i }, nil)
	if len(res) != 5 {
		t.Fatalf("nil observe: got %d results", len(res))
	}
}
