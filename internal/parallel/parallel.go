package parallel

import (
	"runtime"
	"sync"
)

// ForEach runs fn(i) for every i in [0, n) using at most workers goroutines.
// If workers <= 0, runtime.NumCPU() workers are used. ForEach returns after
// every call has completed. fn must be safe for concurrent invocation with
// distinct indices.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next struct {
		sync.Mutex
		i int
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				next.Lock()
				i := next.i
				next.i++
				next.Unlock()
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Map runs fn(i) for every i in [0, n) with at most workers goroutines and
// returns the results in index order. Panics inside fn propagate to the
// caller of Map.
func Map[T any](n, workers int, fn func(i int) T) []T {
	results := make([]T, n)
	var (
		mu       sync.Mutex
		panicked interface{}
	)
	ForEach(n, workers, func(i int) {
		defer func() {
			if r := recover(); r != nil {
				mu.Lock()
				if panicked == nil {
					panicked = r
				}
				mu.Unlock()
			}
		}()
		results[i] = fn(i)
	})
	if panicked != nil {
		panic(panicked)
	}
	return results
}

// MapStream runs fn(i) for every i in [0, n) like Map and additionally
// invokes observe(i, result) as each index completes. observe calls are
// serialized (never concurrent) but arrive in completion order, not index
// order; the returned slice is still in index order. A nil observe makes
// MapStream equivalent to Map.
func MapStream[T any](n, workers int, fn func(i int) T, observe func(i int, v T)) []T {
	if observe == nil {
		return Map(n, workers, fn)
	}
	var mu sync.Mutex
	return Map(n, workers, func(i int) T {
		v := fn(i)
		mu.Lock()
		observe(i, v)
		mu.Unlock()
		return v
	})
}

// MapErr runs fn(i) for every i in [0, n) concurrently and returns the
// results in index order along with the first error encountered (by lowest
// index). All calls run to completion even if some fail.
func MapErr[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	ForEach(n, workers, func(i int) {
		results[i], errs[i] = fn(i)
	})
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
