// Package parallel provides the bounded worker pools behind every parallel
// evaluation in the repository: scenario sweeps, robustness trials, the
// planning service's request batches and the load generator's replay waves.
//
// All helpers share one contract: work is identified by a dense index
// [0, n), fans out across at most `workers` goroutines, and results come
// back in index order — so the aggregate output of a parallel run is
// byte-identical to a sequential run, for any worker count. ForEach runs
// side-effecting work, Map collects results, MapErr short-circuits on the
// first error, and MapStream additionally delivers results to an observer
// in index order while later indices are still computing (the sweep engine
// streams progress through it).
package parallel
