package slicing

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/throughput"
)

// Plan is the outcome of a slice-count optimization.
type Plan struct {
	// Slices is the chosen number of slices (>= 1).
	Slices int
	// SliceSize is TotalSize / Slices.
	SliceSize float64
	// Makespan is the estimated broadcast completion time with this plan.
	Makespan float64
	// AtomicMakespan is the makespan of the non-pipelined broadcast
	// (a single slice), for comparison.
	AtomicMakespan float64
	// Speedup is AtomicMakespan / Makespan.
	Speedup float64
}

// Errors returned by Optimize.
var ErrBadInput = errors.New("slicing: invalid input")

// EstimateMakespan returns the steady-state estimate of the time needed to
// broadcast a message of the given total size cut into the given number of
// equal slices along the tree.
func EstimateMakespan(p *platform.Platform, t *platform.Tree, m model.PortModel, totalSize float64, slices int) float64 {
	return throughput.PipelinedMakespan(p, t, m, totalSize, slices)
}

// Optimize searches for the slice count minimizing the estimated makespan of
// broadcasting totalSize along the tree under the given port model. The
// search sweeps slice counts from 1 to maxSlices (default: 4096) over a
// geometric grid refined around the best candidate, which is sufficient
// because the makespan estimate is unimodal in the slice count for affine
// costs.
func Optimize(p *platform.Platform, t *platform.Tree, m model.PortModel, totalSize float64, maxSlices int) (*Plan, error) {
	if totalSize <= 0 || math.IsNaN(totalSize) || math.IsInf(totalSize, 0) {
		return nil, fmt.Errorf("%w: total size %v", ErrBadInput, totalSize)
	}
	if err := t.Validate(p); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadInput, err)
	}
	if maxSlices <= 0 {
		maxSlices = 4096
	}

	evaluate := func(k int) float64 {
		return throughput.PipelinedMakespan(p, t, m, totalSize, k)
	}

	// Coarse geometric sweep.
	bestK, bestMakespan := 1, evaluate(1)
	atomic := bestMakespan
	for k := 2; k <= maxSlices; k = growCandidate(k) {
		if ms := evaluate(k); ms < bestMakespan {
			bestK, bestMakespan = k, ms
		}
	}
	// Local refinement around the best coarse candidate.
	lo := bestK / 2
	if lo < 1 {
		lo = 1
	}
	hi := bestK * 2
	if hi > maxSlices {
		hi = maxSlices
	}
	for k := lo; k <= hi; k++ {
		if ms := evaluate(k); ms < bestMakespan {
			bestK, bestMakespan = k, ms
		}
	}

	plan := &Plan{
		Slices:         bestK,
		SliceSize:      totalSize / float64(bestK),
		Makespan:       bestMakespan,
		AtomicMakespan: atomic,
	}
	if bestMakespan > 0 {
		plan.Speedup = atomic / bestMakespan
	}
	return plan, nil
}

// growCandidate advances the coarse geometric sweep (~25% steps).
func growCandidate(k int) int {
	next := k + k/4
	if next <= k {
		next = k + 1
	}
	return next
}
