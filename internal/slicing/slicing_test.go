package slicing

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/heuristics"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/topology"
)

// chainWithLatency builds a chain 0 -> 1 -> ... -> n-1 where every link has
// start-up latency alpha and per-unit cost beta.
func chainWithLatency(n int, alpha, beta float64) (*platform.Platform, *platform.Tree) {
	p := platform.New(n)
	tr := platform.NewTree(n, 0)
	for i := 0; i+1 < n; i++ {
		id := p.MustAddLink(i, i+1, model.AffineCost{Latency: alpha, PerUnit: beta})
		tr.SetParent(i+1, i, id)
	}
	return p, tr
}

func TestOptimizeRejectsBadInput(t *testing.T) {
	p, tr := chainWithLatency(3, 0, 1)
	if _, err := Optimize(p, tr, model.OnePortBidirectional, 0, 0); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := Optimize(p, tr, model.OnePortBidirectional, math.NaN(), 0); err == nil {
		t.Fatal("NaN size accepted")
	}
	bad := platform.NewTree(3, 0)
	if _, err := Optimize(p, bad, model.OnePortBidirectional, 1, 0); err == nil {
		t.Fatal("invalid tree accepted")
	}
}

func TestOptimizeZeroLatencyPrefersManySlices(t *testing.T) {
	// Without start-up costs, more slices always help (up to the cap): the
	// optimum should sit at or near maxSlices and beat the atomic broadcast
	// by roughly the pipeline depth on a long chain.
	p, tr := chainWithLatency(6, 0, 1)
	plan, err := Optimize(p, tr, model.OnePortBidirectional, 100, 256)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Slices < 128 {
		t.Fatalf("expected many slices with zero latency, got %d", plan.Slices)
	}
	if plan.Speedup < 3 {
		t.Fatalf("speed-up = %v, want a large pipelining gain on a deep chain", plan.Speedup)
	}
	if plan.AtomicMakespan != 500 { // 5 links x size 100
		t.Fatalf("atomic makespan = %v, want 500", plan.AtomicMakespan)
	}
}

func TestOptimizeWithLatencyPicksIntermediateCount(t *testing.T) {
	// With a noticeable per-slice start-up cost the optimum is an
	// intermediate slice count: neither 1 nor the maximum.
	p, tr := chainWithLatency(6, 0.5, 0.01)
	plan, err := Optimize(p, tr, model.OnePortBidirectional, 1000, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Slices <= 1 || plan.Slices >= 4096 {
		t.Fatalf("expected an intermediate slice count, got %d", plan.Slices)
	}
	// The chosen count must be at least as good as its neighbours (local
	// optimality) and as the two extremes.
	for _, k := range []int{1, plan.Slices - 1, plan.Slices + 1, 4096} {
		if k < 1 {
			continue
		}
		if ms := EstimateMakespan(p, tr, model.OnePortBidirectional, 1000, k); ms < plan.Makespan-1e-9 {
			t.Fatalf("slice count %d (makespan %v) beats the chosen %d (%v)", k, ms, plan.Slices, plan.Makespan)
		}
	}
	if plan.SliceSize != 1000/float64(plan.Slices) {
		t.Fatalf("slice size inconsistent: %v", plan.SliceSize)
	}
}

func TestOptimizeSingleNodeDegenerate(t *testing.T) {
	p := platform.New(1)
	tr := platform.NewTree(1, 0)
	plan, err := Optimize(p, tr, model.OnePortBidirectional, 10, 16)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Makespan != 0 || plan.Slices < 1 {
		t.Fatalf("degenerate plan = %+v", plan)
	}
}

func TestOptimizeOnRandomPlatformBeatsAtomic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p, err := topology.Random(topology.DefaultRandomConfig(15, 0.2), rng)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := heuristics.ByName(heuristics.NameGrowTree)
	tree, err := b.Build(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Optimize(p, tree, model.OnePortBidirectional, 512, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Speedup < 1 {
		t.Fatalf("pipelining should never lose to the atomic broadcast, speedup = %v", plan.Speedup)
	}
	if plan.Slices < 2 {
		t.Fatalf("expected pipelining to help on a random platform, got %d slices", plan.Slices)
	}
}

func TestGrowCandidateMonotone(t *testing.T) {
	k := 1
	for i := 0; i < 100; i++ {
		next := growCandidate(k)
		if next <= k {
			t.Fatalf("growCandidate(%d) = %d did not advance", k, next)
		}
		k = next
	}
}
