// Package slicing chooses how to cut a message into slices for a pipelined
// broadcast. The paper leaves the slice size as an application-level
// parameter (Section 2.4); this package provides the classical trade-off
// analysis: with affine link costs, many small slices shorten the pipeline
// fill time but pay the per-slice start-up latency α on every hop, so there
// is an optimal intermediate slice count.
//
// The model used is the steady-state approximation of package throughput:
//
//	makespan(K) ≈ fill(K) + (K-1) · period(K)
//
// where K is the slice count, fill is the time the first slice needs to
// reach the deepest leaf, and period is the bottleneck node period for
// slices of size total/K. Both are exact for chains and stars and within a
// few percent of the event-accurate simulator elsewhere (see the tests).
package slicing
