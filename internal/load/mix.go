package load

import (
	"fmt"
	"sort"

	"repro/internal/heuristics"
	"repro/internal/scenarios"
)

// PhaseKind identifies one traffic pattern of a mix phase.
type PhaseKind string

// The built-in traffic patterns.
const (
	// KindZipf draws Requests plan requests over Platforms distinct
	// platforms with zipfian popularity (skew Skew).
	KindZipf PhaseKind = "zipf"
	// KindLineage drives Lineages independent base+delta churn lineages of
	// Depth deltas each: every request addresses the previous state by
	// fingerprint and mutates it with one generated churn delta.
	KindLineage PhaseKind = "lineage"
	// KindTwins plans Platforms base platforms, then a renumbered twin of
	// each (same fingerprint, different exact encoding), then Dupes repeat
	// requests of every base and twin.
	KindTwins PhaseKind = "twins"
	// KindFlood issues Platforms cold-miss bursts: Burst identical
	// concurrent requests against a previously unseen platform each.
	KindFlood PhaseKind = "flood"
	// KindOverload proves the overload contract: the engine is shaped to
	// Lanes solve lanes plus a bounded admission queue of Queue waiters, Hot
	// platforms are prewarmed, then a storm of Cold fresh cold misses is
	// issued in index order (the first Lanes take lanes, the next Queue
	// queue, the rest are shed with the overload error) while a zipfian
	// stream of Hits cache hits runs through the saturated engine. When
	// Degraded > 0, a follow-up wave requests that many fresh platforms in
	// degraded mode (immediate heuristic answer, background LP refinement)
	// and re-requests them refined.
	KindOverload PhaseKind = "overload"
)

// PhaseSpec describes one phase of a mix. Zero values select sensible
// defaults where noted; the zero Spec is invalid.
type PhaseSpec struct {
	// Name labels the phase in reports (unique within a mix).
	Name string `json:"name"`
	// Kind selects the traffic pattern.
	Kind PhaseKind `json:"kind"`
	// Scenarios are the registry families platforms are drawn from
	// (round-robin). Empty is invalid.
	Scenarios []string `json:"scenarios"`
	// Size is the node count of every generated platform.
	Size int `json:"size"`
	// Platforms is the number of distinct platforms (zipf, twins, flood).
	Platforms int `json:"platforms,omitempty"`
	// Requests is the total number of requests of a zipf phase.
	Requests int `json:"requests,omitempty"`
	// Skew is the zipf popularity skew (must be > 1; default 1.3).
	Skew float64 `json:"skew,omitempty"`
	// Lineages and Depth shape a lineage phase: Lineages independent chains
	// of one base plan plus Depth delta requests.
	Lineages int `json:"lineages,omitempty"`
	Depth    int `json:"depth,omitempty"`
	// Profile overrides the churn profile generating lineage deltas
	// (default: the scenario family's registry profile).
	Profile string `json:"profile,omitempty"`
	// Dupes is the number of repeat requests per base and per twin in a
	// twins phase.
	Dupes int `json:"dupes,omitempty"`
	// Burst is the number of identical concurrent requests per flood
	// platform (must be >= 2).
	Burst int `json:"burst,omitempty"`
	// Heuristic optionally names a tree heuristic every request of the
	// phase asks for (empty = LP optimum only).
	Heuristic string `json:"heuristic,omitempty"`
	// Trees, when positive, asks every plan of the phase for a k-tree
	// packing of the optimal edge rates with at most that many trees. The
	// cap is part of the service cache identity, so phases differing only
	// in Trees never share cache entries.
	Trees int `json:"trees,omitempty"`
	// Lanes and Queue shape the engine of an overload phase: Lanes
	// concurrent solve lanes and a bounded admission queue of Queue waiters
	// (the replay builds its in-process engine with exactly this shape).
	Lanes int `json:"lanes,omitempty"`
	Queue int `json:"queue,omitempty"`
	// Cold is the storm size of an overload phase: Cold fresh cold-miss
	// requests issued in index order against the saturated engine. It must
	// exceed Lanes+Queue so the tail is deterministically shed.
	Cold int `json:"cold,omitempty"`
	// Hot and Hits shape the overload phase's hit stream: Hot prewarmed
	// platforms drawn Hits times with zipfian popularity (skew Skew) while
	// the storm holds every solve lane.
	Hot  int `json:"hot,omitempty"`
	Hits int `json:"hits,omitempty"`
	// Degraded is the number of fresh platforms an overload phase requests
	// in degraded mode after the storm (0 = skip the degraded wave).
	Degraded int `json:"degraded,omitempty"`
}

// Mix is a named workload: an ordered list of phases replayed against one
// shared plan cache (phases see the cache state earlier phases left
// behind).
type Mix struct {
	Name        string      `json:"name"`
	Description string      `json:"description"`
	Phases      []PhaseSpec `json:"phases"`
}

// validate checks a mix is well-formed enough to compile.
func (m Mix) validate() error {
	if m.Name == "" {
		return fmt.Errorf("load: mix has no name")
	}
	if len(m.Phases) == 0 {
		return fmt.Errorf("load: mix %q has no phases", m.Name)
	}
	names := make(map[string]bool, len(m.Phases))
	var overload *struct{ lanes, queue int }
	for i, ph := range m.Phases {
		if ph.Name == "" {
			return fmt.Errorf("load: mix %q: phase %d has no name", m.Name, i)
		}
		if names[ph.Name] {
			return fmt.Errorf("load: mix %q: duplicate phase name %q", m.Name, ph.Name)
		}
		names[ph.Name] = true
		if len(ph.Scenarios) == 0 {
			return fmt.Errorf("load: mix %q: phase %q has no scenarios", m.Name, ph.Name)
		}
		for _, s := range ph.Scenarios {
			if _, err := scenarios.Get(s); err != nil {
				return fmt.Errorf("load: mix %q: phase %q: %w", m.Name, ph.Name, err)
			}
		}
		if ph.Size < 2 {
			return fmt.Errorf("load: mix %q: phase %q: size %d too small", m.Name, ph.Name, ph.Size)
		}
		if ph.Heuristic != "" {
			if _, err := heuristics.ByName(ph.Heuristic); err != nil {
				return fmt.Errorf("load: mix %q: phase %q: %w", m.Name, ph.Name, err)
			}
		}
		if ph.Trees < 0 {
			return fmt.Errorf("load: mix %q: phase %q: negative trees cap %d", m.Name, ph.Name, ph.Trees)
		}
		switch ph.Kind {
		case KindZipf:
			if ph.Platforms < 1 || ph.Requests < ph.Platforms {
				return fmt.Errorf("load: mix %q: phase %q: zipf needs platforms >= 1 and requests >= platforms", m.Name, ph.Name)
			}
			if ph.Skew != 0 && ph.Skew <= 1 {
				return fmt.Errorf("load: mix %q: phase %q: zipf skew must be > 1", m.Name, ph.Name)
			}
		case KindLineage:
			if ph.Lineages < 1 || ph.Depth < 1 {
				return fmt.Errorf("load: mix %q: phase %q: lineage needs lineages >= 1 and depth >= 1", m.Name, ph.Name)
			}
		case KindTwins:
			if ph.Platforms < 1 {
				return fmt.Errorf("load: mix %q: phase %q: twins needs platforms >= 1", m.Name, ph.Name)
			}
		case KindFlood:
			if ph.Platforms < 1 || ph.Burst < 2 {
				return fmt.Errorf("load: mix %q: phase %q: flood needs platforms >= 1 and burst >= 2", m.Name, ph.Name)
			}
		case KindOverload:
			if ph.Lanes < 1 || ph.Queue < 1 {
				return fmt.Errorf("load: mix %q: phase %q: overload needs lanes >= 1 and queue >= 1", m.Name, ph.Name)
			}
			if ph.Cold <= ph.Lanes+ph.Queue {
				return fmt.Errorf("load: mix %q: phase %q: overload needs cold > lanes+queue so the storm sheds", m.Name, ph.Name)
			}
			if ph.Hot < 1 || ph.Hits < 1 {
				return fmt.Errorf("load: mix %q: phase %q: overload needs hot >= 1 and hits >= 1", m.Name, ph.Name)
			}
			if ph.Hot > ph.Lanes+ph.Queue {
				return fmt.Errorf("load: mix %q: phase %q: overload needs hot <= lanes+queue so the prewarm never sheds", m.Name, ph.Name)
			}
			if ph.Skew != 0 && ph.Skew <= 1 {
				return fmt.Errorf("load: mix %q: phase %q: overload skew must be > 1", m.Name, ph.Name)
			}
			if overload != nil && (overload.lanes != ph.Lanes || overload.queue != ph.Queue) {
				return fmt.Errorf("load: mix %q: phase %q: overload phases must agree on lanes/queue (one engine replays the whole mix)", m.Name, ph.Name)
			}
			overload = &struct{ lanes, queue int }{ph.Lanes, ph.Queue}
		default:
			return fmt.Errorf("load: mix %q: phase %q: unknown kind %q", m.Name, ph.Name, ph.Kind)
		}
	}
	return nil
}

// builtinMixes are the registered workloads. The smoke mix is the
// deterministic CI/golden workload: small enough to replay in seconds,
// while still touching all four traffic patterns.
var builtinMixes = map[string]Mix{
	"smoke": {
		Name:        "smoke",
		Description: "tiny deterministic all-pattern workload (CI smoke and golden tests)",
		Phases: []PhaseSpec{
			{Name: "zipf-popular", Kind: KindZipf, Scenarios: []string{scenarios.NameStar, scenarios.NameChain}, Size: 8, Platforms: 3, Requests: 12, Skew: 1.4, Heuristic: "lp-grow-tree", Trees: 16},
			{Name: "churn-lineages", Kind: KindLineage, Scenarios: []string{scenarios.NameLastMile}, Size: 10, Lineages: 2, Depth: 2},
			{Name: "twin-storm", Kind: KindTwins, Scenarios: []string{scenarios.NameRing}, Size: 8, Platforms: 2, Dupes: 1},
			{Name: "cold-flood", Kind: KindFlood, Scenarios: []string{scenarios.NameGrid}, Size: 9, Platforms: 2, Burst: 4},
		},
	},
	"steady-zipf": {
		Name:        "steady-zipf",
		Description: "cache-economics workload: zipfian popularity over a mixed scenario pool",
		Phases: []PhaseSpec{
			{Name: "warmup", Kind: KindZipf, Scenarios: []string{scenarios.NameClusters, scenarios.NameTiers}, Size: 16, Platforms: 8, Requests: 32, Skew: 1.2, Heuristic: "lp-grow-tree"},
			{Name: "skewed", Kind: KindZipf, Scenarios: []string{scenarios.NameClusters, scenarios.NameTiers, scenarios.NameLastMile}, Size: 16, Platforms: 12, Requests: 200, Skew: 1.5, Heuristic: "lp-grow-tree"},
		},
	},
	"churn-lineages": {
		Name:        "churn-lineages",
		Description: "warm-session workload: many interleaved base+delta churn lineages",
		Phases: []PhaseSpec{
			{Name: "lineages", Kind: KindLineage, Scenarios: []string{scenarios.NameClusters, scenarios.NameLastMile, scenarios.NameTiers}, Size: 16, Lineages: 6, Depth: 8},
		},
	},
	"twin-storm": {
		Name:        "twin-storm",
		Description: "twin-guard workload: renumbered duplicates hammering shared fingerprints",
		Phases: []PhaseSpec{
			{Name: "twins", Kind: KindTwins, Scenarios: []string{scenarios.NameRandomSparse, scenarios.NameRing}, Size: 12, Platforms: 6, Dupes: 4},
		},
	},
	"cold-flood": {
		Name:        "cold-flood",
		Description: "singleflight workload: concurrent identical bursts on uncached platforms",
		Phases: []PhaseSpec{
			{Name: "floods", Kind: KindFlood, Scenarios: []string{scenarios.NameGrid, scenarios.NameStar}, Size: 12, Platforms: 8, Burst: 8},
		},
	},
	"overload": {
		Name:        "overload",
		Description: "overload-contract workload: cold storm beyond lanes+queue with a zipf hit stream through the saturated engine, then degraded-mode plans refined in the background",
		Phases: []PhaseSpec{
			{Name: "storm", Kind: KindOverload, Scenarios: []string{scenarios.NameClusters, scenarios.NameGrid}, Size: 12, Lanes: 2, Queue: 2, Cold: 8, Hot: 3, Hits: 40, Skew: 1.4, Degraded: 3, Heuristic: "lp-grow-tree"},
		},
	},
	"mixed": {
		Name:        "mixed",
		Description: "production-shaped blend: zipf steady state, churn lineages, twins, floods",
		Phases: []PhaseSpec{
			{Name: "zipf-popular", Kind: KindZipf, Scenarios: []string{scenarios.NameClusters, scenarios.NameTiers, scenarios.NameLastMile}, Size: 16, Platforms: 10, Requests: 80, Skew: 1.3, Heuristic: "lp-grow-tree"},
			{Name: "churn-lineages", Kind: KindLineage, Scenarios: []string{scenarios.NameClusters, scenarios.NameLastMile}, Size: 16, Lineages: 4, Depth: 5},
			{Name: "twin-storm", Kind: KindTwins, Scenarios: []string{scenarios.NameRandomSparse}, Size: 12, Platforms: 4, Dupes: 2},
			{Name: "cold-flood", Kind: KindFlood, Scenarios: []string{scenarios.NameGrid}, Size: 12, Platforms: 4, Burst: 6},
			{Name: "zipf-rehit", Kind: KindZipf, Scenarios: []string{scenarios.NameClusters, scenarios.NameTiers, scenarios.NameLastMile}, Size: 16, Platforms: 10, Requests: 60, Skew: 1.3, Heuristic: "lp-grow-tree"},
		},
	},
}

// MixNames returns the built-in mix names in sorted order.
func MixNames() []string {
	names := make([]string, 0, len(builtinMixes))
	for name := range builtinMixes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// MixByName returns the named built-in mix; unknown names are rejected with
// the list of known ones.
func MixByName(name string) (Mix, error) {
	m, ok := builtinMixes[name]
	if !ok {
		return Mix{}, fmt.Errorf("load: unknown mix %q (known mixes: %v)", name, MixNames())
	}
	return m, nil
}

// Mixes returns every built-in mix in MixNames order.
func Mixes() []Mix {
	names := MixNames()
	out := make([]Mix, 0, len(names))
	for _, name := range names {
		out = append(out, builtinMixes[name])
	}
	return out
}
