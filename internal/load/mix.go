package load

import (
	"fmt"
	"sort"

	"repro/internal/heuristics"
	"repro/internal/scenarios"
)

// PhaseKind identifies one traffic pattern of a mix phase.
type PhaseKind string

// The built-in traffic patterns.
const (
	// KindZipf draws Requests plan requests over Platforms distinct
	// platforms with zipfian popularity (skew Skew).
	KindZipf PhaseKind = "zipf"
	// KindLineage drives Lineages independent base+delta churn lineages of
	// Depth deltas each: every request addresses the previous state by
	// fingerprint and mutates it with one generated churn delta.
	KindLineage PhaseKind = "lineage"
	// KindTwins plans Platforms base platforms, then a renumbered twin of
	// each (same fingerprint, different exact encoding), then Dupes repeat
	// requests of every base and twin.
	KindTwins PhaseKind = "twins"
	// KindFlood issues Platforms cold-miss bursts: Burst identical
	// concurrent requests against a previously unseen platform each.
	KindFlood PhaseKind = "flood"
)

// PhaseSpec describes one phase of a mix. Zero values select sensible
// defaults where noted; the zero Spec is invalid.
type PhaseSpec struct {
	// Name labels the phase in reports (unique within a mix).
	Name string `json:"name"`
	// Kind selects the traffic pattern.
	Kind PhaseKind `json:"kind"`
	// Scenarios are the registry families platforms are drawn from
	// (round-robin). Empty is invalid.
	Scenarios []string `json:"scenarios"`
	// Size is the node count of every generated platform.
	Size int `json:"size"`
	// Platforms is the number of distinct platforms (zipf, twins, flood).
	Platforms int `json:"platforms,omitempty"`
	// Requests is the total number of requests of a zipf phase.
	Requests int `json:"requests,omitempty"`
	// Skew is the zipf popularity skew (must be > 1; default 1.3).
	Skew float64 `json:"skew,omitempty"`
	// Lineages and Depth shape a lineage phase: Lineages independent chains
	// of one base plan plus Depth delta requests.
	Lineages int `json:"lineages,omitempty"`
	Depth    int `json:"depth,omitempty"`
	// Profile overrides the churn profile generating lineage deltas
	// (default: the scenario family's registry profile).
	Profile string `json:"profile,omitempty"`
	// Dupes is the number of repeat requests per base and per twin in a
	// twins phase.
	Dupes int `json:"dupes,omitempty"`
	// Burst is the number of identical concurrent requests per flood
	// platform (must be >= 2).
	Burst int `json:"burst,omitempty"`
	// Heuristic optionally names a tree heuristic every request of the
	// phase asks for (empty = LP optimum only).
	Heuristic string `json:"heuristic,omitempty"`
}

// Mix is a named workload: an ordered list of phases replayed against one
// shared plan cache (phases see the cache state earlier phases left
// behind).
type Mix struct {
	Name        string      `json:"name"`
	Description string      `json:"description"`
	Phases      []PhaseSpec `json:"phases"`
}

// validate checks a mix is well-formed enough to compile.
func (m Mix) validate() error {
	if m.Name == "" {
		return fmt.Errorf("load: mix has no name")
	}
	if len(m.Phases) == 0 {
		return fmt.Errorf("load: mix %q has no phases", m.Name)
	}
	names := make(map[string]bool, len(m.Phases))
	for i, ph := range m.Phases {
		if ph.Name == "" {
			return fmt.Errorf("load: mix %q: phase %d has no name", m.Name, i)
		}
		if names[ph.Name] {
			return fmt.Errorf("load: mix %q: duplicate phase name %q", m.Name, ph.Name)
		}
		names[ph.Name] = true
		if len(ph.Scenarios) == 0 {
			return fmt.Errorf("load: mix %q: phase %q has no scenarios", m.Name, ph.Name)
		}
		for _, s := range ph.Scenarios {
			if _, err := scenarios.Get(s); err != nil {
				return fmt.Errorf("load: mix %q: phase %q: %w", m.Name, ph.Name, err)
			}
		}
		if ph.Size < 2 {
			return fmt.Errorf("load: mix %q: phase %q: size %d too small", m.Name, ph.Name, ph.Size)
		}
		if ph.Heuristic != "" {
			if _, err := heuristics.ByName(ph.Heuristic); err != nil {
				return fmt.Errorf("load: mix %q: phase %q: %w", m.Name, ph.Name, err)
			}
		}
		switch ph.Kind {
		case KindZipf:
			if ph.Platforms < 1 || ph.Requests < ph.Platforms {
				return fmt.Errorf("load: mix %q: phase %q: zipf needs platforms >= 1 and requests >= platforms", m.Name, ph.Name)
			}
			if ph.Skew != 0 && ph.Skew <= 1 {
				return fmt.Errorf("load: mix %q: phase %q: zipf skew must be > 1", m.Name, ph.Name)
			}
		case KindLineage:
			if ph.Lineages < 1 || ph.Depth < 1 {
				return fmt.Errorf("load: mix %q: phase %q: lineage needs lineages >= 1 and depth >= 1", m.Name, ph.Name)
			}
		case KindTwins:
			if ph.Platforms < 1 {
				return fmt.Errorf("load: mix %q: phase %q: twins needs platforms >= 1", m.Name, ph.Name)
			}
		case KindFlood:
			if ph.Platforms < 1 || ph.Burst < 2 {
				return fmt.Errorf("load: mix %q: phase %q: flood needs platforms >= 1 and burst >= 2", m.Name, ph.Name)
			}
		default:
			return fmt.Errorf("load: mix %q: phase %q: unknown kind %q", m.Name, ph.Name, ph.Kind)
		}
	}
	return nil
}

// builtinMixes are the registered workloads. The smoke mix is the
// deterministic CI/golden workload: small enough to replay in seconds,
// while still touching all four traffic patterns.
var builtinMixes = map[string]Mix{
	"smoke": {
		Name:        "smoke",
		Description: "tiny deterministic all-pattern workload (CI smoke and golden tests)",
		Phases: []PhaseSpec{
			{Name: "zipf-popular", Kind: KindZipf, Scenarios: []string{scenarios.NameStar, scenarios.NameChain}, Size: 8, Platforms: 3, Requests: 12, Skew: 1.4, Heuristic: "lp-grow-tree"},
			{Name: "churn-lineages", Kind: KindLineage, Scenarios: []string{scenarios.NameLastMile}, Size: 10, Lineages: 2, Depth: 2},
			{Name: "twin-storm", Kind: KindTwins, Scenarios: []string{scenarios.NameRing}, Size: 8, Platforms: 2, Dupes: 1},
			{Name: "cold-flood", Kind: KindFlood, Scenarios: []string{scenarios.NameGrid}, Size: 9, Platforms: 2, Burst: 4},
		},
	},
	"steady-zipf": {
		Name:        "steady-zipf",
		Description: "cache-economics workload: zipfian popularity over a mixed scenario pool",
		Phases: []PhaseSpec{
			{Name: "warmup", Kind: KindZipf, Scenarios: []string{scenarios.NameClusters, scenarios.NameTiers}, Size: 16, Platforms: 8, Requests: 32, Skew: 1.2, Heuristic: "lp-grow-tree"},
			{Name: "skewed", Kind: KindZipf, Scenarios: []string{scenarios.NameClusters, scenarios.NameTiers, scenarios.NameLastMile}, Size: 16, Platforms: 12, Requests: 200, Skew: 1.5, Heuristic: "lp-grow-tree"},
		},
	},
	"churn-lineages": {
		Name:        "churn-lineages",
		Description: "warm-session workload: many interleaved base+delta churn lineages",
		Phases: []PhaseSpec{
			{Name: "lineages", Kind: KindLineage, Scenarios: []string{scenarios.NameClusters, scenarios.NameLastMile, scenarios.NameTiers}, Size: 16, Lineages: 6, Depth: 8},
		},
	},
	"twin-storm": {
		Name:        "twin-storm",
		Description: "twin-guard workload: renumbered duplicates hammering shared fingerprints",
		Phases: []PhaseSpec{
			{Name: "twins", Kind: KindTwins, Scenarios: []string{scenarios.NameRandomSparse, scenarios.NameRing}, Size: 12, Platforms: 6, Dupes: 4},
		},
	},
	"cold-flood": {
		Name:        "cold-flood",
		Description: "singleflight workload: concurrent identical bursts on uncached platforms",
		Phases: []PhaseSpec{
			{Name: "floods", Kind: KindFlood, Scenarios: []string{scenarios.NameGrid, scenarios.NameStar}, Size: 12, Platforms: 8, Burst: 8},
		},
	},
	"mixed": {
		Name:        "mixed",
		Description: "production-shaped blend: zipf steady state, churn lineages, twins, floods",
		Phases: []PhaseSpec{
			{Name: "zipf-popular", Kind: KindZipf, Scenarios: []string{scenarios.NameClusters, scenarios.NameTiers, scenarios.NameLastMile}, Size: 16, Platforms: 10, Requests: 80, Skew: 1.3, Heuristic: "lp-grow-tree"},
			{Name: "churn-lineages", Kind: KindLineage, Scenarios: []string{scenarios.NameClusters, scenarios.NameLastMile}, Size: 16, Lineages: 4, Depth: 5},
			{Name: "twin-storm", Kind: KindTwins, Scenarios: []string{scenarios.NameRandomSparse}, Size: 12, Platforms: 4, Dupes: 2},
			{Name: "cold-flood", Kind: KindFlood, Scenarios: []string{scenarios.NameGrid}, Size: 12, Platforms: 4, Burst: 6},
			{Name: "zipf-rehit", Kind: KindZipf, Scenarios: []string{scenarios.NameClusters, scenarios.NameTiers, scenarios.NameLastMile}, Size: 16, Platforms: 10, Requests: 60, Skew: 1.3, Heuristic: "lp-grow-tree"},
		},
	},
}

// MixNames returns the built-in mix names in sorted order.
func MixNames() []string {
	names := make([]string, 0, len(builtinMixes))
	for name := range builtinMixes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// MixByName returns the named built-in mix; unknown names are rejected with
// the list of known ones.
func MixByName(name string) (Mix, error) {
	m, ok := builtinMixes[name]
	if !ok {
		return Mix{}, fmt.Errorf("load: unknown mix %q (known mixes: %v)", name, MixNames())
	}
	return m, nil
}

// Mixes returns every built-in mix in MixNames order.
func Mixes() []Mix {
	names := MixNames()
	out := make([]Mix, 0, len(names))
	for _, name := range names {
		out = append(out, builtinMixes[name])
	}
	return out
}
