package load

import (
	"encoding/json"
	"testing"
)

// runOverload compiles and replays the overload mix against a fresh gated
// in-process engine shaped by the schedule (lanes + bounded queue).
func runOverload(t *testing.T, workers int) (*Schedule, *Report) {
	t.Helper()
	mix, err := MixByName("overload")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Compile(mix, 42)
	if err != nil {
		t.Fatal(err)
	}
	engine, gate := NewInProcessEngine(sched, 0)
	rep, err := Run(engine, sched, Options{Workers: workers, Gate: gate})
	if err != nil {
		t.Fatal(err)
	}
	return sched, rep
}

// TestOverloadContract replays the overload mix and asserts the contract the
// storm is built to prove:
//
//   - every request past lanes+queue capacity is visibly shed (exact count,
//     no silent drops, no errors),
//   - the hit stream through the saturated engine keeps the flat one-tick
//     hit latency (p99 == 1 on the virtual clock),
//   - every degraded answer is refined in the background,
//   - the cache ends exactly at the workload's distinct plans (shed attempts
//     leave nothing behind).
func TestOverloadContract(t *testing.T) {
	sched, rep := runOverload(t, 4)
	spec := sched.Mix.Phases[0]

	if sched.Overload == nil || sched.Overload.Lanes != spec.Lanes || sched.Overload.Queue != spec.Queue {
		t.Fatalf("schedule overload shape %+v, want lanes %d queue %d", sched.Overload, spec.Lanes, spec.Queue)
	}
	wantShed := spec.Cold - spec.Lanes - spec.Queue
	if sched.Expect.Shed != wantShed {
		t.Fatalf("Expect.Shed = %d, want %d", sched.Expect.Shed, wantShed)
	}

	total := rep.Total
	if total.Client.Errors != 0 {
		t.Fatalf("replay had %d errors: %v", total.Client.Errors, total.Client.ErrorSamples)
	}
	if total.Client.Shed != wantShed {
		t.Errorf("client sheds = %d, want %d", total.Client.Shed, wantShed)
	}
	if total.Engine.Shed != int64(wantShed) {
		t.Errorf("engine sheds = %d, want %d", total.Engine.Shed, wantShed)
	}
	// Every accepted request was answered: requests = hits + solved misses +
	// shed, with nothing unaccounted.
	answered := total.Client.Cached + total.Client.Degraded + total.Client.Shed +
		int(total.Engine.Solves) - int(total.Engine.Refines)
	if answered != total.Client.Requests {
		t.Errorf("answered %d of %d requests (cached %d, degraded %d, shed %d, foreground solves %d)",
			answered, total.Client.Requests, total.Client.Cached, total.Client.Degraded,
			total.Client.Shed, total.Engine.Solves-total.Engine.Refines)
	}

	storm := rep.Phases[0]
	if storm.HitWork == nil {
		t.Fatal("storm phase has no hit-stream histogram")
	}
	if storm.HitWork.Count != int64(spec.Hits) {
		t.Errorf("hit stream count = %d, want %d", storm.HitWork.Count, spec.Hits)
	}
	if storm.HitWork.P99 != 1 || storm.HitWork.Max != 1 {
		t.Errorf("hit latency through saturation p99=%d max=%d, want both 1 (flat hit cost)",
			storm.HitWork.P99, storm.HitWork.Max)
	}

	if total.Client.Degraded != spec.Degraded {
		t.Errorf("degraded answers = %d, want %d", total.Client.Degraded, spec.Degraded)
	}
	if total.Engine.Refines != int64(spec.Degraded) || total.Engine.RefineFailures != 0 {
		t.Errorf("refines = %d (failures %d), want %d refined / 0 failures",
			total.Engine.Refines, total.Engine.RefineFailures, spec.Degraded)
	}

	if rep.CacheEntries != sched.Distinct {
		t.Errorf("cache entries = %d, want %d distinct (shed attempts must leave nothing)",
			rep.CacheEntries, sched.Distinct)
	}
	if rep.Evictions != 0 {
		t.Errorf("evictions = %d, want 0", rep.Evictions)
	}
}

// TestOverloadDeterministicAcrossWorkers pins the byte-identical replay
// guarantee for the overload mix: lanes, queue slots and sheds land on the
// same step indexes for any worker count, so the canonical report never
// moves.
func TestOverloadDeterministicAcrossWorkers(t *testing.T) {
	_, base := runOverload(t, 1)
	want, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 16} {
		_, rep := runOverload(t, workers)
		got, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Fatalf("report with %d workers differs from single-worker report", workers)
		}
	}
	// And across repeat runs with the same worker count.
	_, again := runOverload(t, 4)
	got, err := json.Marshal(again)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatal("repeat run produced a different report")
	}
}
