package load

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand"

	"repro/internal/dynamic"
	"repro/internal/platform"
	"repro/internal/scenarios"
	"repro/internal/service"
	"repro/internal/topology"
)

// Step is one schedule item: a single plan request, or — when Burst > 1 —
// Burst identical concurrent requests (a cold-miss flood burst).
type Step struct {
	Req service.PlanRequest
	// Burst is the number of identical concurrent requests (1 = single).
	Burst int
	// expectMiss/expectTwin record the compile-time cache outcome of the
	// step's first request (duplicates of it within a burst are hits).
	expectMiss bool
	expectTwin bool
	// expectWarm records that the step is a delta request expected to take
	// the base entry's warm session.
	expectWarm bool
	// expectShed marks a storm step past lanes+queue capacity: the engine
	// must reject it with the overload error and cache nothing.
	expectShed bool
	// expectDegraded marks an opt-in degraded request: answered immediately
	// with the heuristic tree and refined in the background.
	expectDegraded bool
}

// requests returns the number of requests the step issues.
func (s Step) requests() int {
	if s.Burst > 1 {
		return s.Burst
	}
	return 1
}

// Wave is a set of steps that may execute concurrently in any order: every
// step's cache outcome is independent of the others (duplicates of a key
// only ever appear in waves after the key's first-touch wave). Burst waves
// hold exactly one step and run exclusively, so a Gate can attribute every
// in-flight lookup to the burst.
type Wave struct {
	Steps []Step
	Burst bool
	// Storm marks the overload storm wave: Steps are cold misses issued
	// strictly in index order (each launched only after the previous one's
	// admission decision), so lanes, queue slots and sheds land on fixed
	// indexes; Hits is the zipfian hit stream issued while every admitted
	// solve is still held at the gate.
	Storm bool
	Hits  []Step
	// DrainAfter makes the replay wait for the target's background
	// refinements (degraded-mode solves) before the next wave.
	DrainAfter bool
}

// Expected are the schedule-derived per-phase cache outcomes: what the
// engine counters must report after replaying the phase, for any worker
// count. Collapsed (and the matching engine singleflight count) is exact
// only when the replay has a Gate; without one it is the upper bound the
// burst structure aims for.
type Expected struct {
	Requests  int `json:"requests"`
	Misses    int `json:"misses"`
	Hits      int `json:"hits"`
	Twins     int `json:"twins"`
	Collapsed int `json:"collapsed"`
	Warm      int `json:"warm"`
	Deltas    int `json:"deltas"`
	// Shed counts storm requests the engine must reject for overload. The
	// engine books a shed attempt as a miss too (the claimed entry is
	// removed again), so Misses includes Shed and the number of distinct
	// plans a phase creates is Misses - Shed.
	Shed int `json:"shed,omitempty"`
	// Degraded counts opt-in degraded requests (each also a miss, answered
	// heuristically and refined in the background).
	Degraded int `json:"degraded,omitempty"`
}

// add accumulates o into e.
func (e *Expected) add(o Expected) {
	e.Requests += o.Requests
	e.Misses += o.Misses
	e.Hits += o.Hits
	e.Twins += o.Twins
	e.Collapsed += o.Collapsed
	e.Warm += o.Warm
	e.Deltas += o.Deltas
	e.Shed += o.Shed
	e.Degraded += o.Degraded
}

// CompiledPhase is one phase of a schedule: its spec, its waves, and the
// expected cache outcomes.
type CompiledPhase struct {
	Spec   PhaseSpec
	Waves  []Wave
	Expect Expected
}

// Schedule is a fully materialized workload: every request body is
// precomputed (lineage base fingerprints included, by replaying the deltas
// locally), so replaying a schedule issues exactly the same requests no
// matter the worker count, pacing or target.
type Schedule struct {
	Mix    Mix
	Seed   int64
	Phases []CompiledPhase
	// Requests is the total request count; Distinct the number of distinct
	// plans the workload creates (the minimum cache capacity for an
	// eviction-free — and therefore fully deterministic — replay; shed
	// requests create no lasting entry and are not counted).
	Requests int
	Distinct int
	Expect   Expected
	// Overload, when non-nil, is the engine shape the mix's overload phases
	// demand: NewInProcessEngine builds the target with exactly Lanes solve
	// lanes and a Queue-deep admission queue.
	Overload *OverloadShape
}

// OverloadShape is the engine concurrency shape an overload phase pins.
type OverloadShape struct {
	Lanes int `json:"lanes"`
	Queue int `json:"queue"`
}

// planKey mirrors the service cache identity: the routing parameters plus
// the exact canonical encoding, so the compiler predicts hits, misses and
// twin-misses exactly.
type planKey struct {
	fp        platform.Fingerprint
	source    int
	heuristic string
	trees     int
	exact     [32]byte
}

type routeKey struct {
	fp        platform.Fingerprint
	source    int
	heuristic string
	trees     int
}

// compiler tracks the simulated cache contents across the whole schedule.
type compiler struct {
	seed int64
	seen map[planKey]bool
	byFP map[routeKey]int
}

func (c *compiler) classify(p *platform.Platform, req service.PlanRequest) (miss, twin bool) {
	fp := p.Fingerprint()
	key := planKey{fp: fp, source: req.Source, heuristic: req.Heuristic, trees: req.Trees, exact: sha256.Sum256(p.CanonicalEncoding())}
	rk := routeKey{fp: fp, source: req.Source, heuristic: req.Heuristic, trees: req.Trees}
	if c.seen[key] {
		return false, false
	}
	twin = c.byFP[rk] > 0
	c.seen[key] = true
	c.byFP[rk]++
	return true, twin
}

// generate builds the i-th platform of a phase kind: families round-robin
// over the spec's scenario list, and the seed is derived from the mix seed,
// the kind label, the family, the size and the index — so two phases
// sharing kind, scenarios and size see identical platforms (and re-hit each
// other's cache entries), while phases of different kinds never collide.
func (c *compiler) generate(spec PhaseSpec, label string, i int) (*platform.Platform, error) {
	family := spec.Scenarios[i%len(spec.Scenarios)]
	sc, err := scenarios.Get(family)
	if err != nil {
		return nil, err
	}
	seed := topology.DeriveSeed(c.seed, "load/"+label+"/"+family, spec.Size, i)
	p, err := sc.Generate(spec.Size, seed)
	if err != nil {
		return nil, fmt.Errorf("load: phase %q platform %d (%s): %w", spec.Name, i, family, err)
	}
	return p, nil
}

// exactHex returns the hex exact-encoding key of a platform (the BaseExact
// every lineage request pins, so twins can never make a base ambiguous).
func exactHex(p *platform.Platform) string {
	sum := sha256.Sum256(p.CanonicalEncoding())
	return hex.EncodeToString(sum[:])
}

// Compile materializes a mix into a deterministic schedule.
func Compile(mix Mix, seed int64) (*Schedule, error) {
	if err := mix.validate(); err != nil {
		return nil, err
	}
	c := &compiler{seed: seed, seen: make(map[planKey]bool), byFP: make(map[routeKey]int)}
	sched := &Schedule{Mix: mix, Seed: seed}
	for _, spec := range mix.Phases {
		var (
			ph  CompiledPhase
			err error
		)
		switch spec.Kind {
		case KindZipf:
			ph, err = c.compileZipf(spec)
		case KindLineage:
			ph, err = c.compileLineage(spec)
		case KindTwins:
			ph, err = c.compileTwins(spec)
		case KindFlood:
			ph, err = c.compileFlood(spec)
		case KindOverload:
			ph, err = c.compileOverload(spec)
			if err == nil {
				sched.Overload = &OverloadShape{Lanes: spec.Lanes, Queue: spec.Queue}
			}
		default:
			err = fmt.Errorf("load: unknown phase kind %q", spec.Kind)
		}
		if err != nil {
			return nil, err
		}
		sched.Phases = append(sched.Phases, ph)
		sched.Requests += ph.Expect.Requests
		sched.Distinct += ph.Expect.Misses - ph.Expect.Shed
		sched.Expect.add(ph.Expect)
	}
	return sched, nil
}

// finish derives the phase's expected counters from its classified steps.
func finish(spec PhaseSpec, waves []Wave) CompiledPhase {
	ph := CompiledPhase{Spec: spec, Waves: waves}
	for _, w := range waves {
		for _, s := range w.Steps {
			n := s.requests()
			ph.Expect.Requests += n
			if s.Req.Base != "" {
				ph.Expect.Deltas += n
			}
			switch {
			case s.expectShed:
				// The engine books the rejected attempt as a miss (the
				// claimed entry is removed again), never as a hit.
				ph.Expect.Misses++
				ph.Expect.Shed++
			case s.expectMiss:
				ph.Expect.Misses++
				ph.Expect.Hits += n - 1
				ph.Expect.Collapsed += n - 1
				if s.expectTwin {
					ph.Expect.Twins++
				}
				if s.expectWarm {
					ph.Expect.Warm++
				}
				if s.expectDegraded {
					ph.Expect.Degraded++
				}
			default:
				ph.Expect.Hits += n
			}
		}
		for _, s := range w.Hits {
			ph.Expect.Requests++
			if s.expectMiss {
				ph.Expect.Misses++
			} else {
				ph.Expect.Hits++
			}
		}
	}
	return ph
}

// compileZipf draws the request stream and splits it into a first-touch
// wave (every distinct platform drawn, in draw order) and a duplicate wave.
func (c *compiler) compileZipf(spec PhaseSpec) (CompiledPhase, error) {
	plats := make([]*platform.Platform, spec.Platforms)
	for i := range plats {
		p, err := c.generate(spec, "zipf", i)
		if err != nil {
			return CompiledPhase{}, err
		}
		plats[i] = p
	}
	skew := spec.Skew
	if skew == 0 {
		skew = 1.3
	}
	rng := topology.NewRNG(topology.DeriveSeed(c.seed, "load/zipf/draw/"+spec.Name))
	draw := make([]int, spec.Requests)
	if spec.Platforms > 1 {
		z := rand.NewZipf(rng, skew, 1, uint64(spec.Platforms-1))
		if z == nil {
			return CompiledPhase{}, fmt.Errorf("load: phase %q: invalid zipf skew %v", spec.Name, skew)
		}
		for i := range draw {
			draw[i] = int(z.Uint64())
		}
	}
	var first, rest []Step
	for _, idx := range draw {
		p := plats[idx]
		req := service.PlanRequest{Platform: p, Source: 0, Heuristic: spec.Heuristic, Trees: spec.Trees}
		miss, twin := c.classify(p, req)
		step := Step{Req: req, Burst: 1, expectMiss: miss, expectTwin: twin}
		if miss {
			first = append(first, step)
		} else {
			rest = append(rest, step)
		}
	}
	var waves []Wave
	if len(first) > 0 {
		waves = append(waves, Wave{Steps: first})
	}
	if len(rest) > 0 {
		waves = append(waves, Wave{Steps: rest})
	}
	return finish(spec, waves), nil
}

// compileLineage builds Lineages independent delta chains. Wave 0 plans
// every base; wave d plans every lineage's d-th mutation, addressed as
// base-fingerprint + one delta, with the base state's exact key pinned.
// Chains are linear and bases distinct, so each delta request finds its
// base entry's warm session in place for any worker count.
func (c *compiler) compileLineage(spec PhaseSpec) (CompiledPhase, error) {
	waves := make([]Wave, spec.Depth+1)
	for j := 0; j < spec.Lineages; j++ {
		base, err := c.generate(spec, "lineage", j)
		if err != nil {
			return CompiledPhase{}, err
		}
		family := spec.Scenarios[j%len(spec.Scenarios)]
		profName := spec.Profile
		if profName == "" {
			sc, _ := scenarios.Get(family)
			profName = sc.EffectiveChurnProfile()
		}
		prof, err := dynamic.ProfileByName(profName)
		if err != nil {
			return CompiledPhase{}, fmt.Errorf("load: phase %q: %w", spec.Name, err)
		}
		trace, err := dynamic.GenerateTrace(base, 0, prof, spec.Depth, topology.DeriveSeed(c.seed, "load/lineage/trace/"+spec.Name, j))
		if err != nil {
			return CompiledPhase{}, fmt.Errorf("load: phase %q lineage %d: %w", spec.Name, j, err)
		}

		req := service.PlanRequest{Platform: base, Source: 0, Heuristic: spec.Heuristic, Trees: spec.Trees}
		miss, twin := c.classify(base, req)
		waves[0].Steps = append(waves[0].Steps, Step{Req: req, Burst: 1, expectMiss: miss, expectTwin: twin})

		local := base.Clone()
		for d, ev := range trace.Events {
			prevFP := local.Fingerprint().String()
			prevExact := exactHex(local)
			if _, err := local.ApplyDelta(ev.Delta); err != nil {
				return CompiledPhase{}, fmt.Errorf("load: phase %q lineage %d delta %d: %w", spec.Name, j, d, err)
			}
			dreq := service.PlanRequest{
				Base:      prevFP,
				BaseExact: prevExact,
				Deltas:    []platform.Delta{ev.Delta},
				Source:    0,
				Heuristic: spec.Heuristic,
				Trees:     spec.Trees,
			}
			miss, twin := c.classify(local, dreq)
			// The warm session rides along only while the chain keeps
			// missing; a mutation that lands back on a cached state is a
			// plain hit.
			waves[d+1].Steps = append(waves[d+1].Steps, Step{Req: dreq, Burst: 1, expectMiss: miss, expectTwin: twin, expectWarm: miss})
		}
	}
	return finish(spec, waves), nil
}

// compileTwins plans base platforms, then renumbered twins (same
// fingerprint, different exact encoding — verified at compile time), then
// repeat requests of both.
func (c *compiler) compileTwins(spec PhaseSpec) (CompiledPhase, error) {
	var bases, twins []Step
	var dupes []Step
	for i := 0; i < spec.Platforms; i++ {
		base, err := c.generate(spec, "twins", i)
		if err != nil {
			return CompiledPhase{}, err
		}
		twin, err := renumberedTwin(base, topology.DeriveSeed(c.seed, "load/twins/perm/"+spec.Name, i))
		if err != nil {
			return CompiledPhase{}, fmt.Errorf("load: phase %q platform %d: %w", spec.Name, i, err)
		}

		breq := service.PlanRequest{Platform: base, Source: 0, Heuristic: spec.Heuristic, Trees: spec.Trees}
		miss, tw := c.classify(base, breq)
		bases = append(bases, Step{Req: breq, Burst: 1, expectMiss: miss, expectTwin: tw})

		treq := service.PlanRequest{Platform: twin, Source: 0, Heuristic: spec.Heuristic, Trees: spec.Trees}
		miss, tw = c.classify(twin, treq)
		twins = append(twins, Step{Req: treq, Burst: 1, expectMiss: miss, expectTwin: tw})

		for d := 0; d < spec.Dupes; d++ {
			for _, p := range []*platform.Platform{base, twin} {
				dreq := service.PlanRequest{Platform: p, Source: 0, Heuristic: spec.Heuristic, Trees: spec.Trees}
				miss, tw := c.classify(p, dreq)
				dupes = append(dupes, Step{Req: dreq, Burst: 1, expectMiss: miss, expectTwin: tw})
			}
		}
	}
	waves := []Wave{{Steps: bases}, {Steps: twins}}
	if len(dupes) > 0 {
		waves = append(waves, Wave{Steps: dupes})
	}
	return finish(spec, waves), nil
}

// compileFlood emits one exclusive burst wave per platform: Burst identical
// requests that the replay engine issues concurrently (and, with a Gate,
// collapses deterministically into one solve).
func (c *compiler) compileFlood(spec PhaseSpec) (CompiledPhase, error) {
	var waves []Wave
	for i := 0; i < spec.Platforms; i++ {
		p, err := c.generate(spec, "flood", i)
		if err != nil {
			return CompiledPhase{}, err
		}
		req := service.PlanRequest{Platform: p, Source: 0, Heuristic: spec.Heuristic, Trees: spec.Trees}
		miss, twin := c.classify(p, req)
		waves = append(waves, Wave{
			Steps: []Step{{Req: req, Burst: spec.Burst, expectMiss: miss, expectTwin: twin}},
			Burst: true,
		})
	}
	return finish(spec, waves), nil
}

// compileOverload builds the overload-contract phase: a prewarm wave over
// Hot platforms, then the storm wave — Cold fresh cold misses issued in
// index order against an engine shaped to Lanes+Queue capacity (the first
// Lanes take solve lanes, the next Queue the admission queue, the tail is
// shed) with a zipfian stream of Hits hits over the hot set riding through
// the saturated engine — and, when Degraded > 0, a degraded wave of fresh
// opt-in heuristic plans followed by a refined re-request wave.
func (c *compiler) compileOverload(spec PhaseSpec) (CompiledPhase, error) {
	// Prewarm: the hot set every storm hit lands on.
	hot := make([]*platform.Platform, spec.Hot)
	var prewarm []Step
	for i := range hot {
		p, err := c.generate(spec, "overload-hot", i)
		if err != nil {
			return CompiledPhase{}, err
		}
		hot[i] = p
		req := service.PlanRequest{Platform: p, Source: 0, Heuristic: spec.Heuristic, Trees: spec.Trees}
		miss, twin := c.classify(p, req)
		prewarm = append(prewarm, Step{Req: req, Burst: 1, expectMiss: miss, expectTwin: twin})
	}

	// Storm: Cold fresh platforms. Indexes past lanes+queue are shed by the
	// engine and deliberately NOT classified as seen — a shed request's
	// claimed entry is removed again, so the platform stays uncached.
	storm := Wave{Storm: true}
	admitted := spec.Lanes + spec.Queue
	for i := 0; i < spec.Cold; i++ {
		p, err := c.generate(spec, "overload-cold", i)
		if err != nil {
			return CompiledPhase{}, err
		}
		req := service.PlanRequest{Platform: p, Source: 0, Heuristic: spec.Heuristic, Trees: spec.Trees}
		if i < admitted {
			miss, twin := c.classify(p, req)
			storm.Steps = append(storm.Steps, Step{Req: req, Burst: 1, expectMiss: miss, expectTwin: twin})
		} else {
			storm.Steps = append(storm.Steps, Step{Req: req, Burst: 1, expectShed: true})
		}
	}

	// Hit stream: zipfian draws over the hot set, issued while the storm
	// holds every solve lane — the proof that saturation leaves hit latency
	// untouched.
	skew := spec.Skew
	if skew == 0 {
		skew = 1.3
	}
	rng := topology.NewRNG(topology.DeriveSeed(c.seed, "load/overload/draw/"+spec.Name))
	var z *rand.Zipf
	if spec.Hot > 1 {
		z = rand.NewZipf(rng, skew, 1, uint64(spec.Hot-1))
		if z == nil {
			return CompiledPhase{}, fmt.Errorf("load: phase %q: invalid zipf skew %v", spec.Name, skew)
		}
	}
	for i := 0; i < spec.Hits; i++ {
		idx := 0
		if z != nil {
			idx = int(z.Uint64())
		}
		p := hot[idx]
		req := service.PlanRequest{Platform: p, Source: 0, Heuristic: spec.Heuristic, Trees: spec.Trees}
		miss, twin := c.classify(p, req)
		storm.Hits = append(storm.Hits, Step{Req: req, Burst: 1, expectMiss: miss, expectTwin: twin})
	}
	waves := []Wave{{Steps: prewarm}, storm}

	// Degraded wave: fresh platforms answered heuristically right away and
	// refined in the background; after the drain, the re-request wave must
	// see the refined (non-degraded) plans as plain hits.
	if spec.Degraded > 0 {
		var dsteps, rsteps []Step
		for i := 0; i < spec.Degraded; i++ {
			p, err := c.generate(spec, "overload-degraded", i)
			if err != nil {
				return CompiledPhase{}, err
			}
			dreq := service.PlanRequest{Platform: p, Source: 0, Heuristic: spec.Heuristic, Trees: spec.Trees, Degraded: true}
			miss, twin := c.classify(p, dreq)
			dsteps = append(dsteps, Step{Req: dreq, Burst: 1, expectMiss: miss, expectTwin: twin, expectDegraded: true})
			rreq := service.PlanRequest{Platform: p, Source: 0, Heuristic: spec.Heuristic, Trees: spec.Trees}
			rmiss, rtwin := c.classify(p, rreq)
			rsteps = append(rsteps, Step{Req: rreq, Burst: 1, expectMiss: rmiss, expectTwin: rtwin})
		}
		waves = append(waves, Wave{Steps: dsteps, DrainAfter: true}, Wave{Steps: rsteps})
	}
	return finish(spec, waves), nil
}

// renumberedTwin rebuilds the platform under a random node renumbering and
// link insertion order drawn from the seed. The twin shares the platform's
// permutation-invariant fingerprint but must differ in exact canonical
// encoding; the permutation is redrawn until it does (an identity draw is
// astronomically unlikely but would silently turn a twin-miss into a hit).
func renumberedTwin(p *platform.Platform, seed int64) (*platform.Platform, error) {
	orig := p.CanonicalEncoding()
	origFP := p.Fingerprint()
	for attempt := 0; attempt < 8; attempt++ {
		rng := topology.NewRNG(topology.DeriveSeed(seed, "attempt", attempt))
		perm := rng.Perm(p.NumNodes())
		order := rng.Perm(p.NumLinks())
		q := platform.New(p.NumNodes())
		q.SetSliceSize(p.SliceSize())
		for u := 0; u < p.NumNodes(); u++ {
			q.SetNode(perm[u], p.Node(u))
		}
		links := p.Links()
		for _, id := range order {
			l := links[id]
			q.MustAddLink(perm[l.From], perm[l.To], l.Cost)
		}
		if q.Fingerprint() != origFP {
			return nil, fmt.Errorf("load: renumbered twin changed fingerprint (fingerprint invariance broken)")
		}
		// The twin is requested with source 0 like its base (that is what
		// makes it share the routing key), so node 0 of the *new* numbering
		// must be a valid broadcast source.
		if !bytes.Equal(q.CanonicalEncoding(), orig) && q.ValidateLive(0) == nil {
			return q, nil
		}
	}
	return nil, fmt.Errorf("load: could not draw a non-identity renumbering")
}
