package load

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/obs"
)

// replayTraced compiles and replays a mix against a fresh gated in-process
// engine and returns the report plus the full deterministic trace dump
// (marshaled snapshot, sorted by content-derived ID).
func replayTraced(t *testing.T, mixName string, seed int64, workers int) (*Schedule, *Report, []*obs.Trace, []byte) {
	t.Helper()
	mix, err := MixByName(mixName)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Compile(mix, seed)
	if err != nil {
		t.Fatal(err)
	}
	engine, gate := NewInProcessEngine(sched, 0)
	rep, err := Run(engine, sched, Options{Workers: workers, Gate: gate})
	if err != nil {
		t.Fatal(err)
	}
	traces := engine.Tracer().Snapshot("", 0)
	dump, err := json.MarshalIndent(traces, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return sched, rep, traces, dump
}

// TestReplayTraceDeterminismAcrossWorkers is the tracing acceptance
// criterion: an in-process replay on the virtual clock produces a
// byte-identical trace dump — IDs, outcomes, and every span event sequence —
// for worker counts 1, 4 and 16, for both the all-pattern smoke mix and the
// overload mix (sheds, degraded answers, background refines).
func TestReplayTraceDeterminismAcrossWorkers(t *testing.T) {
	for _, tc := range []struct {
		mix  string
		seed int64
	}{
		{mix: "smoke", seed: 7},
		{mix: "overload", seed: 42},
	} {
		t.Run(tc.mix, func(t *testing.T) {
			var ref []byte
			for _, workers := range []int{1, 4, 16} {
				_, _, _, dump := replayTraced(t, tc.mix, tc.seed, workers)
				if ref == nil {
					ref = dump
					continue
				}
				if !bytes.Equal(dump, ref) {
					t.Fatalf("workers=%d: trace dump differs from workers=1 dump:\n%s\n--- want ---\n%s", workers, dump, ref)
				}
			}
		})
	}
}

// TestReplayTraceContents checks what the deterministic replay traces carry:
// outcome counts matching the compile-time expectations, no wall-clock
// fields, and the report's solveStages/traces section wired from the engine.
func TestReplayTraceContents(t *testing.T) {
	sched, rep, traces, _ := replayTraced(t, "overload", 42, 4)

	wantTraces := sched.Requests + sched.Expect.Degraded // one refine trace per degraded answer
	if len(traces) != wantTraces || rep.Traces != wantTraces {
		t.Fatalf("trace count = %d (report %d), want %d (requests %d + refines %d)",
			len(traces), rep.Traces, wantTraces, sched.Requests, sched.Expect.Degraded)
	}

	byOutcome := map[string]int{}
	seenIDs := map[string]bool{}
	for _, tr := range traces {
		byOutcome[tr.Outcome]++
		if tr.ID == "" || seenIDs[tr.ID] {
			t.Fatalf("trace ID %q empty or duplicated", tr.ID)
		}
		seenIDs[tr.ID] = true
		if tr.StartNs != 0 || tr.DurNs != 0 {
			t.Fatalf("deterministic trace %s carries wall-clock fields: %+v", tr.ID, tr)
		}
		if len(tr.Events) == 0 {
			t.Fatalf("trace %s has no events", tr.ID)
		}
		for _, ev := range tr.Events {
			if ev.TNs != 0 || ev.DurNs != 0 {
				t.Fatalf("deterministic trace %s event stamped with wall clock: %+v", tr.ID, ev)
			}
			if ev.Kind == obs.SpanQueueWait {
				t.Fatalf("deterministic trace %s carries a queue-wait span (wall-only): %+v", tr.ID, tr.Events)
			}
		}
	}
	exp := sched.Expect
	want := map[string]int{
		obs.OutcomeShed:      exp.Shed,
		obs.OutcomeDegraded:  exp.Degraded,
		obs.OutcomeRefine:    exp.Degraded,
		obs.OutcomeMiss:      exp.Misses - exp.Shed - exp.Degraded,
		obs.OutcomeCollapsed: exp.Collapsed,
		obs.OutcomeHit:       exp.Hits - exp.Collapsed,
	}
	for outcome, n := range want {
		if byOutcome[outcome] != n {
			t.Errorf("outcome %q: %d traces, want %d (all: %v)", outcome, byOutcome[outcome], n, byOutcome)
		}
	}

	if rep.SolveStages == nil {
		t.Fatal("in-process report missing solveStages")
	}
	if got, wantSolves := rep.SolveStages.Pivots.Count, rep.Total.Engine.Solves; got != wantSolves {
		t.Errorf("solveStages pivots count = %d, want one sample per solve (%d)", got, wantSolves)
	}
	if rep.SolveStages.Pivots.P50 <= 0 {
		t.Errorf("solveStages pivots p50 = %d, want > 0", rep.SolveStages.Pivots.P50)
	}

	// A shed trace must show the admission rejection, never a solve.
	for _, tr := range traces {
		if tr.Outcome != obs.OutcomeShed {
			continue
		}
		last := tr.Events[len(tr.Events)-1]
		if last.Kind != obs.SpanAdmit || last.Admitted != "shed" {
			t.Fatalf("shed trace %s does not end with a shed admit span: %+v", tr.ID, tr.Events)
		}
	}
}

// TestHTTPReportSkipsInProcessSections pins that an HTTP-mode report carries
// neither solveStages nor a trace count (the hooks are in-process only).
func TestHTTPReportSkipsInProcessSections(t *testing.T) {
	var p HTTPPlanner
	if _, ok := interface{}(p).(interface{ Tracer() *obs.Tracer }); ok {
		t.Fatal("HTTPPlanner unexpectedly exposes a tracer")
	}
}
