package load

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/service"
	"repro/internal/stats"
)

// ClientCounters are the request outcomes as seen by the load generator
// (response flags), summed per phase.
type ClientCounters struct {
	Requests int `json:"requests"`
	// Cached counts responses served from the plan cache; Collapsed the
	// subset that waited on an in-flight identical solve; Warm the solves
	// that reused a warm session via the base+delta path.
	Cached    int `json:"cached"`
	Collapsed int `json:"collapsed"`
	Warm      int `json:"warm"`
	// Shed counts requests the engine rejected under the overload contract
	// (structured 429 / ErrOverloaded): deliberate rejections, not errors.
	// Degraded counts opt-in degraded answers (immediate heuristic plan,
	// background refinement).
	Shed     int `json:"shed,omitempty"`
	Degraded int `json:"degraded,omitempty"`
	// Packed counts responses carrying a k-tree packing (phases with a
	// Trees cap); PackedTrees sums their packed tree counts.
	Packed      int `json:"packed,omitempty"`
	PackedTrees int `json:"packedTrees,omitempty"`
	Errors      int `json:"errors"`
	// ErrorSamples holds the first few error strings (diagnostics; empty in
	// a healthy replay).
	ErrorSamples []string `json:"errorSamples,omitempty"`
}

func (c *ClientCounters) add(o ClientCounters) {
	c.Requests += o.Requests
	c.Cached += o.Cached
	c.Collapsed += o.Collapsed
	c.Warm += o.Warm
	c.Shed += o.Shed
	c.Degraded += o.Degraded
	c.Packed += o.Packed
	c.PackedTrees += o.PackedTrees
	c.Errors += o.Errors
	for _, s := range o.ErrorSamples {
		if len(c.ErrorSamples) < 3 {
			c.ErrorSamples = append(c.ErrorSamples, s)
		}
	}
}

// EngineDelta is the growth of the engine's counters across one phase
// (server-side truth, from service.Stats snapshots around the phase).
type EngineDelta struct {
	Requests        int64 `json:"requests"`
	Hits            int64 `json:"hits"`
	Misses          int64 `json:"misses"`
	TwinMisses      int64 `json:"twinMisses"`
	Singleflight    int64 `json:"singleflight"`
	Evictions       int64 `json:"evictions"`
	Solves          int64 `json:"solves"`
	DeltaPlans      int64 `json:"deltaPlans"`
	WarmResolves    int64 `json:"warmResolves"`
	SessionRebuilds int64 `json:"sessionRebuilds"`
	LPPivots        int64 `json:"lpPivots"`
	LPWarmPivots    int64 `json:"lpWarmPivots"`
	LPColdPivots    int64 `json:"lpColdPivots"`
	// Overload-contract counters (omitted when zero so pre-contract reports
	// stay byte-identical). Queued is deliberately absent: whether a cold
	// miss takes a free lane or waits in the queue depends on scheduling,
	// so it can never be part of the canonical report.
	Shed              int64 `json:"shed,omitempty"`
	Canceled          int64 `json:"canceled,omitempty"`
	Degraded          int64 `json:"degraded,omitempty"`
	Refines           int64 `json:"refines,omitempty"`
	RefineFailures    int64 `json:"refineFailures,omitempty"`
	EvictionsDeferred int64 `json:"evictionsDeferred,omitempty"`
}

func (d *EngineDelta) add(o EngineDelta) {
	d.Requests += o.Requests
	d.Hits += o.Hits
	d.Misses += o.Misses
	d.TwinMisses += o.TwinMisses
	d.Singleflight += o.Singleflight
	d.Evictions += o.Evictions
	d.Solves += o.Solves
	d.DeltaPlans += o.DeltaPlans
	d.WarmResolves += o.WarmResolves
	d.SessionRebuilds += o.SessionRebuilds
	d.LPPivots += o.LPPivots
	d.LPWarmPivots += o.LPWarmPivots
	d.LPColdPivots += o.LPColdPivots
	d.Shed += o.Shed
	d.Canceled += o.Canceled
	d.Degraded += o.Degraded
	d.Refines += o.Refines
	d.RefineFailures += o.RefineFailures
	d.EvictionsDeferred += o.EvictionsDeferred
}

// subStats computes after-before across the engine counter snapshot.
func subStats(after, before service.Stats) EngineDelta {
	return EngineDelta{
		Requests:        after.Requests - before.Requests,
		Hits:            after.Hits - before.Hits,
		Misses:          after.Misses - before.Misses,
		TwinMisses:      after.TwinMisses - before.TwinMisses,
		Singleflight:    after.Singleflight - before.Singleflight,
		Evictions:       after.Evictions - before.Evictions,
		Solves:          after.Solves - before.Solves,
		DeltaPlans:      after.DeltaPlans - before.DeltaPlans,
		WarmResolves:    after.WarmResolves - before.WarmResolves,
		SessionRebuilds: after.SessionRebuilds - before.SessionRebuilds,
		LPPivots:        after.LPPivots - before.LPPivots,
		LPWarmPivots:    after.LPWarmPivots - before.LPWarmPivots,
		LPColdPivots:    after.LPColdPivots - before.LPColdPivots,

		Shed:              after.Shed - before.Shed,
		Canceled:          after.Canceled - before.Canceled,
		Degraded:          after.Degraded - before.Degraded,
		Refines:           after.Refines - before.Refines,
		RefineFailures:    after.RefineFailures - before.RefineFailures,
		EvictionsDeferred: after.EvictionsDeferred - before.EvictionsDeferred,
	}
}

// PhaseReport is the canonical (deterministic) outcome of one mix phase.
// Latency lives on the virtual clock: one tick for a cache hit, 1+LP-pivots
// for a solve, so the histogram exposes the cache's latency economics —
// hit/miss asymmetry, warm-vs-cold solve cost — without wall-clock noise.
type PhaseReport struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Requests is the phase's request count, Distinct the number of new
	// distinct plans it creates (== expected cache misses).
	Requests int `json:"requests"`
	Distinct int `json:"distinct"`
	// Client aggregates response flags; Engine is the engine counter delta.
	Client ClientCounters `json:"client"`
	Engine EngineDelta    `json:"engine"`
	// Work is the per-request virtual-clock latency distribution;
	// VirtualTime its total (the phase's serial virtual duration), and
	// RequestsPerKTick the phase throughput on that clock.
	Work             stats.HistogramSummary `json:"work"`
	VirtualTime      int64                  `json:"virtualTime"`
	RequestsPerKTick float64                `json:"requestsPerKTick"`
	// HitWork, present only for overload phases, is the virtual-latency
	// distribution of just the hit stream issued through the saturated
	// engine: the overload contract requires it to stay at the flat
	// one-tick hit cost (P99 == 1) while the storm holds every lane.
	HitWork *stats.HistogramSummary `json:"hitWork,omitempty"`
}

// PhaseTiming is the wall-clock view of a phase (reported only on demand;
// never byte-stable).
type PhaseTiming struct {
	Name           string                 `json:"name"`
	DurationNs     int64                  `json:"durationNs"`
	RequestsPerSec float64                `json:"requestsPerSec"`
	LatencyNs      stats.HistogramSummary `json:"latencyNs"`
}

// Timings is the optional wall-clock section of a report.
type Timings struct {
	Workers        int                    `json:"workers"`
	Rate           float64                `json:"rate,omitempty"`
	Phases         []PhaseTiming          `json:"phases"`
	DurationNs     int64                  `json:"durationNs"`
	RequestsPerSec float64                `json:"requestsPerSec"`
	LatencyNs      stats.HistogramSummary `json:"latencyNs"`
}

// SolveStages is the deterministic solve-stage breakdown of an in-process
// replay: the distribution of cutting-plane rounds, cuts and simplex pivots
// per solve, lifted from the engine's stage histograms. The wall-clock stage
// histograms (solve/queue-wait/refine latency) are deliberately absent —
// they would break the report's byte-stability.
type SolveStages struct {
	Pivots stats.HistogramSummary `json:"pivots"`
	Rounds stats.HistogramSummary `json:"rounds"`
	Cuts   stats.HistogramSummary `json:"cuts"`
}

// Report is the outcome of one replay: everything outside Timings is
// deterministic for a fixed (mix, seed) against a cold target — across
// runs, worker counts and pacing. cmd/bcast-load writes it as
// BENCH_load.json.
type Report struct {
	Mix         string        `json:"mix"`
	Description string        `json:"description"`
	Seed        int64         `json:"seed"`
	Clock       string        `json:"clock"`
	Mode        string        `json:"mode"`
	Phases      []PhaseReport `json:"phases"`
	Total       PhaseReport   `json:"total"`
	// CacheEntries and Evictions describe the target cache after the
	// replay: a canonical run must end with Evictions == 0 (size the cache
	// to Schedule.Distinct or larger).
	CacheEntries int   `json:"cacheEntries"`
	Evictions    int64 `json:"evictions"`
	// SolveStages is the per-solve stage breakdown and Traces the number of
	// request traces the target buffered; both are present for in-process
	// targets only and are part of the canonical (deterministic) report.
	SolveStages *SolveStages `json:"solveStages,omitempty"`
	Traces      int          `json:"traces,omitempty"`
	Timings     *Timings     `json:"timings,omitempty"`
}

// Summary renders the human-readable report: one row per phase plus a
// total row over the canonical counters, and — when present — a wall-clock
// footer. Deterministic whenever the report's canonical part is.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "load mix %q seed %d — %s, %s clock\n", r.Mix, r.Seed, r.Mode, r.Clock)
	fmt.Fprintf(&b, "%s\n", r.Description)
	tw := tabwriter.NewWriter(&b, 2, 0, 2, ' ', 0)
	fmt.Fprintln(tw, "phase\tkind\treqs\tdistinct\thit%\tsglfl\twarm\ttwins\tp50\tp99\treq/ktick")
	rows := append(append([]PhaseReport(nil), r.Phases...), r.Total)
	for _, pr := range rows {
		hitPct := 0.0
		if pr.Engine.Requests > 0 {
			hitPct = 100 * float64(pr.Engine.Hits) / float64(pr.Engine.Requests)
		}
		fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%.1f\t%d\t%d\t%d\t%d\t%d\t%.2f\n",
			pr.Name, pr.Kind, pr.Requests, pr.Distinct, hitPct,
			pr.Engine.Singleflight, pr.Client.Warm, pr.Engine.TwinMisses,
			pr.Work.P50, pr.Work.P99, pr.RequestsPerKTick)
	}
	tw.Flush()
	t := r.Total
	fmt.Fprintf(&b, "totals: %d requests, %d solves, %d hits (%d collapsed), %d twin misses, %d warm resolves / %d rebuilds\n",
		t.Requests, t.Engine.Solves, t.Engine.Hits, t.Engine.Singleflight,
		t.Engine.TwinMisses, t.Engine.WarmResolves, t.Engine.SessionRebuilds)
	fmt.Fprintf(&b, "lp pivots: %d total (%d warm / %d cold); virtual time %d ticks; cache %d entries, %d evictions\n",
		t.Engine.LPPivots, t.Engine.LPWarmPivots, t.Engine.LPColdPivots,
		t.VirtualTime, r.CacheEntries, r.Evictions)
	if t.Client.Shed > 0 || t.Client.Degraded > 0 {
		fmt.Fprintf(&b, "overload: %d shed, %d degraded answers (%d refined, %d refine failures)\n",
			t.Client.Shed, t.Client.Degraded, t.Engine.Refines, t.Engine.RefineFailures)
	}
	if t.Client.Packed > 0 {
		fmt.Fprintf(&b, "packing: %d responses carried a k-tree packing (%d trees total)\n",
			t.Client.Packed, t.Client.PackedTrees)
	}
	if r.SolveStages != nil {
		s := r.SolveStages
		fmt.Fprintf(&b, "solve stages: pivots p50 %d p99 %d, rounds p50 %d p99 %d, cuts p50 %d p99 %d; %d traces buffered\n",
			s.Pivots.P50, s.Pivots.P99, s.Rounds.P50, s.Rounds.P99, s.Cuts.P50, s.Cuts.P99, r.Traces)
	}
	if t.Client.Errors > 0 {
		fmt.Fprintf(&b, "ERRORS: %d requests failed; first: %v\n", t.Client.Errors, t.Client.ErrorSamples)
	}
	if r.Timings != nil {
		fmt.Fprintf(&b, "wall clock (non-deterministic): %.2fs, %.1f req/s, p50 %s p99 %s (workers %d)\n",
			float64(r.Timings.DurationNs)/1e9, r.Timings.RequestsPerSec,
			fmtNs(r.Timings.LatencyNs.P50), fmtNs(r.Timings.LatencyNs.P99), r.Timings.Workers)
	}
	return b.String()
}

// fmtNs renders nanoseconds with an adaptive unit.
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
