package load

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/service"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// runSmoke compiles and replays the smoke mix against a fresh gated
// in-process engine.
func runSmoke(t *testing.T, workers int) (*Schedule, *Report) {
	t.Helper()
	mix, err := MixByName("smoke")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Compile(mix, 7)
	if err != nil {
		t.Fatal(err)
	}
	engine, gate := NewInProcessEngine(sched, 0)
	rep, err := Run(engine, sched, Options{Workers: workers, Gate: gate})
	if err != nil {
		t.Fatal(err)
	}
	return sched, rep
}

// TestCompileSmokeShape pins the structural invariants of the compiled
// smoke schedule: every phase's expected counters add up, and the totals
// match the mix arithmetic.
func TestCompileSmokeShape(t *testing.T) {
	sched, _ := runSmoke(t, 4)
	if len(sched.Phases) != 4 {
		t.Fatalf("smoke mix compiled to %d phases, want 4", len(sched.Phases))
	}
	// zipf: 12 requests; lineage: 2 lineages x (1 base + 2 deltas) = 6;
	// twins: 2 x (base + twin + 2 dupes) = 8; flood: 2 bursts x 4 = 8.
	wantReqs := []int{12, 6, 8, 8}
	for i, ph := range sched.Phases {
		if ph.Expect.Requests != wantReqs[i] {
			t.Errorf("phase %q: %d requests, want %d", ph.Spec.Name, ph.Expect.Requests, wantReqs[i])
		}
		if ph.Expect.Hits+ph.Expect.Misses != ph.Expect.Requests {
			t.Errorf("phase %q: hits %d + misses %d != requests %d", ph.Spec.Name, ph.Expect.Hits, ph.Expect.Misses, ph.Expect.Requests)
		}
	}
	lineage := sched.Phases[1].Expect
	if lineage.Deltas != 4 || lineage.Warm == 0 {
		t.Errorf("lineage expectations = %+v, want 4 delta requests and some warm resolves", lineage)
	}
	twins := sched.Phases[2].Expect
	if twins.Twins != 2 {
		t.Errorf("twins expectations = %+v, want 2 twin misses", twins)
	}
	flood := sched.Phases[3].Expect
	if flood.Collapsed != 6 || flood.Misses != 2 {
		t.Errorf("flood expectations = %+v, want 2 misses and 6 collapsed", flood)
	}
	if sched.Requests != 34 {
		t.Errorf("total requests %d, want 34", sched.Requests)
	}
	if sched.Distinct != sched.Expect.Misses {
		t.Errorf("distinct %d != expected misses %d", sched.Distinct, sched.Expect.Misses)
	}
}

// TestRunMatchesSchedule replays the smoke mix and checks the engine
// counter deltas against the compile-time expectations, phase by phase:
// the schedule's predicted hits, misses, twin-misses, singleflight
// collapses, delta plans and warm resolves are exact.
func TestRunMatchesSchedule(t *testing.T) {
	sched, rep := runSmoke(t, 8)
	for i, pr := range rep.Phases {
		exp := sched.Phases[i].Expect
		if pr.Client.Errors != 0 {
			t.Fatalf("phase %q: %d request errors: %v", pr.Name, pr.Client.Errors, pr.Client.ErrorSamples)
		}
		if pr.Engine.Requests != int64(exp.Requests) ||
			pr.Engine.Hits != int64(exp.Hits) ||
			pr.Engine.Misses != int64(exp.Misses) ||
			pr.Engine.TwinMisses != int64(exp.Twins) ||
			pr.Engine.Singleflight != int64(exp.Collapsed) ||
			pr.Engine.DeltaPlans != int64(exp.Deltas) {
			t.Errorf("phase %q: engine delta %+v does not match expectations %+v", pr.Name, pr.Engine, exp)
		}
		if pr.Client.Warm != exp.Warm {
			t.Errorf("phase %q: %d warm resolves, want %d", pr.Name, pr.Client.Warm, exp.Warm)
		}
		if pr.Client.Collapsed != exp.Collapsed {
			t.Errorf("phase %q: client collapsed %d, want %d", pr.Name, pr.Client.Collapsed, exp.Collapsed)
		}
		if pr.Work.Count != int64(exp.Requests) {
			t.Errorf("phase %q: work histogram count %d, want %d", pr.Name, pr.Work.Count, exp.Requests)
		}
	}
	if rep.Evictions != 0 {
		t.Errorf("replay evicted %d entries; canonical runs must be eviction-free", rep.Evictions)
	}
	if rep.CacheEntries != sched.Distinct {
		t.Errorf("cache holds %d entries, want %d distinct plans", rep.CacheEntries, sched.Distinct)
	}
	if rep.Total.Engine.Solves != int64(sched.Distinct) {
		t.Errorf("%d solves, want exactly one per distinct plan (%d)", rep.Total.Engine.Solves, sched.Distinct)
	}
}

// TestRunDeterministicAcrossWorkers is the acceptance property of the
// subsystem: the canonical report marshals byte-identically for any worker
// count (and across repeated runs).
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	var ref []byte
	for _, workers := range []int{1, 4, 9} {
		_, rep := runSmoke(t, workers)
		got, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = got
			continue
		}
		if !bytes.Equal(got, ref) {
			t.Errorf("workers=%d: canonical report differs from workers=1 report:\n%s\n---\n%s", workers, got, ref)
		}
	}
}

// TestRunHTTPMode replays the smoke mix over HTTP against an httptest
// server. Burst singleflight splits are best-effort without the in-process
// gate, so only the scheduling-independent counters are asserted.
func TestRunHTTPMode(t *testing.T) {
	mix, err := MixByName("smoke")
	if err != nil {
		t.Fatal(err)
	}
	sched, err := Compile(mix, 7)
	if err != nil {
		t.Fatal(err)
	}
	engine := service.New(service.Config{CacheSize: sched.Distinct + 16})
	srv := httptest.NewServer(service.NewHandler(engine))
	defer srv.Close()
	rep, err := Run(NewHTTPPlanner(srv.URL), sched, Options{Workers: 4, WallClock: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "http" {
		t.Errorf("mode %q, want http", rep.Mode)
	}
	if rep.Total.Client.Errors != 0 {
		t.Fatalf("%d errors over HTTP: %v", rep.Total.Client.Errors, rep.Total.Client.ErrorSamples)
	}
	if rep.Total.Engine.Requests != int64(sched.Requests) {
		t.Errorf("engine saw %d requests, want %d", rep.Total.Engine.Requests, sched.Requests)
	}
	if rep.Total.Engine.Misses != int64(sched.Distinct) {
		t.Errorf("engine misses %d, want %d (exactly one per distinct plan)", rep.Total.Engine.Misses, sched.Distinct)
	}
	if rep.Total.Engine.TwinMisses != int64(sched.Expect.Twins) {
		t.Errorf("twin misses %d, want %d", rep.Total.Engine.TwinMisses, sched.Expect.Twins)
	}
	if rep.Timings == nil || rep.Timings.LatencyNs.Count != int64(sched.Requests) {
		t.Errorf("wall-clock timings missing or incomplete: %+v", rep.Timings)
	}
}

// TestSummaryGolden pins the human-readable summary of the smoke replay.
func TestSummaryGolden(t *testing.T) {
	_, rep := runSmoke(t, 4)
	got := []byte(rep.Summary())
	path := filepath.Join("testdata", "golden", "summary_smoke.txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("summary differs from %s.\nIf the change is intentional, regenerate with: go test ./internal/load -run Golden -update\ngot:\n%s\nwant:\n%s", path, got, want)
	}
}

// TestMixValidation rejects malformed mixes and unknown names loudly.
func TestMixValidation(t *testing.T) {
	if _, err := MixByName("no-such-mix"); err == nil {
		t.Error("unknown mix name must be rejected")
	}
	bad := []Mix{
		{},
		{Name: "x"},
		{Name: "x", Phases: []PhaseSpec{{Name: "p", Kind: KindZipf, Scenarios: []string{"star"}, Size: 8}}},                                       // zipf without counts
		{Name: "x", Phases: []PhaseSpec{{Name: "p", Kind: KindZipf, Scenarios: []string{"star"}, Size: 8, Platforms: 2, Requests: 4, Skew: 0.5}}}, // bad skew
		{Name: "x", Phases: []PhaseSpec{{Name: "p", Kind: KindFlood, Scenarios: []string{"star"}, Size: 8, Platforms: 1, Burst: 1}}},              // burst < 2
		{Name: "x", Phases: []PhaseSpec{{Name: "p", Kind: "nope", Scenarios: []string{"star"}, Size: 8}}},                                         // unknown kind
		{Name: "x", Phases: []PhaseSpec{{Name: "p", Kind: KindZipf, Scenarios: []string{"no-such-family"}, Size: 8, Platforms: 1, Requests: 1}}},
		{Name: "x", Phases: []PhaseSpec{{Name: "p", Kind: KindZipf, Scenarios: []string{"star"}, Size: 8, Platforms: 1, Requests: 1, Heuristic: "lp-growtree"}}}, // typo'd heuristic

		{Name: "x", Phases: []PhaseSpec{{Name: "p", Kind: KindTwins, Scenarios: []string{"star"}, Size: 8, Platforms: 1}, {Name: "p", Kind: KindTwins, Scenarios: []string{"star"}, Size: 8, Platforms: 1}}}, // dup phase name
	}
	for i, m := range bad {
		if _, err := Compile(m, 1); err == nil {
			t.Errorf("bad mix %d compiled without error", i)
		}
	}
	for _, m := range Mixes() {
		if err := m.validate(); err != nil {
			t.Errorf("built-in mix %q invalid: %v", m.Name, err)
		}
	}
}
