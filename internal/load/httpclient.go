package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/service"
)

// HTTPPlanner replays against a running bcast-serve over its JSON API. The
// canonical counters stay deterministic when the server is fresh and
// receives no other traffic; flood-burst singleflight splits are
// best-effort only (the in-process Gate cannot reach across HTTP), so
// byte-identical reports are guaranteed only for the in-process mode.
type HTTPPlanner struct {
	// BaseURL is the server root, e.g. "http://localhost:8080".
	BaseURL string
	// Client is the HTTP client (default: 5-minute timeout, matching the
	// server's worst-case solve window).
	Client *http.Client
}

// NewHTTPPlanner returns a planner for the server at baseURL.
func NewHTTPPlanner(baseURL string) *HTTPPlanner {
	return &HTTPPlanner{
		BaseURL: strings.TrimRight(baseURL, "/"),
		Client:  &http.Client{Timeout: 5 * time.Minute},
	}
}

// envelope mirrors the /v1/plan response body.
type envelope struct {
	Cached    bool            `json:"cached"`
	Collapsed bool            `json:"collapsed"`
	Warm      bool            `json:"warm"`
	Degraded  bool            `json:"degraded"`
	Plan      json.RawMessage `json:"plan"`
}

type httpError struct {
	Error string `json:"error"`
}

// Plan implements Planner.
func (hp *HTTPPlanner) Plan(req service.PlanRequest) (*service.PlanResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("load: marshal plan request: %w", err)
	}
	resp, err := hp.Client.Post(hp.BaseURL+"/v1/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("load: POST /v1/plan: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var he httpError
		msg := ""
		if json.NewDecoder(resp.Body).Decode(&he) == nil {
			msg = he.Error
		}
		// Map the overload-contract statuses back onto the engine's typed
		// errors so replays treat HTTP and in-process targets uniformly
		// (observe counts sheds by errors.Is(err, service.ErrOverloaded)).
		switch resp.StatusCode {
		case http.StatusTooManyRequests:
			retry := time.Second
			if s := resp.Header.Get("Retry-After"); s != "" {
				if n, err := strconv.Atoi(s); err == nil && n > 0 {
					retry = time.Duration(n) * time.Second
				}
			}
			return nil, &service.OverloadedError{RetryAfter: retry}
		case http.StatusGatewayTimeout:
			if msg == "" {
				msg = "gateway timeout"
			}
			return nil, fmt.Errorf("load: /v1/plan: %s: %w", msg, service.ErrCanceled)
		}
		if msg != "" {
			return nil, fmt.Errorf("load: /v1/plan: %s (status %d)", msg, resp.StatusCode)
		}
		return nil, fmt.Errorf("load: /v1/plan: status %d", resp.StatusCode)
	}
	var env envelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return nil, fmt.Errorf("load: decode /v1/plan response: %w", err)
	}
	plan := new(service.Plan)
	if err := json.Unmarshal(env.Plan, plan); err != nil {
		return nil, fmt.Errorf("load: decode plan: %w", err)
	}
	return &service.PlanResult{
		Plan:         plan,
		JSON:         append([]byte(nil), env.Plan...),
		Cached:       env.Cached,
		Collapsed:    env.Collapsed,
		WarmResolved: env.Warm,
		Degraded:     env.Degraded,
	}, nil
}

// Stats implements Planner.
func (hp *HTTPPlanner) Stats() (service.Stats, error) {
	resp, err := hp.Client.Get(hp.BaseURL + "/v1/stats")
	if err != nil {
		return service.Stats{}, fmt.Errorf("load: GET /v1/stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return service.Stats{}, fmt.Errorf("load: /v1/stats: status %d", resp.StatusCode)
	}
	var st service.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return service.Stats{}, fmt.Errorf("load: decode /v1/stats: %w", err)
	}
	return st, nil
}

// Mode implements Planner.
func (hp *HTTPPlanner) Mode() string { return "http" }
