package load

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/parallel"
	"repro/internal/service"
	"repro/internal/stats"
)

// Planner is the replay target: the in-process engine (EnginePlanner) or a
// remote bcast-serve (HTTPPlanner).
type Planner interface {
	// Plan answers one plan request.
	Plan(req service.PlanRequest) (*service.PlanResult, error)
	// Stats snapshots the engine counters (used for per-phase deltas).
	Stats() (service.Stats, error)
	// Mode names the target in reports: "in-process" or "http".
	Mode() string
}

// EnginePlanner replays against an in-process service.Engine.
type EnginePlanner struct {
	Engine *service.Engine
}

// Plan implements Planner.
func (ep EnginePlanner) Plan(req service.PlanRequest) (*service.PlanResult, error) {
	return ep.Engine.Plan(req)
}

// Stats implements Planner.
func (ep EnginePlanner) Stats() (service.Stats, error) { return ep.Engine.Stats(), nil }

// Mode implements Planner.
func (ep EnginePlanner) Mode() string { return "in-process" }

// NewInProcessEngine returns a fresh planning engine wired for a canonical
// replay of the schedule — the burst gate installed in its instrumentation
// hooks and, unless cacheSize overrides it, a plan cache sized to hold
// every distinct plan of the workload without evicting. Pass the returned
// gate in Options.Gate. cmd/bcast-load, the broadcast façade and the tests
// all build their targets here so the determinism-critical wiring cannot
// drift apart.
func NewInProcessEngine(sched *Schedule, cacheSize int) (EnginePlanner, *Gate) {
	if cacheSize <= 0 {
		cacheSize = sched.Distinct + 16
	}
	gate := NewGate()
	engine := service.New(service.Config{CacheSize: cacheSize, Hooks: gate.Hooks()})
	return EnginePlanner{Engine: engine}, gate
}

// Gate makes flood bursts deterministic: wired into the engine's
// instrumentation hooks (service.Config.Hooks), it holds a burst's one
// solve until every member of the burst has registered its lookup, so
// exactly burst-1 requests collapse onto the solve — for any worker count
// and any scheduling. Outside burst waves the gate is disarmed and free.
type Gate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	expect int
	seen   int
}

// NewGate returns a disarmed gate.
func NewGate() *Gate {
	g := &Gate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Hooks returns the service hooks that wire the gate into an engine:
//
//	service.New(service.Config{Hooks: gate.Hooks(), ...})
func (g *Gate) Hooks() *service.Hooks {
	return &service.Hooks{OnLookup: g.onLookup, BeforeSolve: g.beforeSolve}
}

func (g *Gate) onLookup(service.LookupEvent) {
	g.mu.Lock()
	g.seen++
	g.mu.Unlock()
	g.cond.Broadcast()
}

func (g *Gate) beforeSolve() {
	g.mu.Lock()
	for g.expect > 0 && g.seen < g.expect {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

// arm prepares the gate for a burst of n requests; disarm releases it.
func (g *Gate) arm(n int) {
	g.mu.Lock()
	g.expect, g.seen = n, 0
	g.mu.Unlock()
}

func (g *Gate) disarm() {
	g.mu.Lock()
	g.expect, g.seen = 0, 0
	g.mu.Unlock()
	g.cond.Broadcast()
}

// Options tune a replay.
type Options struct {
	// Workers bounds the number of concurrently issued requests within a
	// wave (default: number of CPUs). It changes wall-clock behavior only,
	// never the canonical report. Exception: a flood burst always issues
	// its full Burst of identical requests at once regardless of Workers —
	// concurrency is the pattern under test, and holding members back
	// would deadlock a gated replay.
	Workers int
	// Rate, when positive, paces request issue to the target
	// requests-per-second (token-bucket over the whole replay). Pacing
	// changes wall-clock behavior only.
	Rate float64
	// Gate, when non-nil, must be wired into the target engine's Hooks; it
	// makes flood-burst singleflight counts exact. Leave nil for HTTP
	// targets (bursts still fly concurrently, best-effort).
	Gate *Gate
	// WallClock adds the non-deterministic timings section (wall-clock
	// latency histograms, requests/second) to the report.
	WallClock bool
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// pacer spaces request starts evenly at the target rate.
type pacer struct {
	mu       sync.Mutex
	next     time.Time
	interval time.Duration
}

func newPacer(rate float64) *pacer {
	if rate <= 0 {
		return nil
	}
	return &pacer{next: time.Now(), interval: time.Duration(float64(time.Second) / rate)}
}

// wait blocks until the caller's slot; nil pacers never block.
func (p *pacer) wait() {
	if p == nil {
		return
	}
	p.mu.Lock()
	at := p.next
	p.next = p.next.Add(p.interval)
	p.mu.Unlock()
	time.Sleep(time.Until(at))
}

// outcome is the record of one issued request.
type outcome struct {
	cost      int64 // virtual ticks: 1 for a hit, 1+LP pivots for a solve
	wallNs    int64
	cached    bool
	collapsed bool
	warm      bool
	err       string
}

// observe converts a plan result into its outcome record.
func observe(res *service.PlanResult, err error, wall time.Duration) outcome {
	out := outcome{cost: 1, wallNs: wall.Nanoseconds()}
	switch {
	case err != nil:
		out.err = err.Error()
	case res.Cached:
		out.cached = true
		out.collapsed = res.Collapsed
	default:
		out.warm = res.WarmResolved
		if res.Plan != nil {
			out.cost = 1 + int64(res.Plan.LPPivots)
		}
	}
	return out
}

// Run replays a compiled schedule against the target and returns the
// canonical report. Every field of the report outside the optional timings
// section is deterministic for a fixed (mix, seed) — independent of worker
// count, pacing, and wall-clock speed — provided the target starts cold,
// receives no concurrent foreign traffic, and its plan cache is large
// enough to hold Schedule.Distinct entries without evicting.
func Run(target Planner, sched *Schedule, opts Options) (*Report, error) {
	workers := opts.workers()
	pace := newPacer(opts.Rate)
	rep := &Report{
		Mix:         sched.Mix.Name,
		Description: sched.Mix.Description,
		Seed:        sched.Seed,
		Clock:       "virtual",
		Mode:        target.Mode(),
	}
	var timings *Timings
	if opts.WallClock {
		timings = &Timings{Workers: workers, Rate: opts.Rate}
	}
	before, err := target.Stats()
	if err != nil {
		return nil, fmt.Errorf("load: reading engine stats: %w", err)
	}
	initial := before
	runStart := time.Now()
	var totalWork, totalWall stats.Histogram
	var totalVT int64

	for pi := range sched.Phases {
		phase := &sched.Phases[pi]
		var work, wall stats.Histogram
		var client ClientCounters
		phaseStart := time.Now()

		record := func(out outcome) {
			work.Record(out.cost)
			wall.Record(out.wallNs)
			client.Requests++
			if out.cached {
				client.Cached++
			}
			if out.collapsed {
				client.Collapsed++
			}
			if out.warm {
				client.Warm++
			}
			if out.err != "" {
				client.Errors++
				if len(client.ErrorSamples) < 3 {
					client.ErrorSamples = append(client.ErrorSamples, out.err)
				}
			}
		}

		for wi := range phase.Waves {
			wave := &phase.Waves[wi]
			if wave.Burst {
				// Exclusive burst wave: one step, Burst concurrent
				// requests, gated when a Gate is wired in.
				step := wave.Steps[0]
				if opts.Gate != nil {
					opts.Gate.arm(step.Burst)
				}
				outs := make([]outcome, step.Burst)
				var wg sync.WaitGroup
				for b := 0; b < step.Burst; b++ {
					wg.Add(1)
					go func(b int) {
						defer wg.Done()
						pace.wait()
						start := time.Now()
						res, err := target.Plan(step.Req)
						outs[b] = observe(res, err, time.Since(start))
					}(b)
				}
				wg.Wait()
				if opts.Gate != nil {
					opts.Gate.disarm()
				}
				for _, out := range outs {
					record(out)
				}
				continue
			}
			outs := parallel.Map(len(wave.Steps), workers, func(i int) outcome {
				pace.wait()
				start := time.Now()
				res, err := target.Plan(wave.Steps[i].Req)
				return observe(res, err, time.Since(start))
			})
			for _, out := range outs {
				record(out)
			}
		}

		after, err := target.Stats()
		if err != nil {
			return nil, fmt.Errorf("load: reading engine stats: %w", err)
		}
		vt := work.Sum()
		pr := PhaseReport{
			Name:        phase.Spec.Name,
			Kind:        string(phase.Spec.Kind),
			Requests:    phase.Expect.Requests,
			Distinct:    phase.Expect.Misses,
			Client:      client,
			Engine:      subStats(after, before),
			Work:        work.Summary(),
			VirtualTime: vt,
		}
		if vt > 0 {
			pr.RequestsPerKTick = float64(pr.Requests) * 1000 / float64(vt)
		}
		rep.Phases = append(rep.Phases, pr)
		if timings != nil {
			d := time.Since(phaseStart)
			pt := PhaseTiming{Name: phase.Spec.Name, DurationNs: d.Nanoseconds(), LatencyNs: wall.Summary()}
			if d > 0 {
				pt.RequestsPerSec = float64(pr.Requests) / d.Seconds()
			}
			timings.Phases = append(timings.Phases, pt)
		}
		totalWork.Merge(&work)
		totalWall.Merge(&wall)
		totalVT += vt
		rep.Total.Client.add(client)
		before = after
	}

	final, err := target.Stats()
	if err != nil {
		return nil, fmt.Errorf("load: reading engine stats: %w", err)
	}
	rep.Total.Name = "total"
	rep.Total.Kind = "all"
	rep.Total.Requests = sched.Requests
	rep.Total.Distinct = sched.Distinct
	for _, pr := range rep.Phases {
		rep.Total.Engine.add(pr.Engine)
	}
	rep.Total.Work = totalWork.Summary()
	rep.Total.VirtualTime = totalVT
	if totalVT > 0 {
		rep.Total.RequestsPerKTick = float64(sched.Requests) * 1000 / float64(totalVT)
	}
	rep.CacheEntries = final.CacheEntries
	rep.Evictions = final.Evictions - initial.Evictions
	if timings != nil {
		d := time.Since(runStart)
		timings.DurationNs = d.Nanoseconds()
		timings.LatencyNs = totalWall.Summary()
		if d > 0 {
			timings.RequestsPerSec = float64(sched.Requests) / d.Seconds()
		}
		rep.Timings = timings
	}
	return rep, nil
}
