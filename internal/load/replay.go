// The replay engine measures real wall-clock latency by design: the
// canonical (byte-identical) report is built from the virtual clock in
// report.go, and every wall-time figure lands in the separate, explicitly
// non-deterministic wall report. Hence the file-wide detrand exception.
//
//lint:file-ignore detrand wall-clock measurement engine; canonical reports use the virtual clock
package load

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/service"
	"repro/internal/stats"
)

// Planner is the replay target: the in-process engine (EnginePlanner) or a
// remote bcast-serve (HTTPPlanner).
type Planner interface {
	// Plan answers one plan request.
	Plan(req service.PlanRequest) (*service.PlanResult, error)
	// Stats snapshots the engine counters (used for per-phase deltas).
	Stats() (service.Stats, error)
	// Mode names the target in reports: "in-process" or "http".
	Mode() string
}

// EnginePlanner replays against an in-process service.Engine.
type EnginePlanner struct {
	Engine *service.Engine
}

// Plan implements Planner.
func (ep EnginePlanner) Plan(req service.PlanRequest) (*service.PlanResult, error) {
	return ep.Engine.Plan(req)
}

// Stats implements Planner.
func (ep EnginePlanner) Stats() (service.Stats, error) { return ep.Engine.Stats(), nil }

// Mode implements Planner.
func (ep EnginePlanner) Mode() string { return "in-process" }

// StageStats exposes the engine's solve-stage histograms; Run folds the
// deterministic trio (pivots, rounds, cuts per solve) into the canonical
// report's solveStages section.
func (ep EnginePlanner) StageStats() service.StageStats { return ep.Engine.StageStats() }

// Tracer exposes the engine's tracer (the deterministic one
// NewInProcessEngine installs); Run reports the buffered trace count.
func (ep EnginePlanner) Tracer() *obs.Tracer { return ep.Engine.Tracer() }

// Drain waits for the engine's background refinements; Run calls it (via an
// optional interface, so HTTP targets are unaffected) after a DrainAfter
// wave.
func (ep EnginePlanner) Drain() { ep.Engine.Drain() }

// NewInProcessEngine returns a fresh planning engine wired for a canonical
// replay of the schedule — the burst gate installed in its instrumentation
// hooks and, unless cacheSize overrides it, a plan cache sized to hold
// every distinct plan of the workload without evicting. Pass the returned
// gate in Options.Gate. cmd/bcast-load, the broadcast façade and the tests
// all build their targets here so the determinism-critical wiring cannot
// drift apart.
func NewInProcessEngine(sched *Schedule, cacheSize int) (EnginePlanner, *Gate) {
	if cacheSize <= 0 {
		// Shed storm requests transiently claim a cache slot before the
		// overload error removes it again, so the eviction-free floor is
		// Distinct plus the worst-case shed overlap, not Distinct alone.
		cacheSize = sched.Distinct + sched.Expect.Shed + 16
	}
	gate := NewGate()
	// Replays trace every request with a deterministic tracer: content-derived
	// trace IDs, no wall-clock fields, snapshots sorted by ID — so a trace
	// dump of the replay is byte-identical for any worker count, exactly like
	// the canonical report. The ring is sized to hold every trace the
	// schedule can produce (one per request plus one refine trace per
	// degraded answer) without evicting; eviction order is insertion order,
	// which scheduling could perturb.
	tracer := obs.NewTracer(obs.Options{Capacity: sched.Requests + sched.Expect.Degraded + 16})
	cfg := service.Config{CacheSize: cacheSize, Hooks: gate.Hooks(), Tracer: tracer}
	if sched.Overload != nil {
		cfg.Workers = sched.Overload.Lanes
		cfg.QueueDepth = sched.Overload.Queue
	}
	engine := service.New(cfg)
	return EnginePlanner{Engine: engine}, gate
}

// Gate makes flood bursts and overload storms deterministic: wired into the
// engine's instrumentation hooks (service.Config.Hooks), it holds a burst's
// one solve until every member of the burst has registered its lookup, so
// exactly burst-1 requests collapse onto the solve — for any worker count
// and any scheduling. During a storm it additionally holds every admitted
// solve at BeforeSolve (so lanes stay occupied while the storm tail is shed
// and the hit stream is measured) and forwards the engine's admission
// decisions, letting the replay launch storm requests strictly one admission
// at a time. Outside those waves the gate is disarmed and free.
type Gate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	expect int
	seen   int
	hold   bool
	admit  chan service.AdmitKind
}

// NewGate returns a disarmed gate.
func NewGate() *Gate {
	g := &Gate{}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Hooks returns the service hooks that wire the gate into an engine:
//
//	service.New(service.Config{Hooks: gate.Hooks(), ...})
func (g *Gate) Hooks() *service.Hooks {
	return &service.Hooks{OnLookup: g.onLookup, BeforeSolve: g.beforeSolve, OnAdmit: g.onAdmit}
}

func (g *Gate) onLookup(service.LookupEvent) {
	g.mu.Lock()
	g.seen++
	g.mu.Unlock()
	g.cond.Broadcast()
}

func (g *Gate) beforeSolve() {
	g.mu.Lock()
	for (g.expect > 0 && g.seen < g.expect) || g.hold {
		g.cond.Wait()
	}
	g.mu.Unlock()
}

func (g *Gate) onAdmit(ev service.AdmitEvent) {
	g.mu.Lock()
	ch := g.admit
	g.mu.Unlock()
	if ch != nil {
		ch <- ev.Kind
	}
}

// arm prepares the gate for a burst of n requests; disarm releases it.
func (g *Gate) arm(n int) {
	g.mu.Lock()
	g.expect, g.seen = n, 0
	g.mu.Unlock()
}

func (g *Gate) disarm() {
	g.mu.Lock()
	g.expect, g.seen = 0, 0
	g.mu.Unlock()
	g.cond.Broadcast()
}

// holdSolves parks every solve at BeforeSolve until releaseSolves; the
// storm's admitted cold misses keep their lanes occupied while the tail is
// shed and the hit stream runs.
func (g *Gate) holdSolves() {
	g.mu.Lock()
	g.hold = true
	g.mu.Unlock()
}

func (g *Gate) releaseSolves() {
	g.mu.Lock()
	g.hold = false
	g.mu.Unlock()
	g.cond.Broadcast()
}

// armAdmit starts forwarding admission decisions into a buffered channel of
// the given capacity (the storm size, so the hook never blocks); disarmAdmit
// stops forwarding.
func (g *Gate) armAdmit(capacity int) {
	g.mu.Lock()
	g.admit = make(chan service.AdmitKind, capacity)
	g.mu.Unlock()
}

func (g *Gate) disarmAdmit() {
	g.mu.Lock()
	g.admit = nil
	g.mu.Unlock()
}

// awaitAdmitOr blocks until the engine reports the next admission decision
// or the request finishes outright (a request failing before admission never
// admits — without the done guard the storm would hang on it).
func (g *Gate) awaitAdmitOr(done <-chan struct{}) {
	g.mu.Lock()
	ch := g.admit
	g.mu.Unlock()
	if ch == nil {
		<-done
		return
	}
	select {
	case <-ch:
	case <-done:
	}
}

// Options tune a replay.
type Options struct {
	// Workers bounds the number of concurrently issued requests within a
	// wave (default: number of CPUs). It changes wall-clock behavior only,
	// never the canonical report. Exception: a flood burst always issues
	// its full Burst of identical requests at once regardless of Workers —
	// concurrency is the pattern under test, and holding members back
	// would deadlock a gated replay.
	Workers int
	// Rate, when positive, paces request issue to the target
	// requests-per-second (token-bucket over the whole replay). Pacing
	// changes wall-clock behavior only.
	Rate float64
	// Gate, when non-nil, must be wired into the target engine's Hooks; it
	// makes flood-burst singleflight counts exact. Leave nil for HTTP
	// targets (bursts still fly concurrently, best-effort).
	Gate *Gate
	// WallClock adds the non-deterministic timings section (wall-clock
	// latency histograms, requests/second) to the report.
	WallClock bool
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// pacer spaces request starts evenly at the target rate.
type pacer struct {
	mu       sync.Mutex
	next     time.Time
	interval time.Duration
}

func newPacer(rate float64) *pacer {
	if rate <= 0 {
		return nil
	}
	return &pacer{next: time.Now(), interval: time.Duration(float64(time.Second) / rate)}
}

// wait blocks until the caller's slot; nil pacers never block.
func (p *pacer) wait() {
	if p == nil {
		return
	}
	p.mu.Lock()
	at := p.next
	p.next = p.next.Add(p.interval)
	p.mu.Unlock()
	time.Sleep(time.Until(at))
}

// outcome is the record of one issued request.
type outcome struct {
	cost        int64 // virtual ticks: 1 for a hit, 1+LP pivots for a solve
	wallNs      int64
	cached      bool
	collapsed   bool
	warm        bool
	shed        bool
	degraded    bool
	packed      bool
	packedTrees int
	err         string
}

// observe converts a plan result into its outcome record. A shed request is
// part of the overload contract — a deliberate, structured rejection — so it
// is counted on its own and never as an error; its virtual cost is one tick
// (the engine does no solving for it).
func observe(res *service.PlanResult, err error, wall time.Duration) outcome {
	out := outcome{cost: 1, wallNs: wall.Nanoseconds()}
	switch {
	case err != nil && errors.Is(err, service.ErrOverloaded):
		out.shed = true
	case err != nil:
		out.err = err.Error()
	case res.Cached:
		out.cached = true
		out.collapsed = res.Collapsed
	case res.Degraded:
		out.degraded = true
	default:
		out.warm = res.WarmResolved
		if res.Plan != nil {
			out.cost = 1 + int64(res.Plan.LPPivots)
		}
	}
	if err == nil && res != nil && res.Plan != nil && res.Plan.PackedTrees > 0 {
		out.packed = true
		out.packedTrees = res.Plan.PackedTrees
	}
	return out
}

// Run replays a compiled schedule against the target and returns the
// canonical report. Every field of the report outside the optional timings
// section is deterministic for a fixed (mix, seed) — independent of worker
// count, pacing, and wall-clock speed — provided the target starts cold,
// receives no concurrent foreign traffic, and its plan cache is large
// enough to hold Schedule.Distinct entries without evicting.
func Run(target Planner, sched *Schedule, opts Options) (*Report, error) {
	workers := opts.workers()
	if sched.Overload != nil {
		// The target engine is shaped to Lanes+Queue cold-miss capacity for
		// the storm; capping the replay's own concurrency at that capacity
		// keeps the non-storm waves (prewarm, other phases of the mix) from
		// accidentally shedding. Wall-clock only — the canonical report never
		// depends on the worker count.
		if cap := sched.Overload.Lanes + sched.Overload.Queue; workers > cap {
			workers = cap
		}
	}
	pace := newPacer(opts.Rate)
	rep := &Report{
		Mix:         sched.Mix.Name,
		Description: sched.Mix.Description,
		Seed:        sched.Seed,
		Clock:       "virtual",
		Mode:        target.Mode(),
	}
	var timings *Timings
	if opts.WallClock {
		timings = &Timings{Workers: workers, Rate: opts.Rate}
	}
	before, err := target.Stats()
	if err != nil {
		return nil, fmt.Errorf("load: reading engine stats: %w", err)
	}
	initial := before
	runStart := time.Now()
	var totalWork, totalWall stats.Histogram
	var totalVT int64

	for pi := range sched.Phases {
		phase := &sched.Phases[pi]
		var work, wall, hitWork stats.Histogram
		var client ClientCounters
		phaseStart := time.Now()

		record := func(out outcome) {
			work.Record(out.cost)
			wall.Record(out.wallNs)
			client.Requests++
			if out.cached {
				client.Cached++
			}
			if out.collapsed {
				client.Collapsed++
			}
			if out.warm {
				client.Warm++
			}
			if out.shed {
				client.Shed++
			}
			if out.degraded {
				client.Degraded++
			}
			if out.packed {
				client.Packed++
				client.PackedTrees += out.packedTrees
			}
			if out.err != "" {
				client.Errors++
				if len(client.ErrorSamples) < 3 {
					client.ErrorSamples = append(client.ErrorSamples, out.err)
				}
			}
		}

		for wi := range phase.Waves {
			wave := &phase.Waves[wi]
			if wave.Storm {
				for _, out := range runStorm(target, wave, opts, pace, workers, &hitWork) {
					record(out)
				}
				continue
			}
			if wave.Burst {
				// Exclusive burst wave: one step, Burst concurrent
				// requests, gated when a Gate is wired in.
				step := wave.Steps[0]
				if opts.Gate != nil {
					opts.Gate.arm(step.Burst)
				}
				outs := make([]outcome, step.Burst)
				var wg sync.WaitGroup
				for b := 0; b < step.Burst; b++ {
					wg.Add(1)
					go func(b int) {
						defer wg.Done()
						pace.wait()
						start := time.Now()
						res, err := target.Plan(step.Req)
						outs[b] = observe(res, err, time.Since(start))
					}(b)
				}
				wg.Wait()
				if opts.Gate != nil {
					opts.Gate.disarm()
				}
				for _, out := range outs {
					record(out)
				}
				continue
			}
			outs := parallel.Map(len(wave.Steps), workers, func(i int) outcome {
				pace.wait()
				start := time.Now()
				res, err := target.Plan(wave.Steps[i].Req)
				return observe(res, err, time.Since(start))
			})
			for _, out := range outs {
				record(out)
			}
			if wave.DrainAfter {
				// Background refinements must land before the next wave reads
				// their entries; HTTP targets have no drain hook and fall
				// back to the hit path's own wait-for-refinement.
				if d, ok := target.(interface{ Drain() }); ok {
					d.Drain()
				}
			}
		}

		after, err := target.Stats()
		if err != nil {
			return nil, fmt.Errorf("load: reading engine stats: %w", err)
		}
		vt := work.Sum()
		pr := PhaseReport{
			Name:        phase.Spec.Name,
			Kind:        string(phase.Spec.Kind),
			Requests:    phase.Expect.Requests,
			Distinct:    phase.Expect.Misses - phase.Expect.Shed,
			Client:      client,
			Engine:      subStats(after, before),
			Work:        work.Summary(),
			VirtualTime: vt,
		}
		if hitWork.Count() > 0 {
			hw := hitWork.Summary()
			pr.HitWork = &hw
		}
		if vt > 0 {
			pr.RequestsPerKTick = float64(pr.Requests) * 1000 / float64(vt)
		}
		rep.Phases = append(rep.Phases, pr)
		if timings != nil {
			d := time.Since(phaseStart)
			pt := PhaseTiming{Name: phase.Spec.Name, DurationNs: d.Nanoseconds(), LatencyNs: wall.Summary()}
			if d > 0 {
				pt.RequestsPerSec = float64(pr.Requests) / d.Seconds()
			}
			timings.Phases = append(timings.Phases, pt)
		}
		totalWork.Merge(&work)
		totalWall.Merge(&wall)
		totalVT += vt
		rep.Total.Client.add(client)
		before = after
	}

	final, err := target.Stats()
	if err != nil {
		return nil, fmt.Errorf("load: reading engine stats: %w", err)
	}
	rep.Total.Name = "total"
	rep.Total.Kind = "all"
	rep.Total.Requests = sched.Requests
	rep.Total.Distinct = sched.Distinct
	for _, pr := range rep.Phases {
		rep.Total.Engine.add(pr.Engine)
	}
	rep.Total.Work = totalWork.Summary()
	rep.Total.VirtualTime = totalVT
	if totalVT > 0 {
		rep.Total.RequestsPerKTick = float64(sched.Requests) * 1000 / float64(totalVT)
	}
	rep.CacheEntries = final.CacheEntries
	rep.Evictions = final.Evictions - initial.Evictions
	// In-process targets expose the solve-stage histograms and the trace
	// buffer; both are deterministic (per-solve pivot/round/cut counts are
	// fixed by the schedule, trace count is requests plus refines), so they
	// live in the canonical report. HTTP targets lack the hooks and skip them.
	if ss, ok := target.(interface{ StageStats() service.StageStats }); ok {
		st := ss.StageStats()
		rep.SolveStages = &SolveStages{Pivots: st.SolvePivots, Rounds: st.SolveRounds, Cuts: st.SolveCuts}
	}
	if tt, ok := target.(interface{ Tracer() *obs.Tracer }); ok {
		if tr := tt.Tracer(); tr != nil {
			rep.Traces = tr.Len()
		}
	}
	if timings != nil {
		d := time.Since(runStart)
		timings.DurationNs = d.Nanoseconds()
		timings.LatencyNs = totalWall.Summary()
		if d > 0 {
			timings.RequestsPerSec = float64(sched.Requests) / d.Seconds()
		}
		rep.Timings = timings
	}
	return rep, nil
}

// runStorm replays an overload storm wave. With a Gate wired in, admitted
// solves are held at BeforeSolve and the cold steps are launched strictly
// one admission decision at a time, so lanes, queue slots and sheds land on
// fixed step indexes for any worker count; the hit stream then runs through
// the fully saturated engine (its virtual-latency histogram is recorded into
// hitWork — the overload contract requires it to stay at the flat hit cost),
// and only afterwards are the held solves released. Without a Gate (HTTP
// targets) the storm flies concurrently best-effort and shed counts are not
// deterministic. Outcomes are returned in step order: cold steps first, hit
// stream after.
func runStorm(target Planner, wave *Wave, opts Options, pace *pacer, workers int, hitWork *stats.Histogram) []outcome {
	gate := opts.Gate
	outs := make([]outcome, len(wave.Steps))
	if gate != nil {
		gate.holdSolves()
		gate.armAdmit(len(wave.Steps))
	}
	var wg sync.WaitGroup
	for i := range wave.Steps {
		step := wave.Steps[i]
		done := make(chan struct{})
		wg.Add(1)
		go func(i int, step Step) {
			defer wg.Done()
			defer close(done)
			pace.wait()
			start := time.Now()
			res, err := target.Plan(step.Req)
			outs[i] = observe(res, err, time.Since(start))
		}(i, step)
		if gate != nil {
			gate.awaitAdmitOr(done)
		}
	}
	hitOuts := parallel.Map(len(wave.Hits), workers, func(i int) outcome {
		pace.wait()
		start := time.Now()
		res, err := target.Plan(wave.Hits[i].Req)
		return observe(res, err, time.Since(start))
	})
	if gate != nil {
		gate.disarmAdmit()
		gate.releaseSolves()
	}
	wg.Wait()
	for _, out := range hitOuts {
		hitWork.Record(out.cost)
	}
	return append(outs, hitOuts...)
}
