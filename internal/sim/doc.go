// Package sim simulates the pipelined broadcast of a message along a
// spanning tree, slice by slice, under the bidirectional one-port and
// multi-port models. The simulation reproduces the schedule an actual
// implementation would follow (every node forwards slices to its children
// in a fixed round-robin order, serializing its port or its per-send
// overhead), and therefore validates the analytic steady-state throughput
// used everywhere else in the repository: as the number of slices grows the
// measured steady-state rate converges to throughput.Evaluate's prediction.
package sim
