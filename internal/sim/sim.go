package sim

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/model"
	"repro/internal/platform"
)

// Config parameterizes a simulation run.
type Config struct {
	// Model is the port model; OnePortBidirectional and MultiPort are
	// supported (the unidirectional variant is only used analytically).
	Model model.PortModel
	// Slices is the number of message slices to broadcast (must be >= 1).
	Slices int
	// SliceSize overrides the platform's slice size when positive.
	SliceSize float64
}

// Result holds the outcome of a simulation.
type Result struct {
	// Makespan is the time at which the last node receives the last slice.
	Makespan float64
	// Throughput is Slices / Makespan (includes the pipeline fill time).
	Throughput float64
	// SteadyThroughput estimates the steady-state rate by discarding the
	// first half of the slices (it converges to the analytic tree
	// throughput as Slices grows).
	SteadyThroughput float64
	// NodeCompletion[v] is the time at which node v received the last slice.
	NodeCompletion []float64
	// SliceCompletion[k] is the time at which slice k reached every node.
	SliceCompletion []float64
}

// Errors returned by Simulate.
var (
	ErrUnsupportedModel = errors.New("sim: unsupported port model")
	ErrBadConfig        = errors.New("sim: invalid configuration")
)

// Simulate runs the pipelined broadcast of cfg.Slices slices along the tree
// and returns timing statistics. The tree must be a valid spanning tree of
// the platform.
func Simulate(p *platform.Platform, t *platform.Tree, cfg Config) (*Result, error) {
	if cfg.Slices < 1 {
		return nil, fmt.Errorf("%w: %d slices", ErrBadConfig, cfg.Slices)
	}
	if cfg.Model != model.OnePortBidirectional && cfg.Model != model.MultiPort {
		return nil, fmt.Errorf("%w: %v", ErrUnsupportedModel, cfg.Model)
	}
	if err := t.Validate(p); err != nil {
		return nil, err
	}
	n := p.NumNodes()
	k := cfg.Slices

	// Re-evaluate the affine costs at the requested slice size (if any) so
	// that start-up costs are charged once per slice rather than scaled.
	costs := p
	if cfg.SliceSize > 0 && cfg.SliceSize != p.SliceSize() {
		costs = p.Clone()
		costs.SetSliceSize(cfg.SliceSize)
	}
	linkTime := func(linkID int) float64 { return costs.SliceTime(linkID) }
	sendTime := func(u int) float64 { return costs.SendTime(u) }

	// avail[v][s] is the time at which node v holds slice s.
	avail := make([][]float64, n)
	for v := range avail {
		avail[v] = make([]float64, k)
	}
	// The source holds every slice from the start.
	order := t.BFSOrder()
	if len(order) != n {
		return nil, fmt.Errorf("%w: tree spans %d of %d nodes", ErrBadConfig, len(order), n)
	}

	// Process nodes in BFS order: a node's children only depend on the
	// node's own receive times, which are known once its parent has been
	// processed.
	for _, u := range order {
		children := t.Children(u)
		if len(children) == 0 {
			continue
		}
		switch cfg.Model {
		case model.OnePortBidirectional:
			simulateOnePortSender(p, t, u, children, avail, linkTime)
		case model.MultiPort:
			simulateMultiPortSender(p, t, u, children, avail, linkTime, sendTime(u))
		}
	}

	res := &Result{
		NodeCompletion:  make([]float64, n),
		SliceCompletion: make([]float64, k),
	}
	for v := 0; v < n; v++ {
		if v == t.Root {
			continue
		}
		res.NodeCompletion[v] = avail[v][k-1]
		if res.NodeCompletion[v] > res.Makespan {
			res.Makespan = res.NodeCompletion[v]
		}
		for s := 0; s < k; s++ {
			if avail[v][s] > res.SliceCompletion[s] {
				res.SliceCompletion[s] = avail[v][s]
			}
		}
	}
	if res.Makespan > 0 {
		res.Throughput = float64(k) / res.Makespan
	} else {
		res.Throughput = math.Inf(1)
	}
	res.SteadyThroughput = res.Throughput
	if k >= 4 {
		half := k / 2
		span := res.SliceCompletion[k-1] - res.SliceCompletion[half-1]
		if span > 0 {
			res.SteadyThroughput = float64(k-half) / span
		} else {
			res.SteadyThroughput = math.Inf(1)
		}
	}
	return res, nil
}

// simulateOnePortSender schedules all transfers of sender u under the
// bidirectional one-port model: the sender's port handles one transfer at a
// time, slices are forwarded in order, children served round-robin within a
// slice. Receiving never conflicts with sending (bidirectional), and a node
// has a single parent so its receive port is trivially serialized.
func simulateOnePortSender(p *platform.Platform, t *platform.Tree, u int, children []int, avail [][]float64, linkTime func(int) float64) {
	sendFree := 0.0
	slices := len(avail[u])
	isRoot := u == t.Root
	for s := 0; s < slices; s++ {
		ready := 0.0
		if !isRoot {
			ready = avail[u][s]
		}
		for _, c := range children {
			start := math.Max(sendFree, ready)
			finish := start + linkTime(t.ParentLink[c])
			avail[c][s] = finish
			sendFree = finish
		}
	}
}

// simulateMultiPortSender schedules all transfers of sender u under the
// multi-port model: the sender serializes only its per-send overhead, each
// link carries one transfer at a time, and a transfer completes one full
// link occupation after it starts.
func simulateMultiPortSender(p *platform.Platform, t *platform.Tree, u int, children []int, avail [][]float64, linkTime func(int) float64, sendOverhead float64) {
	interfaceFree := 0.0
	linkFree := make(map[int]float64, len(children))
	slices := len(avail[u])
	isRoot := u == t.Root
	for s := 0; s < slices; s++ {
		ready := 0.0
		if !isRoot {
			ready = avail[u][s]
		}
		for _, c := range children {
			link := t.ParentLink[c]
			overheadStart := math.Max(interfaceFree, ready)
			interfaceFree = overheadStart + sendOverhead
			start := math.Max(overheadStart, linkFree[link])
			finish := start + linkTime(link)
			linkFree[link] = finish
			avail[c][s] = finish
		}
	}
}

// MeasureThroughput is a convenience helper that simulates the broadcast of
// the given number of slices and returns the measured steady-state
// throughput.
func MeasureThroughput(p *platform.Platform, t *platform.Tree, m model.PortModel, slices int) (float64, error) {
	res, err := Simulate(p, t, Config{Model: m, Slices: slices})
	if err != nil {
		return 0, err
	}
	return res.SteadyThroughput, nil
}
