package sim

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/heuristics"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/throughput"
	"repro/internal/topology"
)

func chainTree(times []float64) (*platform.Platform, *platform.Tree) {
	n := len(times) + 1
	p := platform.New(n)
	tr := platform.NewTree(n, 0)
	for i, t := range times {
		id := p.MustAddLink(i, i+1, model.Linear(t))
		tr.SetParent(i+1, i, id)
	}
	return p, tr
}

func starTree(times []float64) (*platform.Platform, *platform.Tree) {
	n := len(times) + 1
	p := platform.New(n)
	tr := platform.NewTree(n, 0)
	for i, t := range times {
		id := p.MustAddLink(0, i+1, model.Linear(t))
		tr.SetParent(i+1, 0, id)
	}
	return p, tr
}

func TestSimulateChainOnePort(t *testing.T) {
	p, tr := chainTree([]float64{1, 4, 2})
	res, err := Simulate(p, tr, Config{Model: model.OnePortBidirectional, Slices: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Analytic steady-state throughput is 1/4.
	if math.Abs(res.SteadyThroughput-0.25) > 0.01 {
		t.Fatalf("steady throughput = %v, want ~0.25", res.SteadyThroughput)
	}
	// The pipeline fill adds the path length once: makespan ~= 7 + 99*4.
	want := 7.0 + 99*4
	if math.Abs(res.Makespan-want) > 1e-6 {
		t.Fatalf("makespan = %v, want %v", res.Makespan, want)
	}
	if res.Throughput >= res.SteadyThroughput {
		t.Fatal("total throughput should be below steady state (fill time)")
	}
}

func TestSimulateStarOnePortExact(t *testing.T) {
	p, tr := starTree([]float64{1, 2, 3})
	res, err := Simulate(p, tr, Config{Model: model.OnePortBidirectional, Slices: 50})
	if err != nil {
		t.Fatal(err)
	}
	// The source serializes 6 time units per slice; the last child of the
	// last slice finishes at exactly 50 * 6.
	if math.Abs(res.Makespan-300) > 1e-9 {
		t.Fatalf("makespan = %v, want 300", res.Makespan)
	}
	if math.Abs(res.SteadyThroughput-1.0/6.0) > 1e-9 {
		t.Fatalf("steady throughput = %v, want 1/6", res.SteadyThroughput)
	}
}

func TestSimulateSingleSlice(t *testing.T) {
	p, tr := chainTree([]float64{1, 1})
	res, err := Simulate(p, tr, Config{Model: model.OnePortBidirectional, Slices: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-2) > 1e-9 {
		t.Fatalf("makespan = %v, want 2", res.Makespan)
	}
	if len(res.SliceCompletion) != 1 || math.Abs(res.SliceCompletion[0]-2) > 1e-9 {
		t.Fatalf("slice completion = %v", res.SliceCompletion)
	}
}

func TestSimulateSliceSizeOverride(t *testing.T) {
	p, tr := chainTree([]float64{1, 1})
	res, err := Simulate(p, tr, Config{Model: model.OnePortBidirectional, Slices: 1, SliceSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-4) > 1e-9 {
		t.Fatalf("makespan with doubled slices = %v, want 4", res.Makespan)
	}
}

func TestSimulateMultiPortStar(t *testing.T) {
	p, tr := starTree([]float64{2, 2, 2})
	p.SetNode(0, platform.Node{Send: model.Linear(1.5)})
	res, err := Simulate(p, tr, Config{Model: model.MultiPort, Slices: 200})
	if err != nil {
		t.Fatal(err)
	}
	// Analytic period = max(3*1.5, 2) = 4.5.
	if math.Abs(res.SteadyThroughput-1/4.5) > 0.01 {
		t.Fatalf("steady throughput = %v, want ~%v", res.SteadyThroughput, 1/4.5)
	}
	// With negligible overhead, the link time dominates and the multi-port
	// star is limited by the slowest link.
	p.SetNode(0, platform.Node{Send: model.Linear(0.01)})
	res, err = Simulate(p, tr, Config{Model: model.MultiPort, Slices: 200})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.SteadyThroughput-0.5) > 0.02 {
		t.Fatalf("steady throughput = %v, want ~0.5", res.SteadyThroughput)
	}
}

func TestSimulateErrors(t *testing.T) {
	p, tr := chainTree([]float64{1})
	if _, err := Simulate(p, tr, Config{Model: model.OnePortBidirectional, Slices: 0}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero slices: %v", err)
	}
	if _, err := Simulate(p, tr, Config{Model: model.OnePortUnidirectional, Slices: 1}); !errors.Is(err, ErrUnsupportedModel) {
		t.Fatalf("unsupported model: %v", err)
	}
	bad := platform.NewTree(2, 0) // not spanning
	if _, err := Simulate(p, bad, Config{Model: model.OnePortBidirectional, Slices: 1}); err == nil {
		t.Fatal("invalid tree accepted")
	}
}

// TestSimulationMatchesAnalyticThroughput is the key cross-validation: for
// random platforms and every heuristic tree, the measured steady-state
// throughput converges to the analytic prediction of package throughput.
func TestSimulationMatchesAnalyticThroughput(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	for trial := 0; trial < 3; trial++ {
		p, err := topology.Random(topology.DefaultRandomConfig(12, 0.2), rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{heuristics.NamePruneDegree, heuristics.NameGrowTree, heuristics.NameBinomial} {
			b, err := heuristics.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			tree, err := b.Build(p, 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range []model.PortModel{model.OnePortBidirectional, model.MultiPort} {
				analytic := throughput.TreeThroughput(p, tree, m)
				measured, err := MeasureThroughput(p, tree, m, 400)
				if err != nil {
					t.Fatal(err)
				}
				rel := math.Abs(measured-analytic) / analytic
				if rel > 0.05 {
					t.Fatalf("trial %d, %s, %v: simulated %v vs analytic %v (rel %.3f)",
						trial, name, m, measured, analytic, rel)
				}
			}
		}
	}
}

// TestSimulatedThroughputNeverExceedsAnalytic checks that the simulation
// (which includes fill effects) never reports a total throughput above the
// steady-state bound.
func TestSimulatedThroughputNeverExceedsAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p, err := topology.Random(topology.DefaultRandomConfig(10, 0.25), rng)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := heuristics.ByName(heuristics.NameGrowTree)
	tree, err := b.Build(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	analytic := throughput.OnePortThroughput(p, tree)
	for _, slices := range []int{1, 5, 50, 300} {
		res, err := Simulate(p, tree, Config{Model: model.OnePortBidirectional, Slices: slices})
		if err != nil {
			t.Fatal(err)
		}
		if res.Throughput > analytic*(1+1e-9) {
			t.Fatalf("slices=%d: total throughput %v exceeds analytic bound %v", slices, res.Throughput, analytic)
		}
	}
}

func TestSliceCompletionMonotone(t *testing.T) {
	p, tr := chainTree([]float64{1, 2, 1})
	res, err := Simulate(p, tr, Config{Model: model.OnePortBidirectional, Slices: 20})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k < len(res.SliceCompletion); k++ {
		if res.SliceCompletion[k] < res.SliceCompletion[k-1] {
			t.Fatalf("slice completion not monotone at %d: %v", k, res.SliceCompletion)
		}
	}
	if res.NodeCompletion[0] != 0 {
		t.Fatal("root completion should be 0")
	}
}
