package steady

import (
	"fmt"
	"math"

	"repro/internal/platform"
)

// PackedTree is one weighted broadcast tree of a packing: the tree carries
// weight units of throughput, i.e. a fraction weight/Throughput of the
// slices flow down this tree in the steady state.
type PackedTree struct {
	Tree   *platform.Tree `json:"tree"`
	Weight float64        `json:"weight"`
}

// Packing is a weighted spanning-tree decomposition of a steady-state
// solution's optimal edge rates n(u,v): k trees with positive weights whose
// combined rate achieves the LP throughput (Section 4.1's weighted tree
// packing — the primal witness that the LP bound is reached by an actual
// broadcast schedule). The summed per-link packed rates never exceed the
// solution's edge rates, so every capacity and one-port occupation bound the
// LP certified carries over to the packing.
//
// A Packing is produced by internal/pack (which owns the decomposition
// algorithm); it lives here so Solution can expose it without an import
// cycle.
type Packing struct {
	// Source is the broadcast source all trees are rooted at.
	Source int `json:"source"`
	// Trees are the packed trees, every weight strictly positive. The order
	// is deterministic: peel-phase trees first (in peel order), then priced
	// columns (in pricing order), each keeping only positive final weights.
	Trees []PackedTree `json:"trees"`
	// Throughput is the combined packed rate, the sum of the weights. It
	// matches LPThroughput within the decomposition tolerance unless
	// Truncated.
	Throughput float64 `json:"throughput"`
	// LPThroughput is the LP-optimal throughput the packing was decomposed
	// from (Solution.Throughput).
	LPThroughput float64 `json:"lpThroughput"`
	// Peeled and Priced count the trees contributed by the greedy
	// max-bottleneck peel phase and by restricted-master column generation;
	// their sum can exceed len(Trees) because trees whose final master
	// weight is zero are dropped. Both are deterministic decomposition-cost
	// measures.
	Peeled int `json:"peeled"`
	Priced int `json:"priced"`
	// Truncated reports that the optimal decomposition needed more trees
	// than the requested cap and the lightest ones were dropped: Throughput
	// is then the honest (smaller) sum of the surviving weights.
	Truncated bool `json:"truncated,omitempty"`
}

// NumTrees returns the number of packed trees.
func (pk *Packing) NumTrees() int { return len(pk.Trees) }

// PackedRates returns the summed per-link packed rate: for each link ID the
// total weight of the packed trees using it. The slice has numLinks entries.
func (pk *Packing) PackedRates(numLinks int) []float64 {
	rates := make([]float64, numLinks)
	for _, pt := range pk.Trees {
		for _, id := range pt.Tree.LinkIDs() {
			rates[id] += pt.Weight
		}
	}
	return rates
}

// Validate checks the packing's invariants against the platform and the
// solution edge rates it was decomposed from, with tolerance tol:
//
//   - every tree is rooted at Source and spans the alive nodes over live
//     links (platform.Tree.ValidateLive);
//   - every weight is strictly positive and the weights sum to Throughput;
//   - the summed per-link packed rates never exceed the solution's edge
//     rates n(u,v);
//   - no node's one-port occupation (incoming and outgoing separately, as in
//     the steady LP) exceeds 1 under the packed rates.
//
// edgeRate must be the Solution.EdgeRate the packing was decomposed from
// (len == platform.NumLinks()).
func (pk *Packing) Validate(p *platform.Platform, edgeRate []float64, tol float64) error {
	if len(edgeRate) != p.NumLinks() {
		return fmt.Errorf("steady: packing validate: %d edge rates for %d links", len(edgeRate), p.NumLinks())
	}
	sum := 0.0
	for i, pt := range pk.Trees {
		if pt.Tree == nil {
			return fmt.Errorf("steady: packed tree %d is nil", i)
		}
		if pt.Tree.Root != pk.Source {
			return fmt.Errorf("steady: packed tree %d rooted at %d, want source %d", i, pt.Tree.Root, pk.Source)
		}
		if err := pt.Tree.ValidateLive(p); err != nil {
			return fmt.Errorf("steady: packed tree %d: %w", i, err)
		}
		if !(pt.Weight > 0) || math.IsInf(pt.Weight, 0) || math.IsNaN(pt.Weight) {
			return fmt.Errorf("steady: packed tree %d has non-positive weight %v", i, pt.Weight)
		}
		sum += pt.Weight
	}
	if math.Abs(sum-pk.Throughput) > tol {
		return fmt.Errorf("steady: packed weights sum to %v, recorded throughput %v", sum, pk.Throughput)
	}
	rates := pk.PackedRates(p.NumLinks())
	for id, r := range rates {
		if r > edgeRate[id]+tol {
			l := p.Link(id)
			return fmt.Errorf("steady: packed rate %v on link %d (%d->%d) exceeds LP edge rate %v", r, id, l.From, l.To, edgeRate[id])
		}
	}
	for u := 0; u < p.NumNodes(); u++ {
		if !p.NodeAlive(u) {
			continue
		}
		for dir, ids := range [][]int{p.InLinkIDs(u), p.OutLinkIDs(u)} {
			occ := 0.0
			for _, id := range ids {
				if p.LinkLive(id) {
					occ += p.SliceTime(id) * rates[id]
				}
			}
			if occ > 1+tol {
				side := "incoming"
				if dir == 1 {
					side = "outgoing"
				}
				return fmt.Errorf("steady: node %d %s one-port occupation %v exceeds 1 under the packing", u, side, occ)
			}
		}
	}
	return nil
}
