package steady

import (
	"math"
	"testing"

	"repro/internal/platform"
	"repro/internal/topology"
)

// sessionOpts forces full separation convergence so the session and the cold
// oracle agree to tight tolerance (the default gap-based exit may stop at
// different achievable lower bounds on degenerate platforms).
func sessionOpts() *Options { return &Options{GapTolerance: 1e-9} }

// checkAgainstColdOracle solves the platform's current state from scratch
// and compares it with the session's solution.
func checkAgainstColdOracle(t *testing.T, p *platform.Platform, source int, got *Solution, label string) {
	t.Helper()
	oracle, err := Solve(p.Clone(), source, sessionOpts())
	if err != nil {
		t.Fatalf("%s: oracle: %v", label, err)
	}
	rel := math.Abs(got.Throughput-oracle.Throughput) / math.Max(oracle.Throughput, 1e-12)
	if rel > 1e-6 {
		t.Errorf("%s: session throughput %v vs cold oracle %v (rel %v)", label, got.Throughput, oracle.Throughput, rel)
	}
}

func TestSessionAcrossMutations(t *testing.T) {
	p, err := topology.Random(topology.DefaultRandomConfig(14, 0.25), topology.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(p, 0, sessionOpts())
	sol, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstColdOracle(t, p, 0, sol, "initial")

	apply := func(d platform.Delta) {
		t.Helper()
		if _, err := p.ApplyDelta(d); err != nil {
			t.Fatalf("apply %v: %v", d, err)
		}
	}

	// Tightening deltas: degrade two links, fail one. These must take the
	// warm path (master reused).
	apply(platform.Delta{Kind: platform.DeltaScaleLink, Link: 0, Factor: 3})
	apply(platform.Delta{Kind: platform.DeltaScaleLink, Link: 3, Factor: 1.5})
	sol, err = s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstColdOracle(t, p, 0, sol, "after degrade")
	if s.Stats().WarmResolves != 1 {
		t.Errorf("degrade-only resolve did not take the warm path: %+v", s.Stats())
	}

	apply(platform.Delta{Kind: platform.DeltaLinkDown, Link: 1})
	sol, err = s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstColdOracle(t, p, 0, sol, "after link-down")
	if sol.EdgeRate[1] != 0 {
		t.Errorf("dead link 1 has rate %v, want 0", sol.EdgeRate[1])
	}
	if s.Stats().WarmResolves != 2 {
		t.Errorf("link-down resolve did not take the warm path: %+v", s.Stats())
	}

	// Loosening deltas: speed-up and revival force a pool-seeded rebuild.
	apply(platform.Delta{Kind: platform.DeltaScaleLink, Link: 0, Factor: 0.25})
	sol, err = s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstColdOracle(t, p, 0, sol, "after speed-up")
	apply(platform.Delta{Kind: platform.DeltaLinkUp, Link: 1})
	sol, err = s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstColdOracle(t, p, 0, sol, "after link-up")

	// Node churn: crash a non-source node (rebuild with destination
	// filtering), then revive it.
	victim := -1
	for w := 1; w < p.NumNodes(); w++ {
		if _, err := p.ApplyDelta(platform.Delta{Kind: platform.DeltaNodeDown, Node: w}); err != nil {
			continue
		}
		if p.ValidateLive(0) == nil {
			victim = w
			break
		}
		if _, err := p.ApplyDelta(platform.Delta{Kind: platform.DeltaNodeUp, Node: w}); err != nil {
			t.Fatal(err)
		}
	}
	if victim < 0 {
		t.Fatal("no node can crash without disconnecting the platform")
	}
	sol, err = s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstColdOracle(t, p, 0, sol, "after node-down")
	apply(platform.Delta{Kind: platform.DeltaNodeUp, Node: victim})
	sol, err = s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstColdOracle(t, p, 0, sol, "after node-up")

	st := s.Stats()
	if st.Resolves != 7 || st.WarmResolves != 2 || st.Rebuilds != 5 {
		t.Errorf("stats = %+v, want 7 resolves, 2 warm, 5 rebuilds", st)
	}
	if st.PoolCuts == 0 {
		t.Error("session accumulated no pooled cuts")
	}
	if st.PoolReused == 0 {
		t.Error("rebuilds reused no pooled cuts")
	}
}

// TestSessionNoMutationIsCheap re-resolving without mutations must not
// rebuild the master and should cost few pivots.
func TestSessionNoMutationIsCheap(t *testing.T) {
	p, err := topology.Random(topology.DefaultRandomConfig(12, 0.3), topology.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(p, 0, sessionOpts())
	first, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(first.Throughput-second.Throughput) > 1e-9 {
		t.Errorf("idempotent resolve drifted: %v vs %v", first.Throughput, second.Throughput)
	}
	if s.Stats().Rebuilds != 1 {
		t.Errorf("no-op resolve rebuilt the master: %+v", s.Stats())
	}
	if second.Rounds != 1 {
		t.Errorf("no-op resolve took %d rounds, want 1", second.Rounds)
	}
}

// TestSessionColdStartMode with ColdStart the session must never warm-reuse
// the master across mutations.
func TestSessionColdStartMode(t *testing.T) {
	p, err := topology.Random(topology.DefaultRandomConfig(10, 0.3), topology.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(p, 0, &Options{GapTolerance: 1e-9, ColdStart: true})
	if _, err := s.Resolve(); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ApplyDelta(platform.Delta{Kind: platform.DeltaScaleLink, Link: 0, Factor: 2}); err != nil {
		t.Fatal(err)
	}
	sol, err := s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstColdOracle(t, p, 0, sol, "cold-start mode")
	st := s.Stats()
	if st.WarmResolves != 0 || st.Rebuilds != 2 || st.WarmPivots != 0 {
		t.Errorf("cold-start session reused state: %+v", st)
	}
}
