package steady

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/lp"
	"repro/internal/platform"
)

// Solution is the optimal steady-state broadcast solution.
type Solution struct {
	// Throughput is the optimal number of message slices the source can
	// broadcast per time unit using multiple trees (the value TP of LP (2)).
	Throughput float64
	// EdgeRate[linkID] is the number of slices per time unit that cross the
	// link in the optimal solution (n(u,v) in the paper). The LP-based
	// heuristics use these as edge weights.
	EdgeRate []float64
	// Rounds is the number of cutting-plane iterations (1 for SolveDirect).
	Rounds int
	// Cuts is the number of cut constraints generated (0 for SolveDirect).
	Cuts int
	// LPIterations is the total number of simplex pivots performed.
	LPIterations int
	// UpperBound is the objective value of the final master LP: an upper
	// bound on the optimal throughput. It equals Throughput when the loop
	// terminates with no violated cuts, and sits slightly above it when the
	// gap-based termination reports the achievable lower bound instead.
	UpperBound float64
	// WarmPivots and ColdPivots split LPIterations between warm-started
	// dual-simplex re-solves (reusing the previous round's optimal basis)
	// and cold solves from the slack basis.
	WarmPivots int
	ColdPivots int
	// ColdSolves is the number of master solves that ran from a cold
	// tableau: 1 for a fully warm-started run (plus any fallback), one per
	// round for the cold-start path, and 1 for SolveDirect.
	ColdSolves int
	// LPWallNanos is the wall-clock time spent inside master LP solves
	// during this resolve, excluding cut separation (the per-destination
	// max-flows) and everything else around the cutting-plane loop. It
	// exists for the solver benchmarks (BENCH_lp.json compares the dense
	// and revised masters on LP cost alone) and is never marshaled into the
	// deterministic reports.
	LPWallNanos int64
	// Packing, when non-nil, is the weighted spanning-tree decomposition of
	// EdgeRate: the primal witness that Throughput is achieved by an actual
	// convex combination of broadcast trees. The solver itself leaves it
	// nil; internal/pack (pack.Decompose) computes and attaches it, and
	// warm sessions re-pack after churn deltas by decomposing the refreshed
	// solution.
	Packing *Packing
}

// Options tunes the solvers.
type Options struct {
	// MaxRounds bounds the number of cutting-plane iterations (default 200).
	MaxRounds int
	// Tolerance is the relative violation tolerance used when separating
	// cuts (default 1e-7).
	Tolerance float64
	// GapTolerance stops the cutting-plane loop as soon as the relative gap
	// between the master LP value (an upper bound on the optimum) and the
	// throughput actually supported by the current edge rates (a lower
	// bound, the smallest destination max-flow) falls below this value
	// (default 1e-5). The reported throughput is then the achievable lower
	// bound.
	GapTolerance float64
	// LP are the options passed to the simplex solver.
	LP *lp.Options
	// ColdStart disables the warm-started incremental master: every
	// cutting-plane round then re-solves the master LP from a fresh tableau,
	// as the solver did before warm starts existed. The cold path is kept as
	// a fallback and as a differential-testing oracle; the warm-started
	// default produces the same throughput (up to LP degeneracy) with far
	// fewer simplex pivots once the master accumulates cuts.
	ColdStart bool
	// Revised selects the revised-simplex master (lp.Revised): sparse
	// columns and a maintained LU basis factorization instead of the dense
	// tableau, making per-pivot cost nearly independent of the accumulated
	// cut count. Semantics (warm re-optimization across appended cuts and
	// churn deltas, cancellation, fallbacks) are identical to the default
	// incremental master, which remains the differential oracle; large
	// sweeps (n ≳ 256) should set this. Ignored when ColdStart is set.
	Revised bool
}

func (o *Options) maxRounds() int {
	if o != nil && o.MaxRounds > 0 {
		return o.MaxRounds
	}
	return 200
}

func (o *Options) tolerance() float64 {
	if o != nil && o.Tolerance > 0 {
		return o.Tolerance
	}
	return 1e-7
}

func (o *Options) gapTolerance() float64 {
	if o != nil && o.GapTolerance > 0 {
		return o.GapTolerance
	}
	return 1e-5
}

func (o *Options) lpOptions() *lp.Options {
	if o != nil && o.LP != nil {
		return o.LP
	}
	// Bound the worst-case cost of one master solve: on rare, highly
	// degenerate masters the simplex can otherwise spend minutes proving
	// optimality. A phase-2 solve that hits this limit still returns a
	// primal feasible point, which the cutting-plane loop can keep
	// separating against (see Solve); a limit that leaves no feasible point
	// surfaces as ErrLPFailed.
	return &lp.Options{MaxIterations: 30000}
}

func (o *Options) coldStart() bool { return o != nil && o.ColdStart }

func (o *Options) revised() bool { return o != nil && o.Revised }

// Errors returned by the solvers.
var (
	ErrNoConvergence = errors.New("steady: cutting-plane solver did not converge")
	ErrLPFailed      = errors.New("steady: linear program could not be solved")
)

// Solve computes the optimal MTP throughput and edge rates with the
// cutting-plane decomposition. The platform must be broadcastable from the
// source (every alive node reachable through live links; on never-mutated
// platforms that is full reachability), which is checked up front.
//
// Solve is a one-shot wrapper around Session: it builds the master, runs the
// cutting-plane loop once and discards the session state. Callers re-solving
// the same platform across mutations should hold a Session instead, which
// reuses the master LP and the accumulated cut pool between calls.
func Solve(p *platform.Platform, source int, opts *Options) (*Solution, error) {
	return NewSession(p, source, opts).Resolve()
}

// cutKey builds a canonical signature of a cut (sorted link IDs).
func cutKey(links []int) string {
	ids := append([]int(nil), links...)
	sort.Ints(ids)
	var b strings.Builder
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", id)
	}
	return b.String()
}

// SolveDirect encodes LP (2) of the paper directly: per-destination flow
// variables x^w_e, edge rates n_e and the throughput TP. It is exponential
// in neither |V| nor |E| but its dense tableau grows as (|V|·|E|)², so it is
// intended for small platforms (tests and examples).
func SolveDirect(p *platform.Platform, source int, opts *Options) (*Solution, error) {
	if err := p.Validate(source); err != nil {
		return nil, err
	}
	n := p.NumNodes()
	e := p.NumLinks()
	if n == 1 {
		return &Solution{Throughput: math.Inf(1), UpperBound: math.Inf(1), EdgeRate: make([]float64, e), Rounds: 1}, nil
	}

	// Destinations in increasing node order.
	dests := make([]int, 0, n-1)
	for w := 0; w < n; w++ {
		if w != source {
			dests = append(dests, w)
		}
	}
	numDest := len(dests)

	// Variable layout: x[wIdx][e] at wIdx*e + e, then n_e, then TP.
	xVar := func(wIdx, linkID int) int { return wIdx*e + linkID }
	nVar := func(linkID int) int { return numDest*e + linkID }
	tpVar := numDest*e + e
	problem := lp.NewProblem(tpVar + 1)
	problem.SetObjectiveCoeff(tpVar, 1)

	// Flow conservation per destination and node.
	for wIdx, w := range dests {
		for v := 0; v < n; v++ {
			terms := make([]lp.Term, 0, 8)
			for _, id := range p.OutLinkIDs(v) {
				terms = append(terms, lp.Term{Var: xVar(wIdx, id), Coeff: 1})
			}
			for _, id := range p.InLinkIDs(v) {
				terms = append(terms, lp.Term{Var: xVar(wIdx, id), Coeff: -1})
			}
			switch v {
			case source:
				// Net outflow of slices destined to w equals TP.
				terms = append(terms, lp.Term{Var: tpVar, Coeff: -1})
				problem.AddSparseConstraint(terms, lp.EQ, 0)
			case w:
				// Net inflow equals TP (outflow minus inflow equals -TP).
				terms = append(terms, lp.Term{Var: tpVar, Coeff: 1})
				problem.AddSparseConstraint(terms, lp.EQ, 0)
			default:
				problem.AddSparseConstraint(terms, lp.EQ, 0)
			}
		}
	}

	// x^w_e <= n_e (constraint (d) relaxed to an inequality, which does not
	// change the optimum since n_e only appears in occupation constraints).
	for wIdx := range dests {
		for id := 0; id < e; id++ {
			problem.AddSparseConstraint([]lp.Term{
				{Var: xVar(wIdx, id), Coeff: 1},
				{Var: nVar(id), Coeff: -1},
			}, lp.LE, 0)
		}
	}

	// One-port occupation constraints ((f), (g), (i), (j)).
	for u := 0; u < n; u++ {
		if ids := p.InLinkIDs(u); len(ids) > 0 {
			terms := make([]lp.Term, 0, len(ids))
			for _, id := range ids {
				terms = append(terms, lp.Term{Var: nVar(id), Coeff: p.SliceTime(id)})
			}
			problem.AddSparseConstraint(terms, lp.LE, 1)
		}
		if ids := p.OutLinkIDs(u); len(ids) > 0 {
			terms := make([]lp.Term, 0, len(ids))
			for _, id := range ids {
				terms = append(terms, lp.Term{Var: nVar(id), Coeff: p.SliceTime(id)})
			}
			problem.AddSparseConstraint(terms, lp.LE, 1)
		}
	}

	lpSol, err := lp.Solve(problem, opts.lpOptions())
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrLPFailed, err)
	}
	if lpSol.Status != lp.Optimal {
		return nil, fmt.Errorf("%w: status %v", ErrLPFailed, lpSol.Status)
	}
	sol := &Solution{
		Throughput:   lpSol.X[tpVar],
		UpperBound:   lpSol.X[tpVar],
		EdgeRate:     make([]float64, e),
		Rounds:       1,
		LPIterations: lpSol.Iterations,
		ColdPivots:   lpSol.Iterations,
		ColdSolves:   1,
	}
	for id := 0; id < e; id++ {
		sol.EdgeRate[id] = lpSol.X[nVar(id)]
	}
	return sol, nil
}
