// Package steady computes the optimal steady-state broadcast throughput of
// the MTP problem (Multiple Trees, Pipelined) for a heterogeneous platform
// under the bidirectional one-port model, i.e. the value of the linear
// program (2) of Section 4.1 of the paper. This optimum serves as the
// reference ("relative performance" denominator) for every STP heuristic,
// and its per-edge message rates n(u,v) seed the LP-based heuristics.
//
// Two solvers are provided:
//
//   - Solve uses a cutting-plane decomposition: by max-flow/min-cut duality,
//     the projection of LP (2) onto the edge rates n and the throughput TP
//     is exactly {per-node one-port occupation constraints} together with
//     {for every destination w and every source→w cut C: Σ_{e∈C} n_e ≥ TP}.
//     A small master LP over (n, TP) is solved repeatedly, violated cuts
//     being separated with a max-flow computation per destination. The
//     master is held in one warm-started incremental solver (lp.Incremental)
//     across rounds: after round one, each re-solve prices the newly
//     separated cut rows into the previous optimal basis and re-optimizes
//     with a few dual simplex pivots instead of rebuilding the tableau and
//     re-pivoting from the slack basis. Options.ColdStart restores the
//     historical re-solve-from-scratch behavior (it also serves as the
//     differential-testing oracle), and the loop falls back to a cold solve
//     on its own whenever a warm re-solve cannot be completed.
//
//   - SolveDirect encodes LP (2) directly (per-destination flow variables);
//     its size grows as |E|·|V| so it is only practical for small platforms,
//     where it cross-checks the cutting-plane solver in tests.
package steady
