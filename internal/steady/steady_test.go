package steady

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/lp"
	"repro/internal/maxflow"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/topology"
)

// starPlatform builds a star with node 0 at the center and the given
// outgoing slice times towards each leaf (plus symmetric return links).
func starPlatform(outTimes []float64) *platform.Platform {
	p := platform.New(len(outTimes) + 1)
	for i, t := range outTimes {
		p.MustAddLink(0, i+1, model.Linear(t))
		p.MustAddLink(i+1, 0, model.Linear(t))
	}
	return p
}

// chainPlatform builds a directed chain 0 -> 1 -> ... with the given times.
func chainPlatform(times []float64) *platform.Platform {
	p := platform.New(len(times) + 1)
	for i, t := range times {
		p.MustAddLink(i, i+1, model.Linear(t))
	}
	return p
}

// completeUnit builds a complete directed graph with unit slice times.
func completeUnit(n int) *platform.Platform {
	p := platform.New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				p.MustAddLink(u, v, model.Linear(1))
			}
		}
	}
	return p
}

func TestStarThroughput(t *testing.T) {
	// On a star the source must serialize all sends: TP = 1 / sum(T_i).
	outTimes := []float64{1, 2, 3}
	p := starPlatform(outTimes)
	sol, err := Solve(p, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 1.0 / 6.0
	if math.Abs(sol.Throughput-want) > 1e-6 {
		t.Fatalf("throughput = %v, want %v", sol.Throughput, want)
	}
}

func TestChainThroughput(t *testing.T) {
	// On a chain the bottleneck is the slowest link: TP = 1 / max(T_i).
	p := chainPlatform([]float64{1, 4, 2})
	sol, err := Solve(p, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Throughput-0.25) > 1e-6 {
		t.Fatalf("throughput = %v, want 0.25", sol.Throughput)
	}
}

func TestCompleteGraphK3(t *testing.T) {
	// On K3 with unit times the optimal MTP throughput is 1 (each
	// destination receives half the slices directly and half relayed).
	p := completeUnit(3)
	sol, err := Solve(p, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Throughput-1) > 1e-6 {
		t.Fatalf("throughput = %v, want 1", sol.Throughput)
	}
}

func TestSingleNodePlatform(t *testing.T) {
	p := platform.New(1)
	sol, err := Solve(p, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(sol.Throughput, 1) {
		t.Fatalf("single-node throughput = %v, want +Inf", sol.Throughput)
	}
	sold, err := SolveDirect(p, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(sold.Throughput, 1) {
		t.Fatal("direct solver should also return +Inf")
	}
}

func TestUnreachablePlatformRejected(t *testing.T) {
	p := platform.New(3)
	p.MustAddLink(0, 1, model.Linear(1))
	if _, err := Solve(p, 0, nil); err == nil {
		t.Fatal("unreachable platform accepted by Solve")
	}
	if _, err := SolveDirect(p, 0, nil); err == nil {
		t.Fatal("unreachable platform accepted by SolveDirect")
	}
}

func TestDirectMatchesKnownValues(t *testing.T) {
	cases := []struct {
		name string
		p    *platform.Platform
		want float64
	}{
		{"star", starPlatform([]float64{1, 2, 3}), 1.0 / 6.0},
		{"chain", chainPlatform([]float64{1, 4, 2}), 0.25},
		{"k3", completeUnit(3), 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sol, err := SolveDirect(tc.p, 0, nil)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(sol.Throughput-tc.want) > 1e-6 {
				t.Fatalf("throughput = %v, want %v", sol.Throughput, tc.want)
			}
		})
	}
}

// checkSolutionFeasible verifies that the edge rates satisfy the one-port
// occupation constraints and support a flow of value Throughput towards
// every destination.
func checkSolutionFeasible(t *testing.T, p *platform.Platform, source int, sol *Solution) {
	t.Helper()
	const tol = 1e-5
	n := p.NumNodes()
	for u := 0; u < n; u++ {
		var in, out float64
		for _, id := range p.InLinkIDs(u) {
			in += sol.EdgeRate[id] * p.SliceTime(id)
		}
		for _, id := range p.OutLinkIDs(u) {
			out += sol.EdgeRate[id] * p.SliceTime(id)
		}
		if in > 1+tol || out > 1+tol {
			t.Fatalf("node %d occupation violated: in=%v out=%v", u, in, out)
		}
	}
	nw := maxflow.New(n)
	for id := 0; id < p.NumLinks(); id++ {
		l := p.Link(id)
		nw.AddEdge(l.From, l.To, sol.EdgeRate[id])
	}
	for w := 0; w < n; w++ {
		if w == source {
			continue
		}
		nw.Reset()
		if flow := nw.MaxFlow(source, w); flow < sol.Throughput-1e-4*math.Max(1, sol.Throughput) {
			t.Fatalf("destination %d receives only %v < %v", w, flow, sol.Throughput)
		}
	}
}

func TestSolutionFeasibility(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 5; trial++ {
		p, err := topology.Random(topology.DefaultRandomConfig(12, 0.2), rng)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := Solve(p, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Throughput <= 0 {
			t.Fatalf("non-positive throughput %v", sol.Throughput)
		}
		checkSolutionFeasible(t, p, 0, sol)
	}
}

func TestCuttingPlaneMatchesDirectOnRandomPlatforms(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 8; trial++ {
		n := 4 + rng.Intn(4) // 4..7 nodes keeps the direct LP small
		p, err := topology.Random(topology.DefaultRandomConfig(n, 0.4), rng)
		if err != nil {
			t.Fatal(err)
		}
		source := rng.Intn(n)
		got, err := Solve(p, source, nil)
		if err != nil {
			t.Fatalf("trial %d: cutting plane: %v", trial, err)
		}
		want, err := SolveDirect(p, source, nil)
		if err != nil {
			t.Fatalf("trial %d: direct: %v", trial, err)
		}
		rel := math.Abs(got.Throughput-want.Throughput) / math.Max(want.Throughput, 1e-12)
		if rel > 1e-4 {
			t.Fatalf("trial %d (n=%d): cutting plane %v vs direct %v", trial, n, got.Throughput, want.Throughput)
		}
	}
}

// TestWarmStartMatchesColdStart is the core differential test of the
// incremental master: on random and hierarchical platforms, the warm-started
// default and the cold-start oracle must agree on the throughput, and both
// must report consistent pivot accounting.
func TestWarmStartMatchesColdStart(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	platforms := make([]*platform.Platform, 0, 8)
	for trial := 0; trial < 6; trial++ {
		p, err := topology.Random(topology.DefaultRandomConfig(8+trial*3, 0.25), rng)
		if err != nil {
			t.Fatal(err)
		}
		platforms = append(platforms, p)
	}
	tiers, err := topology.Tiers(topology.Tiers30(), rng)
	if err != nil {
		t.Fatal(err)
	}
	platforms = append(platforms, tiers)

	for i, p := range platforms {
		warm, err := Solve(p, 0, nil)
		if err != nil {
			t.Fatalf("platform %d: warm: %v", i, err)
		}
		cold, err := Solve(p, 0, &Options{ColdStart: true})
		if err != nil {
			t.Fatalf("platform %d: cold: %v", i, err)
		}
		rel := math.Abs(warm.Throughput-cold.Throughput) / math.Max(cold.Throughput, 1e-12)
		if rel > 1e-6 {
			t.Errorf("platform %d: warm throughput %v vs cold %v (rel %v)", i, warm.Throughput, cold.Throughput, rel)
		}
		// Both paths must return achievable (feasible) rate vectors.
		checkSolutionFeasible(t, p, 0, warm)
		checkSolutionFeasible(t, p, 0, cold)
		// Pivot accounting: the split must add up, and the cold oracle must
		// not report warm pivots.
		if warm.WarmPivots+warm.ColdPivots != warm.LPIterations {
			t.Errorf("platform %d: warm pivots %d + cold pivots %d != total %d",
				i, warm.WarmPivots, warm.ColdPivots, warm.LPIterations)
		}
		if cold.WarmPivots != 0 || cold.ColdPivots != cold.LPIterations || cold.ColdSolves != cold.Rounds {
			t.Errorf("platform %d: cold-start accounting %+v inconsistent", i, cold)
		}
		if warm.ColdSolves < 1 {
			t.Errorf("platform %d: warm path reports %d cold solves, want >= 1 (the first round)", i, warm.ColdSolves)
		}
	}
}

// TestWarmStartReducesPivots checks the point of the exercise: on a
// hierarchical platform accumulating dozens of cuts, the warm-started master
// needs at most half the simplex pivots of the cold-start path.
func TestWarmStartReducesPivots(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	p, err := topology.Tiers(topology.Tiers65(), rng)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := Solve(p, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Solve(p, 0, &Options{ColdStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Rounds > 1 && warm.LPIterations*2 > cold.LPIterations {
		t.Errorf("warm start did not halve the pivots: warm %d (rounds %d) vs cold %d (rounds %d)",
			warm.LPIterations, warm.Rounds, cold.LPIterations, cold.Rounds)
	}
}

// TestIterationLimitedMasterSurfacesAsError is the regression test for the
// silent zero-throughput bug: a master LP that hits its iteration limit
// before producing a certified solution must surface as ErrLPFailed, never
// as a nil-error Solution with throughput 0.
func TestIterationLimitedMasterSurfacesAsError(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p, err := topology.Random(topology.DefaultRandomConfig(10, 0.3), rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, cold := range []bool{false, true} {
		sol, err := Solve(p, 0, &Options{ColdStart: cold, LP: &lp.Options{MaxIterations: 1}})
		if err == nil {
			t.Fatalf("cold=%v: 1-pivot budget returned nil error (throughput %v)", cold, sol.Throughput)
		}
		if !errors.Is(err, ErrLPFailed) {
			t.Fatalf("cold=%v: error %v, want ErrLPFailed", cold, err)
		}
	}
	// Budgets large enough for a feasible phase-2 point but too small to
	// prove optimality must also never terminate silently — neither through
	// the no-violated-cuts exit nor through the gap-based exit (an
	// iteration-limited master value is not an upper bound, so the gap
	// certifies nothing).
	// (The first master of this platform needs ~13 pivots, so these budgets
	// always bite; larger budgets may legitimately certify the optimum.)
	for _, budget := range []int{5, 10} {
		sol, err := Solve(p, 0, &Options{LP: &lp.Options{MaxIterations: budget}})
		if err == nil {
			t.Fatalf("budget %d: uncertified master terminated with nil error (throughput %v)", budget, sol.Throughput)
		}
		if !errors.Is(err, ErrLPFailed) && !errors.Is(err, ErrNoConvergence) {
			t.Fatalf("budget %d: error %v, want ErrLPFailed or ErrNoConvergence", budget, err)
		}
	}
}

// TestUpperBoundDominatesThroughput: the final master value is an upper
// bound on the reported (achievable) throughput.
func TestUpperBoundDominatesThroughput(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 4; trial++ {
		p, err := topology.Random(topology.DefaultRandomConfig(10+trial*4, 0.2), rng)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := Solve(p, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Throughput > sol.UpperBound+1e-9*math.Max(1, sol.UpperBound) {
			t.Errorf("trial %d: throughput %v exceeds master upper bound %v", trial, sol.Throughput, sol.UpperBound)
		}
	}
}

func TestTiersPlatformSolvable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p, err := topology.Tiers(topology.Tiers30(), rng)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(p, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Throughput <= 0 {
		t.Fatalf("throughput = %v", sol.Throughput)
	}
	checkSolutionFeasible(t, p, 0, sol)
}

func TestThroughputUpperBound(t *testing.T) {
	// The optimal throughput can never exceed the inverse of the fastest
	// incoming link of the slowest-to-feed destination (a destination cannot
	// receive faster than its total incoming capacity allows), nor the
	// source's total outgoing capacity divided by ... (weaker). Check the
	// per-destination in-cut bound.
	rng := rand.New(rand.NewSource(77))
	p, err := topology.Random(topology.DefaultRandomConfig(10, 0.15), rng)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(p, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for w := 0; w < p.NumNodes(); w++ {
		if w == 0 {
			continue
		}
		// In-cut bound with occupancy: sum over in-links of rate is at most
		// 1 / min_t since sum(rate*T) <= 1 -> sum(rate) <= 1/min T.
		minT := math.Inf(1)
		for _, id := range p.InLinkIDs(w) {
			if tt := p.SliceTime(id); tt < minT {
				minT = tt
			}
		}
		if sol.Throughput > 1/minT+1e-6 {
			t.Fatalf("throughput %v exceeds in-cut bound %v of node %d", sol.Throughput, 1/minT, w)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o *Options
	if o.maxRounds() != 200 || o.tolerance() != 1e-7 || o.gapTolerance() != 1e-5 {
		t.Fatal("nil options should use defaults")
	}
	if lpo := o.lpOptions(); lpo == nil || lpo.MaxIterations <= 0 {
		t.Fatal("nil options should bound the master LP iterations")
	}
	o = &Options{MaxRounds: 3, Tolerance: 1e-5, GapTolerance: 1e-3}
	if o.maxRounds() != 3 || o.tolerance() != 1e-5 || o.gapTolerance() != 1e-3 {
		t.Fatal("explicit options ignored")
	}
}

func TestNoConvergenceWithTinyRoundLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	p, err := topology.Random(topology.DefaultRandomConfig(12, 0.3), rng)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Solve(p, 0, &Options{MaxRounds: 1})
	// With a single round the solver may or may not converge; it must not
	// return a nil error together with an infeasible solution. If it errors,
	// the error must be ErrNoConvergence.
	if err != nil && !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCutKey(t *testing.T) {
	if cutKey([]int{3, 1, 2}) != cutKey([]int{2, 3, 1}) {
		t.Fatal("cut keys should be order independent")
	}
	if cutKey([]int{1, 2}) == cutKey([]int{1, 3}) {
		t.Fatal("different cuts should have different keys")
	}
}
