package steady

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/lp"
	"repro/internal/maxflow"
	"repro/internal/platform"
)

// Session carries the cutting-plane state of one (platform, source) pair
// across platform mutations: the warm-started incremental master LP
// (lp.Incremental) and an accumulated pool of separated cuts, stored as
// node-partition sides so they can be re-materialized after the link set
// changes. The platform is shared with the caller, who mutates it through
// platform.ApplyDelta between Resolve calls; the session diffs the mutation
// journal to decide how much of the previous master survives:
//
//   - Tightening deltas (link degradations, link failures) only shrink the
//     LP's feasible region, so the master is reused: refreshed one-port
//     occupation rows and forced-zero rows for failed links are appended and
//     priced into the previous optimal basis with dual simplex pivots, and
//     every existing cut row remains valid.
//
//   - Loosening deltas (link speed-ups, link revivals, node crashes and
//     rejoins) invalidate rows that cannot be retracted from the tableau, so
//     the master is rebuilt — but seeded with the accumulated cut pool
//     (filtered to partitions that still separate an alive destination),
//     which typically lets the cutting-plane loop converge in one or two
//     rounds instead of re-separating every cut from scratch. (A node crash
//     is geometrically tightening too, but it removes destinations: a pooled
//     partition whose far side holds only dead nodes would force TP to zero,
//     so crashes must take the rebuild path where such cuts are filtered
//     out.)
//
// Options.ColdStart disables both reuses: every Resolve then rebuilds the
// master and re-solves it from scratch each round, which serves as the
// differential-testing oracle for the warm paths (the same pattern as the
// per-round cold start of Solve).
type Session struct {
	p      *platform.Platform
	source int
	opts   *Options

	// Master LP state. problem always holds the complete row set of the
	// current master; inc prices appended rows into the previous basis
	// (nil in ColdStart mode, where every round re-solves from scratch).
	// Options.Revised selects which warm solver backs the handle: the dense
	// incremental tableau (lp.Incremental, the oracle) or the revised
	// simplex with a maintained basis factorization (lp.Revised).
	problem *lp.Problem
	inc     master
	seen    map[string]bool
	cutSeq  int       // monotone row counter driving the anti-degeneracy RHS perturbation
	times   []float64 // per-link slice times priced into the current master

	// Cut pool: source-side node sets of every cut ever separated, deduped
	// by partition signature.
	pool     [][]bool
	poolKeys map[string]bool

	journalLen int
	started    bool
	stats      SessionStats
}

// SessionStats counts the work done by a session across Resolve calls.
type SessionStats struct {
	// Resolves is the number of Resolve calls.
	Resolves int
	// WarmResolves counts resolves that reused the previous master by
	// appending rows; Rebuilds counts resolves that rebuilt it (including
	// the first).
	WarmResolves int
	Rebuilds     int
	// Rounds is the cumulative number of cutting-plane iterations.
	Rounds int
	// WarmPivots and ColdPivots split the cumulative simplex pivots between
	// warm-started dual-simplex re-solves and cold solves from the slack
	// basis; ColdSolves counts the master solves that ran cold.
	WarmPivots int
	ColdPivots int
	ColdSolves int
	// PoolCuts is the current size of the cut pool; PoolReused is the
	// cumulative number of pooled cuts re-materialized into rebuilt masters.
	PoolCuts   int
	PoolReused int
}

// master is the warm-solver seam of the session: both lp.Incremental and
// lp.Revised satisfy it with identical warm/cold/cancellation semantics, so
// the cutting-plane loop and the pivot accounting are solver-agnostic.
type master interface {
	SolveContext(ctx context.Context) (*lp.Solution, error)
	Stats() lp.IncrementalStats
}

// NewSession returns a session over the platform. Nothing is solved until
// Resolve is called; the platform may already carry mutations.
func NewSession(p *platform.Platform, source int, opts *Options) *Session {
	return &Session{p: p, source: source, opts: opts, poolKeys: make(map[string]bool)}
}

// Stats returns the cumulative session counters.
func (s *Session) Stats() SessionStats { return s.stats }

// Resolve computes the optimal steady-state MTP throughput of the
// platform's current live state (alive nodes, live links, current costs).
// The first call solves from scratch; later calls reuse the master LP and
// cut pool as described on Session. Dead links report a zero edge rate and
// dead nodes are neither destinations nor relays.
func (s *Session) Resolve() (*Solution, error) {
	return s.ResolveContext(context.Background())
}

// ResolveContext is Resolve with cooperative cancellation: the context is
// threaded into every master LP solve and checked between cutting-plane
// rounds. A canceled resolve returns an error wrapping lp.ErrCanceled and
// leaves the session consistent but cold — the partially pivoted master is
// dropped (never reused as a warm basis) while the cut pool survives, so the
// next Resolve simply rebuilds from the pool exactly as after a loosening
// mutation. A nil ctx is treated as context.Background().
func (s *Session) ResolveContext(ctx context.Context) (*Solution, error) {
	s.stats.Resolves++
	p := s.p
	if err := p.ValidateLive(s.source); err != nil {
		return nil, err
	}
	deltas := p.JournalSince(s.journalLen)
	s.journalLen = p.JournalLen()
	if p.NumAliveNodes() == 1 {
		// A lone alive source broadcasts at unbounded rate; drop the master
		// so a later rejoin rebuilds from the pool.
		s.inc, s.problem, s.started = nil, nil, false
		return &Solution{Throughput: math.Inf(1), UpperBound: math.Inf(1), EdgeRate: make([]float64, p.NumLinks())}, nil
	}

	warm := s.started && s.inc != nil && !s.opts.coldStart()
	for _, d := range deltas {
		if !d.Tightening() {
			warm = false
			break
		}
	}
	if warm {
		sol, err := s.warmResolve(ctx, deltas)
		if err == nil {
			s.stats.WarmResolves++
			return sol, nil
		}
		if errors.Is(err, lp.ErrCanceled) {
			// The caller's deadline expired mid-solve: do NOT fall through to
			// the rebuild fallback — a full cold re-solve on an expired budget
			// defeats the point of canceling. runLoop already marked the
			// session cold.
			return nil, err
		}
		// The warm master could not be re-solved (iteration limit, numerical
		// trouble): rebuild once from the pool instead of failing.
	}
	return s.rebuild(ctx)
}

// warmResolve appends the rows induced by tightening deltas to the current
// master and re-runs the cutting-plane loop on the warm handle.
func (s *Session) warmResolve(ctx context.Context, deltas []platform.Delta) (*Solution, error) {
	p := s.p
	touched := make(map[int]bool) // nodes whose occupation rows must be refreshed
	for _, d := range deltas {
		switch d.Kind {
		case platform.DeltaScaleLink:
			s.times[d.Link] = p.SliceTime(d.Link)
			if p.LinkLive(d.Link) {
				l := p.Link(d.Link)
				touched[l.From] = true
				touched[l.To] = true
			}
		case platform.DeltaLinkDown:
			// Force the failed link's rate to zero. Every other row of the
			// master (older occupation rows included) stays valid.
			s.problem.AddSparseConstraint([]lp.Term{{Var: d.Link, Coeff: 1}}, lp.LE, 0)
		}
	}
	// Refresh the one-port occupation rows of the endpoints of degraded
	// links. The old rows had pointwise smaller coefficients, so they remain
	// valid (dominated) and only the appended rows bind.
	for u := 0; u < p.NumNodes(); u++ {
		if !touched[u] || !p.NodeAlive(u) {
			continue
		}
		s.appendOccupationRows(u)
	}
	return s.runLoop(ctx)
}

// rebuild constructs a fresh master over the platform's current live state,
// seeded with the initial cuts and the still-valid part of the cut pool,
// and runs the cutting-plane loop on it.
func (s *Session) rebuild(ctx context.Context) (*Solution, error) {
	s.stats.Rebuilds++
	p := s.p
	e := p.NumLinks()
	tpVar := e
	s.problem = lp.NewProblem(e + 1)
	s.problem.SetObjectiveCoeff(tpVar, 1)
	s.seen = make(map[string]bool)
	// The RHS perturbation restarts with the fresh master so that its total
	// magnitude stays proportional to the rows actually present, not to the
	// session's lifetime.
	s.cutSeq = 0
	s.times = make([]float64, e)
	for id := 0; id < e; id++ {
		s.times[id] = p.SliceTime(id)
	}
	for u := 0; u < p.NumNodes(); u++ {
		if p.NodeAlive(u) {
			s.appendOccupationRows(u)
		}
	}

	// Initial cuts: the live out-cut of the source and the live in-cut of
	// every alive destination; they bound TP so the first master is not
	// unbounded. Their partitions enter the pool like separated cuts.
	n := p.NumNodes()
	srcSide := make([]bool, n)
	srcSide[s.source] = true
	s.addCut(s.crossingLiveLinks(srcSide), srcSide)
	for w := 0; w < n; w++ {
		if w == s.source || !p.NodeAlive(w) {
			continue
		}
		side := make([]bool, n)
		for u := 0; u < n; u++ {
			side[u] = u != w
		}
		s.addCut(s.crossingLiveLinks(side), side)
	}

	// Re-materialize the pooled partitions that still separate at least one
	// alive destination from the source.
	for _, side := range s.pool {
		valid := false
		for w := 0; w < n; w++ {
			if !side[w] && p.NodeAlive(w) {
				valid = true
				break
			}
		}
		if !valid {
			continue
		}
		if s.appendCutRow(s.crossingLiveLinks(side)) {
			s.stats.PoolReused++
		}
	}

	switch {
	case s.opts.coldStart():
		s.inc = nil
	case s.opts.revised():
		s.inc = lp.NewRevised(s.problem, s.opts.lpOptions())
	default:
		s.inc = lp.NewIncremental(s.problem, s.opts.lpOptions())
	}
	s.started = true
	return s.runLoop(ctx)
}

// appendOccupationRows appends the node's current one-port occupation rows
// (incoming and outgoing, over live links at current slice times).
func (s *Session) appendOccupationRows(u int) {
	p := s.p
	for _, ids := range [][]int{p.InLinkIDs(u), p.OutLinkIDs(u)} {
		terms := make([]lp.Term, 0, len(ids))
		for _, id := range ids {
			if p.LinkLive(id) {
				terms = append(terms, lp.Term{Var: id, Coeff: s.times[id]})
			}
		}
		if len(terms) > 0 {
			s.problem.AddSparseConstraint(terms, lp.LE, 1)
		}
	}
}

// crossingLiveLinks returns the live links crossing the partition from the
// source side to the far side, in link-ID order.
func (s *Session) crossingLiveLinks(side []bool) []int {
	p := s.p
	var ids []int
	for id := 0; id < p.NumLinks(); id++ {
		l := p.Link(id)
		if side[l.From] && !side[l.To] && p.LinkLive(id) {
			ids = append(ids, id)
		}
	}
	return ids
}

// cutPerturbation is the anti-degeneracy right-hand-side perturbation of the
// cut rows: with dozens of cuts sharing an exact zero RHS the master becomes
// massively degenerate and the simplex stalls; a distinct tiny positive RHS
// per row (standard trick) changes the optimum by less than 1e-6, far below
// the accuracy at which relative performances are reported.
const cutPerturbation = 1e-9

// appendCutRow appends the master row TP - Σ_{e in cut} n_e <= ε for the
// given live edge set, unless an identical row is already present. It
// reports whether a row was added.
func (s *Session) appendCutRow(cutLinks []int) bool {
	if len(cutLinks) == 0 {
		return false
	}
	key := cutKey(cutLinks)
	if s.seen[key] {
		return false
	}
	s.seen[key] = true
	s.cutSeq++
	tpVar := s.p.NumLinks()
	terms := make([]lp.Term, 0, len(cutLinks)+1)
	terms = append(terms, lp.Term{Var: tpVar, Coeff: 1})
	for _, id := range cutLinks {
		terms = append(terms, lp.Term{Var: id, Coeff: -1})
	}
	s.problem.AddSparseConstraint(terms, lp.LE, cutPerturbation*float64(s.cutSeq))
	return true
}

// addCut appends a cut row for the live edge set and records its partition
// in the pool for future rebuilds. It reports whether a new row was added.
func (s *Session) addCut(cutLinks []int, side []bool) bool {
	if side != nil {
		key := sideKey(side)
		if !s.poolKeys[key] {
			s.poolKeys[key] = true
			s.pool = append(s.pool, append([]bool(nil), side...))
		}
	}
	return s.appendCutRow(cutLinks)
}

// sideKey builds the canonical signature of a partition.
func sideKey(side []bool) string {
	var b strings.Builder
	b.Grow(len(side))
	for _, v := range side {
		if v {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	return b.String()
}

// runLoop runs the cutting-plane loop on the session's current master: solve
// the master, separate violated cuts with one max-flow per alive
// destination, append them, repeat until no cut is violated or the
// upper/lower-bound gap closes. The returned Solution reports the pivots and
// master solves of this Resolve only.
func (s *Session) runLoop(ctx context.Context) (*Solution, error) {
	p, source, opts := s.p, s.source, s.opts
	n, e := p.NumNodes(), p.NumLinks()
	tpVar := e
	lpOpts := opts.lpOptions()

	// Separation network: edge IDs coincide with link IDs; dead links keep
	// zero capacity.
	nw := maxflow.New(n)
	for id := 0; id < e; id++ {
		l := p.Link(id)
		nw.AddEdge(l.From, l.To, 0)
	}

	sol := &Solution{EdgeRate: make([]float64, e)}
	tol := opts.tolerance()
	var incStart lp.IncrementalStats
	if s.inc != nil {
		incStart = s.inc.Stats()
	}
	coldRounds := 0
	solveMaster := func() (*lp.Solution, error) {
		start := time.Now()
		defer func() { sol.LPWallNanos += time.Since(start).Nanoseconds() }()
		if s.inc != nil {
			return s.inc.SolveContext(ctx)
		}
		coldRounds++
		return lp.SolveContext(ctx, s.problem, lpOpts)
	}
	// dropMaster marks the session cold after a canceled solve: the
	// partially pivoted master must never seed a warm basis, but the cut
	// pool stays valid and seeds the next rebuild.
	dropMaster := func() {
		s.inc, s.problem, s.started = nil, nil, false
	}
	finalize := func() {
		if s.inc != nil {
			st := s.inc.Stats()
			sol.WarmPivots = st.WarmPivots - incStart.WarmPivots
			sol.ColdPivots = st.ColdPivots - incStart.ColdPivots
			sol.ColdSolves = st.ColdSolves - incStart.ColdSolves
		} else {
			sol.ColdPivots = sol.LPIterations
			sol.ColdSolves = coldRounds
		}
		s.stats.Rounds += sol.Rounds
		s.stats.WarmPivots += sol.WarmPivots
		s.stats.ColdPivots += sol.ColdPivots
		s.stats.ColdSolves += sol.ColdSolves
		s.stats.PoolCuts = len(s.pool)
	}

	for round := 1; round <= opts.maxRounds(); round++ {
		if ctx != nil && ctx.Err() != nil {
			dropMaster()
			finalize()
			return nil, fmt.Errorf("steady: resolve canceled: %w: %v", lp.ErrCanceled, ctx.Err())
		}
		sol.Rounds = round
		lpSol, err := solveMaster()
		if err != nil {
			finalize()
			if errors.Is(err, lp.ErrCanceled) {
				// Wrap with %w so callers can still match lp.ErrCanceled;
				// deliberately NOT ErrLPFailed — nothing failed, the caller's
				// deadline expired.
				dropMaster()
				return nil, fmt.Errorf("steady: resolve canceled: %w", err)
			}
			return nil, fmt.Errorf("%w: %v", ErrLPFailed, err)
		}
		switch {
		case lpSol.Status == lp.Optimal:
			// Normal case.
		case lpSol.Status == lp.IterationLimit && lpSol.Feasible:
			// The simplex ran out of pivots on a degenerate master but still
			// holds a primal feasible point, so the edge rates are usable for
			// cut separation. Keep going — but its objective value is NOT an
			// upper bound on the optimum, so both exits below refuse to
			// terminate on such a round (the next one re-solves with a fresh
			// budget; a master that never reaches optimality ends in
			// ErrNoConvergence, not a silently under-reported throughput).
		case lpSol.Status == lp.IterationLimit:
			// The limit hit before any feasible basis existed (a phase-1
			// limit, or an aborted warm re-solve). X is the all-zero vector:
			// treating it as a solution would make every max-flow zero and
			// silently report "throughput 0, converged".
			finalize()
			return nil, fmt.Errorf("%w: simplex iteration limit in phase %d left no feasible master solution", ErrLPFailed, lpSol.Phase)
		default:
			finalize()
			return nil, fmt.Errorf("%w: status %v", ErrLPFailed, lpSol.Status)
		}
		sol.LPIterations += lpSol.Iterations
		tp := lpSol.X[tpVar]
		copy(sol.EdgeRate, lpSol.X[:e])
		for id := 0; id < e; id++ {
			if !p.LinkLive(id) {
				sol.EdgeRate[id] = 0
			}
		}
		sol.Throughput = tp
		sol.UpperBound = tp

		// Separate violated cuts with one max-flow per alive destination.
		// The smallest destination max-flow is the throughput the current
		// edge rates actually support, i.e. a feasible lower bound on the
		// optimum, while the master value tp is an upper bound.
		violated := 0
		for id := 0; id < e; id++ {
			if p.LinkLive(id) {
				nw.SetCapacity(id, lpSol.X[id])
			} else {
				nw.SetCapacity(id, 0)
			}
		}
		threshold := tp - tol*math.Max(1, tp)
		supported := math.Inf(1)
		for w := 0; w < n; w++ {
			if w == source || !p.NodeAlive(w) {
				continue
			}
			nw.Reset()
			flow := nw.MaxFlow(source, w)
			if flow < supported {
				supported = flow
			}
			if flow >= threshold {
				continue
			}
			// Add both canonical minimum cuts (source side and sink side) —
			// they are usually different, and generating two constraints per
			// violated destination roughly halves the number of master
			// re-solves on hierarchical platforms.
			srcSide := nw.MinCutSourceSide(source)
			if s.addCut(s.crossingLiveLinks(srcSide), srcSide) {
				violated++
			}
			sinkSide := nw.MinCutSinkSide(w)
			if s.addCut(s.crossingLiveLinks(sinkSide), sinkSide) {
				violated++
			}
		}
		sol.Cuts = len(s.seen)
		if violated == 0 {
			if lpSol.Status != lp.Optimal {
				// No cut separates the current point, but the master stopped
				// at its iteration limit, so tp is just some feasible value —
				// possibly far below the optimum (in the degenerate case, 0).
				// Refuse to report it as the converged throughput.
				finalize()
				return nil, fmt.Errorf("%w: master LP hit its iteration limit before optimality; throughput %v cannot be certified", ErrLPFailed, tp)
			}
			finalize()
			return sol, nil
		}
		if lpSol.Status == lp.Optimal && tp-supported <= opts.gapTolerance()*math.Max(1, tp) {
			// The current rates already support a throughput within the gap
			// tolerance of the upper bound; report the achievable value. The
			// exit requires an Optimal master: on an iteration-limited round
			// tp is just some feasible value, so a small (or negative) gap
			// would certify nothing.
			sol.Throughput = supported
			finalize()
			return sol, nil
		}
	}
	finalize()
	return sol, fmt.Errorf("%w after %d rounds", ErrNoConvergence, sol.Rounds)
}
