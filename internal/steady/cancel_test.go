package steady

import (
	"context"
	"errors"
	"testing"

	"repro/internal/lp"
	"repro/internal/platform"
	"repro/internal/topology"
)

// TestResolveContextCanceledThenResolves cancels a session resolve and
// verifies both halves of the cancellation contract: the error wraps
// lp.ErrCanceled (not ErrLPFailed, so callers can tell a deadline from
// solver trouble), and the session recovers — the next uncanceled resolve
// runs cold from a consistent state and matches the cold oracle.
func TestResolveContextCanceledThenResolves(t *testing.T) {
	p, err := topology.Random(topology.DefaultRandomConfig(12, 0.3), topology.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(p, 0, sessionOpts())

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = s.ResolveContext(ctx)
	if !errors.Is(err, lp.ErrCanceled) {
		t.Fatalf("canceled resolve = %v, want lp.ErrCanceled", err)
	}
	if errors.Is(err, ErrLPFailed) {
		t.Fatalf("canceled resolve %v must not read as ErrLPFailed", err)
	}

	sol, err := s.ResolveContext(context.Background())
	if err != nil {
		t.Fatalf("resolve after cancellation: %v", err)
	}
	checkAgainstColdOracle(t, p, 0, sol, "post-cancel")

	// The session must keep working across a mutation too (warm or rebuilt
	// — correctness is what matters after a cancellation).
	if _, err := p.ApplyDelta(platform.Delta{Kind: platform.DeltaScaleLink, Link: 0, Factor: 0.5}); err != nil {
		t.Fatal(err)
	}
	sol, err = s.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	checkAgainstColdOracle(t, p, 0, sol, "post-cancel mutation")
}

// TestResolveContextMidStreamCancel cancels between two resolves of a live
// session: the canceled warm attempt must not poison the accumulated cut
// pool — the follow-up resolve rebuilds and stays correct.
func TestResolveContextMidStreamCancel(t *testing.T) {
	p, err := topology.Random(topology.DefaultRandomConfig(10, 0.35), topology.NewRNG(23))
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(p, 0, sessionOpts())
	if _, err := s.Resolve(); err != nil {
		t.Fatal(err)
	}

	if _, err := p.ApplyDelta(platform.Delta{Kind: platform.DeltaScaleLink, Link: 1, Factor: 0.25}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ResolveContext(ctx); !errors.Is(err, lp.ErrCanceled) {
		t.Fatalf("canceled mid-stream resolve = %v, want lp.ErrCanceled", err)
	}

	sol, err := s.Resolve()
	if err != nil {
		t.Fatalf("resolve after mid-stream cancellation: %v", err)
	}
	checkAgainstColdOracle(t, p, 0, sol, "post-mid-stream-cancel")
}
