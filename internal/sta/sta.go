package sta

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/platform"
)

// Result is a tree built by an STA heuristic together with its schedule.
type Result struct {
	// Tree is the broadcast tree (an out-arborescence rooted at the source).
	Tree *platform.Tree
	// Makespan is the completion time of the greedy schedule that built the
	// tree (the time the last node receives the whole message).
	Makespan float64
	// Completion[v] is the time node v receives the message (0 for the
	// source).
	Completion []float64
}

// Errors returned by the heuristics.
var ErrNotBroadcastable = errors.New("sta: platform is not broadcastable from the source")

// Heuristic identifies an STA tree-construction strategy.
type Heuristic int

const (
	// FastestNodeFirst (FNF) repeatedly performs the transfer that completes
	// earliest: among all pairs (u holding the message, v not holding it),
	// it picks the one minimizing max(free_u, recv_u) + T(u,v)(size), i.e.
	// it favours fast senders becoming available early — the earliest
	// completion time rule of Banikazemi et al.
	FastestNodeFirst Heuristic = iota
	// FastestEdgeFirst (FEF) repeatedly uses the fastest crossing link
	// (smallest T(u,v)(size)) regardless of when its sender becomes free.
	FastestEdgeFirst
)

// String returns a short name for the heuristic.
func (h Heuristic) String() string {
	switch h {
	case FastestNodeFirst:
		return "fastest-node-first"
	case FastestEdgeFirst:
		return "fastest-edge-first"
	default:
		return fmt.Sprintf("Heuristic(%d)", int(h))
	}
}

// Build constructs an STA broadcast tree for a message of the given total
// size with the selected heuristic and returns the tree together with the
// greedy schedule's makespan.
func Build(p *platform.Platform, source int, totalSize float64, h Heuristic) (*Result, error) {
	if totalSize <= 0 || math.IsNaN(totalSize) || math.IsInf(totalSize, 0) {
		return nil, fmt.Errorf("sta: invalid message size %v", totalSize)
	}
	if err := p.Validate(source); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNotBroadcastable, err)
	}
	n := p.NumNodes()
	tree := platform.NewTree(n, source)
	completion := make([]float64, n) // time the node holds the message
	free := make([]float64, n)       // time the node's send port becomes free
	inTree := make([]bool, n)
	inTree[source] = true

	linkTime := func(id int) float64 { return p.Link(id).Cost.Time(totalSize) }

	for added := 1; added < n; added++ {
		bestLink := -1
		bestFinish := math.Inf(1)
		bestKey := math.Inf(1)
		for u := 0; u < n; u++ {
			if !inTree[u] {
				continue
			}
			start := math.Max(free[u], completion[u])
			for _, id := range p.OutLinkIDs(u) {
				v := p.Link(id).To
				if inTree[v] {
					continue
				}
				finish := start + linkTime(id)
				var key float64
				switch h {
				case FastestNodeFirst:
					key = finish
				case FastestEdgeFirst:
					key = linkTime(id)
				default:
					return nil, fmt.Errorf("sta: unknown heuristic %v", h)
				}
				if key < bestKey || (key == bestKey && bestLink >= 0 && finish < bestFinish) {
					bestKey = key
					bestFinish = finish
					bestLink = id
				}
			}
		}
		if bestLink < 0 {
			return nil, ErrNotBroadcastable
		}
		l := p.Link(bestLink)
		tree.SetParent(l.To, l.From, bestLink)
		inTree[l.To] = true
		completion[l.To] = bestFinish
		free[l.From] = bestFinish
		free[l.To] = bestFinish
	}
	if err := tree.Validate(p); err != nil {
		return nil, err
	}
	makespan := 0.0
	for v := 0; v < n; v++ {
		if completion[v] > makespan {
			makespan = completion[v]
		}
	}
	return &Result{Tree: tree, Makespan: makespan, Completion: completion}, nil
}
