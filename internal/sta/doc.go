// Package sta implements heuristics for the STA problem (Single Tree,
// Atomic): broadcasting the whole message at once along a spanning tree and
// minimizing the makespan. These are the classical baselines the paper's
// related-work section discusses — Fastest Node First [Banikazemi et al.]
// and Fastest Edge First [Bhat et al.] — and are provided as an extension so
// the repository covers all three regimes of Table 1.
//
// Both heuristics are greedy constructions under the bidirectional one-port
// model: a node that holds the message forwards it to one destination at a
// time, each transfer taking the full link occupation for the whole message.
package sta
