package sta

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/throughput"
	"repro/internal/topology"
)

func TestHeuristicString(t *testing.T) {
	if FastestNodeFirst.String() == "" || FastestEdgeFirst.String() == "" || Heuristic(7).String() == "" {
		t.Fatal("empty heuristic names")
	}
}

func TestBuildRejectsBadInput(t *testing.T) {
	p := platform.New(2)
	p.MustAddLink(0, 1, model.Linear(1))
	if _, err := Build(p, 0, 0, FastestNodeFirst); err == nil {
		t.Fatal("zero size accepted")
	}
	if _, err := Build(p, 0, math.NaN(), FastestNodeFirst); err == nil {
		t.Fatal("NaN size accepted")
	}
	q := platform.New(3)
	q.MustAddLink(0, 1, model.Linear(1))
	if _, err := Build(q, 0, 1, FastestNodeFirst); err == nil {
		t.Fatal("unreachable platform accepted")
	}
	if _, err := Build(p, 0, 1, Heuristic(9)); err == nil {
		t.Fatal("unknown heuristic accepted")
	}
}

func TestFNFOnHomogeneousStar(t *testing.T) {
	// Star with 3 identical leaves, unit message: the source sends three
	// times in a row; makespan 3.
	p := platform.New(4)
	for v := 1; v < 4; v++ {
		p.MustAddLink(0, v, model.Linear(1))
	}
	res, err := Build(p, 0, 1, FastestNodeFirst)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-3) > 1e-9 {
		t.Fatalf("makespan = %v, want 3", res.Makespan)
	}
	if err := res.Tree.Validate(p); err != nil {
		t.Fatal(err)
	}
}

func TestFNFUsesRelays(t *testing.T) {
	// Complete homogeneous graph with 4 nodes and unit transfer times: the
	// binomial schedule (recursive doubling) reaches everyone in 2 steps,
	// which the earliest-completion greedy finds: 0->1 at time 1, then 0->2
	// and 1->3 in parallel at time 2.
	n := 4
	p := platform.New(n)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v {
				p.MustAddLink(u, v, model.Linear(1))
			}
		}
	}
	res, err := Build(p, 0, 1, FastestNodeFirst)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-2) > 1e-9 {
		t.Fatalf("makespan = %v, want 2 (recursive doubling)", res.Makespan)
	}
}

func TestFNFPrefersFastSenders(t *testing.T) {
	// Source 0 has a fast link to node 1 and slow links to nodes 2, 3.
	// Node 1 has fast links to 2 and 3. FNF should route through node 1.
	p := platform.New(4)
	p.MustAddLink(0, 1, model.Linear(1))
	p.MustAddLink(0, 2, model.Linear(10))
	p.MustAddLink(0, 3, model.Linear(10))
	p.MustAddLink(1, 2, model.Linear(1))
	p.MustAddLink(1, 3, model.Linear(1))
	res, err := Build(p, 0, 1, FastestNodeFirst)
	if err != nil {
		t.Fatal(err)
	}
	// 0->1 at 1, 1->2 at 2, 1->3 at 3 while 0->2 or 0->3 would cost 11.
	if math.Abs(res.Makespan-3) > 1e-9 {
		t.Fatalf("makespan = %v, want 3", res.Makespan)
	}
	if res.Tree.OutDegree(1) != 2 {
		t.Fatalf("node 1 should relay to both leaves, tree parents = %v", res.Tree.Parent)
	}
}

func TestFEFPicksFastestEdges(t *testing.T) {
	p := platform.New(3)
	p.MustAddLink(0, 1, model.Linear(2))
	p.MustAddLink(0, 2, model.Linear(3))
	p.MustAddLink(1, 2, model.Linear(1))
	res, err := Build(p, 0, 1, FastestEdgeFirst)
	if err != nil {
		t.Fatal(err)
	}
	// FEF first adds 0->1 (fastest crossing edge: 2), then 1->2 (1).
	if res.Tree.Parent[2] != 1 {
		t.Fatalf("node 2 parent = %d, want 1", res.Tree.Parent[2])
	}
	if math.Abs(res.Makespan-3) > 1e-9 {
		t.Fatalf("makespan = %v, want 3", res.Makespan)
	}
}

func TestMakespanConsistentWithSTAEvaluation(t *testing.T) {
	// The greedy's recorded makespan must match re-evaluating its tree with
	// throughput.STAMakespan when children are served in the same order...
	// STAMakespan serves children in index order, which can only be equal or
	// better-ordered than the greedy order, so it is a lower bound; and the
	// completion times must be consistent (makespan >= STA evaluation is not
	// guaranteed either way, so check they are within the sum of link times).
	rng := rand.New(rand.NewSource(8))
	p, err := topology.Random(topology.DefaultRandomConfig(12, 0.25), rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range []Heuristic{FastestNodeFirst, FastestEdgeFirst} {
		res, err := Build(p, 0, 4, h)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan <= 0 {
			t.Fatalf("%v: non-positive makespan", h)
		}
		eval := throughput.STAMakespan(p, res.Tree, 4)
		if eval <= 0 {
			t.Fatalf("%v: non-positive evaluated makespan", h)
		}
		// Both measure a broadcast along the same tree; they may differ by
		// child ordering but never by more than a factor equal to the tree's
		// maximum out-degree.
		maxDeg := 1
		for v := 0; v < p.NumNodes(); v++ {
			if d := res.Tree.OutDegree(v); d > maxDeg {
				maxDeg = d
			}
		}
		if eval > res.Makespan*float64(maxDeg) || res.Makespan > eval*float64(maxDeg) {
			t.Fatalf("%v: makespan %v and evaluation %v inconsistent", h, res.Makespan, eval)
		}
	}
}

func TestFNFNotWorseThanFEFOnAverage(t *testing.T) {
	// FNF takes sender availability into account and should not lose to FEF
	// in aggregate.
	var fnf, fef float64
	for seed := int64(0); seed < 10; seed++ {
		p, err := topology.Random(topology.DefaultRandomConfig(15, 0.2), rand.New(rand.NewSource(400+seed)))
		if err != nil {
			t.Fatal(err)
		}
		a, err := Build(p, 0, 8, FastestNodeFirst)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Build(p, 0, 8, FastestEdgeFirst)
		if err != nil {
			t.Fatal(err)
		}
		fnf += a.Makespan
		fef += b.Makespan
	}
	if fnf > fef {
		t.Fatalf("FNF aggregate makespan %v should not exceed FEF %v", fnf, fef)
	}
}

func TestCompletionTimes(t *testing.T) {
	p := platform.New(3)
	p.MustAddLink(0, 1, model.Linear(2))
	p.MustAddLink(1, 2, model.Linear(3))
	res, err := Build(p, 0, 1, FastestNodeFirst)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completion[0] != 0 || math.Abs(res.Completion[1]-2) > 1e-9 || math.Abs(res.Completion[2]-5) > 1e-9 {
		t.Fatalf("completion times = %v", res.Completion)
	}
}
