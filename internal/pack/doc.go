// Package pack decomposes the optimal edge rates of a steady-state
// broadcast solution into an explicit weighted packing of spanning
// broadcast trees — the primal witness of the paper's Section 4.1 theorem
// that the LP throughput TP is achieved by a convex combination of
// broadcast trees, not by any single tree.
//
// The decomposition runs in two deterministic phases:
//
//  1. Peel: greedy flow-style extraction. A max-bottleneck arborescence
//     (Prim-style widest-path growth, ties broken by smallest link ID) is
//     repeatedly peeled out of the residual rate graph with weight equal to
//     its bottleneck residual capacity, saturating at least one support
//     edge per round, until the residual support no longer carries an
//     arborescence or TP is exhausted.
//
//  2. Certify: restricted-master column generation. The peeled trees seed
//     a master LP — maximize the total tree weight subject to the summed
//     per-edge weights staying within the solution's edge rates n(u,v) —
//     and the master's optimal duals price a min-cost arborescence
//     (Chu-Liu/Edmonds, deterministic tie-breaks) per round. A tree whose
//     dual cost is below 1 enters as a new column; when none exists, LP
//     duality certifies the packing value is the maximum achievable within
//     the rate graph, which Edmonds' arborescence-packing theorem puts at
//     min-cut value — i.e. at TP itself.
//
// The result is a steady.Packing whose combined rate matches the LP
// throughput within solver tolerance (far inside the 1e-6 contract pinned
// by the differential tests) while never exceeding any per-edge rate or
// one-port occupation bound the LP certified.
//
// Everything in this package is deterministic: no wall clock, no
// randomness, no map-order dependence (enforced by the detrand analyzer —
// the package is in bcast-lint's deterministic scope). Equal inputs produce
// byte-identical packings on every run and worker count.
package pack
