package pack_test

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/model"
	"repro/internal/pack"
	"repro/internal/platform"
	"repro/internal/steady"
)

// fuzzPlatform derives a small deterministic platform from the input bytes:
// a bidirectional ring (always broadcastable from any node) plus a few
// chords, with link costs driven by the bytes. It mirrors the pattern of
// internal/platform's fuzz harness so corpus entries stress the same shape
// space.
func fuzzPlatform(data []byte) (*platform.Platform, int) {
	n := 4
	if len(data) > 0 {
		n = 4 + int(data[0])%6 // 4..9 nodes
		data = data[1:]
	}
	take := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	p := platform.New(n)
	for u := 0; u < n; u++ {
		cost := model.AffineCost{PerUnit: 0.25 + float64(take())/64}
		p.MustAddLink(u, (u+1)%n, cost)
		p.MustAddLink((u+1)%n, u, cost)
	}
	chords := int(take()) % 5
	for c := 0; c < chords; c++ {
		from := int(take()) % n
		to := int(take()) % n
		if from == to {
			continue
		}
		p.MustAddLink(from, to, model.AffineCost{Latency: float64(take()) / 256, PerUnit: 0.5 + float64(take())/64})
	}
	source := int(take()) % n
	return p, source
}

// FuzzTreePacking solves every derived platform and decomposes the optimal
// edge rates, checking the full packing contract: validity of every tree,
// positive weights summing to the achieved throughput, per-edge and
// one-port capacity bounds, the 1e-6 gap to the LP optimum, and bitwise
// determinism across repeated decompositions.
func FuzzTreePacking(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("steady-state broadcast"))
	f.Add([]byte{3, 10, 20, 30, 40, 2, 1, 3, 9, 200, 100, 50})
	f.Add([]byte{5, 0, 0, 0, 0, 0, 0, 0, 4, 1, 2, 64, 128, 2, 3, 16, 32})
	f.Add([]byte{1, 255, 254, 253, 252, 251, 250, 3, 0, 2, 8, 8, 1, 3, 99, 7})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, source := fuzzPlatform(data)
		sol, err := steady.Solve(p, source, nil)
		if err != nil {
			// The ring keeps every platform broadcastable; a solver failure
			// here is a finding, not an invalid input.
			t.Fatalf("solve: %v", err)
		}
		pk, err := pack.Decompose(p, source, sol, nil)
		if err != nil {
			t.Fatalf("decompose: %v", err)
		}
		tol := 1e-6 * math.Max(1, sol.Throughput)
		if err := pk.Validate(p, sol.EdgeRate, tol); err != nil {
			t.Fatalf("invalid packing: %v", err)
		}
		if gap := sol.Throughput - pk.Throughput; math.Abs(gap) > tol {
			t.Fatalf("packed %v vs LP %v (gap %v)", pk.Throughput, sol.Throughput, gap)
		}
		first, err := json.Marshal(pk)
		if err != nil {
			t.Fatal(err)
		}
		again, err := pack.Decompose(p, source, sol, nil)
		if err != nil {
			t.Fatalf("second decompose: %v", err)
		}
		second, err := json.Marshal(again)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(first, second) {
			t.Fatal("decomposition is not deterministic: repeated runs differ")
		}
	})
}
