package pack_test

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/heuristics"
	"repro/internal/pack"
	"repro/internal/platform"
	"repro/internal/scenarios"
	"repro/internal/steady"
	"repro/internal/throughput"
)

// packTol is the contract bar pinned by ISSUE acceptance: the packed
// throughput matches the LP optimum within 1e-6 (scaled by the throughput
// magnitude for platforms broadcasting hundreds of slices per unit).
func packTol(tp float64) float64 { return 1e-6 * math.Max(1, math.Abs(tp)) }

func solveAndPack(t *testing.T, p *platform.Platform, source int, opts *pack.Options) (*steady.Solution, *steady.Packing) {
	t.Helper()
	sol, err := steady.Solve(p, source, nil)
	if err != nil {
		t.Fatalf("solve: %v", err)
	}
	pk, err := pack.Decompose(p, source, sol, opts)
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	return sol, pk
}

// TestPackingInvariantsRegistryWide is the property tier over the whole
// scenario registry at every default size: each packed tree spans the alive
// nodes over live links rooted at the source, weights are strictly positive
// and sum to the packed throughput, per-link packed rates stay within the
// LP edge rates, one-port occupations stay within 1, and the packed
// throughput reaches the LP optimum within 1e-6.
func TestPackingInvariantsRegistryWide(t *testing.T) {
	for _, s := range scenarios.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			for _, n := range s.DefaultSizes {
				p, err := s.Generate(n, 42)
				if err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				sol, pk := solveAndPack(t, p, 0, nil)
				if err := pk.Validate(p, sol.EdgeRate, packTol(sol.Throughput)); err != nil {
					t.Errorf("n=%d: %v", n, err)
				}
				if gap := sol.Throughput - pk.Throughput; math.Abs(gap) > packTol(sol.Throughput) {
					t.Errorf("n=%d: packed %v vs LP optimum %v (gap %v, %d trees)",
						n, pk.Throughput, sol.Throughput, gap, pk.NumTrees())
				}
				if pk.Source != 0 || pk.LPThroughput != sol.Throughput {
					t.Errorf("n=%d: packing records source=%d lp=%v, want 0/%v", n, pk.Source, pk.LPThroughput, sol.Throughput)
				}
				if pk.Truncated {
					t.Errorf("n=%d: uncapped decomposition reported Truncated", n)
				}
				if sol.Packing != pk {
					t.Errorf("n=%d: Decompose did not attach the packing to the solution", n)
				}
			}
		})
	}
}

// TestPackedBeatsEverySingleTree is the registry-wide differential: the
// k-tree packing throughput must dominate every single-tree one-port
// heuristic (the paper's core claim — one tree cannot achieve TP in
// general, a weighted forest always does).
func TestPackedBeatsEverySingleTree(t *testing.T) {
	for _, s := range scenarios.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			for _, n := range s.DefaultSizes {
				p, err := s.Generate(n, 42)
				if err != nil {
					t.Fatalf("n=%d: %v", n, err)
				}
				sol, pk := solveAndPack(t, p, 0, nil)
				bestName, best := "", 0.0
				for _, name := range heuristics.OnePortNames() {
					b, err := heuristics.ByNameWithRates(name, sol.EdgeRate)
					if err != nil {
						t.Fatal(err)
					}
					tree, err := b.Build(p, 0)
					if err != nil {
						t.Fatalf("n=%d: %s: %v", n, name, err)
					}
					if tp := throughput.OnePortThroughput(p, tree); tp > best {
						bestName, best = name, tp
					}
				}
				if pk.Throughput < best-packTol(best) {
					t.Errorf("n=%d: packed %v below best single tree %v (%s)", n, pk.Throughput, best, bestName)
				}
			}
		})
	}
}

// TestWarmRepackAfterChurnMatchesCold drives 50 churn events through a warm
// steady session and re-packs the refreshed solution; the result must match
// a cold re-solve + re-pack of the mutated platform to 1e-6 and satisfy
// every packing invariant.
func TestWarmRepackAfterChurnMatchesCold(t *testing.T) {
	const churnEvents = 50
	opts := &steady.Options{GapTolerance: 1e-9}
	for _, s := range scenarios.All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			size := s.DefaultSizes[0]
			p, err := s.Generate(size, 42)
			if err != nil {
				t.Fatal(err)
			}
			prof, err := dynamic.ProfileByName(s.EffectiveChurnProfile())
			if err != nil {
				t.Fatal(err)
			}
			trace, err := dynamic.GenerateTrace(p, 0, prof, churnEvents, scenarios.ChurnTraceSeed(42))
			if err != nil {
				t.Fatal(err)
			}
			sess := steady.NewSession(p, 0, opts)
			if _, err := sess.Resolve(); err != nil {
				t.Fatalf("initial resolve: %v", err)
			}
			for i, ev := range trace.Events {
				if _, err := p.ApplyDelta(ev.Delta); err != nil {
					t.Fatalf("event %d: %v", i, err)
				}
			}
			warmSol, err := sess.Resolve()
			if err != nil {
				t.Fatalf("warm resolve: %v", err)
			}
			warmPk, err := pack.Decompose(p, 0, warmSol, nil)
			if err != nil {
				t.Fatalf("warm re-pack: %v", err)
			}
			coldSol, err := steady.Solve(p, 0, opts)
			if err != nil {
				t.Fatalf("cold resolve: %v", err)
			}
			coldPk, err := pack.Decompose(p, 0, coldSol, nil)
			if err != nil {
				t.Fatalf("cold re-pack: %v", err)
			}
			if err := warmPk.Validate(p, warmSol.EdgeRate, packTol(warmSol.Throughput)); err != nil {
				t.Errorf("warm packing: %v", err)
			}
			if gap := math.Abs(warmPk.Throughput - coldPk.Throughput); gap > packTol(coldPk.Throughput) {
				t.Errorf("warm re-pack %v vs cold %v (gap %v)", warmPk.Throughput, coldPk.Throughput, gap)
			}
		})
	}
}

// TestDecomposeDeterministic the same (platform, source, solution) must
// produce byte-identical packings on repeated runs — including the priced
// column order, which the JSON encoding exposes.
func TestDecomposeDeterministic(t *testing.T) {
	for _, name := range []string{scenarios.NameGrid, scenarios.NameRandomDense, scenarios.NameRing} {
		s, err := scenarios.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := s.Generate(s.DefaultSizes[0], 7)
		if err != nil {
			t.Fatal(err)
		}
		sol, err := steady.Solve(p, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		var prev []byte
		for run := 0; run < 3; run++ {
			pk, err := pack.Decompose(p, 0, sol, nil)
			if err != nil {
				t.Fatalf("%s run %d: %v", name, run, err)
			}
			buf, err := json.Marshal(pk)
			if err != nil {
				t.Fatal(err)
			}
			if prev != nil && string(buf) != string(prev) {
				t.Fatalf("%s: run %d packing differs from run %d", name, run, run-1)
			}
			prev = buf
		}
	}
}

// TestMaxTreesTruncation a tree cap below the optimal decomposition size
// keeps the heaviest trees, reports Truncated with the honest (smaller)
// throughput, and still satisfies every capacity invariant.
func TestMaxTreesTruncation(t *testing.T) {
	s, err := scenarios.Get(scenarios.NameGrid)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Generate(12, 7)
	if err != nil {
		t.Fatal(err)
	}
	sol, full := solveAndPack(t, p, 0, nil)
	if full.NumTrees() < 3 {
		t.Skipf("grid decomposition has only %d trees; cannot exercise truncation", full.NumTrees())
	}
	cap := full.NumTrees() - 2
	capped, err := pack.Decompose(p, 0, sol, &pack.Options{MaxTrees: cap})
	if err != nil {
		t.Fatalf("capped decompose: %v", err)
	}
	if !capped.Truncated {
		t.Error("capped packing not marked Truncated")
	}
	if capped.NumTrees() != cap {
		t.Errorf("capped packing has %d trees, want %d", capped.NumTrees(), cap)
	}
	if capped.Throughput >= full.Throughput {
		t.Errorf("truncated throughput %v not below full %v", capped.Throughput, full.Throughput)
	}
	if err := capped.Validate(p, sol.EdgeRate, packTol(sol.Throughput)); err != nil {
		t.Errorf("capped packing invalid: %v", err)
	}
	// The kept trees must be the heaviest of the full decomposition.
	minKept := math.Inf(1)
	for _, pt := range capped.Trees {
		if pt.Weight < minKept {
			minKept = pt.Weight
		}
	}
	dropped := 0
	for _, pt := range full.Trees {
		if pt.Weight < minKept {
			dropped++
		}
	}
	if dropped > full.NumTrees()-cap {
		t.Errorf("truncation dropped a tree heavier than a kept one")
	}
}

// TestDecomposeDegenerate degenerate inputs must fail loudly, not pack
// garbage.
func TestDecomposeDegenerate(t *testing.T) {
	p := platform.New(1)
	sol, err := steady.Solve(p, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pack.Decompose(p, 0, sol, nil); err == nil {
		t.Error("decomposing the infinite single-node solution did not fail")
	}
	s, _ := scenarios.Get(scenarios.NameRing)
	p2, err := s.Generate(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	sol2, err := steady.Solve(p2, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pack.Decompose(p2, 0, &steady.Solution{Throughput: sol2.Throughput, EdgeRate: sol2.EdgeRate[:3]}, nil); err == nil {
		t.Error("mismatched edge-rate length did not fail")
	}
	if _, err := pack.Decompose(p2, 0, nil, nil); err == nil {
		t.Error("nil solution did not fail")
	}
}

// BenchmarkDecompose measures the packing cost alone (solve excluded) on
// representative platforms; CI publishes the n=96 numbers in BENCH_pack.
func BenchmarkDecompose(b *testing.B) {
	cases := []struct {
		family string
		size   int
	}{
		{scenarios.NameClusters, 96},
		{scenarios.NameTiers, 96},
		{scenarios.NameRandomDense, 50},
		{scenarios.NameGrid, 36},
	}
	for _, c := range cases {
		s, err := scenarios.Get(c.family)
		if err != nil {
			b.Fatal(err)
		}
		p, err := s.Generate(c.size, 42)
		if err != nil {
			b.Fatal(err)
		}
		sol, err := steady.Solve(p, 0, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.family, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := pack.Decompose(p, 0, sol, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
