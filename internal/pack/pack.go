package pack

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/lp"
	"repro/internal/platform"
	"repro/internal/steady"
)

// Errors returned by Decompose.
var (
	// ErrNoSolution means the solution to decompose is missing or carries no
	// edge rates (e.g. the degenerate single-alive-node +Inf solution).
	ErrNoSolution = errors.New("pack: solution has no finite edge rates to decompose")
	// ErrNotPacked means the decomposition could not reach the LP throughput
	// within tolerance — numerically degenerate rate graphs only; the
	// returned packing (if any) is still capacity-feasible.
	ErrNotPacked = errors.New("pack: packing fell short of the LP throughput")
)

// Options tunes Decompose.
type Options struct {
	// MaxTrees caps the number of returned trees (0 = no cap). When the
	// optimal decomposition uses more trees, the lightest are dropped and
	// the packing is marked Truncated with its honest (smaller) throughput.
	MaxTrees int
	// Tolerance is the acceptable relative gap between the packed throughput
	// and the LP throughput (default 1e-7, scaled by the throughput
	// magnitude). Column generation stops as soon as the master value is
	// within Tolerance of the LP optimum, or when pricing proves no tree can
	// improve the master; a gap beyond 10x Tolerance is reported as
	// ErrNotPacked. The default keeps the hard failure bar at the package's
	// 1e-6 contract while the cutting-plane and master LPs certify ~1e-8.
	Tolerance float64
}

func (o *Options) tolerance() float64 {
	if o != nil && o.Tolerance > 0 {
		return o.Tolerance
	}
	return 1e-7
}

func (o *Options) maxTrees() int {
	if o != nil && o.MaxTrees > 0 {
		return o.MaxTrees
	}
	return 0
}

// supportEps is the rate below which an edge is not part of the support
// graph: the LP's own tolerance regime leaves ~1e-9 noise on zero rates,
// and edges that thin cannot carry a meaningful tree weight.
const supportEps = 1e-9

// priceEps is the pricing threshold: a tree enters the master only when its
// dual cost is below 1-priceEps (reduced cost meaningfully positive).
const priceEps = 1e-9

// Decompose peels a weighted spanning-tree packing out of the solution's
// optimal edge rates n(u,v), rooted at source: a greedy max-bottleneck peel
// seeds the trees, then restricted-master column generation (min-cost
// arborescence pricing on the master duals) closes the gap to the LP
// throughput, which Edmonds' arborescence-packing theorem guarantees is
// attainable within the rate graph. The result is attached to
// sol.Packing and returned.
//
// Decompose is deterministic: the same (platform, source, solution, opts)
// produce an identical packing on every run.
func Decompose(p *platform.Platform, source int, sol *steady.Solution, opts *Options) (*steady.Packing, error) {
	if sol == nil || math.IsInf(sol.Throughput, 0) || math.IsNaN(sol.Throughput) {
		return nil, ErrNoSolution
	}
	if len(sol.EdgeRate) != p.NumLinks() {
		return nil, fmt.Errorf("pack: %d edge rates for %d links", len(sol.EdgeRate), p.NumLinks())
	}
	if err := p.Validate(source); err != nil {
		return nil, fmt.Errorf("pack: %w", err)
	}
	tp := sol.Throughput
	// Scale the gap tolerance with the throughput: the master LP's duals and
	// objective carry relative (not absolute) solver noise, so an absolute
	// 1e-9 bar is unreachable on platforms broadcasting hundreds of slices
	// per time unit.
	tol := opts.tolerance() * math.Max(1, math.Abs(tp))

	pk := &steady.Packing{Source: source, LPThroughput: tp}
	if math.Abs(tp) <= tol {
		// Nothing to pack: a zero-throughput optimum has an empty packing.
		sol.Packing = pk
		return pk, nil
	}

	// Support graph: live links with positive optimal rate between alive
	// nodes, in link-ID order (the order every deterministic tie-break
	// below leans on).
	support := make([]edge, 0, p.NumLinks())
	for id := 0; id < p.NumLinks(); id++ {
		l := p.Link(id)
		if p.LinkLive(id) && p.NodeAlive(l.From) && p.NodeAlive(l.To) && sol.EdgeRate[id] > supportEps {
			support = append(support, edge{from: l.From, to: l.To, id: id})
		}
	}

	// Phase 1 — peel: extract max-bottleneck arborescences from the
	// residual rates. Every full-bottleneck peel saturates at least one
	// support edge, so the loop ends after at most len(support)+1 rounds.
	residual := append([]float64(nil), sol.EdgeRate...)
	var trees []*platform.Tree
	remaining := tp
	for remaining > tol {
		t := maxBottleneckArborescence(p, source, residual, support)
		if t == nil {
			break
		}
		w := bottleneck(t, residual)
		if w <= supportEps {
			break
		}
		if w > remaining {
			w = remaining
		}
		for _, id := range t.LinkIDs() {
			residual[id] -= w
		}
		remaining -= w
		trees = append(trees, t)
	}
	pk.Peeled = len(trees)

	// Phase 2 — certify: restricted master LP over the peeled trees,
	// generating min-cost-arborescence columns on the master duals until
	// the packing value reaches the LP throughput or no tree prices in.
	caps := make([]float64, len(support))
	for i, e := range support {
		caps[i] = sol.EdgeRate[e.id]
	}
	colIdx := make(map[string]bool, len(trees))
	for _, t := range trees {
		colIdx[treeKey(t)] = true
	}
	var weights []float64
	value := 0.0
	maxRounds := 4*len(support) + 16
	for round := 0; ; round++ {
		if len(trees) == 0 {
			// The peel never found an arborescence; price one with zero
			// costs to seed the master (it exists whenever tp > 0 — the LP
			// rates support flow to every alive destination).
			seed := make([]edge, len(support))
			copy(seed, support)
			chosen, _, ok := minCostArborescence(p, source, seed)
			if !ok {
				return nil, fmt.Errorf("%w: support graph carries no arborescence", ErrNotPacked)
			}
			t, err := treeFromEdges(p, source, chosen)
			if err != nil {
				return nil, err
			}
			trees = append(trees, t)
			colIdx[treeKey(t)] = true
			pk.Priced++
		}
		var sol2 *lp.Solution
		var err error
		sol2, weights, err = solveMaster(trees, support, caps)
		if err != nil {
			return nil, err
		}
		value = sol2.Objective
		if value >= tp-tol {
			break // the packing achieves the LP throughput
		}
		if round >= maxRounds {
			break
		}
		// Price a new column: the cheapest arborescence under the master
		// duals. Its dual cost below 1 means positive reduced cost.
		priced := make([]edge, len(support))
		copy(priced, support)
		for i := range priced {
			d := sol2.Dual[i]
			if d < 0 {
				d = 0
			}
			priced[i].cost = d
		}
		chosen, cost, ok := minCostArborescence(p, source, priced)
		if !ok || cost >= 1-priceEps {
			break // dual certificate: no tree can improve the master
		}
		t, err := treeFromEdges(p, source, chosen)
		if err != nil {
			return nil, err
		}
		key := treeKey(t)
		if colIdx[key] {
			break // numerically stuck: the improving column already exists
		}
		colIdx[key] = true
		trees = append(trees, t)
		pk.Priced++
	}

	// Assemble: positive-weight trees in deterministic (generation) order.
	for i, t := range trees {
		if weights[i] > supportEps {
			pk.Trees = append(pk.Trees, steady.PackedTree{Tree: t, Weight: weights[i]})
			pk.Throughput += weights[i]
		}
	}
	if cap := opts.maxTrees(); cap > 0 && len(pk.Trees) > cap {
		truncatePacking(pk, cap)
	}
	sol.Packing = pk
	if pk.Throughput < tp-10*tol && !pk.Truncated {
		return pk, fmt.Errorf("%w: packed %v of %v", ErrNotPacked, pk.Throughput, tp)
	}
	return pk, nil
}

// solveMaster solves the restricted master LP — maximize the total weight
// of the current trees subject to the summed per-edge weights staying
// within the support capacities — and returns the LP solution (for its
// duals) plus the per-tree weights.
func solveMaster(trees []*platform.Tree, support []edge, caps []float64) (*lp.Solution, []float64, error) {
	prob := lp.NewProblem(len(trees))
	obj := make([]float64, len(trees))
	for i := range obj {
		obj[i] = 1
	}
	prob.SetObjective(obj)
	// One capacity row per support edge, in support order (the dual index
	// contract pricing relies on). usage[edge index] -> tree terms.
	rowOf := make(map[int]int, len(support)) // link ID -> support index
	for i, e := range support {
		rowOf[e.id] = i
	}
	terms := make([][]lp.Term, len(support))
	for ti, t := range trees {
		for _, id := range t.LinkIDs() {
			ri := rowOf[id]
			terms[ri] = append(terms[ri], lp.Term{Var: ti, Coeff: 1})
		}
	}
	for i := range support {
		prob.AddSparseConstraint(terms[i], lp.LE, caps[i])
	}
	sol, err := lp.Solve(prob, nil)
	if err != nil {
		return nil, nil, fmt.Errorf("pack: master solve: %w", err)
	}
	if sol.Status != lp.Optimal {
		return nil, nil, fmt.Errorf("pack: master solve ended %v", sol.Status)
	}
	return sol, sol.X, nil
}

// treeFromEdges assembles a platform tree from chosen arborescence edges.
func treeFromEdges(p *platform.Platform, root int, chosen []edge) (*platform.Tree, error) {
	t := platform.NewTree(p.NumNodes(), root)
	for _, e := range chosen {
		if t.Parent[e.to] != -1 {
			return nil, fmt.Errorf("pack: arborescence gives node %d two parents", e.to)
		}
		t.SetParent(e.to, e.from, e.id)
	}
	if err := t.ValidateLive(p); err != nil {
		return nil, fmt.Errorf("pack: priced arborescence invalid: %w", err)
	}
	return t, nil
}

// treeKey is a canonical signature of a tree's edge set, used to detect a
// priced column that already exists in the master.
func treeKey(t *platform.Tree) string {
	ids := append([]int(nil), t.LinkIDs()...)
	sort.Ints(ids)
	return fmt.Sprint(ids)
}

// truncatePacking keeps the cap heaviest trees (ties broken by original
// position, so truncation is deterministic) in their original order and
// re-derives the packed throughput.
func truncatePacking(pk *steady.Packing, cap int) {
	type ranked struct {
		idx int
		pt  steady.PackedTree
	}
	rs := make([]ranked, len(pk.Trees))
	for i, pt := range pk.Trees {
		rs[i] = ranked{idx: i, pt: pt}
	}
	sort.SliceStable(rs, func(a, b int) bool { return rs[a].pt.Weight > rs[b].pt.Weight })
	rs = rs[:cap]
	sort.SliceStable(rs, func(a, b int) bool { return rs[a].idx < rs[b].idx })
	pk.Trees = pk.Trees[:0]
	pk.Throughput = 0
	for _, r := range rs {
		pk.Trees = append(pk.Trees, r.pt)
		pk.Throughput += r.pt.Weight
	}
	pk.Truncated = true
}
