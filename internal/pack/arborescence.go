package pack

import (
	"math"

	"repro/internal/platform"
)

// edge is one support edge of the rate graph, carrying its platform link ID
// so chosen arborescences can be expressed as platform trees.
type edge struct {
	from, to int
	cost     float64
	id       int // platform link ID
}

// maxBottleneckArborescence grows the arborescence rooted at root that
// maximizes the minimum residual capacity over its edges: Prim-style
// widest-path growth, at each step taking the highest-capacity support edge
// crossing the cut (ties broken by smallest link ID, which the ascending
// iteration order provides). Returns nil when some alive node is not
// reachable from root through positive-residual support edges.
//
// The greedy choice is exact for the bottleneck objective on directed
// graphs: if every alive node is reachable using only edges of capacity at
// least t, then any cut between the grown set and the rest is crossed by
// such an edge, so the maximum crossing edge is never below the optimal
// threshold.
func maxBottleneckArborescence(p *platform.Platform, root int, residual []float64, support []edge) *platform.Tree {
	n := p.NumNodes()
	inTree := make([]bool, n)
	inTree[root] = true
	need := p.NumAliveNodes() - 1
	tree := platform.NewTree(n, root)
	for added := 0; added < need; added++ {
		best := -1
		bestCap := 0.0
		for i, e := range support {
			if !inTree[e.from] || inTree[e.to] {
				continue
			}
			if r := residual[e.id]; r > bestCap {
				best, bestCap = i, r
			}
		}
		if best < 0 {
			return nil
		}
		e := support[best]
		tree.SetParent(e.to, e.from, e.id)
		inTree[e.to] = true
	}
	return tree
}

// bottleneck returns the minimum residual capacity over the tree's edges.
func bottleneck(tree *platform.Tree, residual []float64) float64 {
	b := math.Inf(1)
	for _, id := range tree.LinkIDs() {
		if residual[id] < b {
			b = residual[id]
		}
	}
	return b
}

// minCostArborescence finds the minimum-total-cost arborescence rooted at
// root spanning the alive nodes, over the given support edges, with the
// classic Chu-Liu/Edmonds contraction. Ties (equal cost up to eps) are
// broken by smallest link ID so the result — and with it the whole packing
// — is deterministic. Returns the chosen edges and ok=false when some alive
// node is unreachable.
func minCostArborescence(p *platform.Platform, root int, support []edge) (chosen []edge, total float64, ok bool) {
	n := p.NumNodes()
	// Compress the alive nodes to 0..k-1 with the root first; dead nodes do
	// not participate.
	label := make([]int, n)
	for u := range label {
		label[u] = -1
	}
	label[root] = 0
	k := 1
	for u := 0; u < n; u++ {
		if u != root && p.NodeAlive(u) {
			label[u] = k
			k++
		}
	}
	edges := make([]edge, len(support))
	for i, e := range support {
		edges[i] = edge{from: label[e.from], to: label[e.to], cost: e.cost, id: e.id}
	}
	ids, ok := chuLiu(k, 0, edges)
	if !ok {
		return nil, 0, false
	}
	byID := make(map[int]edge, len(support))
	for _, e := range support {
		byID[e.id] = e
	}
	chosen = make([]edge, len(ids))
	for i, id := range ids {
		chosen[i] = byID[id]
		total += chosen[i].cost
	}
	return chosen, total, true
}

// costEps is the tolerance for cost comparisons in the min-incoming-edge
// selection: costs within costEps are ties, resolved by smallest link ID.
// Duals come out of the master LP with ~1e-9 noise, and stable tie-breaks
// on that noise are what keep the packing byte-identical across runs.
const costEps = 1e-12

// chuLiu is the recursive Chu-Liu/Edmonds step on a compressed node set
// 0..n-1: pick each node's cheapest incoming edge; if the picks are acyclic
// they are the arborescence, otherwise one cycle is contracted into a
// supernode (incoming costs reduced by the cycle edge they replace) and the
// algorithm recurses on the relabeled graph. It returns the chosen original
// link IDs; total cost is recomputed by the caller from the original edges.
func chuLiu(n, root int, edges []edge) (ids []int, ok bool) {
	// minIn[v]: index into edges of the cheapest edge entering v.
	minIn := make([]int, n)
	for v := range minIn {
		minIn[v] = -1
	}
	for i, e := range edges {
		if e.to == root || e.from == e.to {
			continue
		}
		cur := minIn[e.to]
		switch {
		case cur < 0:
			minIn[e.to] = i
		case e.cost < edges[cur].cost-costEps:
			minIn[e.to] = i
		case e.cost <= edges[cur].cost+costEps && e.id < edges[cur].id:
			minIn[e.to] = i
		}
	}
	for v := 0; v < n; v++ {
		if v != root && minIn[v] < 0 {
			return nil, false
		}
	}

	// Cycle detection over the chosen-parent graph.
	const (
		unseen = 0
		onPath = 1
		done   = 2
	)
	state := make([]int, n)
	state[root] = done
	var cycle []int
	for v := 0; v < n && cycle == nil; v++ {
		if state[v] != unseen {
			continue
		}
		path := []int{}
		u := v
		for state[u] == unseen {
			state[u] = onPath
			path = append(path, u)
			u = edges[minIn[u]].from
		}
		if state[u] == onPath {
			// Extract the cycle: the tail of path from the first occurrence
			// of u.
			for i, w := range path {
				if w == u {
					cycle = append([]int(nil), path[i:]...)
					break
				}
			}
		}
		for _, w := range path {
			state[w] = done
		}
	}

	if cycle == nil {
		ids = make([]int, 0, n-1)
		for v := 0; v < n; v++ {
			if v != root {
				ids = append(ids, edges[minIn[v]].id)
			}
		}
		return ids, true
	}

	// Contract the cycle into one supernode and relabel: non-cycle nodes
	// keep their relative order (so labeling stays deterministic), the
	// cycle folds onto the last index.
	inCycle := make([]bool, n)
	for _, v := range cycle {
		inCycle[v] = true
	}
	relabel := make([]int, n)
	m := 0
	for v := 0; v < n; v++ {
		if !inCycle[v] {
			relabel[v] = m
			m++
		}
	}
	super := m
	for _, v := range cycle {
		relabel[v] = super
	}
	var contracted []edge
	// displaced[i] is, for contracted edge i, the cycle node whose min-in
	// edge the contracted edge would displace (-1 for edges not entering
	// the cycle).
	var displaced []int
	for _, e := range edges {
		switch {
		case inCycle[e.from] && inCycle[e.to]:
			// Internal to the cycle: drop.
		case inCycle[e.to]:
			// Entering the cycle: cost reduced by the cycle edge it would
			// displace.
			red := e.cost - edges[minIn[e.to]].cost
			contracted = append(contracted, edge{from: relabel[e.from], to: super, cost: red, id: e.id})
			displaced = append(displaced, e.to)
		case inCycle[e.from]:
			contracted = append(contracted, edge{from: super, to: relabel[e.to], cost: e.cost, id: e.id})
			displaced = append(displaced, -1)
		default:
			contracted = append(contracted, edge{from: relabel[e.from], to: relabel[e.to], cost: e.cost, id: e.id})
			displaced = append(displaced, -1)
		}
	}
	subIDs, ok := chuLiu(m+1, relabel[root], contracted)
	if !ok {
		return nil, false
	}

	// Expand: exactly one chosen edge entered the supernode (it has exactly
	// one parent in the sub-arborescence); keep every cycle min-in edge
	// except the one that edge displaced.
	idSet := make(map[int]bool, len(subIDs))
	for _, id := range subIDs {
		idSet[id] = true
	}
	entered := -1 // cycle node whose min-in edge is displaced
	for ci, cv := range displaced {
		if cv >= 0 && idSet[contracted[ci].id] {
			entered = cv
			break
		}
	}
	if entered < 0 {
		return nil, false
	}
	ids = subIDs
	for _, v := range cycle {
		if v != entered {
			ids = append(ids, edges[minIn[v]].id)
		}
	}
	return ids, true
}
