package robustness

import (
	"errors"
	"fmt"

	"repro/internal/heuristics"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/steady"
	"repro/internal/throughput"
	"repro/internal/topology"
)

// Config parameterizes a robustness analysis.
type Config struct {
	// Perturbation δ: each link cost is multiplied by a factor in [1-δ, 1+δ].
	Perturbation float64
	// Trials is the number of perturbed platforms to evaluate.
	Trials int
	// Model is the port model used to evaluate trees (default one-port).
	Model model.PortModel
	// Seed drives the perturbation RNG; each trial derives its own stream
	// from it (see TrialSeed).
	Seed int64
	// Workers bounds the number of trials evaluated concurrently (0 = all
	// CPUs). The report does not depend on the worker count.
	Workers int
	// OnTrial, when non-nil, is invoked once per trial as results complete
	// (in completion order, not trial order) with the trial index and the
	// fixed-tree and rebuilt-tree ratios. Calls are serialized.
	OnTrial func(trial int, fixedRatio, rebuiltRatio float64)
}

// TrialSeed derives the deterministic RNG seed of one perturbation trial.
func TrialSeed(base int64, trial int) int64 {
	return topology.DeriveSeed(base, "robustness-trial", trial)
}

// Report aggregates the outcome of a robustness analysis.
type Report struct {
	// Heuristic is the name of the analysed heuristic.
	Heuristic string
	// BaselineRatio is the relative performance of the tree on the original
	// (unperturbed) platform.
	BaselineRatio float64
	// FixedTree summarizes the relative performance of the original tree on
	// the perturbed platforms (what happens if the schedule is not changed
	// when link performance drifts).
	FixedTree stats.Summary
	// RebuiltTree summarizes the relative performance when the heuristic is
	// re-run on each perturbed platform.
	RebuiltTree stats.Summary
	// RetainedFraction is the mean ratio of the fixed tree's throughput to
	// the rebuilt tree's throughput across trials (1 means re-optimizing is
	// pointless, lower values mean the fixed tree ages badly).
	RetainedFraction float64
}

// Errors returned by Analyze.
var ErrBadConfig = errors.New("robustness: invalid configuration")

// Analyze runs the robustness analysis of one heuristic on one platform.
func Analyze(p *platform.Platform, source int, builder heuristics.Builder, cfg Config) (*Report, error) {
	if cfg.Perturbation < 0 || cfg.Perturbation >= 1 {
		return nil, fmt.Errorf("%w: perturbation %v outside [0, 1)", ErrBadConfig, cfg.Perturbation)
	}
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("%w: %d trials", ErrBadConfig, cfg.Trials)
	}
	baseOpt, err := steady.Solve(p, source, nil)
	if err != nil {
		return nil, err
	}
	baseTree, err := builder.Build(p, source)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Heuristic:     builder.Name(),
		BaselineRatio: throughput.TreeThroughput(p, baseTree, cfg.Model) / baseOpt.Throughput,
	}

	// Each trial perturbs and cold-solves an independent platform: fan the
	// trials across the worker pool with per-trial derived seeds, collecting
	// results in trial order so the summaries are identical for every worker
	// count.
	type trialResult struct {
		fixed, rebuilt float64
		err            error
	}
	results := parallel.MapStream(cfg.Trials, cfg.Workers, func(trial int) trialResult {
		rng := topology.NewRNG(TrialSeed(cfg.Seed, trial))
		perturbed := p.Clone()
		for id := 0; id < perturbed.NumLinks(); id++ {
			factor := 1 + cfg.Perturbation*(2*rng.Float64()-1)
			perturbed.ScaleLinkCost(id, factor)
		}
		opt, err := steady.Solve(perturbed, source, nil)
		if err != nil {
			return trialResult{err: err}
		}
		fixedTP := throughput.TreeThroughput(perturbed, baseTree, cfg.Model)
		newTree, err := builder.Build(perturbed, source)
		if err != nil {
			return trialResult{err: err}
		}
		rebuiltTP := throughput.TreeThroughput(perturbed, newTree, cfg.Model)
		return trialResult{fixed: fixedTP / opt.Throughput, rebuilt: rebuiltTP / opt.Throughput}
	}, func(trial int, r trialResult) {
		if cfg.OnTrial != nil && r.err == nil {
			cfg.OnTrial(trial, r.fixed, r.rebuilt)
		}
	})
	fixed := make([]float64, 0, cfg.Trials)
	rebuilt := make([]float64, 0, cfg.Trials)
	retained := make([]float64, 0, cfg.Trials)
	for _, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		fixed = append(fixed, r.fixed)
		rebuilt = append(rebuilt, r.rebuilt)
		if r.rebuilt > 0 {
			retained = append(retained, r.fixed/r.rebuilt)
		}
	}
	rep.FixedTree = stats.Summarize(fixed)
	rep.RebuiltTree = stats.Summarize(rebuilt)
	rep.RetainedFraction = stats.Mean(retained)
	return rep, nil
}
