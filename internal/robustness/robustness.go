// Package robustness quantifies how sensitive a broadcast tree is to small
// changes in link performance — the property the paper's conclusion puts
// forward as an argument for single-tree (STP) schedules. Each trial scales
// every link cost by an independent factor drawn uniformly from
// [1-δ, 1+δ] and measures the throughput of (i) the original tree kept
// unchanged and (ii) the tree rebuilt by the heuristic on the perturbed
// platform, both relative to the perturbed platform's MTP optimum.
package robustness

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/heuristics"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/steady"
	"repro/internal/throughput"
)

// Config parameterizes a robustness analysis.
type Config struct {
	// Perturbation δ: each link cost is multiplied by a factor in [1-δ, 1+δ].
	Perturbation float64
	// Trials is the number of perturbed platforms to evaluate.
	Trials int
	// Model is the port model used to evaluate trees (default one-port).
	Model model.PortModel
	// Seed drives the perturbation RNG.
	Seed int64
}

// Report aggregates the outcome of a robustness analysis.
type Report struct {
	// Heuristic is the name of the analysed heuristic.
	Heuristic string
	// BaselineRatio is the relative performance of the tree on the original
	// (unperturbed) platform.
	BaselineRatio float64
	// FixedTree summarizes the relative performance of the original tree on
	// the perturbed platforms (what happens if the schedule is not changed
	// when link performance drifts).
	FixedTree stats.Summary
	// RebuiltTree summarizes the relative performance when the heuristic is
	// re-run on each perturbed platform.
	RebuiltTree stats.Summary
	// RetainedFraction is the mean ratio of the fixed tree's throughput to
	// the rebuilt tree's throughput across trials (1 means re-optimizing is
	// pointless, lower values mean the fixed tree ages badly).
	RetainedFraction float64
}

// Errors returned by Analyze.
var ErrBadConfig = errors.New("robustness: invalid configuration")

// Analyze runs the robustness analysis of one heuristic on one platform.
func Analyze(p *platform.Platform, source int, builder heuristics.Builder, cfg Config) (*Report, error) {
	if cfg.Perturbation < 0 || cfg.Perturbation >= 1 {
		return nil, fmt.Errorf("%w: perturbation %v outside [0, 1)", ErrBadConfig, cfg.Perturbation)
	}
	if cfg.Trials < 1 {
		return nil, fmt.Errorf("%w: %d trials", ErrBadConfig, cfg.Trials)
	}
	baseOpt, err := steady.Solve(p, source, nil)
	if err != nil {
		return nil, err
	}
	baseTree, err := builder.Build(p, source)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Heuristic:     builder.Name(),
		BaselineRatio: throughput.TreeThroughput(p, baseTree, cfg.Model) / baseOpt.Throughput,
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	fixed := make([]float64, 0, cfg.Trials)
	rebuilt := make([]float64, 0, cfg.Trials)
	retained := make([]float64, 0, cfg.Trials)
	for trial := 0; trial < cfg.Trials; trial++ {
		perturbed := p.Clone()
		for id := 0; id < perturbed.NumLinks(); id++ {
			factor := 1 + cfg.Perturbation*(2*rng.Float64()-1)
			perturbed.ScaleLinkCost(id, factor)
		}
		opt, err := steady.Solve(perturbed, source, nil)
		if err != nil {
			return nil, err
		}
		fixedTP := throughput.TreeThroughput(perturbed, baseTree, cfg.Model)
		newTree, err := builder.Build(perturbed, source)
		if err != nil {
			return nil, err
		}
		rebuiltTP := throughput.TreeThroughput(perturbed, newTree, cfg.Model)
		fixed = append(fixed, fixedTP/opt.Throughput)
		rebuilt = append(rebuilt, rebuiltTP/opt.Throughput)
		if rebuiltTP > 0 {
			retained = append(retained, fixedTP/rebuiltTP)
		}
	}
	rep.FixedTree = stats.Summarize(fixed)
	rep.RebuiltTree = stats.Summarize(rebuilt)
	rep.RetainedFraction = stats.Mean(retained)
	return rep, nil
}
