package robustness

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/heuristics"
	"repro/internal/model"
	"repro/internal/topology"
)

func TestAnalyzeBadConfig(t *testing.T) {
	p, err := topology.Random(topology.DefaultRandomConfig(8, 0.3), rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := heuristics.ByName(heuristics.NameGrowTree)
	if _, err := Analyze(p, 0, b, Config{Perturbation: -0.1, Trials: 1}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("negative perturbation: %v", err)
	}
	if _, err := Analyze(p, 0, b, Config{Perturbation: 1.5, Trials: 1}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("too large perturbation: %v", err)
	}
	if _, err := Analyze(p, 0, b, Config{Perturbation: 0.1, Trials: 0}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero trials: %v", err)
	}
}

func TestAnalyzeZeroPerturbationIsNeutral(t *testing.T) {
	p, err := topology.Random(topology.DefaultRandomConfig(10, 0.25), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := heuristics.ByName(heuristics.NamePruneDegree)
	rep, err := Analyze(p, 0, b, Config{Perturbation: 0, Trials: 3, Model: model.OnePortBidirectional, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.FixedTree.Mean-rep.BaselineRatio) > 1e-9 {
		t.Fatalf("zero perturbation should keep the baseline ratio: %v vs %v", rep.FixedTree.Mean, rep.BaselineRatio)
	}
	if math.Abs(rep.RetainedFraction-1) > 1e-9 {
		t.Fatalf("retained fraction = %v, want 1", rep.RetainedFraction)
	}
}

func TestAnalyzeSmallPerturbation(t *testing.T) {
	p, err := topology.Random(topology.DefaultRandomConfig(12, 0.2), rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := heuristics.ByName(heuristics.NameGrowTree)
	rep, err := Analyze(p, 0, b, Config{Perturbation: 0.1, Trials: 5, Model: model.OnePortBidirectional, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Heuristic != heuristics.NameGrowTree {
		t.Fatalf("heuristic name = %q", rep.Heuristic)
	}
	if rep.BaselineRatio <= 0 || rep.BaselineRatio > 1+1e-9 {
		t.Fatalf("baseline ratio = %v", rep.BaselineRatio)
	}
	// The rebuilt tree can never be worse than the fixed tree on average
	// beyond noise, and both stay within (0, 1].
	if rep.FixedTree.Count != 5 || rep.RebuiltTree.Count != 5 {
		t.Fatalf("sample counts: %d, %d", rep.FixedTree.Count, rep.RebuiltTree.Count)
	}
	if rep.FixedTree.Min <= 0 || rep.RebuiltTree.Min <= 0 {
		t.Fatal("ratios must stay positive")
	}
	if rep.FixedTree.Max > 1+1e-6 || rep.RebuiltTree.Max > 1+1e-6 {
		t.Fatalf("single-tree ratio exceeded the MTP optimum: fixed max %v, rebuilt max %v",
			rep.FixedTree.Max, rep.RebuiltTree.Max)
	}
	if rep.RetainedFraction <= 0 || rep.RetainedFraction > 1.5 {
		t.Fatalf("retained fraction = %v", rep.RetainedFraction)
	}
	// With a 10% perturbation a reasonable tree keeps most of its value.
	if rep.RetainedFraction < 0.5 {
		t.Fatalf("retained fraction %v suspiciously low for a 10%% perturbation", rep.RetainedFraction)
	}
}

func TestAnalyzeDeterministicAcrossWorkers(t *testing.T) {
	p, err := topology.Random(topology.DefaultRandomConfig(10, 0.3), rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := heuristics.ByName(heuristics.NameGrowTree)
	var reports []*Report
	for _, workers := range []int{1, 4} {
		trials := 0
		rep, err := Analyze(p, 0, b, Config{
			Perturbation: 0.2, Trials: 6, Seed: 13, Workers: workers,
			OnTrial: func(int, float64, float64) { trials++ },
		})
		if err != nil {
			t.Fatal(err)
		}
		if trials != 6 {
			t.Fatalf("OnTrial fired %d times, want 6", trials)
		}
		reports = append(reports, rep)
	}
	a, b2 := reports[0], reports[1]
	if a.FixedTree != b2.FixedTree || a.RebuiltTree != b2.RebuiltTree ||
		math.Abs(a.RetainedFraction-b2.RetainedFraction) > 1e-15 {
		t.Fatalf("report depends on worker count:\n%+v\n%+v", a, b2)
	}
}

func TestAnalyzeDeterministicForSeed(t *testing.T) {
	p, err := topology.Random(topology.DefaultRandomConfig(9, 0.3), rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := heuristics.ByName(heuristics.NameLPGrowTree)
	a1, err := Analyze(p, 0, b, Config{Perturbation: 0.2, Trials: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Analyze(p, 0, b, Config{Perturbation: 0.2, Trials: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a1.FixedTree.Mean-a2.FixedTree.Mean) > 1e-12 ||
		math.Abs(a1.RebuiltTree.Mean-a2.RebuiltTree.Mean) > 1e-12 {
		t.Fatal("analysis is not deterministic for a fixed seed")
	}
}
