// Package robustness quantifies how sensitive a broadcast tree is to small
// changes in link performance — the property the paper's conclusion puts
// forward as an argument for single-tree (STP) schedules. Each trial scales
// every link cost by an independent factor drawn uniformly from
// [1-δ, 1+δ] and measures the throughput of (i) the original tree kept
// unchanged and (ii) the tree rebuilt by the heuristic on the perturbed
// platform, both relative to the perturbed platform's MTP optimum.
//
// Trials are independent (each perturbs and cold-solves its own platform),
// so they run across a worker pool; every trial derives its own seed from
// the base seed the same way the scenario sweep derives per-platform seeds,
// which keeps the report bit-identical regardless of worker count. For the
// complementary time-evolving analysis (one platform drifting through a
// correlated event timeline instead of independent redraws) see
// internal/dynamic.
package robustness
