package service

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/platform"
	"repro/internal/topology"
)

func benchPlatform(b *testing.B) *platform.Platform {
	cfg := topology.DefaultClusterConfig()
	cfg.Clusters = 6
	cfg.NodesPerCluster = 16
	p, err := topology.Clusters(cfg, topology.NewRNG(7))
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkServiceCacheMiss measures a cold plan: every iteration runs on an
// empty cache, so the full fingerprint + steady-state solve is paid.
func BenchmarkServiceCacheMiss(b *testing.B) {
	p := benchPlatform(b)
	req := PlanRequest{Platform: p, Source: 0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := New(Config{Workers: 1})
		if _, err := e.Plan(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceCacheHit measures a repeated identical plan request: the
// fingerprint is recomputed, the solve is skipped. The ns/op gap against
// BenchmarkServiceCacheMiss is the cache-hit speedup reported in
// BENCH_service.txt.
func BenchmarkServiceCacheHit(b *testing.B) {
	p := benchPlatform(b)
	req := PlanRequest{Platform: p, Source: 0}
	e := New(Config{Workers: 1})
	if _, err := e.Plan(req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Plan(req)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Cached {
			b.Fatal("cache miss in hit benchmark")
		}
	}
}

// BenchmarkServiceCacheHitTraced is BenchmarkServiceCacheHit with a
// deterministic tracer attached: the ns/op gap against the untraced variant
// is the hit-path cost of tracing (trace allocation, identity hash,
// content-derived ID, ring insert), pinned in BENCH_obs.json with a <5%
// overhead target.
func BenchmarkServiceCacheHitTraced(b *testing.B) {
	p := benchPlatform(b)
	req := PlanRequest{Platform: p, Source: 0}
	e := New(Config{Workers: 1, Tracer: obs.NewTracer(obs.Options{Capacity: 512})})
	if _, err := e.Plan(req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := e.Plan(req)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Cached {
			b.Fatal("cache miss in hit benchmark")
		}
		if res.TraceID == "" {
			b.Fatal("traced hit carried no trace ID")
		}
	}
}

// BenchmarkServiceWarmDelta measures a one-delta-away request through the
// warm-session path against re-solving the mutated platform cold.
func BenchmarkServiceWarmDelta(b *testing.B) {
	base := benchPlatform(b)
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			e := New(Config{Workers: 1})
			first, err := e.Plan(PlanRequest{Platform: base, Source: 0})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			res, err := e.Plan(PlanRequest{
				Base:   first.Plan.Fingerprint,
				Deltas: []platform.Delta{{Kind: platform.DeltaScaleLink, Link: 0, Factor: 1.5}},
				Source: 0,
			})
			if err != nil {
				b.Fatal(err)
			}
			if !res.WarmResolved {
				b.Fatal("delta request was not warm")
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			mutated := base.Clone()
			if _, err := mutated.ApplyDelta(platform.Delta{Kind: platform.DeltaScaleLink, Link: 0, Factor: 1.5}); err != nil {
				b.Fatal(err)
			}
			e := New(Config{Workers: 1})
			b.StartTimer()
			if _, err := e.Plan(PlanRequest{Platform: mutated, Source: 0}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
