package service

import (
	"sync"
	"time"

	"repro/internal/stats"
)

// Metrics is the HTTP-layer instrumentation of the planning service:
// per-endpoint request/error counters and wall-clock latency histograms
// (stats.Histogram, nanosecond ticks), next to a snapshot of the engine's
// own cache/solver counters. One Metrics instance is shared by every route
// of a handler; it is safe for concurrent use.
type Metrics struct {
	mu     sync.Mutex
	routes map[string]*routeMetrics
}

type routeMetrics struct {
	requests int64
	errors   int64
	latency  stats.Histogram
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{routes: make(map[string]*routeMetrics)}
}

// observe records one served request on a route.
func (m *Metrics) observe(route string, status int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rm := m.routes[route]
	if rm == nil {
		rm = &routeMetrics{}
		m.routes[route] = rm
	}
	rm.requests++
	if status >= 400 {
		rm.errors++
	}
	rm.latency.Record(elapsed.Nanoseconds())
}

// EndpointMetrics is the exported view of one route's counters.
type EndpointMetrics struct {
	Requests  int64                  `json:"requests"`
	Errors    int64                  `json:"errors"`
	LatencyNs stats.HistogramSummary `json:"latencyNs"`
}

// MetricsSnapshot is the response body of GET /v1/metrics: the engine's
// cache/solver counters plus per-endpoint HTTP counters and latency
// quantiles. Endpoints marshal as a JSON object keyed by route, so the
// serialization is stable (encoding/json sorts map keys).
type MetricsSnapshot struct {
	Engine    Stats                      `json:"engine"`
	Endpoints map[string]EndpointMetrics `json:"endpoints"`
}

// Snapshot returns a consistent copy of the per-endpoint counters combined
// with the engine's counter snapshot.
func (m *Metrics) Snapshot(e *Engine) MetricsSnapshot {
	snap := MetricsSnapshot{Endpoints: make(map[string]EndpointMetrics)}
	if e != nil {
		snap.Engine = e.Stats()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for route, rm := range m.routes {
		snap.Endpoints[route] = EndpointMetrics{
			Requests:  rm.requests,
			Errors:    rm.errors,
			LatencyNs: rm.latency.Summary(),
		}
	}
	return snap
}
