package service

import (
	"sync"
	"time"

	"repro/internal/stats"
)

// Metrics is the HTTP-layer instrumentation of the planning service:
// per-endpoint request/error counters and wall-clock latency histograms
// (stats.Histogram, nanosecond ticks), next to a snapshot of the engine's
// own cache/solver counters. One Metrics instance is shared by every route
// of a handler; it is safe for concurrent use.
type Metrics struct {
	mu     sync.Mutex
	routes map[string]*routeMetrics
}

type routeMetrics struct {
	requests int64
	errors   int64
	latency  stats.Histogram
}

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{routes: make(map[string]*routeMetrics)}
}

// observe records one served request on a route.
func (m *Metrics) observe(route string, status int, elapsed time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rm := m.routes[route]
	if rm == nil {
		rm = &routeMetrics{}
		m.routes[route] = rm
	}
	rm.requests++
	if status >= 400 {
		rm.errors++
	}
	rm.latency.Record(elapsed.Nanoseconds())
}

// EndpointMetrics is the exported view of one route's counters.
type EndpointMetrics struct {
	Requests  int64                  `json:"requests"`
	Errors    int64                  `json:"errors"`
	LatencyNs stats.HistogramSummary `json:"latencyNs"`
}

// OverloadCounters is the always-present view of the overload-contract
// counters. The same numbers live in Stats, but there they carry omitempty
// tags (zero values vanish from the JSON), so dashboards scraping
// /v1/metrics could not tell "no shedding configured" from "no shedding
// happened". Here every field marshals unconditionally.
type OverloadCounters struct {
	Shed              int64 `json:"shed"`
	Queued            int64 `json:"queued"`
	Canceled          int64 `json:"canceled"`
	Degraded          int64 `json:"degraded"`
	Refines           int64 `json:"refines"`
	RefineFailures    int64 `json:"refineFailures"`
	EvictionsDeferred int64 `json:"evictionsDeferred"`
	QueueDepth        int   `json:"queueDepth"`
}

// overloadCounters extracts the always-present overload view from a stats
// snapshot.
func overloadCounters(s Stats) OverloadCounters {
	return OverloadCounters{
		Shed:              s.Shed,
		Queued:            s.Queued,
		Canceled:          s.Canceled,
		Degraded:          s.Degraded,
		Refines:           s.Refines,
		RefineFailures:    s.RefineFailures,
		EvictionsDeferred: s.EvictionsDeferred,
		QueueDepth:        s.QueueDepth,
	}
}

// MetricsSnapshot is the response body of GET /v1/metrics: the engine's
// cache/solver counters plus the always-present overload counters, the
// solve-stage histograms, and per-endpoint HTTP counters and latency
// quantiles. Endpoints marshal as a JSON object keyed by route, so the
// serialization is stable (encoding/json sorts map keys).
type MetricsSnapshot struct {
	Engine    Stats                      `json:"engine"`
	Overload  OverloadCounters           `json:"overload"`
	Stage     StageStats                 `json:"stage"`
	Endpoints map[string]EndpointMetrics `json:"endpoints"`
}

// Snapshot returns a consistent copy of the per-endpoint counters combined
// with the engine's counter snapshot.
func (m *Metrics) Snapshot(e *Engine) MetricsSnapshot {
	snap := MetricsSnapshot{Endpoints: make(map[string]EndpointMetrics)}
	if e != nil {
		snap.Engine = e.Stats()
		snap.Overload = overloadCounters(snap.Engine)
		snap.Stage = e.StageStats()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for route, rm := range m.routes {
		snap.Endpoints[route] = EndpointMetrics{
			Requests:  rm.requests,
			Errors:    rm.errors,
			LatencyNs: rm.latency.Summary(),
		}
	}
	return snap
}
