package service

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/obs"
	"repro/internal/platform"
)

// tracedEngine returns an engine with a deterministic tracer large enough
// that nothing is evicted mid-test.
func tracedEngine(cfg Config) *Engine {
	cfg.Tracer = obs.NewTracer(obs.Options{Capacity: 4096})
	return New(cfg)
}

func eventKinds(t *obs.Trace) []obs.SpanKind {
	kinds := make([]obs.SpanKind, len(t.Events))
	for i, ev := range t.Events {
		kinds[i] = ev.Kind
	}
	return kinds
}

// TestEngineTraceLifecycle walks one platform through miss, hit, and warm
// delta and checks the recorded traces: outcomes, span sequences, solve
// statistics, and the PlanResult trace IDs.
func TestEngineTraceLifecycle(t *testing.T) {
	e := tracedEngine(Config{Workers: 1})
	p := smallPlatform(t, 41)

	first, err := e.Plan(PlanRequest{Platform: p, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if first.TraceID == "" {
		t.Fatal("miss result carries no trace ID")
	}
	hit, err := e.Plan(PlanRequest{Platform: p, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if hit.TraceID == "" || hit.TraceID == first.TraceID {
		t.Fatalf("hit trace ID %q should be set and distinct from miss %q", hit.TraceID, first.TraceID)
	}
	delta, err := e.Plan(PlanRequest{
		Base:   first.Plan.Fingerprint,
		Deltas: []platform.Delta{{Kind: platform.DeltaScaleLink, Link: 0, Factor: 1.5}},
		Source: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !delta.WarmResolved {
		t.Fatal("delta request was not warm")
	}

	misses := e.Tracer().Snapshot(obs.OutcomeMiss, 0)
	if len(misses) != 2 {
		t.Fatalf("miss traces = %d, want 2 (cold + delta)", len(misses))
	}
	var cold, warm *obs.Trace
	for _, tr := range misses {
		if len(tr.Events) > 0 && tr.Events[0].Kind == obs.SpanBase {
			warm = tr
		} else {
			cold = tr
		}
	}
	if cold == nil || warm == nil {
		t.Fatalf("could not classify miss traces: %v / %v", misses[0].Events, misses[1].Events)
	}
	wantCold := []obs.SpanKind{obs.SpanLookup, obs.SpanAdmit, obs.SpanSolve}
	if got := eventKinds(cold); len(got) != len(wantCold) || got[0] != wantCold[0] || got[1] != wantCold[1] || got[2] != wantCold[2] {
		t.Fatalf("cold miss span sequence = %v, want %v", got, wantCold)
	}
	if !cold.Events[0].Miss || cold.Events[1].Admitted != "admitted" {
		t.Fatalf("cold miss events malformed: %+v", cold.Events)
	}
	solve := cold.Events[2]
	if solve.Pivots <= 0 || solve.Rounds <= 0 {
		t.Fatalf("solve span has no LP stats: %+v", solve)
	}
	if solve.DurNs != 0 || cold.StartNs != 0 {
		t.Fatalf("deterministic trace leaked wall-clock fields: %+v", cold)
	}
	wantWarm := []obs.SpanKind{obs.SpanBase, obs.SpanLookup, obs.SpanAdmit, obs.SpanSolve}
	if got := eventKinds(warm); len(got) != len(wantWarm) || got[0] != obs.SpanBase {
		t.Fatalf("warm delta span sequence = %v, want %v", got, wantWarm)
	}
	if !warm.Events[0].Warm || !warm.Events[3].Warm {
		t.Fatalf("warm delta did not flag warm session: %+v", warm.Events)
	}

	hits := e.Tracer().Snapshot(obs.OutcomeHit, 0)
	if len(hits) != 1 {
		t.Fatalf("hit traces = %d, want 1", len(hits))
	}
	if got := eventKinds(hits[0]); len(got) != 1 || got[0] != obs.SpanLookup || hits[0].Events[0].Miss {
		t.Fatalf("hit span sequence = %v", hits[0].Events)
	}
	if hits[0].Key == "" || hits[0].Key != cold.Key {
		t.Fatalf("hit and miss of one platform should share the identity key: %q vs %q", hits[0].Key, cold.Key)
	}
}

// TestEngineTraceShedAndDegraded checks the overload-path outcomes: a shed
// request records an admit=shed span, a degraded request records the
// heuristic answer and its background refinement lands in its own trace.
func TestEngineTraceShedAndDegraded(t *testing.T) {
	block := make(chan struct{})
	admitCh := make(chan AdmitKind, 8)
	e := tracedEngine(Config{
		Workers:    1,
		QueueDepth: 1,
		CacheSize:  64,
		Hooks: &Hooks{
			BeforeSolve: func() { <-block },
			OnAdmit:     func(ev AdmitEvent) { admitCh <- ev.Kind },
		},
	})

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			e.Plan(PlanRequest{Platform: smallPlatform(t, int64(50+i)), Source: 0})
		}()
		if i == 0 {
			if k := <-admitCh; k != AdmitLane {
				t.Errorf("first admission = %v, want lane", k)
			}
		}
	}
	// The two contenders decide (one queues, one sheds) before the lane frees.
	for i := 0; i < 2; i++ {
		<-admitCh
	}
	close(block)
	wg.Wait()
	e.Drain()

	sheds := e.Tracer().Snapshot(obs.OutcomeShed, 0)
	if len(sheds) != 1 {
		t.Fatalf("shed traces = %d, want 1 (workers=1 queue=1, 3 concurrent solves)", len(sheds))
	}
	kinds := eventKinds(sheds[0])
	if len(kinds) != 2 || kinds[1] != obs.SpanAdmit || sheds[0].Events[1].Admitted != "shed" {
		t.Fatalf("shed span sequence = %v (%+v)", kinds, sheds[0].Events)
	}

	// Degraded request on a fresh engine (no blocked lanes).
	e2 := tracedEngine(Config{Workers: 2})
	res, err := e2.Plan(PlanRequest{Platform: smallPlatform(t, 77), Source: 0, Degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("degraded request did not degrade")
	}
	e2.Drain()
	deg := e2.Tracer().Snapshot(obs.OutcomeDegraded, 0)
	if len(deg) != 1 {
		t.Fatalf("degraded traces = %d, want 1", len(deg))
	}
	kinds = eventKinds(deg[0])
	if len(kinds) != 2 || kinds[0] != obs.SpanLookup || kinds[1] != obs.SpanDegraded || deg[0].Events[1].Heuristic == "" {
		t.Fatalf("degraded span sequence = %v (%+v)", kinds, deg[0].Events)
	}
	refines := e2.Tracer().Snapshot(obs.OutcomeRefine, 0)
	if len(refines) != 1 {
		t.Fatalf("refine traces = %d, want 1", len(refines))
	}
	if len(refines[0].Events) != 1 || refines[0].Events[0].Kind != obs.SpanRefine || refines[0].Events[0].Pivots <= 0 {
		t.Fatalf("refine trace malformed: %+v", refines[0].Events)
	}
	if refines[0].Key != deg[0].Key {
		t.Fatalf("refine trace does not share the degraded request's identity: %q vs %q", refines[0].Key, deg[0].Key)
	}
}

// TestEngineTraceCanceled checks that a request canceled before admission
// records a cancel span and finishes with the canceled outcome.
func TestEngineTraceCanceled(t *testing.T) {
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	e := tracedEngine(Config{Workers: 1, Hooks: &Hooks{BeforeSolve: func() {
		select {
		case started <- struct{}{}:
		default:
		}
		<-block
	}}})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		e.Plan(PlanRequest{Platform: smallPlatform(t, 91), Source: 0})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.PlanContext(ctx, PlanRequest{Platform: smallPlatform(t, 92), Source: 0})
	if err == nil {
		t.Fatal("canceled request succeeded")
	}
	close(block)
	wg.Wait()
	canceledTraces := e.Tracer().Snapshot(obs.OutcomeCanceled, 0)
	if len(canceledTraces) != 1 {
		t.Fatalf("canceled traces = %d, want 1", len(canceledTraces))
	}
	kinds := eventKinds(canceledTraces[0])
	if len(kinds) != 2 || kinds[1] != obs.SpanCancel || canceledTraces[0].Events[1].At != "queue" {
		t.Fatalf("canceled span sequence = %v (%+v)", kinds, canceledTraces[0].Events)
	}
}

// TestEngineTraceDeterministicDump replays the same request set twice and
// checks the marshaled trace dumps are byte-identical (the engine-level face
// of the acceptance criterion; the cross-worker-count variant lives in
// internal/load).
func TestEngineTraceDeterministicDump(t *testing.T) {
	run := func() []byte {
		e := tracedEngine(Config{Workers: 2})
		for i := 0; i < 3; i++ {
			p := smallPlatform(t, int64(100+i%2)) // two distinct platforms, one repeat
			if _, err := e.Plan(PlanRequest{Platform: p, Source: 0}); err != nil {
				t.Fatal(err)
			}
		}
		b, err := json.Marshal(e.Tracer().Snapshot("", 0))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if string(a) != string(b) {
		t.Fatalf("trace dumps differ across identical runs:\n%s\n---\n%s", a, b)
	}
}

// TestConcurrentHooksAndSpans is the race-mode satellite: hooks and span
// emission firing concurrently from lookup (under the engine lock), admit,
// and solve paths must not deadlock or lose events, and the hook-side event
// counts must agree exactly with the engine counters and the trace ring.
func TestConcurrentHooksAndSpans(t *testing.T) {
	var lookups, collapsed, misses, admits atomic.Int64
	cfg := Config{
		Workers: 4,
		Hooks: &Hooks{
			OnLookup: func(ev LookupEvent) {
				lookups.Add(1)
				if ev.Collapsed {
					collapsed.Add(1)
				}
				if ev.Miss {
					misses.Add(1)
				}
			},
			OnAdmit: func(AdmitEvent) { admits.Add(1) },
		},
	}
	e := tracedEngine(cfg)

	const goroutines = 8
	const perG = 10
	platforms := []*platform.Platform{smallPlatform(t, 201), smallPlatform(t, 202), smallPlatform(t, 203)}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				p := platforms[(g+i)%len(platforms)]
				if _, err := e.Plan(PlanRequest{Platform: p, Source: 0}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	e.Drain()

	s := e.Stats()
	total := int64(goroutines * perG)
	if s.Requests != total {
		t.Fatalf("Requests = %d, want %d", s.Requests, total)
	}
	if lookups.Load() != s.Requests {
		t.Fatalf("OnLookup fired %d times, engine routed %d requests", lookups.Load(), s.Requests)
	}
	if misses.Load() != s.Misses || collapsed.Load() != s.Singleflight {
		t.Fatalf("hook counts (miss=%d collapsed=%d) disagree with stats (miss=%d singleflight=%d)",
			misses.Load(), collapsed.Load(), s.Misses, s.Singleflight)
	}
	if admits.Load() != s.Solves {
		t.Fatalf("OnAdmit fired %d times, engine ran %d solves", admits.Load(), s.Solves)
	}
	if n := e.Tracer().Len(); int64(n) != total {
		t.Fatalf("trace ring holds %d traces, want %d", n, total)
	}
	// Every trace leads with exactly one lookup span, so span emission lost
	// nothing either.
	for _, tr := range e.Tracer().Snapshot("", 0) {
		if len(tr.Events) == 0 || tr.Events[0].Kind != obs.SpanLookup {
			t.Fatalf("trace %s does not lead with a lookup span: %+v", tr.ID, tr.Events)
		}
	}
}
