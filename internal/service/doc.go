// Package service is the concurrent broadcast-planning engine behind the
// bcast-serve CLI: a long-running façade over the steady-state solver and the
// tree heuristics that reuses solved work across requests.
//
// Every incoming platform is reduced to its canonical content fingerprint
// (platform.Fingerprint: permutation-invariant, byte-stable across runs).
// The engine keys an LRU cache of solved plans — and of warm steady.Session
// handles — on that fingerprint:
//
//   - A repeated identical request is answered from the cache with the
//     byte-identical marshaled plan, without touching the solver.
//
//   - Concurrent identical requests are collapsed into one solve
//     (singleflight): the first request computes, the others wait on it and
//     count as cache hits.
//
//   - A near-duplicate request — a platform one churn delta away from a
//     cached one, addressed by base fingerprint plus a delta list — reuses
//     the cached entry's warm session: tightening deltas re-optimize the
//     previous optimal basis with a few dual simplex pivots instead of
//     cold-solving the new platform from scratch.
//
// Independent requests are sharded across a bounded worker pool; PlanEach
// fans a batch out with parallel.MapStream semantics (results in index order,
// deterministic for any worker count). The scenario sweep engine routes its
// per-unit solves through an Engine, so sweeps get cross-unit cache hits for
// free.
package service
