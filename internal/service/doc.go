// Package service is the concurrent broadcast-planning engine behind the
// bcast-serve CLI: a long-running façade over the steady-state solver and the
// tree heuristics that reuses solved work across requests.
//
// Every incoming platform is reduced to its canonical content fingerprint
// (platform.Fingerprint: permutation-invariant, byte-stable across runs).
// The engine keys an LRU cache of solved plans — and of warm steady.Session
// handles — on that fingerprint:
//
//   - A repeated identical request is answered from the cache with the
//     byte-identical marshaled plan, without touching the solver.
//
//   - Concurrent identical requests are collapsed into one solve
//     (singleflight): the first request computes, the others wait on it and
//     count as cache hits.
//
//   - A near-duplicate request — a platform one churn delta away from a
//     cached one, addressed by base fingerprint plus a delta list — reuses
//     the cached entry's warm session: tightening deltas re-optimize the
//     previous optimal basis with a few dual simplex pivots instead of
//     cold-solving the new platform from scratch.
//
// Independent requests are sharded across a bounded worker pool; PlanEach
// fans a batch out with parallel.MapStream semantics (results in index order,
// deterministic for any worker count). The scenario sweep engine routes its
// per-unit solves through an Engine, so sweeps get cross-unit cache hits for
// free.
//
// # Overload contract
//
// Past capacity the engine answers or refuses — never queues without bound:
//
//   - Deadlines and cancellation: PlanContext (and friends) thread a context
//     into the simplex pivot loop, which polls it every 64 pivots. An expired
//     or canceled solve returns ErrCanceled, removes its claimed cache entry
//     (waiters see the error, the next request re-solves cold), and never
//     leaves a mid-pivot tableau to be reused warm.
//
//   - Admission control: solves run on Config.Workers lanes plus a bounded
//     wait queue of Config.QueueDepth tokens (0 = unbounded). A cold miss
//     that finds lanes and queue full is shed immediately with an
//     *OverloadedError carrying a Retry-After hint derived from the observed
//     solve-latency distribution. Hits and collapsed singleflight waiters
//     bypass admission entirely, so the hot set stays flat-latency under
//     saturation.
//
//   - Degraded mode: a PlanRequest with Degraded set accepts an immediate
//     heuristic tree on a cold miss (Plan.Degraded is set) while a background
//     worker refines the cache entry to the LP optimum; Drain waits for
//     in-flight refinements.
package service
