package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
)

// tracedServer starts a handler over an engine with a WallClock tracer (the
// bcast-serve configuration) and a captured slog logger.
func tracedServer(t *testing.T, logBuf *bytes.Buffer) (*httptest.Server, *Engine) {
	t.Helper()
	e := New(Config{Workers: 2, Tracer: obs.NewTracer(obs.Options{Capacity: 256, WallClock: true})})
	var logger *slog.Logger
	if logBuf != nil {
		logger = slog.New(slog.NewJSONHandler(logBuf, nil))
	}
	srv := httptest.NewServer(NewHandlerOpts(e, HandlerOptions{Logger: logger}))
	t.Cleanup(srv.Close)
	return srv, e
}

// TestHTTPTraceHeaderAndEndpoint checks the tentpole HTTP surface: the
// X-Bcast-Trace header, the envelope trace ID, and GET /v1/trace with its
// outcome filter.
func TestHTTPTraceHeaderAndEndpoint(t *testing.T) {
	var logBuf bytes.Buffer
	srv, _ := tracedServer(t, &logBuf)
	p := smallPlatform(t, 31)

	var traceIDs []string
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, srv, "/v1/plan", PlanRequest{Platform: p, Source: 0})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan status %d: %s", resp.StatusCode, body)
		}
		hdr := resp.Header.Get("X-Bcast-Trace")
		if hdr == "" {
			t.Fatal("response missing X-Bcast-Trace header")
		}
		var env struct {
			Cached  bool   `json:"cached"`
			TraceID string `json:"traceId"`
		}
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatal(err)
		}
		if env.TraceID != hdr {
			t.Fatalf("envelope traceId %q != header %q", env.TraceID, hdr)
		}
		traceIDs = append(traceIDs, hdr)
	}
	if traceIDs[0] == traceIDs[1] {
		t.Fatalf("two requests shared trace ID %q", traceIDs[0])
	}

	resp, err := http.Get(srv.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	var env traceEnvelope
	err = json.NewDecoder(resp.Body).Decode(&env)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if env.Count != 2 || len(env.Traces) != 2 {
		t.Fatalf("trace dump count = %d (%d traces), want 2", env.Count, len(env.Traces))
	}
	// Wall-clock dump is most-recent-first; each trace ends with the
	// response-write span carrying the HTTP status.
	for _, tr := range env.Traces {
		last := tr.Events[len(tr.Events)-1]
		if last.Kind != obs.SpanResponse || last.Status != http.StatusOK {
			t.Fatalf("trace %s does not end with a 200 response span: %+v", tr.ID, tr.Events)
		}
		if tr.StartNs == 0 {
			t.Fatalf("WallClock trace missing StartNs: %+v", tr)
		}
	}
	if env.Traces[0].ID != traceIDs[1] {
		t.Fatalf("dump not most-recent-first: got %q, want %q first", env.Traces[0].ID, traceIDs[1])
	}

	// Outcome filter: exactly one miss and one hit.
	for outcome, want := range map[string]int{"miss": 1, "hit": 1, "shed": 0} {
		resp, err := http.Get(srv.URL + "/v1/trace?outcome=" + outcome)
		if err != nil {
			t.Fatal(err)
		}
		var filtered traceEnvelope
		err = json.NewDecoder(resp.Body).Decode(&filtered)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if filtered.Count != want {
			t.Fatalf("outcome=%s count = %d, want %d", outcome, filtered.Count, want)
		}
	}
	if resp, err := http.Get(srv.URL + "/v1/trace?limit=bogus"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad limit: status %d, want 400", resp.StatusCode)
		}
	}

	// Request logs carried the trace IDs.
	logs := logBuf.String()
	for _, id := range traceIDs {
		if !strings.Contains(logs, id) {
			t.Fatalf("request log missing trace ID %s:\n%s", id, logs)
		}
	}

	// An untraced engine 404s the endpoint.
	plain := httptest.NewServer(NewHandler(New(Config{})))
	defer plain.Close()
	resp, err = http.Get(plain.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("untraced /v1/trace: status %d, want 404", resp.StatusCode)
	}
}

// TestHTTPPrometheusMetrics scrapes GET /metrics and validates the
// exposition: well-formed Prometheus text covering every engine counter
// family plus the solve-stage summaries and per-route HTTP families.
func TestHTTPPrometheusMetrics(t *testing.T) {
	srv, _ := tracedServer(t, nil)
	p := smallPlatform(t, 32)
	if resp, body := postJSON(t, srv, "/v1/plan", PlanRequest{Platform: p, Source: 0}); resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d: %s", resp.StatusCode, body)
	}
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	body := string(raw)
	if _, err := obs.ValidateExposition(body); err != nil {
		t.Fatalf("exposition invalid: %v\n%s", err, body)
	}
	for _, fam := range []string{
		"bcast_requests_total", "bcast_cache_hits_total", "bcast_cache_misses_total",
		"bcast_twin_misses_total", "bcast_singleflight_total", "bcast_evictions_total",
		"bcast_evictions_deferred_total", "bcast_queued_total", "bcast_shed_total",
		"bcast_canceled_total", "bcast_degraded_total", "bcast_refines_total",
		"bcast_refine_failures_total", "bcast_solves_total", "bcast_delta_plans_total",
		"bcast_warm_resolves_total", "bcast_session_rebuilds_total",
		"bcast_lp_pivots_total", "bcast_lp_warm_pivots_total", "bcast_lp_cold_pivots_total",
		"bcast_churn_runs_total", "bcast_cache_entries", "bcast_cache_capacity",
		"bcast_workers", "bcast_queue_depth",
		"bcast_solve_latency_seconds", "bcast_queue_wait_seconds", "bcast_refine_latency_seconds",
		"bcast_solve_pivots", "bcast_solve_rounds", "bcast_solve_cuts",
		"bcast_http_requests_total",
	} {
		if !strings.Contains(body, "# TYPE "+fam+" ") {
			t.Fatalf("exposition missing family %s:\n%s", fam, body)
		}
	}
	if !strings.Contains(body, "bcast_requests_total 1") || !strings.Contains(body, "bcast_solves_total 1") {
		t.Fatalf("counter values missing:\n%s", body)
	}
	if !strings.Contains(body, `bcast_http_requests_total{route="/v1/plan"} 1`) {
		t.Fatalf("per-route family missing:\n%s", body)
	}
	if !strings.Contains(body, `bcast_solve_pivots{quantile="0.9"}`) || !strings.Contains(body, "bcast_solve_pivots_count 1") {
		t.Fatalf("solve-stage summary missing:\n%s", body)
	}
}

// TestHTTPMetricsJSONOverloadAndStage checks the satellite: /v1/metrics
// always carries the overload counters (even at zero) and the solve-stage
// histograms.
func TestHTTPMetricsJSONOverloadAndStage(t *testing.T) {
	srv, _ := tracedServer(t, nil)
	p := smallPlatform(t, 33)
	if resp, body := postJSON(t, srv, "/v1/plan", PlanRequest{Platform: p, Source: 0}); resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d: %s", resp.StatusCode, body)
	}
	resp, err := http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	// The overload keys must be present in the raw JSON even when zero.
	for _, key := range []string{`"overload"`, `"shed":0`, `"queued":0`, `"canceled":0`, `"degraded":0`,
		`"refines":0`, `"refineFailures":0`, `"evictionsDeferred":0`, `"queueDepth":0`, `"stage"`} {
		if !strings.Contains(string(raw), key) {
			t.Fatalf("/v1/metrics missing %s:\n%s", key, raw)
		}
	}
	var snap MetricsSnapshot
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Stage.SolvePivots.Count != 1 || snap.Stage.SolvePivots.P50 <= 0 {
		t.Fatalf("stage solve-pivots summary = %+v, want one recorded solve", snap.Stage.SolvePivots)
	}
	if snap.Stage.SolveLatencyNs.Count != 1 {
		t.Fatalf("stage solve-latency summary = %+v", snap.Stage.SolveLatencyNs)
	}
}

// TestHTTPPanicBodyWithActiveTrace is the satellite regression test: a
// handler panic with an active trace must produce a non-empty structured 500
// carrying the trace ID and method/path, and the log line must carry the
// stack with the same trace ID.
func TestHTTPPanicBodyWithActiveTrace(t *testing.T) {
	var logBuf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&logBuf, nil))
	e := New(Config{Tracer: obs.NewTracer(obs.Options{Capacity: 16, WallClock: true})})
	h := instrument(e, NewMetrics(), logger, "/boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom with trace")
	})
	srv := httptest.NewServer(h)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/boom")
	if err != nil {
		t.Fatalf("panic severed the connection: %v", err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(bytes.TrimSpace(raw)) == 0 {
		t.Fatal("panic produced an empty body")
	}
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	traceID := resp.Header.Get("X-Bcast-Trace")
	if traceID == "" {
		t.Fatal("panic response missing X-Bcast-Trace header")
	}
	var eb errorBody
	if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatalf("panic body is not JSON: %q", raw)
	}
	if !strings.Contains(eb.Error, "kaboom with trace") {
		t.Fatalf("panic body error = %q", eb.Error)
	}
	if eb.TraceID != traceID || eb.Method != http.MethodGet || eb.Path != "/boom" {
		t.Fatalf("panic body not attributable: %+v (want trace %s, GET /boom)", eb, traceID)
	}
	logs := logBuf.String()
	if !strings.Contains(logs, traceID) || !strings.Contains(logs, "stack") || !strings.Contains(logs, "panic recovered") {
		t.Fatalf("panic log missing trace/stack:\n%s", logs)
	}
}
