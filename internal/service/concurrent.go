package service

import (
	"context"
	"fmt"
	"math"

	"repro/internal/platform"
)

// ConcurrentSource is one broadcast of a concurrent-broadcast request.
type ConcurrentSource struct {
	// Source is the broadcast source processor.
	Source int `json:"source"`
	// Share is the fraction of the platform's port capacity granted to this
	// broadcast (0 < Share, sum over sources <= 1). Zero everywhere means
	// equal shares 1/len(sources).
	Share float64 `json:"share,omitempty"`
}

// ConcurrentRequest asks for a concurrent-broadcast plan: several sources
// broadcasting on the SAME platform at the same time, splitting the one-port
// and link capacities by explicit shares. The steady-state LP is positively
// homogeneous — scaling every rate of a full-capacity solution by f keeps
// every occupation constraint satisfied with budget f — so each source's
// broadcast runs at exactly share x (its solo optimal throughput), and the
// shared-capacity accounting below is exact rather than heuristic.
type ConcurrentRequest struct {
	// Platform is the platform shared by all broadcasts.
	Platform *platform.Platform `json:"platform"`
	// Sources are the concurrent broadcasts (at least one; sources must be
	// distinct alive nodes).
	Sources []ConcurrentSource `json:"sources"`
	// Heuristic, Trees, ColdLP, RevisedLP and LPMaxIterations are forwarded
	// to every per-source plan (see PlanRequest). Trees > 0 additionally
	// packs each broadcast into at most Trees weighted trees.
	Heuristic       string `json:"heuristic,omitempty"`
	Trees           int    `json:"trees,omitempty"`
	ColdLP          bool   `json:"coldLP,omitempty"`
	RevisedLP       bool   `json:"revisedLP,omitempty"`
	LPMaxIterations int    `json:"lpMaxIterations,omitempty"`
	// DeadlineMs bounds each per-source solve (see PlanRequest.DeadlineMs).
	DeadlineMs int `json:"deadlineMs,omitempty"`
	// Workers bounds the per-source solves running concurrently (0 = one
	// lane per source, capped by the engine's worker pool).
	Workers int `json:"workers,omitempty"`
}

// ConcurrentBroadcast is the outcome of one source's broadcast within a
// concurrent plan.
type ConcurrentBroadcast struct {
	// Source and Share echo the request (Share defaulted when the request
	// left it zero).
	Source int     `json:"source"`
	Share  float64 `json:"share"`
	// Throughput is the broadcast's steady-state rate under its share:
	// Share x the source's solo optimal throughput.
	Throughput float64 `json:"throughput"`
	// SoloThroughput is the source's full-capacity optimal throughput.
	SoloThroughput float64 `json:"soloThroughput"`
	// PackedThroughput is Share x the packed throughput (only when the
	// request asked for tree packing).
	PackedThroughput float64 `json:"packedThroughput,omitempty"`
	// Cached reports that the per-source plan came from the engine cache.
	Cached bool `json:"cached"`
	// Plan is the source's full-capacity plan (edge rates, packing, ...);
	// its rates scale by Share within the concurrent schedule.
	Plan *Plan `json:"plan"`
}

// ConcurrentPlan is a complete concurrent-broadcast schedule.
type ConcurrentPlan struct {
	Nodes int `json:"nodes"`
	Links int `json:"links"`
	// Broadcasts are the per-source outcomes, in request order.
	Broadcasts []ConcurrentBroadcast `json:"broadcasts"`
	// TotalThroughput is the sum of the per-broadcast throughputs.
	TotalThroughput float64 `json:"totalThroughput"`
	// MaxInOccupation and MaxOutOccupation are the worst per-node one-port
	// occupations under the combined share-scaled rates of all broadcasts
	// (<= 1 + tolerance by construction; the ledger recomputes them from
	// the actual rates as a safety check rather than trusting the algebra).
	MaxInOccupation  float64 `json:"maxInOccupation"`
	MaxOutOccupation float64 `json:"maxOutOccupation"`
}

// concurrentShareTol absorbs float noise when validating that the shares
// sum to at most 1 and when checking the combined occupation ledger.
const concurrentShareTol = 1e-9

// Concurrent plans concurrent broadcasts from several sources on one
// platform. See ConcurrentContext.
func (e *Engine) Concurrent(req ConcurrentRequest) (*ConcurrentPlan, error) {
	return e.ConcurrentContext(context.Background(), req)
}

// ConcurrentContext admits multiple broadcast sources onto one platform:
// each source is planned at full capacity (through the regular plan path,
// so caching, admission control and deadlines all apply), then scaled by
// its share. The combined schedule is validated against the shared one-port
// capacities — every node's total incoming and outgoing occupation across
// ALL broadcasts must stay within 1 — and the worst occupations are
// reported. The result is deterministic for a given request, whatever
// Workers is: per-source plans land in request order and each solve is
// itself deterministic.
func (e *Engine) ConcurrentContext(ctx context.Context, req ConcurrentRequest) (*ConcurrentPlan, error) {
	if req.Platform == nil {
		return nil, ErrNoPlatform
	}
	if len(req.Sources) == 0 {
		return nil, fmt.Errorf("%w: concurrent request has no sources", ErrBadRequest)
	}
	p := req.Platform
	shares := make([]float64, len(req.Sources))
	sum := 0.0
	seen := make(map[int]bool, len(req.Sources))
	for i, cs := range req.Sources {
		if cs.Source < 0 || cs.Source >= p.NumNodes() {
			return nil, fmt.Errorf("%w: source %d out of range", ErrBadRequest, cs.Source)
		}
		if seen[cs.Source] {
			return nil, fmt.Errorf("%w: duplicate source %d", ErrBadRequest, cs.Source)
		}
		seen[cs.Source] = true
		if cs.Share < 0 || math.IsNaN(cs.Share) || math.IsInf(cs.Share, 0) {
			return nil, fmt.Errorf("%w: source %d has invalid share %v", ErrBadRequest, cs.Source, cs.Share)
		}
		shares[i] = cs.Share
		sum += cs.Share
	}
	if sum == 0 {
		for i := range shares {
			shares[i] = 1 / float64(len(shares))
		}
	} else {
		for i, s := range shares {
			if s == 0 {
				return nil, fmt.Errorf("%w: source %d has zero share while others are explicit", ErrBadRequest, req.Sources[i].Source)
			}
		}
		if sum > 1+concurrentShareTol {
			return nil, fmt.Errorf("%w: shares sum to %v, exceeding the platform capacity", ErrBadRequest, sum)
		}
	}

	reqs := make([]PlanRequest, len(req.Sources))
	for i, cs := range req.Sources {
		reqs[i] = PlanRequest{
			Platform:        p,
			Source:          cs.Source,
			Heuristic:       req.Heuristic,
			Trees:           req.Trees,
			ColdLP:          req.ColdLP,
			RevisedLP:       req.RevisedLP,
			LPMaxIterations: req.LPMaxIterations,
			DeadlineMs:      req.DeadlineMs,
		}
	}
	workers := req.Workers
	if workers <= 0 {
		workers = len(reqs)
	}
	outcomes := e.PlanEachContext(ctx, reqs, workers)

	cp := &ConcurrentPlan{
		Nodes:      p.NumNodes(),
		Links:      p.NumLinks(),
		Broadcasts: make([]ConcurrentBroadcast, len(outcomes)),
	}
	combined := make([]float64, p.NumLinks())
	for i, out := range outcomes {
		if out.Error != "" {
			return nil, fmt.Errorf("service: concurrent source %d: %s", req.Sources[i].Source, out.Error)
		}
		plan := out.Result.Plan
		b := ConcurrentBroadcast{
			Source:         plan.Source,
			Share:          shares[i],
			SoloThroughput: plan.Throughput,
			Throughput:     shares[i] * plan.Throughput,
			Cached:         out.Result.Cached,
			Plan:           plan,
		}
		if plan.Packing != nil {
			b.PackedThroughput = shares[i] * plan.PackedThroughput
		}
		cp.Broadcasts[i] = b
		cp.TotalThroughput += b.Throughput
		for id, r := range plan.EdgeRate {
			combined[id] += shares[i] * r
		}
	}

	// Capacity ledger: the combined share-scaled rates of all broadcasts
	// must respect every node's one-port budgets. This holds by positive
	// homogeneity of the LP; recomputing it here turns any violation of
	// that argument (or a corrupted cached plan) into a hard error instead
	// of an oversubscribed schedule.
	for u := 0; u < p.NumNodes(); u++ {
		if !p.NodeAlive(u) {
			continue
		}
		for dir, ids := range [][]int{p.InLinkIDs(u), p.OutLinkIDs(u)} {
			occ := 0.0
			for _, id := range ids {
				if p.LinkLive(id) {
					occ += p.SliceTime(id) * combined[id]
				}
			}
			if occ > 1+1e-6 {
				side := "incoming"
				if dir == 1 {
					side = "outgoing"
				}
				return nil, fmt.Errorf("service: concurrent schedule oversubscribes node %d %s port (occupation %v)", u, side, occ)
			}
			if dir == 0 {
				if occ > cp.MaxInOccupation {
					cp.MaxInOccupation = occ
				}
			} else if occ > cp.MaxOutOccupation {
				cp.MaxOutOccupation = occ
			}
		}
	}
	return cp, nil
}
