package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJSON(t *testing.T, srv *httptest.Server, path string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHTTPPlanRoundTrip(t *testing.T) {
	e := New(Config{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	p := smallPlatform(t, 51)
	req := PlanRequest{Platform: p, Source: 0}

	resp, body := postJSON(t, srv, "/v1/plan", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var first planEnvelope
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first plan reported cached")
	}

	resp, body = postJSON(t, srv, "/v1/plan", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var second planEnvelope
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("repeated plan not served from cache")
	}
	if !bytes.Equal(first.Plan, second.Plan) {
		t.Error("cached plan subdocument is not byte-identical")
	}

	var plan Plan
	if err := json.Unmarshal(first.Plan, &plan); err != nil {
		t.Fatal(err)
	}
	if plan.Throughput <= 0 || plan.Fingerprint == "" {
		t.Errorf("plan = %+v, want positive throughput and a fingerprint", plan)
	}

	// Delta request against the returned fingerprint.
	resp, body = postJSON(t, srv, "/v1/plan", map[string]interface{}{
		"base":   plan.Fingerprint,
		"deltas": []map[string]interface{}{{"kind": 0, "link": 0, "factor": 2.0}},
		"source": 0,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta plan status %d: %s", resp.StatusCode, body)
	}
	var mut planEnvelope
	if err := json.Unmarshal(body, &mut); err != nil {
		t.Fatal(err)
	}
	if !mut.Warm {
		t.Error("delta plan did not take the warm-session path")
	}
}

func TestHTTPEvaluateAndChurn(t *testing.T) {
	e := New(Config{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()
	p := smallPlatform(t, 53)

	resp, body := postJSON(t, srv, "/v1/evaluate", EvaluateRequest{
		Platform: p, Source: 0, Heuristics: []string{"lp-grow-tree"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate status %d: %s", resp.StatusCode, body)
	}
	var ev Evaluation
	if err := json.Unmarshal(body, &ev); err != nil {
		t.Fatal(err)
	}
	if len(ev.Results) != 1 || ev.Results[0].Error != "" || ev.Results[0].Ratio <= 0 {
		t.Errorf("evaluation = %+v", ev)
	}

	resp, body = postJSON(t, srv, "/v1/churn", ChurnRequest{Platform: p, Source: 0, Events: 5, Seed: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("churn status %d: %s", resp.StatusCode, body)
	}
	var rep ChurnReplay
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Trace.Events) != 5 {
		t.Errorf("trace has %d events, want 5", len(rep.Trace.Events))
	}
}

func TestHTTPStatsAndHealth(t *testing.T) {
	e := New(Config{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}

	if _, err := e.Plan(PlanRequest{Platform: smallPlatform(t, 55), Source: 0}); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 || st.Solves != 1 || st.CacheEntries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHTTPErrors(t *testing.T) {
	e := New(Config{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	// Malformed body.
	resp, err := http.Post(srv.URL+"/v1/plan", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}

	// Missing platform.
	resp, body := postJSON(t, srv, "/v1/plan", map[string]int{"source": 0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing platform: status %d, want 400 (%s)", resp.StatusCode, body)
	}
	var e1 errorBody
	if err := json.Unmarshal(body, &e1); err != nil || e1.Error == "" {
		t.Errorf("missing platform: no JSON error body: %s", body)
	}

	// Unknown base fingerprint.
	fp := smallPlatform(t, 57).Fingerprint().String()
	resp, _ = postJSON(t, srv, "/v1/plan", map[string]interface{}{"base": fp, "source": 0})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown base: status %d, want 404", resp.StatusCode)
	}

	// Wrong method.
	resp, err = http.Get(srv.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET plan: status %d, want 405", resp.StatusCode)
	}
}
