package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func postJSON(t *testing.T, srv *httptest.Server, path string, body interface{}) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func TestHTTPPlanRoundTrip(t *testing.T) {
	e := New(Config{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	p := smallPlatform(t, 51)
	req := PlanRequest{Platform: p, Source: 0}

	resp, body := postJSON(t, srv, "/v1/plan", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var first planEnvelope
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first plan reported cached")
	}

	resp, body = postJSON(t, srv, "/v1/plan", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var second planEnvelope
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Error("repeated plan not served from cache")
	}
	if !bytes.Equal(first.Plan, second.Plan) {
		t.Error("cached plan subdocument is not byte-identical")
	}

	var plan Plan
	if err := json.Unmarshal(first.Plan, &plan); err != nil {
		t.Fatal(err)
	}
	if plan.Throughput <= 0 || plan.Fingerprint == "" {
		t.Errorf("plan = %+v, want positive throughput and a fingerprint", plan)
	}

	// Delta request against the returned fingerprint.
	resp, body = postJSON(t, srv, "/v1/plan", map[string]interface{}{
		"base":   plan.Fingerprint,
		"deltas": []map[string]interface{}{{"kind": 0, "link": 0, "factor": 2.0}},
		"source": 0,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delta plan status %d: %s", resp.StatusCode, body)
	}
	var mut planEnvelope
	if err := json.Unmarshal(body, &mut); err != nil {
		t.Fatal(err)
	}
	if !mut.Warm {
		t.Error("delta plan did not take the warm-session path")
	}
}

func TestHTTPEvaluateAndChurn(t *testing.T) {
	e := New(Config{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()
	p := smallPlatform(t, 53)

	resp, body := postJSON(t, srv, "/v1/evaluate", EvaluateRequest{
		Platform: p, Source: 0, Heuristics: []string{"lp-grow-tree"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("evaluate status %d: %s", resp.StatusCode, body)
	}
	var ev Evaluation
	if err := json.Unmarshal(body, &ev); err != nil {
		t.Fatal(err)
	}
	if len(ev.Results) != 1 || ev.Results[0].Error != "" || ev.Results[0].Ratio <= 0 {
		t.Errorf("evaluation = %+v", ev)
	}

	resp, body = postJSON(t, srv, "/v1/churn", ChurnRequest{Platform: p, Source: 0, Events: 5, Seed: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("churn status %d: %s", resp.StatusCode, body)
	}
	var rep ChurnReplay
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Trace.Events) != 5 {
		t.Errorf("trace has %d events, want 5", len(rep.Trace.Events))
	}
}

func TestHTTPConcurrent(t *testing.T) {
	e := New(Config{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()
	p := smallPlatform(t, 53)

	resp, body := postJSON(t, srv, "/v1/concurrent", ConcurrentRequest{
		Platform: p,
		Sources:  []ConcurrentSource{{Source: 0, Share: 0.6}, {Source: 1, Share: 0.4}},
		Trees:    32,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("concurrent status %d: %s", resp.StatusCode, body)
	}
	var cp ConcurrentPlan
	if err := json.Unmarshal(body, &cp); err != nil {
		t.Fatal(err)
	}
	if len(cp.Broadcasts) != 2 || cp.TotalThroughput <= 0 {
		t.Fatalf("concurrent plan = %+v", cp)
	}
	for i, b := range cp.Broadcasts {
		if b.Plan == nil || b.Plan.Packing == nil || b.Throughput <= 0 {
			t.Errorf("broadcast %d incomplete: %+v", i, b)
		}
	}

	resp, body = postJSON(t, srv, "/v1/concurrent", ConcurrentRequest{Platform: p})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("no-sources status %d: %s", resp.StatusCode, body)
	}
}

func TestHTTPStatsAndHealth(t *testing.T) {
	e := New(Config{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz status %d", resp.StatusCode)
	}

	if _, err := e.Plan(PlanRequest{Platform: smallPlatform(t, 55), Source: 0}); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Requests != 1 || st.Solves != 1 || st.CacheEntries != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestHTTPErrors(t *testing.T) {
	e := New(Config{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	// Malformed body.
	resp, err := http.Post(srv.URL+"/v1/plan", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
	}

	// Missing platform.
	resp, body := postJSON(t, srv, "/v1/plan", map[string]int{"source": 0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing platform: status %d, want 400 (%s)", resp.StatusCode, body)
	}
	var e1 errorBody
	if err := json.Unmarshal(body, &e1); err != nil || e1.Error == "" {
		t.Errorf("missing platform: no JSON error body: %s", body)
	}

	// Unknown base fingerprint.
	fp := smallPlatform(t, 57).Fingerprint().String()
	resp, _ = postJSON(t, srv, "/v1/plan", map[string]interface{}{"base": fp, "source": 0})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown base: status %d, want 404", resp.StatusCode)
	}

	// Wrong method.
	resp, err = http.Get(srv.URL + "/v1/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET plan: status %d, want 405", resp.StatusCode)
	}
}

// TestHTTPMalformedJSONStructured400 pins the malformed-request contract:
// every flavor of malformed JSON — syntax errors, wrong field types, empty
// bodies, unknown fields, and valid JSON followed by trailing garbage — is
// a 400 with a structured {"error": ...} payload, never an empty body.
func TestHTTPMalformedJSONStructured400(t *testing.T) {
	e := New(Config{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	cases := []struct {
		name string
		body string
	}{
		{"syntax error", `{nope`},
		{"truncated", `{"platform": {"nodes": [`},
		{"empty body", ``},
		{"wrong type", `{"source": "zero"}`},
		{"not an object", `[1, 2, 3]`},
		{"unknown field", `{"sauce": 0}`},
		{"trailing garbage", `{"source": 0} {"more": 1}`},
		{"trailing junk bytes", `{"source": 0} ???`},
	}
	for _, tc := range cases {
		for _, path := range []string{"/v1/plan", "/v1/evaluate", "/v1/churn"} {
			resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(tc.body))
			if err != nil {
				t.Fatalf("%s %s: %v", tc.name, path, err)
			}
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				t.Fatalf("%s %s: read body: %v", tc.name, path, err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("%s %s: status %d, want 400 (%s)", tc.name, path, resp.StatusCode, buf.Bytes())
			}
			var eb errorBody
			if err := json.Unmarshal(buf.Bytes(), &eb); err != nil || eb.Error == "" {
				t.Errorf("%s %s: response is not a structured error payload: %q", tc.name, path, buf.String())
			}
		}
	}
}

// TestHTTPPanicRecovered asserts that a panic inside a handler surfaces as
// a structured 500 JSON error, not a severed connection with an empty body.
func TestHTTPPanicRecovered(t *testing.T) {
	h := instrument(nil, NewMetrics(), nil, "/boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/boom")
	if err != nil {
		t.Fatalf("panic severed the connection: %v", err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", resp.StatusCode)
	}
	var eb errorBody
	if err := json.Unmarshal(buf.Bytes(), &eb); err != nil || !strings.Contains(eb.Error, "kaboom") {
		t.Errorf("panic did not produce a structured error body: %q", buf.String())
	}
}

// TestHTTPMetricsEndpoint checks that /v1/metrics reports the engine
// counters plus per-endpoint request/error counts and latency summaries.
func TestHTTPMetricsEndpoint(t *testing.T) {
	e := New(Config{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	p := smallPlatform(t, 59)
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, srv, "/v1/plan", PlanRequest{Platform: p, Source: 0})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("plan status %d: %s", resp.StatusCode, body)
		}
	}
	// One client error on the same route.
	resp, err := http.Post(srv.URL+"/v1/plan", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap MetricsSnapshot
	err = json.NewDecoder(resp.Body).Decode(&snap)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Engine.Requests != 2 || snap.Engine.Hits != 1 || snap.Engine.Misses != 1 {
		t.Errorf("engine stats = %+v, want 2 requests / 1 hit / 1 miss", snap.Engine)
	}
	plan := snap.Endpoints["/v1/plan"]
	if plan.Requests != 3 || plan.Errors != 1 {
		t.Errorf("plan endpoint metrics = %+v, want 3 requests / 1 error", plan)
	}
	if plan.LatencyNs.Count != 3 || plan.LatencyNs.P50 <= 0 || plan.LatencyNs.P99 < plan.LatencyNs.P50 {
		t.Errorf("plan latency summary = %+v", plan.LatencyNs)
	}
	if resp, err = http.Post(srv.URL+"/v1/metrics", "application/json", strings.NewReader("{}")); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST metrics: status %d, want 405", resp.StatusCode)
		}
	}
}

// TestHTTPAbortHandlerPropagates asserts the recovery middleware does not
// swallow http.ErrAbortHandler (net/http's sanctioned response abort): the
// connection must be severed so the client detects the truncation instead
// of reading a fabricated clean error.
func TestHTTPAbortHandlerPropagates(t *testing.T) {
	h := instrument(nil, NewMetrics(), nil, "/abort", func(w http.ResponseWriter, r *http.Request) {
		panic(http.ErrAbortHandler)
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/abort")
	if err == nil {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		t.Fatalf("abort was converted into a clean reply: status %d body %q", resp.StatusCode, buf.String())
	}
}
