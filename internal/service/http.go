package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/platform"
)

// planEnvelope is the HTTP response of /v1/plan: the cache/warm flags wrap
// the canonical plan bytes, so repeated requests carry a byte-identical plan
// subdocument. Degraded marks a heuristic answer served under the degraded
// contract while the LP refinement runs in the background. TraceID repeats
// the X-Bcast-Trace header when the engine traced the request.
type planEnvelope struct {
	Cached    bool            `json:"cached"`
	Collapsed bool            `json:"collapsed,omitempty"`
	Warm      bool            `json:"warm,omitempty"`
	Degraded  bool            `json:"degraded,omitempty"`
	TraceID   string          `json:"traceId,omitempty"`
	Plan      json.RawMessage `json:"plan"`
}

// errorBody is the JSON error envelope of every endpoint. TraceID, Method
// and Path are set by the panic-recovery middleware so an internal error is
// attributable from the body alone (the satellite contract: a recovered
// panic is never an empty or anonymous reply).
type errorBody struct {
	Error   string `json:"error"`
	TraceID string `json:"traceId,omitempty"`
	Method  string `json:"method,omitempty"`
	Path    string `json:"path,omitempty"`
}

// traceEnvelope is the response body of GET /v1/trace.
type traceEnvelope struct {
	Count  int          `json:"count"`
	Traces []*obs.Trace `json:"traces"`
}

// NewHandler returns the HTTP API of the engine:
//
//	POST /v1/plan      PlanRequest  -> {cached, collapsed, warm, plan}
//	POST /v1/evaluate  EvaluateRequest -> Evaluation
//	POST /v1/concurrent ConcurrentRequest -> ConcurrentPlan (multiple
//	                    sources broadcasting on one platform, capacity
//	                    split by shares; trees=k packs each broadcast)
//	POST /v1/churn     ChurnRequest -> ChurnReplay
//	GET  /v1/stats     -> Stats (engine counters)
//	GET  /v1/metrics   -> MetricsSnapshot (engine counters + per-endpoint
//	                      request/error counts and latency quantiles)
//	GET  /healthz      -> "ok"
//
// All bodies are JSON. Invalid requests return 400, an unknown base
// fingerprint 404, solver failures 500 — always with an {"error": ...} body;
// a panicking handler is recovered into a structured 500, never an empty
// reply.
//
// Overload contract: every solving endpoint runs under the request context
// plus the per-request deadlineMs (or the engine's configured default), and a
// solve abandoned on that deadline is a structured 504. When the engine's
// solve lanes and admission queue are both full, cold work is shed with a
// structured 429 carrying a Retry-After header (whole seconds, estimated from
// recent solve latency). Cache hits and collapsed waits never shed.
func NewHandler(e *Engine) http.Handler {
	return NewHandlerOpts(e, HandlerOptions{})
}

// HandlerOptions tune NewHandlerOpts beyond the defaults.
type HandlerOptions struct {
	// Logger, when non-nil, receives structured request logs (route, method,
	// status, duration, trace ID; plan requests additionally log their cache
	// and admission outcome) and panic-recovery logs with the stack. A nil
	// Logger disables logging.
	Logger *slog.Logger
}

// NewHandlerOpts is NewHandler with options. Beyond the NewHandler routes it
// serves:
//
//	GET  /metrics   -> Prometheus text exposition (PromText)
//	GET  /v1/trace  -> recent request traces (?outcome= filters by
//	                   hit/collapsed/miss/shed/canceled/degraded/refine/error,
//	                   ?limit= caps the count, default 100)
//
// When the engine has a tracer, every response carries an X-Bcast-Trace
// header with the request-scoped trace ID, and /v1/plan responses repeat it
// in the envelope.
func NewHandlerOpts(e *Engine, opts HandlerOptions) http.Handler {
	m := NewMetrics()
	ins := func(route string, h http.HandlerFunc) http.Handler {
		return instrument(e, m, opts.Logger, route, h)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/v1/stats", ins("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, errors.New("service: GET only"))
			return
		}
		writeJSON(w, http.StatusOK, e.Stats())
	}))
	mux.Handle("/v1/metrics", ins("/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, errors.New("service: GET only"))
			return
		}
		writeJSON(w, http.StatusOK, m.Snapshot(e))
	}))
	mux.Handle("/metrics", ins("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, errors.New("service: GET only"))
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		io.WriteString(w, PromText(e, m))
	}))
	mux.Handle("/v1/trace", ins("/v1/trace", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, errors.New("service: GET only"))
			return
		}
		tracer := e.Tracer()
		if tracer == nil {
			writeError(w, http.StatusNotFound, errors.New("service: tracing disabled (engine has no tracer)"))
			return
		}
		limit := 100
		if ls := r.URL.Query().Get("limit"); ls != "" {
			n, err := strconv.Atoi(ls)
			if err != nil || n < 0 {
				writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad limit %q", ls))
				return
			}
			limit = n
		}
		traces := tracer.Snapshot(r.URL.Query().Get("outcome"), limit)
		if traces == nil {
			traces = []*obs.Trace{}
		}
		writeJSON(w, http.StatusOK, traceEnvelope{Count: len(traces), Traces: traces})
	}))
	mux.Handle("/v1/plan", ins("/v1/plan", func(w http.ResponseWriter, r *http.Request) {
		var req PlanRequest
		if !decodePost(w, r, &req) {
			return
		}
		ctx := r.Context()
		// The handler owns the trace (rather than letting PlanContext begin
		// one) so the response-write span lands inside it.
		tracer := e.Tracer()
		tc := tracer.Begin(obs.RequestID(ctx))
		if tc != nil {
			ctx = obs.WithTrace(ctx, tc)
		}
		res, err := e.PlanContext(ctx, req)
		status := http.StatusOK
		if err != nil {
			status = statusFor(err)
			writeOverloadAware(w, err)
		} else {
			writeJSON(w, http.StatusOK, planEnvelope{Cached: res.Cached, Collapsed: res.Collapsed, Warm: res.WarmResolved, Degraded: res.Degraded, TraceID: res.TraceID, Plan: res.JSON})
		}
		if tc != nil {
			tc.Add(obs.Event{Kind: obs.SpanResponse, Status: status})
			tracer.Finish(tc, TraceOutcome(res, err))
		}
		if opts.Logger != nil {
			opts.Logger.Info("plan",
				"trace", obs.RequestID(ctx),
				"outcome", TraceOutcome(res, err),
				"status", status)
		}
	}))
	mux.Handle("/v1/evaluate", ins("/v1/evaluate", func(w http.ResponseWriter, r *http.Request) {
		var req EvaluateRequest
		if !decodePost(w, r, &req) {
			return
		}
		ev, err := e.EvaluateContext(r.Context(), req)
		if err != nil {
			writeOverloadAware(w, err)
			return
		}
		writeJSON(w, http.StatusOK, ev)
	}))
	mux.Handle("/v1/concurrent", ins("/v1/concurrent", func(w http.ResponseWriter, r *http.Request) {
		var req ConcurrentRequest
		if !decodePost(w, r, &req) {
			return
		}
		cp, err := e.ConcurrentContext(r.Context(), req)
		if err != nil {
			writeOverloadAware(w, err)
			return
		}
		writeJSON(w, http.StatusOK, cp)
	}))
	mux.Handle("/v1/churn", ins("/v1/churn", func(w http.ResponseWriter, r *http.Request) {
		var req ChurnRequest
		if !decodePost(w, r, &req) {
			return
		}
		rep, err := e.ChurnContext(r.Context(), req)
		if err != nil {
			writeOverloadAware(w, err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	}))
	return mux
}

// statusWriter remembers the status code and whether anything was written,
// so instrumentation can count errors and the panic recovery knows whether a
// structured 500 body can still be sent.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (sw *statusWriter) WriteHeader(status int) {
	if !sw.wrote {
		sw.status = status
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if !sw.wrote {
		sw.status = http.StatusOK
		sw.wrote = true
	}
	return sw.ResponseWriter.Write(b)
}

// instrument wraps a route handler with latency/error accounting, trace-ID
// minting, structured request logging, and panic recovery. A panic inside
// the engine or a handler is converted into a structured 500 whose body
// carries the error, the request's trace ID, and its method/path (when the
// response has not started yet) instead of a severed connection with an
// empty body; the stack is logged with the same trace ID.
func instrument(e *Engine, m *Metrics, logger *slog.Logger, route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		// Mint the request-scoped trace ID up front so it is in the response
		// headers (and the panic body) no matter how the request ends; the
		// /v1/plan handler picks it up from the context as its trace ID.
		reqID := ""
		if e != nil && e.Tracer() != nil {
			reqID = obs.NewRequestID()
			sw.Header().Set("X-Bcast-Trace", reqID)
			r = r.WithContext(obs.WithRequestID(r.Context(), reqID))
		}
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				if logger != nil {
					logger.Error("panic recovered",
						"route", route,
						"method", r.Method,
						"path", r.URL.Path,
						"trace", reqID,
						"panic", fmt.Sprint(rec),
						"stack", string(debug.Stack()))
				}
				// http.ErrAbortHandler is net/http's sanctioned way to abort
				// a response, and a panic after the response started cannot
				// be converted into a well-formed error body — re-panic in
				// both cases so the server severs the connection and the
				// client sees the truncation.
				// net/http's own recovery compares the raw panic value, so
				// matching its contract requires the identity comparison.
				//lint:ignore senterr net/http defines panic(ErrAbortHandler) by identity, not by error chain
				if rec == http.ErrAbortHandler || sw.wrote {
					m.observe(route, http.StatusInternalServerError, time.Since(start))
					panic(rec)
				}
				writeJSON(sw, http.StatusInternalServerError, errorBody{
					Error:   fmt.Sprintf("service: internal error: %v", rec),
					TraceID: reqID,
					Method:  r.Method,
					Path:    r.URL.Path,
				})
			}
			elapsed := time.Since(start)
			m.observe(route, sw.status, elapsed)
			if logger != nil {
				logger.Info("request",
					"route", route,
					"method", r.Method,
					"status", sw.status,
					"durMs", float64(elapsed.Microseconds())/1000.0,
					"trace", reqID)
			}
		}()
		h(sw, r)
	})
}

// maxBodyBytes bounds request bodies: even very large platforms (tens of
// thousands of links) stay far below this, and the cap keeps a single
// client from pinning unbounded memory on the long-running service.
const maxBodyBytes = 32 << 20

// decodePost enforces the POST method and decodes the JSON body into dst.
// The body must be exactly one JSON document: trailing content — malformed
// or otherwise — is rejected with a structured 400 instead of being
// silently ignored.
func decodePost(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("service: POST only"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad request body: %w", err))
		return false
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		writeError(w, http.StatusBadRequest, errors.New("service: bad request body: trailing data after JSON document"))
		return false
	}
	return true
}

// writeOverloadAware writes the error with statusFor's mapping, additionally
// attaching the Retry-After header when the engine shed the request for
// overload (the header must be set before the status line goes out, so the
// generic writeError path cannot do it).
func writeOverloadAware(w http.ResponseWriter, err error) {
	var oe *OverloadedError
	if errors.As(err, &oe) {
		secs := int64(oe.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeError(w, statusFor(err), err)
}

// statusFor maps engine errors to HTTP statuses: caller mistakes are 400s,
// a missing base fingerprint is 404, an ambiguous one 409, a shed request
// 429, a solve abandoned on its deadline 504; everything not recognizably
// the client's fault — solver trouble included — is a 500, so monitoring and
// retry policies see server-side failures as such.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrCanceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrUnknownBase):
		return http.StatusNotFound
	case errors.Is(err, ErrAmbiguousBase):
		return http.StatusConflict
	case errors.Is(err, ErrNoPlatform), errors.Is(err, ErrBothPlatform), errors.Is(err, ErrTooSmall),
		errors.Is(err, ErrBadRequest),
		errors.Is(err, platform.ErrBadDelta), errors.Is(err, platform.ErrDeltaState),
		errors.Is(err, platform.ErrNodeRange), errors.Is(err, platform.ErrNotReachable),
		errors.Is(err, platform.ErrNoNodes):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(v)
	if err != nil {
		// Headers are out; the best left is a JSON error body.
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
		return
	}
	data = append(data, '\n')
	w.Write(data)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}
