package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/platform"
)

// planEnvelope is the HTTP response of /v1/plan: the cache/warm flags wrap
// the canonical plan bytes, so repeated requests carry a byte-identical plan
// subdocument. Degraded marks a heuristic answer served under the degraded
// contract while the LP refinement runs in the background.
type planEnvelope struct {
	Cached    bool            `json:"cached"`
	Collapsed bool            `json:"collapsed,omitempty"`
	Warm      bool            `json:"warm,omitempty"`
	Degraded  bool            `json:"degraded,omitempty"`
	Plan      json.RawMessage `json:"plan"`
}

// errorBody is the JSON error envelope of every endpoint.
type errorBody struct {
	Error string `json:"error"`
}

// NewHandler returns the HTTP API of the engine:
//
//	POST /v1/plan      PlanRequest  -> {cached, collapsed, warm, plan}
//	POST /v1/evaluate  EvaluateRequest -> Evaluation
//	POST /v1/churn     ChurnRequest -> ChurnReplay
//	GET  /v1/stats     -> Stats (engine counters)
//	GET  /v1/metrics   -> MetricsSnapshot (engine counters + per-endpoint
//	                      request/error counts and latency quantiles)
//	GET  /healthz      -> "ok"
//
// All bodies are JSON. Invalid requests return 400, an unknown base
// fingerprint 404, solver failures 500 — always with an {"error": ...} body;
// a panicking handler is recovered into a structured 500, never an empty
// reply.
//
// Overload contract: every solving endpoint runs under the request context
// plus the per-request deadlineMs (or the engine's configured default), and a
// solve abandoned on that deadline is a structured 504. When the engine's
// solve lanes and admission queue are both full, cold work is shed with a
// structured 429 carrying a Retry-After header (whole seconds, estimated from
// recent solve latency). Cache hits and collapsed waits never shed.
func NewHandler(e *Engine) http.Handler {
	m := NewMetrics()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.Handle("/v1/stats", instrument(m, "/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, errors.New("service: GET only"))
			return
		}
		writeJSON(w, http.StatusOK, e.Stats())
	}))
	mux.Handle("/v1/metrics", instrument(m, "/v1/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, errors.New("service: GET only"))
			return
		}
		writeJSON(w, http.StatusOK, m.Snapshot(e))
	}))
	mux.Handle("/v1/plan", instrument(m, "/v1/plan", func(w http.ResponseWriter, r *http.Request) {
		var req PlanRequest
		if !decodePost(w, r, &req) {
			return
		}
		res, err := e.PlanContext(r.Context(), req)
		if err != nil {
			writeOverloadAware(w, err)
			return
		}
		writeJSON(w, http.StatusOK, planEnvelope{Cached: res.Cached, Collapsed: res.Collapsed, Warm: res.WarmResolved, Degraded: res.Degraded, Plan: res.JSON})
	}))
	mux.Handle("/v1/evaluate", instrument(m, "/v1/evaluate", func(w http.ResponseWriter, r *http.Request) {
		var req EvaluateRequest
		if !decodePost(w, r, &req) {
			return
		}
		ev, err := e.EvaluateContext(r.Context(), req)
		if err != nil {
			writeOverloadAware(w, err)
			return
		}
		writeJSON(w, http.StatusOK, ev)
	}))
	mux.Handle("/v1/churn", instrument(m, "/v1/churn", func(w http.ResponseWriter, r *http.Request) {
		var req ChurnRequest
		if !decodePost(w, r, &req) {
			return
		}
		rep, err := e.ChurnContext(r.Context(), req)
		if err != nil {
			writeOverloadAware(w, err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	}))
	return mux
}

// statusWriter remembers the status code and whether anything was written,
// so instrumentation can count errors and the panic recovery knows whether a
// structured 500 body can still be sent.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (sw *statusWriter) WriteHeader(status int) {
	if !sw.wrote {
		sw.status = status
		sw.wrote = true
	}
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if !sw.wrote {
		sw.status = http.StatusOK
		sw.wrote = true
	}
	return sw.ResponseWriter.Write(b)
}

// instrument wraps a route handler with latency/error accounting and panic
// recovery. A panic inside the engine or a handler is converted into a
// structured {"error": ...} 500 (when the response has not started yet)
// instead of a severed connection with an empty body.
func instrument(m *Metrics, route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		defer func() {
			if rec := recover(); rec != nil {
				// http.ErrAbortHandler is net/http's sanctioned way to abort
				// a response, and a panic after the response started cannot
				// be converted into a well-formed error body — re-panic in
				// both cases so the server severs the connection and the
				// client sees the truncation.
				// net/http's own recovery compares the raw panic value, so
				// matching its contract requires the identity comparison.
				//lint:ignore senterr net/http defines panic(ErrAbortHandler) by identity, not by error chain
				if rec == http.ErrAbortHandler || sw.wrote {
					m.observe(route, http.StatusInternalServerError, time.Since(start))
					panic(rec)
				}
				writeError(sw, http.StatusInternalServerError, fmt.Errorf("service: internal error: %v", rec))
			}
			m.observe(route, sw.status, time.Since(start))
		}()
		h(sw, r)
	})
}

// maxBodyBytes bounds request bodies: even very large platforms (tens of
// thousands of links) stay far below this, and the cap keeps a single
// client from pinning unbounded memory on the long-running service.
const maxBodyBytes = 32 << 20

// decodePost enforces the POST method and decodes the JSON body into dst.
// The body must be exactly one JSON document: trailing content — malformed
// or otherwise — is rejected with a structured 400 instead of being
// silently ignored.
func decodePost(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("service: POST only"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad request body: %w", err))
		return false
	}
	var trailing json.RawMessage
	if err := dec.Decode(&trailing); err != io.EOF {
		writeError(w, http.StatusBadRequest, errors.New("service: bad request body: trailing data after JSON document"))
		return false
	}
	return true
}

// writeOverloadAware writes the error with statusFor's mapping, additionally
// attaching the Retry-After header when the engine shed the request for
// overload (the header must be set before the status line goes out, so the
// generic writeError path cannot do it).
func writeOverloadAware(w http.ResponseWriter, err error) {
	var oe *OverloadedError
	if errors.As(err, &oe) {
		secs := int64(oe.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	writeError(w, statusFor(err), err)
}

// statusFor maps engine errors to HTTP statuses: caller mistakes are 400s,
// a missing base fingerprint is 404, an ambiguous one 409, a shed request
// 429, a solve abandoned on its deadline 504; everything not recognizably
// the client's fault — solver trouble included — is a 500, so monitoring and
// retry policies see server-side failures as such.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrCanceled):
		return http.StatusGatewayTimeout
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrUnknownBase):
		return http.StatusNotFound
	case errors.Is(err, ErrAmbiguousBase):
		return http.StatusConflict
	case errors.Is(err, ErrNoPlatform), errors.Is(err, ErrBothPlatform), errors.Is(err, ErrTooSmall),
		errors.Is(err, ErrBadRequest),
		errors.Is(err, platform.ErrBadDelta), errors.Is(err, platform.ErrDeltaState),
		errors.Is(err, platform.ErrNodeRange), errors.Is(err, platform.ErrNotReachable),
		errors.Is(err, platform.ErrNoNodes):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(v)
	if err != nil {
		// Headers are out; the best left is a JSON error body.
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
		return
	}
	data = append(data, '\n')
	w.Write(data)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}
