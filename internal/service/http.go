package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"repro/internal/platform"
)

// planEnvelope is the HTTP response of /v1/plan: the cache/warm flags wrap
// the canonical plan bytes, so repeated requests carry a byte-identical plan
// subdocument.
type planEnvelope struct {
	Cached bool            `json:"cached"`
	Warm   bool            `json:"warm,omitempty"`
	Plan   json.RawMessage `json:"plan"`
}

// errorBody is the JSON error envelope of every endpoint.
type errorBody struct {
	Error string `json:"error"`
}

// NewHandler returns the HTTP API of the engine:
//
//	POST /v1/plan      PlanRequest  -> {cached, warm, plan}
//	POST /v1/evaluate  EvaluateRequest -> Evaluation
//	POST /v1/churn     ChurnRequest -> ChurnReplay
//	GET  /v1/stats     -> Stats
//	GET  /healthz      -> "ok"
//
// All bodies are JSON. Invalid requests return 400, an unknown base
// fingerprint 404, solver failures 500 — always with an {"error": ...} body.
func NewHandler(e *Engine) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, errors.New("service: GET only"))
			return
		}
		writeJSON(w, http.StatusOK, e.Stats())
	})
	mux.HandleFunc("/v1/plan", func(w http.ResponseWriter, r *http.Request) {
		var req PlanRequest
		if !decodePost(w, r, &req) {
			return
		}
		res, err := e.Plan(req)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, planEnvelope{Cached: res.Cached, Warm: res.WarmResolved, Plan: res.JSON})
	})
	mux.HandleFunc("/v1/evaluate", func(w http.ResponseWriter, r *http.Request) {
		var req EvaluateRequest
		if !decodePost(w, r, &req) {
			return
		}
		ev, err := e.Evaluate(req)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, ev)
	})
	mux.HandleFunc("/v1/churn", func(w http.ResponseWriter, r *http.Request) {
		var req ChurnRequest
		if !decodePost(w, r, &req) {
			return
		}
		rep, err := e.Churn(req)
		if err != nil {
			writeError(w, statusFor(err), err)
			return
		}
		writeJSON(w, http.StatusOK, rep)
	})
	return mux
}

// maxBodyBytes bounds request bodies: even very large platforms (tens of
// thousands of links) stay far below this, and the cap keeps a single
// client from pinning unbounded memory on the long-running service.
const maxBodyBytes = 32 << 20

// decodePost enforces the POST method and decodes the JSON body into dst.
func decodePost(w http.ResponseWriter, r *http.Request, dst interface{}) bool {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("service: POST only"))
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: bad request body: %w", err))
		return false
	}
	return true
}

// statusFor maps engine errors to HTTP statuses: caller mistakes are 400s,
// a missing base fingerprint is 404, an ambiguous one 409; everything not
// recognizably the client's fault — solver trouble included — is a 500, so
// monitoring and retry policies see server-side failures as such.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrUnknownBase):
		return http.StatusNotFound
	case errors.Is(err, ErrAmbiguousBase):
		return http.StatusConflict
	case errors.Is(err, ErrNoPlatform), errors.Is(err, ErrBothPlatform), errors.Is(err, ErrTooSmall),
		errors.Is(err, ErrBadRequest),
		errors.Is(err, platform.ErrBadDelta), errors.Is(err, platform.ErrDeltaState),
		errors.Is(err, platform.ErrNodeRange), errors.Is(err, platform.ErrNotReachable),
		errors.Is(err, platform.ErrNoNodes):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(v)
	if err != nil {
		// Headers are out; the best left is a JSON error body.
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
		return
	}
	data = append(data, '\n')
	w.Write(data)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}
