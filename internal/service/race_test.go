package service

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/platform"
)

// TestServiceConcurrentIdenticalRequests hammers the engine with identical
// requests from many goroutines: exactly one solve must happen
// (singleflight), every answer must carry byte-identical plan bytes, and the
// hit/miss counters must add up to the request count. Run with -race.
func TestServiceConcurrentIdenticalRequests(t *testing.T) {
	e := New(Config{Workers: 4})
	p := smallPlatform(t, 31)
	const goroutines = 32

	results := make([]*PlanResult, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = e.Plan(PlanRequest{Platform: p, Source: 0})
		}(g)
	}
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
		if !bytes.Equal(results[g].JSON, results[0].JSON) {
			t.Fatalf("goroutine %d returned different plan bytes", g)
		}
	}
	st := e.Stats()
	if st.Requests != goroutines {
		t.Errorf("requests = %d, want %d", st.Requests, goroutines)
	}
	if st.Hits+st.Misses != st.Requests {
		t.Errorf("hits (%d) + misses (%d) != requests (%d)", st.Hits, st.Misses, st.Requests)
	}
	if st.Misses != 1 || st.Solves != 1 {
		t.Errorf("stats = %+v, want exactly 1 miss and 1 solve for identical concurrent requests", st)
	}
}

// TestServiceConcurrentMixedRequests mixes identical and distinct platforms
// across goroutines: per-platform answers must be byte-identical, counters
// must add up, and each distinct platform must be solved exactly once.
func TestServiceConcurrentMixedRequests(t *testing.T) {
	e := New(Config{Workers: 8})
	const distinct = 6
	const repeats = 8
	plats := make([]*platform.Platform, distinct)
	for i := range plats {
		plats[i] = smallPlatform(t, int64(100+i))
	}

	type slot struct {
		res *PlanResult
		err error
	}
	results := make([][]slot, distinct)
	for i := range results {
		results[i] = make([]slot, repeats)
	}
	var wg sync.WaitGroup
	for i := 0; i < distinct; i++ {
		for r := 0; r < repeats; r++ {
			wg.Add(1)
			go func(i, r int) {
				defer wg.Done()
				res, err := e.Plan(PlanRequest{Platform: plats[i], Source: 0})
				results[i][r] = slot{res, err}
			}(i, r)
		}
	}
	wg.Wait()

	for i := 0; i < distinct; i++ {
		for r := 0; r < repeats; r++ {
			if results[i][r].err != nil {
				t.Fatalf("platform %d repeat %d: %v", i, r, results[i][r].err)
			}
			if !bytes.Equal(results[i][r].res.JSON, results[i][0].res.JSON) {
				t.Fatalf("platform %d repeat %d returned different plan bytes", i, r)
			}
		}
		// Distinct platforms must not share plans.
		for j := 0; j < i; j++ {
			if bytes.Equal(results[i][0].res.JSON, results[j][0].res.JSON) {
				t.Fatalf("platforms %d and %d returned identical plans", i, j)
			}
		}
	}
	st := e.Stats()
	if st.Requests != distinct*repeats {
		t.Errorf("requests = %d, want %d", st.Requests, distinct*repeats)
	}
	if st.Hits+st.Misses != st.Requests {
		t.Errorf("hits (%d) + misses (%d) != requests (%d)", st.Hits, st.Misses, st.Requests)
	}
	if st.Solves != distinct {
		t.Errorf("solves = %d, want %d (one per distinct platform)", st.Solves, distinct)
	}
}

// TestServiceConcurrentDeltaRequests stresses the session hand-off: many
// goroutines race delta requests against the same base. Exactly one can win
// the warm session; everyone must still get a correct, identical plan for
// identical deltas.
func TestServiceConcurrentDeltaRequests(t *testing.T) {
	e := New(Config{Workers: 4})
	p := smallPlatform(t, 41)
	first, err := e.Plan(PlanRequest{Platform: p, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	delta := platform.Delta{Kind: platform.DeltaScaleLink, Link: 1, Factor: 1.5}

	const goroutines = 16
	results := make([]*PlanResult, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			results[g], errs[g] = e.Plan(PlanRequest{
				Base:   first.Plan.Fingerprint,
				Deltas: []platform.Delta{delta},
				Source: 0,
			})
		}(g)
	}
	wg.Wait()

	for g := 0; g < goroutines; g++ {
		if errs[g] != nil {
			t.Fatalf("goroutine %d: %v", g, errs[g])
		}
	}
	// Warm and cold solves of the same master can differ in the last few
	// ulps, so byte-identity is only guaranteed among plans answered from
	// the cache — which is every one after the first insert. Check
	// throughputs agree tightly instead, plus counter consistency.
	want := results[0].Plan.Throughput
	for g := 1; g < goroutines; g++ {
		got := results[g].Plan.Throughput
		if diff := got - want; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("goroutine %d throughput %v, want %v", g, got, want)
		}
	}
	st := e.Stats()
	if st.Hits+st.Misses != st.Requests {
		t.Errorf("hits (%d) + misses (%d) != requests (%d)", st.Hits, st.Misses, st.Requests)
	}
}
