package service

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/platform"
	"repro/internal/steady"
)

// TestCanceledSolveLeavesNoCacheEntry is the cancellation half of the
// overload contract: a canceled cold solve must return ErrCanceled, keep the
// counters consistent (Hits+Misses == Requests, Canceled counted) and leave
// no cache entry behind — the follow-up request re-solves from scratch and
// must match the cold oracle.
func TestCanceledSolveLeavesNoCacheEntry(t *testing.T) {
	e := New(Config{})
	p := smallPlatform(t, 11)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.PlanContext(ctx, PlanRequest{Platform: p, Source: 0})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled solve error = %v, want ErrCanceled", err)
	}
	st := e.Stats()
	if st.CacheEntries != 0 {
		t.Fatalf("canceled solve left %d cache entries, want 0", st.CacheEntries)
	}
	if st.Canceled != 1 {
		t.Errorf("Canceled = %d, want 1", st.Canceled)
	}
	if st.Hits+st.Misses != st.Requests {
		t.Errorf("Hits(%d)+Misses(%d) != Requests(%d) after cancellation", st.Hits, st.Misses, st.Requests)
	}

	// The follow-up must be a clean cold solve matching the oracle.
	res, err := e.Plan(PlanRequest{Platform: p, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("follow-up after cancellation was served from the cache")
	}
	want, err := steady.Solve(p.Clone(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Plan.Throughput-want.Throughput) > 1e-6*math.Max(1, want.Throughput) {
		t.Errorf("post-cancel throughput %v != cold oracle %v", res.Plan.Throughput, want.Throughput)
	}
}

// TestCanceledDeltaSolveKeepsLineageUsable cancels a base+delta request and
// verifies the lineage still answers correctly afterwards: the canceled warm
// attempt must not poison the base entry's session or the cache.
func TestCanceledDeltaSolveKeepsLineageUsable(t *testing.T) {
	e := New(Config{})
	p := smallPlatform(t, 12)
	base, err := e.Plan(PlanRequest{Platform: p, Source: 0})
	if err != nil {
		t.Fatal(err)
	}

	deltas := []platform.Delta{{Kind: platform.DeltaScaleLink, Link: 1, Factor: 1.25}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = e.PlanContext(ctx, PlanRequest{Base: base.Plan.Fingerprint, Deltas: deltas, Source: 0})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled delta solve error = %v, want ErrCanceled", err)
	}

	// Same delta request again, uncanceled: must solve and match the cold
	// oracle on the mutated platform.
	res, err := e.Plan(PlanRequest{Base: base.Plan.Fingerprint, Deltas: deltas, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	mut := p.Clone()
	for _, d := range deltas {
		if _, err := mut.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
	}
	want, err := steady.Solve(mut, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Plan.Throughput-want.Throughput) > 1e-6*math.Max(1, want.Throughput) {
		t.Errorf("post-cancel delta throughput %v != cold oracle %v", res.Plan.Throughput, want.Throughput)
	}
}

// TestAdmissionControlExactShedding shapes the engine to one lane and a
// one-deep queue, parks the lane's solve at the BeforeSolve hook, and issues
// four cold misses strictly one admission decision at a time: the kinds must
// come out lane, queued, shed, shed — deterministically — and the sheds must
// carry the typed overload error with a positive Retry-After.
func TestAdmissionControlExactShedding(t *testing.T) {
	release := make(chan struct{})
	admits := make(chan AdmitKind, 8)
	var solvers atomic.Int32
	hooks := &Hooks{
		BeforeSolve: func() {
			// Only the first solver (the lane holder) parks; the queued
			// request solves freely after the release.
			if solvers.Add(1) == 1 {
				<-release
			}
		},
		OnAdmit: func(ev AdmitEvent) { admits <- ev.Kind },
	}
	e := New(Config{Workers: 1, QueueDepth: 1, Hooks: hooks})

	const requests = 4
	var wg sync.WaitGroup
	errs := make([]error, requests)
	kinds := make([]AdmitKind, 0, requests)
	for i := 0; i < requests; i++ {
		p := smallPlatform(t, int64(100+i))
		done := make(chan struct{})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer close(done)
			_, errs[i] = e.Plan(PlanRequest{Platform: p, Source: 0})
		}(i)
		select {
		case k := <-admits:
			kinds = append(kinds, k)
		case <-done:
			t.Fatalf("request %d finished without an admission decision", i)
		case <-time.After(30 * time.Second):
			t.Fatalf("request %d: no admission decision", i)
		}
	}
	close(release)
	wg.Wait()

	want := []AdmitKind{AdmitLane, AdmitQueued, AdmitShed, AdmitShed}
	for i, k := range want {
		if kinds[i] != k {
			t.Fatalf("admission kinds = %v, want %v", kinds, want)
		}
	}
	shed := 0
	for i, err := range errs {
		if err == nil {
			continue
		}
		shed++
		var oe *OverloadedError
		if !errors.As(err, &oe) {
			t.Fatalf("request %d failed with %v, want *OverloadedError", i, err)
		}
		if !errors.Is(err, ErrOverloaded) {
			t.Fatalf("request %d error does not unwrap to ErrOverloaded", i)
		}
		if oe.RetryAfter < time.Second {
			t.Errorf("request %d Retry-After %v, want >= 1s", i, oe.RetryAfter)
		}
	}
	if shed != 2 {
		t.Fatalf("%d requests shed, want exactly 2", shed)
	}
	st := e.Stats()
	if st.Shed != 2 {
		t.Errorf("Stats.Shed = %d, want 2", st.Shed)
	}
	if st.Hits+st.Misses != st.Requests {
		t.Errorf("Hits(%d)+Misses(%d) != Requests(%d)", st.Hits, st.Misses, st.Requests)
	}
	if st.CacheEntries != 2 {
		t.Errorf("CacheEntries = %d, want 2 (the two admitted solves)", st.CacheEntries)
	}
}

// TestInFlightEntryNotEvicted is the regression test for the eviction bug:
// with CacheSize 1, a second insert used to evict the in-flight first entry,
// detaching its waiters' results from the cache and double-solving. The trim
// must now skip open entries (counting EvictionsDeferred), let the cache run
// transiently over capacity, and evict only after the solve completes.
func TestInFlightEntryNotEvicted(t *testing.T) {
	release := make(chan struct{})
	parked := make(chan struct{})
	var solvers atomic.Int32
	hooks := &Hooks{BeforeSolve: func() {
		// A is issued first and B only after A is parked, so the first
		// solver through here is A's.
		if solvers.Add(1) == 1 {
			close(parked)
			<-release
		}
	}}
	e := New(Config{CacheSize: 1, Workers: 2, Hooks: hooks})

	pa := smallPlatform(t, 201)
	pb := smallPlatform(t, 202)

	aDone := make(chan struct{})
	var aRes *PlanResult
	var aErr error
	go func() {
		defer close(aDone)
		aRes, aErr = e.Plan(PlanRequest{Platform: pa, Source: 0})
	}()
	// Wait until A's solver is parked at the hook (entry claimed, solve in
	// flight).
	select {
	case <-parked:
	case <-time.After(30 * time.Second):
		t.Fatal("request A never reached its solve")
	}

	// B's insert overflows the one-slot cache while A is open: the trim must
	// defer, not evict A.
	if _, err := e.Plan(PlanRequest{Platform: pb, Source: 0}); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.EvictionsDeferred == 0 {
		t.Fatalf("no eviction deferred while entry A was in flight (stats %+v)", st)
	}

	close(release)
	<-aDone
	if aErr != nil {
		t.Fatal(aErr)
	}
	if aRes.Plan.Throughput <= 0 {
		t.Fatal("request A returned no plan")
	}

	st := e.Stats()
	if st.CacheEntries != 1 {
		t.Errorf("CacheEntries = %d, want 1 after completion trims", st.CacheEntries)
	}
	// A hit on pa must now be a real hit (the completed A entry survived B's
	// insert) or a clean re-solve if it was the one trimmed — either way the
	// cache must never have dropped an open entry: Solves counts exactly the
	// requests that actually ran the LP.
	if st.Solves != 2 {
		t.Errorf("Solves = %d, want 2 (one per distinct platform)", st.Solves)
	}
}

// TestErrorPathSingleflightCounted is the regression test for the counter
// bug: a waiter collapsing onto a solve that then fails was booked as a Miss
// but never as Singleflight, so the flood replays under-reported collapse
// counts on error paths. Singleflight is now counted at classification.
func TestErrorPathSingleflightCounted(t *testing.T) {
	seen := make(chan struct{})
	proceed := make(chan struct{})
	var once sync.Once
	hooks := &Hooks{
		OnLookup: func(ev LookupEvent) {
			if ev.Collapsed {
				once.Do(func() { close(seen) })
			}
		},
		BeforeSolve: func() {
			// Hold the doomed solve until the second request has collapsed
			// onto it.
			select {
			case <-seen:
			case <-proceed:
			}
		},
	}
	e := New(Config{Hooks: hooks, Workers: 2})
	p := clusterPlatform(t, 5)
	// LPMaxIterations 1 starves the master LP so the solve must fail.
	req := PlanRequest{Platform: p, Source: 0, LPMaxIterations: 1}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = e.Plan(req)
		}(i)
		if i == 0 {
			// Make sure the first request owns the entry before the second
			// looks up.
			deadline := time.After(30 * time.Second)
			for e.Stats().Misses == 0 {
				select {
				case <-deadline:
					t.Fatal("first request never claimed its entry")
				case <-time.After(time.Millisecond):
				}
			}
		}
	}
	wg.Wait()
	close(proceed)

	for i, err := range errs {
		if err == nil {
			t.Fatalf("request %d unexpectedly succeeded", i)
		}
	}
	st := e.Stats()
	if st.Singleflight != 1 {
		t.Errorf("Singleflight = %d, want 1 (counted at classification even though the solve failed)", st.Singleflight)
	}
	if st.Hits != 0 || st.Misses != 2 || st.Requests != 2 {
		t.Errorf("stats = %+v, want 0 hits / 2 misses / 2 requests", st)
	}
	if st.CacheEntries != 0 {
		t.Errorf("failed solve left %d cache entries", st.CacheEntries)
	}
}

// TestDegradedModePlansAndRefines exercises the degraded contract: the
// opt-in request gets an immediate heuristic answer flagged Degraded, the
// background refinement replaces it with the LP optimum, and a later
// non-degraded request sees the refined plan as a plain cache hit.
func TestDegradedModePlansAndRefines(t *testing.T) {
	e := New(Config{})
	p := smallPlatform(t, 301)

	res, err := e.Plan(PlanRequest{Platform: p, Source: 0, Degraded: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatal("degraded request did not return a degraded plan")
	}
	if res.Plan.Tree == nil || res.Plan.Throughput <= 0 {
		t.Fatal("degraded plan has no usable tree")
	}

	e.Drain()

	hit, err := e.Plan(PlanRequest{Platform: p, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Fatal("refined entry was not served as a cache hit")
	}
	if hit.Degraded {
		t.Fatal("post-refinement hit still flagged degraded")
	}
	want, err := steady.Solve(p.Clone(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(hit.Plan.Throughput-want.Throughput) > 1e-6*math.Max(1, want.Throughput) {
		t.Errorf("refined throughput %v != LP oracle %v", hit.Plan.Throughput, want.Throughput)
	}
	if res.Plan.Throughput > want.Throughput+1e-9 {
		t.Errorf("degraded heuristic throughput %v exceeds the LP optimum %v", res.Plan.Throughput, want.Throughput)
	}

	st := e.Stats()
	if st.Degraded != 1 || st.Refines != 1 || st.RefineFailures != 0 {
		t.Errorf("stats = %+v, want 1 degraded / 1 refine / 0 failures", st)
	}
	if st.Hits != 1 || st.Misses != 1 {
		t.Errorf("stats = %+v, want 1 hit / 1 miss", st)
	}
}
