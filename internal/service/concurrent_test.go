package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"repro/internal/platform"
	"repro/internal/steady"
)

// TestPlanWithTreesPacksTheOptimum a trees=k plan must carry a valid packing
// whose throughput matches the LP optimum within the 1e-6 contract, and the
// tree cap must be part of the cache identity (distinct caps never share a
// cached plan).
func TestPlanWithTreesPacksTheOptimum(t *testing.T) {
	e := New(Config{})
	p := smallPlatform(t, 31)

	res, err := e.Plan(PlanRequest{Platform: p, Source: 0, Trees: 64})
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Plan
	if plan.Packing == nil {
		t.Fatal("trees=64 plan has no packing")
	}
	if plan.PackedTrees != plan.Packing.NumTrees() || plan.PackedTrees == 0 {
		t.Fatalf("packedTrees=%d, packing has %d", plan.PackedTrees, plan.Packing.NumTrees())
	}
	tol := 1e-6 * math.Max(1, plan.Throughput)
	if math.Abs(plan.PackedThroughput-plan.Throughput) > tol {
		t.Errorf("packed throughput %v vs LP %v", plan.PackedThroughput, plan.Throughput)
	}
	if math.Abs(plan.PackedRatio-1) > 1e-6 {
		t.Errorf("packed ratio %v, want ~1", plan.PackedRatio)
	}
	if err := plan.Packing.Validate(p, plan.EdgeRate, tol); err != nil {
		t.Errorf("packing invalid: %v", err)
	}

	// Same platform without trees: separate cache identity, no packing.
	bare, err := e.Plan(PlanRequest{Platform: p, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Cached {
		t.Error("bare plan hit the trees=64 cache entry")
	}
	if bare.Plan.Packing != nil {
		t.Error("bare plan carries a packing")
	}

	// Identical trees request: cache hit with byte-identical plan.
	again, err := e.Plan(PlanRequest{Platform: p, Source: 0, Trees: 64})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("identical trees request missed the cache")
	}
	if !bytes.Equal(again.JSON, res.JSON) {
		t.Error("cache hit returned different plan bytes")
	}

	// A different cap is a different plan class.
	capped, err := e.Plan(PlanRequest{Platform: p, Source: 0, Trees: 1})
	if err != nil {
		t.Fatal(err)
	}
	if capped.Cached {
		t.Error("trees=1 request hit the trees=64 entry")
	}
	if capped.Plan.PackedTrees > 1 {
		t.Errorf("trees=1 plan packed %d trees", capped.Plan.PackedTrees)
	}
	if capped.Plan.PackedThroughput > plan.PackedThroughput+tol {
		t.Errorf("capped packing %v beats uncapped %v", capped.Plan.PackedThroughput, plan.PackedThroughput)
	}
}

// TestPlanTreesRejectsNegative a negative cap is a bad request.
func TestPlanTreesRejectsNegative(t *testing.T) {
	e := New(Config{})
	if _, err := e.Plan(PlanRequest{Platform: smallPlatform(t, 31), Source: 0, Trees: -1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("negative trees: err=%v, want ErrBadRequest", err)
	}
}

// TestPlanDeltaRepacksWarmSession a trees plan followed by a delta request
// must re-pack the refreshed solution: the new packing reflects the mutated
// platform and still meets the 1e-6 contract.
func TestPlanDeltaRepacksWarmSession(t *testing.T) {
	e := New(Config{})
	p := smallPlatform(t, 31)
	base, err := e.Plan(PlanRequest{Platform: p, Source: 0, Trees: 64})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Plan(PlanRequest{
		Base:   base.Plan.Fingerprint,
		Deltas: []platform.Delta{{Kind: platform.DeltaScaleLink, Link: 0, Factor: 2}},
		Source: 0,
		Trees:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	plan := res.Plan
	if plan.Packing == nil {
		t.Fatal("delta plan has no packing")
	}
	tol := 1e-6 * math.Max(1, plan.Throughput)
	if math.Abs(plan.PackedThroughput-plan.Throughput) > tol {
		t.Errorf("delta re-pack %v vs refreshed LP %v", plan.PackedThroughput, plan.Throughput)
	}
	mutated := p.Clone()
	if _, err := mutated.ApplyDelta(platform.Delta{Kind: platform.DeltaScaleLink, Link: 0, Factor: 2}); err != nil {
		t.Fatal(err)
	}
	cold, err := steady.Solve(mutated, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.Throughput-cold.Throughput) > 1e-6*math.Max(1, cold.Throughput) {
		t.Errorf("delta plan throughput %v vs cold re-solve %v", plan.Throughput, cold.Throughput)
	}
}

// concurrentJSON runs one concurrent request and returns the marshaled plan.
func concurrentJSON(t *testing.T, e *Engine, req ConcurrentRequest) []byte {
	t.Helper()
	cp, err := e.Concurrent(req)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestConcurrentBroadcastsShareCapacity three sources with explicit shares:
// per-broadcast throughput must be share x solo optimum, the ledger must
// stay within the one-port budgets, and the totals must add up.
func TestConcurrentBroadcastsShareCapacity(t *testing.T) {
	e := New(Config{})
	p := smallPlatform(t, 31)
	req := ConcurrentRequest{
		Platform: p,
		Sources: []ConcurrentSource{
			{Source: 0, Share: 0.5},
			{Source: 1, Share: 0.3},
			{Source: 2, Share: 0.2},
		},
		Trees: 64,
	}
	cp, err := e.Concurrent(req)
	if err != nil {
		t.Fatal(err)
	}
	if len(cp.Broadcasts) != 3 {
		t.Fatalf("%d broadcasts, want 3", len(cp.Broadcasts))
	}
	total := 0.0
	for i, b := range cp.Broadcasts {
		if b.Source != req.Sources[i].Source || b.Share != req.Sources[i].Share {
			t.Errorf("broadcast %d: source/share %d/%v, want %d/%v", i, b.Source, b.Share, req.Sources[i].Source, req.Sources[i].Share)
		}
		if solo, err := steady.Solve(p, b.Source, nil); err != nil {
			t.Fatal(err)
		} else if math.Abs(b.SoloThroughput-solo.Throughput) > 1e-6*math.Max(1, solo.Throughput) {
			t.Errorf("broadcast %d: solo %v, independent solve %v", i, b.SoloThroughput, solo.Throughput)
		}
		if math.Abs(b.Throughput-b.Share*b.SoloThroughput) > 1e-9*math.Max(1, b.SoloThroughput) {
			t.Errorf("broadcast %d: throughput %v != share %v x solo %v", i, b.Throughput, b.Share, b.SoloThroughput)
		}
		if b.Plan == nil || b.Plan.Packing == nil {
			t.Errorf("broadcast %d: missing plan or packing", i)
		}
		total += b.Throughput
	}
	if math.Abs(total-cp.TotalThroughput) > 1e-9*math.Max(1, total) {
		t.Errorf("total %v, sum of broadcasts %v", cp.TotalThroughput, total)
	}
	if cp.MaxInOccupation > 1+1e-6 || cp.MaxOutOccupation > 1+1e-6 {
		t.Errorf("ledger oversubscribed: in %v out %v", cp.MaxInOccupation, cp.MaxOutOccupation)
	}
	if cp.MaxInOccupation <= 0 || cp.MaxOutOccupation <= 0 {
		t.Errorf("ledger empty: in %v out %v", cp.MaxInOccupation, cp.MaxOutOccupation)
	}
}

// TestConcurrentDefaultSharesAndValidation default shares are equal;
// malformed requests fail loudly.
func TestConcurrentDefaultSharesAndValidation(t *testing.T) {
	e := New(Config{})
	p := smallPlatform(t, 31)
	cp, err := e.Concurrent(ConcurrentRequest{Platform: p, Sources: []ConcurrentSource{{Source: 0}, {Source: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range cp.Broadcasts {
		if b.Share != 0.5 {
			t.Errorf("broadcast %d: share %v, want 0.5", i, b.Share)
		}
	}
	bad := []ConcurrentRequest{
		{Platform: p},
		{Platform: p, Sources: []ConcurrentSource{{Source: 0}, {Source: 0}}},
		{Platform: p, Sources: []ConcurrentSource{{Source: -1}}},
		{Platform: p, Sources: []ConcurrentSource{{Source: 0, Share: 0.8}, {Source: 1, Share: 0.9}}},
		{Platform: p, Sources: []ConcurrentSource{{Source: 0, Share: 0.8}, {Source: 1}}},
	}
	for i, req := range bad {
		if _, err := e.Concurrent(req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("bad request %d: err=%v, want ErrBadRequest", i, err)
		}
	}
	if _, err := e.Concurrent(ConcurrentRequest{Sources: []ConcurrentSource{{Source: 0}}}); !errors.Is(err, ErrNoPlatform) {
		t.Errorf("missing platform: err=%v, want ErrNoPlatform", err)
	}
}

// TestConcurrentByteIdenticalAcrossWorkers the race-tier determinism
// contract: the same concurrent request answered with 1, 4 and 16 workers
// must marshal to byte-identical plans (per-source solves land in request
// order regardless of scheduling). Run with -race.
func TestConcurrentByteIdenticalAcrossWorkers(t *testing.T) {
	p := smallPlatform(t, 47)
	req := ConcurrentRequest{
		Platform: p,
		Sources: []ConcurrentSource{
			{Source: 0, Share: 0.4},
			{Source: 2, Share: 0.35},
			{Source: 5, Share: 0.25},
		},
		Trees: 64,
	}
	var want []byte
	for _, workers := range []int{1, 4, 16} {
		// A fresh engine per worker count: no cross-pollination through the
		// cache, every run solves from scratch.
		e := New(Config{Workers: workers})
		req.Workers = workers
		got := concurrentJSON(t, e, req)
		if want == nil {
			want = got
		} else if !bytes.Equal(got, want) {
			t.Fatalf("workers=%d produced different concurrent plan bytes", workers)
		}
	}
}
