package service

import (
	"sort"

	"repro/internal/obs"
)

// PromText renders the engine and HTTP counters as a Prometheus text
// exposition (version 0.0.4): every service.Stats counter as a
// bcast_*_total counter (or bcast_* gauge for occupancy/configuration), the
// solve-stage histograms as summaries, and the per-route HTTP counters and
// latency quantiles with a route label. The registry is rebuilt from
// snapshots on every scrape, so GET /metrics and the JSON /v1/metrics can
// never disagree about the underlying numbers. m may be nil (no HTTP
// families, e.g. when exporting an in-process engine).
func PromText(e *Engine, m *Metrics) string {
	r := obs.NewRegistry()
	s := e.Stats()
	counter := func(name, help string, v int64) {
		r.Counter(name, help, float64(v))
	}
	counter("bcast_requests_total", "Plan requests routed (hits + misses).", s.Requests)
	counter("bcast_cache_hits_total", "Plan requests served from the cache.", s.Hits)
	counter("bcast_cache_misses_total", "Plan requests that claimed a new cache entry.", s.Misses)
	counter("bcast_twin_misses_total", "Misses whose fingerprint was cached under a different exact encoding.", s.TwinMisses)
	counter("bcast_singleflight_total", "Requests collapsed onto an in-flight identical solve.", s.Singleflight)
	counter("bcast_evictions_total", "Cache entries evicted.", s.Evictions)
	counter("bcast_evictions_deferred_total", "Eviction scans that skipped an in-flight entry.", s.EvictionsDeferred)
	counter("bcast_queued_total", "Cold-miss solves that waited in the admission queue.", s.Queued)
	counter("bcast_shed_total", "Cold-miss solves shed under overload.", s.Shed)
	counter("bcast_canceled_total", "Requests abandoned by deadline or cancellation.", s.Canceled)
	counter("bcast_degraded_total", "Degraded-mode heuristic answers served immediately.", s.Degraded)
	counter("bcast_refines_total", "Background refinements that replaced a degraded plan.", s.Refines)
	counter("bcast_refine_failures_total", "Background refinements that failed.", s.RefineFailures)
	counter("bcast_solves_total", "Solver runs.", s.Solves)
	counter("bcast_delta_plans_total", "Requests served through the base+deltas path.", s.DeltaPlans)
	counter("bcast_warm_resolves_total", "Delta solves that reused a warm session.", s.WarmResolves)
	counter("bcast_session_rebuilds_total", "Delta solves that rebuilt their session.", s.SessionRebuilds)
	counter("bcast_lp_pivots_total", "Simplex pivots across all solves.", s.LPPivots)
	counter("bcast_lp_warm_pivots_total", "Warm-start simplex pivots across all solves.", s.LPWarmPivots)
	counter("bcast_lp_cold_pivots_total", "Cold-start simplex pivots across all solves.", s.LPColdPivots)
	counter("bcast_churn_runs_total", "Churn-replay requests.", s.ChurnRuns)
	r.Gauge("bcast_cache_entries", "Cached plans.", float64(s.CacheEntries))
	r.Gauge("bcast_cache_capacity", "Configured cache capacity.", float64(s.CacheCapacity))
	r.Gauge("bcast_workers", "Configured solve lanes.", float64(s.Workers))
	r.Gauge("bcast_queue_depth", "Configured admission-queue depth.", float64(s.QueueDepth))

	st := e.StageStats()
	r.Summary("bcast_solve_latency_seconds", "Wall-clock latency of completed solves.", st.SolveLatencyNs, 1e-9)
	r.Summary("bcast_queue_wait_seconds", "Admission wait of admitted solves.", st.QueueWaitNs, 1e-9)
	r.Summary("bcast_refine_latency_seconds", "End-to-end latency of background refinements.", st.RefineLatencyNs, 1e-9)
	r.Summary("bcast_solve_pivots", "Simplex pivots per solve.", st.SolvePivots, 1)
	r.Summary("bcast_solve_rounds", "Cutting-plane rounds per solve.", st.SolveRounds, 1)
	r.Summary("bcast_solve_cuts", "Cuts added per solve.", st.SolveCuts, 1)

	if m != nil {
		ms := m.Snapshot(nil)
		routes := make([]string, 0, len(ms.Endpoints))
		for route := range ms.Endpoints {
			routes = append(routes, route)
		}
		sort.Strings(routes)
		for _, route := range routes {
			em := ms.Endpoints[route]
			r.Counter("bcast_http_requests_total", "HTTP requests by route.", float64(em.Requests), "route", route)
			r.Counter("bcast_http_errors_total", "HTTP responses with status >= 400 by route.", float64(em.Errors), "route", route)
			r.Summary("bcast_http_latency_seconds", "HTTP request latency by route.", em.LatencyNs, 1e-9, "route", route)
		}
	}
	return r.Render()
}
