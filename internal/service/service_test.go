package service

import (
	"bytes"
	"errors"
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/heuristics"
	"repro/internal/lp"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/steady"
	"repro/internal/topology"
)

// clusterPlatform generates the cluster-of-clusters platform used throughout
// the service tests: big enough that a solve visibly outweighs a cache hit.
func clusterPlatform(t testing.TB, seed int64) *platform.Platform {
	t.Helper()
	p, err := topology.Clusters(topology.DefaultClusterConfig(), topology.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// bigClusterPlatform generates a platform whose solve takes long enough that
// the cold-vs-hit timing assertion has headroom.
func bigClusterPlatform(t testing.TB, seed int64) *platform.Platform {
	t.Helper()
	cfg := topology.DefaultClusterConfig()
	cfg.Clusters = 6
	cfg.NodesPerCluster = 16
	p, err := topology.Clusters(cfg, topology.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// smallPlatform generates a small random platform.
func smallPlatform(t testing.TB, seed int64) *platform.Platform {
	t.Helper()
	p, err := topology.Random(topology.DefaultRandomConfig(10, 0.4), topology.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPlanCacheHitByteIdenticalAndFaster(t *testing.T) {
	e := New(Config{})
	p := bigClusterPlatform(t, 7)
	req := PlanRequest{Platform: p, Source: 0, Heuristic: heuristics.NameLPGrowTree}

	start := time.Now()
	first, err := e.Plan(req)
	if err != nil {
		t.Fatal(err)
	}
	coldDur := time.Since(start)
	if first.Cached {
		t.Fatal("first request reported as cached")
	}
	if first.Plan.Throughput <= 0 {
		t.Fatalf("throughput = %v, want > 0", first.Plan.Throughput)
	}

	// The acceptance bar is >= 10x. A hit is a fingerprint plus a map lookup
	// and a byte copy; the median of several hits irons out scheduler noise.
	hits := make([]time.Duration, 5)
	for i := range hits {
		start = time.Now()
		hit, err := e.Plan(req)
		hits[i] = time.Since(start)
		if err != nil {
			t.Fatal(err)
		}
		if !hit.Cached {
			t.Fatalf("repeat %d missed the cache", i)
		}
		if !bytes.Equal(hit.JSON, first.JSON) {
			t.Fatalf("repeat %d returned different plan bytes", i)
		}
	}
	sort.Slice(hits, func(i, j int) bool { return hits[i] < hits[j] })
	hitDur := hits[len(hits)/2]
	if coldDur < 10*hitDur {
		t.Errorf("cache hit not >= 10x faster: cold %v vs median hit %v", coldDur, hitDur)
	}

	st := e.Stats()
	if st.Misses != 1 || st.Hits != 5 || st.Requests != 6 || st.Solves != 1 {
		t.Errorf("stats = %+v, want 1 miss, 5 hits, 6 requests, 1 solve", st)
	}
}

func TestPlanMatchesSteadySolve(t *testing.T) {
	e := New(Config{})
	p := smallPlatform(t, 3)
	res, err := e.Plan(PlanRequest{Platform: p, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	want, err := steady.Solve(p.Clone(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Plan.Throughput-want.Throughput) > 1e-9*math.Max(1, want.Throughput) {
		t.Errorf("plan throughput %v != steady.Solve %v", res.Plan.Throughput, want.Throughput)
	}
	if res.Plan.Fingerprint != p.Fingerprint().String() {
		t.Errorf("plan fingerprint %s != platform fingerprint", res.Plan.Fingerprint)
	}
}

func TestPlanKeySeparatesOptionsAndSource(t *testing.T) {
	e := New(Config{})
	p := smallPlatform(t, 5)
	if _, err := e.Plan(PlanRequest{Platform: p, Source: 0}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Plan(PlanRequest{Platform: p, Source: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("different source must not hit the cache")
	}
	res, err = e.Plan(PlanRequest{Platform: p, Source: 0, Heuristic: heuristics.NameGrowTree})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("different heuristic must not hit the cache")
	}
	res, err = e.Plan(PlanRequest{Platform: p, Source: 0, ColdLP: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("different LP mode must not hit the cache")
	}
}

func TestPlanDeltaPathWarmThenDerived(t *testing.T) {
	e := New(Config{})
	p := smallPlatform(t, 11)
	first, err := e.Plan(PlanRequest{Platform: p, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	deltas := []platform.Delta{{Kind: platform.DeltaScaleLink, Link: 2, Factor: 1.8}}

	mut, err := e.Plan(PlanRequest{Base: first.Plan.Fingerprint, Deltas: deltas, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !mut.WarmResolved {
		t.Error("first delta request should reuse the base entry's warm session")
	}

	// Oracle: cold solve of the independently mutated platform.
	oracle := p.Clone()
	if _, err := oracle.ApplyDelta(deltas[0]); err != nil {
		t.Fatal(err)
	}
	want, err := steady.Solve(oracle, 0, &steady.Options{ColdStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mut.Plan.Throughput-want.Throughput) > 1e-6*math.Max(1, want.Throughput) {
		t.Errorf("warm delta plan %v != cold oracle %v", mut.Plan.Throughput, want.Throughput)
	}
	if mut.Plan.Fingerprint != oracle.Fingerprint().String() {
		t.Error("mutated plan fingerprint does not match the mutated platform")
	}

	// The identical delta request is now answered from the cache.
	again, err := e.Plan(PlanRequest{Base: first.Plan.Fingerprint, Deltas: deltas, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("repeated delta request should hit the cache")
	}
	if !bytes.Equal(again.JSON, mut.JSON) {
		t.Error("cached delta plan bytes differ from the original")
	}

	// A different delta against the same base finds the session gone (it
	// moved to the mutated entry) and re-derives one from the snapshot.
	other, err := e.Plan(PlanRequest{
		Base:   first.Plan.Fingerprint,
		Deltas: []platform.Delta{{Kind: platform.DeltaScaleLink, Link: 4, Factor: 2.5}},
		Source: 0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if other.WarmResolved {
		t.Error("second distinct delta request cannot be warm: the session moved")
	}
	oracle2 := p.Clone()
	if _, err := oracle2.ApplyDelta(platform.Delta{Kind: platform.DeltaScaleLink, Link: 4, Factor: 2.5}); err != nil {
		t.Fatal(err)
	}
	want2, err := steady.Solve(oracle2, 0, &steady.Options{ColdStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(other.Plan.Throughput-want2.Throughput) > 1e-6*math.Max(1, want2.Throughput) {
		t.Errorf("derived delta plan %v != cold oracle %v", other.Plan.Throughput, want2.Throughput)
	}

	if st := e.Stats(); st.DeltaPlans != 3 || st.WarmResolves < 1 {
		t.Errorf("stats = %+v, want 3 delta plans and >= 1 warm resolve", st)
	}
}

func TestPlanDeltaChain(t *testing.T) {
	// Chained one-delta-away requests: each step uses the previous plan's
	// fingerprint as its base, the warm session following the lineage.
	e := New(Config{})
	p := smallPlatform(t, 13)
	res, err := e.Plan(PlanRequest{Platform: p, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	oracle := p.Clone()
	warm := 0
	for step := 0; step < 4; step++ {
		d := platform.Delta{Kind: platform.DeltaScaleLink, Link: step, Factor: 1.25}
		res, err = e.Plan(PlanRequest{Base: res.Plan.Fingerprint, Deltas: []platform.Delta{d}, Source: 0})
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if res.WarmResolved {
			warm++
		}
		if _, err := oracle.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
		want, err := steady.Solve(oracle.Clone(), 0, &steady.Options{ColdStart: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Plan.Throughput-want.Throughput) > 1e-6*math.Max(1, want.Throughput) {
			t.Fatalf("step %d: chained plan %v != cold oracle %v", step, res.Plan.Throughput, want.Throughput)
		}
	}
	if warm != 4 {
		t.Errorf("warm resolves along the chain = %d, want 4", warm)
	}
}

func TestPlanUnknownBase(t *testing.T) {
	e := New(Config{})
	_, err := e.Plan(PlanRequest{Base: smallPlatform(t, 1).Fingerprint().String(), Source: 0})
	if !errors.Is(err, ErrUnknownBase) {
		t.Fatalf("err = %v, want ErrUnknownBase", err)
	}
	if _, err := e.Plan(PlanRequest{Base: "zz-not-hex", Source: 0}); err == nil {
		t.Fatal("malformed base fingerprint accepted")
	}
}

func TestPlanRejectsDegenerateRequests(t *testing.T) {
	e := New(Config{})
	if _, err := e.Plan(PlanRequest{Source: 0}); !errors.Is(err, ErrNoPlatform) {
		t.Errorf("missing platform: err = %v, want ErrNoPlatform", err)
	}
	if _, err := e.Plan(PlanRequest{Platform: platform.New(1), Source: 0}); !errors.Is(err, ErrTooSmall) {
		t.Errorf("single node: err = %v, want ErrTooSmall", err)
	}
	p := smallPlatform(t, 2)
	first, err := e.Plan(PlanRequest{Platform: p, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	// Ambiguous requests (full platform AND base) are rejected instead of
	// silently answering for one of the two.
	_, err = e.Plan(PlanRequest{Platform: p, Base: first.Plan.Fingerprint, Source: 0})
	if !errors.Is(err, ErrBothPlatform) {
		t.Errorf("platform+base: err = %v, want ErrBothPlatform", err)
	}
}

func TestPlanDisableSessionsStillServesDeltas(t *testing.T) {
	e := New(Config{DisableSessions: true})
	p := smallPlatform(t, 19)
	first, err := e.Plan(PlanRequest{Platform: p, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	d := platform.Delta{Kind: platform.DeltaScaleLink, Link: 1, Factor: 2}
	mut, err := e.Plan(PlanRequest{Base: first.Plan.Fingerprint, Deltas: []platform.Delta{d}, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if mut.WarmResolved {
		t.Error("sessions are disabled; the delta request cannot be warm")
	}
	oracle := p.Clone()
	if _, err := oracle.ApplyDelta(d); err != nil {
		t.Fatal(err)
	}
	want, err := steady.Solve(oracle, 0, &steady.Options{ColdStart: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mut.Plan.Throughput-want.Throughput) > 1e-6*math.Max(1, want.Throughput) {
		t.Errorf("session-less delta plan %v != cold oracle %v", mut.Plan.Throughput, want.Throughput)
	}
	// Repeated identical requests still hit.
	hit, err := e.Plan(PlanRequest{Platform: p, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !hit.Cached {
		t.Error("plan cache must still work with sessions disabled")
	}
}

func TestPlanFailedSolveNotCached(t *testing.T) {
	e := New(Config{})
	p := clusterPlatform(t, 3)
	req := PlanRequest{Platform: p, Source: 0, LPMaxIterations: 1}
	if _, err := e.Plan(req); !errors.Is(err, steady.ErrLPFailed) {
		t.Fatalf("err = %v, want ErrLPFailed", err)
	}
	if st := e.Stats(); st.CacheEntries != 0 {
		t.Errorf("failed solve left %d cache entries", st.CacheEntries)
	}
	// Without the limit the same platform solves fine: the failure was not
	// sticky.
	if _, err := e.Plan(PlanRequest{Platform: p, Source: 0}); err != nil {
		t.Fatalf("follow-up solve failed: %v", err)
	}
}

func TestPlanLRUEviction(t *testing.T) {
	e := New(Config{CacheSize: 2})
	var reqs []PlanRequest
	for seed := int64(1); seed <= 3; seed++ {
		reqs = append(reqs, PlanRequest{Platform: smallPlatform(t, seed), Source: 0})
	}
	for _, r := range reqs {
		if _, err := e.Plan(r); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Evictions != 1 || st.CacheEntries != 2 {
		t.Fatalf("stats = %+v, want 1 eviction and 2 entries", st)
	}
	// The oldest plan was evicted; re-requesting it is a miss.
	res, err := e.Plan(reqs[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("evicted plan still served from cache")
	}
	// The most recent one is still cached.
	res, err = e.Plan(reqs[2])
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Error("recently used plan was evicted")
	}
}

// permutedTwin renumbers every node of p by the cyclic shift u -> u+1.
func permutedTwin(p *platform.Platform) *platform.Platform {
	n := p.NumNodes()
	q := platform.New(n)
	q.SetSliceSize(p.SliceSize())
	for u := 0; u < n; u++ {
		q.SetNode((u+1)%n, p.Node(u))
	}
	for _, l := range p.Links() {
		q.MustAddLink((l.From+1)%n, (l.To+1)%n, l.Cost)
	}
	return q
}

func TestPlanTwinMissIsNotServedWrongPlan(t *testing.T) {
	// A renumbered twin shares the fingerprint but not the content: the
	// cached plan's edge rates are in the wrong ID space, so the engine must
	// solve it fresh.
	e := New(Config{})
	p := smallPlatform(t, 9)
	twin := permutedTwin(p)
	if p.Fingerprint() != twin.Fingerprint() {
		t.Fatal("twin does not share the fingerprint (test setup)")
	}
	if _, err := e.Plan(PlanRequest{Platform: p, Source: 0}); err != nil {
		t.Fatal(err)
	}
	res, err := e.Plan(PlanRequest{Platform: twin, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Fatal("twin request served from cache despite different content")
	}
	want, err := steady.Solve(twin.Clone(), 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Plan.Throughput-want.Throughput) > 1e-9*math.Max(1, want.Throughput) {
		t.Errorf("twin plan %v != direct solve %v", res.Plan.Throughput, want.Throughput)
	}
	if st := e.Stats(); st.TwinMisses != 1 {
		t.Errorf("stats = %+v, want 1 twin miss", st)
	}
	// Twins cache side by side under their own exact keys: repeating either
	// request now hits its own entry.
	for i, q := range []*platform.Platform{p, twin} {
		res, err := e.Plan(PlanRequest{Platform: q, Source: 0})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Cached {
			t.Errorf("repeat of twin %d missed the cache", i)
		}
	}
}

func TestPlanDeltaBaseAmbiguousTwinsNeedExactKey(t *testing.T) {
	// With two renumbered twins cached under one fingerprint, a delta
	// request by fingerprint alone is ambiguous (deltas address links by
	// ID); BaseExact pins the intended twin.
	e := New(Config{})
	p := smallPlatform(t, 9)
	twin := permutedTwin(p)
	rp, err := e.Plan(PlanRequest{Platform: p, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	rt, err := e.Plan(PlanRequest{Platform: twin, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rp.Plan.Fingerprint != rt.Plan.Fingerprint {
		t.Fatal("twins should share the fingerprint (test setup)")
	}
	if rp.Plan.ExactKey == rt.Plan.ExactKey {
		t.Fatal("twins must not share the exact key")
	}

	d := platform.Delta{Kind: platform.DeltaScaleLink, Link: 0, Factor: 2}
	_, err = e.Plan(PlanRequest{Base: rp.Plan.Fingerprint, Deltas: []platform.Delta{d}, Source: 0})
	if !errors.Is(err, ErrAmbiguousBase) {
		t.Fatalf("ambiguous base: err = %v, want ErrAmbiguousBase", err)
	}

	// BaseExact selects the intended twin: the mutated plans must match the
	// cold oracles of each twin's own numbering.
	for _, tc := range []struct {
		plat *platform.Platform
		res  *PlanResult
	}{{p, rp}, {twin, rt}} {
		mut, err := e.Plan(PlanRequest{
			Base:      tc.res.Plan.Fingerprint,
			BaseExact: tc.res.Plan.ExactKey,
			Deltas:    []platform.Delta{d},
			Source:    0,
		})
		if err != nil {
			t.Fatal(err)
		}
		oracle := tc.plat.Clone()
		if _, err := oracle.ApplyDelta(d); err != nil {
			t.Fatal(err)
		}
		want, err := steady.Solve(oracle, 0, &steady.Options{ColdStart: true})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(mut.Plan.Throughput-want.Throughput) > 1e-6*math.Max(1, want.Throughput) {
			t.Errorf("pinned delta plan %v != cold oracle %v", mut.Plan.Throughput, want.Throughput)
		}
	}

	if _, err := e.Plan(PlanRequest{Base: rp.Plan.Fingerprint, BaseExact: "zz", Source: 0}); !errors.Is(err, ErrBadRequest) {
		t.Errorf("malformed baseExact: err = %v, want ErrBadRequest", err)
	}
}

func TestPlanEngineSteadyLPOptionsSurvivePivotOverride(t *testing.T) {
	// A per-request pivot budget must not wipe other LP tuning configured
	// on the engine.
	base := &steady.Options{LP: &lp.Options{Tolerance: 1e-10, MaxIterations: 5000}}
	e := New(Config{Steady: base})
	opts := e.steadyOptions(PlanRequest{LPMaxIterations: 7})
	if opts.LP.MaxIterations != 7 {
		t.Errorf("MaxIterations = %d, want 7", opts.LP.MaxIterations)
	}
	if opts.LP.Tolerance != 1e-10 {
		t.Errorf("Tolerance = %v, want the engine-configured 1e-10", opts.LP.Tolerance)
	}
	if base.LP.MaxIterations != 5000 {
		t.Error("request-level override mutated the engine's shared options")
	}
}

func TestPlanEachDeterministicAcrossWorkerCounts(t *testing.T) {
	plats := make([]*platform.Platform, 6)
	for i := range plats {
		plats[i] = smallPlatform(t, int64(20+i/2)) // duplicates: cross-request hits
	}
	var baseline []PlanOutcome
	for _, workers := range []int{1, 4, 32} {
		e := New(Config{Workers: workers})
		reqs := make([]PlanRequest, len(plats))
		for i, p := range plats {
			reqs[i] = PlanRequest{Platform: p, Source: 0}
		}
		out := e.PlanEach(reqs, workers)
		if len(out) != len(reqs) {
			t.Fatalf("workers=%d: %d outcomes for %d requests", workers, len(out), len(reqs))
		}
		for i, o := range out {
			if o.Error != "" {
				t.Fatalf("workers=%d request %d: %s", workers, i, o.Error)
			}
		}
		if baseline == nil {
			baseline = out
			continue
		}
		for i := range out {
			if !bytes.Equal(out[i].Result.JSON, baseline[i].Result.JSON) {
				t.Errorf("workers=%d: plan %d differs from workers=1 baseline", workers, i)
			}
		}
	}
}

func TestEvaluateThroughCache(t *testing.T) {
	e := New(Config{})
	p := smallPlatform(t, 17)
	req := EvaluateRequest{Platform: p, Source: 0, Heuristics: []string{heuristics.NameLPGrowTree, heuristics.NameBinomial}}
	ev, err := e.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Cached {
		t.Error("first evaluation reported cached optimum")
	}
	if len(ev.Results) != 2 {
		t.Fatalf("%d results, want 2", len(ev.Results))
	}
	for _, r := range ev.Results {
		if r.Error != "" {
			t.Fatalf("heuristic %s failed: %s", r.Heuristic, r.Error)
		}
		if r.Ratio <= 0 || r.Ratio > 1+1e-6 {
			t.Errorf("heuristic %s ratio %v outside (0, 1]", r.Heuristic, r.Ratio)
		}
	}
	ev2, err := e.Evaluate(req)
	if err != nil {
		t.Fatal(err)
	}
	if !ev2.Cached {
		t.Error("second evaluation did not reuse the cached optimum")
	}
	for i := range ev.Results {
		if ev.Results[i] != ev2.Results[i] {
			t.Errorf("evaluation of %s not deterministic", ev.Results[i].Heuristic)
		}
	}
}

func TestChurnReplay(t *testing.T) {
	e := New(Config{})
	p := smallPlatform(t, 21)
	rep, err := e.Churn(ChurnRequest{Platform: p, Source: 0, Events: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trace.Events) != 8 {
		t.Errorf("trace has %d events, want 8", len(rep.Trace.Events))
	}
	if rep.Report == nil || len(rep.Report.Events) != 8 {
		t.Error("report missing per-event outcomes")
	}
	if rep.Fingerprint != p.Fingerprint().String() {
		t.Error("churn replay fingerprint mismatch")
	}
	if st := e.Stats(); st.ChurnRuns != 1 {
		t.Errorf("stats = %+v, want 1 churn run", st)
	}
	// The replay must not have mutated the caller's platform.
	if p.Mutated() {
		t.Error("churn replay mutated the request platform")
	}
}

func TestEvaluateOnePortRatiosAgainstModel(t *testing.T) {
	// Sanity: EvaluateHeuristic with an explicit model agrees with the
	// engine's default one-port evaluation.
	e := New(Config{})
	p := smallPlatform(t, 23)
	ev, err := e.Evaluate(EvaluateRequest{Platform: p, Source: 0, Heuristics: []string{heuristics.NameGrowTree}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Plan(PlanRequest{Platform: p, Source: 0})
	if err != nil {
		t.Fatal(err)
	}
	tp, err := EvaluateHeuristic(p, 0, heuristics.NameGrowTree, res.Plan.EdgeRate, model.OnePortBidirectional)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tp-ev.Results[0].Throughput) > 1e-12 {
		t.Errorf("EvaluateHeuristic %v != Evaluate %v", tp, ev.Results[0].Throughput)
	}
}

// TestSingleflightGateDeterministic drives the Hooks instrumentation the
// way the load harness does: BeforeSolve holds the one solve of a burst of
// identical requests until every member has registered its lookup, which
// makes the singleflight split exact — 1 miss and k-1 collapsed hits — for
// any scheduling and any worker-pool size.
func TestSingleflightGateDeterministic(t *testing.T) {
	const burst = 6
	var (
		gateMu sync.Mutex
		seen   int
	)
	cond := sync.NewCond(&gateMu)
	hooks := &Hooks{
		OnLookup: func(LookupEvent) {
			gateMu.Lock()
			seen++
			gateMu.Unlock()
			cond.Broadcast()
		},
		BeforeSolve: func() {
			gateMu.Lock()
			for seen < burst {
				cond.Wait()
			}
			gateMu.Unlock()
		},
	}
	e := New(Config{Workers: 2, Hooks: hooks})
	p := smallPlatform(t, 61)

	var wg sync.WaitGroup
	results := make([]*PlanResult, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := e.Plan(PlanRequest{Platform: p, Source: 0})
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()

	var cached, collapsed int
	for i, res := range results {
		if res == nil {
			t.Fatalf("request %d has no result", i)
		}
		if res.Cached {
			cached++
		}
		if res.Collapsed {
			collapsed++
			if !res.Cached {
				t.Errorf("request %d: collapsed without cached", i)
			}
		}
		if !bytes.Equal(res.JSON, results[0].JSON) {
			t.Errorf("request %d returned different plan bytes", i)
		}
	}
	if cached != burst-1 || collapsed != burst-1 {
		t.Errorf("cached=%d collapsed=%d, want %d each", cached, collapsed, burst-1)
	}
	st := e.Stats()
	if st.Misses != 1 || st.Hits != burst-1 || st.Singleflight != burst-1 || st.Solves != 1 {
		t.Errorf("stats = %+v, want 1 miss / %d hits / %d singleflight / 1 solve", st, burst-1, burst-1)
	}
}
