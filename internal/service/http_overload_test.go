package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHTTPDeadlineReturns504 drives a plan request whose deadlineMs expires
// before the solve can pivot: the response must be a structured 504 carrying
// the cancellation error, and the engine must be left without a cache entry.
func TestHTTPDeadlineReturns504(t *testing.T) {
	// The hook parks the solver until the request deadline has passed; the
	// solver's first context poll then abandons the solve.
	e := New(Config{Hooks: &Hooks{BeforeSolve: func() { time.Sleep(60 * time.Millisecond) }}})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	p := smallPlatform(t, 61)
	resp, body := postJSON(t, srv, "/v1/plan", PlanRequest{Platform: p, Source: 0, DeadlineMs: 20})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", resp.StatusCode, body)
	}
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err != nil || eb.Error == "" {
		t.Fatalf("504 body %q is not a structured error", body)
	}
	if st := e.Stats(); st.CacheEntries != 0 || st.Canceled == 0 {
		t.Errorf("stats after 504 = %+v, want 0 entries and Canceled > 0", st)
	}
}

// TestHTTPOverloadReturns429WithRetryAfter saturates a one-lane, one-queue
// engine and verifies the shed requests get a structured 429 with an integer
// Retry-After header.
func TestHTTPOverloadReturns429WithRetryAfter(t *testing.T) {
	release := make(chan struct{})
	admitted := make(chan struct{}, 8)
	var solvers atomic.Int32
	e := New(Config{
		Workers:    1,
		QueueDepth: 1,
		Hooks: &Hooks{
			BeforeSolve: func() {
				if solvers.Add(1) == 1 {
					<-release
				}
			},
			OnAdmit: func(AdmitEvent) { admitted <- struct{}{} },
		},
	})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	type result struct {
		status     int
		retryAfter string
		body       []byte
	}
	results := make([]result, 4)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		p := smallPlatform(t, int64(500+i))
		done := make(chan struct{})
		wg.Add(1)
		go func(i int, req PlanRequest) {
			defer wg.Done()
			defer close(done)
			resp, body := postJSON(t, srv, "/v1/plan", req)
			results[i] = result{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After"), body: body}
		}(i, PlanRequest{Platform: p, Source: 0})
		select {
		case <-admitted:
		case <-done:
		case <-time.After(30 * time.Second):
			t.Fatalf("request %d: no admission decision", i)
		}
	}
	close(release)
	wg.Wait()

	var ok, shed int
	for i, r := range results {
		switch r.status {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			shed++
			secs, err := strconv.Atoi(r.retryAfter)
			if err != nil || secs < 1 {
				t.Errorf("request %d: Retry-After %q, want integer seconds >= 1", i, r.retryAfter)
			}
			var eb errorBody
			if err := json.Unmarshal(r.body, &eb); err != nil || eb.Error == "" {
				t.Errorf("request %d: 429 body %q is not a structured error", i, r.body)
			}
		default:
			t.Errorf("request %d: status %d, want 200 or 429", i, r.status)
		}
	}
	if ok != 2 || shed != 2 {
		t.Fatalf("%d ok / %d shed, want 2 / 2", ok, shed)
	}
}

// TestHTTPDegradedPlanFlagged checks the degraded opt-in over HTTP: the
// response carries the degraded flag, and after the background refinement a
// plain request sees the refined plan without the flag.
func TestHTTPDegradedPlanFlagged(t *testing.T) {
	e := New(Config{})
	srv := httptest.NewServer(NewHandler(e))
	defer srv.Close()

	p := smallPlatform(t, 71)
	resp, body := postJSON(t, srv, "/v1/plan", PlanRequest{Platform: p, Source: 0, Degraded: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded plan status %d: %s", resp.StatusCode, body)
	}
	var env planEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if !env.Degraded {
		t.Fatal("degraded response not flagged")
	}
	var plan Plan
	if err := json.Unmarshal(env.Plan, &plan); err != nil {
		t.Fatal(err)
	}
	if plan.Throughput <= 0 || !plan.Degraded {
		t.Fatalf("degraded plan = %+v, want positive throughput and Degraded", plan)
	}

	e.Drain()

	resp, body = postJSON(t, srv, "/v1/plan", PlanRequest{Platform: p, Source: 0})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("refined plan status %d: %s", resp.StatusCode, body)
	}
	env = planEnvelope{}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Degraded {
		t.Error("refined hit still flagged degraded")
	}
	if !env.Cached {
		t.Error("refined plan not served from the cache")
	}
}
