package service

import (
	"bytes"
	"container/list"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/dynamic"
	"repro/internal/heuristics"
	"repro/internal/lp"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/pack"
	"repro/internal/parallel"
	"repro/internal/platform"
	"repro/internal/stats"
	"repro/internal/steady"
	"repro/internal/throughput"
)

// Errors returned by the engine.
var (
	ErrNoPlatform   = errors.New("service: request has no platform")
	ErrBothPlatform = errors.New("service: request sets both platform and base; exactly one is allowed")
	ErrTooSmall     = errors.New("service: platform needs at least 2 alive nodes")
	ErrUnknownBase  = errors.New("service: base fingerprint not in cache")
	// ErrAmbiguousBase means the base fingerprint matches several cached
	// platforms (renumbered twins fold onto one fingerprint): the request
	// must pin the intended one with BaseExact, the exactKey of its plan.
	ErrAmbiguousBase = errors.New("service: base fingerprint matches several cached twins; set baseExact")
	// ErrBadRequest wraps malformed request fields (unparseable
	// fingerprints, unknown heuristic or profile names).
	ErrBadRequest = errors.New("service: bad request")
	// ErrCanceled identifies a deadline/cancellation outcome anywhere in the
	// stack: it is the lp.ErrCanceled sentinel re-exported, so
	// errors.Is(err, service.ErrCanceled) matches whether the request died
	// waiting in the admission queue, waiting on a collapsed solve, or
	// mid-pivot inside the simplex.
	ErrCanceled = lp.ErrCanceled
	// ErrOverloaded is the sentinel matched by errors.Is for shed requests;
	// the concrete error is always an *OverloadedError carrying the
	// suggested Retry-After. The message is deliberately constant (no
	// durations) so error strings are byte-stable across runs.
	ErrOverloaded = errors.New("service: overloaded: solve lanes and admission queue are full")
)

// OverloadedError is returned when a cold miss is shed: the solve pool and
// the bounded admission queue are both full. RetryAfter is a back-off
// suggestion derived from the observed solve-latency histogram (roughly the
// time to drain the current backlog), clamped to [1s, 60s]; the HTTP layer
// surfaces it as a Retry-After header on the 429 response.
type OverloadedError struct {
	RetryAfter time.Duration
}

func (e *OverloadedError) Error() string { return ErrOverloaded.Error() }

// Unwrap makes errors.Is(err, ErrOverloaded) match.
func (e *OverloadedError) Unwrap() error { return ErrOverloaded }

// canceled builds the error for a request abandoned because its context was
// done, preserving the ErrCanceled sentinel.
func canceled(ctx context.Context) error {
	return fmt.Errorf("service: %w: %v", ErrCanceled, ctx.Err())
}

// Config tunes an Engine.
type Config struct {
	// CacheSize bounds the number of cached plans (default 256). Least
	// recently used entries are evicted.
	CacheSize int
	// Workers bounds the number of concurrent solves (default: number of
	// CPUs). Requests beyond the bound queue; cache hits never queue.
	Workers int
	// QueueDepth bounds the admission queue for cold-miss solves: when every
	// solve lane is busy, up to QueueDepth requests wait their turn and any
	// further cold miss is shed immediately with an *OverloadedError (HTTP
	// 429 + Retry-After). Zero keeps the pre-admission-control behavior: an
	// unbounded queue that never sheds. Cache hits and collapsed
	// singleflight waits never touch the queue (priority lanes).
	QueueDepth int
	// DefaultDeadline, when positive, bounds every request that does not
	// carry its own deadlineMs: the solve is canceled (ErrCanceled, HTTP
	// 504) once the deadline expires. Zero means no server-side deadline.
	DefaultDeadline time.Duration
	// DegradedHeuristic names the tree heuristic used to answer opt-in
	// degraded requests immediately while the LP solve refines in the
	// background (default "grow-tree"). It should be a non-LP heuristic —
	// an LP-based one would pay the very solve degraded mode exists to
	// avoid.
	DegradedHeuristic string
	// Steady is the base steady-state solver configuration applied to every
	// request (per-request ColdLP/LPMaxIterations are layered on top).
	Steady *steady.Options
	// DisableSessions drops the warm solver session (master LP tableau and
	// cut pool) after each solve instead of retaining it on the cache entry.
	// Delta requests then always re-derive a fresh session from the entry's
	// platform snapshot. Use it for plan-only workloads — the sweep engine
	// does — where retained tableaux would be dead weight.
	DisableSessions bool
	// Hooks, when non-nil, exposes engine-internal events to instrumentation
	// (metrics exporters, the load harness's deterministic burst gate). A nil
	// Hooks — and any nil callback — costs nothing.
	Hooks *Hooks
	// Tracer, when non-nil, records a per-request trace (typed span events:
	// lookup, admission, queue wait, solve, degraded answer, background
	// refinement, cancellation) into its ring buffer; GET /v1/trace serves the
	// retained traces. A nil Tracer costs one nil check per request.
	Tracer *obs.Tracer
}

// Hooks are the engine's instrumentation points. Both callbacks may be
// invoked concurrently from many request goroutines.
type Hooks struct {
	// OnLookup fires once per plan request, under the engine lock, at the
	// moment the request is routed: a miss has just claimed its cache entry,
	// a hit is about to use (or wait on) an existing one. It must return
	// quickly and must not call back into the engine.
	OnLookup func(LookupEvent)
	// BeforeSolve fires on the solving goroutine after it has claimed the
	// cache entry and a worker slot, immediately before the solver runs.
	// Blocking inside it delays the solve (and every request collapsed onto
	// it); the load harness uses this to hold a solve until a whole burst of
	// identical requests has demonstrably registered, making singleflight
	// counters deterministic. Background refinement solves (degraded mode)
	// do not fire it.
	BeforeSolve func()
	// OnAdmit fires once per admission decision for a cold-miss (or churn)
	// solve: lane taken directly, queued behind busy lanes, or shed. It
	// fires on the requesting goroutine, outside the engine lock; the load
	// harness uses it to sequence overload storms deterministically.
	// Background refinement solves do not fire it.
	OnAdmit func(AdmitEvent)
}

// AdmitKind classifies one admission decision.
type AdmitKind int

const (
	// AdmitLane: a free solve lane was claimed directly.
	AdmitLane AdmitKind = iota
	// AdmitQueued: all lanes busy; the request waits in the admission queue
	// (bounded when Config.QueueDepth > 0, unbounded otherwise).
	AdmitQueued
	// AdmitShed: lanes and bounded queue both full; the request was rejected
	// with an *OverloadedError.
	AdmitShed
)

// String returns a human-readable admission kind.
func (k AdmitKind) String() string {
	switch k {
	case AdmitLane:
		return "lane"
	case AdmitQueued:
		return "queued"
	case AdmitShed:
		return "shed"
	default:
		return fmt.Sprintf("AdmitKind(%d)", int(k))
	}
}

// AdmitEvent describes one admission decision.
type AdmitEvent struct {
	Kind AdmitKind
}

// LookupEvent describes one routed plan request.
type LookupEvent struct {
	// Miss reports that the request claimed a new cache entry and will solve.
	Miss bool
	// Twin reports a miss whose fingerprint was already cached under a
	// different exact encoding (a renumbered twin).
	Twin bool
	// Collapsed reports a hit on an entry whose solve is still in flight:
	// the request will wait on that solve instead of starting its own.
	Collapsed bool
}

func (c Config) cacheSize() int {
	if c.CacheSize > 0 {
		return c.CacheSize
	}
	return 256
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.NumCPU()
}

func (c Config) degradedHeuristic() string {
	if c.DegradedHeuristic != "" {
		return c.DegradedHeuristic
	}
	return heuristics.NameGrowTree
}

// PlanRequest asks for the optimal steady-state broadcast plan of a platform.
// Exactly one of Platform and Base must be set: Platform carries the full
// platform, Base addresses a previously planned platform by fingerprint and
// Deltas mutates it (the near-duplicate fast path).
type PlanRequest struct {
	// Platform is the full platform to plan for.
	Platform *platform.Platform `json:"platform,omitempty"`
	// Base is the fingerprint (hex) of a previously planned platform; Deltas
	// are applied to it in order. The base request's Source, Heuristic and
	// LP options must be repeated for the cache key to resolve.
	Base   string           `json:"base,omitempty"`
	Deltas []platform.Delta `json:"deltas,omitempty"`
	// BaseExact optionally pins the exact cached platform the Base
	// fingerprint refers to (the exactKey of its plan). Required only when
	// renumbered twins sharing the fingerprint are cached side by side —
	// deltas address links by ID, so the engine refuses to guess between
	// twins (ErrAmbiguousBase).
	BaseExact string `json:"baseExact,omitempty"`
	// Source is the broadcast source processor.
	Source int `json:"source"`
	// Heuristic optionally names a tree heuristic to build and evaluate on
	// top of the optimal edge rates (empty = LP optimum only).
	Heuristic string `json:"heuristic,omitempty"`
	// Trees, when positive, asks for a k-tree plan: the optimal edge rates
	// are decomposed into a weighted packing of at most Trees broadcast
	// trees (Plan.Packing). The packing achieves the LP throughput when the
	// cap is generous; a tight cap truncates to the heaviest trees and
	// reports the honest reduced throughput. Part of the cache identity.
	Trees int `json:"trees,omitempty"`
	// ColdLP disables warm starts inside the master LP solves.
	ColdLP bool `json:"coldLP,omitempty"`
	// RevisedLP routes the master LP solves through the revised-simplex
	// solver (maintained LU basis; see steady.Options.Revised). Part of the
	// cache identity. Ignored when ColdLP is set.
	RevisedLP bool `json:"revisedLP,omitempty"`
	// LPMaxIterations bounds the simplex pivots per master solve (0 = solver
	// default).
	LPMaxIterations int `json:"lpMaxIterations,omitempty"`
	// DeadlineMs bounds this request in milliseconds: the solve is canceled
	// (ErrCanceled, HTTP 504) once the budget expires. Zero falls back to
	// the engine's DefaultDeadline (which may itself be "none"). Not part
	// of the cache identity.
	DeadlineMs int `json:"deadlineMs,omitempty"`
	// Degraded opts into degraded mode: a cold miss is answered immediately
	// with the engine's cheap heuristic tree (PlanResult.Degraded and
	// Plan.Degraded set) while the LP-optimal solve runs — and updates the
	// cache entry — in the background. Hits on an already-refined entry
	// return the optimal plan as usual. Not part of the cache identity.
	Degraded bool `json:"degraded,omitempty"`
}

// Plan is a solved broadcast plan. It is immutable once cached: the engine
// hands out the same marshaled bytes for every cache hit.
type Plan struct {
	// Fingerprint is the canonical content fingerprint of the planned
	// platform (hex); delta requests can use it as their next Base.
	Fingerprint string `json:"fingerprint"`
	// ExactKey is the hash of the platform's exact canonical encoding in
	// its own node/link numbering (hex). Unlike the fingerprint it
	// distinguishes renumbered twins; delta requests pass it as BaseExact
	// when the fingerprint alone is ambiguous.
	ExactKey string `json:"exactKey"`
	Source   int    `json:"source"`
	Nodes    int    `json:"nodes"`
	Links    int    `json:"links"`
	// Throughput and UpperBound are the optimal steady-state MTP throughput
	// and the final master LP bound; EdgeRate are the per-link optimal rates.
	Throughput float64   `json:"throughput"`
	UpperBound float64   `json:"upperBound"`
	EdgeRate   []float64 `json:"edgeRate"`
	// LP statistics of the solve that produced the plan.
	LPRounds     int `json:"lpRounds"`
	LPCuts       int `json:"lpCuts"`
	LPPivots     int `json:"lpPivots"`
	LPWarmPivots int `json:"lpWarmPivots,omitempty"`
	LPColdPivots int `json:"lpColdPivots,omitempty"`
	// Heuristic outcome (only when the request named one). The binomial
	// heuristic produces a routed schedule, so Tree may be nil even with a
	// throughput.
	Heuristic           string         `json:"heuristic,omitempty"`
	Tree                *platform.Tree `json:"tree,omitempty"`
	HeuristicThroughput float64        `json:"heuristicThroughput,omitempty"`
	Ratio               float64        `json:"ratio,omitempty"`
	// k-tree packing outcome (only when the request set Trees > 0):
	// Packing is the weighted tree decomposition of EdgeRate,
	// PackedThroughput its combined rate, PackedTrees the tree count and
	// PackedRatio the packed/LP throughput ratio (1 within tolerance unless
	// the tree cap truncated the packing).
	Packing          *steady.Packing `json:"packing,omitempty"`
	PackedThroughput float64         `json:"packedThroughput,omitempty"`
	PackedTrees      int             `json:"packedTrees,omitempty"`
	PackedRatio      float64         `json:"packedRatio,omitempty"`
	// Degraded marks a heuristic-only answer served by degraded mode before
	// its background LP refinement landed: Throughput is then the heuristic
	// tree's throughput (a lower bound), EdgeRate is absent and the LP
	// counters are zero.
	Degraded bool `json:"degraded,omitempty"`
}

// PlanResult is the engine's answer to one plan request.
type PlanResult struct {
	// Plan is the solved plan (shared with the cache; treat as read-only).
	Plan *Plan
	// JSON is the canonical marshaled form of Plan. Cache hits return a copy
	// of the exact bytes of the original solve.
	JSON []byte
	// Cached reports that the plan was served from the cache.
	Cached bool
	// Collapsed reports that the request arrived while an identical solve
	// was in flight and waited on it (singleflight). Collapsed implies
	// Cached.
	Collapsed bool
	// WarmResolved reports that a delta request reused the base entry's warm
	// session instead of cold-solving.
	WarmResolved bool
	// Degraded reports that the answer is a degraded-mode heuristic plan
	// (the background refinement had not landed yet).
	Degraded bool
	// TraceID is the request's trace ID when the engine (or the HTTP layer)
	// traced it: deterministic tracers assign it when the trace finishes,
	// WallClock tracers at Begin. Empty when tracing is off.
	TraceID string
}

// Stats is a snapshot of the engine counters.
type Stats struct {
	// Requests = Hits + Misses, on every path including errors: a request
	// that waited on a solve which then failed — and a request abandoned by
	// its own deadline — counts as a Miss (it got no plan). TwinMisses
	// (fingerprint matched but content differed: a renumbered twin or hash
	// collision) are a subset of Misses. Singleflight counts requests that
	// found their solve already in flight and waited on it instead of
	// duplicating it; it is counted at lookup classification — the same
	// moment LookupEvent{Collapsed: true} fires — so the hook-side and
	// stats-side views agree even when the collapsed-onto solve fails.
	// (Successful collapsed waits are a subset of Hits; failed ones land in
	// Misses, so Singleflight is not a subset of Hits on error paths.)
	Requests     int64 `json:"requests"`
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	TwinMisses   int64 `json:"twinMisses,omitempty"`
	Singleflight int64 `json:"singleflight,omitempty"`
	Evictions    int64 `json:"evictions,omitempty"`
	// EvictionsDeferred counts eviction scans that skipped an in-flight
	// entry (solve not finished): evicting one would break the singleflight
	// invariant, so the cache temporarily exceeds capacity instead.
	EvictionsDeferred int64 `json:"evictionsDeferred,omitempty"`
	// Admission-control outcomes for cold-miss solves: Queued waited behind
	// busy lanes, Shed were rejected with an *OverloadedError, Canceled
	// were abandoned by their context (in the queue, on a collapsed wait,
	// or mid-solve).
	Queued   int64 `json:"queued,omitempty"`
	Shed     int64 `json:"shed,omitempty"`
	Canceled int64 `json:"canceled,omitempty"`
	// Degraded-mode outcomes: Degraded counts heuristic-only answers served
	// immediately, Refines the background LP solves that later replaced
	// them in the cache, RefineFailures the refinements that failed (the
	// degraded plan then stays, still flagged Degraded).
	Degraded       int64 `json:"degraded,omitempty"`
	Refines        int64 `json:"refines,omitempty"`
	RefineFailures int64 `json:"refineFailures,omitempty"`
	// Solves counts the actual solver runs; DeltaPlans the requests served
	// through the base+deltas path, split into warm session reuses and
	// session rebuilds.
	Solves          int64 `json:"solves"`
	DeltaPlans      int64 `json:"deltaPlans,omitempty"`
	WarmResolves    int64 `json:"warmResolves,omitempty"`
	SessionRebuilds int64 `json:"sessionRebuilds,omitempty"`
	// Simplex pivot totals across all solves, split warm/cold.
	LPPivots     int64 `json:"lpPivots"`
	LPWarmPivots int64 `json:"lpWarmPivots"`
	LPColdPivots int64 `json:"lpColdPivots"`
	// ChurnRuns counts churn-replay requests.
	ChurnRuns int64 `json:"churnRuns,omitempty"`
	// Cache occupancy and configuration.
	CacheEntries  int `json:"cacheEntries"`
	CacheCapacity int `json:"cacheCapacity"`
	Workers       int `json:"workers"`
	QueueDepth    int `json:"queueDepth,omitempty"`
}

// fpKey routes a lookup: the permutation-invariant platform fingerprint
// plus every request parameter that changes the answer. Renumbered twins
// share an fpKey.
type fpKey struct {
	fp        platform.Fingerprint
	source    int
	heuristic string
	coldLP    bool
	revisedLP bool
	maxIter   int
	trees     int
}

// cacheKey identifies one cacheable plan exactly: the routing fpKey plus
// the hash of the platform's exact canonical encoding, which renumbered
// twins do NOT share — so a cached plan (whose edge rates and trees are
// expressed in link/node IDs) is never served across a renumbering.
type cacheKey struct {
	fpKey
	exact [32]byte
}

// exactHash hashes the platform's exact canonical encoding.
func exactHash(p *platform.Platform) [32]byte {
	return sha256.Sum256(p.CanonicalEncoding())
}

// entry is one cached plan plus (while it lasts) a warm solver session
// pinned to the entry's platform state.
type entry struct {
	key cacheKey

	ready chan struct{} // closed once plan/err are set
	// refined is non-nil iff the entry was created by a degraded request:
	// it is closed once the background refinement finished (successfully or
	// not). Requests that did not opt into degraded mode wait on it before
	// consuming the plan. Immutable after insert.
	refined chan struct{}
	err     error

	mu sync.Mutex // guards every field below
	// plan/json start as the degraded heuristic plan for degraded entries
	// and are swapped for the refined LP plan when it lands; degraded
	// mirrors Plan.Degraded. For normal entries they are written once
	// before ready closes and never change.
	plan     *Plan
	json     []byte
	degraded bool
	// plat is an immutable snapshot of the planned platform; sessions are
	// re-derived from it when the live one has moved on.
	plat *platform.Platform
	// session/sessionP, when non-nil, hold a warm steady session whose
	// platform is exactly at the entry's state. A delta request takes them
	// (they follow the mutation to the new entry).
	session  *steady.Session
	sessionP *platform.Platform
}

// Engine is the concurrent fingerprint-keyed planning engine. It is safe for
// concurrent use.
type Engine struct {
	cfg Config
	sem chan struct{} // bounded worker pool for solver work
	// queue is the bounded admission queue for cold-miss solves (nil when
	// QueueDepth is 0: unbounded waiting, never shed). A token in the queue
	// is a request allowed to block on sem; when both are full, acquire
	// sheds.
	queue chan struct{}
	bg    sync.WaitGroup // in-flight background refinements

	// Solve-stage histograms. solveNs records the wall-clock latency of
	// completed solves (Retry-After suggestions for shed requests derive from
	// it), queueWaitNs the admission wait of admitted solves, refineNs the
	// end-to-end latency of background refinements — all three are wall-clock
	// data, exported via /metrics but never via canonical replay reports.
	// solvePivots/solveRounds/solveCuts record the per-solve LP work and are
	// deterministic for a deterministic request set.
	latMu       sync.Mutex
	solveNs     stats.Histogram // guarded by latMu
	queueWaitNs stats.Histogram // guarded by latMu
	refineNs    stats.Histogram // guarded by latMu
	solvePivots stats.Histogram // guarded by latMu
	solveRounds stats.Histogram // guarded by latMu
	solveCuts   stats.Histogram // guarded by latMu

	mu    sync.Mutex
	lru   *list.List                 // guarded by mu; of *entry, most recently used in front
	byKey map[cacheKey]*list.Element // guarded by mu
	// byFP indexes the cached entries by routing key; the slice holds more
	// than one element only when renumbered twins are cached side by side.
	byFP  map[fpKey][]*list.Element // guarded by mu
	stats Stats                     // guarded by mu
}

// New returns an engine with the given configuration.
func New(cfg Config) *Engine {
	e := &Engine{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.workers()),
		lru:   list.New(),
		byKey: make(map[cacheKey]*list.Element),
		byFP:  make(map[fpKey][]*list.Element),
	}
	if cfg.QueueDepth > 0 {
		e.queue = make(chan struct{}, cfg.QueueDepth)
	}
	return e
}

// Drain blocks until every background refinement currently in flight has
// completed and updated its cache entry. Deterministic replays call it
// before snapshotting counters; servers call it on shutdown.
func (e *Engine) Drain() { e.bg.Wait() }

// insertLocked adds a claimed entry to the cache and evicts over capacity.
// The engine mutex must be held.
func (e *Engine) insertLocked(ent *entry) *list.Element {
	el := e.lru.PushFront(ent)
	e.byKey[ent.key] = el
	e.byFP[ent.key.fpKey] = append(e.byFP[ent.key.fpKey], el)
	e.trimLocked()
	return el
}

// entryDone reports whether the entry's solve has finished (ready closed).
func entryDone(ent *entry) bool {
	select {
	case <-ent.ready:
		return true
	default:
		return false
	}
}

// trimLocked evicts least-recently-used entries while the cache is over
// capacity — but never an in-flight one: evicting an entry whose solve has
// not finished would detach it from the cache, so a concurrent identical
// request would miss and duplicate the solve, silently breaking the "one
// solve per distinct platform" singleflight invariant. In-flight entries are
// skipped (counted in EvictionsDeferred) and the cache stays over capacity
// until a later insert or solve completion trims it. The engine mutex must
// be held.
func (e *Engine) trimLocked() {
	for e.lru.Len() > e.cfg.cacheSize() {
		var victim *list.Element
		for el := e.lru.Back(); el != nil; el = el.Prev() {
			if entryDone(el.Value.(*entry)) {
				victim = el
				break
			}
			e.stats.EvictionsDeferred++
		}
		if victim == nil {
			return // everything is in flight; stay over capacity for now
		}
		e.removeLocked(victim)
		e.stats.Evictions++
	}
}

// removeLocked drops an element from the LRU list and both indexes. The
// engine mutex must be held.
func (e *Engine) removeLocked(el *list.Element) {
	ent := el.Value.(*entry)
	e.lru.Remove(el)
	delete(e.byKey, ent.key)
	twins := e.byFP[ent.key.fpKey]
	for i, t := range twins {
		if t == el {
			twins = append(twins[:i], twins[i+1:]...)
			break
		}
	}
	if len(twins) == 0 {
		delete(e.byFP, ent.key.fpKey)
	} else {
		e.byFP[ent.key.fpKey] = twins
	}
}

// hook delivers a lookup event to the configured instrumentation. The
// engine mutex is held by the caller.
func (e *Engine) hook(ev LookupEvent) {
	if e.cfg.Hooks != nil && e.cfg.Hooks.OnLookup != nil {
		e.cfg.Hooks.OnLookup(ev)
	}
}

// admit delivers an admission event to the configured instrumentation. It is
// called outside the engine lock.
func (e *Engine) admit(kind AdmitKind) {
	if e.cfg.Hooks != nil && e.cfg.Hooks.OnAdmit != nil {
		e.cfg.Hooks.OnAdmit(AdmitEvent{Kind: kind})
	}
}

// acquire claims a solve lane for a request-path solve, applying admission
// control: a free lane is taken directly; otherwise the request enters the
// admission queue (bounded by QueueDepth when set) and blocks until a lane
// frees or its context is done; when lanes and bounded queue are both full
// it is shed with an *OverloadedError. The returned release function frees
// the lane. Cache hits and collapsed waits never call acquire.
func (e *Engine) acquire(ctx context.Context) (release func(), err error) {
	select {
	case e.sem <- struct{}{}:
		e.admit(AdmitLane)
		return e.releaseLane, nil
	default:
	}
	if e.queue != nil {
		select {
		case e.queue <- struct{}{}:
			// Hold the queue token while blocked on a lane; freed on return.
			defer func() { <-e.queue }()
		default:
			e.mu.Lock()
			e.stats.Shed++
			e.mu.Unlock()
			e.admit(AdmitShed)
			return nil, &OverloadedError{RetryAfter: e.retryAfter()}
		}
	}
	e.mu.Lock()
	e.stats.Queued++
	e.mu.Unlock()
	e.admit(AdmitQueued)
	if ctx == nil {
		e.sem <- struct{}{}
		return e.releaseLane, nil
	}
	select {
	case e.sem <- struct{}{}:
		return e.releaseLane, nil
	case <-ctx.Done():
		return nil, canceled(ctx)
	}
}

func (e *Engine) releaseLane() { <-e.sem }

// retryAfter estimates how long a shed client should back off: the observed
// median solve latency scaled by the backlog a retry would sit behind,
// rounded up to whole seconds and clamped to [1s, 60s]. With no completed
// solves yet it defaults to 1s.
func (e *Engine) retryAfter() time.Duration {
	e.latMu.Lock()
	var p50 int64
	if e.solveNs.Count() > 0 {
		p50 = e.solveNs.Quantile(0.5)
	}
	e.latMu.Unlock()
	if p50 <= 0 {
		return time.Second
	}
	backlog := int64(len(e.queue)) + 1 // racy read; an estimate is fine
	est := time.Duration(p50 * backlog / int64(cap(e.sem)))
	secs := int64((est + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return time.Duration(secs) * time.Second
}

// StageStats is a snapshot of the engine's solve-stage histograms. The
// latency members (solve, queue wait, refine) are wall-clock data; the LP
// work members (pivots, rounds, cuts per solve) are deterministic for a
// deterministic request set and safe for canonical replay reports.
type StageStats struct {
	SolveLatencyNs  stats.HistogramSummary `json:"solveLatencyNs"`
	QueueWaitNs     stats.HistogramSummary `json:"queueWaitNs"`
	RefineLatencyNs stats.HistogramSummary `json:"refineLatencyNs"`
	SolvePivots     stats.HistogramSummary `json:"solvePivots"`
	SolveRounds     stats.HistogramSummary `json:"solveRounds"`
	SolveCuts       stats.HistogramSummary `json:"solveCuts"`
}

// StageStats returns a snapshot of the solve-stage histograms.
func (e *Engine) StageStats() StageStats {
	e.latMu.Lock()
	defer e.latMu.Unlock()
	return StageStats{
		SolveLatencyNs:  e.solveNs.Summary(),
		QueueWaitNs:     e.queueWaitNs.Summary(),
		RefineLatencyNs: e.refineNs.Summary(),
		SolvePivots:     e.solvePivots.Summary(),
		SolveRounds:     e.solveRounds.Summary(),
		SolveCuts:       e.solveCuts.Summary(),
	}
}

// Tracer returns the engine's configured tracer (nil when tracing is off);
// the HTTP layer serves GET /v1/trace from it.
func (e *Engine) Tracer() *obs.Tracer { return e.cfg.Tracer }

// TraceOutcome classifies a plan result/error pair into the trace outcome
// taxonomy (obs.Outcome*): degraded fresh answers, collapsed singleflight
// hits, plain hits, misses, shed, canceled and error. The engine applies it
// when it owns the request's trace; the HTTP layer reuses it when the trace
// spans the response write.
func TraceOutcome(res *PlanResult, err error) string {
	switch {
	case err == nil && res != nil:
		switch {
		case res.Degraded && !res.Cached:
			return obs.OutcomeDegraded
		case res.Collapsed:
			return obs.OutcomeCollapsed
		case res.Cached:
			return obs.OutcomeHit
		default:
			return obs.OutcomeMiss
		}
	case errors.Is(err, ErrOverloaded):
		return obs.OutcomeShed
	case errors.Is(err, ErrCanceled):
		return obs.OutcomeCanceled
	default:
		return obs.OutcomeError
	}
}

// traceIdentity derives the 32-byte content identity a trace carries: the
// hash of the platform's exact canonical encoding plus every request knob
// that changes the answer — the same information that keys the cache, so
// renumbered duplicates of one request class share an identity.
func traceIdentity(key cacheKey) [32]byte {
	h := sha256.New()
	h.Write(key.exact[:])
	fmt.Fprintf(h, "|%d|%s|%t|%t|%d|%d", key.source, key.heuristic, key.coldLP, key.revisedLP, key.maxIter, key.trees)
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.CacheEntries = e.lru.Len()
	s.CacheCapacity = e.cfg.cacheSize()
	s.Workers = cap(e.sem)
	s.QueueDepth = e.cfg.QueueDepth
	return s
}

// steadyOptions layers the per-request LP knobs over the engine's base
// solver configuration.
func (e *Engine) steadyOptions(req PlanRequest) *steady.Options {
	var opts steady.Options
	if e.cfg.Steady != nil {
		opts = *e.cfg.Steady
	}
	if req.ColdLP {
		opts.ColdStart = true
	}
	if req.RevisedLP {
		opts.Revised = true
	}
	if req.LPMaxIterations > 0 {
		// Override only the pivot budget; any other LP tuning configured on
		// the engine (tolerances, ...) stays in force.
		var lpOpts lp.Options
		if opts.LP != nil {
			lpOpts = *opts.LP
		}
		lpOpts.MaxIterations = req.LPMaxIterations
		opts.LP = &lpOpts
	}
	return &opts
}

func (req PlanRequest) fpKey(fp platform.Fingerprint) fpKey {
	return fpKey{fp: fp, source: req.Source, heuristic: req.Heuristic, coldLP: req.ColdLP, revisedLP: req.RevisedLP, maxIter: req.LPMaxIterations, trees: req.Trees}
}

// Plan answers one plan request: from the cache when the platform has been
// planned before, otherwise by solving (bounded by the worker pool) and
// caching the result. Delta requests (Base + Deltas) reuse the base entry's
// warm session when one is available.
func (e *Engine) Plan(req PlanRequest) (*PlanResult, error) {
	return e.PlanContext(context.Background(), req)
}

// PlanContext is Plan with cooperative cancellation and deadlines: the
// context (plus the request's DeadlineMs or the engine's DefaultDeadline)
// bounds admission waits, collapsed singleflight waits and the solve's own
// simplex pivots. A canceled request returns an error wrapping ErrCanceled
// and never leaves a cache entry or a poisoned warm session behind. A nil
// ctx is treated as context.Background().
func (e *Engine) PlanContext(ctx context.Context, req PlanRequest) (res *PlanResult, err error) {
	ctx, cancel := e.requestContext(ctx, req.DeadlineMs)
	if cancel != nil {
		defer cancel()
	}
	// An externally owned trace (the HTTP layer's, which outlives this call
	// to record the response write) is appended to; otherwise the engine owns
	// the request's trace end to end.
	tc := obs.TraceFrom(ctx)
	if tc == nil && e.cfg.Tracer != nil {
		tc = e.cfg.Tracer.Begin(obs.RequestID(ctx))
		defer func() {
			e.cfg.Tracer.Finish(tc, TraceOutcome(res, err))
			if res != nil {
				res.TraceID = tc.TraceID()
			}
		}()
	} else if tc != nil {
		defer func() {
			if res != nil {
				res.TraceID = tc.TraceID()
			}
		}()
	}
	if req.Base != "" {
		if req.Platform != nil {
			return nil, ErrBothPlatform
		}
		return e.planFromBase(ctx, req, tc)
	}
	if req.Platform == nil {
		return nil, ErrNoPlatform
	}
	return e.planPlatform(ctx, req, req.Platform, nil, tc)
}

// requestContext layers the request deadline (DeadlineMs, else the engine's
// DefaultDeadline) onto the caller's context. The returned cancel is nil
// when no deadline applies.
func (e *Engine) requestContext(ctx context.Context, deadlineMs int) (context.Context, context.CancelFunc) {
	if ctx == nil {
		ctx = context.Background()
	}
	d := time.Duration(deadlineMs) * time.Millisecond
	if d <= 0 {
		d = e.cfg.DefaultDeadline
	}
	if d <= 0 {
		return ctx, nil
	}
	return context.WithTimeout(ctx, d)
}

// planPlatform plans for an explicit platform. taken, when non-nil, is a
// warm session already positioned at the platform's exact state (the delta
// path hands one in); it is consumed: either by the solve, or by donating
// the session to the cache entry the request lands on.
func (e *Engine) planPlatform(ctx context.Context, req PlanRequest, p *platform.Platform, taken *takenSession, tc *obs.Trace) (*PlanResult, error) {
	if req.Heuristic != "" {
		if _, err := heuristics.ByName(req.Heuristic); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	if req.Trees < 0 {
		return nil, fmt.Errorf("%w: negative tree cap %d", ErrBadRequest, req.Trees)
	}
	if p.NumAliveNodes() < 2 {
		return nil, ErrTooSmall
	}
	fp := p.Fingerprint()
	key := cacheKey{fpKey: req.fpKey(fp), exact: exactHash(p)}
	if tc != nil {
		tc.SetIdentity(traceIdentity(key))
	}

	e.mu.Lock()
	e.stats.Requests++
	if el, ok := e.byKey[key]; ok {
		ent := el.Value.(*entry)
		e.lru.MoveToFront(el)
		// Classify the hit while still under the lock: an entry whose ready
		// channel is not yet closed is an in-flight solve this request
		// collapses onto. The classification point is the lookup, so it is
		// deterministic for schedules that order duplicates after their
		// first-touch completed (they always see ready closed). Singleflight
		// is counted here too — at the same moment the hook fires — so the
		// stats-side and hook-side views agree even when the solve this
		// request collapsed onto later fails.
		collapsed := false
		select {
		case <-ent.ready:
		default:
			collapsed = true
		}
		if collapsed {
			e.stats.Singleflight++
		}
		e.hook(LookupEvent{Collapsed: collapsed})
		e.mu.Unlock()
		tc.Add(obs.Event{Kind: obs.SpanLookup, Collapsed: collapsed})
		select {
		case <-ent.ready:
		case <-ctx.Done():
			tc.Add(obs.Event{Kind: obs.SpanCancel, At: "collapsed-wait"})
			return nil, e.abandonHit(ctx)
		}
		if ent.refined != nil && !req.Degraded {
			// The entry is (or was) a degraded one. Opt-in degraded requests
			// take whatever plan is current; everyone else waits for the
			// background refinement to land.
			select {
			case <-ent.refined:
			case <-ctx.Done():
				tc.Add(obs.Event{Kind: obs.SpanCancel, At: "refined-wait"})
				return nil, e.abandonHit(ctx)
			}
		}
		e.mu.Lock()
		if ent.err != nil {
			// Collapsed waiters on a failed solve got no plan: they count as
			// Misses, keeping Hits+Misses == Requests on every path.
			e.stats.Misses++
			e.mu.Unlock()
			return nil, ent.err
		}
		e.stats.Hits++
		e.mu.Unlock()
		// A delta request that raced a concurrent identical insert donates
		// its session to the hit entry (the session platform is exactly at
		// the entry's state — the exact keys matched) instead of dropping
		// the lineage's only warm state.
		if taken != nil && !e.cfg.DisableSessions {
			ent.mu.Lock()
			if ent.session == nil {
				ent.session, ent.sessionP = taken.sess, taken.p
			}
			ent.mu.Unlock()
		}
		ent.mu.Lock()
		plan, planJSON, degraded := ent.plan, ent.json, ent.degraded
		ent.mu.Unlock()
		return &PlanResult{Plan: plan, JSON: append([]byte(nil), planJSON...), Cached: true, Collapsed: collapsed, Degraded: degraded}, nil
	}
	// Miss: claim the key with an unsolved entry so concurrent identical
	// requests wait on this solve instead of duplicating it. A renumbered
	// twin of a cached platform lands here too (same fpKey, different exact
	// key) and is cached independently — its IDs live in another numbering.
	twin := len(e.byFP[key.fpKey]) > 0
	if twin {
		e.stats.TwinMisses++
	}
	ent := &entry{key: key, ready: make(chan struct{})}
	if req.Degraded {
		ent.refined = make(chan struct{})
	}
	el := e.insertLocked(ent)
	e.stats.Misses++
	e.hook(LookupEvent{Miss: true, Twin: twin})
	e.mu.Unlock()
	tc.Add(obs.Event{Kind: obs.SpanLookup, Miss: true, Twin: twin})

	if req.Degraded {
		return e.planDegraded(req, p, ent, el, taken, tc)
	}

	plan, planJSON, sess, sp, err := e.solve(ctx, req, p, taken, tc)
	e.mu.Lock()
	if err != nil {
		if errors.Is(err, ErrCanceled) {
			e.stats.Canceled++
		}
		ent.err = err
		// Failed (and canceled) solves are not served from the cache.
		if cur, ok := e.byKey[key]; ok && cur == el {
			e.removeLocked(el)
		}
		e.mu.Unlock()
		close(ent.ready)
		return nil, err
	}
	e.mu.Unlock()
	ent.mu.Lock()
	ent.plan = plan
	ent.json = planJSON
	if e.cfg.DisableSessions {
		// sp is exclusively owned and the session is being discarded, so it
		// can serve as the snapshot directly.
		ent.plat = sp
	} else {
		ent.plat = sp.Clone()
		ent.session = sess
		ent.sessionP = sp
	}
	ent.mu.Unlock()
	close(ent.ready)
	// A completed solve may unblock evictions deferred while it was in
	// flight.
	e.mu.Lock()
	e.trimLocked()
	e.mu.Unlock()
	return &PlanResult{Plan: plan, JSON: append([]byte(nil), planJSON...), WarmResolved: taken != nil && taken.warm}, nil
}

// abandonHit accounts for a hit-path wait abandoned by its context: the
// request got no plan, so it counts as a Miss (and Canceled).
func (e *Engine) abandonHit(ctx context.Context) error {
	e.mu.Lock()
	e.stats.Misses++
	e.stats.Canceled++
	e.mu.Unlock()
	return canceled(ctx)
}

// planDegraded answers a freshly claimed cold miss with the engine's cheap
// heuristic tree and schedules the LP-optimal solve as a background
// refinement of the same cache entry. The degraded answer never touches
// admission control — that is the point: overloaded tail latency collapses
// from solve-cost to heuristic-cost. The refinement acquires a lane the
// plain blocking way (no shedding, no deadline — the client already has its
// answer).
func (e *Engine) planDegraded(req PlanRequest, p *platform.Platform, ent *entry, el *list.Element, taken *takenSession, tc *obs.Trace) (*PlanResult, error) {
	plan, planJSON, err := e.degradedPlan(req, p)
	e.mu.Lock()
	if err != nil {
		ent.err = err
		if cur, ok := e.byKey[ent.key]; ok && cur == el {
			e.removeLocked(el)
		}
		e.mu.Unlock()
		close(ent.refined)
		close(ent.ready)
		return nil, err
	}
	e.stats.Degraded++
	e.mu.Unlock()
	tc.Add(obs.Event{Kind: obs.SpanDegraded, Heuristic: plan.Heuristic})
	ent.mu.Lock()
	ent.plan = plan
	ent.json = planJSON
	ent.degraded = true
	ent.plat = p.Clone()
	ent.mu.Unlock()
	close(ent.ready)
	// The refinement solves its own snapshot: the caller keeps ownership of
	// p after we return. A delta request's taken session is engine-owned
	// and rides along instead.
	refineP := p
	if taken == nil {
		refineP = p.Clone()
	}
	e.bg.Add(1)
	go e.refine(ent, req, refineP, taken)
	return &PlanResult{Plan: plan, JSON: append([]byte(nil), planJSON...), Degraded: true}, nil
}

// degradedPlan builds the immediate heuristic-only answer of degraded mode.
// It always uses the engine's configured degraded heuristic — the request's
// own Heuristic (honored by the refinement) may be LP-based, which would pay
// the very solve degraded mode exists to avoid.
func (e *Engine) degradedPlan(req PlanRequest, p *platform.Platform) (*Plan, []byte, error) {
	name := e.cfg.degradedHeuristic()
	tree, tp, err := buildHeuristic(p, req.Source, name, nil, model.OnePortBidirectional)
	if err != nil {
		return nil, nil, fmt.Errorf("service: degraded plan: %w", err)
	}
	exact := exactHash(p)
	plan := &Plan{
		Fingerprint:         p.Fingerprint().String(),
		ExactKey:            hex.EncodeToString(exact[:]),
		Source:              req.Source,
		Nodes:               p.NumNodes(),
		Links:               p.NumLinks(),
		Throughput:          tp, // heuristic lower bound until refined
		Heuristic:           name,
		Tree:                tree,
		HeuristicThroughput: tp,
		Degraded:            true,
	}
	planJSON, err := json.Marshal(plan)
	if err != nil {
		return nil, nil, fmt.Errorf("service: marshal plan: %w", err)
	}
	return plan, planJSON, nil
}

// refine is the background half of degraded mode: solve the LP-optimal plan
// and swap it into the still-cached entry. On failure the degraded plan
// stays (still flagged Degraded) — the client already answered, so there is
// nobody to surface the error to beyond the RefineFailures counter.
func (e *Engine) refine(ent *entry, req PlanRequest, p *platform.Platform, taken *takenSession) {
	defer e.bg.Done()
	// The refinement records its own trace (outcome "refine", sharing the
	// request's identity): the client's trace finished with the degraded
	// answer before this solve even started.
	rtc := e.cfg.Tracer.Begin("")
	rtc.SetIdentity(traceIdentity(ent.key))
	start := time.Now()
	plan, planJSON, sess, sp, err := e.solveBackground(req, p, taken)
	elapsed := time.Since(start)
	e.latMu.Lock()
	e.refineNs.Record(elapsed.Nanoseconds())
	e.latMu.Unlock()
	if err != nil {
		e.mu.Lock()
		e.stats.RefineFailures++
		e.mu.Unlock()
		rtc.Add(obs.Event{Kind: obs.SpanRefine, Err: err.Error()})
		e.cfg.Tracer.Finish(rtc, obs.OutcomeError)
		close(ent.refined)
		return
	}
	e.mu.Lock()
	e.stats.Refines++
	e.mu.Unlock()
	rev := obs.Event{
		Kind:       obs.SpanRefine,
		Warm:       taken != nil && taken.warm,
		Rounds:     plan.LPRounds,
		Cuts:       plan.LPCuts,
		Pivots:     plan.LPPivots,
		WarmPivots: plan.LPWarmPivots,
		ColdPivots: plan.LPColdPivots,
	}
	if rtc.Wall() {
		rev.DurNs = elapsed.Nanoseconds()
	}
	rtc.Add(rev)
	e.cfg.Tracer.Finish(rtc, obs.OutcomeRefine)
	ent.mu.Lock()
	ent.plan = plan
	ent.json = planJSON
	ent.degraded = false
	ent.plat = sp.Clone()
	if !e.cfg.DisableSessions {
		ent.session = sess
		ent.sessionP = sp
	}
	ent.mu.Unlock()
	close(ent.refined)
}

// takenSession is a warm session handed from a base entry to the delta path.
type takenSession struct {
	sess *steady.Session
	p    *platform.Platform // the session's live platform, already mutated
	warm bool
}

// solve runs the steady-state solver (and the optional heuristic) for a
// request-path cold miss: admission-controlled lane acquisition (which may
// shed), the BeforeSolve hook, then the solver itself under the request
// context.
func (e *Engine) solve(ctx context.Context, req PlanRequest, p *platform.Platform, taken *takenSession, tc *obs.Trace) (*Plan, []byte, *steady.Session, *platform.Platform, error) {
	waitStart := time.Now()
	release, err := e.acquire(ctx)
	wait := time.Since(waitStart)
	if err != nil {
		// The admit event records only admitted-vs-shed: the lane-vs-queued
		// split (AdmitKind) is scheduling-dependent, so — like Stats.Queued —
		// it stays out of canonical trace output.
		switch {
		case errors.Is(err, ErrOverloaded):
			tc.Add(obs.Event{Kind: obs.SpanAdmit, Admitted: "shed"})
		case errors.Is(err, ErrCanceled):
			tc.Add(obs.Event{Kind: obs.SpanCancel, At: "queue"})
		}
		return nil, nil, nil, nil, err
	}
	defer release()
	e.latMu.Lock()
	e.queueWaitNs.Record(wait.Nanoseconds())
	e.latMu.Unlock()
	tc.Add(obs.Event{Kind: obs.SpanAdmit, Admitted: "admitted"})
	if tc.Wall() {
		tc.Add(obs.Event{Kind: obs.SpanQueueWait, DurNs: wait.Nanoseconds()})
	}
	if e.cfg.Hooks != nil && e.cfg.Hooks.BeforeSolve != nil {
		e.cfg.Hooks.BeforeSolve()
	}
	return e.runSolve(ctx, req, p, taken, tc)
}

// solveBackground runs a degraded-mode refinement solve: plain blocking lane
// acquisition (no queue bound, no shedding, no hooks) and no deadline — the
// client already received its degraded answer.
func (e *Engine) solveBackground(req PlanRequest, p *platform.Platform, taken *takenSession) (*Plan, []byte, *steady.Session, *platform.Platform, error) {
	e.sem <- struct{}{}
	defer func() { <-e.sem }()
	return e.runSolve(context.Background(), req, p, taken, nil)
}

// runSolve runs the steady-state solver (and the optional heuristic) on its
// own clone of the platform; the caller holds a solve lane. It returns the
// plan, its canonical bytes, and a session positioned at the solved state
// for future delta requests.
func (e *Engine) runSolve(ctx context.Context, req PlanRequest, p *platform.Platform, taken *takenSession, tc *obs.Trace) (*Plan, []byte, *steady.Session, *platform.Platform, error) {
	var sess *steady.Session
	var sp *platform.Platform
	if taken != nil {
		sess, sp = taken.sess, taken.p
	} else {
		sp = p.Clone()
		sess = steady.NewSession(sp, req.Source, e.steadyOptions(req))
	}
	before := sess.Stats()
	start := time.Now()
	sol, err := sess.ResolveContext(ctx)
	elapsed := time.Since(start)
	after := sess.Stats()
	if err == nil {
		e.latMu.Lock()
		e.solveNs.Record(elapsed.Nanoseconds())
		e.solvePivots.Record(int64(sol.LPIterations))
		e.solveRounds.Record(int64(sol.Rounds))
		e.solveCuts.Record(int64(sol.Cuts))
		e.latMu.Unlock()
	}
	e.mu.Lock()
	e.stats.Solves++
	e.stats.LPPivots += int64(sol0(sol))
	e.stats.LPWarmPivots += int64(after.WarmPivots - before.WarmPivots)
	e.stats.LPColdPivots += int64(after.ColdPivots - before.ColdPivots)
	e.stats.WarmResolves += int64(after.WarmResolves - before.WarmResolves)
	e.stats.SessionRebuilds += int64(after.Rebuilds - before.Rebuilds)
	e.mu.Unlock()
	if err != nil {
		if errors.Is(err, ErrCanceled) {
			tc.Add(obs.Event{Kind: obs.SpanCancel, At: "solve"})
		} else {
			tc.Add(obs.Event{Kind: obs.SpanSolve, Err: err.Error()})
		}
		return nil, nil, nil, nil, err
	}
	sev := obs.Event{
		Kind:       obs.SpanSolve,
		Warm:       taken != nil && taken.warm,
		Rounds:     sol.Rounds,
		Cuts:       sol.Cuts,
		Pivots:     sol.LPIterations,
		WarmPivots: sol.WarmPivots,
		ColdPivots: sol.ColdPivots,
	}
	if tc.Wall() {
		sev.DurNs = elapsed.Nanoseconds()
	}
	tc.Add(sev)

	exact := exactHash(sp)
	plan := &Plan{
		Fingerprint:  sp.Fingerprint().String(),
		ExactKey:     hex.EncodeToString(exact[:]),
		Source:       req.Source,
		Nodes:        sp.NumNodes(),
		Links:        sp.NumLinks(),
		Throughput:   sol.Throughput,
		UpperBound:   sol.UpperBound,
		EdgeRate:     sol.EdgeRate,
		LPRounds:     sol.Rounds,
		LPCuts:       sol.Cuts,
		LPPivots:     sol.LPIterations,
		LPWarmPivots: sol.WarmPivots,
		LPColdPivots: sol.ColdPivots,
	}
	if req.Heuristic != "" {
		tree, tp, err := buildHeuristic(sp, req.Source, req.Heuristic, sol.EdgeRate, model.OnePortBidirectional)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		plan.Heuristic = req.Heuristic
		plan.Tree = tree
		plan.HeuristicThroughput = tp
		if sol.Throughput > 0 {
			plan.Ratio = tp / sol.Throughput
		}
	}
	if req.Trees > 0 {
		pk, err := pack.Decompose(sp, req.Source, sol, &pack.Options{MaxTrees: req.Trees})
		if err != nil {
			return nil, nil, nil, nil, fmt.Errorf("service: tree packing: %w", err)
		}
		plan.Packing = pk
		plan.PackedThroughput = pk.Throughput
		plan.PackedTrees = pk.NumTrees()
		if sol.Throughput > 0 {
			plan.PackedRatio = pk.Throughput / sol.Throughput
		}
	}
	planJSON, err := json.Marshal(plan)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("service: marshal plan: %w", err)
	}
	return plan, planJSON, sess, sp, nil
}

// sol0 guards against a nil solution on solver errors.
func sol0(sol *steady.Solution) int {
	if sol == nil {
		return 0
	}
	return sol.LPIterations
}

// planFromBase serves a near-duplicate request: the cached platform named by
// the base fingerprint (and, when twins share it, the BaseExact key),
// mutated by the request's deltas.
func (e *Engine) planFromBase(ctx context.Context, req PlanRequest, tc *obs.Trace) (*PlanResult, error) {
	fp, err := platform.ParseFingerprint(req.Base)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	var wantExact []byte
	if req.BaseExact != "" {
		wantExact, err = hex.DecodeString(req.BaseExact)
		if err != nil || len(wantExact) != 32 {
			return nil, fmt.Errorf("%w: invalid baseExact %q", ErrBadRequest, req.BaseExact)
		}
	}

	// Resolve the base entry. Deltas address links and nodes by ID, so when
	// several renumbered twins share the fingerprint the request must pin
	// one with BaseExact — guessing would mutate the wrong platform.
	e.mu.Lock()
	var el *list.Element
	cands := e.byFP[req.fpKey(fp)]
	switch {
	case wantExact != nil:
		for _, c := range cands {
			if ent := c.Value.(*entry); bytes.Equal(ent.key.exact[:], wantExact) {
				el = c
				break
			}
		}
	case len(cands) == 1:
		el = cands[0]
	case len(cands) > 1:
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %s has %d cached twins", ErrAmbiguousBase, req.Base, len(cands))
	}
	if el == nil {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownBase, req.Base)
	}
	base := el.Value.(*entry)
	e.lru.MoveToFront(el)
	e.stats.DeltaPlans++
	e.mu.Unlock()
	select {
	case <-base.ready:
	case <-ctx.Done():
		// Not a routed lookup (Requests was not incremented for the base
		// entry), so no Miss/Hit accounting here — just the cancellation.
		e.mu.Lock()
		e.stats.Canceled++
		e.mu.Unlock()
		tc.Add(obs.Event{Kind: obs.SpanCancel, At: "base-wait"})
		return nil, canceled(ctx)
	}
	if base.err != nil {
		return nil, base.err
	}

	// Take the base entry's warm session when it is still home; otherwise
	// re-derive a fresh one from the immutable snapshot. If the mutated
	// platform turns out to be cached already, planPlatform's hit path
	// donates the session to that entry instead of losing it.
	base.mu.Lock()
	taken := &takenSession{}
	if base.session != nil {
		taken.sess, taken.p = base.session, base.sessionP
		taken.warm = true
		base.session, base.sessionP = nil, nil
	} else {
		taken.p = base.plat.Clone()
		taken.sess = steady.NewSession(taken.p, req.Source, e.steadyOptions(req))
	}
	base.mu.Unlock()
	for _, d := range req.Deltas {
		if _, err := taken.p.ApplyDelta(d); err != nil {
			// The session platform may be mid-sequence; drop it rather than
			// returning it home in an undefined state.
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	tc.Add(obs.Event{Kind: obs.SpanBase, Warm: taken.warm})
	mutReq := req
	mutReq.Base, mutReq.BaseExact, mutReq.Deltas = "", "", nil
	return e.planPlatform(ctx, mutReq, taken.p, taken, tc)
}

// PlanEach plans a batch of independent requests across the worker pool with
// parallel.MapStream semantics: results come back in index order and are
// deterministic for any worker count. Per-request failures are reported in
// the outcome, not as a batch error.
func (e *Engine) PlanEach(reqs []PlanRequest, workers int) []PlanOutcome {
	return e.PlanEachContext(context.Background(), reqs, workers)
}

// PlanEachContext is PlanEach under a shared context: each request is bounded
// by the context (plus its own DeadlineMs / the engine default), and
// per-request cancellations surface in the outcome like any other error.
func (e *Engine) PlanEachContext(ctx context.Context, reqs []PlanRequest, workers int) []PlanOutcome {
	return parallel.Map(len(reqs), workers, func(i int) PlanOutcome {
		res, err := e.PlanContext(ctx, reqs[i])
		out := PlanOutcome{Result: res}
		if err != nil {
			out.Error = err.Error()
		}
		return out
	})
}

// PlanOutcome is one result of PlanEach.
type PlanOutcome struct {
	Result *PlanResult
	Error  string
}

// EvaluateRequest asks for the relative performance of tree heuristics on a
// platform against its steady-state optimum.
type EvaluateRequest struct {
	Platform *platform.Platform `json:"platform"`
	Source   int                `json:"source"`
	// Heuristics to evaluate (empty = every registered heuristic).
	Heuristics      []string `json:"heuristics,omitempty"`
	ColdLP          bool     `json:"coldLP,omitempty"`
	RevisedLP       bool     `json:"revisedLP,omitempty"`
	LPMaxIterations int      `json:"lpMaxIterations,omitempty"`
}

// HeuristicResult is the outcome of one heuristic in an evaluation.
type HeuristicResult struct {
	Heuristic  string  `json:"heuristic"`
	Throughput float64 `json:"throughput"`
	Ratio      float64 `json:"ratio"`
	Error      string  `json:"error,omitempty"`
}

// Evaluation is the engine's answer to an evaluate request.
type Evaluation struct {
	Fingerprint string            `json:"fingerprint"`
	Optimal     float64           `json:"optimal"`
	Cached      bool              `json:"cached"`
	Results     []HeuristicResult `json:"results"`
}

// Evaluate plans the platform (through the cache) and evaluates every
// requested heuristic against the optimum.
func (e *Engine) Evaluate(req EvaluateRequest) (*Evaluation, error) {
	return e.EvaluateContext(context.Background(), req)
}

// EvaluateContext is Evaluate with cooperative cancellation: the context
// (plus the engine's DefaultDeadline) bounds the underlying plan solve.
func (e *Engine) EvaluateContext(ctx context.Context, req EvaluateRequest) (*Evaluation, error) {
	if req.Platform == nil {
		return nil, ErrNoPlatform
	}
	planReq := PlanRequest{Platform: req.Platform, Source: req.Source, ColdLP: req.ColdLP, RevisedLP: req.RevisedLP, LPMaxIterations: req.LPMaxIterations}
	res, err := e.PlanContext(ctx, planReq)
	if err != nil {
		return nil, err
	}
	names := req.Heuristics
	if len(names) == 0 {
		names = heuristics.Names()
	}
	ev := &Evaluation{
		Fingerprint: res.Plan.Fingerprint,
		Optimal:     res.Plan.Throughput,
		Cached:      res.Cached,
		Results:     make([]HeuristicResult, len(names)),
	}
	for i, name := range names {
		hr := HeuristicResult{Heuristic: name}
		tp, err := EvaluateHeuristic(req.Platform, req.Source, name, res.Plan.EdgeRate, model.OnePortBidirectional)
		if err != nil {
			hr.Error = err.Error()
		} else {
			hr.Throughput = tp
			if ev.Optimal > 0 {
				hr.Ratio = tp / ev.Optimal
			}
		}
		ev.Results[i] = hr
	}
	return ev, nil
}

// EvaluateHeuristic builds the named heuristic on the platform (sharing
// precomputed LP edge rates) and returns its steady-state throughput under
// the port model. Routing-producing heuristics (the binomial tree) are
// evaluated with link and node contention. The sweep engine and the service
// share this helper.
func EvaluateHeuristic(p *platform.Platform, source int, name string, rates []float64, m model.PortModel) (float64, error) {
	builder, err := heuristics.ByNameWithRates(name, rates)
	if err != nil {
		return 0, err
	}
	if rb, ok := builder.(heuristics.RoutingBuilder); ok {
		routing, err := rb.BuildRouting(p, source)
		if err != nil {
			return 0, err
		}
		return throughput.RoutingThroughput(p, routing, m), nil
	}
	tree, err := builder.Build(p, source)
	if err != nil {
		return 0, err
	}
	return throughput.TreeThroughput(p, tree, m), nil
}

// buildHeuristic builds the named heuristic and returns its tree (nil for
// routing heuristics) and throughput.
func buildHeuristic(p *platform.Platform, source int, name string, rates []float64, m model.PortModel) (*platform.Tree, float64, error) {
	builder, err := heuristics.ByNameWithRates(name, rates)
	if err != nil {
		return nil, 0, err
	}
	if rb, ok := builder.(heuristics.RoutingBuilder); ok {
		routing, err := rb.BuildRouting(p, source)
		if err != nil {
			return nil, 0, err
		}
		return nil, throughput.RoutingThroughput(p, routing, m), nil
	}
	tree, err := builder.Build(p, source)
	if err != nil {
		return nil, 0, err
	}
	return tree, throughput.TreeThroughput(p, tree, m), nil
}

// ChurnRequest replays a deterministic churn trace against a platform,
// comparing the keep/repair/rebuild policies against the re-solved optimum.
type ChurnRequest struct {
	Platform *platform.Platform `json:"platform"`
	Source   int                `json:"source"`
	// Profile names the churn profile (empty = default); Events is the trace
	// length (0 = dynamic default); Seed drives the trace generator.
	Profile string `json:"profile,omitempty"`
	Events  int    `json:"events,omitempty"`
	Seed    int64  `json:"seed"`
	// Heuristic drives the initial build and the rebuild policy.
	Heuristic string `json:"heuristic,omitempty"`
	// ColdResolve re-solves the optimum from scratch at every event.
	ColdResolve bool `json:"coldResolve,omitempty"`
}

// ChurnReplay is the engine's answer to a churn request.
type ChurnReplay struct {
	Fingerprint string          `json:"fingerprint"`
	Trace       *dynamic.Trace  `json:"trace"`
	Report      *dynamic.Report `json:"report"`
}

// Churn generates the request's churn trace and replays it against a private
// clone of the platform, bounded by the worker pool.
func (e *Engine) Churn(req ChurnRequest) (*ChurnReplay, error) {
	return e.ChurnContext(context.Background(), req)
}

// ChurnContext is Churn under a context: admission control applies exactly
// as for cold-miss plan solves (a saturated engine sheds churn replays with
// an *OverloadedError, a canceled context abandons the admission wait). The
// replay itself runs to completion once admitted — its many small re-solves
// are individually far below any sensible deadline.
func (e *Engine) ChurnContext(ctx context.Context, req ChurnRequest) (*ChurnReplay, error) {
	if req.Platform == nil {
		return nil, ErrNoPlatform
	}
	prof, err := dynamic.ProfileByName(req.Profile)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	events := req.Events
	if events <= 0 {
		events = 20
	}
	ctx, cancel := e.requestContext(ctx, 0)
	if cancel != nil {
		defer cancel()
	}
	release, err := e.acquire(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	trace, err := dynamic.GenerateTrace(req.Platform, req.Source, prof, events, req.Seed)
	if err != nil {
		return nil, err
	}
	cfg := dynamic.Config{Heuristic: req.Heuristic, ColdResolve: req.ColdResolve, Steady: e.cfg.Steady}
	report, err := dynamic.Run(req.Platform, req.Source, trace, cfg)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.stats.ChurnRuns++
	e.mu.Unlock()
	return &ChurnReplay{Fingerprint: req.Platform.Fingerprint().String(), Trace: trace, Report: report}, nil
}
