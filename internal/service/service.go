package service

import (
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/dynamic"
	"repro/internal/heuristics"
	"repro/internal/lp"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/platform"
	"repro/internal/steady"
	"repro/internal/throughput"
)

// Errors returned by the engine.
var (
	ErrNoPlatform   = errors.New("service: request has no platform")
	ErrBothPlatform = errors.New("service: request sets both platform and base; exactly one is allowed")
	ErrTooSmall     = errors.New("service: platform needs at least 2 alive nodes")
	ErrUnknownBase  = errors.New("service: base fingerprint not in cache")
	// ErrAmbiguousBase means the base fingerprint matches several cached
	// platforms (renumbered twins fold onto one fingerprint): the request
	// must pin the intended one with BaseExact, the exactKey of its plan.
	ErrAmbiguousBase = errors.New("service: base fingerprint matches several cached twins; set baseExact")
	// ErrBadRequest wraps malformed request fields (unparseable
	// fingerprints, unknown heuristic or profile names).
	ErrBadRequest = errors.New("service: bad request")
)

// Config tunes an Engine.
type Config struct {
	// CacheSize bounds the number of cached plans (default 256). Least
	// recently used entries are evicted.
	CacheSize int
	// Workers bounds the number of concurrent solves (default: number of
	// CPUs). Requests beyond the bound queue; cache hits never queue.
	Workers int
	// Steady is the base steady-state solver configuration applied to every
	// request (per-request ColdLP/LPMaxIterations are layered on top).
	Steady *steady.Options
	// DisableSessions drops the warm solver session (master LP tableau and
	// cut pool) after each solve instead of retaining it on the cache entry.
	// Delta requests then always re-derive a fresh session from the entry's
	// platform snapshot. Use it for plan-only workloads — the sweep engine
	// does — where retained tableaux would be dead weight.
	DisableSessions bool
	// Hooks, when non-nil, exposes engine-internal events to instrumentation
	// (metrics exporters, the load harness's deterministic burst gate). A nil
	// Hooks — and any nil callback — costs nothing.
	Hooks *Hooks
}

// Hooks are the engine's instrumentation points. Both callbacks may be
// invoked concurrently from many request goroutines.
type Hooks struct {
	// OnLookup fires once per plan request, under the engine lock, at the
	// moment the request is routed: a miss has just claimed its cache entry,
	// a hit is about to use (or wait on) an existing one. It must return
	// quickly and must not call back into the engine.
	OnLookup func(LookupEvent)
	// BeforeSolve fires on the solving goroutine after it has claimed the
	// cache entry and a worker slot, immediately before the solver runs.
	// Blocking inside it delays the solve (and every request collapsed onto
	// it); the load harness uses this to hold a solve until a whole burst of
	// identical requests has demonstrably registered, making singleflight
	// counters deterministic.
	BeforeSolve func()
}

// LookupEvent describes one routed plan request.
type LookupEvent struct {
	// Miss reports that the request claimed a new cache entry and will solve.
	Miss bool
	// Twin reports a miss whose fingerprint was already cached under a
	// different exact encoding (a renumbered twin).
	Twin bool
	// Collapsed reports a hit on an entry whose solve is still in flight:
	// the request will wait on that solve instead of starting its own.
	Collapsed bool
}

func (c Config) cacheSize() int {
	if c.CacheSize > 0 {
		return c.CacheSize
	}
	return 256
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.NumCPU()
}

// PlanRequest asks for the optimal steady-state broadcast plan of a platform.
// Exactly one of Platform and Base must be set: Platform carries the full
// platform, Base addresses a previously planned platform by fingerprint and
// Deltas mutates it (the near-duplicate fast path).
type PlanRequest struct {
	// Platform is the full platform to plan for.
	Platform *platform.Platform `json:"platform,omitempty"`
	// Base is the fingerprint (hex) of a previously planned platform; Deltas
	// are applied to it in order. The base request's Source, Heuristic and
	// LP options must be repeated for the cache key to resolve.
	Base   string           `json:"base,omitempty"`
	Deltas []platform.Delta `json:"deltas,omitempty"`
	// BaseExact optionally pins the exact cached platform the Base
	// fingerprint refers to (the exactKey of its plan). Required only when
	// renumbered twins sharing the fingerprint are cached side by side —
	// deltas address links by ID, so the engine refuses to guess between
	// twins (ErrAmbiguousBase).
	BaseExact string `json:"baseExact,omitempty"`
	// Source is the broadcast source processor.
	Source int `json:"source"`
	// Heuristic optionally names a tree heuristic to build and evaluate on
	// top of the optimal edge rates (empty = LP optimum only).
	Heuristic string `json:"heuristic,omitempty"`
	// ColdLP disables warm starts inside the master LP solves.
	ColdLP bool `json:"coldLP,omitempty"`
	// LPMaxIterations bounds the simplex pivots per master solve (0 = solver
	// default).
	LPMaxIterations int `json:"lpMaxIterations,omitempty"`
}

// Plan is a solved broadcast plan. It is immutable once cached: the engine
// hands out the same marshaled bytes for every cache hit.
type Plan struct {
	// Fingerprint is the canonical content fingerprint of the planned
	// platform (hex); delta requests can use it as their next Base.
	Fingerprint string `json:"fingerprint"`
	// ExactKey is the hash of the platform's exact canonical encoding in
	// its own node/link numbering (hex). Unlike the fingerprint it
	// distinguishes renumbered twins; delta requests pass it as BaseExact
	// when the fingerprint alone is ambiguous.
	ExactKey string `json:"exactKey"`
	Source   int    `json:"source"`
	Nodes    int    `json:"nodes"`
	Links    int    `json:"links"`
	// Throughput and UpperBound are the optimal steady-state MTP throughput
	// and the final master LP bound; EdgeRate are the per-link optimal rates.
	Throughput float64   `json:"throughput"`
	UpperBound float64   `json:"upperBound"`
	EdgeRate   []float64 `json:"edgeRate"`
	// LP statistics of the solve that produced the plan.
	LPRounds     int `json:"lpRounds"`
	LPCuts       int `json:"lpCuts"`
	LPPivots     int `json:"lpPivots"`
	LPWarmPivots int `json:"lpWarmPivots,omitempty"`
	LPColdPivots int `json:"lpColdPivots,omitempty"`
	// Heuristic outcome (only when the request named one). The binomial
	// heuristic produces a routed schedule, so Tree may be nil even with a
	// throughput.
	Heuristic           string         `json:"heuristic,omitempty"`
	Tree                *platform.Tree `json:"tree,omitempty"`
	HeuristicThroughput float64        `json:"heuristicThroughput,omitempty"`
	Ratio               float64        `json:"ratio,omitempty"`
}

// PlanResult is the engine's answer to one plan request.
type PlanResult struct {
	// Plan is the solved plan (shared with the cache; treat as read-only).
	Plan *Plan
	// JSON is the canonical marshaled form of Plan. Cache hits return a copy
	// of the exact bytes of the original solve.
	JSON []byte
	// Cached reports that the plan was served from the cache.
	Cached bool
	// Collapsed reports that the request arrived while an identical solve
	// was in flight and waited on it (singleflight). Collapsed implies
	// Cached.
	Collapsed bool
	// WarmResolved reports that a delta request reused the base entry's warm
	// session instead of cold-solving.
	WarmResolved bool
}

// Stats is a snapshot of the engine counters.
type Stats struct {
	// Requests = Hits + Misses; TwinMisses (fingerprint matched but content
	// differed: a renumbered twin or hash collision) are a subset of Misses,
	// and Singleflight (requests that found their solve already in flight
	// and waited on it instead of duplicating it) a subset of Hits.
	Requests     int64 `json:"requests"`
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	TwinMisses   int64 `json:"twinMisses,omitempty"`
	Singleflight int64 `json:"singleflight,omitempty"`
	Evictions    int64 `json:"evictions,omitempty"`
	// Solves counts the actual solver runs; DeltaPlans the requests served
	// through the base+deltas path, split into warm session reuses and
	// session rebuilds.
	Solves          int64 `json:"solves"`
	DeltaPlans      int64 `json:"deltaPlans,omitempty"`
	WarmResolves    int64 `json:"warmResolves,omitempty"`
	SessionRebuilds int64 `json:"sessionRebuilds,omitempty"`
	// Simplex pivot totals across all solves, split warm/cold.
	LPPivots     int64 `json:"lpPivots"`
	LPWarmPivots int64 `json:"lpWarmPivots"`
	LPColdPivots int64 `json:"lpColdPivots"`
	// ChurnRuns counts churn-replay requests.
	ChurnRuns int64 `json:"churnRuns,omitempty"`
	// Cache occupancy and configuration.
	CacheEntries  int `json:"cacheEntries"`
	CacheCapacity int `json:"cacheCapacity"`
	Workers       int `json:"workers"`
}

// fpKey routes a lookup: the permutation-invariant platform fingerprint
// plus every request parameter that changes the answer. Renumbered twins
// share an fpKey.
type fpKey struct {
	fp        platform.Fingerprint
	source    int
	heuristic string
	coldLP    bool
	maxIter   int
}

// cacheKey identifies one cacheable plan exactly: the routing fpKey plus
// the hash of the platform's exact canonical encoding, which renumbered
// twins do NOT share — so a cached plan (whose edge rates and trees are
// expressed in link/node IDs) is never served across a renumbering.
type cacheKey struct {
	fpKey
	exact [32]byte
}

// exactHash hashes the platform's exact canonical encoding.
func exactHash(p *platform.Platform) [32]byte {
	return sha256.Sum256(p.CanonicalEncoding())
}

// entry is one cached plan plus (while it lasts) a warm solver session
// pinned to the entry's platform state.
type entry struct {
	key cacheKey

	ready chan struct{} // closed once plan/err are set
	err   error
	plan  *Plan
	json  []byte

	mu sync.Mutex // guards the session fields below
	// plat is an immutable snapshot of the planned platform; sessions are
	// re-derived from it when the live one has moved on.
	plat *platform.Platform
	// session/sessionP, when non-nil, hold a warm steady session whose
	// platform is exactly at the entry's state. A delta request takes them
	// (they follow the mutation to the new entry).
	session  *steady.Session
	sessionP *platform.Platform
}

// Engine is the concurrent fingerprint-keyed planning engine. It is safe for
// concurrent use.
type Engine struct {
	cfg Config
	sem chan struct{} // bounded worker pool for solver work

	mu    sync.Mutex
	lru   *list.List // of *entry, most recently used in front
	byKey map[cacheKey]*list.Element
	// byFP indexes the cached entries by routing key; the slice holds more
	// than one element only when renumbered twins are cached side by side.
	byFP  map[fpKey][]*list.Element
	stats Stats
}

// New returns an engine with the given configuration.
func New(cfg Config) *Engine {
	return &Engine{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.workers()),
		lru:   list.New(),
		byKey: make(map[cacheKey]*list.Element),
		byFP:  make(map[fpKey][]*list.Element),
	}
}

// insertLocked adds a claimed entry to the cache and evicts over capacity.
// The engine mutex must be held.
func (e *Engine) insertLocked(ent *entry) *list.Element {
	el := e.lru.PushFront(ent)
	e.byKey[ent.key] = el
	e.byFP[ent.key.fpKey] = append(e.byFP[ent.key.fpKey], el)
	for e.lru.Len() > e.cfg.cacheSize() {
		e.removeLocked(e.lru.Back())
		e.stats.Evictions++
	}
	return el
}

// removeLocked drops an element from the LRU list and both indexes. The
// engine mutex must be held.
func (e *Engine) removeLocked(el *list.Element) {
	ent := el.Value.(*entry)
	e.lru.Remove(el)
	delete(e.byKey, ent.key)
	twins := e.byFP[ent.key.fpKey]
	for i, t := range twins {
		if t == el {
			twins = append(twins[:i], twins[i+1:]...)
			break
		}
	}
	if len(twins) == 0 {
		delete(e.byFP, ent.key.fpKey)
	} else {
		e.byFP[ent.key.fpKey] = twins
	}
}

// hook delivers a lookup event to the configured instrumentation. The
// engine mutex is held by the caller.
func (e *Engine) hook(ev LookupEvent) {
	if e.cfg.Hooks != nil && e.cfg.Hooks.OnLookup != nil {
		e.cfg.Hooks.OnLookup(ev)
	}
}

// Stats returns a snapshot of the engine counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := e.stats
	s.CacheEntries = e.lru.Len()
	s.CacheCapacity = e.cfg.cacheSize()
	s.Workers = cap(e.sem)
	return s
}

// steadyOptions layers the per-request LP knobs over the engine's base
// solver configuration.
func (e *Engine) steadyOptions(req PlanRequest) *steady.Options {
	var opts steady.Options
	if e.cfg.Steady != nil {
		opts = *e.cfg.Steady
	}
	if req.ColdLP {
		opts.ColdStart = true
	}
	if req.LPMaxIterations > 0 {
		// Override only the pivot budget; any other LP tuning configured on
		// the engine (tolerances, ...) stays in force.
		var lpOpts lp.Options
		if opts.LP != nil {
			lpOpts = *opts.LP
		}
		lpOpts.MaxIterations = req.LPMaxIterations
		opts.LP = &lpOpts
	}
	return &opts
}

func (req PlanRequest) fpKey(fp platform.Fingerprint) fpKey {
	return fpKey{fp: fp, source: req.Source, heuristic: req.Heuristic, coldLP: req.ColdLP, maxIter: req.LPMaxIterations}
}

// Plan answers one plan request: from the cache when the platform has been
// planned before, otherwise by solving (bounded by the worker pool) and
// caching the result. Delta requests (Base + Deltas) reuse the base entry's
// warm session when one is available.
func (e *Engine) Plan(req PlanRequest) (*PlanResult, error) {
	if req.Base != "" {
		if req.Platform != nil {
			return nil, ErrBothPlatform
		}
		return e.planFromBase(req)
	}
	if req.Platform == nil {
		return nil, ErrNoPlatform
	}
	return e.planPlatform(req, req.Platform, nil)
}

// planPlatform plans for an explicit platform. taken, when non-nil, is a
// warm session already positioned at the platform's exact state (the delta
// path hands one in); it is consumed: either by the solve, or by donating
// the session to the cache entry the request lands on.
func (e *Engine) planPlatform(req PlanRequest, p *platform.Platform, taken *takenSession) (*PlanResult, error) {
	if req.Heuristic != "" {
		if _, err := heuristics.ByName(req.Heuristic); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	if p.NumAliveNodes() < 2 {
		return nil, ErrTooSmall
	}
	fp := p.Fingerprint()
	key := cacheKey{fpKey: req.fpKey(fp), exact: exactHash(p)}

	e.mu.Lock()
	e.stats.Requests++
	if el, ok := e.byKey[key]; ok {
		ent := el.Value.(*entry)
		e.lru.MoveToFront(el)
		// Classify the hit while still under the lock: an entry whose ready
		// channel is not yet closed is an in-flight solve this request
		// collapses onto. The classification point is the lookup, so it is
		// deterministic for schedules that order duplicates after their
		// first-touch completed (they always see ready closed).
		collapsed := false
		select {
		case <-ent.ready:
		default:
			collapsed = true
		}
		e.hook(LookupEvent{Collapsed: collapsed})
		e.mu.Unlock()
		<-ent.ready
		e.mu.Lock()
		if ent.err != nil {
			e.stats.Misses++
			e.mu.Unlock()
			return nil, ent.err
		}
		e.stats.Hits++
		if collapsed {
			e.stats.Singleflight++
		}
		e.mu.Unlock()
		// A delta request that raced a concurrent identical insert donates
		// its session to the hit entry (the session platform is exactly at
		// the entry's state — the exact keys matched) instead of dropping
		// the lineage's only warm state.
		if taken != nil && !e.cfg.DisableSessions {
			ent.mu.Lock()
			if ent.session == nil {
				ent.session, ent.sessionP = taken.sess, taken.p
			}
			ent.mu.Unlock()
		}
		return &PlanResult{Plan: ent.plan, JSON: append([]byte(nil), ent.json...), Cached: true, Collapsed: collapsed}, nil
	}
	// Miss: claim the key with an unsolved entry so concurrent identical
	// requests wait on this solve instead of duplicating it. A renumbered
	// twin of a cached platform lands here too (same fpKey, different exact
	// key) and is cached independently — its IDs live in another numbering.
	twin := len(e.byFP[key.fpKey]) > 0
	if twin {
		e.stats.TwinMisses++
	}
	ent := &entry{key: key, ready: make(chan struct{})}
	el := e.insertLocked(ent)
	e.stats.Misses++
	e.hook(LookupEvent{Miss: true, Twin: twin})
	e.mu.Unlock()

	plan, planJSON, sess, sp, err := e.solve(req, p, taken)
	e.mu.Lock()
	if err != nil {
		ent.err = err
		// Failed solves are not served from the cache.
		if cur, ok := e.byKey[key]; ok && cur == el {
			e.removeLocked(el)
		}
		e.mu.Unlock()
		close(ent.ready)
		return nil, err
	}
	ent.plan = plan
	ent.json = planJSON
	e.mu.Unlock()
	ent.mu.Lock()
	if e.cfg.DisableSessions {
		// sp is exclusively owned and the session is being discarded, so it
		// can serve as the snapshot directly.
		ent.plat = sp
	} else {
		ent.plat = sp.Clone()
		ent.session = sess
		ent.sessionP = sp
	}
	ent.mu.Unlock()
	close(ent.ready)
	return &PlanResult{Plan: plan, JSON: append([]byte(nil), planJSON...), WarmResolved: taken != nil && taken.warm}, nil
}

// takenSession is a warm session handed from a base entry to the delta path.
type takenSession struct {
	sess *steady.Session
	p    *platform.Platform // the session's live platform, already mutated
	warm bool
}

// solve runs the steady-state solver (and the optional heuristic) on its own
// clone of the platform, bounded by the worker pool. It returns the plan,
// its canonical bytes, and a session positioned at the solved state for
// future delta requests.
func (e *Engine) solve(req PlanRequest, p *platform.Platform, taken *takenSession) (*Plan, []byte, *steady.Session, *platform.Platform, error) {
	e.sem <- struct{}{}
	defer func() { <-e.sem }()
	if e.cfg.Hooks != nil && e.cfg.Hooks.BeforeSolve != nil {
		e.cfg.Hooks.BeforeSolve()
	}

	var sess *steady.Session
	var sp *platform.Platform
	if taken != nil {
		sess, sp = taken.sess, taken.p
	} else {
		sp = p.Clone()
		sess = steady.NewSession(sp, req.Source, e.steadyOptions(req))
	}
	before := sess.Stats()
	sol, err := sess.Resolve()
	after := sess.Stats()
	e.mu.Lock()
	e.stats.Solves++
	e.stats.LPPivots += int64(sol0(sol))
	e.stats.LPWarmPivots += int64(after.WarmPivots - before.WarmPivots)
	e.stats.LPColdPivots += int64(after.ColdPivots - before.ColdPivots)
	e.stats.WarmResolves += int64(after.WarmResolves - before.WarmResolves)
	e.stats.SessionRebuilds += int64(after.Rebuilds - before.Rebuilds)
	e.mu.Unlock()
	if err != nil {
		return nil, nil, nil, nil, err
	}

	exact := exactHash(sp)
	plan := &Plan{
		Fingerprint:  sp.Fingerprint().String(),
		ExactKey:     hex.EncodeToString(exact[:]),
		Source:       req.Source,
		Nodes:        sp.NumNodes(),
		Links:        sp.NumLinks(),
		Throughput:   sol.Throughput,
		UpperBound:   sol.UpperBound,
		EdgeRate:     sol.EdgeRate,
		LPRounds:     sol.Rounds,
		LPCuts:       sol.Cuts,
		LPPivots:     sol.LPIterations,
		LPWarmPivots: sol.WarmPivots,
		LPColdPivots: sol.ColdPivots,
	}
	if req.Heuristic != "" {
		tree, tp, err := buildHeuristic(sp, req.Source, req.Heuristic, sol.EdgeRate, model.OnePortBidirectional)
		if err != nil {
			return nil, nil, nil, nil, err
		}
		plan.Heuristic = req.Heuristic
		plan.Tree = tree
		plan.HeuristicThroughput = tp
		if sol.Throughput > 0 {
			plan.Ratio = tp / sol.Throughput
		}
	}
	planJSON, err := json.Marshal(plan)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("service: marshal plan: %w", err)
	}
	return plan, planJSON, sess, sp, nil
}

// sol0 guards against a nil solution on solver errors.
func sol0(sol *steady.Solution) int {
	if sol == nil {
		return 0
	}
	return sol.LPIterations
}

// planFromBase serves a near-duplicate request: the cached platform named by
// the base fingerprint (and, when twins share it, the BaseExact key),
// mutated by the request's deltas.
func (e *Engine) planFromBase(req PlanRequest) (*PlanResult, error) {
	fp, err := platform.ParseFingerprint(req.Base)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	var wantExact []byte
	if req.BaseExact != "" {
		wantExact, err = hex.DecodeString(req.BaseExact)
		if err != nil || len(wantExact) != 32 {
			return nil, fmt.Errorf("%w: invalid baseExact %q", ErrBadRequest, req.BaseExact)
		}
	}

	// Resolve the base entry. Deltas address links and nodes by ID, so when
	// several renumbered twins share the fingerprint the request must pin
	// one with BaseExact — guessing would mutate the wrong platform.
	e.mu.Lock()
	var el *list.Element
	cands := e.byFP[req.fpKey(fp)]
	switch {
	case wantExact != nil:
		for _, c := range cands {
			if ent := c.Value.(*entry); bytes.Equal(ent.key.exact[:], wantExact) {
				el = c
				break
			}
		}
	case len(cands) == 1:
		el = cands[0]
	case len(cands) > 1:
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %s has %d cached twins", ErrAmbiguousBase, req.Base, len(cands))
	}
	if el == nil {
		e.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrUnknownBase, req.Base)
	}
	base := el.Value.(*entry)
	e.lru.MoveToFront(el)
	e.stats.DeltaPlans++
	e.mu.Unlock()
	<-base.ready
	if base.err != nil {
		return nil, base.err
	}

	// Take the base entry's warm session when it is still home; otherwise
	// re-derive a fresh one from the immutable snapshot. If the mutated
	// platform turns out to be cached already, planPlatform's hit path
	// donates the session to that entry instead of losing it.
	base.mu.Lock()
	taken := &takenSession{}
	if base.session != nil {
		taken.sess, taken.p = base.session, base.sessionP
		taken.warm = true
		base.session, base.sessionP = nil, nil
	} else {
		taken.p = base.plat.Clone()
		taken.sess = steady.NewSession(taken.p, req.Source, e.steadyOptions(req))
	}
	base.mu.Unlock()
	for _, d := range req.Deltas {
		if _, err := taken.p.ApplyDelta(d); err != nil {
			// The session platform may be mid-sequence; drop it rather than
			// returning it home in an undefined state.
			return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	}
	mutReq := req
	mutReq.Base, mutReq.BaseExact, mutReq.Deltas = "", "", nil
	return e.planPlatform(mutReq, taken.p, taken)
}

// PlanEach plans a batch of independent requests across the worker pool with
// parallel.MapStream semantics: results come back in index order and are
// deterministic for any worker count. Per-request failures are reported in
// the outcome, not as a batch error.
func (e *Engine) PlanEach(reqs []PlanRequest, workers int) []PlanOutcome {
	return parallel.Map(len(reqs), workers, func(i int) PlanOutcome {
		res, err := e.Plan(reqs[i])
		out := PlanOutcome{Result: res}
		if err != nil {
			out.Error = err.Error()
		}
		return out
	})
}

// PlanOutcome is one result of PlanEach.
type PlanOutcome struct {
	Result *PlanResult
	Error  string
}

// EvaluateRequest asks for the relative performance of tree heuristics on a
// platform against its steady-state optimum.
type EvaluateRequest struct {
	Platform *platform.Platform `json:"platform"`
	Source   int                `json:"source"`
	// Heuristics to evaluate (empty = every registered heuristic).
	Heuristics      []string `json:"heuristics,omitempty"`
	ColdLP          bool     `json:"coldLP,omitempty"`
	LPMaxIterations int      `json:"lpMaxIterations,omitempty"`
}

// HeuristicResult is the outcome of one heuristic in an evaluation.
type HeuristicResult struct {
	Heuristic  string  `json:"heuristic"`
	Throughput float64 `json:"throughput"`
	Ratio      float64 `json:"ratio"`
	Error      string  `json:"error,omitempty"`
}

// Evaluation is the engine's answer to an evaluate request.
type Evaluation struct {
	Fingerprint string            `json:"fingerprint"`
	Optimal     float64           `json:"optimal"`
	Cached      bool              `json:"cached"`
	Results     []HeuristicResult `json:"results"`
}

// Evaluate plans the platform (through the cache) and evaluates every
// requested heuristic against the optimum.
func (e *Engine) Evaluate(req EvaluateRequest) (*Evaluation, error) {
	if req.Platform == nil {
		return nil, ErrNoPlatform
	}
	planReq := PlanRequest{Platform: req.Platform, Source: req.Source, ColdLP: req.ColdLP, LPMaxIterations: req.LPMaxIterations}
	res, err := e.Plan(planReq)
	if err != nil {
		return nil, err
	}
	names := req.Heuristics
	if len(names) == 0 {
		names = heuristics.Names()
	}
	ev := &Evaluation{
		Fingerprint: res.Plan.Fingerprint,
		Optimal:     res.Plan.Throughput,
		Cached:      res.Cached,
		Results:     make([]HeuristicResult, len(names)),
	}
	for i, name := range names {
		hr := HeuristicResult{Heuristic: name}
		tp, err := EvaluateHeuristic(req.Platform, req.Source, name, res.Plan.EdgeRate, model.OnePortBidirectional)
		if err != nil {
			hr.Error = err.Error()
		} else {
			hr.Throughput = tp
			if ev.Optimal > 0 {
				hr.Ratio = tp / ev.Optimal
			}
		}
		ev.Results[i] = hr
	}
	return ev, nil
}

// EvaluateHeuristic builds the named heuristic on the platform (sharing
// precomputed LP edge rates) and returns its steady-state throughput under
// the port model. Routing-producing heuristics (the binomial tree) are
// evaluated with link and node contention. The sweep engine and the service
// share this helper.
func EvaluateHeuristic(p *platform.Platform, source int, name string, rates []float64, m model.PortModel) (float64, error) {
	builder, err := heuristics.ByNameWithRates(name, rates)
	if err != nil {
		return 0, err
	}
	if rb, ok := builder.(heuristics.RoutingBuilder); ok {
		routing, err := rb.BuildRouting(p, source)
		if err != nil {
			return 0, err
		}
		return throughput.RoutingThroughput(p, routing, m), nil
	}
	tree, err := builder.Build(p, source)
	if err != nil {
		return 0, err
	}
	return throughput.TreeThroughput(p, tree, m), nil
}

// buildHeuristic builds the named heuristic and returns its tree (nil for
// routing heuristics) and throughput.
func buildHeuristic(p *platform.Platform, source int, name string, rates []float64, m model.PortModel) (*platform.Tree, float64, error) {
	builder, err := heuristics.ByNameWithRates(name, rates)
	if err != nil {
		return nil, 0, err
	}
	if rb, ok := builder.(heuristics.RoutingBuilder); ok {
		routing, err := rb.BuildRouting(p, source)
		if err != nil {
			return nil, 0, err
		}
		return nil, throughput.RoutingThroughput(p, routing, m), nil
	}
	tree, err := builder.Build(p, source)
	if err != nil {
		return nil, 0, err
	}
	return tree, throughput.TreeThroughput(p, tree, m), nil
}

// ChurnRequest replays a deterministic churn trace against a platform,
// comparing the keep/repair/rebuild policies against the re-solved optimum.
type ChurnRequest struct {
	Platform *platform.Platform `json:"platform"`
	Source   int                `json:"source"`
	// Profile names the churn profile (empty = default); Events is the trace
	// length (0 = dynamic default); Seed drives the trace generator.
	Profile string `json:"profile,omitempty"`
	Events  int    `json:"events,omitempty"`
	Seed    int64  `json:"seed"`
	// Heuristic drives the initial build and the rebuild policy.
	Heuristic string `json:"heuristic,omitempty"`
	// ColdResolve re-solves the optimum from scratch at every event.
	ColdResolve bool `json:"coldResolve,omitempty"`
}

// ChurnReplay is the engine's answer to a churn request.
type ChurnReplay struct {
	Fingerprint string          `json:"fingerprint"`
	Trace       *dynamic.Trace  `json:"trace"`
	Report      *dynamic.Report `json:"report"`
}

// Churn generates the request's churn trace and replays it against a private
// clone of the platform, bounded by the worker pool.
func (e *Engine) Churn(req ChurnRequest) (*ChurnReplay, error) {
	if req.Platform == nil {
		return nil, ErrNoPlatform
	}
	prof, err := dynamic.ProfileByName(req.Profile)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	events := req.Events
	if events <= 0 {
		events = 20
	}
	e.sem <- struct{}{}
	defer func() { <-e.sem }()
	trace, err := dynamic.GenerateTrace(req.Platform, req.Source, prof, events, req.Seed)
	if err != nil {
		return nil, err
	}
	cfg := dynamic.Config{Heuristic: req.Heuristic, ColdResolve: req.ColdResolve, Steady: e.cfg.Steady}
	report, err := dynamic.Run(req.Platform, req.Source, trace, cfg)
	if err != nil {
		return nil, err
	}
	e.mu.Lock()
	e.stats.ChurnRuns++
	e.mu.Unlock()
	return &ChurnReplay{Fingerprint: req.Platform.Fingerprint().String(), Trace: trace, Report: report}, nil
}
