package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one static-analysis rule: a name, a short doc
// string, and a Run function invoked once per loaded package. The shape
// mirrors golang.org/x/tools/go/analysis so the analyzers could migrate to
// the upstream driver without rewrites.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore <name> suppression comments.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run analyzes one package and reports findings through pass.Reportf.
	Run func(*Pass) error
}

// A Pass provides one analyzer run with a single type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files are the package's parsed syntax trees (comments retained).
	Files []*ast.File
	// Pkg and TypesInfo are the type-checker's results for the package.
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding of one analyzer.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position
	Analyzer string
	Message  string
}

// String renders the conventional file:line:col: analyzer: message form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Position.Filename, d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
}

// Run applies every analyzer to every package and returns the surviving
// diagnostics (suppressed ones removed, see ignore.go) sorted by file,
// line, column, analyzer. Analyzer errors are returned after the
// diagnostics collected so far.
func Run(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var all []Diagnostic
	var firstErr error
	for _, pkg := range pkgs {
		ign := collectIgnores(pkg)
		all = append(all, ign.bad...)
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
			}
			if err := a.Run(pass); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if !ign.suppressed(d) {
					all = append(all, d)
				}
			}
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Position, all[j].Position
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, firstErr
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{DetRand, CtxFlow, LockGuard, SentErr}
}

// objPkgPath returns the import path of the package an object belongs to,
// or "" for universe-scope objects.
func objPkgPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	return obj.Pkg().Path()
}

// calleeFunc resolves the called function or method of a call expression,
// or nil for calls through function-typed variables, builtins and
// conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// unparen strips any number of enclosing parentheses.
func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// isPkgCall reports whether call is a call of the named package-level
// function of the package with the given import path.
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := calleeFunc(info, call)
	if fn == nil || objPkgPath(fn) != pkgPath {
		return false
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// isErrorType reports whether t is the built-in error interface or
// implements it.
func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if named, ok := t.(*types.Named); ok && named.Obj() != nil &&
		named.Obj().Pkg() == nil && named.Obj().Name() == "error" {
		return true
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errType)
}
