// Package cache is a lockguard fixture: fields annotated "guarded by mu"
// may only be touched with the mutex held (branch- and defer-aware), via
// sync/atomic, or from *Locked / "lockguard: holds" functions. Escaping
// goroutines lose the caller's locks.
package cache

import (
	"sync"
	"sync/atomic"
)

type Counter struct {
	mu     sync.Mutex
	hits   int64 // guarded by mu
	misses int64 // guarded by mu
	free   int64 // unannotated: never checked
}

func (c *Counter) Good() {
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
}

func (c *Counter) GoodDefer() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

func (c *Counter) Bad() {
	c.hits++ // want `field c\.hits is guarded by c\.mu but accessed without holding it`
}

func (c *Counter) BadAfterUnlock() {
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
	c.misses++ // want `field c\.misses is guarded by c\.mu`
}

func (c *Counter) BadRead() int64 {
	return c.hits // want `field c\.hits is guarded by c\.mu`
}

func (c *Counter) Unannotated() int64 {
	return c.free
}

func (c *Counter) Atomic() int64 {
	atomic.AddInt64(&c.hits, 1)
	return atomic.LoadInt64(&c.misses)
}

// bumpLocked follows the *Locked naming convention: the caller holds mu.
func (c *Counter) bumpLocked() { c.hits++ }

// snapshot trusts its annotation.
//
// lockguard: holds c.mu
func (c *Counter) snapshot() (int64, int64) { return c.hits, c.misses }

// EarlyReturn unlocks on one branch and returns; the fall-through path is
// still under the lock and must stay clean.
func (c *Counter) EarlyReturn(cond bool) int64 {
	c.mu.Lock()
	if cond {
		c.mu.Unlock()
		return 0
	}
	n := c.hits
	c.mu.Unlock()
	return n
}

// BranchMerge unlocks in only one non-returning branch: after the merge the
// lock may or may not be held, so the access is flagged.
func (c *Counter) BranchMerge(cond bool) {
	c.mu.Lock()
	if cond {
		c.mu.Unlock()
	}
	c.hits++ // want `field c\.hits is guarded by c\.mu`
	if !cond {
		c.mu.Unlock()
	}
}

// Goroutine bodies do not inherit the caller's critical section.
func (c *Counter) Goroutine() {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.hits++ // want `field c\.hits is guarded by c\.mu`
	}()
}

// Immediately-invoked literals run inside the critical section: clean.
func (c *Counter) Iife() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return func() int64 { return c.hits }()
}

// LoopLockStep locks and unlocks per iteration: clean inside, and the
// conservative post-loop state still counts the second access as locked
// because the loop body re-locks before it ends... it does not — the body
// ends unlocked, so the access below must be inside its own critical
// section.
func (c *Counter) LoopLockStep(n int) {
	for i := 0; i < n; i++ {
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
	}
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
}
