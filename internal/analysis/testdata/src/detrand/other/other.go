// Package other is the conforming detrand fixture: it is NOT in the
// deterministic-package set, so the very constructs flagged in the
// scenarios fixture must produce no findings here.
package other

import (
	"math/rand"
	"time"
)

func Timestamp() int64 {
	return time.Now().UnixNano()
}

func GlobalStream() int {
	return rand.Intn(10)
}

func AdHocRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func Escapes(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v)
	}
	return out
}
