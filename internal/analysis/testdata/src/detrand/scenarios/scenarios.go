// Package scenarios is a detrand fixture: its name puts it in the
// deterministic-package set, so wall clocks, the global math/rand stream,
// ad-hoc RNG construction and escaping map iteration must all be flagged,
// while the blessed patterns (explicit streams, keys-then-sort, commutative
// aggregation) must stay quiet.
package scenarios

import (
	"math/rand"
	"sort"
	"time"
)

func Timestamp() int64 {
	return time.Now().UnixNano() // want `wall clock \(time\.Now\)`
}

func Elapsed(since time.Time) time.Duration {
	return time.Since(since) // want `wall clock \(time\.Since\)`
}

func AnnotatedTimestamp() int64 {
	//lint:ignore detrand fixture: deliberate wall-clock exemption with a recorded reason
	return time.Now().UnixNano()
}

func GlobalStream() int {
	return rand.Intn(10) // want `global math/rand stream \(rand\.Intn\)`
}

func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand stream \(rand\.Shuffle\)`
}

func AdHocRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `ad-hoc RNG construction \(rand\.New\)` `ad-hoc RNG construction \(rand\.NewSource\)`
}

// ExplicitStream draws from a caller-provided stream: the deterministic
// idiom, never flagged.
func ExplicitStream(rng *rand.Rand) float64 {
	return rng.Float64()
}

func EscapesConcat(m map[string]int) string {
	out := ""
	for k := range m { // want `map iteration order escapes`
		out += k
	}
	return out
}

func EscapesAppend(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `map iteration order escapes`
		out = append(out, v)
	}
	return out
}

// SortedKeys is the collect-then-sort idiom: clean.
func SortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Aggregates commutes: clean.
func Aggregates(m map[string]int) (total int, n int) {
	for _, v := range m {
		total += v
		n++
	}
	return total, n
}

// Inverts writes into another map: clean.
func Inverts(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// Prunes deletes from a map: clean.
func Prunes(m map[string]int) {
	for k, v := range m {
		if v == 0 {
			delete(m, k)
		}
	}
}

// RangesSlice is not a map range at all: clean.
func RangesSlice(xs []int) []int {
	var out []int
	for _, v := range xs {
		out = append(out, v*2)
	}
	return out
}
