// Package pack is a detrand fixture: the tree-packing package is in the
// deterministic set (Decompose must emit byte-identical packings for the
// same solution), so wall clocks, global rand draws and escaping map
// iteration are flagged, while the sanctioned dedupe idioms the real
// package relies on (key-indexed map writes, keys-then-sort) stay quiet.
package pack

import (
	"math/rand"
	"sort"
	"time"
)

func SolveDuration(start time.Time) time.Duration {
	return time.Since(start) // want `wall clock \(time\.Since\)`
}

func JitterWeight(w float64) float64 {
	return w * rand.Float64() // want `global math/rand stream \(rand\.Float64\)`
}

func PerturbedRNG(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // want `ad-hoc RNG construction \(rand\.New\)` `ad-hoc RNG construction \(rand\.NewSource\)`
}

// EscapingColumnOrder leaks dedupe-map iteration order into the packing:
// exactly the bug the real package's generation-order bookkeeping avoids.
func EscapingColumnOrder(columns map[string]float64) []float64 {
	var weights []float64
	for _, w := range columns { // want `map iteration order escapes`
		weights = append(weights, w)
	}
	return weights
}

// DedupeColumns is the real package's idiom — the map only answers "seen
// before?", order never escapes: clean.
func DedupeColumns(keys []string) map[string]int {
	idx := make(map[string]int, len(keys))
	for i, k := range keys {
		idx[k] = i
	}
	return idx
}

// SortedTreeKeys collects then sorts: clean.
func SortedTreeKeys(columns map[string]float64) []string {
	keys := make([]string, 0, len(columns))
	for k := range columns {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// TotalWeight commutes: clean.
func TotalWeight(columns map[string]float64) (sum float64) {
	for _, w := range columns {
		sum += w
	}
	return sum
}
