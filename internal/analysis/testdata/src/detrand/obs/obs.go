// Package obs is a detrand fixture mirroring the real observability
// package: its name is in the deterministic-package set, so bare wall-clock
// reads and global randomness must be flagged, while the package's sanctioned
// idiom — a single annotated wall-clock site for the opt-in WallClock trace
// mode, and ID-sorted snapshot assembly — must stay quiet.
package obs

import (
	"math/rand"
	"sort"
	"time"
)

// BareTimestamp is the violation the scope addition exists to catch: a trace
// or metric stamped from the wall clock on the deterministic path.
func BareTimestamp() int64 {
	return time.Now().UnixNano() // want `wall clock \(time\.Now\)`
}

// SpanDuration measures with time.Since: equally forbidden.
func SpanDuration(start time.Time) time.Duration {
	return time.Since(start) // want `wall clock \(time\.Since\)`
}

// wallNow mirrors the real package's one sanctioned wall-clock read: the
// opt-in WallClock trace mode's timestamp source, annotated with the reason
// deterministic tracers never reach it.
func wallNow() int64 {
	//lint:ignore detrand opt-in wall-clock trace timestamps; deterministic tracers never reach this
	return time.Now().UnixNano()
}

// WallEvent uses the annotated source: clean.
func WallEvent() int64 { return wallNow() }

// SampleTraceID drawing from the global stream would make IDs
// non-reproducible: flagged.
func SampleTraceID() uint64 {
	return rand.Uint64() // want `global math/rand stream \(rand\.Uint64\)`
}

// SortedSnapshot is the package's canonical dump idiom — collect from the
// shard map, then sort by ID: clean.
func SortedSnapshot(byID map[string]int) []string {
	ids := make([]string, 0, len(byID))
	for id := range byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// RenderUnsorted leaks map order into an exposition: flagged.
func RenderUnsorted(families map[string]string) string {
	out := ""
	for _, line := range families { // want `map iteration order escapes`
		out += line
	}
	return out
}
