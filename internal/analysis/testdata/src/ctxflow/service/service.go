// Package service is a ctxflow fixture: its name puts it on the cancelable
// solve path, so context-receiving functions must thread their context —
// no minted Background/TODO, no calling X when an XContext sibling exists.
// Context-free exported wrappers and the documented nil-defaulting idiom
// stay quiet.
package service

import "context"

type Engine struct{}

func (e *Engine) ResolveContext(ctx context.Context, n int) int { return n }

// Resolve is the back-compat wrapper idiom: it receives no context, so
// minting Background here is the documented default and must not be
// flagged.
func (e *Engine) Resolve(n int) int { return e.ResolveContext(context.Background(), n) }

func Mints(ctx context.Context, e *Engine) int {
	bg := context.Background() // want `context\.Background\(\) inside a function that receives a ctx`
	return e.ResolveContext(bg, 1)
}

func MintsTODO(ctx context.Context, e *Engine) int {
	return e.ResolveContext(context.TODO(), 1) // want `context\.TODO\(\) inside a function that receives a ctx`
}

func DropsMethod(ctx context.Context, e *Engine) int {
	return e.Resolve(1) // want `call to Resolve drops the caller's context: use ResolveContext`
}

func DropsFunc(ctx context.Context) {
	Work() // want `call to Work drops the caller's context: use WorkContext`
}

func Work()                           {}
func WorkContext(ctx context.Context) {}

// NoSibling has no WorkAloneContext variant: calling it cannot thread a
// context and is clean.
func WorkAlone() {}

func Threads(ctx context.Context, e *Engine) int {
	WorkContext(ctx)
	WorkAlone()
	return e.ResolveContext(ctx, 1)
}

// NilDefault is the documented nil-substitution idiom: clean.
func NilDefault(ctx context.Context, e *Engine) int {
	if ctx == nil {
		ctx = context.Background()
	}
	return e.ResolveContext(ctx, 1)
}

// Derives wraps the incoming context: clean.
func Derives(ctx context.Context, e *Engine) int {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return e.ResolveContext(sub, 1)
}

func SpawnsGoroutine(ctx context.Context, e *Engine) {
	go func() {
		_ = context.Background() // want `context\.Background\(\) inside a function that receives a ctx`
	}()
}

func SpawnsAnnotated(ctx context.Context, e *Engine) {
	go func() {
		//lint:ignore ctxflow fixture: background work deliberately outlives the request
		_ = context.Background()
	}()
}

// LitWithOwnCtx declares its own context parameter: a fresh scope, checked
// independently.
func LitWithOwnCtx(ctx context.Context, e *Engine) func(context.Context) int {
	return func(inner context.Context) int {
		return e.ResolveContext(inner, 1)
	}
}
