// Package other is the conforming ctxflow fixture: it is NOT one of the
// solve-path packages, so minting Background inside a context-receiving
// function must produce no findings here.
package other

import "context"

func Mints(ctx context.Context) context.Context {
	return context.Background()
}
