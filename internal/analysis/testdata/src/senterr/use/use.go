// Package use is the consuming half of the senterr fixture: == / != / switch
// comparisons against sentinels and %v-formatted sentinels are flagged;
// errors.Is, %w wrapping and nil checks stay quiet.
package use

import (
	"errors"
	"fmt"

	"senterr/sent"
)

func Compare(err error) bool {
	return err == sent.ErrCanceled // want `sentinel ErrCanceled compared with ==`
}

func CompareNeq(err error) bool {
	return sent.ErrLPFailed != err // want `sentinel ErrLPFailed compared with !=`
}

func Switch(err error) string {
	switch err {
	case sent.ErrCanceled: // want `sentinel ErrCanceled used as a switch case`
		return "canceled"
	default:
		return ""
	}
}

func WrapWrong(err error) error {
	return fmt.Errorf("solve: %v (cause %w)", sent.ErrCanceled, err) // want `sentinel ErrCanceled formatted with %v`
}

func WrapString(err error) error {
	return fmt.Errorf("solve: %s", sent.ErrLPFailed) // want `sentinel ErrLPFailed formatted with %s`
}

func WrapRight(err error) error {
	return fmt.Errorf("solve: %w: %v", sent.ErrCanceled, err)
}

func Is(err error) bool {
	return errors.Is(err, sent.ErrCanceled)
}

func NilCheck(err error) bool {
	return err == nil
}

// Annotated comparisons carry their justification.
func AnnotatedCompare(err error) bool {
	//lint:ignore senterr fixture: identity comparison required by a third-party contract
	return err == sent.ErrCanceled
}
