// Package sent is the sentinel-defining half of the senterr fixture.
package sent

import "errors"

var (
	ErrCanceled = errors.New("sent: canceled")
	ErrLPFailed = errors.New("sent: lp failed")
)
