// This file opts out of detrand wholesale.
//
//lint:file-ignore detrand fixture: measurement-only file
package stats

import "time"

func WholeFileExempt() int64 {
	return time.Now().UnixNano()
}
