// Package stats (directory ignorecase/ign) exercises the suppression
// machinery: a valid line ignore, a malformed directive (no reason) that
// the driver reports itself, and an unsuppressed finding as a control.
package stats

import "time"

func Suppressed() int64 {
	//lint:ignore detrand fixture: wall time is fine here
	return time.Now().UnixNano()
}

func Unsuppressed() int64 {
	return time.Now().UnixNano()
}

func Malformed() int64 {
	//lint:ignore detrand
	return time.Now().UnixNano()
}
