package analysis

import (
	"strings"
)

// Suppression comments, staticcheck-style:
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//	//lint:file-ignore <analyzer>[,<analyzer>...] <reason>
//
// A line ignore suppresses findings of the listed analyzers on the line it
// sits on, or — when the comment stands alone — on the next source line. A
// file ignore suppresses them in the whole file. The reason is mandatory:
// an ignore without one is itself reported by the driver (as analyzer
// "lint"), so every exception carries its justification in the source.

type ignoreSet struct {
	// file maps filename -> analyzer name -> suppressed.
	file map[string]map[string]bool
	// line maps filename -> line -> analyzer name -> suppressed.
	line map[string]map[int]map[string]bool
	// bad collects malformed ignore directives as diagnostics.
	bad []Diagnostic
}

// collectIgnores scans every comment of the package for lint directives.
func collectIgnores(pkg *Package) *ignoreSet {
	ign := &ignoreSet{
		file: make(map[string]map[string]bool),
		line: make(map[string]map[int]map[string]bool),
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//lint:")
				if !ok {
					continue
				}
				fields := strings.Fields(text)
				if len(fields) == 0 {
					continue
				}
				kind := fields[0]
				if kind != "ignore" && kind != "file-ignore" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if len(fields) < 3 {
					ign.bad = append(ign.bad, Diagnostic{
						Pos:      c.Pos(),
						Position: pos,
						Analyzer: "lint",
						Message:  "malformed //lint:" + kind + " directive: need analyzer names and a reason",
					})
					continue
				}
				names := strings.Split(fields[1], ",")
				if kind == "file-ignore" {
					m := ign.file[pos.Filename]
					if m == nil {
						m = make(map[string]bool)
						ign.file[pos.Filename] = m
					}
					for _, n := range names {
						m[n] = true
					}
					continue
				}
				// A line directive covers its own line (trailing-comment
				// placement) and the next one (annotation-above-the-
				// statement placement).
				lm := ign.line[pos.Filename]
				if lm == nil {
					lm = make(map[int]map[string]bool)
					ign.line[pos.Filename] = lm
				}
				for _, target := range []int{pos.Line, pos.Line + 1} {
					m := lm[target]
					if m == nil {
						m = make(map[string]bool)
						lm[target] = m
					}
					for _, n := range names {
						m[n] = true
					}
				}
			}
		}
	}
	return ign
}

func (i *ignoreSet) suppressed(d Diagnostic) bool {
	if m := i.file[d.Position.Filename]; m[d.Analyzer] {
		return true
	}
	if lm := i.line[d.Position.Filename]; lm != nil {
		if m := lm[d.Position.Line]; m[d.Analyzer] {
			return true
		}
	}
	return false
}
