package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package.
type Package struct {
	// Path is the package's import path; Dir the directory its files live
	// in; Name the package clause name.
	Path string
	Dir  string
	Name string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// A Loader loads and type-checks packages of the surrounding module using
// only the standard library: module-internal imports resolve against the
// module directory tree, everything else (the standard library) through the
// compiler-independent source importer, so no pre-built export data and no
// network access are needed.
type Loader struct {
	// Fset is shared by every package the loader touches.
	Fset *token.FileSet
	// Module is the module path from go.mod; RootDir the directory that
	// holds go.mod.
	Module  string
	RootDir string
	// Overlay maps additional import-path prefixes to directories (used by
	// the atest fixture runner, whose fixture packages live under
	// testdata/src in a GOPATH-like layout).
	Overlay map[string]string
	// IncludeTests also parses _test.go files of loaded packages. The lint
	// suite defaults to false: tests deliberately use explicit ad-hoc RNGs
	// and wall clocks.
	IncludeTests bool

	std  types.ImporterFrom
	pkgs map[string]*Package
}

// NewLoader returns a loader rooted at the module containing dir (dir or
// the nearest parent holding go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("analysis: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	module := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			module = strings.TrimSpace(rest)
			break
		}
	}
	if module == "" {
		return nil, fmt.Errorf("analysis: no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	l := &Loader{
		Fset:    fset,
		Module:  module,
		RootDir: root,
		pkgs:    make(map[string]*Package),
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.RootDir, 0)
}

// ImportFrom implements types.ImporterFrom: module-internal and overlay
// paths load recursively from source; everything else is delegated to the
// standard library's source importer.
func (l *Loader) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if d, ok := l.lookupDir(path); ok {
		pkg, err := l.load(path, d)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// lookupDir resolves an import path against the module and the overlay.
func (l *Loader) lookupDir(path string) (string, bool) {
	if path == l.Module {
		return l.RootDir, true
	}
	if rest, ok := strings.CutPrefix(path, l.Module+"/"); ok {
		return filepath.Join(l.RootDir, filepath.FromSlash(rest)), true
	}
	for prefix, dir := range l.Overlay {
		if prefix == "" {
			// Catch-all root: every otherwise-unresolved path maps under
			// dir, GOPATH/src style. Standard-library paths must keep
			// resolving through the source importer, so only claim paths
			// whose directory actually exists.
			d := filepath.Join(dir, filepath.FromSlash(path))
			if st, err := os.Stat(d); err == nil && st.IsDir() {
				return d, true
			}
			continue
		}
		if path == prefix {
			return dir, true
		}
		if rest, ok := strings.CutPrefix(path, prefix+"/"); ok {
			return filepath.Join(dir, filepath.FromSlash(rest)), true
		}
	}
	return "", false
}

// LoadDir loads the package in the directory mapped to the given import
// path (which must resolve inside the module or the overlay).
func (l *Loader) LoadDir(path string) (*Package, error) {
	dir, ok := l.lookupDir(path)
	if !ok {
		return nil, fmt.Errorf("analysis: import path %q is outside the module", path)
	}
	return l.load(path, dir)
}

// load parses and type-checks one package directory, caching the result.
func (l *Loader) load(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("analysis: import cycle through %q", path)
		}
		return pkg, nil
	}
	l.pkgs[path] = nil // cycle marker
	names, err := goFilesIn(dir, l.IncludeTests)
	if err != nil {
		delete(l.pkgs, path)
		return nil, err
	}
	if len(names) == 0 {
		delete(l.pkgs, path)
		return nil, fmt.Errorf("analysis: no buildable Go files in %s", dir)
	}
	var files []*ast.File
	pkgName := ""
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			delete(l.pkgs, path)
			return nil, err
		}
		// External test packages (package foo_test) type-check separately;
		// keep the primary package only.
		if n := f.Name.Name; strings.HasSuffix(n, "_test") && !strings.HasSuffix(name, "_test.go") {
			continue
		}
		if strings.HasSuffix(f.Name.Name, "_test") {
			continue
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		}
		if f.Name.Name == pkgName {
			files = append(files, f)
		}
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:    l,
		FakeImportC: true,
		// Collect but tolerate soft errors so one bad file does not hide
		// findings in the rest of the package.
		Error: func(error) {},
	}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		delete(l.pkgs, path)
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Name:  pkgName,
		Fset:  l.Fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadPatterns expands the given package patterns ("./...", "./internal/lp",
// import paths) against the module and loads every matching package.
func (l *Loader) LoadPatterns(patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	seen := make(map[string]bool)
	var paths []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			paths = append(paths, p)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			dirs, err := l.moduleDirs()
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			base := strings.TrimSuffix(pat, "/...")
			basePath, err := l.patternPath(base)
			if err != nil {
				return nil, err
			}
			dirs, err := l.moduleDirs()
			if err != nil {
				return nil, err
			}
			for _, d := range dirs {
				if d == basePath || strings.HasPrefix(d, basePath+"/") {
					add(d)
				}
			}
		default:
			p, err := l.patternPath(pat)
			if err != nil {
				return nil, err
			}
			add(p)
		}
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.LoadDir(p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// patternPath turns one non-wildcard pattern into an import path.
func (l *Loader) patternPath(pat string) (string, error) {
	switch {
	case pat == "." || pat == "./":
		return l.Module, nil
	case strings.HasPrefix(pat, "./"):
		return l.Module + "/" + strings.TrimPrefix(pat, "./"), nil
	case pat == l.Module || strings.HasPrefix(pat, l.Module+"/"):
		return pat, nil
	default:
		return "", fmt.Errorf("analysis: pattern %q is outside module %s", pat, l.Module)
	}
}

// moduleDirs walks the module tree and returns the import paths of every
// directory holding buildable Go files, skipping testdata, vendor and
// hidden directories.
func (l *Loader) moduleDirs() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.RootDir, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.RootDir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFilesIn(p, false)
		if err != nil {
			return err
		}
		if len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.RootDir, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.Module)
		} else {
			paths = append(paths, l.Module+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	return paths, err
}

// goFilesIn lists the .go files of one directory in sorted order,
// excluding _test.go files unless tests is set.
func goFilesIn(dir string, tests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		if !tests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}
