package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strings"
)

// SentErr enforces the sentinel-error contract that PR 2 (ErrLPFailed) and
// PR 6 (ErrCanceled, ErrOverloaded) rely on: the solve path wraps these
// sentinels through several layers (lp → steady → service → HTTP), so a
// bare == comparison or a %v-formatted sentinel silently stops matching as
// soon as any layer adds context. Sentinels must be wrapped with %w and
// tested with errors.Is.
var SentErr = &Analyzer{
	Name: "senterr",
	Doc: "Package-level Err* sentinels must be wrapped with %w (not %v/%s) in " +
		"fmt.Errorf and matched with errors.Is, never compared with == or != or " +
		"switched on directly.",
	Run: runSentErr,
}

func runSentErr(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkSentinelCompare(pass, n)
			case *ast.SwitchStmt:
				checkSentinelSwitch(pass, n)
			case *ast.CallExpr:
				checkSentinelErrorf(pass, n)
			}
			return true
		})
	}
	return nil
}

// sentinelVar reports whether e resolves to a package-level exported-or-not
// variable of error type whose name starts with "Err".
func sentinelVar(pass *Pass, e ast.Expr) *types.Var {
	var obj types.Object
	switch x := unparen(e).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[x]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[x.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return nil
	}
	if !strings.HasPrefix(v.Name(), "Err") || !isErrorType(v.Type()) {
		return nil
	}
	return v
}

func checkSentinelCompare(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	for _, side := range []ast.Expr{be.X, be.Y} {
		if v := sentinelVar(pass, side); v != nil {
			pass.Reportf(be.Pos(),
				"sentinel %s compared with %s: wrapped errors never match; use errors.Is(err, %s)",
				v.Name(), be.Op, sentinelRef(pass, v))
			return
		}
	}
}

func checkSentinelSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	if t := pass.TypesInfo.Types[sw.Tag].Type; t == nil || !isErrorType(t) {
		return
	}
	for _, cl := range sw.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if v := sentinelVar(pass, e); v != nil {
				pass.Reportf(e.Pos(),
					"sentinel %s used as a switch case on an error value: wrapped errors never match; use errors.Is(err, %s)",
					v.Name(), sentinelRef(pass, v))
			}
		}
	}
}

// checkSentinelErrorf verifies that sentinels passed to fmt.Errorf are
// consumed by a %w verb, not %v/%s/%q.
func checkSentinelErrorf(pass *Pass, call *ast.CallExpr) {
	if !isPkgCall(pass.TypesInfo, call, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	verbs := formatVerbs(constant.StringVal(tv.Value))
	for i, arg := range call.Args[1:] {
		v := sentinelVar(pass, arg)
		if v == nil {
			continue
		}
		if i < len(verbs) && verbs[i] != 'w' {
			pass.Reportf(arg.Pos(),
				"sentinel %s formatted with %%%c: the chain breaks for errors.Is; wrap it with %%w",
				v.Name(), verbs[i])
		}
	}
}

// sentinelRef renders the sentinel the way the comparing package would
// spell it (pkg.ErrX across packages, ErrX within its own).
func sentinelRef(pass *Pass, v *types.Var) string {
	if v.Pkg() == pass.Pkg {
		return v.Name()
	}
	return v.Pkg().Name() + "." + v.Name()
}

// formatVerbs extracts the argument-consuming verbs of a format string in
// order. Width/precision stars consume arguments too and are returned as
// '*' entries; '%%' consumes nothing.
func formatVerbs(format string) []rune {
	var verbs []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		// flags, width, precision
		for i < len(format) {
			c := format[i]
			if c == '*' {
				verbs = append(verbs, '*')
				i++
				continue
			}
			if strings.ContainsRune("+-# 0123456789.", rune(c)) {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, rune(format[i]))
		}
	}
	return verbs
}
