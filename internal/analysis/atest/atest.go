// Package atest runs analyzers over fixture packages with analysistest-style
// expectations: fixture sources live under testdata/src/<path> (a GOPATH-like
// layout so fixtures can import each other) and mark every line where a
// finding is expected with a trailing comment of the form
//
//	// want "regexp"            one expected finding
//	// want "re1" "re2"         two expected findings on the same line
//
// Run loads the fixture package, applies the analyzer, and fails the test
// for every unmatched expectation and every unexpected diagnostic, so a
// fixture proves both directions: the rule fires where it must and stays
// quiet where it must not.
package atest

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// wantRe extracts the quoted regexps of one // want comment: double-quoted
// or backtick-quoted, the latter convenient for patterns full of escapes.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// Run applies the analyzer to the fixture package at
// testdata/src/<path> (relative to the caller's directory) and compares
// diagnostics against // want comments. Suppression directives
// (//lint:ignore) are honored, exactly as in the real driver.
func Run(t *testing.T, analyzer *analysis.Analyzer, path string) {
	t.Helper()
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatalf("atest: %v", err)
	}
	loader.Overlay = map[string]string{"": filepath.Join(testdata, "src")}
	pkg, err := loader.LoadDir(path)
	if err != nil {
		t.Fatalf("atest: loading fixture %s: %v", path, err)
	}
	diags, err := analysis.Run([]*analysis.Analyzer{analyzer}, []*analysis.Package{pkg})
	if err != nil {
		t.Fatalf("atest: running %s on %s: %v", analyzer.Name, path, err)
	}

	unmatched := collectWants(t, pkg.Dir)
	for _, d := range diags {
		k := lineKey{filepath.Base(d.Position.Filename), d.Position.Line}
		res := unmatched[k]
		matched := -1
		for i, re := range res {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", analyzer.Name, d)
			continue
		}
		unmatched[k] = append(res[:matched], res[matched+1:]...)
	}
	for k, res := range unmatched {
		for _, re := range res {
			t.Errorf("%s: %s:%d: expected diagnostic matching %q, got none",
				analyzer.Name, k.file, k.line, re)
		}
	}
}

// lineKey addresses one fixture source line.
type lineKey struct {
	file string
	line int
}

// collectWants parses every fixture file for // want comments.
func collectWants(t *testing.T, dir string) map[lineKey][]*regexp.Regexp {
	t.Helper()
	wants := make(map[lineKey][]*regexp.Regexp)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		full := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("atest: parse %s: %v", full, err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ")
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRe.FindAllStringSubmatch(rest, -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("atest: %s:%d: bad want regexp %q: %v", full, pos.Line, pat, err)
					}
					k := lineKey{e.Name(), pos.Line}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	return wants
}
