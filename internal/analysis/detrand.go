package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetRand enforces the determinism contract of the report-producing
// packages (PR 1's byte-identical sweep reports, PR 5's byte-identical load
// reports): no wall clocks, no global math/rand stream, RNGs constructed
// only through topology.NewRNG/DeriveSeed, and no map iteration whose
// order can escape into output.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "In deterministic packages (scenarios, topology, dynamic, load, stats, platform, obs, pack) " +
		"forbid time.Now/time.Since, the global math/rand functions and ad-hoc RNG " +
		"construction (use topology.NewRNG/DeriveSeed), and flag range-over-map loops " +
		"whose iteration order escapes un-sorted.",
	Run: runDetRand,
}

// detrandPackages are the packages whose outputs are pinned byte-identical
// by golden and determinism tests; matched by package name so fixture
// packages exercise the same rule.
var detrandPackages = map[string]bool{
	"scenarios": true,
	"topology":  true,
	"dynamic":   true,
	"load":      true,
	"stats":     true,
	"platform":  true,
	// pack decomposes LP rates into weighted tree packings whose JSON is
	// pinned byte-identical by determinism tests (same solution in, same
	// packing out), so it lives under the full contract.
	"pack": true,
	// obs produces the deterministic trace dumps (content-derived IDs,
	// ID-sorted snapshots); its single sanctioned wall-clock read — the
	// opt-in WallClock mode's timestamp source — carries a //lint:ignore
	// with its reason, exactly like load's wall-timing section.
	"obs": true,
}

// globalRandFuncs are the math/rand package-level functions that draw from
// the process-global, unseeded-by-default stream.
var globalRandFuncs = []string{
	"Int", "Intn", "Int31", "Int31n", "Int63", "Int63n",
	"Uint32", "Uint64", "Float32", "Float64",
	"NormFloat64", "ExpFloat64", "Perm", "Shuffle", "Read", "Seed",
}

func runDetRand(pass *Pass) error {
	if !detrandPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDetRandCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			}
			return true
		})
	}
	return nil
}

func checkDetRandCall(pass *Pass, call *ast.CallExpr) {
	switch {
	case isPkgCall(pass.TypesInfo, call, "time", "Now", "Since", "Until"):
		fn := calleeFunc(pass.TypesInfo, call)
		pass.Reportf(call.Pos(),
			"wall clock (time.%s) in deterministic package %q: timings must come from the seeded schedule, or carry //lint:ignore detrand for deliberate wall-time instrumentation",
			fn.Name(), pass.Pkg.Name())
	case isPkgCall(pass.TypesInfo, call, "math/rand", globalRandFuncs...):
		fn := calleeFunc(pass.TypesInfo, call)
		pass.Reportf(call.Pos(),
			"global math/rand stream (rand.%s) in deterministic package %q: draw from an explicit *rand.Rand seeded via topology.NewRNG/DeriveSeed",
			fn.Name(), pass.Pkg.Name())
	case isPkgCall(pass.TypesInfo, call, "math/rand", "New", "NewSource"),
		isPkgCall(pass.TypesInfo, call, "math/rand/v2", "New", "NewPCG", "NewChaCha8"):
		fn := calleeFunc(pass.TypesInfo, call)
		pass.Reportf(call.Pos(),
			"ad-hoc RNG construction (rand.%s) in deterministic package %q: construct streams through topology.NewRNG and derive sub-seeds with topology.DeriveSeed",
			fn.Name(), pass.Pkg.Name())
	}
}

// checkMapRange flags a range over a map unless every statement of the loop
// body is order-insensitive: writes into maps, commutative numeric
// accumulation, delete, or the collect-keys-then-sort idiom (an append to a
// slice that is passed to a sort function later in the same enclosing
// function).
func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	t := pass.TypesInfo.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	fnBody := enclosingFuncBody(file, rng.Pos())
	for _, stmt := range rng.Body.List {
		if !orderInsensitiveStmt(pass, stmt, fnBody, rng) {
			pass.Reportf(rng.Pos(),
				"map iteration order escapes in deterministic package %q: sort the keys first (or restrict the body to order-insensitive aggregation)",
				pass.Pkg.Name())
			return
		}
	}
}

// orderInsensitiveStmt classifies one loop-body statement.
func orderInsensitiveStmt(pass *Pass, stmt ast.Stmt, fnBody *ast.BlockStmt, rng *ast.RangeStmt) bool {
	switch s := stmt.(type) {
	case *ast.IncDecStmt:
		return true
	case *ast.ExprStmt:
		// delete(m, k) is order-insensitive; any other call may observe
		// order.
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" {
				if _, isFn := pass.TypesInfo.Uses[id].(*types.Func); !isFn {
					return true
				}
			}
		}
		return false
	case *ast.AssignStmt:
		return orderInsensitiveAssign(pass, s, fnBody, rng)
	case *ast.IfStmt:
		// Conditional aggregation (min/max tracking): the condition itself
		// is pure observation; require the branches to be
		// order-insensitive. Conditional min/max updates commute.
		for _, inner := range s.Body.List {
			if !orderInsensitiveStmt(pass, inner, fnBody, rng) {
				return false
			}
		}
		switch e := s.Else.(type) {
		case nil:
		case *ast.BlockStmt:
			for _, inner := range e.List {
				if !orderInsensitiveStmt(pass, inner, fnBody, rng) {
					return false
				}
			}
		case ast.Stmt:
			if !orderInsensitiveStmt(pass, e, fnBody, rng) {
				return false
			}
		}
		return true
	case *ast.BlockStmt:
		for _, inner := range s.List {
			if !orderInsensitiveStmt(pass, inner, fnBody, rng) {
				return false
			}
		}
		return true
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK
	default:
		return false
	}
}

func orderInsensitiveAssign(pass *Pass, s *ast.AssignStmt, fnBody *ast.BlockStmt, rng *ast.RangeStmt) bool {
	switch s.Tok.String() {
	case "+=", "-=", "*=":
		// Commutative accumulation — but string += concatenates in
		// iteration order.
		for _, lhs := range s.Lhs {
			if t := pass.TypesInfo.Types[lhs].Type; t != nil {
				if basic, ok := t.Underlying().(*types.Basic); !ok || basic.Info()&types.IsString != 0 {
					return false
				}
			}
		}
		return true
	case "=", ":=":
		// Two benign shapes: writing into a map index, and the
		// collect-then-sort idiom x = append(x, ...) with a later sort of x.
		for i, lhs := range s.Lhs {
			if idx, ok := unparen(lhs).(*ast.IndexExpr); ok {
				if t := pass.TypesInfo.Types[idx.X].Type; t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						continue
					}
				}
			}
			if i < len(s.Rhs) {
				if call, ok := unparen(s.Rhs[i]).(*ast.CallExpr); ok {
					if id, ok := unparen(call.Fun).(*ast.Ident); ok && id.Name == "append" {
						if target, ok := unparen(lhs).(*ast.Ident); ok && sortedLater(pass, fnBody, rng, target) {
							continue
						}
					}
				}
			}
			return false
		}
		return true
	default:
		return false
	}
}

// sortedLater reports whether, after the range statement, the enclosing
// function passes the identifier's object to a sort function
// (sort.Strings, sort.Ints, sort.Slice, sort.Sort, slices.Sort*, ...).
func sortedLater(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, target *ast.Ident) bool {
	if fnBody == nil {
		return false
	}
	obj := pass.TypesInfo.Uses[target]
	if obj == nil {
		obj = pass.TypesInfo.Defs[target]
	}
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := calleeFunc(pass.TypesInfo, call)
		if fn == nil {
			return true
		}
		if p := objPkgPath(fn); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			mentioned := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					mentioned = true
					return false
				}
				return true
			})
			if mentioned {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// enclosingFuncBody finds the body of the innermost function declaration or
// literal containing pos.
func enclosingFuncBody(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || pos < n.Pos() || pos >= n.End() {
			return n == file
		}
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				body = fn.Body
			}
		case *ast.FuncLit:
			body = fn.Body
		}
		return true
	})
	return body
}
