package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"
)

// LockGuard enforces mutex discipline on annotated fields: a struct field
// carrying a "// guarded by <mu>" comment (the service Engine's Stats
// counters and cache maps) may only be read or written while <mu> of the
// same base expression is held, via sync/atomic, inside a function whose
// name ends in "Locked", or inside a function annotated
// "// lockguard: holds <base>.<mu>". The check is a conservative lexical
// simulation of Lock/Unlock flow (branch-aware, defer-aware), not a full
// happens-before analysis — it exists to catch the easy, common regression:
// a new counter bump or map touch outside the critical section.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc: "Fields annotated '// guarded by <mu>' may only be accessed with that mutex " +
		"held (Lock/RLock on the same receiver), via sync/atomic, or from *Locked " +
		"functions / functions annotated '// lockguard: holds <mu>'.",
	Run: runLockGuard,
}

var (
	guardedByRe  = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)
	holdsRe      = regexp.MustCompile(`lockguard: holds ([A-Za-z_][A-Za-z0-9_.]*)`)
	lockMethods  = map[string]bool{"Lock": true, "RLock": true}
	unlockedVerb = map[string]bool{"Unlock": true, "RUnlock": true}
)

func runLockGuard(pass *Pass) error {
	guards := collectGuardedFields(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue
			}
			sim := &lockSim{pass: pass, guards: guards, sticky: map[string]bool{}}
			held := map[string]bool{}
			if fn.Doc != nil {
				for _, m := range holdsRe.FindAllStringSubmatch(fn.Doc.Text(), -1) {
					held[m[1]] = true
				}
			}
			sim.evalStmts(fn.Body.List, held)
		}
	}
	return nil
}

// collectGuardedFields maps struct-field objects to the name of the mutex
// field guarding them, from "guarded by <mu>" annotations in field doc or
// trailing comments.
func collectGuardedFields(pass *Pass) map[types.Object]string {
	guards := make(map[types.Object]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				guard := ""
				for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
					if cg == nil {
						continue
					}
					if m := guardedByRe.FindStringSubmatch(cg.Text()); m != nil {
						guard = m[1]
					}
				}
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = guard
					}
				}
			}
			return true
		})
	}
	return guards
}

// lockSim simulates held-mutex state through one function body. Mutexes are
// identified by the source rendering of their access path ("e.mu",
// "s.latMu"), which ties the guard to the same base object as the field
// access in every realistic method body.
type lockSim struct {
	pass   *Pass
	guards map[types.Object]string
	// sticky marks mutexes with a pending defer-Unlock: held until return.
	sticky map[string]bool
}

func (s *lockSim) evalStmts(stmts []ast.Stmt, held map[string]bool) (map[string]bool, bool) {
	for _, stmt := range stmts {
		var term bool
		held, term = s.evalStmt(stmt, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (s *lockSim) evalStmt(stmt ast.Stmt, held map[string]bool) (map[string]bool, bool) {
	switch st := stmt.(type) {
	case *ast.ExprStmt:
		if mu, verb := s.lockCall(st.X); mu != "" {
			if lockMethods[verb] {
				held[mu] = true
			} else {
				delete(held, mu)
			}
			return held, false
		}
		s.checkExpr(st.X, held)
		return held, false
	case *ast.DeferStmt:
		// defer mu.Unlock() (directly or inside a deferred closure) keeps
		// the mutex held for the rest of the function.
		ast.Inspect(st.Call, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				if mu, verb := s.lockCall(call); mu != "" && unlockedVerb[verb] {
					s.sticky[mu] = true
				}
			}
			return true
		})
		s.checkExpr(st.Call, held)
		return held, false
	case *ast.GoStmt:
		// The goroutine body runs without the caller's locks.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			s.unlocked().evalStmts(lit.Body.List, map[string]bool{})
		}
		for _, arg := range st.Call.Args {
			s.checkExpr(arg, held)
		}
		return held, false
	case *ast.AssignStmt, *ast.IncDecStmt, *ast.DeclStmt, *ast.SendStmt:
		s.checkNodeExprs(stmt, held)
		return held, false
	case *ast.ReturnStmt:
		s.checkNodeExprs(stmt, held)
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.LabeledStmt:
		return s.evalStmt(st.Stmt, held)
	case *ast.BlockStmt:
		return s.evalStmts(st.List, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held, _ = s.evalStmt(st.Init, held)
		}
		s.checkExpr(st.Cond, held)
		hBody, tBody := s.evalStmts(st.Body.List, copyHeld(held))
		hElse, tElse := copyHeld(held), false
		if st.Else != nil {
			hElse, tElse = s.evalStmt(st.Else, copyHeld(held))
		}
		switch {
		case tBody && tElse:
			return held, true
		case tBody:
			return hElse, false
		case tElse:
			return hBody, false
		default:
			return intersectHeld(hBody, hElse), false
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held, _ = s.evalStmt(st.Init, held)
		}
		if st.Cond != nil {
			s.checkExpr(st.Cond, held)
		}
		hBody, _ := s.evalStmts(st.Body.List, copyHeld(held))
		if st.Post != nil {
			s.evalStmt(st.Post, hBody)
		}
		return intersectHeld(held, hBody), false
	case *ast.RangeStmt:
		s.checkExpr(st.X, held)
		hBody, _ := s.evalStmts(st.Body.List, copyHeld(held))
		return intersectHeld(held, hBody), false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return s.evalBranches(stmt, held)
	default:
		s.checkNodeExprs(stmt, held)
		return held, false
	}
}

// evalBranches handles switch/type-switch/select conservatively: every
// clause is evaluated from the pre-state; the post-state is the
// intersection of the non-terminating clauses.
func (s *lockSim) evalBranches(stmt ast.Stmt, held map[string]bool) (map[string]bool, bool) {
	var clauses []ast.Stmt
	switch st := stmt.(type) {
	case *ast.SwitchStmt:
		if st.Init != nil {
			held, _ = s.evalStmt(st.Init, held)
		}
		if st.Tag != nil {
			s.checkExpr(st.Tag, held)
		}
		clauses = st.Body.List
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			held, _ = s.evalStmt(st.Init, held)
		}
		s.checkNodeExprs(st.Assign, held)
		clauses = st.Body.List
	case *ast.SelectStmt:
		clauses = st.Body.List
	}
	post := copyHeld(held)
	first := true
	for _, cl := range clauses {
		var body []ast.Stmt
		switch c := cl.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				s.checkExpr(e, held)
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm != nil {
				s.checkNodeExprs(c.Comm, held)
			}
			body = c.Body
		}
		hc, tc := s.evalStmts(body, copyHeld(held))
		if tc {
			continue
		}
		if first {
			post = hc
			first = false
		} else {
			post = intersectHeld(post, hc)
		}
	}
	return post, false
}

// lockCall recognizes <expr>.<mu>.Lock/Unlock/RLock/RUnlock() and returns
// the rendered mutex path and the verb.
func (s *lockSim) lockCall(e ast.Expr) (string, string) {
	call, ok := unparen(e).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	verb := sel.Sel.Name
	if !lockMethods[verb] && !unlockedVerb[verb] {
		return "", ""
	}
	// Require the receiver to be a sync (rw)mutex-ish value: a named type
	// with Lock/Unlock from package sync, or anything rendering as a
	// selector path. Rendering is what the guard match uses.
	return types.ExprString(sel.X), verb
}

// checkNodeExprs checks every expression hanging off a statement node.
func (s *lockSim) checkNodeExprs(stmt ast.Stmt, held map[string]bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			s.checkExpr(e, held)
			return false
		}
		return true
	})
}

// checkExpr reports guarded-field accesses in e that happen with the guard
// not held. Accesses routed through sync/atomic calls are allowed;
// function literals are simulated with no locks held (they may run later)
// unless immediately invoked, in which case they inherit the current state.
func (s *lockSim) checkExpr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeFunc(s.pass.TypesInfo, n); fn != nil && objPkgPath(fn) == "sync/atomic" {
				// Atomic access to a guarded field is explicitly allowed.
				return false
			}
			if lit, ok := n.Fun.(*ast.FuncLit); ok {
				// Immediately-invoked literal: runs here, inherits locks.
				s.evalStmts(lit.Body.List, copyHeld(held))
				for _, arg := range n.Args {
					s.checkExpr(arg, held)
				}
				return false
			}
			return true
		case *ast.FuncLit:
			// Escaping closure: assume it runs without the caller's locks.
			s.unlocked().evalStmts(n.Body.List, map[string]bool{})
			return false
		case *ast.SelectorExpr:
			s.checkSelector(n, held)
			return true
		}
		return true
	})
}

// checkSelector reports the access if n selects a guarded field whose
// mutex is not currently held.
func (s *lockSim) checkSelector(n *ast.SelectorExpr, held map[string]bool) {
	obj := s.pass.TypesInfo.Uses[n.Sel]
	if obj == nil {
		if sel := s.pass.TypesInfo.Selections[n]; sel != nil {
			obj = sel.Obj()
		}
	}
	guard, ok := s.guards[obj]
	if !ok {
		return
	}
	mu := types.ExprString(n.X) + "." + guard
	if held[mu] || s.sticky[mu] {
		return
	}
	s.pass.Reportf(n.Pos(),
		"field %s is guarded by %s but accessed without holding it (lock %s, use sync/atomic, or mark the function '// lockguard: holds %s')",
		types.ExprString(n), mu, mu, mu)
}

// unlocked returns a simulator for code that escapes the current critical
// section (goroutines, stored closures): same guards, but the enclosing
// function's pending defer-Unlocks do not apply there.
func (s *lockSim) unlocked() *lockSim {
	return &lockSim{pass: s.pass, guards: s.guards, sticky: map[string]bool{}}
}

func copyHeld(h map[string]bool) map[string]bool {
	c := make(map[string]bool, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func intersectHeld(a, b map[string]bool) map[string]bool {
	c := make(map[string]bool)
	for k := range a {
		if b[k] {
			c[k] = true
		}
	}
	return c
}
