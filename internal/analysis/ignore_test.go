package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// loadFixture loads one fixture package from testdata/src.
func loadFixture(t *testing.T, path string) *analysis.Package {
	t.Helper()
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	testdata, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	loader.Overlay = map[string]string{"": filepath.Join(testdata, "src")}
	pkg, err := loader.LoadDir(path)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", path, err)
	}
	return pkg
}

// TestSuppressionDirectives drives the ignorecase fixture (package name
// "stats", so detrand is in scope) through the real driver and checks each
// directive's effect: a valid line ignore suppresses, a file-ignore
// suppresses the whole file, a malformed directive suppresses nothing and
// is itself reported.
func TestSuppressionDirectives(t *testing.T) {
	pkg := loadFixture(t, "ignorecase/ign")
	diags, err := analysis.Run([]*analysis.Analyzer{analysis.DetRand}, []*analysis.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}

	type finding struct {
		file     string
		analyzer string
		substr   string
	}
	want := []finding{
		// Malformed directive reported by the driver itself.
		{"ign.go", "lint", "malformed //lint:ignore directive"},
		// Unsuppressed control finding.
		{"ign.go", "detrand", "time.Now"},
		// The malformed ignore must not suppress: its time.Now is reported.
		{"ign.go", "detrand", "time.Now"},
	}
	if len(diags) != len(want) {
		for _, d := range diags {
			t.Logf("got: %s", d)
		}
		t.Fatalf("got %d diagnostics, want %d", len(diags), len(want))
	}
	matched := make([]bool, len(want))
	for _, d := range diags {
		ok := false
		for i, w := range want {
			if matched[i] {
				continue
			}
			if filepath.Base(d.Position.Filename) == w.file &&
				d.Analyzer == w.analyzer &&
				strings.Contains(d.Message, w.substr) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, d := range diags {
		if filepath.Base(d.Position.Filename) == "fileignored.go" {
			t.Errorf("file-ignore did not suppress: %s", d)
		}
	}
}

// TestLoadPatterns checks the wildcard expansion the CLI driver relies on.
func TestLoadPatterns(t *testing.T) {
	loader, err := analysis.NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.LoadPatterns("./internal/analysis/...")
	if err != nil {
		t.Fatal(err)
	}
	paths := make(map[string]bool)
	for _, p := range pkgs {
		paths[p.Path] = true
	}
	for _, want := range []string{"repro/internal/analysis", "repro/internal/analysis/atest"} {
		if !paths[want] {
			t.Errorf("pattern ./internal/analysis/... did not load %s (got %v)", want, paths)
		}
	}

	if _, err := loader.LoadPatterns("github.com/elsewhere/pkg"); err == nil {
		t.Error("expected error for a pattern outside the module")
	}
}

// TestRunSortsDiagnostics pins the deterministic output order the CI gate
// depends on for stable diffs.
func TestRunSortsDiagnostics(t *testing.T) {
	pkg := loadFixture(t, "detrand/scenarios")
	diags, err := analysis.Run(analysis.All(), []*analysis.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) < 2 {
		t.Fatalf("expected multiple findings in the detrand fixture, got %d", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1].Position, diags[i].Position
		if a.Filename > b.Filename || (a.Filename == b.Filename && a.Line > b.Line) {
			t.Errorf("diagnostics out of order: %s before %s", diags[i-1], diags[i])
		}
	}
}
