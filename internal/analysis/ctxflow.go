package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces PR 6's cancellation contract on the service hot path: in
// internal/service, internal/steady and internal/lp, a function that
// receives a context.Context must thread it all the way down — it must not
// mint context.Background()/context.TODO(), and it must not call the
// context-free variant of a callee that has a *Context sibling. Without
// this, one refactor can silently make a solve path uncancelable and the
// deadline/admission contract (429/504 behavior) rots.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "In internal/service, internal/steady and internal/lp, functions receiving a " +
		"context.Context must pass it on: no context.Background()/TODO() in their bodies " +
		"and no calling X(...) where an XContext(ctx, ...) sibling exists.",
	Run: runCtxFlow,
}

// ctxflowPackages are the packages forming the cancelable solve path,
// matched by package name so fixtures exercise the same rule.
var ctxflowPackages = map[string]bool{
	"service": true,
	"steady":  true,
	"lp":      true,
}

func runCtxFlow(pass *Pass) error {
	if !ctxflowPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if !funcReceivesContext(pass, fn.Type) {
				continue
			}
			checkCtxBody(pass, fn.Body)
		}
	}
	return nil
}

// funcReceivesContext reports whether the function type declares a
// parameter of type context.Context.
func funcReceivesContext(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if t := pass.TypesInfo.Types[field.Type].Type; isContextType(t) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// checkCtxBody walks one context-receiving function body. Function
// literals that declare their own context parameter start a fresh scope
// (they are a new context-receiving function); literals that do not are
// still part of the enclosing flow — background goroutines that must
// outlive the request annotate their Background() with //lint:ignore
// ctxflow and a reason, which keeps the decision visible at the call site.
func checkCtxBody(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			// The documented nil-defaulting idiom of the exported
			// back-compat wrappers is fine: the context is not dropped, a
			// missing one is substituted.
			//
			//	if ctx == nil { ctx = context.Background() }
			if isNilCtxDefault(pass, n) {
				return false
			}
		case *ast.FuncLit:
			if funcReceivesContext(pass, n.Type) {
				checkCtxBody(pass, n.Body)
				return false
			}
			return true
		case *ast.CallExpr:
			checkCtxCall(pass, n)
		}
		return true
	})
}

// isNilCtxDefault matches "if c == nil { c = context.Background() }" (or
// TODO) for a context-typed variable c.
func isNilCtxDefault(pass *Pass, ifs *ast.IfStmt) bool {
	cond, ok := unparen(ifs.Cond).(*ast.BinaryExpr)
	if !ok || cond.Op.String() != "==" || ifs.Else != nil || len(ifs.Body.List) != 1 {
		return false
	}
	var ctxIdent *ast.Ident
	for x, y := range map[ast.Expr]ast.Expr{cond.X: cond.Y, cond.Y: cond.X} {
		if id, ok := unparen(x).(*ast.Ident); ok && id.Name == "nil" {
			if c, ok := unparen(y).(*ast.Ident); ok && isContextType(pass.TypesInfo.Types[y].Type) {
				ctxIdent = c
			}
		}
	}
	if ctxIdent == nil {
		return false
	}
	asg, ok := ifs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	lhs, ok := unparen(asg.Lhs[0]).(*ast.Ident)
	if !ok || pass.TypesInfo.Uses[lhs] != pass.TypesInfo.Uses[ctxIdent] {
		return false
	}
	call, ok := unparen(asg.Rhs[0]).(*ast.CallExpr)
	return ok && isPkgCall(pass.TypesInfo, call, "context", "Background", "TODO")
}

func checkCtxCall(pass *Pass, call *ast.CallExpr) {
	if isPkgCall(pass.TypesInfo, call, "context", "Background", "TODO") {
		fn := calleeFunc(pass.TypesInfo, call)
		pass.Reportf(call.Pos(),
			"context.%s() inside a function that receives a ctx: thread the caller's context so the solve path stays cancelable",
			fn.Name())
		return
	}
	fn := calleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Name() == "" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	// Callee already takes a context? Then the context.Background check
	// above (applied to the argument expression during the walk) covers it.
	if sigTakesContext(sig) {
		return
	}
	if sibling := contextSibling(pass, call, fn, sig); sibling != "" {
		pass.Reportf(call.Pos(),
			"call to %s drops the caller's context: use %s(ctx, ...) so cancellation reaches the callee",
			fn.Name(), sibling)
	}
}

// sigTakesContext reports whether the signature's first parameter is a
// context.Context.
func sigTakesContext(sig *types.Signature) bool {
	return sig.Params() != nil && sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}

// contextSibling returns the name of a <fn.Name()>Context sibling taking a
// leading context.Context — a method on the same receiver type, or a
// function in the same package — or "" if none exists.
func contextSibling(pass *Pass, call *ast.CallExpr, fn *types.Func, sig *types.Signature) string {
	name := fn.Name() + "Context"
	if recv := sig.Recv(); recv != nil {
		obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), name)
		if m, ok := obj.(*types.Func); ok {
			if msig, ok := m.Type().(*types.Signature); ok && sigTakesContext(msig) {
				return name
			}
		}
		return ""
	}
	if fn.Pkg() == nil {
		return ""
	}
	if obj := fn.Pkg().Scope().Lookup(name); obj != nil {
		if m, ok := obj.(*types.Func); ok {
			if msig, ok := m.Type().(*types.Signature); ok && sigTakesContext(msig) {
				return name
			}
		}
	}
	return ""
}
