// Package analysis is the repository's static-analysis framework: a
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// surface (Analyzer, Pass, Diagnostic) plus a package loader built entirely
// on the standard library's go/parser, go/types and source importer, so the
// lint suite builds offline with no module downloads.
//
// The package ships four analyzers that encode the repository's load-bearing
// invariants as machine-checked rules (see docs/ARCHITECTURE.md, "Enforced
// invariants"):
//
//   - detrand: deterministic packages (scenarios, topology, dynamic, load,
//     stats, platform) must not read wall clocks or the global math/rand
//     stream, must construct RNGs through topology.NewRNG/DeriveSeed, and
//     must not let map iteration order escape into reports, JSON or hashes.
//   - ctxflow: in internal/service, internal/steady and internal/lp a
//     function that receives a context.Context must thread it — no
//     context.Background()/TODO() inside, and no calling X when an
//     XContext sibling exists.
//   - lockguard: struct fields annotated "// guarded by <mu>" (the service
//     Stats counters and cache maps) may only be accessed with that mutex
//     held or through sync/atomic.
//   - senterr: sentinel errors (ErrCanceled, ErrLPFailed, ErrOverloaded,
//     ...) must be wrapped with %w and matched with errors.Is, never
//     compared with == or formatted with %v.
//
// Deliberate exceptions are annotated in the source with
// "//lint:ignore <analyzer> <reason>" on (or immediately above) the
// offending line, or "//lint:file-ignore <analyzer> <reason>" anywhere in a
// file; the driver drops suppressed diagnostics after analysis. cmd/bcast-lint
// is the multichecker binary that runs the whole suite over the module; the
// atest subpackage runs analyzers over testdata fixtures with
// analysistest-style "// want" expectations.
package analysis
