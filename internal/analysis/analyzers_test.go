package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/atest"
)

// Each analyzer is exercised against a violating fixture (every rule fires
// where a // want comment says so, and nowhere else) and a conforming one
// (the same constructs outside the rule's scope produce nothing). Removing
// an analyzer's rule makes the corresponding fixture fail with unmatched
// expectations, so these suites pin the rules themselves, not just the
// plumbing.

func TestDetRandFixture(t *testing.T) {
	atest.Run(t, analysis.DetRand, "detrand/scenarios")
}

func TestDetRandConformingPackage(t *testing.T) {
	atest.Run(t, analysis.DetRand, "detrand/other")
}

func TestDetRandObsFixture(t *testing.T) {
	atest.Run(t, analysis.DetRand, "detrand/obs")
}

func TestDetRandPackFixture(t *testing.T) {
	atest.Run(t, analysis.DetRand, "detrand/pack")
}

func TestCtxFlowFixture(t *testing.T) {
	atest.Run(t, analysis.CtxFlow, "ctxflow/service")
}

func TestCtxFlowConformingPackage(t *testing.T) {
	atest.Run(t, analysis.CtxFlow, "ctxflow/other")
}

func TestLockGuardFixture(t *testing.T) {
	atest.Run(t, analysis.LockGuard, "lockguard/cache")
}

func TestSentErrFixture(t *testing.T) {
	atest.Run(t, analysis.SentErr, "senterr/use")
}

func TestSentErrDefiningPackageClean(t *testing.T) {
	atest.Run(t, analysis.SentErr, "senterr/sent")
}
