package scenarios

import (
	"bytes"
	"encoding/json"
	"sort"
	"testing"
)

// testSize returns a small size supported by the scenario, used to keep the
// exhaustive scenario x heuristic tests fast.
func testSize(s Scenario) int {
	size := 12
	if size < s.MinSize {
		size = s.MinSize
	}
	return size
}

func TestNamesSortedAndRegistered(t *testing.T) {
	names := Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	want := []string{
		NameHomogeneous, NameClusters, NameTiers, NameStar, NameChain,
		NameRing, NameGrid, NameRandomSparse, NameRandomDense, NameLastMile,
	}
	if len(names) < len(want) {
		t.Fatalf("registry has %d scenarios, want at least %d", len(names), len(want))
	}
	for _, name := range want {
		if _, err := Get(name); err != nil {
			t.Errorf("built-in scenario %q missing: %v", name, err)
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("no-such-family"); err == nil {
		t.Fatal("Get(unknown) succeeded, want error")
	}
}

func TestRegisterRejectsDuplicatesAndInvalid(t *testing.T) {
	s, err := Get(NameStar)
	if err != nil {
		t.Fatal(err)
	}
	if err := Register(s); err == nil {
		t.Error("re-registering an existing name succeeded, want error")
	}
	if err := Register(Scenario{Name: "x"}); err == nil {
		t.Error("registering a scenario without generator succeeded, want error")
	}
	if err := Register(Scenario{Name: "", Generate: s.Generate, MinSize: 2, DefaultSizes: []int{4}}); err == nil {
		t.Error("registering an unnamed scenario succeeded, want error")
	}
}

func TestGenerateExactSizeAndValid(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			for _, size := range []int{testSize(s), s.DefaultSizes[0]} {
				p, err := s.Generate(size, 42)
				if err != nil {
					t.Fatalf("Generate(%d, 42): %v", size, err)
				}
				if p.NumNodes() != size {
					t.Errorf("Generate(%d) produced %d nodes", size, p.NumNodes())
				}
				if err := p.Validate(0); err != nil {
					t.Errorf("Generate(%d) platform invalid: %v", size, err)
				}
			}
		})
	}
}

func TestGenerateBelowMinSizeFails(t *testing.T) {
	for _, s := range All() {
		if s.MinSize <= 2 {
			continue
		}
		if _, err := s.Generate(s.MinSize-1, 1); err == nil {
			t.Errorf("%s: Generate(%d) below MinSize %d succeeded", s.Name, s.MinSize-1, s.MinSize)
		}
	}
}

// TestGenerateDeterministic checks the core registry contract: the same
// (size, seed) pair yields a byte-identical platform.
func TestGenerateDeterministic(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			size := testSize(s)
			a, err := s.Generate(size, 7)
			if err != nil {
				t.Fatal(err)
			}
			b, err := s.Generate(size, 7)
			if err != nil {
				t.Fatal(err)
			}
			aj, err := json.Marshal(a)
			if err != nil {
				t.Fatal(err)
			}
			bj, err := json.Marshal(b)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(aj, bj) {
				t.Errorf("same seed produced different platforms:\n%s\n%s", aj, bj)
			}
		})
	}
}

// TestGenerateSeedSensitivity checks that randomized families actually use
// the seed.
func TestGenerateSeedSensitivity(t *testing.T) {
	for _, name := range []string{NameRandomSparse, NameLastMile, NameTiers, NameClusters} {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		size := testSize(s)
		a, err := s.Generate(size, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := s.Generate(size, 2)
		if err != nil {
			t.Fatal(err)
		}
		aj, _ := json.Marshal(a)
		bj, _ := json.Marshal(b)
		if bytes.Equal(aj, bj) {
			t.Errorf("%s: seeds 1 and 2 produced identical platforms", name)
		}
	}
}

func TestGridDims(t *testing.T) {
	cases := []struct{ size, rows, cols int }{
		{4, 2, 2}, {9, 3, 3}, {12, 3, 4}, {16, 4, 4}, {13, 1, 13}, {36, 6, 6},
	}
	for _, c := range cases {
		rows, cols := gridDims(c.size)
		if rows != c.rows || cols != c.cols {
			t.Errorf("gridDims(%d) = %dx%d, want %dx%d", c.size, rows, cols, c.rows, c.cols)
		}
	}
}

func TestUnitSeedStableAndDistinct(t *testing.T) {
	a := UnitSeed(1, "star", 10, 0)
	if a != UnitSeed(1, "star", 10, 0) {
		t.Fatal("UnitSeed not deterministic")
	}
	seen := map[int64]string{}
	for _, scenario := range []string{"star", "chain"} {
		for _, size := range []int{10, 20} {
			for rep := 0; rep < 3; rep++ {
				s := UnitSeed(1, scenario, size, rep)
				if s <= 0 {
					t.Errorf("UnitSeed(%s,%d,%d) = %d, want positive", scenario, size, rep, s)
				}
				key := ""
				if prev, ok := seen[s]; ok {
					key = prev
				}
				if key != "" {
					t.Errorf("seed collision between %s and (%s,%d,%d)", key, scenario, size, rep)
				}
				seen[s] = scenario
			}
		}
	}
}
