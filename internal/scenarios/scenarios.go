package scenarios

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/dynamic"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/topology"
)

// multiPortFraction is the per-send overhead fraction applied by every
// built-in family (the paper's experiments use 80% of the fastest outgoing
// link).
const multiPortFraction = 0.8

// Generator produces a platform with exactly size nodes from a seed. It must
// be deterministic: the same (size, seed) pair yields an identical platform.
type Generator func(size int, seed int64) (*platform.Platform, error)

// Scenario is one named platform family.
type Scenario struct {
	// Name is the registry key (kebab-case, stable across releases).
	Name string
	// Description is a one-line human-readable summary.
	Description string
	// MinSize is the smallest node count the generator supports.
	MinSize int
	// DefaultSizes are the sizes swept when the caller does not specify any.
	DefaultSizes []int
	// LargeSizes is the family's large-scale sweep tier: sizes beyond the
	// defaults that the generator supports with a link count that keeps the
	// master LP tractable, intended to be swept with the revised-simplex
	// master (SweepConfig.RevisedLP). Empty means the family has no large
	// tier — e.g. the complete graph or the dense random family, whose link
	// counts (and so LP column counts) grow quadratically with size.
	LargeSizes []int
	// Generate builds a platform of the given size from the seed.
	Generate Generator
	// ChurnProfile names the dynamic churn profile of the family (see
	// dynamic.ProfileNames); empty means dynamic.DefaultProfile. Fragile
	// topologies (chains, stars) use the pure-drift profile, hierarchical
	// ones the failure-heavy profile. The churn trace is part of the
	// registry contract: the same (size, seed) pair always yields a
	// byte-identical timeline (see ChurnTrace).
	ChurnProfile string
	// DefaultTraceEvents is the default churn-trace length of the family
	// (0 means DefaultChurnEvents).
	DefaultTraceEvents int
}

// DefaultChurnEvents is the trace length used when neither the sweep nor
// the scenario specifies one.
const DefaultChurnEvents = 40

// EffectiveChurnProfile returns the family's churn profile name,
// substituting the default for an empty one.
func (s Scenario) EffectiveChurnProfile() string {
	if s.ChurnProfile == "" {
		return dynamic.DefaultProfile
	}
	return s.ChurnProfile
}

// EffectiveTraceEvents returns the family's default churn-trace length,
// substituting DefaultChurnEvents for zero.
func (s Scenario) EffectiveTraceEvents() int {
	if s.DefaultTraceEvents <= 0 {
		return DefaultChurnEvents
	}
	return s.DefaultTraceEvents
}

// ChurnTraceSeed derives the trace seed of a platform seed, so that a
// platform and its churn timeline form one reproducible unit.
func ChurnTraceSeed(platformSeed int64) int64 {
	return topology.DeriveSeed(platformSeed, "churn")
}

// ChurnTrace generates the scenario's platform at the given size together
// with its deterministic churn timeline: the same (size, seed) pair yields
// a byte-identical platform and trace. The source is the broadcast source
// the trace maintains reachability for.
func ChurnTrace(s Scenario, size, source int, seed int64) (*platform.Platform, *dynamic.Trace, error) {
	p, err := s.Generate(size, seed)
	if err != nil {
		return nil, nil, err
	}
	prof, err := dynamic.ProfileByName(s.EffectiveChurnProfile())
	if err != nil {
		return nil, nil, err
	}
	tr, err := dynamic.GenerateTrace(p, source, prof, s.EffectiveTraceEvents(), ChurnTraceSeed(seed))
	if err != nil {
		return nil, nil, err
	}
	return p, tr, nil
}

// validate checks that the scenario can be registered.
func (s Scenario) validate() error {
	if s.Name == "" {
		return fmt.Errorf("scenarios: empty scenario name")
	}
	if s.Generate == nil {
		return fmt.Errorf("scenarios: scenario %q has no generator", s.Name)
	}
	if s.MinSize < 2 {
		return fmt.Errorf("scenarios: scenario %q must support at least 2 nodes", s.Name)
	}
	if len(s.DefaultSizes) == 0 {
		return fmt.Errorf("scenarios: scenario %q has no default sizes", s.Name)
	}
	for _, sz := range s.DefaultSizes {
		if sz < s.MinSize {
			return fmt.Errorf("scenarios: scenario %q default size %d below minimum %d", s.Name, sz, s.MinSize)
		}
	}
	for _, sz := range s.LargeSizes {
		if sz < s.MinSize {
			return fmt.Errorf("scenarios: scenario %q large size %d below minimum %d", s.Name, sz, s.MinSize)
		}
	}
	if s.ChurnProfile != "" {
		if _, err := dynamic.ProfileByName(s.ChurnProfile); err != nil {
			return fmt.Errorf("scenarios: scenario %q: %w", s.Name, err)
		}
	}
	if s.DefaultTraceEvents < 0 {
		return fmt.Errorf("scenarios: scenario %q has negative default trace length %d", s.Name, s.DefaultTraceEvents)
	}
	return nil
}

var (
	mu       sync.RWMutex
	registry = make(map[string]Scenario)
)

// Register adds a scenario to the registry. Registering a name twice is an
// error; it is safe for concurrent use.
func Register(s Scenario) error {
	if err := s.validate(); err != nil {
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := registry[s.Name]; ok {
		return fmt.Errorf("scenarios: scenario %q already registered", s.Name)
	}
	registry[s.Name] = s
	return nil
}

// MustRegister is Register that panics on error (used for built-ins).
func MustRegister(s Scenario) {
	if err := Register(s); err != nil {
		panic(err)
	}
}

// Names returns the registered scenario names in sorted order.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Get returns the scenario registered under the given name.
func Get(name string) (Scenario, error) {
	mu.RLock()
	s, ok := registry[name]
	mu.RUnlock()
	if !ok {
		return Scenario{}, fmt.Errorf("scenarios: unknown scenario %q (registered: %v)", name, Names())
	}
	return s, nil
}

// All returns every registered scenario in Names order.
func All() []Scenario {
	names := Names()
	out := make([]Scenario, 0, len(names))
	for _, name := range names {
		s, _ := Get(name)
		out = append(out, s)
	}
	return out
}

// rng returns the deterministic random stream of a generation.
func rng(seed int64) *rand.Rand { return topology.NewRNG(seed) }

// pair adds a bidirectional pair of links between a and b, each direction
// drawing an independent cost from the distribution (the convention used by
// all of the repository's topology generators).
func pair(p *platform.Platform, a, b int, d topology.BandwidthDist, r *rand.Rand) {
	p.MustAddLink(a, b, d.Cost(r))
	p.MustAddLink(b, a, d.Cost(r))
}

// RandomDensity returns the family of Table-2 random platforms at the given
// link density. The multi-port overhead fraction parameterises the per-send
// overhead derivation (0 disables it).
func RandomDensity(density, mpFraction float64) Scenario {
	return Scenario{
		Name:         fmt.Sprintf("random-d%.2f", density),
		Description:  fmt.Sprintf("random heterogeneous platform, density %.2f (paper Table 2)", density),
		MinSize:      2,
		DefaultSizes: []int{10, 20, 30, 40, 50},
		ChurnProfile: dynamic.ProfileDrift,
		Generate: func(size int, seed int64) (*platform.Platform, error) {
			cfg := topology.DefaultRandomConfig(size, density)
			cfg.MultiPortFraction = mpFraction
			return topology.Random(cfg, rng(seed))
		},
	}
}

// FromTiersConfig returns a scenario generating Tiers-like platforms from
// the given configuration, with TotalNodes overridden by the requested size.
func FromTiersConfig(name, description string, cfg topology.TiersConfig) Scenario {
	core := cfg.WANNodes + cfg.WANNodes*cfg.MANNodesPerWAN
	if core < 2 {
		core = 2
	}
	return Scenario{
		Name:         name,
		Description:  description,
		MinSize:      core,
		DefaultSizes: []int{30, 65},
		ChurnProfile: dynamic.ProfileFailures,
		Generate: func(size int, seed int64) (*platform.Platform, error) {
			c := cfg
			c.TotalNodes = size
			return topology.Tiers(c, rng(seed))
		},
	}
}

// scaledTiers generates a Tiers-like internet topology whose WAN/MAN core
// grows with the requested size.
func scaledTiers(size int, seed int64) (*platform.Platform, error) {
	if size < 8 {
		return nil, fmt.Errorf("scenarios: tiers needs at least 8 nodes, got %d", size)
	}
	wan := size / 8
	if wan < 2 {
		wan = 2
	}
	if wan > 12 {
		wan = 12
	}
	cfg := topology.TiersConfig{
		TotalNodes:        size,
		WANNodes:          wan,
		MANNodesPerWAN:    2,
		WANRedundancy:     wan / 2,
		MANRedundancy:     1,
		ExtraLinks:        size / 4,
		Bandwidth:         topology.PaperBandwidth,
		WANScale:          1,
		MANScale:          1,
		LANScale:          1,
		SliceSize:         platform.DefaultSliceSize,
		MultiPortFraction: multiPortFraction,
	}
	return topology.Tiers(cfg, rng(seed))
}

// homogeneousCluster generates a complete graph with identical link
// bandwidths: the classic homogeneous cluster on which all reasonable
// broadcast trees perform alike. The seed is accepted for interface
// uniformity but the platform carries no randomness.
func homogeneousCluster(size int, seed int64) (*platform.Platform, error) {
	if size < 2 {
		return nil, fmt.Errorf("scenarios: homogeneous cluster needs at least 2 nodes, got %d", size)
	}
	_ = seed
	p := platform.New(size)
	cost := model.FromBandwidth(100)
	for u := 0; u < size; u++ {
		p.SetNode(u, platform.Node{Name: fmt.Sprintf("P%d", u)})
		for v := u + 1; v < size; v++ {
			p.MustAddLink(u, v, cost)
			p.MustAddLink(v, u, cost)
		}
	}
	p.DeriveMultiPortOverheads(multiPortFraction)
	return p, nil
}

// clusterOfClusters generates a hierarchical platform: clusters with fast
// star-shaped internals whose front-ends are connected by a slow backbone
// chain. Unlike topology.Clusters it produces exactly size nodes by spreading
// the remainder across the first clusters.
func clusterOfClusters(size int, seed int64) (*platform.Platform, error) {
	if size < 4 {
		return nil, fmt.Errorf("scenarios: cluster-of-clusters needs at least 4 nodes, got %d", size)
	}
	r := rng(seed)
	clusters := size / 8
	if clusters < 2 {
		clusters = 2
	}
	if clusters > 8 {
		clusters = 8
	}
	intra := topology.BandwidthDist{Mean: 1000, StdDev: 100, Min: 100}
	inter := topology.BandwidthDist{Mean: 100, StdDev: 20, Min: 10}
	p := platform.New(size)
	frontends := make([]int, 0, clusters)
	start := 0
	for c := 0; c < clusters; c++ {
		count := size / clusters
		if c < size%clusters {
			count++
		}
		fe := start
		frontends = append(frontends, fe)
		p.SetNode(fe, platform.Node{Name: fmt.Sprintf("frontend%d", c)})
		for i := 1; i < count; i++ {
			p.SetNode(start+i, platform.Node{Name: fmt.Sprintf("c%dn%d", c, i)})
			pair(p, fe, start+i, intra, r)
		}
		start += count
	}
	for i := 0; i+1 < len(frontends); i++ {
		pair(p, frontends[i], frontends[i+1], inter, r)
	}
	p.DeriveMultiPortOverheads(multiPortFraction)
	return p, nil
}

// lastMile generates a bandwidth-skewed platform: a small fast core (full
// mesh) serving edge hosts over slow, asymmetric access links (fast
// downstream, much slower upstream), the shape of internet "last-mile"
// deployments.
func lastMile(size int, seed int64) (*platform.Platform, error) {
	if size < 4 {
		return nil, fmt.Errorf("scenarios: last-mile needs at least 4 nodes, got %d", size)
	}
	r := rng(seed)
	core := size / 4
	if core < 2 {
		core = 2
	}
	coreBW := topology.BandwidthDist{Mean: 1000, StdDev: 100, Min: 100}
	down := topology.BandwidthDist{Mean: 100, StdDev: 30, Min: 5}
	up := topology.BandwidthDist{Mean: 20, StdDev: 8, Min: 1}
	p := platform.New(size)
	for u := 0; u < core; u++ {
		p.SetNode(u, platform.Node{Name: fmt.Sprintf("core%d", u)})
		for v := u + 1; v < core; v++ {
			pair(p, u, v, coreBW, r)
		}
	}
	for h := core; h < size; h++ {
		gw := r.Intn(core)
		p.SetNode(h, platform.Node{Name: fmt.Sprintf("host%d", h)})
		p.MustAddLink(gw, h, down.Cost(r))
		p.MustAddLink(h, gw, up.Cost(r))
	}
	p.DeriveMultiPortOverheads(multiPortFraction)
	return p, nil
}

// gridDims returns the most square rows x cols factorisation of size
// (rows <= cols, rows the largest divisor not exceeding sqrt(size)). Prime
// sizes degenerate to a 1 x size line, which is still a valid grid.
func gridDims(size int) (rows, cols int) {
	rows = 1
	for d := 2; d <= int(math.Sqrt(float64(size))); d++ {
		if size%d == 0 {
			rows = d
		}
	}
	return rows, size / rows
}

// withOverheads wraps a topology helper so every generated platform carries
// the standard multi-port overheads.
func withOverheads(gen func(size int, r *rand.Rand) (*platform.Platform, error)) Generator {
	return func(size int, seed int64) (*platform.Platform, error) {
		p, err := gen(size, rng(seed))
		if err != nil {
			return nil, err
		}
		p.DeriveMultiPortOverheads(multiPortFraction)
		return p, nil
	}
}

// Built-in family names.
const (
	NameHomogeneous  = "homogeneous-cluster"
	NameClusters     = "cluster-of-clusters"
	NameTiers        = "tiers"
	NameStar         = "star"
	NameChain        = "chain"
	NameRing         = "ring"
	NameGrid         = "grid"
	NameRandomSparse = "random-sparse"
	NameRandomDense  = "random-dense"
	NameLastMile     = "last-mile"
)

func init() {
	sparse := RandomDensity(0.08, multiPortFraction)
	sparse.Name = NameRandomSparse
	sparse.Description = "sparse random heterogeneous platform (density 0.08, paper Table 2)"
	dense := RandomDensity(0.35, multiPortFraction)
	dense.Name = NameRandomDense
	dense.Description = "dense random heterogeneous platform (density 0.35)"

	for _, s := range []Scenario{
		{
			Name:         NameHomogeneous,
			Description:  "complete graph with identical link bandwidths",
			MinSize:      2,
			DefaultSizes: []int{8, 16, 32},
			ChurnProfile: dynamic.ProfileFlakyLinks,
			Generate:     homogeneousCluster,
		},
		{
			Name:        NameClusters,
			Description: "fast clusters joined by a slow backbone chain",
			MinSize:     4,
			// The 96-node point became affordable when the steady-state
			// master LP gained warm starts; these hierarchical families are
			// exactly where the cutting-plane master accumulates the most
			// cuts and warm starts pay off most.
			DefaultSizes: []int{16, 32, 64, 96},
			// The large tier became affordable when the master gained the
			// revised-simplex backend (lp.Revised): links grow linearly
			// (star-shaped cluster internals + backbone chain), so the LP
			// column count stays near 2n even at n=1024.
			LargeSizes:   []int{256, 512, 1024},
			ChurnProfile: dynamic.ProfileFailures,
			Generate:     clusterOfClusters,
		},
		{
			Name:         NameTiers,
			Description:  "Tiers-like WAN/MAN/LAN internet hierarchy, core scaled with size",
			MinSize:      8,
			DefaultSizes: []int{16, 32, 64, 96},
			LargeSizes:   []int{256, 512, 1024},
			ChurnProfile: dynamic.ProfileFailures,
			Generate:     scaledTiers,
		},
		{
			Name:         NameStar,
			Description:  "node 0 connected to every other node (one-port worst case)",
			MinSize:      2,
			DefaultSizes: []int{8, 16, 32},
			LargeSizes:   []int{256, 512, 1024},
			// Every link is a bridge: failures would always disconnect.
			ChurnProfile: dynamic.ProfileDrift,
			Generate: withOverheads(func(size int, r *rand.Rand) (*platform.Platform, error) {
				return topology.Star(size, topology.PaperBandwidth, r)
			}),
		},
		{
			Name:         NameChain,
			Description:  "bidirectional line 0 - 1 - ... - n-1",
			MinSize:      2,
			DefaultSizes: []int{8, 16, 32},
			LargeSizes:   []int{256, 512, 1024},
			ChurnProfile: dynamic.ProfileDrift,
			Generate: withOverheads(func(size int, r *rand.Rand) (*platform.Platform, error) {
				return topology.Chain(size, topology.PaperBandwidth, r)
			}),
		},
		{
			Name:         NameRing,
			Description:  "bidirectional ring",
			MinSize:      2,
			DefaultSizes: []int{8, 16, 32},
			LargeSizes:   []int{256, 512, 1024},
			ChurnProfile: dynamic.ProfileFlakyLinks,
			Generate: withOverheads(func(size int, r *rand.Rand) (*platform.Platform, error) {
				return topology.Ring(size, topology.PaperBandwidth, r)
			}),
		},
		{
			Name:         NameGrid,
			Description:  "2-D mesh, most square rows x cols factorisation of the size",
			MinSize:      2,
			DefaultSizes: []int{9, 16, 36},
			LargeSizes:   []int{256, 512, 1024},
			ChurnProfile: dynamic.ProfileFlakyLinks,
			Generate: withOverheads(func(size int, r *rand.Rand) (*platform.Platform, error) {
				rows, cols := gridDims(size)
				return topology.Grid2D(rows, cols, topology.PaperBandwidth, r)
			}),
		},
		sparse,
		dense,
		{
			Name:         NameLastMile,
			Description:  "fast full-mesh core with slow asymmetric access links",
			MinSize:      4,
			DefaultSizes: []int{12, 24, 48},
			ChurnProfile: dynamic.ProfileFailures,
			Generate:     lastMile,
		},
	} {
		MustRegister(s)
	}
}
