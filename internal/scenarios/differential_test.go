package scenarios

import (
	"math"
	"testing"

	"repro/internal/heuristics"
	"repro/internal/maxflow"
	"repro/internal/model"
	"repro/internal/platform"
	"repro/internal/sim"
	"repro/internal/steady"
	"repro/internal/throughput"
)

// assertAchievable verifies that a steady solution's edge rates actually
// support its reported throughput: one max-flow per destination.
func assertAchievable(t *testing.T, p *platform.Platform, source int, sol *steady.Solution, label string) {
	t.Helper()
	nw := maxflow.New(p.NumNodes())
	for id := 0; id < p.NumLinks(); id++ {
		l := p.Link(id)
		nw.AddEdge(l.From, l.To, sol.EdgeRate[id])
	}
	for w := 0; w < p.NumNodes(); w++ {
		if w == source {
			continue
		}
		nw.Reset()
		if flow := nw.MaxFlow(source, w); flow < sol.Throughput-1e-4*math.Max(1, sol.Throughput) {
			t.Errorf("%s: destination %d receives %v < reported throughput %v", label, w, flow, sol.Throughput)
		}
	}
}

// TestSteadyWarmColdDirectAcrossRegistry is the differential harness of the
// warm-started master LP: on every registered scenario family, the
// warm-started cutting-plane solver, the cold-start oracle and the direct
// LP (2) encoding must agree on the optimal throughput, and both
// cutting-plane solutions must be achievable (their edge rates support the
// reported throughput to every destination).
func TestSteadyWarmColdDirectAcrossRegistry(t *testing.T) {
	const (
		source = 0
		seed   = 29
		relTol = 1e-6
	)
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			size := 8
			if size < s.MinSize {
				size = s.MinSize
			}
			p, err := s.Generate(size, seed)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			// A tight gap tolerance makes the cutting-plane loop run to full
			// separation convergence, so all three solvers agree to 1e-6
			// instead of only to the default 1e-5 early-exit gap.
			warm, err := steady.Solve(p, source, &steady.Options{GapTolerance: 1e-9})
			if err != nil {
				t.Fatalf("warm: %v", err)
			}
			cold, err := steady.Solve(p, source, &steady.Options{GapTolerance: 1e-9, ColdStart: true})
			if err != nil {
				t.Fatalf("cold: %v", err)
			}
			direct, err := steady.SolveDirect(p, source, nil)
			if err != nil {
				t.Fatalf("direct: %v", err)
			}
			ref := math.Max(direct.Throughput, 1e-12)
			if math.Abs(warm.Throughput-cold.Throughput)/math.Max(cold.Throughput, 1e-12) > relTol {
				t.Errorf("warm %v vs cold %v", warm.Throughput, cold.Throughput)
			}
			if math.Abs(warm.Throughput-direct.Throughput)/ref > relTol {
				t.Errorf("warm %v vs direct %v", warm.Throughput, direct.Throughput)
			}
			if math.Abs(cold.Throughput-direct.Throughput)/ref > relTol {
				t.Errorf("cold %v vs direct %v", cold.Throughput, direct.Throughput)
			}
			assertAchievable(t, p, source, warm, "warm")
			assertAchievable(t, p, source, cold, "cold")
		})
	}
}

// TestAnalyticThroughputMatchesSimulation is the differential harness: the
// analytic steady-state throughput (internal/throughput, derived from the
// steady-state equations of internal/steady) must agree with the
// slice-by-slice discrete-event simulation (internal/sim) within tolerance
// across a seeded sample of scenario families, heuristics and port models.
func TestAnalyticThroughputMatchesSimulation(t *testing.T) {
	const (
		source = 0
		slices = 400
		relTol = 0.05 // the simulated rate converges to the analytic one as slices grows
	)
	cases := []struct {
		scenario  string
		heuristic string
		m         model.PortModel
	}{
		{NameStar, heuristics.NameGrowTree, model.OnePortBidirectional},
		{NameChain, heuristics.NamePruneSimple, model.OnePortBidirectional},
		{NameClusters, heuristics.NamePruneDegree, model.OnePortBidirectional},
		{NameGrid, heuristics.NameGrowTree, model.OnePortBidirectional},
		{NameRandomSparse, heuristics.NameLPGrowTree, model.OnePortBidirectional},
		{NameLastMile, heuristics.NamePruneDegree, model.OnePortBidirectional},
		{NameTiers, heuristics.NameGrowTree, model.OnePortBidirectional},
		{NameClusters, heuristics.NameMultiportGrowTree, model.MultiPort},
		{NameRandomDense, heuristics.NameMultiportPruneDegree, model.MultiPort},
	}
	for _, c := range cases {
		c := c
		t.Run(c.scenario+"/"+c.heuristic, func(t *testing.T) {
			s, err := Get(c.scenario)
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range []int64{3, 17} {
				p, err := s.Generate(testSize(s), seed)
				if err != nil {
					t.Fatalf("generate: %v", err)
				}
				builder, err := heuristics.ByName(c.heuristic)
				if err != nil {
					t.Fatal(err)
				}
				tree, err := builder.Build(p, source)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				analytic := throughput.TreeThroughput(p, tree, c.m)
				if analytic <= 0 || math.IsInf(analytic, 0) {
					t.Fatalf("analytic throughput %v", analytic)
				}
				measured, err := sim.MeasureThroughput(p, tree, c.m, slices)
				if err != nil {
					t.Fatalf("simulate: %v", err)
				}
				rel := math.Abs(measured-analytic) / analytic
				if rel > relTol {
					t.Errorf("seed %d: simulated %v vs analytic %v (rel diff %.3f > %.2f)",
						seed, measured, analytic, rel, relTol)
				}
			}
		})
	}
}
