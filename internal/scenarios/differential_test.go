package scenarios

import (
	"math"
	"testing"

	"repro/internal/heuristics"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/throughput"
)

// TestAnalyticThroughputMatchesSimulation is the differential harness: the
// analytic steady-state throughput (internal/throughput, derived from the
// steady-state equations of internal/steady) must agree with the
// slice-by-slice discrete-event simulation (internal/sim) within tolerance
// across a seeded sample of scenario families, heuristics and port models.
func TestAnalyticThroughputMatchesSimulation(t *testing.T) {
	const (
		source = 0
		slices = 400
		relTol = 0.05 // the simulated rate converges to the analytic one as slices grows
	)
	cases := []struct {
		scenario  string
		heuristic string
		m         model.PortModel
	}{
		{NameStar, heuristics.NameGrowTree, model.OnePortBidirectional},
		{NameChain, heuristics.NamePruneSimple, model.OnePortBidirectional},
		{NameClusters, heuristics.NamePruneDegree, model.OnePortBidirectional},
		{NameGrid, heuristics.NameGrowTree, model.OnePortBidirectional},
		{NameRandomSparse, heuristics.NameLPGrowTree, model.OnePortBidirectional},
		{NameLastMile, heuristics.NamePruneDegree, model.OnePortBidirectional},
		{NameTiers, heuristics.NameGrowTree, model.OnePortBidirectional},
		{NameClusters, heuristics.NameMultiportGrowTree, model.MultiPort},
		{NameRandomDense, heuristics.NameMultiportPruneDegree, model.MultiPort},
	}
	for _, c := range cases {
		c := c
		t.Run(c.scenario+"/"+c.heuristic, func(t *testing.T) {
			s, err := Get(c.scenario)
			if err != nil {
				t.Fatal(err)
			}
			for _, seed := range []int64{3, 17} {
				p, err := s.Generate(testSize(s), seed)
				if err != nil {
					t.Fatalf("generate: %v", err)
				}
				builder, err := heuristics.ByName(c.heuristic)
				if err != nil {
					t.Fatal(err)
				}
				tree, err := builder.Build(p, source)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				analytic := throughput.TreeThroughput(p, tree, c.m)
				if analytic <= 0 || math.IsInf(analytic, 0) {
					t.Fatalf("analytic throughput %v", analytic)
				}
				measured, err := sim.MeasureThroughput(p, tree, c.m, slices)
				if err != nil {
					t.Fatalf("simulate: %v", err)
				}
				rel := math.Abs(measured-analytic) / analytic
				if rel > relTol {
					t.Errorf("seed %d: simulated %v vs analytic %v (rel diff %.3f > %.2f)",
						seed, measured, analytic, rel, relTol)
				}
			}
		})
	}
}
