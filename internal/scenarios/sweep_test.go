package scenarios

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/heuristics"
	"repro/internal/model"
	"repro/internal/service"
)

func smallSweepConfig() SweepConfig {
	return SweepConfig{
		Scenarios:   []string{NameStar, NameChain, NameClusters},
		Sizes:       []int{8, 12},
		Heuristics:  []string{heuristics.NamePruneSimple, heuristics.NameGrowTree, heuristics.NameLPPrune},
		Repetitions: 2,
		Seed:        9,
	}
}

// TestSweepDeterministicAcrossWorkerCounts checks the central ordering
// guarantee: the marshalled report is byte-identical regardless of the
// number of workers racing over the units — including worker counts far
// beyond the unit count.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	var reports [][]byte
	for _, workers := range []int{1, 4, 4, 32} {
		cfg := smallSweepConfig()
		cfg.Workers = workers
		rep, err := Sweep(cfg)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, data)
	}
	for i := 1; i < len(reports); i++ {
		if !bytes.Equal(reports[0], reports[i]) {
			t.Fatalf("sweep output differs between runs/worker counts:\n%s\n%s", reports[0], reports[i])
		}
	}
}

// TestSweepSharedPlannerCacheHits routes two sweeps through one planning
// engine: the second sweep's reference solves are all served from the
// engine's fingerprint-keyed cache, and the reports stay byte-identical.
func TestSweepSharedPlannerCacheHits(t *testing.T) {
	engine := service.New(service.Config{})
	cfg := smallSweepConfig()
	cfg.Planner = engine
	first, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := engine.Stats()
	if afterFirst.Hits != 0 {
		t.Fatalf("first sweep had %d cache hits, want 0", afterFirst.Hits)
	}
	units := afterFirst.Misses
	if units == 0 || afterFirst.Solves != units {
		t.Fatalf("first sweep stats = %+v, want one solve per unit", afterFirst)
	}

	cfg = smallSweepConfig()
	cfg.Planner = engine
	cfg.Workers = 4
	second, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := engine.Stats()
	if st.Hits != units {
		t.Errorf("second sweep hit the cache %d times, want %d (every unit)", st.Hits, units)
	}
	if st.Solves != units {
		t.Errorf("second sweep re-solved: %d total solves, want %d", st.Solves, units)
	}

	a, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("cached sweep report differs from the solved one")
	}
}

func TestSweepOrderingAndContents(t *testing.T) {
	cfg := smallSweepConfig()
	cfg.Workers = 4
	rep, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRuns := len(cfg.Scenarios) * len(cfg.Sizes) * cfg.Repetitions * len(cfg.Heuristics)
	if len(rep.Runs) != wantRuns || rep.Meta.TotalRuns != wantRuns {
		t.Fatalf("got %d runs (meta %d), want %d", len(rep.Runs), rep.Meta.TotalRuns, wantRuns)
	}
	// Runs must appear in (scenario, size, rep, heuristic) order.
	i := 0
	for _, scen := range cfg.Scenarios {
		for _, size := range cfg.Sizes {
			for r := 0; r < cfg.Repetitions; r++ {
				for _, h := range cfg.Heuristics {
					run := rep.Runs[i]
					if run.Scenario != scen || run.Size != size || run.Rep != r || run.Heuristic != h {
						t.Fatalf("run %d = (%s,%d,%d,%s), want (%s,%d,%d,%s)",
							i, run.Scenario, run.Size, run.Rep, run.Heuristic, scen, size, r, h)
					}
					if run.Error != "" {
						t.Errorf("run %d failed: %s", i, run.Error)
					}
					if run.Nodes != size {
						t.Errorf("run %d generated %d nodes, want %d", i, run.Nodes, size)
					}
					if math.IsNaN(run.Ratio) || run.Ratio <= 0 || run.Ratio > 1+1e-6 {
						t.Errorf("run %d ratio %v outside (0, 1]", i, run.Ratio)
					}
					if run.WallNanos != 0 {
						t.Errorf("run %d records wall time without RecordTimings", i)
					}
					i++
				}
			}
		}
	}
	wantAggs := len(cfg.Scenarios) * len(cfg.Sizes) * len(cfg.Heuristics)
	if len(rep.Aggregates) != wantAggs {
		t.Fatalf("got %d aggregates, want %d", len(rep.Aggregates), wantAggs)
	}
	for _, a := range rep.Aggregates {
		if a.Samples != cfg.Repetitions || a.Errors != 0 {
			t.Errorf("aggregate %s/%d/%s: %d samples, %d errors", a.Scenario, a.Size, a.Heuristic, a.Samples, a.Errors)
		}
		if a.MinRatio > a.MeanRatio || a.MeanRatio > a.MaxRatio {
			t.Errorf("aggregate %s/%d/%s: min %v mean %v max %v out of order",
				a.Scenario, a.Size, a.Heuristic, a.MinRatio, a.MeanRatio, a.MaxRatio)
		}
	}
	if rep.Format() == "" {
		t.Error("empty formatted report")
	}
}

// TestSweepStreamsEveryResult checks the OnResult streaming hook: every run
// is delivered exactly once and the serialized callback may mutate shared
// state without further locking (exercised under -race in CI).
func TestSweepStreamsEveryResult(t *testing.T) {
	cfg := smallSweepConfig()
	cfg.Workers = 8
	seen := make(map[string]int)
	cfg.OnResult = func(r RunResult) {
		seen[r.Scenario]++
	}
	rep, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range seen {
		total += n
	}
	if total != rep.Meta.TotalRuns {
		t.Fatalf("streamed %d results, want %d", total, rep.Meta.TotalRuns)
	}
	perScenario := len(cfg.Sizes) * cfg.Repetitions * len(cfg.Heuristics)
	for _, scen := range cfg.Scenarios {
		if seen[scen] != perScenario {
			t.Errorf("scenario %s streamed %d results, want %d", scen, seen[scen], perScenario)
		}
	}
}

func TestSweepDefaultsCoverWholeRegistry(t *testing.T) {
	if testing.Short() {
		t.Skip("full-registry sweep in -short mode")
	}
	rep, err := Sweep(SweepConfig{
		Sizes:       []int{8},
		Heuristics:  []string{heuristics.NamePruneSimple},
		Repetitions: 1,
		Seed:        3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Meta.Scenarios) != len(Names()) {
		t.Fatalf("default sweep covered %v, want all of %v", rep.Meta.Scenarios, Names())
	}
	for _, r := range rep.Runs {
		if r.Error != "" {
			t.Errorf("%s: %s", r.Scenario, r.Error)
		}
	}
}

func TestSweepMultiPortEvaluation(t *testing.T) {
	rep, err := Sweep(SweepConfig{
		Scenarios:   []string{NameClusters},
		Sizes:       []int{12},
		Heuristics:  heuristics.MultiPortNames(),
		Repetitions: 1,
		Seed:        5,
		EvalModel:   model.MultiPort,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Runs {
		if r.Error != "" {
			t.Errorf("%s/%s: %s", r.Scenario, r.Heuristic, r.Error)
		}
		// Multi-port trees are normalized by the one-port optimum, so ratios
		// above 1 are legitimate (paper Figure 5) — but they stay finite.
		if math.IsNaN(r.Ratio) || r.Ratio <= 0 {
			t.Errorf("%s/%s: non-positive ratio %v", r.Scenario, r.Heuristic, r.Ratio)
		}
	}
}

// TestSweepMetaRecordsEffectiveSizes is the regression test for the
// non-self-describing report: the meta block must record the sizes actually
// swept per scenario, both when they were requested explicitly and when each
// scenario fell back to its own defaults.
func TestSweepMetaRecordsEffectiveSizes(t *testing.T) {
	// Explicit sizes: every scenario records exactly the requested list.
	cfg := smallSweepConfig()
	rep, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Meta.Sizes) != len(cfg.Scenarios) {
		t.Fatalf("meta sizes cover %d scenarios, want %d", len(rep.Meta.Sizes), len(cfg.Scenarios))
	}
	for _, scen := range cfg.Scenarios {
		got := rep.Meta.Sizes[scen]
		if len(got) != len(cfg.Sizes) {
			t.Fatalf("meta sizes for %s = %v, want %v", scen, got, cfg.Sizes)
		}
		for i, n := range cfg.Sizes {
			if got[i] != n {
				t.Fatalf("meta sizes for %s = %v, want %v", scen, got, cfg.Sizes)
			}
		}
	}

	// Default sizes: each scenario records its own DefaultSizes (they differ
	// across scenarios, so the old flat []int could not describe this sweep).
	rep, err = Sweep(SweepConfig{
		Scenarios:   []string{NameStar, NameLastMile},
		Heuristics:  []string{heuristics.NamePruneSimple},
		Repetitions: 1,
		Seed:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{NameStar, NameLastMile} {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		got := rep.Meta.Sizes[name]
		if len(got) != len(s.DefaultSizes) {
			t.Fatalf("meta sizes for default sweep of %s = %v, want %v", name, got, s.DefaultSizes)
		}
		for i, n := range s.DefaultSizes {
			if got[i] != n {
				t.Fatalf("meta sizes for default sweep of %s = %v, want %v", name, got, s.DefaultSizes)
			}
		}
	}
}

// TestSweepRecordsLPStats: every run carries the master-LP statistics of its
// platform, and the meta totals count each platform exactly once.
func TestSweepRecordsLPStats(t *testing.T) {
	cfg := smallSweepConfig()
	rep, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantTotal := 0
	seen := make(map[int64]bool) // platform seeds are unique per unit
	for _, r := range rep.Runs {
		if r.LPRounds <= 0 || r.LPPivots <= 0 {
			t.Fatalf("run %s/%d/%d missing LP stats: %+v", r.Scenario, r.Size, r.Rep, r)
		}
		if r.LPWarmPivots+r.LPColdPivots != r.LPPivots {
			t.Fatalf("run %s/%d/%d: warm %d + cold %d != total %d",
				r.Scenario, r.Size, r.Rep, r.LPWarmPivots, r.LPColdPivots, r.LPPivots)
		}
		if !seen[r.Seed] {
			seen[r.Seed] = true
			wantTotal += r.LPPivots
		}
	}
	if rep.Meta.TotalLPPivots != wantTotal {
		t.Fatalf("meta total LP pivots %d, want %d (each platform once)", rep.Meta.TotalLPPivots, wantTotal)
	}
	if rep.Meta.TotalLPWarmPivots+rep.Meta.TotalLPColdPivots != rep.Meta.TotalLPPivots {
		t.Fatalf("meta pivot split %d + %d != %d",
			rep.Meta.TotalLPWarmPivots, rep.Meta.TotalLPColdPivots, rep.Meta.TotalLPPivots)
	}
}

// TestSweepColdStartLPMatchesWarm: the cold-start oracle sweep reports the
// same optima as the warm-started default, with zero warm pivots.
func TestSweepColdStartLPMatchesWarm(t *testing.T) {
	cfg := SweepConfig{
		Scenarios:   []string{NameClusters},
		Sizes:       []int{12},
		Heuristics:  []string{heuristics.NamePruneSimple},
		Repetitions: 2,
		Seed:        13,
	}
	warm, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.ColdStartLP = true
	cold, err := Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Meta.ColdStartLP || warm.Meta.ColdStartLP {
		t.Fatal("meta does not record the cold-start flag")
	}
	if cold.Meta.TotalLPWarmPivots != 0 {
		t.Fatalf("cold-start sweep performed %d warm pivots", cold.Meta.TotalLPWarmPivots)
	}
	for i := range warm.Runs {
		w, c := warm.Runs[i], cold.Runs[i]
		if math.Abs(w.Optimal-c.Optimal) > 1e-6*math.Max(1, c.Optimal) {
			t.Errorf("run %d: warm optimum %v vs cold %v", i, w.Optimal, c.Optimal)
		}
	}
}

// TestSweepIterationLimitedLPSurfacesAsError is the sweep-level regression
// test for the silent zero-throughput poisoning: with a 1-pivot LP budget
// every run must carry an error — never a nil-error sample with throughput 0
// or a NaN ratio that would silently skew the aggregates.
func TestSweepIterationLimitedLPSurfacesAsError(t *testing.T) {
	rep, err := Sweep(SweepConfig{
		Scenarios:       []string{NameStar, NameClusters},
		Sizes:           []int{8},
		Heuristics:      []string{heuristics.NamePruneSimple},
		Repetitions:     1,
		Seed:            7,
		LPMaxIterations: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Runs {
		if r.Error == "" {
			t.Errorf("%s: iteration-limited LP produced a silent sample (optimal %v, ratio %v)",
				r.Scenario, r.Optimal, r.Ratio)
		}
		if math.IsNaN(r.Ratio) {
			t.Errorf("%s: NaN ratio leaked into the report", r.Scenario)
		}
	}
	for _, a := range rep.Aggregates {
		if a.Errors == 0 || a.Samples != 0 {
			t.Errorf("aggregate %s/%d: %d samples, %d errors — errors must not count as samples",
				a.Scenario, a.Size, a.Samples, a.Errors)
		}
	}
}

func TestSweepConfigErrors(t *testing.T) {
	if _, err := Sweep(SweepConfig{Scenarios: []string{"no-such-family"}}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := Sweep(SweepConfig{Scenarios: []string{NameTiers}, Sizes: []int{4}}); err == nil {
		t.Error("size below scenario minimum accepted")
	}
	if _, err := Sweep(SweepConfig{Scenarios: []string{NameStar}, Sizes: []int{8}, Heuristics: []string{"bogus"}}); err == nil {
		t.Error("unknown heuristic accepted")
	}
	if _, err := Sweep(SweepConfig{Scenarios: []string{NameStar, NameStar}}); err == nil {
		t.Error("duplicated scenario accepted (would double-count aggregates)")
	}
	if _, err := Sweep(SweepConfig{
		Scenarios:  []string{NameStar},
		Sizes:      []int{8},
		Heuristics: []string{heuristics.NameGrowTree, heuristics.NameGrowTree},
	}); err == nil {
		t.Error("duplicated heuristic accepted (would double-count aggregates)")
	}
}
