// Package scenarios is a registry of named platform families and a parallel
// sweep engine that evaluates every registered broadcast heuristic across
// them.
//
// A Scenario is a deterministic, seeded generator of platform.Platform
// values at parameterised sizes: the same (size, seed) pair always yields a
// byte-identical platform. The built-in families cover the platforms the
// paper evaluates (random platforms of Table 2, Tiers-like hierarchies of
// Table 3) as well as the regular and hierarchical topologies that motivate
// topology-aware broadcast trees (homogeneous clusters, clusters of
// clusters, stars, chains, rings, grids, bandwidth-skewed "last-mile"
// platforms).
//
// The experiment harness (internal/experiments) sources all of its
// platforms from this package, and the sweep engine (Sweep) fans
// scenario x size x heuristic combinations across a worker pool with
// deterministic result ordering. Use Register to add a custom family.
package scenarios
