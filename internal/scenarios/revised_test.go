package scenarios

import (
	"math"
	"os"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/pack"
	"repro/internal/steady"
)

// TestSteadyRevisedAcrossRegistry is the differential harness of the
// revised-simplex master LP: on every registered scenario family, the
// revised solver, the warm dense incremental solver and the cold-start
// oracle must agree on the optimal throughput within 1e-6 relative, the
// revised solution must be achievable (its edge rates support the reported
// throughput to every destination), and it must decompose into a valid
// one-port-feasible spanning-tree packing.
func TestSteadyRevisedAcrossRegistry(t *testing.T) {
	const (
		source = 0
		seed   = 29
		relTol = 1e-6
	)
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			size := 8
			if size < s.MinSize {
				size = s.MinSize
			}
			p, err := s.Generate(size, seed)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			rev, err := steady.Solve(p, source, &steady.Options{GapTolerance: 1e-9, Revised: true})
			if err != nil {
				t.Fatalf("revised: %v", err)
			}
			warm, err := steady.Solve(p, source, &steady.Options{GapTolerance: 1e-9})
			if err != nil {
				t.Fatalf("warm incremental: %v", err)
			}
			cold, err := steady.Solve(p, source, &steady.Options{GapTolerance: 1e-9, ColdStart: true})
			if err != nil {
				t.Fatalf("cold: %v", err)
			}
			ref := math.Max(cold.Throughput, 1e-12)
			if math.Abs(rev.Throughput-warm.Throughput)/ref > relTol {
				t.Errorf("revised %v vs warm incremental %v", rev.Throughput, warm.Throughput)
			}
			if math.Abs(rev.Throughput-cold.Throughput)/ref > relTol {
				t.Errorf("revised %v vs cold %v", rev.Throughput, cold.Throughput)
			}
			assertAchievable(t, p, source, rev, "revised")

			// The revised optimum must survive tree decomposition: the packed
			// trees reach the LP throughput and stay one-port feasible
			// (Packing.Validate checks rates, weights and occupations).
			pk, err := pack.Decompose(p, source, rev, nil)
			if err != nil {
				t.Fatalf("decompose revised solution: %v", err)
			}
			tol := relTol * math.Max(1, math.Abs(rev.Throughput))
			if err := pk.Validate(p, rev.EdgeRate, tol); err != nil {
				t.Errorf("revised packing: %v", err)
			}
			if gap := rev.Throughput - pk.Throughput; math.Abs(gap) > tol {
				t.Errorf("revised packing reaches %v, LP optimum %v (gap %v)", pk.Throughput, rev.Throughput, gap)
			}
		})
	}
}

// TestChurnRevisedSessionMatchesColdSolve replays every registry family
// through a 50-event churn trace with the revised-simplex warm session and
// checks each re-solved optimum against a per-event cold solve within 1e-6
// relative — the warm-restart contract of the revised solver under row
// appends, row rewrites and platform deltas.
func TestChurnRevisedSessionMatchesColdSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("differential churn sweep is not short")
	}
	opts := &steady.Options{GapTolerance: 1e-9, Revised: true}
	coldOpts := &steady.Options{GapTolerance: 1e-9}
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			size := smallestSize(s)
			p, err := s.Generate(size, 7)
			if err != nil {
				t.Fatal(err)
			}
			prof, err := dynamic.ProfileByName(s.EffectiveChurnProfile())
			if err != nil {
				t.Fatal(err)
			}
			tr, err := dynamic.GenerateTrace(p, 0, prof, 50, ChurnTraceSeed(7))
			if err != nil {
				t.Fatal(err)
			}
			warm, err := dynamic.Run(p, 0, tr, dynamic.Config{Steady: opts})
			if err != nil {
				t.Fatal(err)
			}
			cold, err := dynamic.Run(p, 0, tr, dynamic.Config{Steady: coldOpts, ColdResolve: true})
			if err != nil {
				t.Fatal(err)
			}
			for i := range warm.Events {
				w, c := warm.Events[i].Optimal, cold.Events[i].Optimal
				rel := math.Abs(w-c) / math.Max(c, 1e-12)
				if rel > 1e-6 {
					t.Errorf("event %d (%v): revised optimum %v vs cold %v (rel %v)",
						i, warm.Events[i].Delta, w, c, rel)
				}
			}
		})
	}
}

// TestRevisedLargeScenarioSizes pins the scaling contract of the revised
// solver: the large-sweep tier sizes must complete and, where the dense
// incremental solver is still tractable, agree with it. n=256 runs in the
// regular (non-short) tier; the full n=1024 sweep size is gated behind
// BCAST_LARGE=1 because the comparison-free revised solve alone takes
// O(seconds) and belongs to the bench/CI-artifact tier, not every test run.
func TestRevisedLargeScenarioSizes(t *testing.T) {
	if testing.Short() {
		t.Skip("large-size revised solve is not short")
	}
	const source = 0
	s, err := Get(NameClusters)
	if err != nil {
		t.Fatal(err)
	}
	p, err := s.Generate(256, 7)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := steady.Solve(p, source, &steady.Options{Revised: true})
	if err != nil {
		t.Fatalf("revised n=256: %v", err)
	}
	inc, err := steady.Solve(p, source, nil)
	if err != nil {
		t.Fatalf("incremental n=256: %v", err)
	}
	rel := math.Abs(rev.Throughput-inc.Throughput) / math.Max(inc.Throughput, 1e-12)
	if rel > 1e-6 {
		t.Errorf("n=256: revised %v vs incremental %v (rel %v)", rev.Throughput, inc.Throughput, rel)
	}
	assertAchievable(t, p, source, rev, "revised n=256")

	if os.Getenv("BCAST_LARGE") == "" {
		t.Log("set BCAST_LARGE=1 to run the n=1024 tier")
		return
	}
	big, err := s.Generate(1024, 7)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := steady.Solve(big, source, &steady.Options{Revised: true})
	if err != nil {
		t.Fatalf("revised n=1024: %v", err)
	}
	if !(sol.Throughput > 0) {
		t.Fatalf("n=1024: degenerate throughput %v", sol.Throughput)
	}
	assertAchievable(t, big, source, sol, "revised n=1024")
}
