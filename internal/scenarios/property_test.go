package scenarios

import (
	"testing"

	"repro/internal/heuristics"
	"repro/internal/model"
	"repro/internal/steady"
	"repro/internal/throughput"
)

// TestTreePropertiesAcrossRegistry is the property-based harness of the
// registry: for every registered scenario family and every registered
// heuristic, the returned tree must be a spanning tree rooted at the source
// with no cycles, and its one-port steady-state throughput must not exceed
// the one-port MTP optimum (the LP upper bound applies to every broadcast
// schedule, hence to every single tree).
func TestTreePropertiesAcrossRegistry(t *testing.T) {
	const (
		source = 0
		seed   = 11
	)
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			size := testSize(s)
			p, err := s.Generate(size, seed)
			if err != nil {
				t.Fatalf("generate: %v", err)
			}
			opt, err := steady.Solve(p, source, nil)
			if err != nil {
				t.Fatalf("steady-state LP: %v", err)
			}
			if opt.Throughput <= 0 {
				t.Fatalf("non-positive optimal throughput %v", opt.Throughput)
			}
			for _, name := range heuristics.Names() {
				builder, err := heuristics.ByNameWithRates(name, opt.EdgeRate)
				if err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				tree, err := builder.Build(p, source)
				if err != nil {
					t.Errorf("%s: build: %v", name, err)
					continue
				}
				// Spanning out-arborescence rooted at the source: matching
				// sizes, per-node parents over real platform links, full
				// reachability from the root.
				if tree.Root != source {
					t.Errorf("%s: tree rooted at %d, want %d", name, tree.Root, source)
				}
				if err := tree.Validate(p); err != nil {
					t.Errorf("%s: invalid tree: %v", name, err)
					continue
				}
				// No cycles: every node has a finite root-to-node path.
				for v := 0; v < p.NumNodes(); v++ {
					if tree.Depth(v) < 0 {
						t.Errorf("%s: node %d unreachable or on a cycle", name, v)
					}
				}
				// The LP optimum bounds every tree's one-port throughput.
				tp := throughput.TreeThroughput(p, tree, model.OnePortBidirectional)
				if tp <= 0 {
					t.Errorf("%s: non-positive tree throughput %v", name, tp)
				}
				if tp > opt.Throughput*(1+1e-6)+1e-9 {
					t.Errorf("%s: tree throughput %v exceeds LP optimum %v", name, tp, opt.Throughput)
				}
			}
		})
	}
}

// TestThroughputNeverExceedsMasterUpperBound is the invariant that protects
// the cutting-plane termination: whatever exit the loop takes (no violated
// cuts, or the gap-based early exit reporting the achievable lower bound),
// the reported throughput may never exceed the final master LP value.
func TestThroughputNeverExceedsMasterUpperBound(t *testing.T) {
	const source = 0
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			for _, seed := range []int64{1, 19} {
				p, err := s.Generate(testSize(s), seed)
				if err != nil {
					t.Fatalf("generate: %v", err)
				}
				opt, err := steady.Solve(p, source, nil)
				if err != nil {
					t.Fatalf("steady-state LP: %v", err)
				}
				if opt.UpperBound <= 0 {
					t.Fatalf("seed %d: non-positive master upper bound %v", seed, opt.UpperBound)
				}
				if opt.Throughput > opt.UpperBound*(1+1e-9)+1e-12 {
					t.Errorf("seed %d: throughput %v exceeds master upper bound %v", seed, opt.Throughput, opt.UpperBound)
				}
			}
		})
	}
}

// TestRoutingThroughputBoundedByOptimum extends the LP-bound property to the
// routed schedule of the binomial heuristic, whose logical transfers follow
// multi-hop paths and contend for links and ports.
func TestRoutingThroughputBoundedByOptimum(t *testing.T) {
	const source = 0
	for _, name := range []string{NameStar, NameClusters, NameRandomSparse, NameTiers} {
		s, err := Get(name)
		if err != nil {
			t.Fatal(err)
		}
		p, err := s.Generate(testSize(s), 5)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		opt, err := steady.Solve(p, source, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		routing, err := heuristics.Binomial{}.BuildRouting(p, source)
		if err != nil {
			t.Fatalf("%s: binomial routing: %v", name, err)
		}
		tp := throughput.RoutingThroughput(p, routing, model.OnePortBidirectional)
		if tp > opt.Throughput*(1+1e-6)+1e-9 {
			t.Errorf("%s: routed binomial throughput %v exceeds LP optimum %v", name, tp, opt.Throughput)
		}
	}
}
