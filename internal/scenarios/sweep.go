package scenarios

import (
	"fmt"
	"math"
	"strings"
	"time"

	"repro/internal/heuristics"
	"repro/internal/model"
	"repro/internal/parallel"
	"repro/internal/service"
	"repro/internal/stats"
	"repro/internal/topology"
)

// SweepConfig parameterises a scenario x size x heuristic sweep.
type SweepConfig struct {
	// Scenarios are the registry names to sweep; empty means every
	// registered scenario.
	Scenarios []string
	// Sizes are the node counts generated for every scenario; empty means
	// each scenario's DefaultSizes.
	Sizes []int
	// Heuristics are the heuristic names evaluated on every platform; empty
	// means every registered heuristic.
	Heuristics []string
	// Repetitions is the number of platforms generated per (scenario, size)
	// cell (default 3). Each repetition derives its own seed.
	Repetitions int
	// Seed is the base seed; per-platform seeds are derived from it, the
	// scenario name, the size and the repetition index, so results are
	// reproducible bit-for-bit and independent of sweep-internal ordering.
	Seed int64
	// Source is the broadcast source processor (default 0).
	Source int
	// EvalModel is the port model under which trees are evaluated (default
	// one-port bidirectional). The reference optimum is always the one-port
	// MTP linear program, as in the paper.
	EvalModel model.PortModel
	// Workers bounds the number of platforms evaluated concurrently
	// (default: number of CPUs).
	Workers int
	// RecordTimings enables per-run wall-clock measurements. It defaults to
	// false so that sweep output is byte-for-byte deterministic.
	RecordTimings bool
	// ColdStartLP forces the steady-state reference solver to re-solve its
	// master LP from scratch every cutting-plane round instead of
	// warm-starting from the previous round's basis. Slower; kept for A/B
	// comparisons against the warm-started default.
	ColdStartLP bool
	// RevisedLP routes the steady-state reference solves through the
	// revised-simplex master (lp.Revised): maintained LU basis, sparse cut
	// rows, per-pivot cost nearly independent of the accumulated cut count.
	// Required in practice for the large sweep sizes (n ≥ 512); ignored when
	// ColdStartLP is set.
	RevisedLP bool
	// LPMaxIterations bounds the simplex pivots of each master LP solve of
	// the reference optimum (0 = solver default). A limit low enough to bite
	// surfaces as a per-run error, never as a silent zero-throughput sample.
	LPMaxIterations int
	// PackTrees, when positive, adds the k-tree axis to every run: the
	// optimal edge rates are decomposed into a weighted packing of at most
	// PackTrees broadcast trees (see internal/pack) and every run row
	// carries the packed throughput, tree count, packed/LP ratio and the
	// k-tree-vs-single-tree gain.
	PackTrees int
	// Churn enables the churn dimension: every generated platform is
	// additionally played through its family's deterministic churn trace
	// (see Scenario.ChurnProfile and ChurnTrace) and the keep/repair/rebuild
	// policies are compared against the incrementally re-solved optimum. The
	// condensed outcome rides on every run row of the platform and is
	// aggregated per (scenario, size) cell in SweepReport.ChurnAggregates.
	Churn bool
	// ChurnEvents overrides the per-family default trace length (0 keeps
	// the defaults).
	ChurnEvents int
	// ChurnProfile overrides the per-family churn profile ("" keeps the
	// defaults; unknown names are rejected with the list of known ones).
	ChurnProfile string
	// ChurnHeuristic is the tree heuristic driven through the traces
	// (default lp-grow-tree).
	ChurnHeuristic string
	// Planner, when non-nil, routes the per-unit steady-state solves through
	// the given planning engine: platforms already planned (in this sweep or
	// by any earlier request against the same engine) are answered from its
	// fingerprint-keyed cache instead of being re-solved. Nil gives the
	// sweep a private engine, so repeated sweeps over the same seeds still
	// hit within one Sweep call's engine only.
	Planner *service.Engine
	// OnResult, when non-nil, is invoked once per run as results complete
	// (in completion order, not report order). Calls are serialized, never
	// concurrent.
	OnResult func(RunResult)
}

// RunResult is the outcome of evaluating one heuristic on one generated
// platform instance.
type RunResult struct {
	Scenario  string  `json:"scenario"`
	Size      int     `json:"size"`
	Rep       int     `json:"rep"`
	Seed      int64   `json:"seed"`
	Heuristic string  `json:"heuristic"`
	Nodes     int     `json:"nodes"`
	Links     int     `json:"links"`
	Density   float64 `json:"density"`
	// Optimal is the one-port MTP optimal throughput of the platform.
	Optimal float64 `json:"optimal"`
	// LPRounds, LPCuts and LPPivots describe the cutting-plane solve that
	// produced Optimal (shared by every heuristic run of the same platform):
	// rounds, generated cut constraints, and total simplex pivots, the
	// latter split into warm-started and cold pivots.
	LPRounds     int `json:"lpRounds,omitempty"`
	LPCuts       int `json:"lpCuts,omitempty"`
	LPPivots     int `json:"lpPivots,omitempty"`
	LPWarmPivots int `json:"lpWarmPivots,omitempty"`
	LPColdPivots int `json:"lpColdPivots,omitempty"`
	// Throughput is the heuristic's steady-state throughput under the
	// sweep's evaluation model.
	Throughput float64 `json:"throughput"`
	// Ratio is Throughput / Optimal (the paper's relative performance).
	Ratio float64 `json:"ratio"`
	// k-tree packing axis (only with SweepConfig.PackTrees): the packed
	// throughput, tree count and packed/Optimal ratio are per platform and
	// repeated on every heuristic row like the LP statistics; TreeGain is
	// per heuristic — the packed throughput over THIS heuristic's
	// single-tree throughput (>= 1 within tolerance, the paper's case for
	// packing trees instead of picking one).
	PackedThroughput float64 `json:"packedThroughput,omitempty"`
	PackedTrees      int     `json:"packedTrees,omitempty"`
	PackedRatio      float64 `json:"packedRatio,omitempty"`
	TreeGain         float64 `json:"treeGain,omitempty"`
	// WallNanos is the build+evaluate time (only with RecordTimings).
	WallNanos int64 `json:"wallNanos,omitempty"`
	// Error is non-empty when the generation, LP solve or heuristic failed.
	Error string `json:"error,omitempty"`
	// Churn is the condensed churn outcome of the platform (only with
	// SweepConfig.Churn; identical on every heuristic row of the platform,
	// like the LP statistics).
	Churn *ChurnResult `json:"churn,omitempty"`
}

// Aggregate summarises the repetitions of one (scenario, size, heuristic)
// cell.
type Aggregate struct {
	Scenario  string `json:"scenario"`
	Size      int    `json:"size"`
	Heuristic string `json:"heuristic"`
	// Samples is the number of successful runs aggregated.
	Samples   int     `json:"samples"`
	MeanRatio float64 `json:"meanRatio"`
	DevRatio  float64 `json:"devRatio"`
	MinRatio  float64 `json:"minRatio"`
	MaxRatio  float64 `json:"maxRatio"`
	// MeanWallNanos is the mean build+evaluate time (only with
	// RecordTimings).
	MeanWallNanos int64 `json:"meanWallNanos,omitempty"`
	// MeanPackedRatio and MeanTreeGain summarize the k-tree axis of the
	// cell (only with SweepConfig.PackTrees): mean packed/Optimal ratio and
	// mean packed/single-tree gain over the successful runs.
	MeanPackedRatio float64 `json:"meanPackedRatio,omitempty"`
	MeanTreeGain    float64 `json:"meanTreeGain,omitempty"`
	// Errors is the number of failed runs in the cell.
	Errors int `json:"errors,omitempty"`
}

// SweepMeta echoes the effective sweep parameters into the report.
type SweepMeta struct {
	Scenarios []string `json:"scenarios"`
	// Sizes records the node counts actually swept, resolved per scenario:
	// the explicitly requested sizes, or the scenario's DefaultSizes when
	// none were requested. (Defaults differ per scenario, so a single list
	// could not describe a default sweep — the report must be
	// self-describing.)
	Sizes          map[string][]int `json:"sizes"`
	Heuristics     []string         `json:"heuristics"`
	Repetitions    int              `json:"repetitions"`
	Seed           int64            `json:"seed"`
	Source         int              `json:"source"`
	EvalModel      string           `json:"evalModel"`
	ColdStartLP    bool             `json:"coldStartLP,omitempty"`
	RevisedLP      bool             `json:"revisedLP,omitempty"`
	PackTrees      int              `json:"packTrees,omitempty"`
	TotalRuns      int              `json:"totalRuns"`
	TotalWallNanos int64            `json:"totalWallNanos,omitempty"`
	// TotalLPPivots aggregates the master-LP simplex pivots across the
	// generated platforms (each platform counted once, not once per
	// heuristic), split into warm-started and cold pivots.
	TotalLPPivots     int `json:"totalLPPivots"`
	TotalLPWarmPivots int `json:"totalLPWarmPivots"`
	TotalLPColdPivots int `json:"totalLPColdPivots"`
	// Churn echoes the churn dimension parameters. ChurnTraces records the
	// RESOLVED profile and trace length per scenario (explicit overrides or
	// the family defaults), so the report is self-describing like Sizes;
	// the totals aggregate the steady-session work of the churn traces
	// (each platform counted once).
	Churn                   bool                      `json:"churn,omitempty"`
	ChurnHeuristic          string                    `json:"churnHeuristic,omitempty"`
	ChurnTraces             map[string]ChurnTraceMeta `json:"churnTraces,omitempty"`
	TotalChurnWarmResolves  int                       `json:"totalChurnWarmResolves,omitempty"`
	TotalChurnRebuilds      int                       `json:"totalChurnRebuilds,omitempty"`
	TotalChurnResolvePivots int                       `json:"totalChurnResolvePivots,omitempty"`
}

// ChurnTraceMeta is the resolved churn-trace shape of one swept scenario.
type ChurnTraceMeta struct {
	Profile string `json:"profile"`
	Events  int    `json:"events"`
}

// SweepReport is the full outcome of a sweep: every run in deterministic
// order (scenario, then size, then repetition, then heuristic) plus one
// aggregate per cell in the same order.
type SweepReport struct {
	Meta       SweepMeta   `json:"meta"`
	Runs       []RunResult `json:"runs"`
	Aggregates []Aggregate `json:"aggregates"`
	// ChurnAggregates holds one churn summary per (scenario, size) cell
	// (only with SweepConfig.Churn), in sweep order.
	ChurnAggregates []ChurnAggregate `json:"churnAggregates,omitempty"`
}

// unit is one platform instance to generate and evaluate: the unit of
// parallelism of the sweep.
type unit struct {
	scenario Scenario
	size     int
	rep      int
	seed     int64
}

// UnitSeed derives the deterministic seed of one generated platform from the
// base seed, the scenario name, the size and the repetition index. The
// derivation (topology.DeriveSeed) hashes the identifying fields (rather
// than positional indices) so a platform keeps its seed when scenarios are
// added to or removed from a sweep.
func UnitSeed(base int64, scenario string, size, rep int) int64 {
	return topology.DeriveSeed(base, scenario, size, rep)
}

// resolve validates the configuration and expands it into the unit list.
func (cfg SweepConfig) resolve() ([]Scenario, [][]int, []string, error) {
	names := cfg.Scenarios
	if len(names) == 0 {
		names = Names()
	}
	scens := make([]Scenario, 0, len(names))
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		if seen[name] {
			return nil, nil, nil, fmt.Errorf("scenarios: scenario %q listed twice", name)
		}
		seen[name] = true
		s, err := Get(name)
		if err != nil {
			return nil, nil, nil, err
		}
		scens = append(scens, s)
	}
	sizes := make([][]int, len(scens))
	for i, s := range scens {
		sz := cfg.Sizes
		if len(sz) == 0 {
			sz = s.DefaultSizes
		}
		for _, n := range sz {
			if n < s.MinSize {
				return nil, nil, nil, fmt.Errorf("scenarios: size %d below scenario %q minimum %d", n, s.Name, s.MinSize)
			}
		}
		sizes[i] = sz
	}
	heur := cfg.Heuristics
	if len(heur) == 0 {
		heur = heuristics.Names()
	}
	seenHeur := make(map[string]bool, len(heur))
	for _, name := range heur {
		if seenHeur[name] {
			return nil, nil, nil, fmt.Errorf("scenarios: heuristic %q listed twice", name)
		}
		seenHeur[name] = true
		if _, err := heuristics.ByName(name); err != nil {
			return nil, nil, nil, err
		}
	}
	return scens, sizes, heur, nil
}

// Sweep generates and evaluates every scenario x size x repetition platform
// of the configuration across a worker pool, evaluating every requested
// heuristic on each platform (the steady-state LP is solved once per
// platform and shared by the LP-based heuristics). The returned report lists
// runs and aggregates in deterministic order regardless of worker count.
func Sweep(cfg SweepConfig) (*SweepReport, error) {
	scens, sizes, heur, err := cfg.resolve()
	if err != nil {
		return nil, err
	}
	churn, err := cfg.resolveChurn()
	if err != nil {
		return nil, err
	}
	if cfg.Repetitions <= 0 {
		cfg.Repetitions = 3
	}
	if cfg.Planner == nil {
		// Plan-only workload: retained warm-session tableaux would be dead
		// weight on a private per-sweep engine, so drop them after each
		// solve.
		cfg.Planner = service.New(service.Config{Workers: cfg.Workers, DisableSessions: true})
	}

	var units []unit
	for i, s := range scens {
		for _, size := range sizes[i] {
			for rep := 0; rep < cfg.Repetitions; rep++ {
				units = append(units, unit{
					scenario: s,
					size:     size,
					rep:      rep,
					seed:     UnitSeed(cfg.Seed, s.Name, size, rep),
				})
			}
		}
	}

	//lint:ignore detrand opt-in wall-time instrumentation (RecordTimings); excluded from canonical reports
	start := time.Now()
	perUnit := parallel.MapStream(len(units), cfg.Workers, func(i int) []RunResult {
		return evaluateUnit(cfg, churn, units[i], heur)
	}, func(_ int, runs []RunResult) {
		if cfg.OnResult != nil {
			for _, r := range runs {
				cfg.OnResult(r)
			}
		}
	})

	effectiveSizes := make(map[string][]int, len(scens))
	for i, s := range scens {
		effectiveSizes[s.Name] = append([]int(nil), sizes[i]...)
	}
	report := &SweepReport{
		Meta: SweepMeta{
			Scenarios:   scenarioNames(scens),
			Sizes:       effectiveSizes,
			Heuristics:  heur,
			Repetitions: cfg.Repetitions,
			Seed:        cfg.Seed,
			Source:      cfg.Source,
			EvalModel:   cfg.EvalModel.String(),
			ColdStartLP: cfg.ColdStartLP,
			RevisedLP:   cfg.RevisedLP,
			PackTrees:   cfg.PackTrees,
		},
	}
	if cfg.Churn {
		report.Meta.Churn = true
		report.Meta.ChurnHeuristic = churn.heuristic
		report.Meta.ChurnTraces = make(map[string]ChurnTraceMeta, len(scens))
		for _, s := range scens {
			profile, events := churn.unitParams(s)
			report.Meta.ChurnTraces[s.Name] = ChurnTraceMeta{Profile: profile, Events: events}
		}
	}
	for _, runs := range perUnit {
		report.Runs = append(report.Runs, runs...)
		if len(runs) > 0 {
			// The LP stats are per platform and repeated on every heuristic
			// run of the unit; count each platform once.
			report.Meta.TotalLPPivots += runs[0].LPPivots
			report.Meta.TotalLPWarmPivots += runs[0].LPWarmPivots
			report.Meta.TotalLPColdPivots += runs[0].LPColdPivots
			if cr := runs[0].Churn; cr != nil {
				report.Meta.TotalChurnWarmResolves += cr.WarmResolves
				report.Meta.TotalChurnRebuilds += cr.Rebuilds
				report.Meta.TotalChurnResolvePivots += cr.ResolvePivots
			}
		}
	}
	report.Meta.TotalRuns = len(report.Runs)
	if cfg.RecordTimings {
		//lint:ignore detrand opt-in wall-time instrumentation (RecordTimings); excluded from canonical reports
		report.Meta.TotalWallNanos = time.Since(start).Nanoseconds()
	}
	report.Aggregates = aggregate(report.Runs, scens, sizes, heur, cfg.RecordTimings)
	if cfg.Churn {
		report.ChurnAggregates = aggregateChurn(perUnit, scens, sizes)
	}
	return report, nil
}

// evaluateUnit generates one platform and evaluates every heuristic on it.
// Failures are recorded per run instead of aborting the sweep.
func evaluateUnit(cfg SweepConfig, churn churnSettings, u unit, heur []string) []RunResult {
	base := RunResult{
		Scenario: u.scenario.Name,
		Size:     u.size,
		Rep:      u.rep,
		Seed:     u.seed,
	}
	fail := func(err error) []RunResult {
		out := make([]RunResult, len(heur))
		for i, name := range heur {
			out[i] = base
			out[i].Heuristic = name
			out[i].Error = err.Error()
		}
		return out
	}

	p, err := u.scenario.Generate(u.size, u.seed)
	if err != nil {
		return fail(fmt.Errorf("generate: %w", err))
	}
	base.Nodes = p.NumNodes()
	base.Links = p.NumLinks()
	base.Density = p.Density()

	// The steady-state reference solve goes through the planning engine:
	// a platform already planned — by an earlier unit, an earlier sweep over
	// the same engine, or any service request — is answered from the
	// fingerprint-keyed cache instead of being re-solved.
	res, err := cfg.Planner.Plan(service.PlanRequest{
		Platform:        p,
		Source:          cfg.Source,
		ColdLP:          cfg.ColdStartLP,
		RevisedLP:       cfg.RevisedLP,
		LPMaxIterations: cfg.LPMaxIterations,
		Trees:           cfg.PackTrees,
	})
	if err != nil {
		return fail(fmt.Errorf("steady-state LP: %w", err))
	}
	opt := res.Plan
	base.Optimal = opt.Throughput
	base.LPRounds = opt.LPRounds
	base.LPCuts = opt.LPCuts
	base.LPPivots = opt.LPPivots
	base.LPWarmPivots = opt.LPWarmPivots
	base.LPColdPivots = opt.LPColdPivots
	base.PackedThroughput = opt.PackedThroughput
	base.PackedTrees = opt.PackedTrees
	base.PackedRatio = opt.PackedRatio

	if cfg.Churn {
		// The churn run owns a private clone of the platform; its condensed
		// outcome rides on every heuristic row of the unit.
		base.Churn = evaluateUnitChurn(cfg, churn, u, p)
	}

	out := make([]RunResult, len(heur))
	for i, name := range heur {
		r := base
		r.Heuristic = name
		//lint:ignore detrand opt-in wall-time instrumentation (RecordTimings); excluded from canonical reports
		hStart := time.Now()
		tp, err := service.EvaluateHeuristic(p, cfg.Source, name, opt.EdgeRate, cfg.EvalModel)
		if cfg.RecordTimings {
			//lint:ignore detrand opt-in wall-time instrumentation (RecordTimings); excluded from canonical reports
			r.WallNanos = time.Since(hStart).Nanoseconds()
		}
		if err != nil {
			r.Error = err.Error()
		} else {
			r.Throughput = tp
			if opt.Throughput > 0 && !math.IsInf(opt.Throughput, 1) {
				r.Ratio = tp / opt.Throughput
			} else {
				r.Ratio = math.NaN()
			}
			if r.PackedThroughput > 0 && tp > 0 {
				r.TreeGain = r.PackedThroughput / tp
			}
		}
		out[i] = r
	}
	return out
}

// aggregate reduces the runs to one summary per (scenario, size, heuristic)
// cell, preserving the sweep order.
func aggregate(runs []RunResult, scens []Scenario, sizes [][]int, heur []string, timings bool) []Aggregate {
	type key struct {
		scenario  string
		size      int
		heuristic string
	}
	byCell := make(map[key][]RunResult)
	for _, r := range runs {
		k := key{r.Scenario, r.Size, r.Heuristic}
		byCell[k] = append(byCell[k], r)
	}
	var out []Aggregate
	for i, s := range scens {
		for _, size := range sizes[i] {
			for _, h := range heur {
				cell := byCell[key{s.Name, size, h}]
				agg := Aggregate{Scenario: s.Name, Size: size, Heuristic: h}
				ratios := make([]float64, 0, len(cell))
				var wall int64
				var packed, gain float64
				packedN := 0
				for _, r := range cell {
					if r.Error != "" {
						agg.Errors++
						continue
					}
					if math.IsNaN(r.Ratio) {
						// Degenerate optimum (0 or +Inf): the run is neither a
						// usable sample nor a failure; keep it out of the wall
						// mean so MeanWallNanos stays consistent with Samples.
						continue
					}
					ratios = append(ratios, r.Ratio)
					wall += r.WallNanos
					if r.PackedRatio > 0 {
						packed += r.PackedRatio
						gain += r.TreeGain
						packedN++
					}
				}
				sum := stats.Summarize(ratios)
				agg.Samples = sum.Count
				agg.MeanRatio = sum.Mean
				agg.DevRatio = sum.StdDev
				agg.MinRatio = sum.Min
				agg.MaxRatio = sum.Max
				if timings && sum.Count > 0 {
					agg.MeanWallNanos = wall / int64(sum.Count)
				}
				if packedN > 0 {
					agg.MeanPackedRatio = packed / float64(packedN)
					agg.MeanTreeGain = gain / float64(packedN)
				}
				out = append(out, agg)
			}
		}
	}
	return out
}

func scenarioNames(scens []Scenario) []string {
	names := make([]string, len(scens))
	for i, s := range scens {
		names[i] = s.Name
	}
	return names
}

// Format renders the aggregates as an aligned text table: one block per
// scenario, one row per (size, heuristic) cell.
func (rep *SweepReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %d runs, %d scenarios, model %s, seed %d\n",
		rep.Meta.TotalRuns, len(rep.Meta.Scenarios), rep.Meta.EvalModel, rep.Meta.Seed)
	if rep.Meta.TotalLPPivots > 0 {
		fmt.Fprintf(&b, "master LP: %d simplex pivots (%d warm, %d cold)\n",
			rep.Meta.TotalLPPivots, rep.Meta.TotalLPWarmPivots, rep.Meta.TotalLPColdPivots)
	}
	w := 0
	for _, a := range rep.Aggregates {
		if len(a.Heuristic) > w {
			w = len(a.Heuristic)
		}
	}
	last := ""
	for _, a := range rep.Aggregates {
		if a.Scenario != last {
			fmt.Fprintf(&b, "\n%s\n", a.Scenario)
			last = a.Scenario
		}
		fmt.Fprintf(&b, "  n=%-4d %-*s  ratio %.3f ±%.3f  [%.3f, %.3f]  (%d samples",
			a.Size, w, a.Heuristic, a.MeanRatio, a.DevRatio, a.MinRatio, a.MaxRatio, a.Samples)
		if a.Errors > 0 {
			fmt.Fprintf(&b, ", %d errors", a.Errors)
		}
		b.WriteString(")")
		if a.MeanPackedRatio > 0 {
			fmt.Fprintf(&b, "  pack %.3f (gain %.3f)", a.MeanPackedRatio, a.MeanTreeGain)
		}
		if a.MeanWallNanos > 0 {
			fmt.Fprintf(&b, "  %v", time.Duration(a.MeanWallNanos).Round(time.Microsecond))
		}
		b.WriteByte('\n')
	}
	if len(rep.ChurnAggregates) > 0 {
		fmt.Fprintf(&b, "\nchurn (%s, policies keep/repair/rebuild, lost = slices lost vs optimum):\n", rep.Meta.ChurnHeuristic)
		if rep.Meta.TotalChurnResolvePivots > 0 {
			fmt.Fprintf(&b, "  steady re-solves: %d warm, %d rebuilds, %d simplex pivots\n",
				rep.Meta.TotalChurnWarmResolves, rep.Meta.TotalChurnRebuilds, rep.Meta.TotalChurnResolvePivots)
		}
		for _, ca := range rep.ChurnAggregates {
			fmt.Fprintf(&b, "  %-20s n=%-4d %-12s %3d events  keep %.3f (lost %.1f)  repair %.3f (lost %.1f, %d reattached)  rebuild %.3f (lost %.1f)",
				ca.Scenario, ca.Size, ca.Profile, ca.Events,
				ca.Keep.MeanRatio, ca.Keep.LostSlices,
				ca.Repair.MeanRatio, ca.Repair.LostSlices, ca.Repair.Reattached,
				ca.Rebuild.MeanRatio, ca.Rebuild.LostSlices)
			if ca.Errors > 0 {
				fmt.Fprintf(&b, "  (%d errors)", ca.Errors)
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}
