package scenarios

import (
	"fmt"
	"math"

	"repro/internal/dynamic"
	"repro/internal/heuristics"
	"repro/internal/lp"
	"repro/internal/platform"
	"repro/internal/steady"
)

// This file is the churn dimension of the sweep engine: with
// SweepConfig.Churn set, every generated platform is additionally played
// through its family's deterministic churn trace (dynamic.GenerateTrace
// seeded from the platform seed) and the three adaptation policies are
// compared against the incrementally re-solved optimum. The condensed
// per-platform outcome rides on every run row of the unit (like the LP
// statistics) and is aggregated per (scenario, size) cell.

// PolicyChurnStats condenses one policy's behaviour over one churn trace
// (or, in a ChurnAggregate, over all repetitions of a cell).
type PolicyChurnStats struct {
	// MeanRatio and MinRatio summarize the per-event ratios to the
	// re-solved optimum.
	MeanRatio float64 `json:"meanRatio"`
	MinRatio  float64 `json:"minRatio"`
	// BrokenEvents counts events after which the policy stranded an alive
	// node; Reattached totals the repair policy's parent-edge changes.
	BrokenEvents int `json:"brokenEvents,omitempty"`
	Reattached   int `json:"reattached,omitempty"`
	// LostSlices is the delivered-slice shortfall against the optimum over
	// the trace horizon.
	LostSlices float64 `json:"lostSlices"`
}

// ChurnResult is the condensed churn outcome of one generated platform.
type ChurnResult struct {
	// Profile and Events identify the trace; TraceSeed is its derived seed.
	Profile   string `json:"profile"`
	Events    int    `json:"events"`
	TraceSeed int64  `json:"traceSeed"`
	// Heuristic is the tree builder driven through the trace.
	Heuristic string `json:"heuristic"`
	// Keep, Repair and Rebuild are the per-policy outcomes.
	Keep    PolicyChurnStats `json:"keep"`
	Repair  PolicyChurnStats `json:"repair"`
	Rebuild PolicyChurnStats `json:"rebuild"`
	// WarmResolves, Rebuilds and ResolvePivots describe the steady-session
	// work across the trace (warm row-appends vs master rebuilds, total
	// simplex pivots).
	WarmResolves  int `json:"warmResolves"`
	Rebuilds      int `json:"rebuilds"`
	ResolvePivots int `json:"resolvePivots"`
	// Error is non-empty when trace generation or the churn run failed.
	Error string `json:"error,omitempty"`
}

// ChurnAggregate summarizes the churn runs of one (scenario, size) cell.
type ChurnAggregate struct {
	Scenario string `json:"scenario"`
	Size     int    `json:"size"`
	Profile  string `json:"profile"`
	Events   int    `json:"events"`
	// Samples is the number of successful churn runs aggregated; Errors the
	// failed ones.
	Samples int `json:"samples"`
	Errors  int `json:"errors,omitempty"`
	// Keep/Repair/Rebuild aggregate the per-policy stats: mean of the mean
	// ratios, min of the min ratios, summed broken/reattached counts, mean
	// lost slices.
	Keep    PolicyChurnStats `json:"keep"`
	Repair  PolicyChurnStats `json:"repair"`
	Rebuild PolicyChurnStats `json:"rebuild"`
	// WarmResolves, Rebuilds and ResolvePivots are summed over the cell.
	WarmResolves  int `json:"warmResolves"`
	Rebuilds      int `json:"rebuilds"`
	ResolvePivots int `json:"resolvePivots"`
}

// churnSettings are the resolved churn parameters of a sweep.
type churnSettings struct {
	heuristic string
	events    int    // 0 = per-scenario default
	profile   string // "" = per-scenario default
}

// resolveChurn validates the churn configuration.
func (cfg SweepConfig) resolveChurn() (churnSettings, error) {
	cs := churnSettings{
		heuristic: cfg.ChurnHeuristic,
		events:    cfg.ChurnEvents,
		profile:   cfg.ChurnProfile,
	}
	if !cfg.Churn {
		return cs, nil
	}
	if cs.heuristic == "" {
		cs.heuristic = heuristics.NameLPGrowTree
	}
	if _, err := heuristics.ByName(cs.heuristic); err != nil {
		return cs, err
	}
	if cs.events < 0 {
		return cs, fmt.Errorf("scenarios: negative churn-trace length %d", cs.events)
	}
	if cs.profile != "" {
		if _, err := dynamic.ProfileByName(cs.profile); err != nil {
			return cs, err
		}
	}
	return cs, nil
}

// unitChurnParams resolves the effective profile name and trace length of
// one unit under the settings.
func (cs churnSettings) unitParams(s Scenario) (profile string, events int) {
	profile = cs.profile
	if profile == "" {
		profile = s.EffectiveChurnProfile()
	}
	events = cs.events
	if events <= 0 {
		events = s.EffectiveTraceEvents()
	}
	return profile, events
}

// evaluateUnitChurn generates the unit's trace and runs the churn engine on
// the already-generated platform. Failures are recorded in the result, not
// returned: one broken churn run must not abort the sweep.
func evaluateUnitChurn(cfg SweepConfig, cs churnSettings, u unit, p *platform.Platform) *ChurnResult {
	profile, events := cs.unitParams(u.scenario)
	res := &ChurnResult{
		Profile:   profile,
		Events:    events,
		TraceSeed: ChurnTraceSeed(u.seed),
		Heuristic: cs.heuristic,
	}
	prof, err := dynamic.ProfileByName(profile)
	if err != nil {
		res.Error = err.Error()
		return res
	}
	tr, err := dynamic.GenerateTrace(p, cfg.Source, prof, events, res.TraceSeed)
	if err != nil {
		res.Error = fmt.Errorf("generate trace: %w", err).Error()
		return res
	}
	var steadyOpts *steady.Options
	if cfg.ColdStartLP || cfg.RevisedLP || cfg.LPMaxIterations > 0 {
		steadyOpts = &steady.Options{ColdStart: cfg.ColdStartLP, Revised: cfg.RevisedLP}
		if cfg.LPMaxIterations > 0 {
			steadyOpts.LP = &lp.Options{MaxIterations: cfg.LPMaxIterations}
		}
	}
	rep, err := dynamic.Run(p, cfg.Source, tr, dynamic.Config{
		Heuristic: cs.heuristic,
		Model:     cfg.EvalModel,
		Steady:    steadyOpts,
	})
	if err != nil {
		res.Error = fmt.Errorf("churn run: %w", err).Error()
		return res
	}
	res.Keep = condensePolicy(rep, 0)
	res.Repair = condensePolicy(rep, 1)
	res.Rebuild = condensePolicy(rep, 2)
	res.WarmResolves = rep.LP.WarmResolves
	res.Rebuilds = rep.LP.Rebuilds
	res.ResolvePivots = rep.ResolvePivots
	return res
}

// condensePolicy extracts one policy's summary from a churn report.
func condensePolicy(rep *dynamic.Report, idx int) PolicyChurnStats {
	s := rep.Summary[idx]
	return PolicyChurnStats{
		MeanRatio:    s.MeanRatio,
		MinRatio:     s.MinRatio,
		BrokenEvents: s.BrokenEvents,
		Reattached:   s.Reattached,
		LostSlices:   s.LostSlices,
	}
}

// aggregateChurn reduces the per-unit churn results to one aggregate per
// (scenario, size) cell, preserving sweep order. Runs carrying identical
// unit-level results (one per heuristic row) are counted once per unit.
func aggregateChurn(perUnit [][]RunResult, scens []Scenario, sizes [][]int) []ChurnAggregate {
	type key struct {
		scenario string
		size     int
	}
	byCell := make(map[key][]*ChurnResult)
	for _, runs := range perUnit {
		if len(runs) == 0 || runs[0].Churn == nil {
			continue
		}
		k := key{runs[0].Scenario, runs[0].Size}
		byCell[k] = append(byCell[k], runs[0].Churn)
	}
	var out []ChurnAggregate
	for i, s := range scens {
		for _, size := range sizes[i] {
			cell := byCell[key{s.Name, size}]
			if len(cell) == 0 {
				continue
			}
			agg := ChurnAggregate{Scenario: s.Name, Size: size, Profile: cell[0].Profile, Events: cell[0].Events}
			keepMin, repairMin, rebuildMin := math.Inf(1), math.Inf(1), math.Inf(1)
			for _, cr := range cell {
				if cr.Error != "" {
					agg.Errors++
					continue
				}
				agg.Samples++
				accumulate(&agg.Keep, cr.Keep, &keepMin)
				accumulate(&agg.Repair, cr.Repair, &repairMin)
				accumulate(&agg.Rebuild, cr.Rebuild, &rebuildMin)
				agg.WarmResolves += cr.WarmResolves
				agg.Rebuilds += cr.Rebuilds
				agg.ResolvePivots += cr.ResolvePivots
			}
			if agg.Samples > 0 {
				n := float64(agg.Samples)
				agg.Keep.MeanRatio /= n
				agg.Repair.MeanRatio /= n
				agg.Rebuild.MeanRatio /= n
				agg.Keep.LostSlices /= n
				agg.Repair.LostSlices /= n
				agg.Rebuild.LostSlices /= n
				agg.Keep.MinRatio = keepMin
				agg.Repair.MinRatio = repairMin
				agg.Rebuild.MinRatio = rebuildMin
			}
			out = append(out, agg)
		}
	}
	return out
}

// accumulate folds one run's policy stats into a cell aggregate.
func accumulate(dst *PolicyChurnStats, src PolicyChurnStats, min *float64) {
	dst.MeanRatio += src.MeanRatio
	dst.LostSlices += src.LostSlices
	dst.BrokenEvents += src.BrokenEvents
	dst.Reattached += src.Reattached
	if src.MinRatio < *min {
		*min = src.MinRatio
	}
}
