package scenarios

import (
	"encoding/json"
	"math"
	"testing"

	"repro/internal/dynamic"
	"repro/internal/steady"
)

// smallestSize returns the smallest default size of a scenario.
func smallestSize(s Scenario) int {
	size := s.DefaultSizes[0]
	for _, n := range s.DefaultSizes {
		if n < size {
			size = n
		}
	}
	return size
}

// TestChurnTraceRegistryContract every family must produce a deterministic
// trace: same (size, seed) -> byte-identical timeline, and the timeline
// must keep the platform broadcastable.
func TestChurnTraceRegistryContract(t *testing.T) {
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			size := smallestSize(s)
			p1, tr1, err := ChurnTrace(s, size, 0, 42)
			if err != nil {
				t.Fatal(err)
			}
			_, tr2, err := ChurnTrace(s, size, 0, 42)
			if err != nil {
				t.Fatal(err)
			}
			j1, _ := json.Marshal(tr1)
			j2, _ := json.Marshal(tr2)
			if string(j1) != string(j2) {
				t.Fatal("same (size, seed) produced different traces")
			}
			if len(tr1.Events) != s.EffectiveTraceEvents() {
				t.Fatalf("trace has %d events, want %d", len(tr1.Events), s.EffectiveTraceEvents())
			}
			if tr1.Profile != s.EffectiveChurnProfile() {
				t.Fatalf("trace profile %q, want %q", tr1.Profile, s.EffectiveChurnProfile())
			}
			shadow := p1.Clone()
			for i, ev := range tr1.Events {
				if _, err := shadow.ApplyDelta(ev.Delta); err != nil {
					t.Fatalf("event %d (%v): %v", i, ev.Delta, err)
				}
				if err := shadow.ValidateLive(0); err != nil {
					t.Fatalf("event %d (%v) broke broadcastability: %v", i, ev.Delta, err)
				}
			}
		})
	}
}

// TestChurnWarmSessionMatchesColdSolve is the churn differential test of
// the warm steady-session: on every registry family, under a 50-event
// trace, the incrementally re-solved optimum must match a per-event cold
// solve within 1e-6 relative.
func TestChurnWarmSessionMatchesColdSolve(t *testing.T) {
	if testing.Short() {
		t.Skip("differential churn sweep is not short")
	}
	opts := &steady.Options{GapTolerance: 1e-9}
	for _, s := range All() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			size := smallestSize(s)
			p, err := s.Generate(size, 7)
			if err != nil {
				t.Fatal(err)
			}
			prof, err := dynamic.ProfileByName(s.EffectiveChurnProfile())
			if err != nil {
				t.Fatal(err)
			}
			tr, err := dynamic.GenerateTrace(p, 0, prof, 50, ChurnTraceSeed(7))
			if err != nil {
				t.Fatal(err)
			}
			warm, err := dynamic.Run(p, 0, tr, dynamic.Config{Steady: opts})
			if err != nil {
				t.Fatal(err)
			}
			cold, err := dynamic.Run(p, 0, tr, dynamic.Config{Steady: opts, ColdResolve: true})
			if err != nil {
				t.Fatal(err)
			}
			for i := range warm.Events {
				w, c := warm.Events[i].Optimal, cold.Events[i].Optimal
				rel := math.Abs(w-c) / math.Max(c, 1e-12)
				if rel > 1e-6 {
					t.Errorf("event %d (%v): warm optimum %v vs cold %v (rel %v)",
						i, warm.Events[i].Delta, w, c, rel)
				}
			}
		})
	}
}

// TestSweepChurnDeterministicAcrossWorkers the churn dimension must not
// break the sweep's byte-for-byte determinism regardless of worker count.
func TestSweepChurnDeterministicAcrossWorkers(t *testing.T) {
	cfg := SweepConfig{
		Scenarios:   []string{NameRing, NameLastMile},
		Sizes:       nil, // per-scenario defaults would be big; set explicitly below
		Heuristics:  []string{"grow-tree"},
		Repetitions: 2,
		Seed:        5,
		Churn:       true,
		ChurnEvents: 15,
	}
	cfg.Sizes = []int{8}
	var reports [][]byte
	for _, workers := range []int{1, 4} {
		c := cfg
		c.Workers = workers
		rep, err := Sweep(c)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, data)
	}
	if string(reports[0]) != string(reports[1]) {
		t.Fatal("churn sweep output differs across worker counts")
	}
}

// TestSweepChurnResults the churn dimension must attach results to every
// run row and produce one aggregate per cell with sane values.
func TestSweepChurnResults(t *testing.T) {
	rep, err := Sweep(SweepConfig{
		Scenarios:   []string{NameLastMile},
		Sizes:       []int{12},
		Heuristics:  []string{"grow-tree", "lp-grow-tree"},
		Repetitions: 2,
		Seed:        3,
		Churn:       true,
		ChurnEvents: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Runs {
		if r.Churn == nil {
			t.Fatalf("run %s/%s has no churn result", r.Scenario, r.Heuristic)
		}
		if r.Churn.Error != "" {
			t.Fatalf("churn run failed: %s", r.Churn.Error)
		}
		if r.Churn.Events != 12 || r.Churn.Profile != dynamic.ProfileFailures {
			t.Fatalf("churn params %d/%q, want 12/%q", r.Churn.Events, r.Churn.Profile, dynamic.ProfileFailures)
		}
	}
	if len(rep.ChurnAggregates) != 1 {
		t.Fatalf("churn aggregates = %d, want 1", len(rep.ChurnAggregates))
	}
	ca := rep.ChurnAggregates[0]
	if ca.Samples != 2 {
		t.Fatalf("aggregate samples = %d, want 2", ca.Samples)
	}
	for name, ps := range map[string]PolicyChurnStats{"keep": ca.Keep, "repair": ca.Repair, "rebuild": ca.Rebuild} {
		if ps.MeanRatio < 0 || ps.MeanRatio > 1+1e-9 {
			t.Errorf("%s mean ratio %v outside [0, 1]", name, ps.MeanRatio)
		}
	}
	// The rebuild policy must track the optimum at least as well as keep on
	// a failure-heavy profile (keep breaks on the first tree failure).
	if ca.Rebuild.MeanRatio < ca.Keep.MeanRatio-1e-9 {
		t.Errorf("rebuild ratio %v below keep ratio %v", ca.Rebuild.MeanRatio, ca.Keep.MeanRatio)
	}
	if rep.Meta.TotalChurnResolvePivots == 0 {
		t.Error("meta reports no churn resolve pivots")
	}
	// Unknown churn profile overrides must be rejected helpfully.
	_, err = Sweep(SweepConfig{Scenarios: []string{NameRing}, Sizes: []int{8}, Churn: true, ChurnProfile: "bogus"})
	if err == nil {
		t.Fatal("unknown churn profile accepted")
	}
}
