package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/platform"
)

func TestBandwidthDistSample(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := PaperBandwidth
	var sum float64
	const n = 5000
	for i := 0; i < n; i++ {
		b := d.Sample(rng)
		if b < d.Min {
			t.Fatalf("sample %v below truncation %v", b, d.Min)
		}
		sum += b
	}
	mean := sum / n
	if mean < 95 || mean > 105 {
		t.Fatalf("empirical mean %v too far from 100", mean)
	}
}

func TestBandwidthDistSampleDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Extremely negative-skewed distribution: samples fall back to Min.
	d := BandwidthDist{Mean: 1, StdDev: 1000, Min: 0.5}
	for i := 0; i < 100; i++ {
		if b := d.Sample(rng); b < 0.5 {
			t.Fatalf("sample %v below minimum", b)
		}
	}
	// Zero Min defaults to Mean/100.
	d = BandwidthDist{Mean: 100, StdDev: 0}
	if b := d.Sample(rng); b != 100 {
		t.Fatalf("deterministic sample = %v", b)
	}
}

func TestBandwidthDistSamplePanicsOnBadMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-positive mean")
		}
	}()
	BandwidthDist{Mean: 0}.Sample(rand.New(rand.NewSource(1)))
}

func TestBandwidthDistCost(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := BandwidthDist{Mean: 100, StdDev: 0, Min: 1}.Cost(rng)
	if math.Abs(c.Time(100)-1) > 1e-12 {
		t.Fatalf("cost for 100 units at bandwidth 100 = %v, want 1", c.Time(100))
	}
}

func TestRandomConfigValidate(t *testing.T) {
	good := DefaultRandomConfig(10, 0.1)
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	bad := []RandomConfig{
		{Nodes: 1, Density: 0.1, Bandwidth: PaperBandwidth},
		{Nodes: 10, Density: -0.1, Bandwidth: PaperBandwidth},
		{Nodes: 10, Density: 1.5, Bandwidth: PaperBandwidth},
		{Nodes: 10, Density: 0.1, Bandwidth: BandwidthDist{Mean: 0}},
		{Nodes: 10, Density: 0.1, Bandwidth: PaperBandwidth, SliceSize: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := Random(bad[0], nil); err == nil {
		t.Fatal("Random accepted invalid config")
	}
}

func TestRandomPlatformIsBroadcastable(t *testing.T) {
	for _, n := range []int{5, 10, 20, 40} {
		for _, density := range []float64{0.04, 0.1, 0.2} {
			rng := rand.New(rand.NewSource(int64(n*100) + int64(density*1000)))
			p, err := Random(DefaultRandomConfig(n, density), rng)
			if err != nil {
				t.Fatalf("Random(%d, %v): %v", n, density, err)
			}
			if p.NumNodes() != n {
				t.Fatalf("node count = %d, want %d", p.NumNodes(), n)
			}
			for src := 0; src < n; src += n / 2 {
				if err := p.Validate(src); err != nil {
					t.Fatalf("platform not broadcastable from %d: %v", src, err)
				}
			}
		}
	}
}

func TestRandomPlatformDensityTracksTarget(t *testing.T) {
	// For a dense enough configuration the realized density should be close
	// to the requested one (connectivity enforcement only matters for very
	// sparse configurations).
	rng := rand.New(rand.NewSource(7))
	const n, target = 40, 0.2
	var densities []float64
	for i := 0; i < 10; i++ {
		p, err := Random(DefaultRandomConfig(n, target), rng)
		if err != nil {
			t.Fatal(err)
		}
		densities = append(densities, p.Density())
	}
	var mean float64
	for _, d := range densities {
		mean += d
	}
	mean /= float64(len(densities))
	if mean < 0.15 || mean > 0.3 {
		t.Fatalf("mean realized density %v too far from target %v", mean, target)
	}
}

func TestRandomPlatformMultiPortOverheads(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, err := Random(DefaultRandomConfig(15, 0.2), rng)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < p.NumNodes(); u++ {
		if len(p.OutLinkIDs(u)) == 0 {
			continue
		}
		minOut := math.Inf(1)
		for _, id := range p.OutLinkIDs(u) {
			if tt := p.SliceTime(id); tt < minOut {
				minOut = tt
			}
		}
		send := p.SendTime(u)
		if send <= 0 || send > minOut {
			t.Fatalf("node %d send overhead %v outside (0, %v]", u, send, minOut)
		}
		if math.Abs(send-0.8*minOut) > 1e-9 {
			t.Fatalf("node %d send overhead %v != 0.8*min %v", u, send, 0.8*minOut)
		}
	}
}

func TestRandomDeterministicForSameSeed(t *testing.T) {
	cfg := DefaultRandomConfig(20, 0.1)
	a, err := Random(cfg, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Random(cfg, rand.New(rand.NewSource(99)))
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLinks() != b.NumLinks() {
		t.Fatalf("link counts differ: %d vs %d", a.NumLinks(), b.NumLinks())
	}
	for id := 0; id < a.NumLinks(); id++ {
		if a.Link(id) != b.Link(id) {
			t.Fatalf("link %d differs", id)
		}
	}
}

func TestRandomNilRNG(t *testing.T) {
	if _, err := Random(DefaultRandomConfig(8, 0.2), nil); err != nil {
		t.Fatal(err)
	}
}

func TestPaperSweeps(t *testing.T) {
	if got := PaperNodeCounts(); len(got) != 5 || got[0] != 10 || got[4] != 50 {
		t.Fatalf("PaperNodeCounts = %v", got)
	}
	if got := PaperDensities(); len(got) != 5 || got[0] != 0.04 || got[4] != 0.2 {
		t.Fatalf("PaperDensities = %v", got)
	}
}

func TestTiersPresets(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  TiersConfig
	}{
		{"tiers30", Tiers30()},
		{"tiers65", Tiers65()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); err != nil {
				t.Fatalf("preset invalid: %v", err)
			}
			rng := rand.New(rand.NewSource(5))
			p, err := Tiers(tc.cfg, rng)
			if err != nil {
				t.Fatal(err)
			}
			if p.NumNodes() != tc.cfg.TotalNodes {
				t.Fatalf("nodes = %d, want %d", p.NumNodes(), tc.cfg.TotalNodes)
			}
			if err := p.Validate(0); err != nil {
				t.Fatalf("tiers platform not broadcastable: %v", err)
			}
			d := p.Density()
			if d < 0.02 || d > 0.25 {
				t.Fatalf("density %v outside plausible Tiers range", d)
			}
		})
	}
}

func TestTiersValidateErrors(t *testing.T) {
	bad := []TiersConfig{
		{TotalNodes: 10, WANNodes: 0, Bandwidth: PaperBandwidth},
		{TotalNodes: 10, WANNodes: 2, MANNodesPerWAN: -1, Bandwidth: PaperBandwidth},
		{TotalNodes: 3, WANNodes: 4, Bandwidth: PaperBandwidth},
		{TotalNodes: 10, WANNodes: 2, MANNodesPerWAN: 1, Bandwidth: BandwidthDist{}},
		{TotalNodes: 10, WANNodes: 2, MANNodesPerWAN: 1, Bandwidth: PaperBandwidth, WANScale: -1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad tiers config %d accepted", i)
		}
	}
	if _, err := Tiers(bad[0], nil); err == nil {
		t.Fatal("Tiers accepted invalid config")
	}
}

func TestTiersScaledLevels(t *testing.T) {
	cfg := Tiers30()
	cfg.WANScale = 10 // WAN links ten times slower
	rng := rand.New(rand.NewSource(11))
	p, err := Tiers(cfg, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Links between WAN nodes (0..3) should be roughly 10x slower than LAN
	// leaf links on average.
	var wanTimes, lanTimes []float64
	for id := 0; id < p.NumLinks(); id++ {
		l := p.Link(id)
		if l.From < cfg.WANNodes && l.To < cfg.WANNodes {
			wanTimes = append(wanTimes, p.SliceTime(id))
		}
		if l.From >= cfg.WANNodes+cfg.WANNodes*cfg.MANNodesPerWAN || l.To >= cfg.WANNodes+cfg.WANNodes*cfg.MANNodesPerWAN {
			lanTimes = append(lanTimes, p.SliceTime(id))
		}
	}
	if len(wanTimes) == 0 || len(lanTimes) == 0 {
		t.Fatal("missing WAN or LAN links")
	}
	mean := func(xs []float64) float64 {
		var s float64
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	if mean(wanTimes) < 4*mean(lanTimes) {
		t.Fatalf("WAN links not slower: wan=%v lan=%v", mean(wanTimes), mean(lanTimes))
	}
}

func TestTiersNilRNGAndDeterminism(t *testing.T) {
	a, err := Tiers(Tiers30(), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tiers(Tiers30(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLinks() != b.NumLinks() {
		t.Fatal("nil-RNG generation not deterministic")
	}
}

func TestStarChainRingGridHypercube(t *testing.T) {
	d := Uniform(1)
	star, err := Star(5, d, nil)
	if err != nil || star.NumLinks() != 8 {
		t.Fatalf("star: %v links=%d", err, star.NumLinks())
	}
	chain, err := Chain(4, d, nil)
	if err != nil || chain.NumLinks() != 6 {
		t.Fatalf("chain: %v", err)
	}
	ring, err := Ring(4, d, nil)
	if err != nil || ring.NumLinks() != 8 {
		t.Fatalf("ring: %v links=%d", err, ring.NumLinks())
	}
	ring2, err := Ring(2, d, nil)
	if err != nil || ring2.NumLinks() != 2 {
		t.Fatalf("2-ring should be a single pair: %v", err)
	}
	grid, err := Grid2D(3, 3, d, nil)
	if err != nil || grid.NumLinks() != 2*12 {
		t.Fatalf("grid: %v links=%d", err, grid.NumLinks())
	}
	cube, err := Hypercube(3, d, nil)
	if err != nil || cube.NumNodes() != 8 || cube.NumLinks() != 2*12 {
		t.Fatalf("hypercube: %v", err)
	}
	for _, p := range []*platform.Platform{star, chain, ring, grid, cube} {
		if err := p.Validate(0); err != nil {
			t.Fatalf("regular topology not broadcastable: %v", err)
		}
	}
	// Error cases.
	if _, err := Star(1, d, nil); err == nil {
		t.Fatal("Star(1) accepted")
	}
	if _, err := Chain(1, d, nil); err == nil {
		t.Fatal("Chain(1) accepted")
	}
	if _, err := Grid2D(0, 3, d, nil); err == nil {
		t.Fatal("Grid2D(0,3) accepted")
	}
	if _, err := Hypercube(0, d, nil); err == nil {
		t.Fatal("Hypercube(0) accepted")
	}
}

func TestClusters(t *testing.T) {
	cfg := DefaultClusterConfig()
	p, err := Clusters(cfg, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if p.NumNodes() != cfg.Clusters*cfg.NodesPerCluster {
		t.Fatalf("nodes = %d", p.NumNodes())
	}
	if err := p.Validate(0); err != nil {
		t.Fatalf("cluster platform not broadcastable: %v", err)
	}
	// Backbone links should be slower than intra-cluster links on average.
	intra := p.SliceTimeBetween(0, 1)
	inter := p.SliceTimeBetween(0, cfg.NodesPerCluster)
	if inter <= intra {
		t.Fatalf("backbone (%v) should be slower than intra-cluster (%v)", inter, intra)
	}

	full := cfg
	full.FullBackbone = true
	pf, err := Clusters(full, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if pf.NumLinks() <= p.NumLinks() {
		t.Fatal("full backbone should add links")
	}

	if _, err := Clusters(ClusterConfig{Clusters: 0, NodesPerCluster: 2}, nil); err == nil {
		t.Fatal("invalid cluster config accepted")
	}
	if _, err := Clusters(ClusterConfig{Clusters: 1, NodesPerCluster: 1}, nil); err == nil {
		t.Fatal("single-node cluster platform accepted")
	}
}

func TestUniformHelpers(t *testing.T) {
	d := Uniform(2)
	rng := rand.New(rand.NewSource(1))
	if math.Abs(d.Cost(rng).Time(1)-2) > 1e-12 {
		t.Fatal("Uniform(2) should give 2 time units per unit slice")
	}
	if UniformCost(3).Time(1) != 3 {
		t.Fatal("UniformCost wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Uniform(0) did not panic")
		}
	}()
	Uniform(0)
}

func TestRandomPropertyAllBroadcastable(t *testing.T) {
	f := func(seed int64, nRaw, dRaw uint8) bool {
		n := 3 + int(nRaw%30)
		density := 0.02 + float64(dRaw%20)/100
		rng := rand.New(rand.NewSource(seed))
		p, err := Random(DefaultRandomConfig(n, density), rng)
		if err != nil {
			return false
		}
		// Every node can act as the broadcast source.
		for src := 0; src < n; src++ {
			if err := p.Validate(src); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
