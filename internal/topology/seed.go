package topology

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"math/rand"
)

// NewRNG returns the deterministic random stream of a seed. Every seeded
// generator of the repository (topology families, scenario registry, churn
// traces, robustness trials) obtains its stream through this one helper so
// that seed handling cannot silently diverge between subsystems.
//
//lint:ignore detrand NewRNG is the one blessed RNG constructor the rule funnels everything through
func NewRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// ensureRNG returns rng, or the package's fixed default stream when rng is
// nil. The generators accept a nil RNG for convenience in examples and
// tests; deterministic callers always pass an explicit stream.
func ensureRNG(rng *rand.Rand) *rand.Rand {
	if rng == nil {
		return NewRNG(1)
	}
	return rng
}

// DeriveSeed derives the deterministic sub-seed of one generation step from
// a base seed, a textual label and any number of integer coordinates, by
// FNV-1a hashing the identifying fields (rather than positional indices), so
// a derived seed is stable when unrelated steps are added or removed. The
// result is always positive. scenarios.UnitSeed and the churn-trace
// derivation are both defined in terms of this helper.
func DeriveSeed(base int64, label string, coords ...int) int64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(base))
	h.Write(buf[:])
	h.Write([]byte(label))
	for _, c := range coords {
		binary.LittleEndian.PutUint64(buf[:], uint64(c))
		h.Write(buf[:])
	}
	seed := int64(h.Sum64() & math.MaxInt64)
	if seed == 0 {
		seed = 1
	}
	return seed
}
