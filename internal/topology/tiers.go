package topology

import (
	"fmt"
	"math/rand"

	"repro/internal/platform"
)

// TiersConfig describes a Tiers-like hierarchical platform. The original
// Tiers generator [Calvert, Doar, Zegura 1997] builds a three-level
// WAN / MAN / LAN topology; this configuration reproduces that structure:
// a wide-area core, metropolitan subnetworks attached to core nodes, and
// local-area hosts attached to metropolitan nodes, plus redundancy links
// that bring the density into the 0.05–0.15 range reported by the paper.
type TiersConfig struct {
	// TotalNodes is the number of processors of the platform (the paper
	// uses 30 and 65).
	TotalNodes int `json:"totalNodes"`
	// WANNodes is the number of wide-area core nodes.
	WANNodes int `json:"wanNodes"`
	// MANNodesPerWAN is the number of metropolitan nodes attached to each
	// WAN node.
	MANNodesPerWAN int `json:"manNodesPerWAN"`
	// WANRedundancy is the number of extra links added between random WAN
	// node pairs (beyond the core tree).
	WANRedundancy int `json:"wanRedundancy"`
	// MANRedundancy is the number of extra links added inside each
	// metropolitan subnetwork.
	MANRedundancy int `json:"manRedundancy"`
	// ExtraLinks is the number of additional links added between random node
	// pairs anywhere in the hierarchy (Tiers adds such redundant edges to
	// avoid single points of failure); it is used to bring the density of
	// the large platforms into the 0.05–0.15 range reported by the paper.
	ExtraLinks int `json:"extraLinks"`
	// Bandwidth distributions per level. The paper uses the same Gaussian
	// (100, 20) distribution as for random platforms on every level; the
	// scale factors allow exploring more heterogeneous hierarchies.
	Bandwidth BandwidthDist `json:"bandwidth"`
	WANScale  float64       `json:"wanScale"` // multiplies WAN link *times* (>=1 means slower)
	MANScale  float64       `json:"manScale"`
	LANScale  float64       `json:"lanScale"`
	// SliceSize is the message slice size L.
	SliceSize float64 `json:"sliceSize"`
	// MultiPortFraction derives multi-port overheads as in RandomConfig.
	MultiPortFraction float64 `json:"multiPortFraction"`
}

// Tiers30 returns a preset configuration with 30 nodes, matching the small
// Tiers platforms of Table 3 (density lands in the 0.05–0.15 range).
func Tiers30() TiersConfig {
	return TiersConfig{
		TotalNodes:        30,
		WANNodes:          4,
		MANNodesPerWAN:    3,
		WANRedundancy:     2,
		MANRedundancy:     1,
		ExtraLinks:        6,
		Bandwidth:         PaperBandwidth,
		WANScale:          1,
		MANScale:          1,
		LANScale:          1,
		SliceSize:         platform.DefaultSliceSize,
		MultiPortFraction: 0.8,
	}
}

// Tiers65 returns a preset configuration with 65 nodes, matching the large
// Tiers platforms of Table 3.
func Tiers65() TiersConfig {
	return TiersConfig{
		TotalNodes:        65,
		WANNodes:          6,
		MANNodesPerWAN:    4,
		WANRedundancy:     4,
		MANRedundancy:     2,
		ExtraLinks:        25,
		Bandwidth:         PaperBandwidth,
		WANScale:          1,
		MANScale:          1,
		LANScale:          1,
		SliceSize:         platform.DefaultSliceSize,
		MultiPortFraction: 0.8,
	}
}

// Validate checks the configuration parameters.
func (c TiersConfig) Validate() error {
	if c.WANNodes < 1 {
		return fmt.Errorf("topology: tiers needs at least 1 WAN node, got %d", c.WANNodes)
	}
	if c.MANNodesPerWAN < 0 {
		return fmt.Errorf("topology: negative MAN nodes per WAN: %d", c.MANNodesPerWAN)
	}
	core := c.WANNodes + c.WANNodes*c.MANNodesPerWAN
	if c.TotalNodes < core {
		return fmt.Errorf("topology: total nodes %d smaller than WAN+MAN core %d", c.TotalNodes, core)
	}
	if c.Bandwidth.Mean <= 0 {
		return fmt.Errorf("topology: non-positive mean bandwidth %v", c.Bandwidth.Mean)
	}
	if c.WANScale < 0 || c.MANScale < 0 || c.LANScale < 0 {
		return fmt.Errorf("topology: negative level scale")
	}
	return nil
}

// scaled returns the bandwidth distribution whose link times are multiplied
// by scale (i.e. bandwidths divided by scale). A zero scale means 1.
func scaled(d BandwidthDist, scale float64) BandwidthDist {
	if scale <= 0 || scale == 1 {
		return d
	}
	return BandwidthDist{Mean: d.Mean / scale, StdDev: d.StdDev / scale, Min: d.Min / scale}
}

// Tiers generates a Tiers-like hierarchical platform:
//
//   - a WAN core: WANNodes nodes connected by a random spanning tree plus
//     WANRedundancy extra links;
//   - one MAN per WAN node: MANNodesPerWAN nodes attached to their WAN node
//     as a random tree plus MANRedundancy extra links;
//   - LAN hosts: the remaining TotalNodes - core nodes, attached round-robin
//     to MAN nodes (or to WAN nodes when there are no MAN nodes) as leaves.
//
// All links are bidirectional pairs with independently drawn costs.
func Tiers(cfg TiersConfig, rng *rand.Rand) (*platform.Platform, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng = ensureRNG(rng)
	p := platform.New(cfg.TotalNodes)
	if cfg.SliceSize > 0 {
		p.SetSliceSize(cfg.SliceSize)
	}

	wanBW := scaled(cfg.Bandwidth, cfg.WANScale)
	manBW := scaled(cfg.Bandwidth, cfg.MANScale)
	lanBW := scaled(cfg.Bandwidth, cfg.LANScale)

	// Level 1: WAN core nodes are 0..WANNodes-1, connected as a random tree.
	wan := make([]int, cfg.WANNodes)
	for i := range wan {
		wan[i] = i
		p.SetNode(i, platform.Node{Name: fmt.Sprintf("wan%d", i)})
	}
	for i := 1; i < len(wan); i++ {
		symmetricPair(p, wan[rng.Intn(i)], wan[i], wanBW, rng)
	}
	for k := 0; k < cfg.WANRedundancy && len(wan) > 1; k++ {
		u, v := wan[rng.Intn(len(wan))], wan[rng.Intn(len(wan))]
		if u != v && !p.HasLink(u, v) {
			symmetricPair(p, u, v, wanBW, rng)
		}
	}

	// Level 2: MAN nodes attached to their WAN gateway.
	next := cfg.WANNodes
	manNodes := make([]int, 0, cfg.WANNodes*cfg.MANNodesPerWAN)
	for _, w := range wan {
		local := make([]int, 0, cfg.MANNodesPerWAN)
		for j := 0; j < cfg.MANNodesPerWAN; j++ {
			id := next
			next++
			p.SetNode(id, platform.Node{Name: fmt.Sprintf("man%d-%d", w, j)})
			// Attach to the WAN gateway or to a previously created MAN node
			// of the same subnetwork (random tree shape).
			attach := w
			if len(local) > 0 && rng.Float64() < 0.5 {
				attach = local[rng.Intn(len(local))]
			}
			symmetricPair(p, attach, id, manBW, rng)
			local = append(local, id)
		}
		for k := 0; k < cfg.MANRedundancy && len(local) > 1; k++ {
			u, v := local[rng.Intn(len(local))], local[rng.Intn(len(local))]
			if u != v && !p.HasLink(u, v) {
				symmetricPair(p, u, v, manBW, rng)
			}
		}
		manNodes = append(manNodes, local...)
	}

	// Level 3: LAN hosts attached round-robin to MAN nodes (or WAN nodes if
	// there is no MAN level).
	attachPool := manNodes
	if len(attachPool) == 0 {
		attachPool = wan
	}
	hostIdx := 0
	for next < cfg.TotalNodes {
		id := next
		next++
		gw := attachPool[hostIdx%len(attachPool)]
		hostIdx++
		p.SetNode(id, platform.Node{Name: fmt.Sprintf("host%d", id)})
		symmetricPair(p, gw, id, lanBW, rng)
	}

	// Cross-hierarchy redundancy links, as added by the Tiers generator.
	for k, attempts := 0, 0; k < cfg.ExtraLinks && attempts < 50*cfg.ExtraLinks; attempts++ {
		u, v := rng.Intn(cfg.TotalNodes), rng.Intn(cfg.TotalNodes)
		if u == v || p.HasLink(u, v) {
			continue
		}
		// Links within a MAN/LAN neighbourhood stay fast; links that cross
		// the hierarchy behave like MAN links.
		symmetricPair(p, u, v, manBW, rng)
		k++
	}

	if cfg.MultiPortFraction > 0 {
		p.DeriveMultiPortOverheads(cfg.MultiPortFraction)
	}
	return p, nil
}
