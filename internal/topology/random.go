package topology

import (
	"fmt"
	"math/rand"

	"repro/internal/platform"
)

// RandomConfig describes the random platforms of Table 2 of the paper.
type RandomConfig struct {
	// Nodes is the number of processors (Table 2: 10, 20, ..., 50).
	Nodes int `json:"nodes"`
	// Density is the probability that an (unordered) pair of nodes is
	// connected by a (bidirectional) link (Table 2: 0.04, 0.08, ..., 0.20).
	// The generator then guarantees connectivity, so the effective density
	// of very sparse configurations can be slightly higher.
	Density float64 `json:"density"`
	// Bandwidth is the link bandwidth distribution (Table 2: Gaussian with
	// mean 100 MB/s, deviation 20 MB/s).
	Bandwidth BandwidthDist `json:"bandwidth"`
	// SliceSize is the message slice size L (in the same unit as
	// bandwidth·time, e.g. MB). Defaults to platform.DefaultSliceSize.
	SliceSize float64 `json:"sliceSize"`
	// MultiPortFraction is the fraction of the smallest outgoing link
	// occupation used as the per-send overhead send_u under the multi-port
	// model (the paper uses 0.80). Zero disables the derivation.
	MultiPortFraction float64 `json:"multiPortFraction"`
}

// DefaultRandomConfig returns the paper's configuration for a given node
// count and density: Gaussian bandwidths (100, 20), slice size 1, multi-port
// overheads at 80% of the fastest outgoing link.
func DefaultRandomConfig(nodes int, density float64) RandomConfig {
	return RandomConfig{
		Nodes:             nodes,
		Density:           density,
		Bandwidth:         PaperBandwidth,
		SliceSize:         platform.DefaultSliceSize,
		MultiPortFraction: 0.8,
	}
}

// Validate checks the configuration parameters.
func (c RandomConfig) Validate() error {
	if c.Nodes < 2 {
		return fmt.Errorf("topology: random platform needs at least 2 nodes, got %d", c.Nodes)
	}
	if c.Density < 0 || c.Density > 1 {
		return fmt.Errorf("topology: density %v outside [0, 1]", c.Density)
	}
	if c.Bandwidth.Mean <= 0 {
		return fmt.Errorf("topology: non-positive mean bandwidth %v", c.Bandwidth.Mean)
	}
	if c.SliceSize < 0 {
		return fmt.Errorf("topology: negative slice size %v", c.SliceSize)
	}
	return nil
}

// Random generates a random heterogeneous platform following Table 2 of the
// paper: every unordered pair of nodes is connected by a bidirectional pair
// of links with probability Density, each direction drawing an independent
// bandwidth from the configured distribution. The platform is then made
// connected (so a broadcast from any source reaches every node) and, if
// MultiPortFraction is positive, per-node multi-port overheads are derived.
func Random(cfg RandomConfig, rng *rand.Rand) (*platform.Platform, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng = ensureRNG(rng)
	p := platform.New(cfg.Nodes)
	if cfg.SliceSize > 0 {
		p.SetSliceSize(cfg.SliceSize)
	}
	for u := 0; u < cfg.Nodes; u++ {
		p.SetNode(u, platform.Node{Name: fmt.Sprintf("P%d", u)})
	}
	for u := 0; u < cfg.Nodes; u++ {
		for v := u + 1; v < cfg.Nodes; v++ {
			if rng.Float64() < cfg.Density {
				symmetricPair(p, u, v, cfg.Bandwidth, rng)
			}
		}
	}
	connectComponents(p, cfg.Bandwidth, rng)
	if cfg.MultiPortFraction > 0 {
		p.DeriveMultiPortOverheads(cfg.MultiPortFraction)
	}
	return p, nil
}

// PaperNodeCounts returns the node counts swept by Figure 4(a) and Figure 5
// of the paper: 10, 20, 30, 40, 50.
func PaperNodeCounts() []int { return []int{10, 20, 30, 40, 50} }

// PaperDensities returns the densities swept by Figure 4(b) of the paper:
// 0.04, 0.08, 0.12, 0.16, 0.20.
func PaperDensities() []float64 { return []float64{0.04, 0.08, 0.12, 0.16, 0.20} }
