// Package topology generates heterogeneous platforms: the random platforms
// of Table 2 of the paper, Tiers-like hierarchical WAN/MAN/LAN platforms
// (substituting for the Tiers generator used in Section 5.1), and a few
// regular topologies (star, chain, ring, grid, hypercube, clustered) used by
// examples and tests.
//
// All generators are deterministic given an explicit *rand.Rand.
package topology
