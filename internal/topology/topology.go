package topology

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/platform"
)

// BandwidthDist describes a truncated Gaussian distribution of link
// bandwidths (data units per time unit). The paper's Table 2 uses mean
// 100 MB/s and deviation 20 MB/s.
type BandwidthDist struct {
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stdDev"`
	// Min is the lower truncation bound; samples below Min are redrawn
	// (and finally clamped) so that link costs stay finite and positive.
	Min float64 `json:"min"`
}

// PaperBandwidth is the bandwidth distribution of Table 2 (mean 100,
// deviation 20, truncated at 10).
var PaperBandwidth = BandwidthDist{Mean: 100, StdDev: 20, Min: 10}

// Sample draws one bandwidth value.
func (d BandwidthDist) Sample(rng *rand.Rand) float64 {
	if d.Mean <= 0 {
		panic(fmt.Sprintf("topology: non-positive mean bandwidth %v", d.Mean))
	}
	min := d.Min
	if min <= 0 {
		min = d.Mean / 100
	}
	for i := 0; i < 32; i++ {
		b := d.Mean + d.StdDev*rng.NormFloat64()
		if b >= min {
			return b
		}
	}
	return min
}

// Cost returns a linear link cost drawn from the distribution: the time to
// transfer one data unit is 1/bandwidth.
func (d BandwidthDist) Cost(rng *rand.Rand) model.AffineCost {
	return model.FromBandwidth(d.Sample(rng))
}

// symmetricPair adds a pair of opposite links between a and b, each with an
// independently drawn cost (heterogeneous directions), and returns nothing.
func symmetricPair(p *platform.Platform, a, b int, d BandwidthDist, rng *rand.Rand) {
	p.MustAddLink(a, b, d.Cost(rng))
	p.MustAddLink(b, a, d.Cost(rng))
}

// connectComponents adds bidirectional links between randomly chosen
// representatives of distinct connected components (of the undirected
// support) until the platform is connected. It is used by the random
// generator to guarantee that a broadcast from any source can reach every
// node.
func connectComponents(p *platform.Platform, d BandwidthDist, rng *rand.Rand) {
	n := p.NumNodes()
	for {
		comp := components(p)
		if len(comp) <= 1 {
			return
		}
		// Connect each component to a node of the first component.
		base := comp[0][rng.Intn(len(comp[0]))]
		for _, c := range comp[1:] {
			u := c[rng.Intn(len(c))]
			symmetricPair(p, base, u, d, rng)
		}
		if n <= 1 {
			return
		}
	}
}

// components returns the connected components of the undirected support of
// the platform, each as a list of node indices.
func components(p *platform.Platform) [][]int {
	n := p.NumNodes()
	uf := newUF(n)
	for _, l := range p.Links() {
		uf.union(l.From, l.To)
	}
	groups := make(map[int][]int)
	for u := 0; u < n; u++ {
		r := uf.find(u)
		groups[r] = append(groups[r], u)
	}
	out := make([][]int, 0, len(groups))
	// Deterministic order: by smallest member.
	used := make(map[int]bool)
	for u := 0; u < n; u++ {
		r := uf.find(u)
		if !used[r] {
			used[r] = true
			out = append(out, groups[r])
		}
	}
	return out
}

// minimal union-find to avoid importing graph here (keeps the dependency
// graph acyclic: platform does not depend on topology).
type uf struct{ parent []int }

func newUF(n int) *uf {
	u := &uf{parent: make([]int, n)}
	for i := range u.parent {
		u.parent[i] = i
	}
	return u
}

func (u *uf) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

func (u *uf) union(a, b int) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[rb] = ra
	}
}
