package topology

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/platform"
)

// Star returns a platform where node 0 is connected to every other node by
// a bidirectional pair of links; each direction draws an independent cost
// from the distribution. Used by examples and as a simple worst case for
// one-port broadcasting (the source serializes all sends).
func Star(n int, d BandwidthDist, rng *rand.Rand) (*platform.Platform, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: star needs at least 2 nodes, got %d", n)
	}
	rng = ensureRNG(rng)
	p := platform.New(n)
	for v := 1; v < n; v++ {
		symmetricPair(p, 0, v, d, rng)
	}
	return p, nil
}

// Chain returns a platform 0 - 1 - ... - n-1 with bidirectional links.
func Chain(n int, d BandwidthDist, rng *rand.Rand) (*platform.Platform, error) {
	if n < 2 {
		return nil, fmt.Errorf("topology: chain needs at least 2 nodes, got %d", n)
	}
	rng = ensureRNG(rng)
	p := platform.New(n)
	for v := 0; v+1 < n; v++ {
		symmetricPair(p, v, v+1, d, rng)
	}
	return p, nil
}

// Ring returns a bidirectional ring of n nodes.
func Ring(n int, d BandwidthDist, rng *rand.Rand) (*platform.Platform, error) {
	p, err := Chain(n, d, rng)
	if err != nil {
		return nil, err
	}
	if n > 2 {
		rng = ensureRNG(rng)
		symmetricPair(p, n-1, 0, d, rng)
	}
	return p, nil
}

// Grid2D returns a rows x cols 2-D mesh with bidirectional links between
// orthogonal neighbours. Node (r, c) has index r*cols + c.
func Grid2D(rows, cols int, d BandwidthDist, rng *rand.Rand) (*platform.Platform, error) {
	if rows < 1 || cols < 1 || rows*cols < 2 {
		return nil, fmt.Errorf("topology: invalid grid %dx%d", rows, cols)
	}
	rng = ensureRNG(rng)
	p := platform.New(rows * cols)
	idx := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				symmetricPair(p, idx(r, c), idx(r, c+1), d, rng)
			}
			if r+1 < rows {
				symmetricPair(p, idx(r, c), idx(r+1, c), d, rng)
			}
		}
	}
	return p, nil
}

// Hypercube returns a binary hypercube of dimension dim (2^dim nodes) with
// bidirectional links between nodes whose indices differ in one bit.
func Hypercube(dim int, d BandwidthDist, rng *rand.Rand) (*platform.Platform, error) {
	if dim < 1 || dim > 20 {
		return nil, fmt.Errorf("topology: hypercube dimension %d outside [1, 20]", dim)
	}
	rng = ensureRNG(rng)
	n := 1 << dim
	p := platform.New(n)
	for u := 0; u < n; u++ {
		for b := 0; b < dim; b++ {
			v := u ^ (1 << b)
			if u < v {
				symmetricPair(p, u, v, d, rng)
			}
		}
	}
	return p, nil
}

// ClusterConfig describes a heterogeneous "cluster of clusters" platform:
// several homogeneous clusters with fast internal links, whose front-end
// nodes are connected by a slow wide-area backbone. This is the kind of
// platform the paper's introduction motivates (grid of clusters).
type ClusterConfig struct {
	// Clusters is the number of clusters; the front-end of cluster i is the
	// node with the smallest index in that cluster.
	Clusters int `json:"clusters"`
	// NodesPerCluster includes the front-end.
	NodesPerCluster int `json:"nodesPerCluster"`
	// IntraBandwidth is the bandwidth distribution of links inside a cluster.
	IntraBandwidth BandwidthDist `json:"intraBandwidth"`
	// InterBandwidth is the bandwidth distribution of backbone links between
	// front-ends (typically much slower).
	InterBandwidth BandwidthDist `json:"interBandwidth"`
	// FullBackbone connects every pair of front-ends; otherwise the
	// front-ends form a chain.
	FullBackbone bool `json:"fullBackbone"`
}

// DefaultClusterConfig returns a 4-cluster, 8-nodes-per-cluster platform
// with a 10x bandwidth gap between intra-cluster and backbone links.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		Clusters:        4,
		NodesPerCluster: 8,
		IntraBandwidth:  BandwidthDist{Mean: 1000, StdDev: 100, Min: 100},
		InterBandwidth:  BandwidthDist{Mean: 100, StdDev: 20, Min: 10},
		FullBackbone:    false,
	}
}

// Clusters generates a cluster-of-clusters platform. Within a cluster every
// node is connected to the front-end (a switch-like star); front-ends are
// connected by the backbone.
func Clusters(cfg ClusterConfig, rng *rand.Rand) (*platform.Platform, error) {
	if cfg.Clusters < 1 || cfg.NodesPerCluster < 1 {
		return nil, fmt.Errorf("topology: invalid cluster config %+v", cfg)
	}
	if cfg.Clusters*cfg.NodesPerCluster < 2 {
		return nil, fmt.Errorf("topology: cluster platform needs at least 2 nodes")
	}
	rng = ensureRNG(rng)
	n := cfg.Clusters * cfg.NodesPerCluster
	p := platform.New(n)
	frontends := make([]int, cfg.Clusters)
	for c := 0; c < cfg.Clusters; c++ {
		base := c * cfg.NodesPerCluster
		frontends[c] = base
		p.SetNode(base, platform.Node{Name: fmt.Sprintf("frontend%d", c)})
		for i := 1; i < cfg.NodesPerCluster; i++ {
			p.SetNode(base+i, platform.Node{Name: fmt.Sprintf("c%dn%d", c, i)})
			symmetricPair(p, base, base+i, cfg.IntraBandwidth, rng)
		}
	}
	if cfg.FullBackbone {
		for i := 0; i < len(frontends); i++ {
			for j := i + 1; j < len(frontends); j++ {
				symmetricPair(p, frontends[i], frontends[j], cfg.InterBandwidth, rng)
			}
		}
	} else {
		for i := 0; i+1 < len(frontends); i++ {
			symmetricPair(p, frontends[i], frontends[i+1], cfg.InterBandwidth, rng)
		}
	}
	return p, nil
}

// Uniform returns a linear cost with the given transfer time per slice for
// every link of a platform built by the callers of this package's helpers.
// It is a convenience for tests that need fully deterministic platforms.
func Uniform(timePerSlice float64) BandwidthDist {
	if timePerSlice <= 0 {
		panic(fmt.Sprintf("topology: non-positive time per slice %v", timePerSlice))
	}
	return BandwidthDist{Mean: 1 / timePerSlice, StdDev: 0, Min: 1 / timePerSlice}
}

// UniformCost returns the deterministic affine cost corresponding to
// Uniform(timePerSlice) for a unit slice.
func UniformCost(timePerSlice float64) model.AffineCost {
	return model.Linear(timePerSlice)
}
