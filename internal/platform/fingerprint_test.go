package platform

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/model"
)

// randomTestPlatform builds a connected random platform with heterogeneous
// costs from a seed: a bidirectional ring plus extra directed links.
func randomTestPlatform(n int, seed int64) *Platform {
	rng := rand.New(rand.NewSource(seed))
	p := New(n)
	p.SetSliceSize(0.5 + rng.Float64())
	for u := 0; u < n; u++ {
		p.SetNode(u, Node{
			Send: model.AffineCost{Latency: rng.Float64() * 0.1, PerUnit: 0.1 + rng.Float64()},
			Recv: model.AffineCost{Latency: rng.Float64() * 0.1, PerUnit: 0.1 + rng.Float64()},
		})
	}
	for u := 0; u < n; u++ {
		cost := model.AffineCost{Latency: rng.Float64() * 0.05, PerUnit: 0.2 + rng.Float64()}
		p.MustAddLink(u, (u+1)%n, cost)
		p.MustAddLink((u+1)%n, u, cost)
	}
	for k := 0; k < n; k++ {
		from, to := rng.Intn(n), rng.Intn(n)
		if from == to || p.HasLink(from, to) {
			continue
		}
		p.MustAddLink(from, to, model.AffineCost{PerUnit: 0.2 + rng.Float64()})
	}
	return p
}

// permuted rebuilds the platform with node IDs renumbered by perm
// (new ID of old node u is perm[u]) and links inserted in linkOrder.
func permuted(p *Platform, perm []int, linkOrder []int) *Platform {
	q := New(p.NumNodes())
	q.SetSliceSize(p.SliceSize())
	for u := 0; u < p.NumNodes(); u++ {
		q.SetNode(perm[u], p.Node(u))
	}
	links := p.Links()
	for _, id := range linkOrder {
		l := links[id]
		q.MustAddLink(perm[l.From], perm[l.To], l.Cost)
	}
	// Replay the live state through deltas so masks carry over.
	for id, nid := range linkOrder {
		if !p.LinkAlive(nid) {
			if _, err := q.ApplyDelta(Delta{Kind: DeltaLinkDown, Link: id}); err != nil {
				panic(err)
			}
		}
	}
	for u := 0; u < p.NumNodes(); u++ {
		if !p.NodeAlive(u) {
			if _, err := q.ApplyDelta(Delta{Kind: DeltaNodeDown, Node: perm[u]}); err != nil {
				panic(err)
			}
		}
	}
	return q
}

func TestFingerprintPermutationInvariant(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		p := randomTestPlatform(6+int(seed)%7, seed)
		rng := rand.New(rand.NewSource(seed * 101))
		// Mutate some platforms so masks participate too.
		if seed%3 == 0 {
			if _, err := p.ApplyDelta(Delta{Kind: DeltaLinkDown, Link: rng.Intn(p.NumLinks())}); err != nil {
				t.Fatal(err)
			}
		}
		want := p.Fingerprint()
		for trial := 0; trial < 5; trial++ {
			perm := rng.Perm(p.NumNodes())
			order := rng.Perm(p.NumLinks())
			q := permuted(p, perm, order)
			if got := q.Fingerprint(); got != want {
				t.Fatalf("seed %d trial %d: permuted platform fingerprints differently:\n  %s\n  %s",
					seed, trial, want, got)
			}
		}
	}
}

func TestFingerprintRunStable(t *testing.T) {
	p := New(3)
	p.MustAddLink(0, 1, model.Linear(1))
	p.MustAddLink(1, 2, model.Linear(2))
	p.MustAddLink(0, 2, model.AffineCost{Latency: 0.5, PerUnit: 3})
	// The literal below pins the hash construction: if it changes, every
	// persisted fingerprint (cache keys, logs) silently stops matching, so
	// the constant must only be updated deliberately.
	const want = "4abea95b447513233a80424275c9ba263c47188b5ede54208301d538d903705a"
	for i := 0; i < 3; i++ {
		if got := p.Fingerprint().String(); got != want {
			t.Fatalf("fingerprint not stable: got %s, want %s", got, want)
		}
	}
	parsed, err := ParseFingerprint(want)
	if err != nil {
		t.Fatal(err)
	}
	if parsed != p.Fingerprint() {
		t.Fatal("ParseFingerprint does not round-trip String")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := randomTestPlatform(8, 42)
	fp := base.Fingerprint()

	cost := base.Clone()
	cost.ScaleLinkCost(3, 1.5)
	if cost.Fingerprint() == fp {
		t.Error("scaling a link cost did not change the fingerprint")
	}

	slice := base.Clone()
	slice.SetSliceSize(base.SliceSize() * 2)
	if slice.Fingerprint() == fp {
		t.Error("changing the slice size did not change the fingerprint")
	}

	down := base.Clone()
	if _, err := down.ApplyDelta(Delta{Kind: DeltaLinkDown, Link: 0}); err != nil {
		t.Fatal(err)
	}
	if down.Fingerprint() == fp {
		t.Error("downing a link did not change the fingerprint")
	}

	node := base.Clone()
	if _, err := node.ApplyDelta(Delta{Kind: DeltaNodeDown, Node: 5}); err != nil {
		t.Fatal(err)
	}
	if node.Fingerprint() == fp {
		t.Error("downing a node did not change the fingerprint")
	}

	extra := base.Clone()
	extra.MustAddLink(0, 4, model.Linear(9.75))
	if extra.Fingerprint() == fp {
		t.Error("adding a link did not change the fingerprint")
	}
}

func TestFingerprintIgnoresHistoryAndNames(t *testing.T) {
	p := randomTestPlatform(7, 7)
	fp := p.Fingerprint()

	// Apply a delta and undo it: content restored, journal longer.
	inv, err := p.ApplyDelta(Delta{Kind: DeltaScaleLink, Link: 2, Factor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ApplyDelta(inv); err != nil {
		t.Fatal(err)
	}
	if p.JournalLen() != 2 {
		t.Fatalf("journal length = %d, want 2", p.JournalLen())
	}
	if got := p.Fingerprint(); got != fp {
		t.Errorf("mutate+undo changed the fingerprint: %s vs %s", got, fp)
	}

	named := p.Clone()
	n := named.Node(0)
	n.Name = "head-node"
	named.SetNode(0, n)
	if named.Fingerprint() != fp {
		t.Error("node names must not contribute to the fingerprint")
	}
}

func TestCanonicalEncodingDetectsRenumbering(t *testing.T) {
	p := randomTestPlatform(6, 9)
	if !bytes.Equal(p.CanonicalEncoding(), p.Clone().CanonicalEncoding()) {
		t.Fatal("clone does not encode identically")
	}
	rng := rand.New(rand.NewSource(5))
	perm := rng.Perm(p.NumNodes())
	for isIdentity(perm) {
		perm = rng.Perm(p.NumNodes())
	}
	q := permuted(p, perm, identity(p.NumLinks()))
	if p.Fingerprint() != q.Fingerprint() {
		t.Fatal("permuted twin should share the fingerprint")
	}
	if bytes.Equal(p.CanonicalEncoding(), q.CanonicalEncoding()) {
		t.Fatal("canonical encoding must distinguish renumbered twins")
	}
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func isIdentity(perm []int) bool {
	for i, v := range perm {
		if i != v {
			return false
		}
	}
	return true
}
