package platform

import (
	"errors"
	"testing"

	"repro/internal/model"
)

// starPlatform returns a platform where node 0 is connected to every other
// node by a bidirectional pair of unit-cost links.
func starPlatform(n int) *Platform {
	p := New(n)
	for i := 1; i < n; i++ {
		p.MustAddLink(0, i, model.Linear(1))
		p.MustAddLink(i, 0, model.Linear(1))
	}
	return p
}

// starTree builds the obvious broadcast tree on a star platform.
func starTree(p *Platform) *Tree {
	t := NewTree(p.NumNodes(), 0)
	for v := 1; v < p.NumNodes(); v++ {
		t.SetParent(v, 0, p.LinkBetween(0, v))
	}
	return t
}

func TestNewTree(t *testing.T) {
	tr := NewTree(4, 2)
	if tr.Root != 2 || tr.NumNodes() != 4 {
		t.Fatalf("root=%d nodes=%d", tr.Root, tr.NumNodes())
	}
	for v := 0; v < 4; v++ {
		if tr.Parent[v] != -1 || tr.ParentLink[v] != -1 {
			t.Fatalf("node %d not initialized to -1", v)
		}
	}
}

func TestTreeChildrenAndDegrees(t *testing.T) {
	p := starPlatform(4)
	tr := starTree(p)
	if got := tr.OutDegree(0); got != 3 {
		t.Fatalf("OutDegree(0) = %d, want 3", got)
	}
	if !tr.IsLeaf(1) || tr.IsLeaf(0) {
		t.Fatal("leaf detection wrong")
	}
	// SetParent invalidates the cache.
	tr.SetParent(3, 1, -1)
	if got := tr.OutDegree(0); got != 2 {
		t.Fatalf("OutDegree(0) after reparent = %d, want 2", got)
	}
	if got := tr.OutDegree(1); got != 1 {
		t.Fatalf("OutDegree(1) after reparent = %d, want 1", got)
	}
}

func TestTreeDepthHeightOrder(t *testing.T) {
	p := New(5)
	for i := 0; i+1 < 5; i++ {
		p.MustAddLink(i, i+1, model.Linear(1))
	}
	tr := NewTree(5, 0)
	for v := 1; v < 5; v++ {
		tr.SetParent(v, v-1, p.LinkBetween(v-1, v))
	}
	if tr.Depth(0) != 0 || tr.Depth(4) != 4 {
		t.Fatalf("depths: %d %d", tr.Depth(0), tr.Depth(4))
	}
	if tr.Height() != 4 {
		t.Fatalf("height = %d, want 4", tr.Height())
	}
	order := tr.BFSOrder()
	if len(order) != 5 || order[0] != 0 || order[4] != 4 {
		t.Fatalf("BFS order = %v", order)
	}
	if len(tr.LinkIDs()) != 4 {
		t.Fatalf("LinkIDs length = %d, want 4", len(tr.LinkIDs()))
	}
}

func TestTreeDepthUnattachedAndCycle(t *testing.T) {
	tr := NewTree(3, 0)
	if tr.Depth(2) != -1 {
		t.Fatal("unattached node should have depth -1")
	}
	// Artificial cycle 1 <-> 2 disconnected from the root.
	tr.Parent[1] = 2
	tr.Parent[2] = 1
	if tr.Depth(1) != -1 {
		t.Fatal("cycle should yield depth -1")
	}
}

func TestTreeValidateAcceptsStar(t *testing.T) {
	p := starPlatform(5)
	tr := starTree(p)
	if err := tr.Validate(p); err != nil {
		t.Fatalf("valid star tree rejected: %v", err)
	}
}

func TestTreeValidateErrors(t *testing.T) {
	p := starPlatform(4)

	// Size mismatch.
	if err := NewTree(3, 0).Validate(p); !errors.Is(err, ErrTreeSizeMismatch) {
		t.Errorf("size mismatch: %v", err)
	}

	// Root out of range.
	tr := starTree(p)
	tr.Root = 9
	tr.Parent[9-9] = -1 // keep arrays consistent; root index is just invalid
	if err := tr.Validate(p); !errors.Is(err, ErrTreeRootRange) {
		t.Errorf("root range: %v", err)
	}

	// Root with a parent.
	tr = starTree(p)
	tr.Parent[0] = 1
	tr.ParentLink[0] = p.LinkBetween(1, 0)
	if err := tr.Validate(p); !errors.Is(err, ErrTreeRootHasParent) {
		t.Errorf("root has parent: %v", err)
	}

	// Missing parent.
	tr = starTree(p)
	tr.SetParent(2, -1, -1)
	if err := tr.Validate(p); !errors.Is(err, ErrTreeNotSpanning) {
		t.Errorf("missing parent: %v", err)
	}

	// Link out of range.
	tr = starTree(p)
	tr.SetParent(2, 0, 999)
	if err := tr.Validate(p); !errors.Is(err, ErrTreeBadLink) {
		t.Errorf("bad link id: %v", err)
	}

	// Link endpoints do not match the declared parent.
	tr = starTree(p)
	tr.SetParent(2, 1, p.LinkBetween(0, 2))
	if err := tr.Validate(p); !errors.Is(err, ErrTreeParentMismatch) {
		t.Errorf("parent mismatch: %v", err)
	}

	// Cycle detached from the root: parents set but not reachable.
	q := New(4)
	q.MustAddLink(0, 1, model.Linear(1))
	q.MustAddLink(2, 3, model.Linear(1))
	q.MustAddLink(3, 2, model.Linear(1))
	tr = NewTree(4, 0)
	tr.SetParent(1, 0, q.LinkBetween(0, 1))
	tr.SetParent(2, 3, q.LinkBetween(3, 2))
	tr.SetParent(3, 2, q.LinkBetween(2, 3))
	if err := tr.Validate(q); !errors.Is(err, ErrTreeNotSpanning) {
		t.Errorf("detached cycle: %v", err)
	}
}

func TestTreeFromParentLinks(t *testing.T) {
	p := starPlatform(4)
	g := p.Graph()
	parentEdge, reached := g.BFSArborescence(0, nil)
	if reached != 4 {
		t.Fatalf("reached = %d", reached)
	}
	tr := TreeFromParentLinks(p, 0, parentEdge)
	if err := tr.Validate(p); err != nil {
		t.Fatalf("tree from parent links invalid: %v", err)
	}
	for v := 1; v < 4; v++ {
		if tr.Parent[v] != 0 {
			t.Fatalf("node %d parent = %d, want 0", v, tr.Parent[v])
		}
	}
}
