package platform

import (
	"bytes"
	"testing"

	"repro/internal/model"
)

// fuzzPlatform derives a small deterministic platform from the first bytes
// of the fuzz input: a bidirectional ring (always broadcastable) plus a few
// chords, with costs driven by the input bytes.
func fuzzPlatform(data []byte) (*Platform, []byte) {
	n := 4
	if len(data) > 0 {
		n = 4 + int(data[0])%6 // 4..9 nodes
		data = data[1:]
	}
	p := New(n)
	take := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	for u := 0; u < n; u++ {
		cost := model.AffineCost{PerUnit: 0.25 + float64(take())/64}
		p.MustAddLink(u, (u+1)%n, cost)
		p.MustAddLink((u+1)%n, u, cost)
	}
	chords := int(take()) % 4
	for c := 0; c < chords; c++ {
		from := int(take()) % n
		to := int(take()) % n
		if from == to {
			continue
		}
		p.MustAddLink(from, to, model.AffineCost{Latency: float64(take()) / 256, PerUnit: 0.5 + float64(take())/64})
	}
	return p, data
}

// scaleFactors are the factors fuzzDelta draws from. They are powers of two
// on purpose: x·f·(1/f) is only guaranteed bit-exact when f is a power of
// two, and the byte-identical round-trip contract of apply/undo holds
// exactly for exactly-invertible factors (for general factors the inverse
// restores the state up to the last ulp, which CanonicalEncoding would
// flag).
var scaleFactors = [...]float64{0.25, 0.5, 2, 4}

// fuzzDelta decodes one delta from three input bytes. The decoded delta may
// be invalid for the current platform state; ApplyDelta is expected to
// reject it without side effects.
func fuzzDelta(p *Platform, kind, target, arg byte) Delta {
	switch kind % 5 {
	case 0:
		return Delta{Kind: DeltaScaleLink, Link: int(target) % (p.NumLinks() + 1), Factor: scaleFactors[arg%4]}
	case 1:
		return Delta{Kind: DeltaLinkDown, Link: int(target) % (p.NumLinks() + 1)}
	case 2:
		return Delta{Kind: DeltaLinkUp, Link: int(target) % (p.NumLinks() + 1)}
	case 3:
		return Delta{Kind: DeltaNodeDown, Node: int(target) % (p.NumNodes() + 1)}
	default:
		return Delta{Kind: DeltaNodeUp, Node: int(target) % (p.NumNodes() + 1)}
	}
}

// FuzzApplyDeltaUndo drives random delta sequences against a derived
// platform and checks the mutation contract: applying the recorded inverses
// in reverse order restores a byte-identical platform state, the journal
// grows by exactly the applied deltas, and replaying the journal against a
// pristine clone reproduces the final state.
func FuzzApplyDeltaUndo(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 10, 20, 30, 0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{5, 200, 100, 3, 9, 9, 9, 1, 0, 64, 2, 0, 0, 3, 1, 0, 4, 1, 0})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, rest := fuzzPlatform(data)
		pristine := p.Clone()
		before := p.CanonicalEncoding()
		beforeFP := p.Fingerprint()
		journalBefore := p.JournalLen()

		var inverses []Delta
		applied := 0
		for len(rest) >= 3 && applied < 32 {
			d := fuzzDelta(p, rest[0], rest[1], rest[2])
			rest = rest[3:]
			jl := p.JournalLen()
			inv, err := p.ApplyDelta(d)
			if err != nil {
				// Rejected deltas must leave no trace.
				if p.JournalLen() != jl {
					t.Fatalf("rejected delta %v grew the journal", d)
				}
				continue
			}
			applied++
			inverses = append(inverses, inv)
		}

		// Undo in reverse order.
		for i := len(inverses) - 1; i >= 0; i-- {
			if _, err := p.ApplyDelta(inverses[i]); err != nil {
				t.Fatalf("undo %v failed: %v", inverses[i], err)
			}
		}

		if got := p.CanonicalEncoding(); !bytes.Equal(got, before) {
			t.Fatalf("apply+undo did not restore the platform state\nbefore: %x\nafter:  %x", before, got)
		}
		if got := p.Fingerprint(); got != beforeFP {
			t.Fatalf("apply+undo changed the fingerprint: %s vs %s", got, beforeFP)
		}
		if got, want := p.JournalLen(), journalBefore+2*applied; got != want {
			t.Fatalf("journal length %d, want %d (%d applied)", got, want, applied)
		}

		// Journal consistency: replaying the full journal against a pristine
		// clone reproduces the (restored) final state.
		replay := pristine.Clone()
		for _, d := range p.JournalSince(0) {
			if _, err := replay.ApplyDelta(d); err != nil {
				t.Fatalf("journal replay of %v failed: %v", d, err)
			}
		}
		if !bytes.Equal(replay.CanonicalEncoding(), p.CanonicalEncoding()) {
			t.Fatal("journal replay diverged from the journaled platform")
		}
		// ScaleLink undo multiplies by 1/factor, so costs can drift in the
		// last ulp only if 1/(1/f) != f; CanonicalEncoding above is bit-exact,
		// which proves the inverse really is exact for the factors produced
		// by fuzzDelta. Alive masks must agree entry by entry too.
		for id := 0; id < p.NumLinks(); id++ {
			if p.LinkAlive(id) != replay.LinkAlive(id) || p.LinkLive(id) != replay.LinkLive(id) {
				t.Fatalf("link %d liveness diverged after replay", id)
			}
		}
		for u := 0; u < p.NumNodes(); u++ {
			if p.NodeAlive(u) != replay.NodeAlive(u) {
				t.Fatalf("node %d aliveness diverged after replay", u)
			}
		}
	})
}
