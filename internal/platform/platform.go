package platform

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/model"
)

// DefaultSliceSize is the default size of a message slice (in the same data
// unit as link bandwidths, e.g. megabytes). The paper's experiments fix the
// slice size and weight each edge by the time needed to transfer one slice.
const DefaultSliceSize = 1.0

// Node is a processor of the platform.
type Node struct {
	// Name is an optional human-readable label.
	Name string `json:"name,omitempty"`
	// Send is the per-transfer sender occupation used under the multi-port
	// model (send_u in the paper). Under the one-port model the sender is
	// occupied for the full link time instead.
	Send model.AffineCost `json:"send"`
	// Recv is the per-transfer receiver occupation used under the multi-port
	// model (recv_v in the paper).
	Recv model.AffineCost `json:"recv"`
}

// Link is a unidirectional communication link between two processors.
// A bidirectional physical link is modeled by two opposite Links.
type Link struct {
	From int `json:"from"`
	To   int `json:"to"`
	// Cost is the total occupation time of the link for a message of size L:
	// T(u,v)(L) = α + L·β.
	Cost model.AffineCost `json:"cost"`
}

// Platform is the target architectural platform P = (V, E): a set of
// processors and directed links with affine communication costs, together
// with the slice size used for pipelined broadcasts.
type Platform struct {
	nodes     []Node
	links     []Link
	out       [][]int // node -> link IDs leaving the node
	in        [][]int // node -> link IDs entering the node
	sliceSize float64

	// Dynamic-platform state (see delta.go). All nil/empty on platforms
	// that have never been mutated.
	linkDown []bool
	nodeDown []bool
	journal  []Delta
}

// New returns a platform with n processors, no links, and the default slice
// size. It panics if n is negative.
func New(n int) *Platform {
	if n < 0 {
		panic(fmt.Sprintf("platform: negative node count %d", n))
	}
	return &Platform{
		nodes:     make([]Node, n),
		out:       make([][]int, n),
		in:        make([][]int, n),
		sliceSize: DefaultSliceSize,
	}
}

// Errors returned by Validate and AddLink.
var (
	ErrNodeRange    = errors.New("platform: node out of range")
	ErrSelfLoop     = errors.New("platform: self loop")
	ErrInvalidCost  = errors.New("platform: invalid cost")
	ErrNotReachable = errors.New("platform: node not reachable from source")
	ErrNoNodes      = errors.New("platform: platform has no nodes")
)

// NumNodes returns the number of processors.
func (p *Platform) NumNodes() int { return len(p.nodes) }

// NumLinks returns the number of directed links.
func (p *Platform) NumLinks() int { return len(p.links) }

// SliceSize returns the message slice size L used to weight links.
func (p *Platform) SliceSize() float64 { return p.sliceSize }

// SetSliceSize sets the message slice size L. It panics if L is not
// positive.
func (p *Platform) SetSliceSize(l float64) {
	if l <= 0 || math.IsInf(l, 0) || math.IsNaN(l) {
		panic(fmt.Sprintf("platform: invalid slice size %v", l))
	}
	p.sliceSize = l
}

// Node returns the node with the given index.
func (p *Platform) Node(u int) Node { return p.nodes[u] }

// SetNode replaces the node record at index u.
func (p *Platform) SetNode(u int, n Node) { p.nodes[u] = n }

// Link returns the link with the given ID.
func (p *Platform) Link(id int) Link { return p.links[id] }

// Links returns a copy of the link list.
func (p *Platform) Links() []Link {
	out := make([]Link, len(p.links))
	copy(out, p.links)
	return out
}

// AddLink appends a directed link and returns its ID.
func (p *Platform) AddLink(from, to int, cost model.AffineCost) (int, error) {
	n := len(p.nodes)
	if from < 0 || from >= n {
		return -1, fmt.Errorf("%w: from=%d, n=%d", ErrNodeRange, from, n)
	}
	if to < 0 || to >= n {
		return -1, fmt.Errorf("%w: to=%d, n=%d", ErrNodeRange, to, n)
	}
	if from == to {
		return -1, fmt.Errorf("%w: node %d", ErrSelfLoop, from)
	}
	if !cost.Valid() {
		return -1, fmt.Errorf("%w: %+v", ErrInvalidCost, cost)
	}
	id := len(p.links)
	p.links = append(p.links, Link{From: from, To: to, Cost: cost})
	p.out[from] = append(p.out[from], id)
	p.in[to] = append(p.in[to], id)
	if p.linkDown != nil {
		p.linkDown = append(p.linkDown, false)
	}
	return id, nil
}

// MustAddLink is AddLink that panics on error.
func (p *Platform) MustAddLink(from, to int, cost model.AffineCost) int {
	id, err := p.AddLink(from, to, cost)
	if err != nil {
		panic(err)
	}
	return id
}

// AddBidirectionalLink adds two opposite links with the same cost and
// returns their IDs (forward, backward).
func (p *Platform) AddBidirectionalLink(a, b int, cost model.AffineCost) (int, int, error) {
	f, err := p.AddLink(a, b, cost)
	if err != nil {
		return -1, -1, err
	}
	r, err := p.AddLink(b, a, cost)
	if err != nil {
		return -1, -1, err
	}
	return f, r, nil
}

// OutLinkIDs returns the IDs of links leaving node u. The slice is owned by
// the platform and must not be modified.
func (p *Platform) OutLinkIDs(u int) []int { return p.out[u] }

// InLinkIDs returns the IDs of links entering node u. The slice is owned by
// the platform and must not be modified.
func (p *Platform) InLinkIDs(u int) []int { return p.in[u] }

// LinkBetween returns the ID of the first link from -> to, or -1.
func (p *Platform) LinkBetween(from, to int) int {
	if from < 0 || from >= len(p.nodes) || to < 0 || to >= len(p.nodes) {
		return -1
	}
	for _, id := range p.out[from] {
		if p.links[id].To == to {
			return id
		}
	}
	return -1
}

// HasLink reports whether a link from -> to exists.
func (p *Platform) HasLink(from, to int) bool { return p.LinkBetween(from, to) >= 0 }

// SliceTime returns the occupation time T(u,v) of the given link for one
// message slice of the platform's slice size.
func (p *Platform) SliceTime(linkID int) float64 {
	return p.links[linkID].Cost.Time(p.sliceSize)
}

// SliceTimeBetween returns T(u,v) for the first link u -> v, or +Inf if no
// such link exists.
func (p *Platform) SliceTimeBetween(u, v int) float64 {
	id := p.LinkBetween(u, v)
	if id < 0 {
		return math.Inf(1)
	}
	return p.SliceTime(id)
}

// SendTime returns the per-transfer sender occupation of node u for one
// slice (multi-port model).
func (p *Platform) SendTime(u int) float64 { return p.nodes[u].Send.Time(p.sliceSize) }

// RecvTime returns the per-transfer receiver occupation of node u for one
// slice (multi-port model).
func (p *Platform) RecvTime(u int) float64 { return p.nodes[u].Recv.Time(p.sliceSize) }

// Graph returns the platform as a weighted directed graph where the weight
// of each edge is the slice transfer time T(u,v). Edge IDs equal link IDs.
func (p *Platform) Graph() *graph.Digraph {
	g := graph.New(len(p.nodes))
	for _, l := range p.links {
		g.MustAddEdge(l.From, l.To, l.Cost.Time(p.sliceSize))
	}
	return g
}

// Density returns the edge density of the platform: the number of directed
// links divided by n·(n-1), i.e. the probability that an ordered pair of
// distinct nodes is connected (the definition used by Table 2 of the paper).
func (p *Platform) Density() float64 {
	n := len(p.nodes)
	if n < 2 {
		return 0
	}
	return float64(len(p.links)) / float64(n*(n-1))
}

// DeriveMultiPortOverheads sets, for every node u, the multi-port send
// overhead to fraction times the smallest outgoing link occupation
// (the paper's experiments use fraction = 0.8), and the receive overhead to
// fraction times the smallest incoming link occupation. Nodes without
// outgoing (resp. incoming) links keep a zero overhead.
func (p *Platform) DeriveMultiPortOverheads(fraction float64) {
	for u := range p.nodes {
		minOut := math.Inf(1)
		for _, id := range p.out[u] {
			if t := p.SliceTime(id); t < minOut {
				minOut = t
			}
		}
		if !math.IsInf(minOut, 1) {
			p.nodes[u].Send = model.Linear(fraction * minOut / p.sliceSize)
		} else {
			p.nodes[u].Send = model.AffineCost{}
		}
		minIn := math.Inf(1)
		for _, id := range p.in[u] {
			if t := p.SliceTime(id); t < minIn {
				minIn = t
			}
		}
		if !math.IsInf(minIn, 1) {
			p.nodes[u].Recv = model.Linear(fraction * minIn / p.sliceSize)
		} else {
			p.nodes[u].Recv = model.AffineCost{}
		}
	}
}

// validateStructure checks the structural invariants shared by Validate and
// ValidateLive: at least one node, valid link endpoints and costs.
func (p *Platform) validateStructure() error {
	if len(p.nodes) == 0 {
		return ErrNoNodes
	}
	for id, l := range p.links {
		if l.From < 0 || l.From >= len(p.nodes) || l.To < 0 || l.To >= len(p.nodes) {
			return fmt.Errorf("%w: link %d (%d -> %d)", ErrNodeRange, id, l.From, l.To)
		}
		if l.From == l.To {
			return fmt.Errorf("%w: link %d at node %d", ErrSelfLoop, id, l.From)
		}
		if !l.Cost.Valid() {
			return fmt.Errorf("%w: link %d", ErrInvalidCost, id)
		}
	}
	return nil
}

// Validate checks structural invariants: at least one node, valid link
// endpoints and costs, and (if source >= 0) that every node is reachable
// from the source.
func (p *Platform) Validate(source int) error {
	if err := p.validateStructure(); err != nil {
		return err
	}
	if source >= 0 {
		if source >= len(p.nodes) {
			return fmt.Errorf("%w: source=%d", ErrNodeRange, source)
		}
		g := p.Graph()
		reach := g.ReachableFrom(source, nil)
		for u, ok := range reach {
			if !ok {
				return fmt.Errorf("%w: node %d (source %d)", ErrNotReachable, u, source)
			}
		}
	}
	return nil
}

// Clone returns a deep copy of the platform.
func (p *Platform) Clone() *Platform {
	c := New(len(p.nodes))
	copy(c.nodes, p.nodes)
	c.sliceSize = p.sliceSize
	c.links = make([]Link, len(p.links))
	copy(c.links, p.links)
	for u := range p.out {
		c.out[u] = append([]int(nil), p.out[u]...)
		c.in[u] = append([]int(nil), p.in[u]...)
	}
	if p.linkDown != nil {
		c.linkDown = append([]bool(nil), p.linkDown...)
	}
	if p.nodeDown != nil {
		c.nodeDown = append([]bool(nil), p.nodeDown...)
	}
	if p.journal != nil {
		c.journal = append([]Delta(nil), p.journal...)
	}
	return c
}

// ScaleLinkCost multiplies the cost of one link by the given factor, which
// must be positive. It is used by the robustness analysis to perturb link
// performance.
func (p *Platform) ScaleLinkCost(linkID int, factor float64) {
	if factor <= 0 || math.IsNaN(factor) || math.IsInf(factor, 0) {
		panic(fmt.Sprintf("platform: invalid scale factor %v", factor))
	}
	l := &p.links[linkID]
	l.Cost.Latency *= factor
	l.Cost.PerUnit *= factor
}

// String returns a short description of the platform.
func (p *Platform) String() string {
	return fmt.Sprintf("Platform{nodes: %d, links: %d, density: %.3f}", len(p.nodes), len(p.links), p.Density())
}
