package platform

import (
	"errors"
	"fmt"
)

// Tree is a spanning broadcast tree (an out-arborescence rooted at the
// source processor) over a platform. Every non-root node has exactly one
// parent and records the platform link used to receive slices from it.
type Tree struct {
	// Root is the source processor of the broadcast.
	Root int `json:"root"`
	// Parent[v] is the parent of v in the tree, or -1 for the root.
	Parent []int `json:"parent"`
	// ParentLink[v] is the platform link ID used for the transfer
	// Parent[v] -> v, or -1 for the root.
	ParentLink []int `json:"parentLink"`

	children [][]int // lazily built child lists
}

// NewTree returns an empty tree skeleton for n nodes rooted at root, with
// all parents unset (-1). Callers fill Parent/ParentLink and may then call
// Validate.
func NewTree(n, root int) *Tree {
	t := &Tree{
		Root:       root,
		Parent:     make([]int, n),
		ParentLink: make([]int, n),
	}
	for i := range t.Parent {
		t.Parent[i] = -1
		t.ParentLink[i] = -1
	}
	return t
}

// NumNodes returns the number of nodes spanned by the tree.
func (t *Tree) NumNodes() int { return len(t.Parent) }

// SetParent records that node v receives slices from parent through the
// given platform link, and invalidates the cached child lists.
func (t *Tree) SetParent(v, parent, linkID int) {
	t.Parent[v] = parent
	t.ParentLink[v] = linkID
	t.children = nil
}

// Children returns the children of node u. The returned slice is owned by
// the tree and must not be modified.
func (t *Tree) Children(u int) []int {
	if t.children == nil {
		t.children = make([][]int, len(t.Parent))
		for v, p := range t.Parent {
			if p >= 0 {
				t.children[p] = append(t.children[p], v)
			}
		}
	}
	return t.children[u]
}

// OutDegree returns the number of children of node u.
func (t *Tree) OutDegree(u int) int { return len(t.Children(u)) }

// IsLeaf reports whether u has no children.
func (t *Tree) IsLeaf(u int) bool { return t.OutDegree(u) == 0 }

// LinkIDs returns the platform link IDs used by the tree, in node order.
func (t *Tree) LinkIDs() []int {
	ids := make([]int, 0, len(t.Parent)-1)
	for v, id := range t.ParentLink {
		if v != t.Root && id >= 0 {
			ids = append(ids, id)
		}
	}
	return ids
}

// Depth returns the number of tree edges on the path from the root to v, or
// -1 if v is not attached to the tree.
func (t *Tree) Depth(v int) int {
	d := 0
	for v != t.Root {
		p := t.Parent[v]
		if p < 0 {
			return -1
		}
		v = p
		d++
		if d > len(t.Parent) {
			return -1 // cycle guard
		}
	}
	return d
}

// Height returns the maximum depth over all nodes (0 for a single-node
// tree). Unattached nodes are ignored.
func (t *Tree) Height() int {
	h := 0
	for v := range t.Parent {
		if d := t.Depth(v); d > h {
			h = d
		}
	}
	return h
}

// BFSOrder returns the tree nodes in breadth-first order starting at the
// root. Unattached nodes are omitted.
func (t *Tree) BFSOrder() []int {
	order := make([]int, 0, len(t.Parent))
	queue := []int{t.Root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		order = append(order, u)
		queue = append(queue, t.Children(u)...)
	}
	return order
}

// Errors returned by Validate.
var (
	ErrTreeRootRange      = errors.New("platform: tree root out of range")
	ErrTreeNotSpanning    = errors.New("platform: tree does not span all nodes")
	ErrTreeBadLink        = errors.New("platform: tree edge does not match a platform link")
	ErrTreeRootHasParent  = errors.New("platform: tree root has a parent")
	ErrTreeSizeMismatch   = errors.New("platform: tree size differs from platform size")
	ErrTreeParentMismatch = errors.New("platform: parent and parent-link arrays disagree")
)

// Validate checks that the tree is a spanning out-arborescence of the
// platform rooted at its Root: correct sizes, every non-root node has a
// parent connected through an existing platform link with matching
// endpoints, and every node is reachable from the root through tree edges.
func (t *Tree) Validate(p *Platform) error {
	n := p.NumNodes()
	if len(t.Parent) != n || len(t.ParentLink) != n {
		return fmt.Errorf("%w: tree has %d nodes, platform has %d", ErrTreeSizeMismatch, len(t.Parent), n)
	}
	if t.Root < 0 || t.Root >= n {
		return fmt.Errorf("%w: root=%d", ErrTreeRootRange, t.Root)
	}
	if t.Parent[t.Root] != -1 || t.ParentLink[t.Root] != -1 {
		return ErrTreeRootHasParent
	}
	for v := 0; v < n; v++ {
		if v == t.Root {
			continue
		}
		parent, linkID := t.Parent[v], t.ParentLink[v]
		if parent < 0 || linkID < 0 {
			return fmt.Errorf("%w: node %d has no parent", ErrTreeNotSpanning, v)
		}
		if parent >= n || linkID >= p.NumLinks() {
			return fmt.Errorf("%w: node %d parent=%d link=%d", ErrTreeBadLink, v, parent, linkID)
		}
		l := p.Link(linkID)
		if l.From != parent || l.To != v {
			return fmt.Errorf("%w: node %d uses link %d (%d -> %d) but parent is %d",
				ErrTreeParentMismatch, v, linkID, l.From, l.To, parent)
		}
	}
	// Reachability from the root through tree edges.
	seen := make([]bool, n)
	seen[t.Root] = true
	count := 1
	queue := []int{t.Root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, c := range t.Children(u) {
			if !seen[c] {
				seen[c] = true
				count++
				queue = append(queue, c)
			}
		}
	}
	if count != n {
		return fmt.Errorf("%w: only %d of %d nodes reachable from root", ErrTreeNotSpanning, count, n)
	}
	return nil
}

// ErrTreeNotLive is returned by ValidateLive when some alive node is not
// reachable from the root through live tree edges.
var ErrTreeNotLive = errors.New("platform: tree does not span the alive nodes over live links")

// ValidateLive checks that the tree, restricted to the platform's live
// elements, still broadcasts to every alive node: the root is alive and
// every alive node is reachable from it through tree edges whose link is
// live (both endpoints alive, link not down) and structurally consistent
// (matching endpoints, valid IDs). Dead nodes and the subtrees hanging off
// them are ignored, so a tree built before a crash validates as long as no
// alive node is stranded. On a platform with no applied downs this is
// equivalent to Validate.
func (t *Tree) ValidateLive(p *Platform) error {
	n := p.NumNodes()
	if len(t.Parent) != n || len(t.ParentLink) != n {
		return fmt.Errorf("%w: tree has %d nodes, platform has %d", ErrTreeSizeMismatch, len(t.Parent), n)
	}
	if t.Root < 0 || t.Root >= n {
		return fmt.Errorf("%w: root=%d", ErrTreeRootRange, t.Root)
	}
	if !p.NodeAlive(t.Root) {
		return fmt.Errorf("%w: root %d is down", ErrTreeNotLive, t.Root)
	}
	if t.Parent[t.Root] != -1 || t.ParentLink[t.Root] != -1 {
		return ErrTreeRootHasParent
	}
	live, err := t.LiveSpan(p)
	if err != nil {
		return err
	}
	for v := 0; v < n; v++ {
		if p.NodeAlive(v) && !live[v] {
			return fmt.Errorf("%w: alive node %d is stranded", ErrTreeNotLive, v)
		}
	}
	return nil
}

// LiveSpan returns the set of nodes reachable from the root through live
// tree edges (both endpoints alive, link up, endpoints matching the link).
// Structurally inconsistent edges (bad IDs, endpoint mismatch) are reported
// as errors; edges that are merely dead are skipped.
func (t *Tree) LiveSpan(p *Platform) ([]bool, error) {
	n := p.NumNodes()
	live := make([]bool, n)
	if t.Root < 0 || t.Root >= n || !p.NodeAlive(t.Root) {
		return live, nil
	}
	live[t.Root] = true
	queue := []int{t.Root}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, c := range t.Children(u) {
			linkID := t.ParentLink[c]
			if linkID < 0 || linkID >= p.NumLinks() {
				return nil, fmt.Errorf("%w: node %d link=%d", ErrTreeBadLink, c, linkID)
			}
			l := p.Link(linkID)
			if l.From != u || l.To != c {
				return nil, fmt.Errorf("%w: node %d uses link %d (%d -> %d) but parent is %d",
					ErrTreeParentMismatch, c, linkID, l.From, l.To, u)
			}
			if !p.NodeAlive(c) || !p.LinkLive(linkID) {
				continue
			}
			if !live[c] {
				live[c] = true
				queue = append(queue, c)
			}
		}
	}
	return live, nil
}

// LivePrune returns a copy of the tree with every node outside the live span
// detached (parent -1), together with a flag reporting whether the pruned
// tree still reaches every alive node. The churn engine evaluates the "keep"
// policy on the pruned copy: transfers into dead subtrees simply do not
// happen, and a false flag means some alive node receives nothing.
func (t *Tree) LivePrune(p *Platform) (*Tree, bool, error) {
	live, err := t.LiveSpan(p)
	if err != nil {
		return nil, false, err
	}
	pruned := NewTree(len(t.Parent), t.Root)
	complete := true
	for v := range t.Parent {
		if live[v] {
			pruned.Parent[v] = t.Parent[v]
			pruned.ParentLink[v] = t.ParentLink[v]
		} else if p.NodeAlive(v) {
			complete = false
		}
	}
	return pruned, complete, nil
}

// TreeFromParentLinks builds a Tree from a per-node parent-link assignment
// (link ID used to reach each node, -1 for the root), as produced by
// graph.BFSArborescence when edge IDs coincide with platform link IDs.
func TreeFromParentLinks(p *Platform, root int, parentLink []int) *Tree {
	t := NewTree(p.NumNodes(), root)
	for v, id := range parentLink {
		if v == root || id < 0 {
			continue
		}
		l := p.Link(id)
		t.Parent[v] = l.From
		t.ParentLink[v] = id
	}
	return t
}
