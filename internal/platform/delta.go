package platform

import (
	"errors"
	"fmt"
	"math"
)

// DeltaKind identifies one kind of platform mutation. Mutations model the
// dynamic behaviour of a real platform: link performance drifting over time,
// links flapping down and up, and processors crashing and rejoining.
type DeltaKind int

const (
	// DeltaScaleLink multiplies the cost of one link by Factor (> 1 means
	// the link became slower).
	DeltaScaleLink DeltaKind = iota
	// DeltaLinkDown marks one link as failed.
	DeltaLinkDown
	// DeltaLinkUp revives one previously failed link.
	DeltaLinkUp
	// DeltaNodeDown marks one processor as crashed. Its links remain in the
	// topology but are unusable until the node rejoins.
	DeltaNodeDown
	// DeltaNodeUp revives one previously crashed processor.
	DeltaNodeUp
)

// String returns a short name for the delta kind.
func (k DeltaKind) String() string {
	switch k {
	case DeltaScaleLink:
		return "scale-link"
	case DeltaLinkDown:
		return "link-down"
	case DeltaLinkUp:
		return "link-up"
	case DeltaNodeDown:
		return "node-down"
	case DeltaNodeUp:
		return "node-up"
	default:
		return fmt.Sprintf("DeltaKind(%d)", int(k))
	}
}

// Delta is one atomic platform mutation. Platforms are immutable-by-default
// everywhere else in the repository; only code that owns a platform (and
// typically a private Clone of it, as the churn engine does) applies deltas.
type Delta struct {
	Kind DeltaKind `json:"kind"`
	// Link is the target link ID of the link mutations.
	Link int `json:"link,omitempty"`
	// Node is the target processor of the node mutations.
	Node int `json:"node,omitempty"`
	// Factor is the cost multiplier of DeltaScaleLink.
	Factor float64 `json:"factor,omitempty"`
}

// String returns a compact human-readable description of the delta.
func (d Delta) String() string {
	switch d.Kind {
	case DeltaScaleLink:
		return fmt.Sprintf("scale-link(%d, %.3f)", d.Link, d.Factor)
	case DeltaLinkDown, DeltaLinkUp:
		return fmt.Sprintf("%s(%d)", d.Kind, d.Link)
	default:
		return fmt.Sprintf("%s(%d)", d.Kind, d.Node)
	}
}

// Errors returned by ApplyDelta.
var (
	ErrBadDelta   = errors.New("platform: invalid delta")
	ErrDeltaState = errors.New("platform: delta does not match platform state")
)

// ensureMasks allocates the down masks on first use so that never-mutated
// platforms pay nothing.
func (p *Platform) ensureMasks() {
	if p.linkDown == nil {
		p.linkDown = make([]bool, len(p.links))
	}
	if p.nodeDown == nil {
		p.nodeDown = make([]bool, len(p.nodes))
	}
}

// NodeAlive reports whether processor u has not been taken down by a delta.
func (p *Platform) NodeAlive(u int) bool {
	return p.nodeDown == nil || !p.nodeDown[u]
}

// LinkAlive reports whether link id itself has not been taken down (its
// endpoints may still be dead; see LinkLive).
func (p *Platform) LinkAlive(id int) bool {
	return p.linkDown == nil || !p.linkDown[id]
}

// LinkLive reports whether link id is usable: the link is alive and both of
// its endpoints are alive.
func (p *Platform) LinkLive(id int) bool {
	if !p.LinkAlive(id) {
		return false
	}
	l := p.links[id]
	return p.NodeAlive(l.From) && p.NodeAlive(l.To)
}

// NumAliveNodes returns the number of processors currently alive.
func (p *Platform) NumAliveNodes() int {
	if p.nodeDown == nil {
		return len(p.nodes)
	}
	n := 0
	for _, down := range p.nodeDown {
		if !down {
			n++
		}
	}
	return n
}

// LiveMask returns a fresh boolean mask over link IDs marking the usable
// links (alive links between alive endpoints), in the form expected by the
// enabled-set graph traversals.
func (p *Platform) LiveMask() []bool {
	mask := make([]bool, len(p.links))
	for id := range p.links {
		mask[id] = p.LinkLive(id)
	}
	return mask
}

// Mutated reports whether any delta has ever been applied to the platform.
func (p *Platform) Mutated() bool { return len(p.journal) > 0 }

// Journal returns a copy of the mutation journal: every delta applied to the
// platform, in application order. Sessions (package steady) diff journal
// suffixes to decide how much of a previous solve can be reused.
func (p *Platform) Journal() []Delta {
	return append([]Delta(nil), p.journal...)
}

// JournalLen returns the number of deltas applied so far (cheaper than
// Journal when only the length is needed).
func (p *Platform) JournalLen() int { return len(p.journal) }

// JournalSince returns a copy of the journal entries applied after the first
// n deltas.
func (p *Platform) JournalSince(n int) []Delta {
	if n < 0 {
		n = 0
	}
	if n >= len(p.journal) {
		return nil
	}
	return append([]Delta(nil), p.journal[n:]...)
}

// ApplyDelta applies one mutation to the platform, appends it to the
// mutation journal and returns the inverse delta (applying the inverse
// restores the previous state — and is itself journaled, since the journal
// is a history, not a diff). Deltas that do not match the platform state
// (downing a dead link, reviving an alive node, ...) fail with ErrDeltaState
// so that trace generators cannot silently produce no-op events.
func (p *Platform) ApplyDelta(d Delta) (Delta, error) {
	switch d.Kind {
	case DeltaScaleLink:
		if d.Link < 0 || d.Link >= len(p.links) {
			return Delta{}, fmt.Errorf("%w: link %d out of range [0, %d)", ErrBadDelta, d.Link, len(p.links))
		}
		if d.Factor <= 0 || math.IsNaN(d.Factor) || math.IsInf(d.Factor, 0) {
			return Delta{}, fmt.Errorf("%w: scale factor %v", ErrBadDelta, d.Factor)
		}
		p.ScaleLinkCost(d.Link, d.Factor)
	case DeltaLinkDown:
		if d.Link < 0 || d.Link >= len(p.links) {
			return Delta{}, fmt.Errorf("%w: link %d out of range [0, %d)", ErrBadDelta, d.Link, len(p.links))
		}
		if !p.LinkAlive(d.Link) {
			return Delta{}, fmt.Errorf("%w: link %d is already down", ErrDeltaState, d.Link)
		}
		p.ensureMasks()
		p.linkDown[d.Link] = true
	case DeltaLinkUp:
		if d.Link < 0 || d.Link >= len(p.links) {
			return Delta{}, fmt.Errorf("%w: link %d out of range [0, %d)", ErrBadDelta, d.Link, len(p.links))
		}
		if p.LinkAlive(d.Link) {
			return Delta{}, fmt.Errorf("%w: link %d is already up", ErrDeltaState, d.Link)
		}
		p.linkDown[d.Link] = false
	case DeltaNodeDown:
		if d.Node < 0 || d.Node >= len(p.nodes) {
			return Delta{}, fmt.Errorf("%w: node %d out of range [0, %d)", ErrBadDelta, d.Node, len(p.nodes))
		}
		if !p.NodeAlive(d.Node) {
			return Delta{}, fmt.Errorf("%w: node %d is already down", ErrDeltaState, d.Node)
		}
		p.ensureMasks()
		p.nodeDown[d.Node] = true
	case DeltaNodeUp:
		if d.Node < 0 || d.Node >= len(p.nodes) {
			return Delta{}, fmt.Errorf("%w: node %d out of range [0, %d)", ErrBadDelta, d.Node, len(p.nodes))
		}
		if p.NodeAlive(d.Node) {
			return Delta{}, fmt.Errorf("%w: node %d is already up", ErrDeltaState, d.Node)
		}
		p.nodeDown[d.Node] = false
	default:
		return Delta{}, fmt.Errorf("%w: unknown kind %v", ErrBadDelta, d.Kind)
	}
	p.journal = append(p.journal, d)
	return d.Inverse(), nil
}

// Inverse returns the delta that undoes d.
func (d Delta) Inverse() Delta {
	switch d.Kind {
	case DeltaScaleLink:
		return Delta{Kind: DeltaScaleLink, Link: d.Link, Factor: 1 / d.Factor}
	case DeltaLinkDown:
		return Delta{Kind: DeltaLinkUp, Link: d.Link}
	case DeltaLinkUp:
		return Delta{Kind: DeltaLinkDown, Link: d.Link}
	case DeltaNodeDown:
		return Delta{Kind: DeltaNodeUp, Node: d.Node}
	case DeltaNodeUp:
		return Delta{Kind: DeltaNodeDown, Node: d.Node}
	default:
		return d
	}
}

// Tightening reports whether the delta can only shrink the feasible region
// of the steady-state broadcast LP: degrading a link or taking an element
// down. Loosening deltas (speed-ups, revivals) force the steady session to
// rebuild its master LP instead of appending rows (see steady.Session).
func (d Delta) Tightening() bool {
	switch d.Kind {
	case DeltaScaleLink:
		return d.Factor >= 1
	case DeltaLinkDown:
		return true
	default:
		// Node crashes shrink the feasible rates, but they also remove
		// destinations: cut rows that only separated now-dead destinations
		// become invalid, so NodeDown cannot take the append-only path.
		return false
	}
}

// ValidateLive checks the structural invariants of Validate and, instead of
// full reachability, that the source is alive and that every alive node is
// reachable from it through live links. On a platform with no applied downs
// it is equivalent to Validate.
func (p *Platform) ValidateLive(source int) error {
	if err := p.validateStructure(); err != nil {
		return err
	}
	if source < 0 || source >= len(p.nodes) {
		return fmt.Errorf("%w: source=%d", ErrNodeRange, source)
	}
	if !p.NodeAlive(source) {
		return fmt.Errorf("%w: source %d is down", ErrNotReachable, source)
	}
	g := p.Graph()
	reach := g.ReachableFrom(source, p.LiveMask())
	for u, ok := range reach {
		if !ok && p.NodeAlive(u) {
			return fmt.Errorf("%w: alive node %d (source %d)", ErrNotReachable, u, source)
		}
	}
	return nil
}
