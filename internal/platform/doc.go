// Package platform defines the heterogeneous target platform of the paper:
// a directed graph of processors connected by communication links with
// affine costs, plus the broadcast-tree type produced by the heuristics.
//
// A Platform holds dense integer-identified nodes (with per-node multi-port
// send/receive overheads) and directed links (with model.AffineCost
// occupation costs), an adjacency index, and the message slice size. It is
// immutable-by-default: every subsystem that needs to modify one works on
// its own Clone. The only sanctioned mutation path is ApplyDelta — link
// bandwidth drift, link down/up, node crash/rejoin — which journals every
// delta and returns its inverse, so state can be replayed, diffed (steady
// sessions diff journal suffixes) and exactly undone. Alive/live masks
// track which nodes and links a mutated platform can still use, and
// ValidateLive checks broadcastability over the live part.
//
// Two identity notions support the planning service's cache:
//
//   - Fingerprint is the canonical content fingerprint: a
//     permutation-invariant, byte-stable SHA-256 of the platform's current
//     state, computed via Weisfeiler–Leman color refinement. Renumbering
//     nodes or links, reordering insertions, or mutating and restoring a
//     platform cannot change it; names and the journal never contribute.
//
//   - CanonicalEncoding is the exact encoding in the platform's own
//     numbering: it distinguishes renumbered twins that share a
//     fingerprint, so cached plans (whose rates and trees are expressed in
//     link/node IDs) are never served across a renumbering.
//
// Tree is the spanning broadcast tree built by the heuristics; Routing the
// routed schedule of the binomial heuristic. JSON (de)serialization
// validates links on the way in and round-trips platforms byte-stably.
package platform
