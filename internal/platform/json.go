package platform

import (
	"encoding/json"
	"fmt"
)

// platformJSON is the serialized form of a Platform.
type platformJSON struct {
	Nodes     []Node  `json:"nodes"`
	Links     []Link  `json:"links"`
	SliceSize float64 `json:"sliceSize"`
}

// MarshalJSON implements json.Marshaler.
func (p *Platform) MarshalJSON() ([]byte, error) {
	return json.Marshal(platformJSON{
		Nodes:     append([]Node(nil), p.nodes...),
		Links:     append([]Link(nil), p.links...),
		SliceSize: p.sliceSize,
	})
}

// UnmarshalJSON implements json.Unmarshaler. The adjacency index is rebuilt
// and the link list is validated.
func (p *Platform) UnmarshalJSON(data []byte) error {
	var in platformJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	np := New(len(in.Nodes))
	copy(np.nodes, in.Nodes)
	if in.SliceSize > 0 {
		np.sliceSize = in.SliceSize
	}
	for i, l := range in.Links {
		if _, err := np.AddLink(l.From, l.To, l.Cost); err != nil {
			return fmt.Errorf("platform: link %d: %w", i, err)
		}
	}
	*p = *np
	return nil
}
