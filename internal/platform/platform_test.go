package platform

import (
	"encoding/json"
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

// chainPlatform returns a platform 0 -> 1 -> ... -> n-1 with unit link costs.
func chainPlatform(n int) *Platform {
	p := New(n)
	for i := 0; i+1 < n; i++ {
		p.MustAddLink(i, i+1, model.Linear(1))
	}
	return p
}

func TestNewPlatform(t *testing.T) {
	p := New(4)
	if p.NumNodes() != 4 || p.NumLinks() != 0 {
		t.Fatalf("nodes=%d links=%d", p.NumNodes(), p.NumLinks())
	}
	if p.SliceSize() != DefaultSliceSize {
		t.Fatalf("slice size = %v", p.SliceSize())
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestAddLinkErrors(t *testing.T) {
	p := New(3)
	if _, err := p.AddLink(-1, 0, model.Linear(1)); !errors.Is(err, ErrNodeRange) {
		t.Errorf("from out of range: %v", err)
	}
	if _, err := p.AddLink(0, 3, model.Linear(1)); !errors.Is(err, ErrNodeRange) {
		t.Errorf("to out of range: %v", err)
	}
	if _, err := p.AddLink(1, 1, model.Linear(1)); !errors.Is(err, ErrSelfLoop) {
		t.Errorf("self loop: %v", err)
	}
	if _, err := p.AddLink(0, 1, model.AffineCost{PerUnit: -1}); !errors.Is(err, ErrInvalidCost) {
		t.Errorf("invalid cost: %v", err)
	}
}

func TestMustAddLinkPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddLink did not panic")
		}
	}()
	New(1).MustAddLink(0, 0, model.Linear(1))
}

func TestAddBidirectionalLink(t *testing.T) {
	p := New(2)
	f, r, err := p.AddBidirectionalLink(0, 1, model.Linear(2))
	if err != nil {
		t.Fatal(err)
	}
	if !p.HasLink(0, 1) || !p.HasLink(1, 0) {
		t.Fatal("bidirectional link missing a direction")
	}
	if p.Link(f).From != 0 || p.Link(r).From != 1 {
		t.Fatal("link endpoints wrong")
	}
	if _, _, err := p.AddBidirectionalLink(0, 5, model.Linear(1)); err == nil {
		t.Fatal("expected error for out-of-range node")
	}
	if _, _, err := New(3).AddBidirectionalLink(0, 3, model.Linear(1)); err == nil {
		t.Fatal("expected error")
	}
}

func TestSliceTimes(t *testing.T) {
	p := New(3)
	id := p.MustAddLink(0, 1, model.AffineCost{Latency: 1, PerUnit: 2})
	p.SetSliceSize(3)
	if got := p.SliceTime(id); got != 7 {
		t.Fatalf("SliceTime = %v, want 7", got)
	}
	if got := p.SliceTimeBetween(0, 1); got != 7 {
		t.Fatalf("SliceTimeBetween = %v, want 7", got)
	}
	if !math.IsInf(p.SliceTimeBetween(1, 2), 1) {
		t.Fatal("missing link should have infinite slice time")
	}
}

func TestSetSliceSizePanics(t *testing.T) {
	for _, bad := range []float64{0, -1, math.Inf(1), math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetSliceSize(%v) did not panic", bad)
				}
			}()
			New(1).SetSliceSize(bad)
		}()
	}
}

func TestLinkBetweenAndAdjacency(t *testing.T) {
	p := New(3)
	a := p.MustAddLink(0, 1, model.Linear(1))
	b := p.MustAddLink(0, 2, model.Linear(2))
	c := p.MustAddLink(1, 2, model.Linear(3))
	if got := p.LinkBetween(0, 2); got != b {
		t.Fatalf("LinkBetween(0,2) = %d, want %d", got, b)
	}
	if got := p.LinkBetween(2, 0); got != -1 {
		t.Fatalf("LinkBetween(2,0) = %d, want -1", got)
	}
	if got := p.LinkBetween(-1, 0); got != -1 {
		t.Fatal("out of range should return -1")
	}
	if len(p.OutLinkIDs(0)) != 2 || len(p.InLinkIDs(2)) != 2 {
		t.Fatal("adjacency lists wrong")
	}
	if len(p.Links()) != 3 {
		t.Fatal("Links() wrong length")
	}
	_ = a
	_ = c
}

func TestNodeAccessors(t *testing.T) {
	p := New(2)
	p.SetNode(1, Node{Name: "worker", Send: model.Linear(0.5), Recv: model.Linear(0.25)})
	if p.Node(1).Name != "worker" {
		t.Fatal("SetNode/Node round trip failed")
	}
	if got := p.SendTime(1); got != 0.5 {
		t.Fatalf("SendTime = %v, want 0.5", got)
	}
	if got := p.RecvTime(1); got != 0.25 {
		t.Fatalf("RecvTime = %v, want 0.25", got)
	}
}

func TestGraphMirrorsLinks(t *testing.T) {
	p := New(4)
	p.MustAddLink(0, 1, model.Linear(1.5))
	p.MustAddLink(1, 2, model.Linear(2.5))
	p.MustAddLink(2, 3, model.Linear(3.5))
	g := p.Graph()
	if g.NumNodes() != 4 || g.NumEdges() != 3 {
		t.Fatalf("graph size %d/%d", g.NumNodes(), g.NumEdges())
	}
	for id := 0; id < p.NumLinks(); id++ {
		e := g.Edge(id)
		l := p.Link(id)
		if e.From != l.From || e.To != l.To {
			t.Fatalf("edge %d endpoints mismatch", id)
		}
		if math.Abs(e.Weight-p.SliceTime(id)) > 1e-12 {
			t.Fatalf("edge %d weight %v != slice time %v", id, e.Weight, p.SliceTime(id))
		}
	}
}

func TestDensity(t *testing.T) {
	p := New(5)
	if p.Density() != 0 {
		t.Fatal("empty platform density should be 0")
	}
	p.MustAddLink(0, 1, model.Linear(1))
	p.MustAddLink(1, 0, model.Linear(1))
	want := 2.0 / 20.0
	if math.Abs(p.Density()-want) > 1e-12 {
		t.Fatalf("density = %v, want %v", p.Density(), want)
	}
	if New(1).Density() != 0 {
		t.Fatal("single node density should be 0")
	}
}

func TestDeriveMultiPortOverheads(t *testing.T) {
	p := New(3)
	p.MustAddLink(0, 1, model.Linear(2))
	p.MustAddLink(0, 2, model.Linear(4))
	p.MustAddLink(1, 2, model.Linear(6))
	p.DeriveMultiPortOverheads(0.8)
	if got := p.SendTime(0); math.Abs(got-1.6) > 1e-12 {
		t.Fatalf("SendTime(0) = %v, want 1.6 (0.8 x min(2,4))", got)
	}
	if got := p.SendTime(1); math.Abs(got-4.8) > 1e-12 {
		t.Fatalf("SendTime(1) = %v, want 4.8", got)
	}
	if got := p.SendTime(2); got != 0 {
		t.Fatalf("SendTime(2) = %v, want 0 (no outgoing links)", got)
	}
	if got := p.RecvTime(2); math.Abs(got-0.8*4) > 1e-12 {
		t.Fatalf("RecvTime(2) = %v, want 3.2 (0.8 x min(4,6))", got)
	}
	if got := p.RecvTime(0); got != 0 {
		t.Fatalf("RecvTime(0) = %v, want 0 (no incoming links)", got)
	}
}

func TestValidate(t *testing.T) {
	if err := New(0).Validate(-1); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("empty platform: %v", err)
	}
	p := chainPlatform(4)
	if err := p.Validate(0); err != nil {
		t.Fatalf("valid chain rejected: %v", err)
	}
	if err := p.Validate(1); !errors.Is(err, ErrNotReachable) {
		t.Fatalf("unreachable source not detected: %v", err)
	}
	if err := p.Validate(9); !errors.Is(err, ErrNodeRange) {
		t.Fatalf("source out of range not detected: %v", err)
	}
	if err := p.Validate(-1); err != nil {
		t.Fatalf("validation without source should skip reachability: %v", err)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := chainPlatform(3)
	p.SetSliceSize(2)
	c := p.Clone()
	c.MustAddLink(2, 0, model.Linear(5))
	c.SetNode(0, Node{Name: "changed"})
	c.SetSliceSize(7)
	if p.NumLinks() != 2 || p.Node(0).Name != "" || p.SliceSize() != 2 {
		t.Fatal("clone mutation leaked into original")
	}
	if c.NumLinks() != 3 || c.SliceSize() != 7 {
		t.Fatal("clone did not record mutation")
	}
}

func TestScaleLinkCost(t *testing.T) {
	p := New(2)
	id := p.MustAddLink(0, 1, model.AffineCost{Latency: 1, PerUnit: 2})
	p.ScaleLinkCost(id, 2)
	l := p.Link(id)
	if l.Cost.Latency != 2 || l.Cost.PerUnit != 4 {
		t.Fatalf("scaled cost = %+v", l.Cost)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("non-positive factor did not panic")
		}
	}()
	p.ScaleLinkCost(id, 0)
}

func TestPlatformString(t *testing.T) {
	if chainPlatform(3).String() == "" {
		t.Fatal("String() empty")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	p := New(3)
	p.SetSliceSize(2.5)
	p.SetNode(0, Node{Name: "source", Send: model.Linear(0.1)})
	p.MustAddLink(0, 1, model.AffineCost{Latency: 0.5, PerUnit: 1.5})
	p.MustAddLink(1, 2, model.Linear(3))
	data, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var q Platform
	if err := json.Unmarshal(data, &q); err != nil {
		t.Fatal(err)
	}
	if q.NumNodes() != 3 || q.NumLinks() != 2 {
		t.Fatalf("round-trip size mismatch: %d nodes, %d links", q.NumNodes(), q.NumLinks())
	}
	if q.SliceSize() != 2.5 {
		t.Fatalf("slice size = %v", q.SliceSize())
	}
	if q.Node(0).Name != "source" {
		t.Fatal("node metadata lost")
	}
	if math.Abs(q.SliceTime(0)-p.SliceTime(0)) > 1e-12 {
		t.Fatal("link cost lost")
	}
	if q.LinkBetween(1, 2) < 0 {
		t.Fatal("adjacency index not rebuilt")
	}
}

func TestJSONUnmarshalRejectsBadLinks(t *testing.T) {
	var p Platform
	bad := `{"nodes":[{},{}],"links":[{"from":0,"to":5,"cost":{"latency":0,"perUnit":1}}],"sliceSize":1}`
	if err := json.Unmarshal([]byte(bad), &p); err == nil {
		t.Fatal("expected error for out-of-range link")
	}
	if err := json.Unmarshal([]byte(`{"nodes":`), &p); err == nil {
		t.Fatal("expected error for malformed JSON")
	}
}

func TestJSONPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		p := New(n)
		for i := 1; i < n; i++ {
			p.MustAddLink(rng.Intn(i), i, model.Linear(0.1+rng.Float64()))
		}
		data, err := json.Marshal(p)
		if err != nil {
			return false
		}
		var q Platform
		if err := json.Unmarshal(data, &q); err != nil {
			return false
		}
		if q.NumNodes() != p.NumNodes() || q.NumLinks() != p.NumLinks() {
			return false
		}
		for id := 0; id < p.NumLinks(); id++ {
			if p.Link(id) != q.Link(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
