package platform

import (
	"reflect"
	"testing"

	"repro/internal/model"
)

// deltaTestPlatform builds a 4-node diamond: 0 -> {1, 2} -> 3 plus the
// reverse directions, so every single link can fail without disconnecting
// the platform.
func deltaTestPlatform(t *testing.T) *Platform {
	t.Helper()
	p := New(4)
	for _, e := range [][2]int{{0, 1}, {0, 2}, {1, 3}, {2, 3}} {
		if _, _, err := p.AddBidirectionalLink(e[0], e[1], model.Linear(1)); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

func TestApplyDeltaJournalAndUndo(t *testing.T) {
	p := deltaTestPlatform(t)
	orig := p.Clone()

	deltas := []Delta{
		{Kind: DeltaScaleLink, Link: 0, Factor: 2},
		{Kind: DeltaLinkDown, Link: 2},
		{Kind: DeltaNodeDown, Node: 3},
	}
	var undos []Delta
	for _, d := range deltas {
		undo, err := p.ApplyDelta(d)
		if err != nil {
			t.Fatalf("ApplyDelta(%v): %v", d, err)
		}
		undos = append(undos, undo)
	}
	if got := p.Journal(); !reflect.DeepEqual(got, deltas) {
		t.Fatalf("journal = %v, want %v", got, deltas)
	}
	into3 := p.LinkBetween(1, 3)
	if p.LinkAlive(2) || p.NodeAlive(3) || p.LinkLive(into3) {
		t.Fatalf("down state not applied: linkAlive(2)=%v nodeAlive(3)=%v linkLive(%d)=%v",
			p.LinkAlive(2), p.NodeAlive(3), into3, p.LinkLive(into3))
	}
	if got := p.NumAliveNodes(); got != 3 {
		t.Fatalf("NumAliveNodes = %d, want 3", got)
	}

	// Undo in reverse order restores costs and masks exactly.
	for i := len(undos) - 1; i >= 0; i-- {
		if _, err := p.ApplyDelta(undos[i]); err != nil {
			t.Fatalf("undo %v: %v", undos[i], err)
		}
	}
	if p.JournalLen() != 6 {
		t.Fatalf("JournalLen = %d, want 6 (journal is a history)", p.JournalLen())
	}
	for id := 0; id < p.NumLinks(); id++ {
		if p.Link(id).Cost != orig.Link(id).Cost {
			t.Fatalf("link %d cost %v, want %v after undo", id, p.Link(id).Cost, orig.Link(id).Cost)
		}
		if !p.LinkLive(id) {
			t.Fatalf("link %d not live after undo", id)
		}
	}
	if p.NumAliveNodes() != p.NumNodes() {
		t.Fatalf("NumAliveNodes = %d, want %d after undo", p.NumAliveNodes(), p.NumNodes())
	}
}

func TestApplyDeltaStateErrors(t *testing.T) {
	p := deltaTestPlatform(t)
	mustApply := func(d Delta) {
		t.Helper()
		if _, err := p.ApplyDelta(d); err != nil {
			t.Fatalf("ApplyDelta(%v): %v", d, err)
		}
	}
	mustApply(Delta{Kind: DeltaLinkDown, Link: 0})
	if _, err := p.ApplyDelta(Delta{Kind: DeltaLinkDown, Link: 0}); err == nil {
		t.Fatal("downing a dead link succeeded")
	}
	if _, err := p.ApplyDelta(Delta{Kind: DeltaLinkUp, Link: 1}); err == nil {
		t.Fatal("reviving an alive link succeeded")
	}
	if _, err := p.ApplyDelta(Delta{Kind: DeltaScaleLink, Link: 0, Factor: 0}); err == nil {
		t.Fatal("zero scale factor succeeded")
	}
	if _, err := p.ApplyDelta(Delta{Kind: DeltaNodeUp, Node: 2}); err == nil {
		t.Fatal("reviving an alive node succeeded")
	}
	if _, err := p.ApplyDelta(Delta{Kind: DeltaLinkDown, Link: 99}); err == nil {
		t.Fatal("out-of-range link succeeded")
	}
	// Failed deltas must not be journaled.
	if got := p.JournalLen(); got != 1 {
		t.Fatalf("JournalLen = %d, want 1", got)
	}
}

func TestDeltaTightening(t *testing.T) {
	cases := []struct {
		d    Delta
		want bool
	}{
		{Delta{Kind: DeltaScaleLink, Factor: 1.5}, true},
		{Delta{Kind: DeltaScaleLink, Factor: 0.5}, false},
		{Delta{Kind: DeltaLinkDown}, true},
		{Delta{Kind: DeltaLinkUp}, false},
		{Delta{Kind: DeltaNodeDown}, false},
		{Delta{Kind: DeltaNodeUp}, false},
	}
	for _, c := range cases {
		if got := c.d.Tightening(); got != c.want {
			t.Errorf("%v.Tightening() = %v, want %v", c.d, got, c.want)
		}
	}
}

func TestValidateLive(t *testing.T) {
	p := deltaTestPlatform(t)
	if err := p.ValidateLive(0); err != nil {
		t.Fatalf("pristine platform: %v", err)
	}
	// Kill node 1: 3 is still reachable via 2.
	if _, err := p.ApplyDelta(Delta{Kind: DeltaNodeDown, Node: 1}); err != nil {
		t.Fatal(err)
	}
	if err := p.ValidateLive(0); err != nil {
		t.Fatalf("after node-down(1): %v", err)
	}
	// Kill link 0->2 as well (link ID 2 is the pair (0,2) forward link):
	// now 2 and 3 are unreachable.
	id := p.LinkBetween(0, 2)
	if _, err := p.ApplyDelta(Delta{Kind: DeltaLinkDown, Link: id}); err != nil {
		t.Fatal(err)
	}
	if err := p.ValidateLive(0); err == nil {
		t.Fatal("disconnected live platform validated")
	}
	// A dead source is invalid.
	q := deltaTestPlatform(t)
	if _, err := q.ApplyDelta(Delta{Kind: DeltaNodeDown, Node: 0}); err != nil {
		t.Fatal(err)
	}
	if err := q.ValidateLive(0); err == nil {
		t.Fatal("dead source validated")
	}
}

func TestCloneCopiesDynamicState(t *testing.T) {
	p := deltaTestPlatform(t)
	if _, err := p.ApplyDelta(Delta{Kind: DeltaLinkDown, Link: 1}); err != nil {
		t.Fatal(err)
	}
	c := p.Clone()
	if c.LinkAlive(1) || c.JournalLen() != 1 {
		t.Fatalf("clone lost dynamic state: alive=%v journal=%d", c.LinkAlive(1), c.JournalLen())
	}
	// Mutating the clone must not touch the original.
	if _, err := c.ApplyDelta(Delta{Kind: DeltaNodeDown, Node: 2}); err != nil {
		t.Fatal(err)
	}
	if !p.NodeAlive(2) || p.JournalLen() != 1 {
		t.Fatal("clone mutation leaked into the original")
	}
}

func TestTreeValidateLiveAndPrune(t *testing.T) {
	p := deltaTestPlatform(t)
	// Tree 0 -> 1 -> 3, 0 -> 2.
	tr := NewTree(4, 0)
	tr.SetParent(1, 0, p.LinkBetween(0, 1))
	tr.SetParent(2, 0, p.LinkBetween(0, 2))
	tr.SetParent(3, 1, p.LinkBetween(1, 3))
	if err := tr.Validate(p); err != nil {
		t.Fatal(err)
	}
	if err := tr.ValidateLive(p); err != nil {
		t.Fatalf("pristine: %v", err)
	}
	// Node 3 dies: the tree minus the dead leaf still spans the alive nodes.
	if _, err := p.ApplyDelta(Delta{Kind: DeltaNodeDown, Node: 3}); err != nil {
		t.Fatal(err)
	}
	if err := tr.ValidateLive(p); err != nil {
		t.Fatalf("dead leaf: %v", err)
	}
	pruned, complete, err := tr.LivePrune(p)
	if err != nil || !complete {
		t.Fatalf("LivePrune: complete=%v err=%v", complete, err)
	}
	if pruned.Parent[3] != -1 {
		t.Fatal("dead leaf still attached after prune")
	}
	// Revive 3, kill interior node 1: alive node 3 is stranded.
	if _, err := p.ApplyDelta(Delta{Kind: DeltaNodeUp, Node: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ApplyDelta(Delta{Kind: DeltaNodeDown, Node: 1}); err != nil {
		t.Fatal(err)
	}
	if err := tr.ValidateLive(p); err == nil {
		t.Fatal("stranded alive node validated")
	}
	if _, complete, _ := tr.LivePrune(p); complete {
		t.Fatal("LivePrune reported complete with a stranded node")
	}
}
