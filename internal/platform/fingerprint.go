package platform

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
)

// Fingerprint is a canonical content hash of a platform: two platforms that
// describe the same communication structure — the same multiset of processors
// and links with the same costs, slice size and live state, up to a
// renumbering of nodes and links — fingerprint identically, and the hash is
// byte-stable across processes and runs. The planning service keys its plan
// cache and warm solver sessions on it.
type Fingerprint [sha256.Size]byte

// String returns the fingerprint as a lowercase hex string.
func (f Fingerprint) String() string { return hex.EncodeToString(f[:]) }

// ParseFingerprint parses the hex form produced by String.
func ParseFingerprint(s string) (Fingerprint, error) {
	var f Fingerprint
	b, err := hex.DecodeString(s)
	if err != nil {
		return f, fmt.Errorf("platform: invalid fingerprint %q: %w", s, err)
	}
	if len(b) != len(f) {
		return f, fmt.Errorf("platform: invalid fingerprint %q: want %d bytes, got %d", s, len(f), len(b))
	}
	copy(f[:], b)
	return f, nil
}

// Fingerprint returns the canonical content fingerprint of the platform's
// current state.
//
// The fingerprint covers everything the steady-state solvers and heuristics
// read: node send/receive overheads, the multiset of directed links with
// their affine costs, the slice size, and the current alive/live masks. It
// deliberately ignores presentation and history: node names and the mutation
// journal do not contribute, so a platform and a mutated-then-restored copy
// of it fingerprint identically.
//
// Permutation invariance is obtained by Weisfeiler–Leman color refinement:
// nodes start from a hash of their own costs and alive flag, are iteratively
// re-hashed with the sorted multiset of their incident link signatures, and
// the final digest hashes the sorted multisets of node colors and of
// (fromColor, toColor, cost, alive) link signatures. Renumbering nodes or
// reordering link IDs therefore cannot change the result. As with any hash,
// distinct platforms may in principle collide (structurally symmetric twins
// are folded together by design); callers that need exact identity — such as
// the plan cache — pair the fingerprint with the canonical encoding (or a
// hash of it), which is numbering-exact.
func (p *Platform) Fingerprint() Fingerprint {
	n := len(p.nodes)
	colors := make([]Fingerprint, n)
	for u := range p.nodes {
		colors[u] = p.initialColor(u)
	}

	// Refine until the color partition stabilizes (the number of distinct
	// colors stops growing), capped at n rounds as 1-WL guarantees.
	prevClasses := countClasses(colors)
	next := make([]Fingerprint, n)
	for round := 0; round < n; round++ {
		for u := range p.nodes {
			next[u] = p.refineColor(u, colors)
		}
		colors, next = next, colors
		classes := countClasses(colors)
		if classes == prevClasses {
			break
		}
		prevClasses = classes
	}

	// Final digest: slice size, counts, sorted node colors, sorted link
	// signatures expressed in color space.
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], math.Float64bits(p.sliceSize))
	h.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], uint64(n))
	h.Write(buf[:])
	binary.BigEndian.PutUint64(buf[:], uint64(len(p.links)))
	h.Write(buf[:])

	sorted := make([]Fingerprint, n)
	copy(sorted, colors)
	sortFingerprints(sorted)
	for _, c := range sorted {
		h.Write(c[:])
	}

	linkSigs := make([]Fingerprint, len(p.links))
	for id, l := range p.links {
		linkSigs[id] = hashTuple('L',
			colors[l.From][:], colors[l.To][:],
			f64(l.Cost.Latency), f64(l.Cost.PerUnit),
			boolByte(p.LinkAlive(id)))
	}
	sortFingerprints(linkSigs)
	for _, s := range linkSigs {
		h.Write(s[:])
	}

	var out Fingerprint
	h.Sum(out[:0])
	return out
}

// initialColor hashes the node-local content: overhead costs and alive flag.
func (p *Platform) initialColor(u int) Fingerprint {
	nd := p.nodes[u]
	return hashTuple('N',
		f64(nd.Send.Latency), f64(nd.Send.PerUnit),
		f64(nd.Recv.Latency), f64(nd.Recv.PerUnit),
		boolByte(p.NodeAlive(u)))
}

// refineColor re-hashes one node with the sorted signatures of its incident
// links (direction, cost, alive flag, far-end color).
func (p *Platform) refineColor(u int, colors []Fingerprint) Fingerprint {
	sigs := make([]Fingerprint, 0, len(p.out[u])+len(p.in[u]))
	for _, id := range p.out[u] {
		l := p.links[id]
		sigs = append(sigs, hashTuple('>',
			f64(l.Cost.Latency), f64(l.Cost.PerUnit),
			boolByte(p.LinkAlive(id)), colors[l.To][:]))
	}
	for _, id := range p.in[u] {
		l := p.links[id]
		sigs = append(sigs, hashTuple('<',
			f64(l.Cost.Latency), f64(l.Cost.PerUnit),
			boolByte(p.LinkAlive(id)), colors[l.From][:]))
	}
	sortFingerprints(sigs)
	h := sha256.New()
	h.Write(colors[u][:])
	for _, s := range sigs {
		h.Write(s[:])
	}
	var out Fingerprint
	h.Sum(out[:0])
	return out
}

// CanonicalEncoding returns a deterministic byte encoding of the platform's
// exact current state in its own node/link numbering: slice size, node costs
// and alive flags, links with costs and alive flags. Unlike the fingerprint
// it is not permutation-invariant; the plan cache compares it to tell a true
// repeat request from a renumbered (or hash-colliding) twin that happens to
// share a fingerprint.
func (p *Platform) CanonicalEncoding() []byte {
	out := make([]byte, 0, 16+24*len(p.nodes)+40*len(p.links))
	var buf [8]byte
	put := func(bits uint64) {
		binary.BigEndian.PutUint64(buf[:], bits)
		out = append(out, buf[:]...)
	}
	put(math.Float64bits(p.sliceSize))
	put(uint64(len(p.nodes)))
	for u, nd := range p.nodes {
		put(math.Float64bits(nd.Send.Latency))
		put(math.Float64bits(nd.Send.PerUnit))
		put(math.Float64bits(nd.Recv.Latency))
		put(math.Float64bits(nd.Recv.PerUnit))
		out = append(out, boolByte(p.NodeAlive(u)))
	}
	put(uint64(len(p.links)))
	for id, l := range p.links {
		put(uint64(l.From))
		put(uint64(l.To))
		put(math.Float64bits(l.Cost.Latency))
		put(math.Float64bits(l.Cost.PerUnit))
		out = append(out, boolByte(p.LinkAlive(id)))
	}
	return out
}

// hashTuple hashes a tag byte followed by the given fields, each field being
// either a [sha256.Size]byte slice, an 8-byte float encoding, or a single
// byte.
func hashTuple(tag byte, fields ...interface{}) Fingerprint {
	h := sha256.New()
	h.Write([]byte{tag})
	for _, fld := range fields {
		switch v := fld.(type) {
		case []byte:
			h.Write(v)
		case [8]byte:
			h.Write(v[:])
		case byte:
			h.Write([]byte{v})
		default:
			panic(fmt.Sprintf("platform: unsupported hash field %T", fld))
		}
	}
	var out Fingerprint
	h.Sum(out[:0])
	return out
}

// f64 encodes a float bit-exactly for hashing.
func f64(v float64) [8]byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], math.Float64bits(v))
	return buf
}

func boolByte(b bool) byte {
	if b {
		return 1
	}
	return 0
}

// countClasses returns the number of distinct colors.
func countClasses(colors []Fingerprint) int {
	seen := make(map[Fingerprint]struct{}, len(colors))
	for _, c := range colors {
		seen[c] = struct{}{}
	}
	return len(seen)
}

// sortFingerprints sorts a slice of fingerprints lexicographically.
func sortFingerprints(fs []Fingerprint) {
	sort.Slice(fs, func(i, j int) bool {
		return bytes.Compare(fs[i][:], fs[j][:]) < 0
	})
}
