package platform

import (
	"errors"
	"testing"

	"repro/internal/model"
)

// linePlatform builds 0 -> 1 -> 2 -> 3 with unit costs and returns it.
func linePlatform() *Platform {
	p := New(4)
	for i := 0; i+1 < 4; i++ {
		p.MustAddLink(i, i+1, model.Linear(1))
	}
	return p
}

func TestRoutingFromTreeValidates(t *testing.T) {
	p := starPlatform(4)
	tr := starTree(p)
	r := RoutingFromTree(tr)
	if err := r.Validate(p); err != nil {
		t.Fatalf("routing from valid tree rejected: %v", err)
	}
	if r.NumNodes() != 4 || r.Root != 0 {
		t.Fatalf("routing shape wrong: %+v", r)
	}
	mult := r.LinkMultiplicity(p)
	for v := 1; v < 4; v++ {
		if mult[p.LinkBetween(0, v)] != 1 {
			t.Fatalf("tree link multiplicity != 1")
		}
	}
}

func TestRoutingMultiHopTransfers(t *testing.T) {
	p := linePlatform()
	r := NewRouting(4, 0)
	// Node 1 directly, node 2 via 0->1->2 (logical parent 0), node 3 from 2.
	r.SetTransfer(1, 0, []int{p.LinkBetween(0, 1)})
	r.SetTransfer(2, 0, []int{p.LinkBetween(0, 1), p.LinkBetween(1, 2)})
	r.SetTransfer(3, 2, []int{p.LinkBetween(2, 3)})
	if err := r.Validate(p); err != nil {
		t.Fatalf("multi-hop routing rejected: %v", err)
	}
	mult := r.LinkMultiplicity(p)
	if mult[p.LinkBetween(0, 1)] != 2 {
		t.Fatalf("link 0->1 multiplicity = %d, want 2", mult[p.LinkBetween(0, 1)])
	}
	if mult[p.LinkBetween(1, 2)] != 1 || mult[p.LinkBetween(2, 3)] != 1 {
		t.Fatal("other multiplicities wrong")
	}
}

func TestRoutingValidateErrors(t *testing.T) {
	p := linePlatform()

	// Size mismatch.
	if err := NewRouting(3, 0).Validate(p); !errors.Is(err, ErrTreeSizeMismatch) {
		t.Errorf("size mismatch: %v", err)
	}
	// Root out of range.
	r := NewRouting(4, 9)
	if err := r.Validate(p); !errors.Is(err, ErrTreeRootRange) {
		t.Errorf("root range: %v", err)
	}
	// Root with a parent.
	r = NewRouting(4, 0)
	r.LogicalParent[0] = 1
	if err := r.Validate(p); !errors.Is(err, ErrTreeRootHasParent) {
		t.Errorf("root parent: %v", err)
	}
	// Missing parent.
	r = NewRouting(4, 0)
	r.SetTransfer(1, 0, []int{p.LinkBetween(0, 1)})
	if err := r.Validate(p); !errors.Is(err, ErrRoutingNotSpanning) {
		t.Errorf("missing parent: %v", err)
	}
	// Empty path.
	r = fullLineRouting(p)
	r.Paths[2] = nil
	if err := r.Validate(p); !errors.Is(err, ErrRoutingBadPath) {
		t.Errorf("empty path: %v", err)
	}
	// Path that does not start at the logical parent.
	r = fullLineRouting(p)
	r.Paths[2] = []int{p.LinkBetween(2, 3)}
	if err := r.Validate(p); !errors.Is(err, ErrRoutingBadPath) {
		t.Errorf("broken path: %v", err)
	}
	// Path that ends at the wrong node.
	r = fullLineRouting(p)
	r.Paths[3] = []int{p.LinkBetween(2, 3)}
	r.LogicalParent[3] = 1
	if err := r.Validate(p); !errors.Is(err, ErrRoutingBadPath) {
		t.Errorf("wrong endpoint: %v", err)
	}
	// Out-of-range link ID.
	r = fullLineRouting(p)
	r.Paths[1] = []int{99}
	if err := r.Validate(p); !errors.Is(err, ErrRoutingBadPath) {
		t.Errorf("bad link id: %v", err)
	}
	// Logical cycle between 2 and 3 (both have valid physical paths).
	q := New(4)
	q.MustAddLink(0, 1, model.Linear(1))
	q.MustAddLink(2, 3, model.Linear(1))
	q.MustAddLink(3, 2, model.Linear(1))
	r = NewRouting(4, 0)
	r.SetTransfer(1, 0, []int{q.LinkBetween(0, 1)})
	r.SetTransfer(2, 3, []int{q.LinkBetween(3, 2)})
	r.SetTransfer(3, 2, []int{q.LinkBetween(2, 3)})
	if err := r.Validate(q); !errors.Is(err, ErrRoutingCycle) {
		t.Errorf("cycle: %v", err)
	}
}

// fullLineRouting builds a valid chain routing on the line platform.
func fullLineRouting(p *Platform) *Routing {
	r := NewRouting(4, 0)
	r.SetTransfer(1, 0, []int{p.LinkBetween(0, 1)})
	r.SetTransfer(2, 1, []int{p.LinkBetween(1, 2)})
	r.SetTransfer(3, 2, []int{p.LinkBetween(2, 3)})
	return r
}
