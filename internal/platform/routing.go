package platform

import (
	"errors"
	"fmt"
)

// Routing is a broadcast schedule where the logical communication structure
// is a tree over the processors but each logical transfer may be routed
// along a multi-hop physical path. It generalizes Tree: a Tree is a Routing
// whose every path has length one.
//
// This representation is needed to evaluate the MPI-style binomial heuristic
// faithfully: the binomial schedule is defined on processor indices, so a
// logical transfer between non-adjacent processors is routed along the
// shortest physical path, and several logical transfers may share physical
// links and nodes — which is exactly the contention that makes the binomial
// tree perform poorly on heterogeneous platforms.
type Routing struct {
	// Root is the source processor.
	Root int `json:"root"`
	// LogicalParent[v] is the processor that logically sends the data to v,
	// or -1 for the root.
	LogicalParent []int `json:"logicalParent"`
	// Paths[v] is the ordered list of platform link IDs along which the
	// logical transfer LogicalParent[v] -> v is routed (nil for the root).
	Paths [][]int `json:"paths"`
}

// NewRouting returns an empty routing skeleton for n nodes rooted at root.
func NewRouting(n, root int) *Routing {
	r := &Routing{
		Root:          root,
		LogicalParent: make([]int, n),
		Paths:         make([][]int, n),
	}
	for i := range r.LogicalParent {
		r.LogicalParent[i] = -1
	}
	return r
}

// NumNodes returns the number of processors covered by the routing.
func (r *Routing) NumNodes() int { return len(r.LogicalParent) }

// SetTransfer records that node v logically receives the data from parent
// along the given physical path.
func (r *Routing) SetTransfer(v, parent int, path []int) {
	r.LogicalParent[v] = parent
	r.Paths[v] = append([]int(nil), path...)
}

// Errors returned by Routing.Validate.
var (
	ErrRoutingNotSpanning = errors.New("platform: routing does not span all nodes")
	ErrRoutingBadPath     = errors.New("platform: routed path does not connect the logical endpoints")
	ErrRoutingCycle       = errors.New("platform: logical routing structure has a cycle")
)

// Validate checks that the routing is a spanning logical arborescence rooted
// at Root and that every path is a valid physical route from the logical
// parent to the node.
func (r *Routing) Validate(p *Platform) error {
	n := p.NumNodes()
	if len(r.LogicalParent) != n || len(r.Paths) != n {
		return fmt.Errorf("%w: routing has %d nodes, platform has %d", ErrTreeSizeMismatch, len(r.LogicalParent), n)
	}
	if r.Root < 0 || r.Root >= n {
		return fmt.Errorf("%w: root=%d", ErrTreeRootRange, r.Root)
	}
	if r.LogicalParent[r.Root] != -1 {
		return ErrTreeRootHasParent
	}
	for v := 0; v < n; v++ {
		if v == r.Root {
			continue
		}
		parent := r.LogicalParent[v]
		if parent < 0 || parent >= n {
			return fmt.Errorf("%w: node %d has no logical parent", ErrRoutingNotSpanning, v)
		}
		path := r.Paths[v]
		if len(path) == 0 {
			return fmt.Errorf("%w: node %d has an empty path", ErrRoutingBadPath, v)
		}
		at := parent
		for _, linkID := range path {
			if linkID < 0 || linkID >= p.NumLinks() {
				return fmt.Errorf("%w: node %d uses link %d", ErrRoutingBadPath, v, linkID)
			}
			l := p.Link(linkID)
			if l.From != at {
				return fmt.Errorf("%w: node %d path breaks at link %d (%d -> %d, expected from %d)",
					ErrRoutingBadPath, v, linkID, l.From, l.To, at)
			}
			at = l.To
		}
		if at != v {
			return fmt.Errorf("%w: node %d path ends at %d", ErrRoutingBadPath, v, at)
		}
	}
	// The logical parent structure must be acyclic and reach the root.
	for v := 0; v < n; v++ {
		seen := 0
		at := v
		for at != r.Root {
			at = r.LogicalParent[at]
			seen++
			if at < 0 || seen > n {
				return fmt.Errorf("%w: starting from node %d", ErrRoutingCycle, v)
			}
		}
	}
	return nil
}

// LinkMultiplicity returns, for every platform link, the number of logical
// transfers routed through it. Under a pipelined broadcast every slice must
// traverse each logical transfer's full path, so a link with multiplicity m
// is occupied m times its transfer time per slice period.
func (r *Routing) LinkMultiplicity(p *Platform) []int {
	mult := make([]int, p.NumLinks())
	for v, path := range r.Paths {
		if v == r.Root {
			continue
		}
		for _, linkID := range path {
			mult[linkID]++
		}
	}
	return mult
}

// RoutingFromTree lifts a plain broadcast tree into the routing
// representation (every logical transfer uses exactly the tree link).
func RoutingFromTree(t *Tree) *Routing {
	r := NewRouting(t.NumNodes(), t.Root)
	for v := range t.Parent {
		if v == t.Root || t.Parent[v] < 0 {
			continue
		}
		r.LogicalParent[v] = t.Parent[v]
		r.Paths[v] = []int{t.ParentLink[v]}
	}
	return r
}
