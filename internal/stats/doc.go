// Package stats provides the statistics used by every report in the
// repository, in two groups.
//
// Descriptive statistics (Summarize, Mean, StdDev, Median, Min, Max,
// GeometricMean, ConfidenceInterval95) aggregate experiment samples — the
// paper reports mean relative performance and its deviation across platform
// configurations, and the sweep/churn/robustness reports follow the same
// pattern. NaN values are treated as missing and ignored.
//
// Histogram is the fixed-bucket log-scale latency histogram behind the
// load-replay reports and the service's /v1/metrics endpoint. It uses the
// HDR-histogram log-linear layout (8 sub-buckets per power-of-two octave,
// values 0..7 exact, relative error <= 12.5%) over non-negative int64 ticks
// — nanoseconds for wall-clock latency, virtual work units for the load
// generator's deterministic clock. All state is integral, so Merge is
// exact: merging any sharding of a stream reproduces the single-stream
// state bit for bit, which is what makes histogram-bearing reports
// byte-identical across worker counts. Quantile returns a deterministic
// upper bound, monotone in q; Summary is the compact JSON view
// (count/min/max/mean/p50/p90/p99).
package stats
