package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasic(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.Count != 8 {
		t.Fatalf("Count = %d", s.Count)
	}
	if !almostEqual(s.Mean, 5) {
		t.Fatalf("Mean = %v, want 5", s.Mean)
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	if !almostEqual(s.StdDev, math.Sqrt(32.0/7.0)) {
		t.Fatalf("StdDev = %v", s.StdDev)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if !almostEqual(s.Median, 4.5) {
		t.Fatalf("Median = %v", s.Median)
	}
}

func TestSummarizeEmptyAndNaN(t *testing.T) {
	if s := Summarize(nil); s.Count != 0 || s.Mean != 0 {
		t.Fatalf("empty summary = %+v", s)
	}
	s := Summarize([]float64{math.NaN(), 3, math.NaN(), 5})
	if s.Count != 2 || !almostEqual(s.Mean, 4) {
		t.Fatalf("NaN-filtered summary = %+v", s)
	}
	if s := Summarize([]float64{math.NaN()}); s.Count != 0 {
		t.Fatalf("all-NaN summary = %+v", s)
	}
}

func TestSummarizeSingleValue(t *testing.T) {
	s := Summarize([]float64{3})
	if s.Count != 1 || s.Mean != 3 || s.StdDev != 0 || s.Median != 3 {
		t.Fatalf("single-value summary = %+v", s)
	}
}

func TestMeanStdDev(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
	if !almostEqual(Mean([]float64{1, 2, 3}), 2) {
		t.Fatal("Mean wrong")
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("StdDev of single value should be 0")
	}
	if !almostEqual(StdDev([]float64{1, 2, 3, 4}), math.Sqrt(5.0/3.0)) {
		t.Fatalf("StdDev = %v", StdDev([]float64{1, 2, 3, 4}))
	}
}

func TestMedian(t *testing.T) {
	if !math.IsNaN(Median(nil)) {
		t.Fatal("Median(nil) should be NaN")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if !almostEqual(Median([]float64{4, 1, 3, 2}), 2.5) {
		t.Fatal("even median wrong")
	}
	// Input must not be reordered.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatal("Median modified its input")
	}
}

func TestMinMax(t *testing.T) {
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("Min/Max of empty should be NaN")
	}
	if Min([]float64{3, -1, 2}) != -1 || Max([]float64{3, -1, 2}) != 3 {
		t.Fatal("Min/Max wrong")
	}
}

func TestConfidenceInterval95(t *testing.T) {
	if ConfidenceInterval95([]float64{1}) != 0 {
		t.Fatal("CI of single value should be 0")
	}
	sample := []float64{1, 2, 3, 4, 5}
	want := 1.96 * StdDev(sample) / math.Sqrt(5)
	if !almostEqual(ConfidenceInterval95(sample), want) {
		t.Fatal("CI wrong")
	}
}

func TestGeometricMean(t *testing.T) {
	if !almostEqual(GeometricMean([]float64{1, 4, 16}), 4) {
		t.Fatalf("GeometricMean = %v, want 4", GeometricMean([]float64{1, 4, 16}))
	}
	if !math.IsNaN(GeometricMean(nil)) {
		t.Fatal("empty geometric mean should be NaN")
	}
	if !math.IsNaN(GeometricMean([]float64{1, 0, 2})) {
		t.Fatal("non-positive value should yield NaN")
	}
}

func TestSummaryProperties(t *testing.T) {
	// Property: Min <= Median <= Max, Min <= Mean <= Max, StdDev >= 0.
	f := func(raw []float64) bool {
		sample := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				// Keep the magnitude bounded to avoid float overflow noise.
				sample = append(sample, math.Mod(x, 1e6))
			}
		}
		if len(sample) == 0 {
			return true
		}
		s := Summarize(sample)
		const eps = 1e-6
		return s.Min <= s.Median+eps && s.Median <= s.Max+eps &&
			s.Min <= s.Mean+eps && s.Mean <= s.Max+eps && s.StdDev >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMeanShiftProperty(t *testing.T) {
	// Property: adding a constant shifts the mean by that constant and
	// leaves the standard deviation unchanged.
	f := func(raw []float64, shiftRaw float64) bool {
		if len(raw) < 2 {
			return true
		}
		sample := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				sample = append(sample, math.Mod(x, 1e3))
			}
		}
		if len(sample) < 2 {
			return true
		}
		shift := math.Mod(shiftRaw, 1e3)
		if math.IsNaN(shift) || math.IsInf(shift, 0) {
			shift = 1
		}
		shifted := make([]float64, len(sample))
		for i, x := range sample {
			shifted[i] = x + shift
		}
		return math.Abs(Mean(shifted)-(Mean(sample)+shift)) < 1e-6 &&
			math.Abs(StdDev(shifted)-StdDev(sample)) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
