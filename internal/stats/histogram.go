package stats

import (
	"fmt"
	"math"
	"math/bits"
)

// The histogram uses log-linear bucketing with 3 significant bits (the
// HDR-histogram layout): values 0..7 get one bucket each, and every further
// power-of-two octave is split into 8 equal sub-buckets, so any recorded
// value is off from its bucket's upper bound by at most 12.5%. The bucket
// boundaries are fixed at compile time — two histograms always agree on
// them, which is what makes Merge exact (bucket counts simply add) and the
// aggregate independent of how a stream was sharded across workers.
const (
	histSubBits = 3 // sub-buckets per octave = 1<<histSubBits
	histSub     = 1 << histSubBits
	// histMaxOctave bounds the tracked value range: values of histMaxValue
	// and above land in one overflow bucket (whose reported bound is the
	// exact maximum, which the histogram tracks separately). 2^41 ticks is
	// ~37 minutes when a tick is a nanosecond — far beyond any latency the
	// planning service can produce without timing out first.
	histMaxOctave = 41
	histMaxValue  = int64(1) << histMaxOctave
	// histBuckets = 8 exact small-value buckets + 8 per octave for octaves
	// 3..40 + 1 overflow.
	histBuckets = histSub + histSub*(histMaxOctave-histSubBits) + 1
)

// Histogram is a fixed-bucket log-scale histogram of non-negative int64
// values (latency ticks: nanoseconds on the wall clock, work units on the
// load generator's virtual clock). The zero value is ready to use.
//
// All state is integral (bucket counts, count, sum, exact min/max), so
// Merge is exact: merging any sharding of a stream yields a histogram
// identical to ingesting the stream sequentially, regardless of shard count
// or order. Quantile is deterministic and monotone in q.
type Histogram struct {
	counts [histBuckets]int64
	count  int64
	sum    int64
	min    int64 // valid only when count > 0
	max    int64
}

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	if v < histSub {
		return int(v)
	}
	if v >= histMaxValue {
		return histBuckets - 1
	}
	k := bits.Len64(uint64(v)) - 1 // octave: v in [2^k, 2^(k+1)), k >= 3
	sub := int(v>>(uint(k-histSubBits))) - histSub
	return histSub*(k-histSubBits+1) + sub
}

// bucketUpper returns the largest value that maps to bucket i (the bound
// reported by Quantile). The overflow bucket has no finite bound of its own;
// callers clamp to the tracked maximum.
func bucketUpper(i int) int64 {
	if i < histSub {
		return int64(i)
	}
	if i >= histBuckets-1 {
		return math.MaxInt64
	}
	// Bucket i (i >= histSub) covers [ (histSub+sub) << (g-1), (histSub+sub+1) << (g-1) )
	// where g = i/histSub and sub = i%histSub: octave k = g + histSubBits - 1.
	g := i / histSub
	sub := i % histSub
	return (int64(histSub+sub+1) << uint(g-1)) - 1
}

// Record adds one value to the histogram. Negative values are clamped to
// zero (latencies cannot be negative; clamping keeps Record total).
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)]++
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.sum += v
}

// Merge adds every recorded value of o into h. Merging is exact: the result
// is identical to having recorded both streams into one histogram, in any
// order and any sharding.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.count == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.count == 0 || o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Count returns the number of recorded values.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the exact sum of the recorded values.
func (h *Histogram) Sum() int64 { return h.sum }

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() int64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value (0 when empty).
func (h *Histogram) Max() int64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Mean returns the exact arithmetic mean of the recorded values (0 when
// empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Quantile returns an upper bound of the q-th quantile (q in [0, 1], values
// outside are clamped): the upper bound of the bucket holding the value of
// rank ceil(q*count), clamped into [Min, Max]. The bound is within 12.5% of
// the true quantile, deterministic, and monotone non-decreasing in q.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if math.IsNaN(q) || q <= 0 {
		return h.min
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			v := bucketUpper(i)
			if v > h.max {
				v = h.max
			}
			if v < h.min {
				v = h.min
			}
			return v
		}
	}
	return h.max // unreachable: cum reaches count == rank bound
}

// HistogramSummary is the compact serialized view of a histogram used by
// JSON reports: exact count/min/max/mean plus the standard latency
// quantiles. All fields derive deterministically from the histogram state.
type HistogramSummary struct {
	Count int64   `json:"count"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P90   int64   `json:"p90"`
	P99   int64   `json:"p99"`
}

// Summary returns the report view of the histogram.
func (h *Histogram) Summary() HistogramSummary {
	return HistogramSummary{
		Count: h.Count(),
		Min:   h.Min(),
		Max:   h.Max(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}

// String returns a compact human-readable summary.
func (h *Histogram) String() string {
	s := h.Summary()
	return fmt.Sprintf("count=%d min=%d p50=%d p90=%d p99=%d max=%d mean=%.1f",
		s.Count, s.Min, s.P50, s.P90, s.P99, s.Max, s.Mean)
}
