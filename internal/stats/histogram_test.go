package stats

import (
	"math"
	"math/rand"
	"testing"
)

// randomSample draws a heavy-tailed sample shaped like request latencies:
// mostly small values with occasional huge outliers, plus edge values.
func randomSample(r *rand.Rand, n int) []int64 {
	s := make([]int64, n)
	for i := range s {
		switch r.Intn(10) {
		case 0:
			s[i] = r.Int63n(8) // exact small-value buckets
		case 1:
			s[i] = int64(1) << uint(r.Intn(62)) // power-of-two boundaries
		case 2:
			s[i] = histMaxValue + r.Int63n(1<<20) // overflow bucket
		default:
			s[i] = int64(math.Exp(r.Float64() * 20)) // log-uniform bulk
		}
	}
	return s
}

// TestHistogramBucketsCoverInt64 checks the bucket mapping invariants for
// every boundary-adjacent value: indexes are in range and monotone, and each
// value is <= the upper bound of its own bucket.
func TestHistogramBucketsCoverInt64(t *testing.T) {
	prev := -1
	probe := []int64{0, 1, 2, 7, 8, 9}
	for k := uint(4); k < 63; k++ {
		v := int64(1) << k
		probe = append(probe, v-1, v, v+1)
	}
	for _, v := range probe {
		i := bucketIndex(v)
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0, %d)", v, i, histBuckets)
		}
		if i < prev {
			t.Fatalf("bucketIndex not monotone at %d: %d < %d", v, i, prev)
		}
		prev = i
		if up := bucketUpper(i); v > up {
			t.Fatalf("value %d above its bucket %d upper bound %d", v, i, up)
		}
	}
	// Every non-overflow bucket's upper bound must map back to that bucket.
	for i := 0; i < histBuckets-1; i++ {
		if got := bucketIndex(bucketUpper(i)); got != i {
			t.Fatalf("bucketIndex(bucketUpper(%d)) = %d", i, got)
		}
	}
}

// TestHistogramQuantilesMonotone is the property test for the quantile
// bound: for any sample, Quantile must be monotone non-decreasing in q,
// bracketed by min and max, and within the bucket's relative error of the
// true (sorted-sample) quantile.
func TestHistogramQuantilesMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		var h Histogram
		sample := randomSample(r, 1+r.Intn(500))
		for _, v := range sample {
			h.Record(v)
		}
		prev := int64(-1)
		for q := 0.0; q <= 1.0; q += 0.01 {
			v := h.Quantile(q)
			if v < prev {
				t.Fatalf("trial %d: Quantile(%.2f) = %d < previous %d", trial, q, v, prev)
			}
			if v < h.Min() || v > h.Max() {
				t.Fatalf("trial %d: Quantile(%.2f) = %d outside [%d, %d]", trial, q, v, h.Min(), h.Max())
			}
			prev = v
		}
		if h.Quantile(0) != h.Min() {
			t.Fatalf("trial %d: Quantile(0) = %d, want min %d", trial, h.Quantile(0), h.Min())
		}
		if h.Quantile(1) != h.Max() {
			t.Fatalf("trial %d: Quantile(1) = %d, want max %d", trial, h.Quantile(1), h.Max())
		}
	}
}

// TestHistogramQuantileAccuracy checks the advertised error bound: the
// reported quantile is an upper bound of the true rank value and within
// 12.5% of it (exact below 8).
func TestHistogramQuantileAccuracy(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		var h Histogram
		n := 1 + r.Intn(300)
		sample := make([]int64, n)
		for i := range sample {
			sample[i] = int64(math.Exp(r.Float64() * 18))
			h.Record(sample[i])
		}
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
			got := h.Quantile(q)
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			// true rank-th smallest
			sorted := append([]int64(nil), sample...)
			for i := 1; i < len(sorted); i++ {
				for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
					sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
				}
			}
			want := sorted[rank-1]
			if got < want {
				t.Fatalf("trial %d q=%.2f: bound %d below true quantile %d", trial, q, got, want)
			}
			if want >= 8 && float64(got) > float64(want)*1.125 {
				t.Fatalf("trial %d q=%.2f: bound %d exceeds true quantile %d by more than 12.5%%", trial, q, got, want)
			}
			if want < 8 && got != want && got > h.Max() {
				t.Fatalf("trial %d q=%.2f: small values must be exact: got %d want %d", trial, q, got, want)
			}
		}
	}
}

// TestHistogramMergeEqualsSingleStream is the exact-merge property: splitting
// a stream into arbitrary chunks, ingesting each into its own histogram and
// merging must produce a histogram identical (full state, not just summary)
// to single-stream ingestion.
func TestHistogramMergeEqualsSingleStream(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		sample := randomSample(r, 1+r.Intn(400))
		var whole Histogram
		for _, v := range sample {
			whole.Record(v)
		}
		var merged Histogram
		for lo := 0; lo < len(sample); {
			hi := lo + 1 + r.Intn(len(sample)-lo)
			var part Histogram
			for _, v := range sample[lo:hi] {
				part.Record(v)
			}
			merged.Merge(&part)
			lo = hi
		}
		if merged != whole {
			t.Fatalf("trial %d: merged state differs from single-stream state:\nmerged %v\nwhole  %v", trial, merged.Summary(), whole.Summary())
		}
	}
}

// TestHistogramWorkerCountDeterministic is the sharding property behind the
// deterministic load reports: distributing a stream round-robin across any
// number of workers and merging the per-worker histograms (in any merge
// order) yields byte-identical state.
func TestHistogramWorkerCountDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	sample := randomSample(r, 1000)
	var ref Histogram
	for _, v := range sample {
		ref.Record(v)
	}
	for _, workers := range []int{1, 2, 3, 7, 16, 64} {
		shards := make([]Histogram, workers)
		for i, v := range sample {
			shards[i%workers].Record(v)
		}
		// Merge in reverse order to show merge-order independence too.
		var merged Histogram
		for i := workers - 1; i >= 0; i-- {
			merged.Merge(&shards[i])
		}
		if merged != ref {
			t.Fatalf("workers=%d: merged histogram differs from sequential reference", workers)
		}
	}
}

// TestHistogramEdgeCases pins the behavior of the empty histogram, negative
// clamping, nil merge, and the summary of a single value.
func TestHistogramEdgeCases(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Min() != 0 || h.Max() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram must report zeros")
	}
	h.Merge(nil)
	h.Merge(&Histogram{})
	if h.Count() != 0 {
		t.Fatal("merging empty histograms must not change state")
	}
	h.Record(-5)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative values must clamp to 0: %+v", h.Summary())
	}
	var one Histogram
	one.Record(42)
	s := one.Summary()
	if s.Count != 1 || s.Min != 42 || s.Max != 42 || s.Mean != 42 || s.P50 != 42 || s.P99 != 42 {
		t.Fatalf("single-value summary wrong: %+v", s)
	}
	if one.String() == "" {
		t.Fatal("String must not be empty")
	}
}
