package stats

import (
	"math"
	"sort"
)

// Summary holds descriptive statistics of a sample.
type Summary struct {
	Count  int
	Mean   float64
	StdDev float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes descriptive statistics for the sample. NaN values are
// ignored; an empty (or all-NaN) sample yields a zero Summary.
func Summarize(sample []float64) Summary {
	clean := make([]float64, 0, len(sample))
	for _, x := range sample {
		if !math.IsNaN(x) {
			clean = append(clean, x)
		}
	}
	if len(clean) == 0 {
		return Summary{}
	}
	s := Summary{
		Count: len(clean),
		Min:   clean[0],
		Max:   clean[0],
	}
	var sum float64
	for _, x := range clean {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(clean))
	if len(clean) > 1 {
		var ss float64
		for _, x := range clean {
			d := x - s.Mean
			ss += d * d
		}
		s.StdDev = math.Sqrt(ss / float64(len(clean)-1))
	}
	s.Median = Median(clean)
	return s
}

// Mean returns the arithmetic mean of the sample, or NaN for an empty
// sample.
func Mean(sample []float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range sample {
		sum += x
	}
	return sum / float64(len(sample))
}

// StdDev returns the sample standard deviation (n-1 denominator), or 0 for
// samples with fewer than two values.
func StdDev(sample []float64) float64 {
	if len(sample) < 2 {
		return 0
	}
	m := Mean(sample)
	var ss float64
	for _, x := range sample {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(sample)-1))
}

// Median returns the median of the sample (average of the two middle values
// for even-sized samples), or NaN for an empty sample. The input slice is
// not modified.
func Median(sample []float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), sample...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		return sorted[mid]
	}
	return (sorted[mid-1] + sorted[mid]) / 2
}

// Min returns the smallest value of the sample, or NaN for an empty sample.
func Min(sample []float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	m := sample[0]
	for _, x := range sample[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest value of the sample, or NaN for an empty sample.
func Max(sample []float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	m := sample[0]
	for _, x := range sample[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// ConfidenceInterval95 returns the half-width of an approximate 95%
// confidence interval on the mean (1.96 standard errors). It returns 0 for
// samples with fewer than two values.
func ConfidenceInterval95(sample []float64) float64 {
	if len(sample) < 2 {
		return 0
	}
	return 1.96 * StdDev(sample) / math.Sqrt(float64(len(sample)))
}

// GeometricMean returns the geometric mean of a sample of positive values,
// or NaN if the sample is empty or contains a non-positive value.
func GeometricMean(sample []float64) float64 {
	if len(sample) == 0 {
		return math.NaN()
	}
	var logSum float64
	for _, x := range sample {
		if x <= 0 {
			return math.NaN()
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(sample)))
}
