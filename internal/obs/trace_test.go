package obs

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func ident(s string) [32]byte { return sha256.Sum256([]byte(s)) }

func TestNilTracerAndTraceAreNoOps(t *testing.T) {
	var tr *Tracer
	tc := tr.Begin("req")
	if tc != nil {
		t.Fatalf("nil tracer Begin = %v, want nil", tc)
	}
	tc.Add(Event{Kind: SpanLookup})
	tc.SetIdentity(ident("a"))
	if tc.Wall() || tc.TraceID() != "" {
		t.Fatalf("nil trace leaked state")
	}
	tr.Finish(tc, OutcomeHit)
	if got := tr.Snapshot("", 0); got != nil {
		t.Fatalf("nil tracer Snapshot = %v, want nil", got)
	}
	if tr.Len() != 0 || tr.WallClock() {
		t.Fatalf("nil tracer Len/WallClock leaked state")
	}
}

func TestDeterministicIDsAndOrdering(t *testing.T) {
	run := func() string {
		tr := NewTracer(Options{Capacity: 64})
		for i := 0; i < 3; i++ {
			tc := tr.Begin("")
			tc.SetIdentity(ident("same"))
			tc.Add(Event{Kind: SpanLookup, Miss: i == 0})
			tr.Finish(tc, OutcomeHit)
		}
		tc := tr.Begin("ignored-req-id")
		tc.SetIdentity(ident("other"))
		tc.Add(Event{Kind: SpanLookup, Miss: true})
		tc.Add(Event{Kind: SpanSolve, Pivots: 12})
		tr.Finish(tc, OutcomeMiss)
		b, err := json.Marshal(tr.Snapshot("", 0))
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return string(b)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("deterministic tracer produced differing dumps:\n%s\n%s", a, b)
	}
	tr := NewTracer(Options{Capacity: 64})
	tc := tr.Begin("req-id-should-be-ignored")
	tc.SetIdentity(ident("x"))
	tr.Finish(tc, OutcomeHit)
	if tc.ID == "req-id-should-be-ignored" {
		t.Fatalf("deterministic tracer adopted the request ID")
	}
	if tc.StartNs != 0 || tc.DurNs != 0 {
		t.Fatalf("deterministic trace carries wall-clock fields: %+v", tc)
	}
	if len(tc.Events) != 0 {
		t.Fatalf("unexpected events")
	}
}

func TestDeterministicDuplicateClassesGetDistinctIDs(t *testing.T) {
	tr := NewTracer(Options{Capacity: 64})
	ids := make(map[string]bool)
	for i := 0; i < 4; i++ {
		tc := tr.Begin("")
		tc.SetIdentity(ident("dup"))
		tr.Finish(tc, OutcomeHit)
		if ids[tc.ID] {
			t.Fatalf("duplicate trace ID %q for occurrence %d", tc.ID, i)
		}
		ids[tc.ID] = true
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4", tr.Len())
	}
}

func TestWallClockTracer(t *testing.T) {
	tr := NewTracer(Options{Capacity: 8, WallClock: true})
	if !tr.WallClock() {
		t.Fatalf("WallClock() = false")
	}
	tc := tr.Begin("abcd1234")
	if !tc.Wall() {
		t.Fatalf("trace not in wall mode")
	}
	if tc.TraceID() != "abcd1234" {
		t.Fatalf("wall tracer ignored request ID: %q", tc.TraceID())
	}
	tc.SetIdentity(ident("w"))
	tc.Add(Event{Kind: SpanLookup})
	tr.Finish(tc, OutcomeHit)
	if tc.StartNs == 0 {
		t.Fatalf("wall trace missing StartNs")
	}
	anon := tr.Begin("")
	if anon.TraceID() == "" {
		t.Fatalf("wall tracer Begin(\"\") assigned no ID")
	}
	tr.Finish(anon, OutcomeMiss)
	snap := tr.Snapshot("", 0)
	if len(snap) != 2 {
		t.Fatalf("Snapshot len = %d, want 2", len(snap))
	}
	if snap[0].StartNs < snap[1].StartNs {
		t.Fatalf("wall snapshot not most-recent-first")
	}
}

func TestSnapshotFilterAndLimit(t *testing.T) {
	tr := NewTracer(Options{Capacity: 64})
	for i := 0; i < 5; i++ {
		tc := tr.Begin("")
		tc.SetIdentity(ident(fmt.Sprintf("h%d", i)))
		tr.Finish(tc, OutcomeHit)
	}
	for i := 0; i < 2; i++ {
		tc := tr.Begin("")
		tc.SetIdentity(ident(fmt.Sprintf("m%d", i)))
		tr.Finish(tc, OutcomeMiss)
	}
	if got := len(tr.Snapshot(OutcomeHit, 0)); got != 5 {
		t.Fatalf("hit filter = %d, want 5", got)
	}
	if got := len(tr.Snapshot(OutcomeMiss, 0)); got != 2 {
		t.Fatalf("miss filter = %d, want 2", got)
	}
	if got := len(tr.Snapshot("", 3)); got != 3 {
		t.Fatalf("limit = %d, want 3", got)
	}
	if got := len(tr.Snapshot(OutcomeShed, 0)); got != 0 {
		t.Fatalf("shed filter = %d, want 0", got)
	}
}

func TestRingBufferBounds(t *testing.T) {
	tr := NewTracer(Options{Capacity: 16})
	for i := 0; i < 400; i++ {
		tc := tr.Begin("")
		tc.SetIdentity(ident(fmt.Sprintf("k%d", i)))
		tr.Finish(tc, OutcomeHit)
	}
	if n := tr.Len(); n > 16 {
		t.Fatalf("ring retained %d traces, capacity 16", n)
	}
}

func TestConcurrentFinishIsSafe(t *testing.T) {
	tr := NewTracer(Options{Capacity: 4096})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tc := tr.Begin("")
				tc.SetIdentity(ident(fmt.Sprintf("c%d", i%32)))
				tc.Add(Event{Kind: SpanLookup})
				tr.Finish(tc, OutcomeHit)
			}
		}(w)
	}
	wg.Wait()
	if n := tr.Len(); n != 1600 {
		t.Fatalf("Len = %d, want 1600", n)
	}
	snap := tr.Snapshot("", 0)
	seen := make(map[string]bool, len(snap))
	for _, tc := range snap {
		if seen[tc.ID] {
			t.Fatalf("duplicate trace ID %q under concurrency", tc.ID)
		}
		seen[tc.ID] = true
	}
}

func TestRequestIDContext(t *testing.T) {
	if RequestID(context.Background()) != "" {
		t.Fatalf("empty context yielded a request ID")
	}
	ctx := WithRequestID(context.Background(), "deadbeef")
	if got := RequestID(ctx); got != "deadbeef" {
		t.Fatalf("RequestID = %q", got)
	}
	var nilCtx context.Context
	if RequestID(nilCtx) != "" {
		t.Fatalf("nil context yielded a request ID")
	}
	a, b := NewRequestID(), NewRequestID()
	if a == b || len(a) != 16 || len(b) != 16 {
		t.Fatalf("NewRequestID not unique 16-hex: %q %q", a, b)
	}
}
