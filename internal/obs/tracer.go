package obs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// wallNow is the package's only wall-clock read, used exclusively for the
// opt-in WallClock fields (trace/event timestamps, Begin-time IDs); the
// canonical deterministic mode never calls it.
func wallNow() int64 {
	//lint:ignore detrand opt-in wall-clock trace timestamps; deterministic tracers never reach this
	return time.Now().UnixNano()
}

// Options tune a Tracer.
type Options struct {
	// Capacity bounds the number of completed traces retained across the
	// ring shards (default 512). A deterministic replay that wants a
	// complete dump must size it to the replay's request count.
	Capacity int
	// WallClock opts into wall-clock fields (StartNs/DurNs/TNs, queue-wait
	// spans) and per-process trace IDs assigned at Begin. It makes trace
	// dumps non-deterministic, exactly like the load report's timings
	// section; the deterministic default follows the detrand contract.
	WallClock bool
}

const traceShards = 16

// traceShard is one lock-sharded ring of completed traces.
type traceShard struct {
	mu   sync.Mutex
	ring []*Trace // capacity-bounded; next points at the oldest slot
	next int
	cap  int
	// classes counts finished traces per (identity, outcome) class; it
	// drives the deterministic content-derived IDs. Unused under WallClock.
	classes map[string]uint64
}

// Tracer records request traces into a bounded, lock-sharded ring buffer.
// It is safe for concurrent use; a nil *Tracer is a valid no-op tracer
// (Begin returns nil, and nil traces swallow events).
type Tracer struct {
	opts Options
	seq  atomic.Uint64 // WallClock-mode ID source
	rr   atomic.Uint64 // round-robin ring placement
	sh   [traceShards]traceShard
}

// NewTracer returns a tracer with the given options.
func NewTracer(opts Options) *Tracer {
	if opts.Capacity <= 0 {
		opts.Capacity = 512
	}
	t := &Tracer{opts: opts}
	per := (opts.Capacity + traceShards - 1) / traceShards
	if per < 1 {
		per = 1
	}
	for i := range t.sh {
		t.sh[i].cap = per
		t.sh[i].classes = make(map[string]uint64)
	}
	return t
}

// WallClock reports whether the tracer records wall-clock fields.
func (tr *Tracer) WallClock() bool { return tr != nil && tr.opts.WallClock }

// Begin starts a trace. reqID, when non-empty and the tracer is in
// WallClock mode, becomes the trace ID (the HTTP layer passes its
// request-scoped ID so header and trace agree); a deterministic tracer
// ignores it and derives the ID at Finish. A nil tracer returns nil.
func (tr *Tracer) Begin(reqID string) *Trace {
	if tr == nil {
		return nil
	}
	t := &Trace{wall: tr.opts.WallClock}
	if tr.opts.WallClock {
		t.startNs = wallNow()
		t.StartNs = t.startNs
		if reqID != "" {
			t.ID = reqID
		} else {
			var b [16]byte
			binary.BigEndian.PutUint64(b[:8], tr.seq.Add(1))
			binary.BigEndian.PutUint64(b[8:], uint64(t.startNs))
			sum := sha256.Sum256(b[:])
			t.ID = hex.EncodeToString(sum[:8])
		}
		t.hasID = true
	}
	return t
}

// Finish seals the trace with its outcome, assigns the deterministic ID
// when none exists yet, and records it into the ring. Safe with a nil
// tracer or trace.
func (tr *Tracer) Finish(t *Trace, outcome string) {
	if tr == nil || t == nil {
		return
	}
	t.Outcome = outcome
	t.Key = hex.EncodeToString(t.identity[:8])
	if t.wall {
		t.DurNs = wallNow() - t.startNs
	}
	if !t.hasID {
		// Content-derived deterministic ID: hash(identity, outcome, k) with
		// k the per-(identity, outcome) occurrence counter. Which concurrent
		// duplicate gets which k is scheduling-dependent, but duplicates of
		// one class carry byte-identical event sequences, so the *set* of
		// traces — and therefore the ID-sorted dump — is deterministic. The
		// counter lives in the shard the identity hashes to, so every
		// duplicate of a class contends on the same map entry.
		cs := &tr.sh[int(t.identity[0])%traceShards]
		key := string(t.identity[:]) + "|" + outcome
		cs.mu.Lock()
		k := cs.classes[key]
		cs.classes[key] = k + 1
		cs.mu.Unlock()
		h := sha256.New()
		h.Write(t.identity[:])
		h.Write([]byte(outcome))
		var kb [8]byte
		binary.BigEndian.PutUint64(kb[:], k)
		h.Write(kb[:])
		sum := h.Sum(nil)
		t.ID = hex.EncodeToString(sum[:8])
		t.hasID = true
	}
	// Ring placement is round-robin (not identity-keyed) so the shards fill
	// evenly and the retained count tracks Capacity, not the identity
	// distribution.
	s := &tr.sh[tr.rr.Add(1)%traceShards]
	s.mu.Lock()
	if len(s.ring) < s.cap {
		s.ring = append(s.ring, t)
	} else {
		s.ring[s.next] = t
		s.next = (s.next + 1) % s.cap
	}
	s.mu.Unlock()
}

// Snapshot returns retained traces, optionally filtered by outcome
// (hit/collapsed/miss/shed/canceled/degraded/refine/error; "" keeps all)
// and truncated to limit (<= 0 keeps all). Order is the canonical one:
// ascending by trace ID for a deterministic tracer — which makes the dump
// byte-stable for byte-stable workloads — and most-recent-first (descending
// StartNs, ID as tie-break) for a WallClock tracer. Traces are shared and
// must be treated as read-only.
func (tr *Tracer) Snapshot(outcome string, limit int) []*Trace {
	if tr == nil {
		return nil
	}
	var out []*Trace
	for i := range tr.sh {
		s := &tr.sh[i]
		s.mu.Lock()
		for _, t := range s.ring {
			if t != nil && (outcome == "" || t.Outcome == outcome) {
				out = append(out, t)
			}
		}
		s.mu.Unlock()
	}
	if tr.opts.WallClock {
		sort.Slice(out, func(i, j int) bool {
			if out[i].StartNs != out[j].StartNs {
				return out[i].StartNs > out[j].StartNs
			}
			return out[i].ID < out[j].ID
		})
	} else {
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	}
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// Len returns the number of retained traces.
func (tr *Tracer) Len() int {
	if tr == nil {
		return 0
	}
	n := 0
	for i := range tr.sh {
		s := &tr.sh[i]
		s.mu.Lock()
		n += len(s.ring)
		s.mu.Unlock()
	}
	return n
}

// NewRequestID returns a fresh request-scoped trace ID for the HTTP layer:
// 16 hex characters, unique per process. It is wall-clock-seeded and must
// not be used on deterministic paths.
func NewRequestID() string {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], reqSeq.Add(1))
	binary.BigEndian.PutUint64(b[8:], uint64(wallNow()))
	sum := sha256.Sum256(b[:])
	return hex.EncodeToString(sum[:8])
}

var reqSeq atomic.Uint64
