package obs

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stats"
)

// familyType is a Prometheus metric family type.
type familyType string

const (
	typeCounter familyType = "counter"
	typeGauge   familyType = "gauge"
	typeSummary familyType = "summary"
)

// sample is one exposition line: name{labels} value.
type sample struct {
	suffix string // appended to the family name ("", "_sum", "_count")
	labels string // rendered label block including braces, or ""
	value  string
}

// family is one metric family: HELP/TYPE plus its samples.
type family struct {
	name    string
	help    string
	typ     familyType
	samples []sample
}

// Registry collects metric families and renders the Prometheus text
// exposition format (version 0.0.4). It is a per-scrape builder, not a
// long-lived store: the /metrics handler constructs one from engine
// snapshots on every request, so there is no double bookkeeping between
// the JSON metrics and the Prometheus ones.
type Registry struct {
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

func (r *Registry) fam(name, help string, typ familyType) *family {
	f, ok := r.fams[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ}
		r.fams[name] = f
	}
	return f
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelString renders a label block from alternating key, value pairs.
func labelString(kv ...string) string {
	if len(kv) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(kv[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(kv[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// Counter adds a counter sample; kv are alternating label key/value pairs.
func (r *Registry) Counter(name, help string, value float64, kv ...string) {
	f := r.fam(name, help, typeCounter)
	f.samples = append(f.samples, sample{labels: labelString(kv...), value: formatFloat(value)})
}

// Gauge adds a gauge sample.
func (r *Registry) Gauge(name, help string, value float64, kv ...string) {
	f := r.fam(name, help, typeGauge)
	f.samples = append(f.samples, sample{labels: labelString(kv...), value: formatFloat(value)})
}

// Summary renders a stats.HistogramSummary as a Prometheus summary family:
// quantile samples (0.5/0.9/0.99) plus _sum and _count. scale multiplies the
// recorded integer values into the exported unit (e.g. 1e-9 for ns→seconds).
// The HDR histogram does not retain an exact sum, so _sum is mean*count —
// exact for the deterministic replays, close enough for dashboards. kv are
// extra labels applied to every sample of the family.
func (r *Registry) Summary(name, help string, s stats.HistogramSummary, scale float64, kv ...string) {
	f := r.fam(name, help, typeSummary)
	q := func(qv string, v float64) {
		lab := append(append([]string{}, kv...), "quantile", qv)
		f.samples = append(f.samples, sample{labels: labelString(lab...), value: formatFloat(v * scale)})
	}
	q("0.5", float64(s.P50))
	q("0.9", float64(s.P90))
	q("0.99", float64(s.P99))
	base := labelString(kv...)
	f.samples = append(f.samples, sample{suffix: "_sum", labels: base, value: formatFloat(s.Mean * float64(s.Count) * scale)})
	f.samples = append(f.samples, sample{suffix: "_count", labels: base, value: formatFloat(float64(s.Count))})
}

// Render writes the exposition: families sorted by name, HELP and TYPE once
// per family, then its samples in insertion order.
func (r *Registry) Render() string {
	names := make([]string, 0, len(r.fams))
	for n := range r.fams {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		f := r.fams[n]
		fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.samples {
			fmt.Fprintf(&b, "%s%s%s %s\n", f.name, s.suffix, s.labels, s.value)
		}
	}
	return b.String()
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRe     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)(\s+-?\d+)?$`)
)

// ValidateExposition checks a Prometheus text exposition (0.0.4) for the
// failure modes a hand-rolled renderer can produce: malformed metric names,
// duplicate or interleaved families, samples without a family, duplicate
// (name, labels) samples, and unparsable values. The CI smoke job runs it
// against a live /metrics scrape via cmd/bcast-promcheck. It returns the
// number of samples seen.
func ValidateExposition(body string) (int, error) {
	if body == "" {
		return 0, fmt.Errorf("promcheck: empty exposition")
	}
	if !strings.HasSuffix(body, "\n") {
		return 0, fmt.Errorf("promcheck: exposition must end with a newline")
	}
	seenFam := make(map[string]bool)   // family -> HELP/TYPE seen
	closedFam := make(map[string]bool) // family -> a later family started
	typeOf := make(map[string]familyType)
	seenSample := make(map[string]bool)
	current := ""
	samples := 0
	for ln, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		lineNo := ln + 1
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 4 {
				return samples, fmt.Errorf("promcheck: line %d: malformed %s line", lineNo, parts[1])
			}
			name := parts[2]
			if !metricNameRe.MatchString(name) {
				return samples, fmt.Errorf("promcheck: line %d: malformed metric name %q", lineNo, name)
			}
			if parts[1] == "TYPE" {
				switch familyType(parts[3]) {
				case typeCounter, typeGauge, typeSummary, "histogram", "untyped":
				default:
					return samples, fmt.Errorf("promcheck: line %d: unknown type %q for %s", lineNo, parts[3], name)
				}
				if _, dup := typeOf[name]; dup {
					return samples, fmt.Errorf("promcheck: line %d: duplicate TYPE for family %s", lineNo, name)
				}
				typeOf[name] = familyType(parts[3])
			}
			if name != current {
				if closedFam[name] {
					return samples, fmt.Errorf("promcheck: line %d: family %s interleaved (reopened)", lineNo, name)
				}
				if current != "" {
					closedFam[current] = true
				}
				current = name
			}
			seenFam[name] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		m := sampleRe.FindStringSubmatch(line)
		if m == nil {
			return samples, fmt.Errorf("promcheck: line %d: malformed sample line %q", lineNo, line)
		}
		name, labels, value := m[1], m[2], m[3]
		base := name
		for _, suf := range []string{"_sum", "_count", "_bucket"} {
			trimmed := strings.TrimSuffix(name, suf)
			if trimmed != name && seenFam[trimmed] {
				base = trimmed
				break
			}
		}
		if !seenFam[base] {
			return samples, fmt.Errorf("promcheck: line %d: sample %s outside any declared family", lineNo, name)
		}
		if base != current {
			return samples, fmt.Errorf("promcheck: line %d: sample %s interleaved into family %s", lineNo, name, current)
		}
		key := name + labels
		if seenSample[key] {
			return samples, fmt.Errorf("promcheck: line %d: duplicate sample %s", lineNo, key)
		}
		seenSample[key] = true
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			switch value {
			case "+Inf", "-Inf", "NaN":
			default:
				return samples, fmt.Errorf("promcheck: line %d: unparsable value %q", lineNo, value)
			}
		}
		samples++
	}
	if samples == 0 {
		return 0, fmt.Errorf("promcheck: exposition contains no samples")
	}
	return samples, nil
}
