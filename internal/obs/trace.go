package obs

import "context"

// SpanKind names one typed span event of a request trace. The taxonomy
// covers the whole request path: routing (lookup), admission control
// (admit, queue-wait), the solver (solve, refine), degraded mode
// (degraded), cancellation (cancel), the delta path (base) and the HTTP
// response write (response).
type SpanKind string

const (
	// SpanLookup is the cache routing decision: hit, miss (with the twin
	// flag), or a hit that collapsed onto an in-flight identical solve.
	SpanLookup SpanKind = "lookup"
	// SpanBase is the delta path's base resolution: the cached base entry
	// was found and its warm session taken (Warm) or re-derived.
	SpanBase SpanKind = "base"
	// SpanAdmit is the admission decision of a cold-miss solve: admitted
	// (a lane now or after a queue wait — the split is scheduling-dependent
	// and deliberately not recorded) or shed under overload.
	SpanAdmit SpanKind = "admit"
	// SpanQueueWait reports time spent waiting for a solve lane. It is
	// wall-clock data, so it is emitted only by a WallClock tracer.
	SpanQueueWait SpanKind = "queue-wait"
	// SpanSolve is one steady-state solve: cutting-plane rounds, cuts, and
	// the simplex pivot counts (warm/cold split) of this resolve, sourced
	// from the incremental LP statistics.
	SpanSolve SpanKind = "solve"
	// SpanDegraded is the immediate heuristic answer of degraded mode.
	SpanDegraded SpanKind = "degraded"
	// SpanRefine is the background LP refinement of a degraded entry; it
	// appears in its own trace (outcome "refine") sharing the request's
	// identity, since the client's trace finished with the degraded answer.
	SpanRefine SpanKind = "refine"
	// SpanCancel marks the point where a request was abandoned by its
	// context (At: queue, collapsed-wait, refined-wait, base-wait, solve).
	SpanCancel SpanKind = "cancel"
	// SpanResponse is the HTTP response write (status code); in-process
	// replays never emit it.
	SpanResponse SpanKind = "response"
)

// Trace outcomes. A trace has exactly one, assigned when it finishes.
const (
	// OutcomeHit: served from the cache (solve long finished).
	OutcomeHit = "hit"
	// OutcomeCollapsed: hit on an in-flight solve; the request waited on it
	// (singleflight) instead of duplicating the work.
	OutcomeCollapsed = "collapsed"
	// OutcomeMiss: the request claimed a new cache entry and solved.
	OutcomeMiss = "miss"
	// OutcomeShed: rejected under the overload contract (429).
	OutcomeShed = "shed"
	// OutcomeCanceled: abandoned by deadline/cancellation anywhere in the
	// path.
	OutcomeCanceled = "canceled"
	// OutcomeDegraded: answered immediately with the degraded heuristic
	// plan while the LP refinement runs in the background.
	OutcomeDegraded = "degraded"
	// OutcomeRefine: a background refinement solve (no client attached).
	OutcomeRefine = "refine"
	// OutcomeError: the request failed (solver trouble, bad deltas, ...).
	OutcomeError = "error"
)

// Event is one typed span event. Kind selects the span type; every other
// field is meaningful only for the kinds documented on it and is omitted
// from JSON at its zero value, so canonical event sequences stay compact
// and deterministic. TNs (nanoseconds since the trace started) is stamped
// only by a WallClock tracer.
type Event struct {
	Kind SpanKind `json:"kind"`
	// Lookup fields.
	Miss      bool `json:"miss,omitempty"`
	Twin      bool `json:"twin,omitempty"`
	Collapsed bool `json:"collapsed,omitempty"`
	// Base / solve: the warm-session flag.
	Warm bool `json:"warm,omitempty"`
	// Admit: "admitted" or "shed".
	Admitted string `json:"admitted,omitempty"`
	// Solve / refine statistics (per this resolve).
	Rounds     int `json:"rounds,omitempty"`
	Cuts       int `json:"cuts,omitempty"`
	Pivots     int `json:"pivots,omitempty"`
	WarmPivots int `json:"warmPivots,omitempty"`
	ColdPivots int `json:"coldPivots,omitempty"`
	// Degraded: the heuristic that produced the immediate answer.
	Heuristic string `json:"heuristic,omitempty"`
	// Cancel: where the request was abandoned.
	At string `json:"at,omitempty"`
	// DurNs is the span's own wall-clock duration (queue-wait, solve,
	// refine); producers set it only on WallClock traces.
	DurNs int64 `json:"durNs,omitempty"`
	// Response: the HTTP status code.
	Status int `json:"status,omitempty"`
	// Err carries the error string of a failed solve/refine (diagnostic; a
	// canonical replay never produces one).
	Err string `json:"err,omitempty"`
	// TNs is the wall-clock offset from the trace start (opt-in).
	TNs int64 `json:"tNs,omitempty"`
}

// Trace is the record of one request: its ID, outcome, and ordered span
// events. A Trace is written by the single goroutine serving the request
// and is immutable once finished; nil *Trace receivers are no-ops, so
// untraced engines pay only a nil check per event.
type Trace struct {
	// ID identifies the trace: content-derived and deterministic for a
	// deterministic tracer, unique-per-process for a WallClock tracer (the
	// HTTP layer's request-scoped ID, returned in X-Bcast-Trace).
	ID string `json:"id"`
	// Key is the hex prefix of the request's cache-key identity (the same
	// identity renumbered duplicates share), linking traces to plans.
	Key string `json:"key,omitempty"`
	// Outcome classifies the request: hit, collapsed, miss, shed, canceled,
	// degraded, refine, error.
	Outcome string `json:"outcome"`
	// StartNs/DurNs are wall-clock fields, present only under WallClock.
	StartNs int64 `json:"startNs,omitempty"`
	DurNs   int64 `json:"durNs,omitempty"`
	// Events is the ordered span sequence.
	Events []Event `json:"events"`

	identity [32]byte
	hasID    bool // ID was assigned at Begin (WallClock mode)
	wall     bool
	startNs  int64 // monotonic-ish wall ns at Begin (WallClock only)
}

// Add appends one span event. On a WallClock trace the event is stamped
// with its offset from the trace start. Safe on a nil trace.
func (t *Trace) Add(ev Event) {
	if t == nil {
		return
	}
	if t.wall {
		ev.TNs = wallNow() - t.startNs
	}
	t.Events = append(t.Events, ev)
}

// SetIdentity records the request's cache-key identity (any 32-byte content
// hash; the engine uses a hash of its cache key). It drives the
// deterministic trace ID and the ring-buffer shard. Safe on a nil trace.
func (t *Trace) SetIdentity(id [32]byte) {
	if t == nil {
		return
	}
	t.identity = id
}

// Wall reports whether the trace records wall-clock fields; the engine uses
// it to gate the emission of wall-only spans (queue-wait). Safe on a nil
// trace (false).
func (t *Trace) Wall() bool { return t != nil && t.wall }

// TraceID returns the trace's ID ("" for a nil trace). In WallClock mode the
// ID exists from Begin; in deterministic mode only after Finish.
func (t *Trace) TraceID() string {
	if t == nil {
		return ""
	}
	return t.ID
}

// requestIDKey carries the HTTP layer's request-scoped trace ID through the
// context into the engine, so the trace recorded for a request reuses the
// ID already promised in the X-Bcast-Trace response header.
type requestIDKey struct{}

// WithRequestID returns a context carrying the request-scoped trace ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID extracts the request-scoped trace ID ("" when absent or ctx is
// nil).
func RequestID(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// traceKey carries an externally owned *Trace through the context: when the
// HTTP layer begins the trace (so it can append the response-write span after
// the engine returns), the engine appends its spans to that trace instead of
// beginning and finishing its own.
type traceKey struct{}

// WithTrace returns a context carrying an externally owned trace.
func WithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, traceKey{}, t)
}

// TraceFrom extracts the externally owned trace (nil when absent or ctx is
// nil).
func TraceFrom(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(traceKey{}).(*Trace)
	return t
}
