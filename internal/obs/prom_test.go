package obs

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func buildExposition() string {
	r := NewRegistry()
	r.Counter("bcast_requests_total", "Total plan requests.", 42)
	r.Counter("bcast_cache_hits_total", "Cache hits.", 40)
	r.Gauge(dummyGaugeName, "Current queue depth.", 3)
	var h stats.Histogram
	for i := 1; i <= 100; i++ {
		h.Record(int64(i))
	}
	r.Summary("bcast_solve_pivots", "Simplex pivots per solve.", h.Summary(), 1)
	r.Counter("bcast_http_requests_total", "HTTP requests by route.", 7, "route", "/v1/plan", "status", "200")
	r.Counter("bcast_http_requests_total", "HTTP requests by route.", 1, "route", "/v1/plan", "status", "429")
	return r.Render()
}

const dummyGaugeName = "bcast_queue_depth"

func TestRenderAndValidateRoundTrip(t *testing.T) {
	body := buildExposition()
	n, err := ValidateExposition(body)
	if err != nil {
		t.Fatalf("ValidateExposition: %v\n%s", err, body)
	}
	if n < 8 {
		t.Fatalf("samples = %d, want >= 8\n%s", n, body)
	}
	for _, want := range []string{
		"# TYPE bcast_requests_total counter",
		"# TYPE bcast_queue_depth gauge",
		"# TYPE bcast_solve_pivots summary",
		`bcast_solve_pivots{quantile="0.5"}`,
		"bcast_solve_pivots_sum",
		"bcast_solve_pivots_count 100",
		`bcast_http_requests_total{route="/v1/plan",status="200"} 7`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	// Families must be sorted by name.
	idxHits := strings.Index(body, "# HELP bcast_cache_hits_total")
	idxReq := strings.Index(body, "# HELP bcast_requests_total")
	if idxHits < 0 || idxReq < 0 || idxHits > idxReq {
		t.Fatalf("families not sorted:\n%s", body)
	}
	if !strings.HasSuffix(body, "\n") {
		t.Fatalf("exposition does not end with newline")
	}
}

func TestRenderDeterministic(t *testing.T) {
	if a, b := buildExposition(), buildExposition(); a != b {
		t.Fatalf("Render not deterministic:\n%s\n---\n%s", a, b)
	}
}

func TestValidateExpositionRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{"empty", "", "empty"},
		{"no trailing newline", "# HELP a a\n# TYPE a counter\na 1", "newline"},
		{"no samples", "# HELP a a\n# TYPE a counter\n", "no samples"},
		{"bad name", "# HELP 9bad a\n# TYPE 9bad counter\n9bad 1\n", "malformed metric name"},
		{"orphan sample", "orphan 1\n", "outside any declared family"},
		{"duplicate sample", "# HELP a a\n# TYPE a counter\na 1\na 2\n", "duplicate sample"},
		{"duplicate type", "# HELP a a\n# TYPE a counter\n# TYPE a counter\na 1\n", "duplicate TYPE"},
		{"bad value", "# HELP a a\n# TYPE a counter\na one\n", "unparsable value"},
		{"bad type", "# HELP a a\n# TYPE a widget\na 1\n", "unknown type"},
		{
			"interleaved",
			"# HELP a a\n# TYPE a counter\na 1\n# HELP b b\n# TYPE b counter\nb 1\n# HELP a a2\na{x=\"1\"} 2\n",
			"interleaved",
		},
		{
			"sample interleaved",
			"# HELP a a\n# TYPE a counter\n# HELP b b\n# TYPE b counter\na 1\n",
			"interleaved",
		},
	}
	for _, tc := range cases {
		if _, err := ValidateExposition(tc.body); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestValidateExpositionAcceptsSpecials(t *testing.T) {
	body := "# HELP a a\n# TYPE a gauge\na +Inf\na{x=\"1\"} NaN\na{x=\"2\"} -Inf\na{x=\"3\"} 1e-09\n"
	if n, err := ValidateExposition(body); err != nil || n != 4 {
		t.Fatalf("specials: n=%d err=%v", n, err)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "Escapes.", 1, "path", `a"b\c`+"\n")
	body := r.Render()
	if !strings.Contains(body, `esc_total{path="a\"b\\c\n"} 1`) {
		t.Fatalf("label not escaped:\n%s", body)
	}
	if _, err := ValidateExposition(body); err != nil {
		t.Fatalf("ValidateExposition: %v", err)
	}
}
