// Package obs is the observability layer of the planning service: request
// tracing, a Prometheus-text metrics registry, and the validation helper the
// CI smoke job uses against a live /metrics endpoint. It is stdlib-only,
// like the rest of the module.
//
// # Tracing
//
// A Trace is the per-request record of one plan request's lifecycle: a
// sequence of typed span events (cache lookup, admission decision, LP solve
// with its pivot/cut/round counts, degraded answer, background refinement,
// cancellation, response write) appended by the engine as the request moves
// through the stack. Completed traces land in a bounded lock-sharded ring
// buffer inside the Tracer, from which Snapshot serves the GET /v1/trace
// endpoint (recent traces, filterable by outcome).
//
// # Determinism contract
//
// The trace subsystem follows the same opt-in split as the rest of the
// repository (detrand): by default a Tracer records no wall-clock fields and
// assigns content-derived trace IDs — a hash of the request's cache-key
// identity, its outcome, and a per-(identity, outcome) occurrence counter —
// so an in-process load replay under the virtual clock produces a
// byte-identical, ID-sorted trace dump for any worker count. Only
// scheduling-independent facts are recorded: an admission event says
// admitted or shed, never lane-vs-queued (like Stats.Queued, that split is
// scheduling-dependent and excluded from canonical output). Wall-clock
// timestamps, durations and queue-wait spans appear only when
// Options.WallClock opts in (the bcast-serve default), which switches trace
// IDs to unique per-process values and the Snapshot order to
// most-recent-first.
//
// # Metrics
//
// Registry is a small counter/gauge/summary registry that renders the
// Prometheus text exposition format (version 0.0.4): families sorted by
// name, HELP/TYPE lines once per family, histogram-backed summaries emitted
// as quantile samples plus _sum/_count. ValidateExposition parses an
// exposition and rejects malformed names, duplicate or interleaved
// families, duplicate samples and unparsable values; the CI smoke job runs
// it (via cmd/bcast-promcheck) against a scraped /metrics body.
package obs
