package lp

import (
	"context"
	"errors"
	"math"
	"testing"
)

// fuzzMaster decodes a random feasible, bounded master LP from fuzz bytes:
// a non-negative maximization objective, per-variable box constraints
// (boundedness), and extra LE rows with mixed-sign coefficients and
// non-negative right-hand sides (the origin stays feasible, like the
// cutting-plane masters of package steady before their cut rows arrive).
func fuzzMaster(data []byte) (*Problem, []byte) {
	take := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	nVars := 2 + int(take())%4 // 2..5 variables
	p := NewProblem(nVars)
	for v := 0; v < nVars; v++ {
		p.SetObjectiveCoeff(v, float64(take())/32)
		p.AddSparseConstraint([]Term{{Var: v, Coeff: 1}}, LE, 1+float64(take())/128)
	}
	extra := int(take()) % 4
	for r := 0; r < extra; r++ {
		terms := make([]Term, 0, nVars)
		for v := 0; v < nVars; v++ {
			c := float64(take())/32 - 2 // [-2, 6)
			if c != 0 {
				terms = append(terms, Term{Var: v, Coeff: c})
			}
		}
		if len(terms) == 0 {
			continue
		}
		p.AddSparseConstraint(terms, LE, float64(take())/64)
	}
	return p, data
}

// fuzzRow decodes one appended LE row; rows may have any-sign coefficients
// but keep a non-negative right-hand side, so the problem stays feasible.
func fuzzRow(p *Problem, data []byte) ([]Term, float64, []byte) {
	take := func() byte {
		if len(data) == 0 {
			return 0
		}
		b := data[0]
		data = data[1:]
		return b
	}
	terms := make([]Term, 0, p.NumVars())
	for v := 0; v < p.NumVars(); v++ {
		c := float64(take())/32 - 2
		if c != 0 {
			terms = append(terms, Term{Var: v, Coeff: c})
		}
	}
	return terms, float64(take()) / 64, data
}

// FuzzIncrementalLP drives the two warm-started solvers against the cold
// simplex on random feasible masters, three ways: after every batch of
// appended rows, the warm incremental re-solve, the warm revised-simplex
// re-solve and a cold solve of the same problem must all be Optimal and
// agree on the objective within 1e-6 — the differential contract the
// cutting-plane solver relies on.
//
// The leading control byte steers the revised solver's corners: its low bits
// pin the refactorization trigger (exercising eta chains that end exactly on
// a refactor boundary), the high bit injects a canceled SolveContext before
// the differential check (a canceled solve must fail fast and leave the
// handle cold but consistent).
func FuzzIncrementalLP(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 2, 40, 10, 80, 20, 2, 64, 64, 64, 64, 32, 1, 30, 90, 10, 70, 16})
	f.Add([]byte{0, 3, 0, 0, 255, 255, 128, 128, 64, 64, 0, 3, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14})
	f.Add([]byte{0, 1, 100, 100, 100, 100, 0, 2, 90, 80, 70, 60, 50, 40, 30, 20, 10})
	// Append-row churn: several stages of appended cut rows.
	f.Add([]byte{0, 4, 30, 60, 90, 120, 20, 40, 60, 80, 2, 3, 50, 60, 70, 80, 24, 2, 10, 20, 30, 40, 12, 1, 5, 15, 25, 35, 6})
	// Cancellation mid-stream (high control bit): the canceled revised solve
	// must never poison the following differential stages.
	f.Add([]byte{0x80, 2, 40, 10, 80, 20, 1, 64, 64, 64, 64, 32, 2, 30, 90, 10, 70, 16, 40, 50, 8})
	// Refactor boundary: trigger after every pivot (interval 1) and after
	// every other pivot (interval 2).
	f.Add([]byte{0x01, 3, 20, 40, 60, 10, 30, 50, 2, 2, 64, 32, 96, 16, 3, 48, 80, 24, 8})
	f.Add([]byte{0x02, 2, 40, 10, 80, 20, 2, 64, 64, 64, 64, 32, 1, 30, 90, 10, 70, 16})

	f.Fuzz(func(t *testing.T, data []byte) {
		var ctrl byte
		if len(data) > 0 {
			ctrl = data[0]
			data = data[1:]
		}
		p, rest := fuzzMaster(data)
		inc := NewIncremental(p, nil)
		var revOpts *Options
		if iv := int(ctrl & 0x07); iv > 0 {
			revOpts = &Options{RefactorInterval: iv}
		}
		rev := NewRevised(p, revOpts)
		if ctrl&0x80 != 0 {
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, err := rev.SolveContext(ctx); !errors.Is(err, ErrCanceled) {
				t.Fatalf("pre-canceled revised solve: want ErrCanceled, got %v", err)
			}
		}

		check := func(stage int) {
			warm, err := inc.Solve()
			if err != nil {
				t.Fatalf("stage %d: incremental solve: %v", stage, err)
			}
			rsol, err := rev.Solve()
			if err != nil {
				t.Fatalf("stage %d: revised solve: %v", stage, err)
			}
			cold, err := Solve(p, nil)
			if err != nil {
				t.Fatalf("stage %d: cold solve: %v", stage, err)
			}
			if warm.Status != Optimal || rsol.Status != Optimal || cold.Status != Optimal {
				t.Fatalf("stage %d: status warm=%v revised=%v cold=%v, want Optimal (problem is feasible and bounded)",
					stage, warm.Status, rsol.Status, cold.Status)
			}
			tol := 1e-6 * math.Max(1, math.Abs(cold.Objective))
			if diff := math.Abs(warm.Objective - cold.Objective); diff > tol {
				t.Fatalf("stage %d: warm objective %v != cold %v (diff %g)",
					stage, warm.Objective, cold.Objective, diff)
			}
			if diff := math.Abs(rsol.Objective - cold.Objective); diff > tol {
				t.Fatalf("stage %d: revised objective %v != cold %v (diff %g)",
					stage, rsol.Objective, cold.Objective, diff)
			}
		}
		check(0)

		for stage := 1; stage <= 4 && len(rest) > 0; stage++ {
			rows := 1 + int(rest[0])%3
			rest = rest[1:]
			appended := false
			for r := 0; r < rows; r++ {
				var terms []Term
				var rhs float64
				terms, rhs, rest = fuzzRow(p, rest)
				if len(terms) == 0 {
					continue
				}
				// Both warm handles watch the same problem; append once.
				p.AddSparseConstraint(terms, LE, rhs)
				appended = true
			}
			if !appended {
				continue
			}
			check(stage)
		}
	})
}
