package lp

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// assertAgree fails unless the two solutions carry the same status and, when
// optimal, objectives within the differential tolerance the cutting-plane
// solver relies on.
func assertAgree(t *testing.T, label string, rev, dense *Solution) {
	t.Helper()
	if rev.Status != dense.Status {
		t.Fatalf("%s: status revised=%v dense=%v", label, rev.Status, dense.Status)
	}
	if dense.Status != Optimal {
		return
	}
	if d := math.Abs(rev.Objective - dense.Objective); d > 1e-6*math.Max(1, math.Abs(dense.Objective)) {
		t.Fatalf("%s: objective revised=%g dense=%g (diff %g)", label, rev.Objective, dense.Objective, d)
	}
}

// randomBoundedLP builds a random LP with mixed LE/GE/EQ rows, any-sign
// right-hand sides and box constraints keeping it bounded.
func randomBoundedLP(rng *rand.Rand) *Problem {
	n := 2 + rng.Intn(5)
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.SetObjectiveCoeff(j, rng.Float64()*2-0.5)
	}
	rows := 1 + rng.Intn(6)
	for i := 0; i < rows; i++ {
		coeffs := make([]float64, n)
		for j := range coeffs {
			if rng.Intn(2) == 0 {
				coeffs[j] = rng.Float64()*4 - 2
			}
		}
		p.AddConstraint(coeffs, Relation(rng.Intn(3)), rng.Float64()*10-3)
	}
	for j := 0; j < n; j++ {
		coeffs := make([]float64, n)
		coeffs[j] = 1
		p.AddConstraint(coeffs, LE, 5)
	}
	return p
}

// TestRevisedMatchesDenseOnRandomLPs is the base differential property: on
// random mixed-relation LPs (feasible, infeasible and degenerate alike) the
// revised solver must reach the dense simplex's verdict and objective.
func TestRevisedMatchesDenseOnRandomLPs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 400; iter++ {
		p := randomBoundedLP(rng)
		dense, err := Solve(p, nil)
		if err != nil {
			t.Fatalf("iter %d dense: %v", iter, err)
		}
		rsol, err := NewRevised(p, nil).Solve()
		if err != nil {
			t.Fatalf("iter %d revised: %v", iter, err)
		}
		assertAgree(t, "random", rsol, dense)
	}
}

// TestRevisedWarmAppendMatchesDense replays warm append-and-resolve cycles —
// the cutting-plane access pattern — against cold dense solves of the same
// accumulated problem.
func TestRevisedWarmAppendMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		n := 3 + rng.Intn(4)
		p := NewProblem(n)
		q := NewProblem(n)
		for j := 0; j < n; j++ {
			c := rng.Float64()
			p.SetObjectiveCoeff(j, c)
			q.SetObjectiveCoeff(j, c)
		}
		for j := 0; j < n; j++ {
			coeffs := make([]float64, n)
			coeffs[j] = 1
			p.AddConstraint(coeffs, LE, 3)
			q.AddConstraint(append([]float64(nil), coeffs...), LE, 3)
		}
		rv := NewRevised(p, nil)
		if _, err := rv.Solve(); err != nil {
			t.Fatalf("iter %d cold: %v", iter, err)
		}
		for stage := 0; stage < 4; stage++ {
			coeffs := make([]float64, n)
			for j := range coeffs {
				if rng.Intn(2) == 0 {
					coeffs[j] = rng.Float64()*3 - 1
				}
			}
			rel := Relation(rng.Intn(3))
			rhs := rng.Float64() * 4
			rv.AddConstraint(coeffs, rel, rhs)
			q.AddConstraint(append([]float64(nil), coeffs...), rel, rhs)
			rsol, err := rv.Solve()
			if err != nil {
				t.Fatalf("iter %d stage %d revised: %v", iter, stage, err)
			}
			dense, err := Solve(q, nil)
			if err != nil {
				t.Fatalf("iter %d stage %d dense: %v", iter, stage, err)
			}
			assertAgree(t, "warm append", rsol, dense)
			if dense.Status != Optimal {
				break
			}
		}
	}
}

// TestRevisedUnitLPs pins the revised solver on the same hand-written corner
// cases the dense solver is pinned on: every relation kind, negative
// right-hand sides, infeasibility, unboundedness and the empty problem.
func TestRevisedUnitLPs(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Problem
	}{
		{"le", func() *Problem {
			p := NewProblem(2)
			p.SetObjectiveCoeff(0, 3)
			p.SetObjectiveCoeff(1, 5)
			p.AddConstraint([]float64{1, 0}, LE, 4)
			p.AddConstraint([]float64{0, 2}, LE, 12)
			p.AddConstraint([]float64{3, 2}, LE, 18)
			return p
		}},
		{"ge", func() *Problem {
			p := NewProblem(2)
			p.SetObjectiveCoeff(0, 1)
			p.SetObjectiveCoeff(1, 1)
			p.AddConstraint([]float64{1, 1}, GE, 2)
			p.AddConstraint([]float64{1, 0}, LE, 3)
			p.AddConstraint([]float64{0, 1}, LE, 3)
			return p
		}},
		{"eq", func() *Problem {
			p := NewProblem(3)
			p.SetObjectiveCoeff(0, 2)
			p.SetObjectiveCoeff(1, 3)
			p.AddConstraint([]float64{1, 1, 1}, EQ, 10)
			p.AddConstraint([]float64{1, 0, 0}, LE, 4)
			p.AddConstraint([]float64{0, 1, 0}, LE, 6)
			return p
		}},
		{"negative-rhs", func() *Problem {
			p := NewProblem(2)
			p.SetObjectiveCoeff(0, 1)
			p.AddConstraint([]float64{-1, -1}, LE, -2)
			p.AddConstraint([]float64{1, 0}, LE, 5)
			p.AddConstraint([]float64{0, 1}, LE, 5)
			return p
		}},
		{"infeasible", func() *Problem {
			p := NewProblem(2)
			p.SetObjectiveCoeff(0, 1)
			p.AddConstraint([]float64{1, 1}, LE, 1)
			p.AddConstraint([]float64{1, 1}, GE, 3)
			return p
		}},
		{"infeasible-eq", func() *Problem {
			p := NewProblem(2)
			p.SetObjectiveCoeff(0, 1)
			p.AddConstraint([]float64{1, 0}, EQ, 2)
			p.AddConstraint([]float64{1, 0}, EQ, 3)
			return p
		}},
		{"unbounded", func() *Problem {
			p := NewProblem(2)
			p.SetObjectiveCoeff(0, 1)
			p.AddConstraint([]float64{0, 1}, LE, 1)
			return p
		}},
		{"empty", func() *Problem {
			p := NewProblem(2)
			p.SetObjectiveCoeff(0, 1)
			return p
		}},
		{"degenerate", func() *Problem {
			p := NewProblem(2)
			p.SetObjectiveCoeff(0, 1)
			p.SetObjectiveCoeff(1, 1)
			p.AddConstraint([]float64{1, 1}, LE, 2)
			p.AddConstraint([]float64{1, 1}, LE, 2)
			p.AddConstraint([]float64{1, 0}, LE, 2)
			return p
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.build()
			dense, err := Solve(p, nil)
			if err != nil {
				t.Fatalf("dense: %v", err)
			}
			rsol, err := NewRevised(p, nil).Solve()
			if err != nil {
				t.Fatalf("revised: %v", err)
			}
			assertAgree(t, tc.name, rsol, dense)
			if dense.Status == Optimal {
				for j := range dense.X {
					if d := math.Abs(dense.X[j] - rsol.X[j]); d > 1e-6 {
						t.Errorf("x[%d]: revised %g dense %g", j, rsol.X[j], dense.X[j])
					}
				}
			}
		})
	}
}

// TestRevisedWarmAcrossObjectiveChange: unlike Incremental, the revised
// solver reprices from the factorization, so a changed objective alone keeps
// the previous basis warm.
func TestRevisedWarmAcrossObjectiveChange(t *testing.T) {
	p := NewProblem(3)
	for j := 0; j < 3; j++ {
		p.SetObjectiveCoeff(j, 1)
		coeffs := make([]float64, 3)
		coeffs[j] = 1
		p.AddConstraint(coeffs, LE, float64(j+1))
	}
	p.AddConstraint([]float64{1, 1, 1}, LE, 4)
	rv := NewRevised(p, nil)
	if _, err := rv.Solve(); err != nil {
		t.Fatal(err)
	}
	if rv.LastWarm() {
		t.Fatal("first solve reported warm")
	}
	p.SetObjectiveCoeff(0, 9)
	sol, err := rv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if !rv.LastWarm() {
		t.Fatal("objective-only change should keep the basis warm")
	}
	dense, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertAgree(t, "objective change", sol, dense)
}

// reconstructColumn multiplies the factor back out: column step s of P·G·Q
// as the L-image of U's column s, scattered over core-row slots.
func reconstructColumn(f *sparseLU, s int, x []float64) {
	for i := range x {
		x[i] = 0
	}
	apply := func(t int32, u float64) {
		x[f.stepRow[t]] += u
		for e := f.lp[t]; e < f.lp[t+1]; e++ {
			x[f.li[e]] += u * f.lx[e]
		}
	}
	for e := f.up[s]; e < f.up[s+1]; e++ {
		apply(f.ui[e], f.ux[e])
	}
	apply(int32(s), f.ud[s])
}

// TestSparseLUReconstructsRandomCores is the factorization property test:
// P·G·Q = L·U must hold entrywise within a roundoff bound for random sparse
// nonsingular cores (diagonally seeded, with random fill).
func TestSparseLUReconstructsRandomCores(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		k := 1 + rng.Intn(40)
		dense := make([]float64, k*k)
		for i := 0; i < k; i++ {
			dense[i*k+i] = 1 + rng.Float64()*4
			extra := rng.Intn(4)
			for e := 0; e < extra; e++ {
				dense[i*k+rng.Intn(k)] = rng.Float64()*6 - 3
			}
		}
		var cp, ri []int32
		var vx []float64
		cp = append(cp, 0)
		maxAbs := 0.0
		for c := 0; c < k; c++ {
			for r := 0; r < k; r++ {
				if v := dense[r*k+c]; v != 0 {
					ri = append(ri, int32(r))
					vx = append(vx, v)
					if math.Abs(v) > maxAbs {
						maxAbs = math.Abs(v)
					}
				}
			}
			cp = append(cp, int32(len(ri)))
		}
		var f sparseLU
		if !f.factor(cp, ri, vx, k) {
			t.Fatalf("iter %d: factor reported singular for a diagonally seeded core", iter)
		}
		x := make([]float64, k)
		for s := 0; s < k; s++ {
			c := int(f.colOf[s])
			reconstructColumn(&f, s, x)
			for e := cp[c]; e < cp[c+1]; e++ {
				x[ri[e]] -= vx[e]
			}
			for r, v := range x {
				if math.Abs(v) > 1e-10*(1+maxAbs) {
					t.Fatalf("iter %d k=%d: |G - LU| at (%d,step %d) = %g", iter, k, r, s, v)
				}
			}
		}
	}
}

// TestSparseLUReconstructsSolverCore re-runs the reconstruction bound on the
// factorization an actual solve produced: the CSC snapshot the solver handed
// to the factorization must match L·U within roundoff of the column scale.
func TestSparseLUReconstructsSolverCore(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomMasterLP(rng, 24, 40)
	rv := NewRevised(p, nil)
	if _, err := rv.Solve(); err != nil {
		t.Fatal(err)
	}
	// Refactorize the final optimal basis explicitly: its core holds the
	// structural basics the optimum stands on.
	if !rv.refactor() {
		t.Fatal("refactorization of the optimal basis reported singular")
	}
	fs := &rv.fs
	if !fs.valid || fs.k == 0 {
		t.Fatalf("expected a valid factorization with a nonempty core, got valid=%v k=%d", fs.valid, fs.k)
	}
	maxAbs := 0.0
	for _, v := range fs.cvx {
		if math.Abs(v) > maxAbs {
			maxAbs = math.Abs(v)
		}
	}
	x := make([]float64, fs.k)
	for s := 0; s < fs.k; s++ {
		c := int(fs.slu.colOf[s])
		reconstructColumn(&fs.slu, s, x)
		for e := fs.ccp[c]; e < fs.ccp[c+1]; e++ {
			x[fs.cri[e]] -= fs.cvx[e]
		}
		for r, v := range x {
			if math.Abs(v) > 1e-9*(1+maxAbs) {
				t.Fatalf("|G - LU| at (%d,step %d) = %g (k=%d)", r, s, v, fs.k)
			}
		}
	}
}

// randomMasterLP builds a master-shaped LP: non-negative objective, box
// rows, and dense-ish LE cut rows with non-negative right-hand sides.
func randomMasterLP(rng *rand.Rand, nVars, cuts int) *Problem {
	p := NewProblem(nVars)
	for j := 0; j < nVars; j++ {
		p.SetObjectiveCoeff(j, rng.Float64()+0.1)
		coeffs := make([]float64, nVars)
		coeffs[j] = 1
		p.AddConstraint(coeffs, LE, 1+rng.Float64())
	}
	for i := 0; i < cuts; i++ {
		coeffs := make([]float64, nVars)
		for j := range coeffs {
			if rng.Intn(3) == 0 {
				coeffs[j] = rng.Float64()*2 - 0.5
			}
		}
		p.AddConstraint(coeffs, LE, 0.5+rng.Float64()*2)
	}
	return p
}

// TestRevisedEtaChainBoundedByTrigger: the eta file never grows past the
// refactorization trigger, for the default trigger and for overridden ones.
func TestRevisedEtaChainBoundedByTrigger(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, interval := range []int{0, 1, 4, 8} {
		opts := &Options{RefactorInterval: interval}
		want := interval
		if want == 0 {
			want = etaLimit
		}
		for iter := 0; iter < 10; iter++ {
			p := randomMasterLP(rng, 16, 24)
			rv := NewRevised(p, opts)
			if _, err := rv.Solve(); err != nil {
				t.Fatalf("interval %d iter %d: %v", interval, iter, err)
			}
			// Append rows to force warm dual re-solves through the trigger.
			for stage := 0; stage < 3; stage++ {
				coeffs := make([]float64, 16)
				for j := range coeffs {
					if rng.Intn(2) == 0 {
						coeffs[j] = rng.Float64()
					}
				}
				rv.AddConstraint(coeffs, LE, rng.Float64())
				if _, err := rv.Solve(); err != nil {
					t.Fatalf("interval %d iter %d stage %d: %v", interval, iter, stage, err)
				}
			}
			if got := rv.FactorStats().MaxEtaChain; got > want {
				t.Fatalf("interval %d: eta chain reached %d, trigger is %d", interval, got, want)
			}
			if rv.FactorStats().Refactors < 1 {
				t.Fatalf("interval %d: no refactorizations recorded", interval)
			}
		}
	}
}

// hilbertLP builds an ill-conditioned fixture: Hilbert-matrix rows (condition
// number ~1e10 at n=8) over box-bounded variables. Near-degenerate and
// numerically hostile, it exercises the growth trigger and the certification
// retry without leaving the feasible/bounded regime.
func hilbertLP(n int) *Problem {
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.SetObjectiveCoeff(j, 1)
		coeffs := make([]float64, n)
		coeffs[j] = 1
		p.AddConstraint(coeffs, LE, 10)
	}
	for i := 0; i < n; i++ {
		coeffs := make([]float64, n)
		for j := 0; j < n; j++ {
			coeffs[j] = 1 / float64(i+j+1)
		}
		p.AddConstraint(coeffs, LE, 1)
	}
	return p
}

// nearDegenerateLP stacks almost-parallel rows differing by tiny
// perturbations — the classic source of stale eta chains and unstable
// pivots.
func nearDegenerateLP(n int, eps float64) *Problem {
	p := NewProblem(n)
	for j := 0; j < n; j++ {
		p.SetObjectiveCoeff(j, 1+float64(j)*eps)
		coeffs := make([]float64, n)
		coeffs[j] = 1
		p.AddConstraint(coeffs, LE, 2)
	}
	base := make([]float64, n)
	for j := range base {
		base[j] = 1
	}
	for i := 0; i < 2*n; i++ {
		coeffs := append([]float64(nil), base...)
		coeffs[i%n] += eps * float64(i+1)
		p.AddConstraint(coeffs, LE, float64(n)/2)
	}
	return p
}

// TestRevisedIllConditionedFixtures runs the numerically hostile fixture
// family through both solvers under aggressive refactorization intervals:
// verdicts and objectives must still agree, the eta chain must respect the
// trigger, and the refactorization machinery must actually have run.
func TestRevisedIllConditionedFixtures(t *testing.T) {
	fixtures := []struct {
		name string
		p    *Problem
	}{
		{"hilbert-6", hilbertLP(6)},
		{"hilbert-8", hilbertLP(8)},
		{"hilbert-10", hilbertLP(10)},
		{"near-degenerate-1e-9", nearDegenerateLP(8, 1e-9)},
		{"near-degenerate-1e-11", nearDegenerateLP(8, 1e-11)},
	}
	for _, fx := range fixtures {
		for _, interval := range []int{0, 2} {
			t.Run(fx.name, func(t *testing.T) {
				dense, err := Solve(fx.p, nil)
				if err != nil {
					t.Fatalf("dense: %v", err)
				}
				rv := NewRevised(fx.p, &Options{RefactorInterval: interval})
				rsol, err := rv.Solve()
				if err != nil {
					t.Fatalf("revised: %v", err)
				}
				assertAgree(t, fx.name, rsol, dense)
				st := rv.FactorStats()
				if st.Refactors < 1 {
					t.Fatal("no refactorizations on an ill-conditioned fixture")
				}
				want := interval
				if want == 0 {
					want = etaLimit
				}
				if st.MaxEtaChain > want {
					t.Fatalf("eta chain %d exceeded trigger %d", st.MaxEtaChain, want)
				}
			})
		}
	}
}

// TestRevisedWarmPivotAllocs is the allocation bench-guard for the warm hot
// path: a warm re-solve allocates only its Solution (and the X slice inside),
// never per-pivot scratch — the slabs and the eta file are arena-backed. The
// bound must hold on a small and a cut-heavy master alike, pinning
// independence from the pivot count.
func TestRevisedWarmPivotAllocs(t *testing.T) {
	for _, size := range []struct {
		name  string
		vars  int
		cuts  int
	}{{"small", 8, 6}, {"cut-heavy", 24, 60}} {
		t.Run(size.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(9))
			p := randomMasterLP(rng, size.vars, size.cuts)
			rv := NewRevised(p, nil)
			if _, err := rv.Solve(); err != nil {
				t.Fatal(err)
			}
			// Toggle the objective between two vectors: each warm re-solve
			// reprices and pivots back, exercising the full FTRAN/BTRAN/eta
			// path without appending rows.
			flip := false
			allocs := testing.AllocsPerRun(50, func() {
				flip = !flip
				c := 2.0
				if flip {
					c = 0.25
				}
				for j := 0; j < size.vars/2; j++ {
					p.SetObjectiveCoeff(j, c)
				}
				sol, err := rv.Solve()
				if err != nil {
					t.Fatal(err)
				}
				if sol.Status != Optimal || !rv.LastWarm() {
					t.Fatalf("warm re-solve: status=%v warm=%v", sol.Status, rv.LastWarm())
				}
			})
			// One Solution, one X slice, one Dual-free warm result: anything
			// above this small constant means the pivot loop allocates.
			if allocs > 4 {
				t.Fatalf("warm re-solve allocates %v objects per run, want <= 4", allocs)
			}
		})
	}
}

// TestRevisedSolveContextPreCanceled mirrors the dense solver's contract: a
// canceled context fails fast with ErrCanceled and context.Canceled.
func TestRevisedSolveContextPreCanceled(t *testing.T) {
	p := NewProblem(2)
	p.SetObjectiveCoeff(0, 1)
	p.AddConstraint([]float64{1, 1}, LE, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rv := NewRevised(p, nil)
	if _, err := rv.SolveContext(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
	// The handle must stay usable.
	sol, err := rv.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("solve after cancellation: sol=%+v err=%v", sol, err)
	}
}

// TestRevisedCanceledSolveNeverReusesFactorizationWarm is the cancellation
// contract of the factorized state: a solve canceled mid-flight discards its
// factorization — the next solve runs cold, never from the interrupted basis
// — and the cancellation does not count toward the warm-failure limit that
// would disable warm starts.
func TestRevisedCanceledSolveNeverReusesFactorizationWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	p := randomMasterLP(rng, 12, 10)
	rv := NewRevised(p, nil)
	if _, err := rv.Solve(); err != nil {
		t.Fatal(err)
	}
	addRow := func() {
		coeffs := make([]float64, 12)
		for j := range coeffs {
			coeffs[j] = rng.Float64()
		}
		rv.AddConstraint(coeffs, LE, rng.Float64()+0.2)
	}

	for round := 0; round < 3; round++ {
		addRow()
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		if _, err := rv.SolveContext(ctx); !errors.Is(err, ErrCanceled) {
			t.Fatalf("round %d: want ErrCanceled, got %v", round, err)
		}
		if rv.fs.valid || rv.built {
			t.Fatalf("round %d: canceled solve left a live factorization (valid=%v built=%v)",
				round, rv.fs.valid, rv.built)
		}
		cold := rv.Stats().ColdSolves
		sol, err := rv.Solve()
		if err != nil || sol.Status != Optimal {
			t.Fatalf("round %d: re-solve after cancel: sol=%+v err=%v", round, sol, err)
		}
		if rv.LastWarm() {
			t.Fatalf("round %d: solve after cancellation reused the discarded basis warm", round)
		}
		if rv.Stats().ColdSolves != cold+1 {
			t.Fatalf("round %d: expected a cold solve after cancellation", round)
		}
	}

	// Cancellations must not have counted as warm failures: the next append
	// still warm-starts.
	addRow()
	sol, err := rv.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("final warm solve: sol=%+v err=%v", sol, err)
	}
	if !rv.LastWarm() {
		t.Fatal("cancellations were counted as warm failures: warm starts disabled")
	}
}

// TestRevisedContextCancellationMidSolve cancels concurrently with a large
// cold solve; whichever side wins, the handle must end consistent and
// re-solvable. Run with -race in CI.
func TestRevisedContextCancellationMidSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	p := randomMasterLP(rng, 60, 120)
	rv := NewRevised(p, nil)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		cancel()
		close(done)
	}()
	_, err := rv.SolveContext(ctx)
	<-done
	if err != nil && !errors.Is(err, ErrCanceled) {
		t.Fatalf("unexpected error: %v", err)
	}
	sol, err := rv.Solve()
	if err != nil || sol.Status != Optimal {
		t.Fatalf("re-solve after racing cancel: sol=%+v err=%v", sol, err)
	}
	dense, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	assertAgree(t, "post-cancel", sol, dense)
}

// TestRevisedFallsBackAndDisablesWarmAfterFailures mirrors the Incremental
// warm-failure latch: repeated warm failures (forced by an unsatisfiable
// iteration budget on the warm path) eventually disable warm starts, and the
// solver still answers through the cold path.
func TestRevisedFallsBackAndDisablesWarmAfterFailures(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := randomMasterLP(rng, 10, 8)
	rv := NewRevised(p, &Options{MaxIterations: 2})
	sol, err := rv.Solve()
	if err != nil {
		t.Fatal(err)
	}
	// With a 2-pivot budget the solve cannot certify optimality; whatever
	// verdict it reached, subsequent solves must keep working and never
	// report stale warm optima.
	for stage := 0; stage < 4; stage++ {
		coeffs := make([]float64, 10)
		coeffs[stage] = 1
		rv.AddConstraint(coeffs, LE, 0.1)
		sol, err = rv.Solve()
		if err != nil {
			t.Fatalf("stage %d: %v", stage, err)
		}
		if sol.Status == Optimal {
			t.Fatalf("stage %d: optimal verdict under a 2-pivot budget", stage)
		}
	}
}
