package lp

import (
	"context"
	"errors"
	"math"
	"testing"
)

// cancelProblem builds a small LP with a non-trivial pivot sequence:
// maximize x0+x1 subject to a few overlapping capacity rows.
func cancelProblem() *Problem {
	p := NewProblem(3)
	p.SetObjective([]float64{1, 1, 0.5})
	p.AddConstraint([]float64{1, 2, 1}, LE, 4)
	p.AddConstraint([]float64{2, 1, 0}, LE, 3)
	p.AddConstraint([]float64{0, 1, 2}, LE, 5)
	return p
}

func TestSolveContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SolveContext(ctx, cancelProblem(), nil)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("SolveContext on canceled ctx = %v, want ErrCanceled", err)
	}
}

func TestSolveContextNilAndBackground(t *testing.T) {
	// nil ctx must behave like context.Background(): solve normally.
	sol, err := SolveContext(nil, cancelProblem(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v, want optimal", sol.Status)
	}
	ref, err := Solve(cancelProblem(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Objective-ref.Objective) > 1e-9 {
		t.Fatalf("nil-ctx objective %v != Solve objective %v", sol.Objective, ref.Objective)
	}
}

// TestIncrementalCanceledThenResolves cancels a warm re-solve and verifies
// the handle recovers: the canceled attempt must not count as a warm failure
// nor leave a mid-pivot tableau behind, and the next (uncanceled) Solve must
// match a cold differential oracle.
func TestIncrementalCanceledThenResolves(t *testing.T) {
	inc := NewIncremental(cancelProblem(), nil)
	first, err := inc.Solve()
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != Optimal {
		t.Fatalf("initial status %v", first.Status)
	}

	// A cutting row that shaves the optimum, solved under a dead context.
	inc.AddConstraint([]float64{1, 1, 1}, LE, first.Objective*0.9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := inc.SolveContext(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled SolveContext = %v, want ErrCanceled", err)
	}

	sol, err := inc.Solve()
	if err != nil {
		t.Fatalf("re-solve after cancellation: %v", err)
	}
	oracle, err := Solve(inc.Problem(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || math.Abs(sol.Objective-oracle.Objective) > 1e-9 {
		t.Fatalf("post-cancel solve %v/%v, oracle %v", sol.Status, sol.Objective, oracle.Objective)
	}
	if inc.Stats().ColdSolves < 2 {
		t.Errorf("stats %+v: canceled tableau should have forced a cold re-solve", inc.Stats())
	}
}
